package neurdb

import (
	"container/list"
	"sync"
	"sync/atomic"

	"neurdb/internal/plan"
)

// DefaultPlanCacheSize bounds the shared plan cache (entries).
const DefaultPlanCacheSize = 256

// planCache is a size-bounded LRU of compiled SELECT plans shared by every
// session's prepared statements. Entries are keyed by (optimizer mode, SQL
// text) and stamped with the catalog version they were planned under; a
// lookup whose stamp no longer matches the live version counts as a miss
// and is evicted, so DDL and ANALYZE (which bump the version) invalidate
// stale plans without scanning the cache.
type planCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	lru     list.List // front = most recently used

	hits   atomic.Uint64
	misses atomic.Uint64
}

// planEntry is one cached plan. Entries are immutable after creation, so
// statements may hold onto one and revalidate it with a lock-free catalog
// version (and mode) compare instead of re-entering the cache.
type planEntry struct {
	key       string
	mode      OptimizerMode
	node      plan.Node
	columns   []string
	hasParams bool // plan contains parameter references needing BindParams
	catVer    uint64
}

func newPlanCache(max int) *planCache {
	if max <= 0 {
		max = DefaultPlanCacheSize
	}
	return &planCache{max: max, entries: make(map[string]*list.Element)}
}

// planKey builds the cache key: plans depend on the optimizer mode as well
// as the statement text.
func planKey(mode OptimizerMode, sql string) string {
	return string(mode) + "\x00" + sql
}

// get returns the cached entry for key if it was planned at catVer,
// counting a hit; otherwise it counts a miss (evicting a stale entry).
func (c *planCache) get(key string, catVer uint64) (*planEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if ok {
		e := el.Value.(*planEntry)
		if e.catVer == catVer {
			c.lru.MoveToFront(el)
			c.hits.Add(1)
			return e, true
		}
		c.lru.Remove(el)
		delete(c.entries, key)
	}
	c.misses.Add(1)
	return nil, false
}

// put installs (or replaces) an entry, evicting the least recently used
// entry when the cache is full.
func (c *planCache) put(e *planEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[e.key]; ok {
		el.Value = e
		c.lru.MoveToFront(el)
		return
	}
	c.entries[e.key] = c.lru.PushFront(e)
	for len(c.entries) > c.max {
		oldest := c.lru.Back()
		if oldest == nil {
			break
		}
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*planEntry).key)
	}
}

// stats returns the cumulative hit/miss counters.
func (c *planCache) stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// len returns the current entry count.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
