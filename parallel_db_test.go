package neurdb

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"neurdb/internal/executor"
)

// loadParallelTable creates and fills a table large enough (several times
// executor.MorselPages worth of heap pages) for queries over it to take the
// morsel-parallel path.
func loadParallelTable(t testing.TB, db *DB, rows int) {
	t.Helper()
	if _, err := db.Exec(`CREATE TABLE big (id INT PRIMARY KEY, grp INT, val DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	const chunk = 512
	for base := 0; base < rows; base += chunk {
		var sb strings.Builder
		sb.WriteString("INSERT INTO big VALUES ")
		for i := base; i < base+chunk && i < rows; i++ {
			if i > base {
				sb.WriteByte(',')
			}
			// Values are multiples of 0.5: float sums are exact in any
			// addition order, so parallel and serial agg compare equal.
			fmt.Fprintf(&sb, "(%d,%d,%g)", i, i%13, float64(i%200)*0.5)
		}
		if _, err := db.Exec(sb.String()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSessionWorkersDifferential: the same queries through the public API
// must return identical results (row order included) at workers=1 and
// workers=4, driven via Session.SetWorkers and SET workers.
func TestSessionWorkersDifferential(t *testing.T) {
	db := Open(DefaultConfig())
	loadParallelTable(t, db, 12000)

	run := func(workers int, sql string) []string {
		s := db.NewSession()
		s.SetWorkers(workers)
		res, err := s.Exec(sql)
		if err != nil {
			t.Fatalf("workers=%d %q: %v", workers, sql, err)
		}
		out := make([]string, len(res.Rows))
		for i, r := range res.Rows {
			out[i] = r.String()
		}
		return out
	}
	for _, sql := range []string{
		`SELECT grp, COUNT(*), SUM(val) FROM big GROUP BY grp`,
		`SELECT id FROM big WHERE val > 40 ORDER BY val DESC, id LIMIT 100`,
		`SELECT COUNT(*), MIN(val), MAX(val) FROM big WHERE id >= 2000`,
	} {
		serial, par := run(1, sql), run(4, sql)
		if len(serial) != len(par) {
			t.Fatalf("%q: %d vs %d rows", sql, len(serial), len(par))
		}
		for i := range serial {
			if serial[i] != par[i] {
				t.Fatalf("%q row %d: serial %s parallel %s", sql, i, serial[i], par[i])
			}
		}
	}

	// The SQL knob drives the same session override.
	s := db.NewSession()
	if _, err := s.Exec(`SET workers = 4`); err != nil {
		t.Fatal(err)
	}
	if s.effectiveWorkers() != 4 {
		t.Fatalf("SET workers = 4 not applied: %d", s.effectiveWorkers())
	}
	if _, err := s.Exec(`SET workers = nope`); err == nil {
		t.Fatal("SET workers with a non-integer value must error")
	}
}

// TestRowsCloseStopsParallelWorkers: closing a streaming cursor mid-stream
// must terminate the morsel workers and release the read transaction (the
// vacuum horizon advances past its snapshot).
func TestRowsCloseStopsParallelWorkers(t *testing.T) {
	db := Open(DefaultConfig())
	loadParallelTable(t, db, 12000)
	s := db.NewSession()
	s.SetWorkers(4)

	rows, err := s.Query(`SELECT id, grp, val FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10 && rows.Next(); i++ {
	}
	during := db.mgr.OldestActiveTS()
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	// Close joins the worker pool via the iterator teardown.
	deadline := time.Now().Add(5 * time.Second)
	for executor.ParallelWorkers() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := executor.ParallelWorkers(); n != 0 {
		t.Fatalf("%d morsel workers still running after Rows.Close", n)
	}
	// The read txn was finalized: a write committed now advances the horizon
	// past the cursor's snapshot.
	if _, err := db.Exec(`UPDATE big SET val = 1 WHERE id = 0`); err != nil {
		t.Fatal(err)
	}
	after := db.mgr.OldestActiveTS()
	if after <= during {
		t.Fatalf("snapshot horizon did not advance after Close: during=%d after=%d", during, after)
	}
}

// TestParallelQueriesUnderConcurrentDML is the -race stress: parallel
// readers iterating aggregates and joins while writers update, delete, and
// insert. Readers must never error and every aggregate row count must be
// consistent with some committed snapshot (at least the unmodified floor).
func TestParallelQueriesUnderConcurrentDML(t *testing.T) {
	db := Open(DefaultConfig())
	loadParallelTable(t, db, 8000)

	stop := make(chan struct{})
	var writerWG, readerWG sync.WaitGroup
	errs := make(chan error, 16)

	writerWG.Add(1)
	go func() { // writer: mixed DML churn
		defer writerWG.Done()
		s := db.NewSession()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			switch i % 3 {
			case 0:
				_, err = s.Exec(`UPDATE big SET val = ? WHERE grp = ?`, float64(i%50), i%13)
			case 1:
				_, err = s.Exec(`DELETE FROM big WHERE id = ?`, 4000+i)
			default:
				_, err = s.Exec(`INSERT INTO big VALUES (?, ?, ?)`, 100000+i, i%13, 2.5)
			}
			if err != nil && !strings.Contains(err.Error(), "conflict") {
				errs <- fmt.Errorf("writer: %w", err)
				return
			}
		}
	}()

	for r := 0; r < 3; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			s := db.NewSession()
			s.SetWorkers(4)
			for i := 0; i < 30; i++ {
				res, err := s.Exec(`SELECT grp, COUNT(*) FROM big GROUP BY grp`)
				if err != nil {
					errs <- fmt.Errorf("reader agg: %w", err)
					return
				}
				total := int64(0)
				for _, row := range res.Rows {
					total += row[1].AsInt()
				}
				if total < 7000 { // 8000 seeded minus bounded deletes
					errs <- fmt.Errorf("reader saw %d rows total", total)
					return
				}
				if _, err := s.Exec(`SELECT COUNT(*) FROM big WHERE val >= 0`); err != nil {
					errs <- fmt.Errorf("reader filter: %w", err)
					return
				}
			}
		}()
	}

	// Readers run to completion under live write traffic, then the writer
	// is stopped.
	readerWG.Wait()
	close(stop)
	writerWG.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestParallelDMLNoLostUpdates is the write-path -race stress: mixed
// writers driving morsel-parallel UPDATE statements through the striped
// claim path — disjoint writers that must never conflict, plus contending
// writers that retry on first-updater-wins conflicts — against
// morsel-parallel readers. Every reader snapshot must see statement-atomic
// state (SUM(a) + SUM(b) == 0 holds invariantly), and the final state must
// reflect every committed statement: no lost updates across stripes.
func TestParallelDMLNoLostUpdates(t *testing.T) {
	db := Open(DefaultConfig())
	if _, err := db.Exec(`CREATE TABLE par (id INT PRIMARY KEY, grp INT, a INT, b INT)`); err != nil {
		t.Fatal(err)
	}
	const rows = 8000 // ~63 heap pages: well past the parallel-DML gate
	const chunk = 500
	for base := 0; base < rows; base += chunk {
		var sb strings.Builder
		sb.WriteString("INSERT INTO par VALUES ")
		for i := base; i < base+chunk && i < rows; i++ {
			if i > base {
				sb.WriteByte(',')
			}
			// grp 0..3 are the disjoint writers' rows; grp 9 is contested.
			g := i % 4
			if i >= rows-256 {
				g = 9
			}
			fmt.Fprintf(&sb, "(%d,%d,0,0)", i, g)
		}
		if _, err := db.Exec(sb.String()); err != nil {
			t.Fatal(err)
		}
	}

	const disjointWriters = 4
	const itersPerWriter = 6
	var wg sync.WaitGroup
	errs := make(chan error, 16)

	// Disjoint writers: each owns grp=w. Their row sets interleave on every
	// heap page, so concurrent statements hammer shared claim stripes, but
	// first-updater-wins must never fire across disjoint rows.
	for w := 0; w < disjointWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.NewSession()
			s.SetWorkers(4)
			for i := 0; i < itersPerWriter; i++ {
				if _, err := s.Exec(`UPDATE par SET a = a + 1, b = b - 1 WHERE grp = ?`, w); err != nil {
					errs <- fmt.Errorf("disjoint writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}

	// Contending writers: both target grp=9 and must retry through
	// write conflicts; committed statements are counted.
	var contested int64
	var contestedMu sync.Mutex
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := db.NewSession()
			s.SetWorkers(4)
			for i := 0; i < 4; i++ {
				for {
					_, err := s.Exec(`UPDATE par SET a = a + 1, b = b - 1 WHERE grp = 9`)
					if err == nil {
						contestedMu.Lock()
						contested++
						contestedMu.Unlock()
						break
					}
					if !strings.Contains(err.Error(), "conflict") {
						errs <- fmt.Errorf("contending writer: %w", err)
						return
					}
				}
			}
		}()
	}

	// Parallel readers: under any snapshot the per-statement increments
	// cancel, so SUM(a) + SUM(b) must always be exactly zero.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := db.NewSession()
			s.SetWorkers(4)
			for i := 0; i < 25; i++ {
				res, err := s.Exec(`SELECT SUM(a), SUM(b) FROM par`)
				if err != nil {
					errs <- fmt.Errorf("reader: %w", err)
					return
				}
				if sum := res.Rows[0][0].AsInt() + res.Rows[0][1].AsInt(); sum != 0 {
					errs <- fmt.Errorf("non-atomic snapshot: SUM(a)+SUM(b) = %d", sum)
					return
				}
			}
		}()
	}

	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// No lost updates: every disjoint row carries exactly its writer's
	// statement count, every contested row exactly the committed count.
	res, err := db.Exec(`SELECT COUNT(*) FROM par WHERE grp < 9 AND a = ?`, itersPerWriter)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].AsInt(); got != rows-256 {
		t.Fatalf("disjoint rows with full increment count: %d, want %d", got, rows-256)
	}
	res, err = db.Exec(`SELECT COUNT(*) FROM par WHERE grp = 9 AND a = ?`, contested)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].AsInt(); got != 256 {
		t.Fatalf("contested rows with committed count %d: %d, want 256", contested, got)
	}
	// The monitor recorded the parallel write path.
	if db.Monitor().Total("dml.parallel_pages") == 0 {
		t.Fatal("dml.parallel_pages counter never advanced")
	}
}
