// Package client is the native Go driver for a networked NeurDB server.
// It speaks the binary wire protocol (docs/PROTOCOL.md): simple one-shot
// queries, and server-side prepared statements (Parse/Bind/Execute) whose
// plans live in the server's DB-wide plan cache, so repeated parameterized
// statements pay parse-and-plan once per catalog version, not per call.
//
// Results stream: Rows pulls one DataBatch frame at a time and, with a
// fetch size configured, the server suspends the portal between chunks so
// closing a cursor early abandons the remaining rows without transferring
// them.
//
// The package also registers a database/sql driver named "neurdb":
//
//	db, err := sql.Open("neurdb", "127.0.0.1:5433")
//	stmt, err := db.Prepare(`SELECT val FROM kv WHERE id = ?`)
//	rows, err := stmt.Query(42)
//
// A Conn is not safe for concurrent use; database/sql's pool provides
// one Conn per active operation.
package client

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"neurdb/internal/rel"
	"neurdb/internal/wire"
)

// Options configures Connect.
type Options struct {
	// FetchSize is the per-Execute row bound for Stmt.Query cursors.
	// 0 means DefaultFetchSize (chunked, so Rows.Close can abandon a large
	// result without transferring the tail); a negative value disables
	// chunking and streams the whole result in one Execute.
	FetchSize int
	// DialTimeout bounds the TCP connect (0 = no timeout). Cancel's
	// side-channel connection reuses the same bound.
	DialTimeout time.Duration
	// MaxFrame bounds incoming frame payloads (default wire.DefaultMaxFrame).
	MaxFrame int
	// RetryBackoff, when positive, retries transient connect failures
	// (dial errors, the server's TOO_MANY_CONNS refusal) with capped
	// exponential backoff starting at this delay. Only Connect and Ping
	// ever retry: a statement is NEVER silently re-executed — the client
	// cannot know whether the server applied it before the failure.
	RetryBackoff time.Duration
	// RetryAttempts caps the retries RetryBackoff performs (default 4;
	// ignored while RetryBackoff is 0).
	RetryAttempts int
}

// maxRetryBackoff caps the exponential backoff delay between retries.
const maxRetryBackoff = 2 * time.Second

// DefaultFetchSize is the default Stmt.Query chunk size: a few executor
// batches per round trip amortizes protocol overhead while keeping early
// Close cheap.
const DefaultFetchSize = 4096

// Error is a server-reported failure (statement or protocol level).
type Error struct {
	Code    string
	Message string
}

func (e *Error) Error() string { return "neurdb: " + e.Message }

// Result is the outcome of a statement executed without streaming.
type Result struct {
	// Tag is the server's completion tag ("INSERT 3", "CREATE TABLE", "";
	// empty for plain SELECTs).
	Tag string
	// Affected is the affected-row count for DML, or the returned-row
	// count for drained SELECTs.
	Affected int64
}

// Conn is one client connection: a wire socket plus its server-side
// session (prepared statements and portals are per-connection).
type Conn struct {
	netc net.Conn
	r    *wire.Reader
	w    *wire.Writer

	connID uint64
	secret uint64
	addr   string
	params map[string]string
	opts   Options

	fetchSize int
	stmtSeq   int
	rows      *Rows // active cursor; must finish before the next command
	closed    bool
	fatal     error // sticky connection-level failure
}

// Connect dials a NeurDB server with default options.
func Connect(addr string) (*Conn, error) { return ConnectOptions(addr, Options{}) }

// ConnectOptions dials a NeurDB server and performs the startup handshake.
// With Options.RetryBackoff set, transient failures (dial errors and the
// server's at-capacity refusal) are retried with capped exponential backoff.
func ConnectOptions(addr string, o Options) (*Conn, error) {
	if o.FetchSize == 0 {
		o.FetchSize = DefaultFetchSize
	}
	c, err := connectOnce(addr, o)
	for attempt := 0; err != nil && retryableConnect(err) && o.RetryBackoff > 0 && attempt < retryAttempts(o); attempt++ {
		time.Sleep(backoffDelay(o.RetryBackoff, attempt))
		c, err = connectOnce(addr, o)
	}
	return c, err
}

// retryAttempts resolves the retry budget.
func retryAttempts(o Options) int {
	if o.RetryAttempts > 0 {
		return o.RetryAttempts
	}
	return 4
}

// backoffDelay is the capped exponential schedule: base, 2·base, 4·base, …
func backoffDelay(base time.Duration, attempt int) time.Duration {
	d := base << uint(attempt)
	if d > maxRetryBackoff || d <= 0 {
		d = maxRetryBackoff
	}
	return d
}

// retryableConnect reports whether a Connect failure is safe and useful to
// retry: network-level dial/handshake errors and the server's typed
// at-capacity refusal. A protocol-version mismatch or any other server
// error is permanent.
func retryableConnect(err error) bool {
	var srvErr *Error
	if errors.As(err, &srvErr) {
		return srvErr.Code == wire.CodeTooManyConns
	}
	return true // dial / IO errors
}

// connectOnce performs one dial + startup handshake.
func connectOnce(addr string, o Options) (*Conn, error) {
	netc, err := net.DialTimeout("tcp", addr, o.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("neurdb: connect %s: %w", addr, err)
	}
	c := &Conn{
		netc:      netc,
		r:         wire.NewReader(netc, o.MaxFrame),
		w:         wire.NewWriter(netc),
		addr:      addr,
		params:    make(map[string]string),
		fetchSize: o.FetchSize,
		opts:      o,
	}
	if err := c.w.WriteMsg(&wire.Startup{Version: wire.Version}); err != nil {
		netc.Close()
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		netc.Close()
		return nil, err
	}
	// Startup response: ParameterStatus*, BackendKeyData, Ready.
	for {
		msg, err := c.read()
		if err != nil {
			netc.Close()
			return nil, err
		}
		switch m := msg.(type) {
		case *wire.ParameterStatus:
			c.params[m.Key] = m.Value
		case *wire.BackendKeyData:
			c.connID, c.secret = m.ConnID, m.Secret
		case *wire.Ready:
			return c, nil
		case *wire.Error:
			netc.Close()
			return nil, &Error{Code: m.Code, Message: m.Message}
		default:
			netc.Close()
			return nil, fmt.Errorf("neurdb: unexpected startup message %T", msg)
		}
	}
}

// ServerParam returns a server-reported startup setting ("server_version",
// "protocol_version", "max_frame").
func (c *Conn) ServerParam(key string) string { return c.params[key] }

// Close terminates the connection cleanly.
func (c *Conn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if c.fatal == nil {
		c.w.WriteMsg(&wire.Terminate{})
		c.w.Flush()
	}
	return c.netc.Close()
}

// Ping verifies the connection is alive with an empty command sequence.
// With Options.RetryBackoff set, a failed round trip is retried over a
// fresh connection (replacing this Conn's socket) — safe because an empty
// Sync sequence executes nothing.
func (c *Conn) Ping() error {
	err := c.pingOnce()
	if err == nil || c.opts.RetryBackoff <= 0 || c.closed {
		return err
	}
	for attempt := 0; attempt < retryAttempts(c.opts); attempt++ {
		time.Sleep(backoffDelay(c.opts.RetryBackoff, attempt))
		nc, cerr := connectOnce(c.addr, c.opts)
		if cerr != nil {
			err = cerr
			if !retryableConnect(cerr) {
				return err
			}
			continue
		}
		// Adopt the fresh connection in place (old socket, server session,
		// and cancellation credentials are gone; prepared statements on the
		// old session are invalid, as after any reconnect).
		c.netc.Close()
		c.netc, c.r, c.w = nc.netc, nc.r, nc.w
		c.connID, c.secret, c.params = nc.connID, nc.secret, nc.params
		c.fatal, c.rows = nil, nil
		return c.pingOnce()
	}
	return err
}

// pingOnce performs one empty Sync round trip.
func (c *Conn) pingOnce() error {
	if err := c.ready(); err != nil {
		return err
	}
	if err := c.w.WriteMsg(&wire.Sync{}); err != nil {
		return c.fail(err)
	}
	if err := c.w.Flush(); err != nil {
		return c.fail(err)
	}
	_, err := c.readUntilReady(nil)
	return err
}

// Cancel asks the server to cancel this connection's in-flight query. Like
// PostgreSQL it opens a separate connection carrying the backend key, so it
// may be called from another goroutine while this Conn is streaming.
func (c *Conn) Cancel() error {
	// The side-channel dial honors the connection's own DialTimeout; the
	// historical 5s bound only remains as the default for unset options.
	dialTimeout := c.opts.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 5 * time.Second
	}
	netc, err := net.DialTimeout("tcp", c.addr, dialTimeout)
	if err != nil {
		return err
	}
	defer netc.Close()
	w := wire.NewWriter(netc)
	if err := w.WriteMsg(&wire.Cancel{ConnID: c.connID, Secret: c.secret}); err != nil {
		return err
	}
	return w.Flush()
}

// Exec executes a statement and drains its result. With args it uses the
// extended protocol through the unnamed prepared statement; without, the
// simple protocol.
func (c *Conn) Exec(sql string, args ...any) (*Result, error) {
	rows, err := c.Query(sql, args...)
	if err != nil {
		return nil, err
	}
	return rows.drain()
}

// Query executes a statement and returns a streaming cursor. With args it
// Parse/Bind/Executes the unnamed statement; without, it uses the simple
// protocol (one round trip, no plan-cache reuse).
func (c *Conn) Query(sql string, args ...any) (*Rows, error) {
	if len(args) == 0 {
		return c.simpleQuery(sql)
	}
	st, err := c.prepareAs("", sql)
	if err != nil {
		return nil, err
	}
	return st.Query(args...)
}

// Prepare creates a server-side prepared statement. The plan is compiled
// once into the server's shared plan cache; each Stmt.Query/Exec only binds
// parameters and executes.
func (c *Conn) Prepare(sql string) (*Stmt, error) {
	c.stmtSeq++
	return c.prepareAs("s"+strconv.Itoa(c.stmtSeq), sql)
}

// prepareAs issues Parse+Describe+Sync for the given statement name.
func (c *Conn) prepareAs(name, sql string) (*Stmt, error) {
	if err := c.ready(); err != nil {
		return nil, err
	}
	c.w.WriteMsg(&wire.Parse{Name: name, SQL: sql})
	c.w.WriteMsg(&wire.Describe{Kind: wire.KindStatement, Name: name})
	if err := c.sync(); err != nil {
		return nil, err
	}
	st := &Stmt{conn: c, name: name, sql: sql}
	_, err := c.readUntilReady(func(msg wire.Msg) error {
		switch m := msg.(type) {
		case *wire.ParseComplete:
			st.numParams = int(m.NumParams)
		case *wire.RowDescription:
			st.cols = colNames(m.Cols)
			st.types = colTypes(m.Cols)
		case *wire.NoData:
		default:
			return fmt.Errorf("neurdb: unexpected %T during Prepare", msg)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// simpleQuery runs one statement through the simple protocol and returns a
// cursor over the streamed response.
func (c *Conn) simpleQuery(sql string) (*Rows, error) {
	if err := c.ready(); err != nil {
		return nil, err
	}
	c.w.WriteMsg(&wire.Query{SQL: sql})
	if err := c.sync(); err != nil {
		return nil, err
	}
	rows := &Rows{conn: c, simple: true}
	c.rows = rows
	return rows, nil
}

// sync terminates a pipelined sequence and flushes it to the server.
func (c *Conn) sync() error {
	if err := c.w.WriteMsg(&wire.Sync{}); err != nil {
		return c.fail(err)
	}
	if err := c.w.Flush(); err != nil {
		return c.fail(err)
	}
	return nil
}

// ready verifies the connection is idle and usable.
func (c *Conn) ready() error {
	if c.fatal != nil {
		return c.fatal
	}
	if c.closed {
		return fmt.Errorf("neurdb: connection is closed")
	}
	if c.rows != nil {
		return fmt.Errorf("neurdb: connection has an open result cursor; Close it first")
	}
	return nil
}

// fail records a connection-level failure; the Conn is unusable afterwards.
func (c *Conn) fail(err error) error {
	if c.fatal == nil {
		c.fatal = err
	}
	return err
}

// read decodes the next server frame. An oversized frame was already
// discarded by the reader — the stream stays synchronized — so it surfaces
// as a recoverable *wire.FrameTooLargeError instead of poisoning the
// connection.
func (c *Conn) read() (wire.Msg, error) {
	op, payload, err := c.r.ReadFrame()
	if err != nil {
		var tooLarge *wire.FrameTooLargeError
		if errors.As(err, &tooLarge) {
			return nil, tooLarge
		}
		return nil, c.fail(err)
	}
	return wire.Decode(op, payload)
}

// readUntilReady consumes server messages until Ready, dispatching each to
// visit (when non-nil). A server Error is captured and returned after the
// stream reaches Ready, so the connection stays synchronized.
func (c *Conn) readUntilReady(visit func(wire.Msg) error) (*wire.Ready, error) {
	var srvErr error
	var visitErr error
	for {
		msg, err := c.read()
		if err != nil {
			var tooLarge *wire.FrameTooLargeError
			if errors.As(err, &tooLarge) {
				// Frame dropped but the stream is intact: finish the
				// sequence and report the loss.
				if srvErr == nil {
					srvErr = &Error{Code: wire.CodeTooLarge, Message: err.Error() + "; raise Options.MaxFrame"}
				}
				continue
			}
			return nil, err
		}
		switch m := msg.(type) {
		case *wire.Ready:
			if srvErr != nil {
				return nil, srvErr
			}
			if visitErr != nil {
				return nil, visitErr
			}
			return m, nil
		case *wire.Error:
			srvErr = &Error{Code: m.Code, Message: m.Message}
		default:
			if srvErr == nil && visitErr == nil && visit != nil {
				visitErr = visit(msg)
			}
		}
	}
}

// Stmt is a server-side prepared statement.
type Stmt struct {
	conn      *Conn
	name      string
	sql       string
	numParams int
	cols      []string
	types     []rel.Type
	closed    bool
}

// NumParams returns the number of parameters the statement takes.
func (st *Stmt) NumParams() int { return st.numParams }

// Columns returns the result column names (nil for statements that return
// no rows).
func (st *Stmt) Columns() []string { return st.cols }

// Exec runs the statement with args and drains the result.
func (st *Stmt) Exec(args ...any) (*Result, error) {
	rows, err := st.query(args, 0) // no suspension: drain in one Execute
	if err != nil {
		return nil, err
	}
	return rows.drain()
}

// Query runs the statement with args and returns a streaming cursor. The
// connection's fetch size bounds each round trip; the server suspends the
// portal between chunks. A negative fetch size streams the whole result
// in one unsuspended Execute.
func (st *Stmt) Query(args ...any) (*Rows, error) {
	fetch := st.conn.fetchSize
	if fetch < 0 {
		fetch = 0
	}
	return st.query(args, uint32(fetch))
}

func (st *Stmt) query(args []any, fetch uint32) (*Rows, error) {
	c := st.conn
	if st.closed {
		return nil, fmt.Errorf("neurdb: statement is closed")
	}
	if err := c.ready(); err != nil {
		return nil, err
	}
	vals, err := convertArgs(args)
	if err != nil {
		return nil, err
	}
	c.w.WriteMsg(&wire.Bind{Portal: "", Stmt: st.name, Args: vals})
	c.w.WriteMsg(&wire.Execute{Portal: "", MaxRows: fetch})
	if err := c.sync(); err != nil {
		return nil, err
	}
	rows := &Rows{conn: c, cols: st.cols, types: st.types, fetch: fetch}
	c.rows = rows
	return rows, nil
}

// Close releases the server-side statement. Closing while the connection
// has an open cursor fails without marking the statement closed, so it can
// be retried after the cursor is released.
func (st *Stmt) Close() error {
	if st.closed {
		return nil
	}
	c := st.conn
	if err := c.ready(); err != nil {
		return err
	}
	st.closed = true
	c.w.WriteMsg(&wire.Close{Kind: wire.KindStatement, Name: st.name})
	if err := c.sync(); err != nil {
		return err
	}
	_, err := c.readUntilReady(nil)
	return err
}

// Rows is a streaming result cursor over the wire. It reads DataBatch
// frames on demand — at most one batch is buffered — and requests the next
// chunk when a fetch-size-bounded portal suspends. Close before the chunk
// is exhausted closes the server portal instead of transferring the rest.
type Rows struct {
	conn   *Conn
	cols   []string
	types  []rel.Type
	fetch  uint32 // 0 = whole result in one Execute
	simple bool   // simple-protocol response (RowDescription arrives in-band)

	batch []rel.Row
	pos   int
	cur   rel.Row

	tag      string
	affected uint64

	// state: streaming -> suspended (awaiting next Execute) -> done
	suspended bool
	done      bool
	err       error
}

// Columns returns the result column names.
func (r *Rows) Columns() []string { return r.cols }

// Tag returns the server's completion tag (valid once Next returned false).
func (r *Rows) Tag() string { return r.tag }

// Affected returns the affected/returned row count (valid once Next
// returned false).
func (r *Rows) Affected() int64 { return int64(r.affected) }

// Err returns the first error encountered while streaming.
func (r *Rows) Err() error {
	if r.err != nil {
		return r.err
	}
	return nil
}

// Next advances to the next row, fetching frames (and follow-up chunks for
// suspended portals) as needed.
func (r *Rows) Next() bool {
	for {
		if r.err != nil || (r.done && r.pos >= len(r.batch)) {
			r.cur = nil
			return false
		}
		if r.pos < len(r.batch) {
			r.cur = r.batch[r.pos]
			r.pos++
			return true
		}
		if r.suspended {
			if err := r.resume(); err != nil {
				r.setErr(err)
				return false
			}
			continue
		}
		if err := r.fill(); err != nil {
			r.setErr(err)
			return false
		}
	}
}

// prime ensures column metadata is known before any row is consumed,
// fetching the first response frames for statements whose RowDescription
// arrives in-band (EXPLAIN, PREDICT). database/sql sizes its scan
// destinations from Columns() before calling Next, so the driver primes
// every cursor. Buffered rows are kept; no data is lost.
func (r *Rows) prime() error {
	if len(r.cols) > 0 || r.done || r.err != nil || r.pos < len(r.batch) || r.suspended {
		return nil
	}
	if err := r.fill(); err != nil {
		r.setErr(err)
		return err
	}
	return nil
}

// fill reads frames until a DataBatch, CommandComplete or Suspended.
func (r *Rows) fill() error {
	c := r.conn
	for {
		msg, err := c.read()
		if err != nil {
			var tooLarge *wire.FrameTooLargeError
			if errors.As(err, &tooLarge) {
				// The oversized frame (likely a DataBatch of very wide
				// rows) was discarded with the stream intact: drain the
				// sequence so the connection stays usable, then error
				// this cursor only.
				r.finishStream()
				return &Error{Code: wire.CodeTooLarge, Message: err.Error() + "; raise Options.MaxFrame"}
			}
			return err
		}
		switch m := msg.(type) {
		case *wire.BindComplete:
		case *wire.RowDescription: // simple protocol announces columns in-band
			r.cols = colNames(m.Cols)
			r.types = colTypes(m.Cols)
		case *wire.NoData:
		case *wire.DataBatch:
			r.batch, r.pos = m.Rows, 0
			if len(m.Rows) > 0 {
				return nil
			}
		case *wire.Suspended:
			// Chunk finished with rows remaining: consume the Ready for
			// this sequence, then resume on demand.
			if _, err := c.readUntilReady(nil); err != nil {
				return err
			}
			r.suspended = true
			return nil
		case *wire.CommandComplete:
			r.tag, r.affected = m.Tag, m.Affected
			r.finishStream()
			return nil
		case *wire.Error:
			// Drain to Ready so the connection stays usable, then surface.
			c.rows = nil
			r.done = true
			if _, err := c.readUntilReady(nil); err != nil {
				return err
			}
			return &Error{Code: m.Code, Message: m.Message}
		default:
			return fmt.Errorf("neurdb: unexpected %T while streaming", msg)
		}
	}
}

// resume requests the next chunk of a suspended portal.
func (r *Rows) resume() error {
	c := r.conn
	r.suspended = false
	c.w.WriteMsg(&wire.Execute{Portal: "", MaxRows: r.fetch})
	if err := c.sync(); err != nil {
		return err
	}
	return nil
}

// finishStream consumes the trailing Ready and releases the connection.
func (r *Rows) finishStream() {
	r.done = true
	if _, err := r.conn.readUntilReady(nil); err != nil && r.err == nil {
		r.err = err
	}
	r.conn.rows = nil
}

func (r *Rows) setErr(err error) {
	if r.err == nil {
		r.err = err
	}
	r.cur = nil
	r.done = true
	if r.conn.rows == r {
		r.conn.rows = nil
	}
}

// Close releases the cursor. A cursor abandoned mid-stream drains the
// current chunk; a suspended portal is closed server-side without
// transferring its remaining rows. Close is idempotent.
func (r *Rows) Close() error {
	if r.done && !r.suspended {
		return r.errOrNil()
	}
	// Drain the in-flight chunk (bounded by the fetch size).
	for !r.done && !r.suspended {
		if err := r.fill(); err != nil {
			r.setErr(err)
			return r.errOrNil()
		}
		r.batch, r.pos = nil, 0
	}
	if r.suspended {
		r.suspended = false
		r.done = true
		c := r.conn
		c.rows = nil
		c.w.WriteMsg(&wire.Close{Kind: wire.KindPortal, Name: ""})
		if err := c.sync(); err != nil {
			r.setErr(err)
			return r.errOrNil()
		}
		if _, err := c.readUntilReady(nil); err != nil {
			r.setErr(err)
		}
	}
	return r.errOrNil()
}

func (r *Rows) errOrNil() error {
	// A cursor closed after a clean stream reports no error.
	return r.err
}

// Scan copies the current row into dest, one target per column. Supported
// targets: *int, *int64, *float64, *string, *bool, *any. SQL NULL scans as
// the target's zero value (nil for *any).
func (r *Rows) Scan(dest ...any) error {
	if r.cur == nil {
		return fmt.Errorf("neurdb: Scan called without a current row")
	}
	if len(dest) != len(r.cur) {
		return fmt.Errorf("neurdb: Scan has %d targets for %d columns", len(dest), len(r.cur))
	}
	for i, d := range dest {
		if err := rel.Assign(d, r.cur[i]); err != nil {
			return fmt.Errorf("neurdb: Scan column %d: %w", i, err)
		}
	}
	return nil
}

// Values returns the current row as Go-native values (nil, int64, float64,
// string, bool), valid after Next returned true.
func (r *Rows) Values() []any {
	if r.cur == nil {
		return nil
	}
	out := make([]any, len(r.cur))
	for i, v := range r.cur {
		out[i] = v.GoValue()
	}
	return out
}

// RowText renders the current row exactly as the embedded engine's
// Row.String() does — the differential contract between remote and
// embedded results.
func (r *Rows) RowText() string {
	if r.cur == nil {
		return ""
	}
	parts := make([]string, len(r.cur))
	for i, v := range r.cur {
		parts[i] = v.String()
	}
	return strings.Join(parts, ", ")
}

// drain consumes all rows and returns the completion Result.
func (r *Rows) drain() (*Result, error) {
	for r.Next() {
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	if r.err != nil {
		return nil, r.err
	}
	return &Result{Tag: r.tag, Affected: int64(r.affected)}, nil
}

// colNames extracts names from wire column descriptors.
func colNames(cols []wire.ColDesc) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Name
	}
	return out
}

// colTypes extracts type hints from wire column descriptors.
func colTypes(cols []wire.ColDesc) []rel.Type {
	out := make([]rel.Type, len(cols))
	for i, c := range cols {
		out[i] = c.Type
	}
	return out
}

// convertArgs converts Go arguments to wire values through the engine's
// shared conversion table (rel.FromGo), so binding behaves identically
// embedded and over the wire.
func convertArgs(args []any) ([]rel.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]rel.Value, len(args))
	for i, a := range args {
		v, err := rel.FromGo(a)
		if err != nil {
			return nil, fmt.Errorf("neurdb: argument %d: %w", i+1, err)
		}
		out[i] = v
	}
	return out, nil
}
