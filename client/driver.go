package client

import (
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"
)

// Driver implements database/sql/driver.Driver over the native client, so
// any Go application can use standard idioms:
//
//	db, err := sql.Open("neurdb", "127.0.0.1:5433")
//
// The data source name is the server address. Every database/sql
// connection maps to one wire connection with its own server session;
// prepared statements are server-side (Parse/Bind/Execute), so repeated
// parameterized queries hit the server's shared plan cache.
type Driver struct{}

func init() { sql.Register("neurdb", Driver{}) }

// Open dials the server.
func (Driver) Open(name string) (driver.Conn, error) {
	c, err := Connect(name)
	if err != nil {
		return nil, err
	}
	return &sqlConn{c: c}, nil
}

type sqlConn struct{ c *Conn }

// Prepare compiles a server-side prepared statement.
func (s *sqlConn) Prepare(query string) (driver.Stmt, error) {
	st, err := s.c.Prepare(query)
	if err != nil {
		return nil, err
	}
	return &sqlStmt{st: st}, nil
}

func (s *sqlConn) Close() error { return s.c.Close() }

// Begin opens an explicit transaction on the connection's server session.
func (s *sqlConn) Begin() (driver.Tx, error) {
	if _, err := s.c.Exec("BEGIN"); err != nil {
		return nil, err
	}
	return &sqlTx{c: s.c}, nil
}

// Ping implements driver.Pinger with an empty command round trip.
func (s *sqlConn) Ping() error { return s.c.Ping() }

type sqlTx struct{ c *Conn }

func (t *sqlTx) Commit() error {
	_, err := t.c.Exec("COMMIT")
	return err
}

func (t *sqlTx) Rollback() error {
	_, err := t.c.Exec("ROLLBACK")
	return err
}

type sqlStmt struct{ st *Stmt }

func (s *sqlStmt) Close() error { return s.st.Close() }

// NumInput lets database/sql validate argument counts client-side.
func (s *sqlStmt) NumInput() int { return s.st.NumParams() }

func (s *sqlStmt) Exec(args []driver.Value) (driver.Result, error) {
	res, err := s.st.Exec(driverArgs(args)...)
	if err != nil {
		return nil, err
	}
	return sqlResult{affected: res.Affected}, nil
}

func (s *sqlStmt) Query(args []driver.Value) (driver.Rows, error) {
	rows, err := s.st.Query(driverArgs(args)...)
	if err != nil {
		return nil, err
	}
	// Statements described as NoData may still announce columns in-band
	// (EXPLAIN, PREDICT); fetch the first frames now so Columns() is
	// accurate before database/sql sizes its scan destinations.
	if err := rows.prime(); err != nil {
		rows.Close()
		return nil, err
	}
	return &sqlRows{rows: rows}, nil
}

type sqlResult struct{ affected int64 }

// LastInsertId is not supported: NeurDB has no auto-increment rowids.
func (sqlResult) LastInsertId() (int64, error) {
	return 0, fmt.Errorf("neurdb: LastInsertId is not supported")
}

func (r sqlResult) RowsAffected() (int64, error) { return r.affected, nil }

type sqlRows struct{ rows *Rows }

func (r *sqlRows) Columns() []string { return r.rows.Columns() }

func (r *sqlRows) Close() error { return r.rows.Close() }

// Next copies the next row into dest as driver values (int64, float64,
// bool, string, nil).
func (r *sqlRows) Next(dest []driver.Value) error {
	if !r.rows.Next() {
		if err := r.rows.Err(); err != nil {
			return err
		}
		return io.EOF
	}
	if len(dest) < len(r.rows.cur) {
		return fmt.Errorf("neurdb: row has %d columns, destination holds %d", len(r.rows.cur), len(dest))
	}
	for i, v := range r.rows.cur {
		dest[i] = v.GoValue()
	}
	return nil
}

// driverArgs widens []driver.Value to []any for the native API.
func driverArgs(args []driver.Value) []any {
	out := make([]any, len(args))
	for i, a := range args {
		out[i] = a
	}
	return out
}
