package client_test

import (
	"database/sql"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"neurdb"
	"neurdb/client"
	"neurdb/internal/server"
)

func startServer(t *testing.T) (*neurdb.DB, string) {
	t.Helper()
	db := neurdb.Open(neurdb.DefaultConfig())
	srv := server.New(db, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Shutdown(2 * time.Second) })
	return db, ln.Addr().String()
}

// TestDatabaseSQLDriver is the acceptance path: standard database/sql
// idioms over TCP, with repeated parameterized queries hitting the
// server's plan cache at >= 0.9.
func TestDatabaseSQLDriver(t *testing.T) {
	ndb, addr := startServer(t)

	db, err := sql.Open("neurdb", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// One underlying wire connection keeps the session (and its prepared
	// statements) stable across the test.
	db.SetMaxOpenConns(1)

	if err := db.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if _, err := db.Exec(`CREATE TABLE acct (id INT PRIMARY KEY, owner TEXT, balance DOUBLE)`); err != nil {
		t.Fatal(err)
	}

	ins, err := db.Prepare(`INSERT INTO acct VALUES (?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		res, err := ins.Exec(i, fmt.Sprintf("owner%d", i%7), float64(i)*1.5)
		if err != nil {
			t.Fatal(err)
		}
		if n, _ := res.RowsAffected(); n != 1 {
			t.Fatalf("insert %d affected %d", i, n)
		}
	}
	ins.Close()

	sel, err := db.Prepare(`SELECT balance FROM acct WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Close()

	h0, m0 := ndb.PlanCacheStats()
	for i := 0; i < 100; i++ {
		var bal float64
		if err := sel.QueryRow(i).Scan(&bal); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if bal != float64(i)*1.5 {
			t.Fatalf("balance[%d] = %g", i, bal)
		}
	}
	h1, m1 := ndb.PlanCacheStats()
	hits, misses := h1-h0, m1-m0
	if total := hits + misses; total == 0 || float64(hits)/float64(total) < 0.9 {
		t.Fatalf("plan-cache hit rate %d/%d below 0.9", hits, hits+misses)
	}

	// NULL round trip.
	if _, err := db.Exec(`INSERT INTO acct VALUES (?, ?, ?)`, 1000, nil, nil); err != nil {
		t.Fatal(err)
	}
	var owner, bal any
	if err := db.QueryRow(`SELECT owner, balance FROM acct WHERE id = ?`, 1000).Scan(&owner, &bal); err != nil {
		t.Fatal(err)
	}
	if owner != nil || bal != nil {
		t.Fatalf("NULLs scanned as %v, %v", owner, bal)
	}

	// Transactions through the driver.
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`DELETE FROM acct WHERE id = ?`, 0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	var n int
	if err := db.QueryRow(`SELECT id FROM acct WHERE id = ?`, 0).Scan(&n); err != nil {
		t.Fatalf("row deleted despite rollback: %v", err)
	}

	tx, err = db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE acct SET balance = ? WHERE id = ?`, 99.0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	var bal2 float64
	if err := db.QueryRow(`SELECT balance FROM acct WHERE id = ?`, 1).Scan(&bal2); err != nil {
		t.Fatal(err)
	}
	if bal2 != 99.0 {
		t.Fatalf("committed balance = %g", bal2)
	}
}

// TestDatabaseSQLInBandColumns covers statements whose columns are only
// announced in-band (EXPLAIN): the driver must prime the cursor so
// database/sql sizes its destinations correctly instead of panicking.
func TestDatabaseSQLInBandColumns(t *testing.T) {
	_, addr := startServer(t)
	db, err := sql.Open("neurdb", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE x (id INT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query(`EXPLAIN SELECT id FROM x WHERE id = ?`, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 1 || cols[0] != "plan" {
		t.Fatalf("EXPLAIN columns = %v", cols)
	}
	n := 0
	for rows.Next() {
		var line string
		if err := rows.Scan(&line); err != nil {
			t.Fatal(err)
		}
		if line == "" {
			t.Fatal("empty plan line")
		}
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("EXPLAIN returned no rows")
	}
}

// TestDifferentialWireVsEmbedded runs a query set both embedded
// (Session.Query) and over the wire (simple and prepared) and requires
// byte-identical textual results — the correctness contract for the
// protocol's value encoding and streaming order.
func TestDifferentialWireVsEmbedded(t *testing.T) {
	ndb, addr := startServer(t)

	seed := []string{
		`CREATE TABLE item (id INT PRIMARY KEY, cat TEXT, price DOUBLE, stock INT, active BOOLEAN)`,
		`CREATE TABLE cat (name TEXT, boost DOUBLE)`,
		`INSERT INTO cat VALUES ('a',1.5),('b',2.0),('c',0.5),(NULL,0.0)`,
	}
	for _, s := range seed {
		if _, err := ndb.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	sb.WriteString(`INSERT INTO item VALUES `)
	for i := 0; i < 1000; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		cat := []string{"'a'", "'b'", "'c'", "NULL"}[i%4]
		fmt.Fprintf(&sb, "(%d,%s,%g,%d,%v)", i, cat, float64(i)*0.25, i%13, i%2 == 0)
	}
	if _, err := ndb.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}
	if _, err := ndb.Exec(`ANALYZE`); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		`SELECT id, cat, price, stock, active FROM item WHERE id = 37`,
		`SELECT id, price FROM item WHERE price >= 200.0 ORDER BY id`,
		`SELECT cat, COUNT(*), SUM(price), AVG(stock) FROM item GROUP BY cat`,
		`SELECT id FROM item WHERE active = true ORDER BY price DESC LIMIT 17`,
		`SELECT item.id, cat.boost FROM item, cat WHERE item.cat = cat.name ORDER BY item.id LIMIT 50`,
		`SELECT id, stock FROM item WHERE stock > 10 AND price < 100.0 ORDER BY id`,
		`SELECT MIN(price), MAX(price), COUNT(*) FROM item`,
		`SELECT id FROM item WHERE cat = 'b' ORDER BY id LIMIT 0`,
	}

	session := ndb.NewSession()
	c, err := client.ConnectOptions(addr, client.Options{FetchSize: 64}) // force chunked streaming
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, q := range queries {
		embedded := embeddedResult(t, session, q)

		// Simple protocol.
		rows, err := c.Query(q)
		if err != nil {
			t.Fatalf("wire simple %q: %v", q, err)
		}
		if got := wireResult(t, rows); got != embedded {
			t.Errorf("simple %q:\nwire:     %q\nembedded: %q", q, got, embedded)
		}

		// Extended protocol with a chunked cursor.
		st, err := c.Prepare(q)
		if err != nil {
			t.Fatalf("prepare %q: %v", q, err)
		}
		rows, err = st.Query()
		if err != nil {
			t.Fatalf("wire prepared %q: %v", q, err)
		}
		if got := wireResult(t, rows); got != embedded {
			t.Errorf("prepared %q:\nwire:     %q\nembedded: %q", q, got, embedded)
		}
		st.Close()
	}
}

func embeddedResult(t *testing.T, s *neurdb.Session, q string) string {
	t.Helper()
	rows, err := s.Query(q)
	if err != nil {
		t.Fatalf("embedded %q: %v", q, err)
	}
	defer rows.Close()
	var sb strings.Builder
	sb.WriteString(strings.Join(rows.Columns(), "|"))
	for rows.Next() {
		sb.WriteByte('\n')
		sb.WriteString(rows.Row().String())
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("embedded %q: %v", q, err)
	}
	return sb.String()
}

func wireResult(t *testing.T, rows *client.Rows) string {
	t.Helper()
	var sb strings.Builder
	var wroteCols bool
	for rows.Next() {
		if !wroteCols {
			sb.WriteString(strings.Join(rows.Columns(), "|"))
			wroteCols = true
		}
		sb.WriteByte('\n')
		sb.WriteString(rows.RowText())
	}
	if !wroteCols {
		sb.WriteString(strings.Join(rows.Columns(), "|"))
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestLargeStatementNoLineCeiling pushes a multi-megabyte statement through
// the wire — the case the old line protocol's 1 MiB scanner cap silently
// dropped.
func TestLargeStatementNoLineCeiling(t *testing.T) {
	_, addr := startServer(t)
	c, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Exec(`CREATE TABLE blob (id INT PRIMARY KEY, body TEXT)`); err != nil {
		t.Fatal(err)
	}
	body := strings.Repeat("m", 2<<20) // 2 MiB literal in one statement
	if _, err := c.Exec(fmt.Sprintf(`INSERT INTO blob VALUES (1,'%s')`, body)); err != nil {
		t.Fatalf("large insert: %v", err)
	}
	rows, err := c.Query(`SELECT body FROM blob WHERE id = ?`, 1)
	if err != nil {
		t.Fatal(err)
	}
	var got string
	for rows.Next() {
		rows.Scan(&got)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if got != body {
		t.Fatalf("large body corrupted: %d bytes back, want %d", len(got), len(body))
	}
}

// TestEarlyCloseAbandonsChunkedResult closes a chunked cursor early: the
// remaining rows are never transferred, the server portal is closed, and
// the connection immediately serves the next query.
func TestEarlyCloseAbandonsChunkedResult(t *testing.T) {
	ndb, addr := startServer(t)
	c, err := client.ConnectOptions(addr, client.Options{FetchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Exec(`CREATE TABLE e (id INT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString(`INSERT INTO e VALUES `)
	for i := 0; i < 10000; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "(%d)", i)
	}
	if _, err := c.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}

	st, err := c.Prepare(`SELECT id FROM e`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !rows.Next() {
			t.Fatalf("row %d missing: %v", i, rows.Err())
		}
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}

	// The cursor's read transaction must be gone: a full count still works
	// and sees every row.
	res, err := c.Exec(`SELECT COUNT(*) FROM e`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Fatalf("count rows = %d", res.Affected)
	}
	_ = ndb
}

// TestConnBusyGuard rejects interleaved use while a cursor is open.
func TestConnBusyGuard(t *testing.T) {
	_, addr := startServer(t)
	c, err := client.ConnectOptions(addr, client.Options{FetchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Exec(`CREATE TABLE b (id INT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`INSERT INTO b VALUES (1),(2),(3),(4),(5)`); err != nil {
		t.Fatal(err)
	}
	st, err := c.Prepare(`SELECT id FROM b`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	if _, err := c.Exec(`SELECT id FROM b`); err == nil {
		t.Fatal("interleaved Exec over an open cursor did not error")
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`SELECT id FROM b`); err != nil {
		t.Fatalf("exec after Close: %v", err)
	}
}
