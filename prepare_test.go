package neurdb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"neurdb/internal/executor"
	"neurdb/internal/plan"
	"neurdb/internal/storage"
	"neurdb/internal/txn"
)

// seedKV creates and fills a table large enough to span several executor
// batches, with NULLs sprinkled into the value column.
func seedKV(t *testing.T, db *DB, n int) {
	t.Helper()
	mustExec(t, db, `CREATE TABLE kv (id INT PRIMARY KEY, grp INT, val DOUBLE)`)
	const chunk = 250
	for base := 0; base < n; base += chunk {
		var sb strings.Builder
		sb.WriteString("INSERT INTO kv VALUES ")
		for i := base; i < base+chunk && i < n; i++ {
			if i > base {
				sb.WriteByte(',')
			}
			if i%11 == 0 {
				fmt.Fprintf(&sb, "(%d,%d,NULL)", i, i%7)
			} else {
				fmt.Fprintf(&sb, "(%d,%d,%g)", i, i%7, float64(i)*0.5)
			}
		}
		mustExec(t, db, sb.String())
	}
}

// rowsToSorted renders rows to strings and sorts them, so comparisons are
// order-insensitive where ordering is unspecified.
func rowsToSorted(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

// TestPreparedVsDirectDifferential executes the same statements prepared
// (with parameters) and direct (with literals) and requires identical
// results, including NULL parameters and LIMIT 0.
func TestPreparedVsDirectDifferential(t *testing.T) {
	db := openTest(t)
	seedKV(t, db, 1000)
	mustExec(t, db, `ANALYZE kv`)

	cases := []struct {
		prepared string
		args     []any
		direct   string
	}{
		{`SELECT val FROM kv WHERE id = ?`, []any{423}, `SELECT val FROM kv WHERE id = 423`},
		{`SELECT id FROM kv WHERE id >= ? AND id < ?`, []any{100, 140}, `SELECT id FROM kv WHERE id >= 100 AND id < 140`},
		{`SELECT id, val FROM kv WHERE grp = ? AND val > ?`, []any{3, 200.0}, `SELECT id, val FROM kv WHERE grp = 3 AND val > 200.0`},
		// NULL parameter: comparisons with NULL match nothing.
		{`SELECT id FROM kv WHERE val = ?`, []any{nil}, `SELECT id FROM kv WHERE val = NULL`},
		// Parameter in a projected expression.
		{`SELECT id + ? FROM kv WHERE id < 5`, []any{1000}, `SELECT id + 1000 FROM kv WHERE id < 5`},
		// LIMIT 0 must return no rows and pull nothing.
		{`SELECT id FROM kv WHERE grp = ? LIMIT 0`, []any{2}, `SELECT id FROM kv WHERE grp = 2 LIMIT 0`},
		// Aggregation with a parameterized filter.
		{`SELECT grp, COUNT(*), AVG(val) FROM kv WHERE id < ? GROUP BY grp`, []any{500}, `SELECT grp, COUNT(*), AVG(val) FROM kv WHERE id < 500 GROUP BY grp`},
		// ORDER BY with a parameterized predicate.
		{`SELECT id FROM kv WHERE grp = ? ORDER BY id DESC LIMIT 10`, []any{5}, `SELECT id FROM kv WHERE grp = 5 ORDER BY id DESC LIMIT 10`},
		// $n spelling, out of textual order.
		{`SELECT id FROM kv WHERE id > $2 AND id < $1`, []any{20, 10}, `SELECT id FROM kv WHERE id > 10 AND id < 20`},
	}
	for _, tc := range cases {
		st, err := db.Prepare(tc.prepared)
		if err != nil {
			t.Fatalf("Prepare(%q): %v", tc.prepared, err)
		}
		for run := 0; run < 3; run++ { // re-execution must stay correct
			got, err := st.Exec(tc.args...)
			if err != nil {
				t.Fatalf("Stmt.Exec(%q, run %d): %v", tc.prepared, run, err)
			}
			want := mustExec(t, db, tc.direct)
			g, w := rowsToSorted(got), rowsToSorted(want)
			if len(g) != len(w) {
				t.Fatalf("%q run %d: prepared %d rows, direct %d rows", tc.prepared, run, len(g), len(w))
			}
			for i := range g {
				if g[i] != w[i] {
					t.Fatalf("%q run %d row %d: prepared %q, direct %q", tc.prepared, run, i, g[i], w[i])
				}
			}
		}
		st.Close()
		if _, err := st.Exec(tc.args...); err == nil {
			t.Fatalf("Exec on closed statement %q succeeded", tc.prepared)
		}
	}
}

// TestStreamingRowsMatchExec drives the cursor API over a multi-batch
// result and checks it yields exactly what Exec materializes, while never
// holding more than one executor batch.
func TestStreamingRowsMatchExec(t *testing.T) {
	db := openTest(t)
	seedKV(t, db, 1500)

	want := mustExec(t, db, `SELECT id, val FROM kv WHERE grp <> 6`)
	rows, err := db.Query(`SELECT id, val FROM kv WHERE grp <> ?`, 6)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for rows.Next() {
		got = append(got, rows.Row().String())
		// Structural check for the acceptance criterion: the cursor holds
		// one executor batch at a time. A batch may overshoot BatchSize by
		// less than one heap page (the producer appends whole pages until
		// the target is reached), never by more.
		if n := rows.batch.Len(); n >= executor.BatchSize+storage.RowsPerPage {
			t.Fatalf("cursor buffer holds %d rows (>= one batch of %d + one page of %d)",
				n, executor.BatchSize, storage.RowsPerPage)
		}
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want.Rows) {
		t.Fatalf("streamed %d rows, Exec returned %d", len(got), len(want.Rows))
	}
	sort.Strings(got)
	w := rowsToSorted(want)
	for i := range got {
		if got[i] != w[i] {
			t.Fatalf("row %d: streamed %q, Exec %q", i, got[i], w[i])
		}
	}
}

// TestRowsScan checks Scan target conversions including NULL handling.
func TestRowsScan(t *testing.T) {
	db := openTest(t)
	mustExec(t, db, `CREATE TABLE s (i INT, f DOUBLE, s TEXT, b BOOL)`)
	mustExec(t, db, `INSERT INTO s VALUES (7, 2.5, 'hi', TRUE), (NULL, NULL, NULL, NULL)`)
	rows, err := db.Query(`SELECT i, f, s, b FROM s`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()

	var i int64
	var f float64
	var str string
	var b bool
	if !rows.Next() {
		t.Fatal("no first row")
	}
	if err := rows.Scan(&i, &f, &str, &b); err != nil {
		t.Fatal(err)
	}
	if i != 7 || f != 2.5 || str != "hi" || b != true {
		t.Fatalf("scanned (%d, %g, %q, %v)", i, f, str, b)
	}
	if !rows.Next() {
		t.Fatal("no second row")
	}
	var anyI, anyF any
	if err := rows.Scan(&anyI, &anyF, &str, &b); err != nil {
		t.Fatal(err)
	}
	if anyI != nil || anyF != nil || str != "" || b != false {
		t.Fatalf("NULL row scanned as (%v, %v, %q, %v)", anyI, anyF, str, b)
	}
	if err := rows.Scan(&i); err == nil {
		t.Fatal("arity-mismatched Scan succeeded")
	}
}

// TestPlanCacheInvalidation checks hit/miss accounting and that DDL and
// ANALYZE invalidate cached plans (and that replanning picks up a new
// access path).
func TestPlanCacheInvalidation(t *testing.T) {
	db := openTest(t)
	mustExec(t, db, `CREATE TABLE pc (id INT, v DOUBLE)`) // no index yet
	for i := 0; i < 400; i += 100 {
		var sb strings.Builder
		sb.WriteString("INSERT INTO pc VALUES ")
		for j := i; j < i+100; j++ {
			if j > i {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "(%d,%g)", j, float64(j))
		}
		mustExec(t, db, sb.String())
	}
	// Statistics first, so distinct counts exist when the index appears and
	// the replanned generic plan can prefer it.
	mustExec(t, db, `ANALYZE pc`)

	const sql = `SELECT v FROM pc WHERE id = ?`
	st, err := db.Prepare(sql) // plans and caches: 1 miss
	if err != nil {
		t.Fatal(err)
	}
	h0, m0 := db.PlanCacheStats()
	if h0 != 0 || m0 != 1 {
		t.Fatalf("after Prepare: hits=%d misses=%d, want 0/1", h0, m0)
	}
	if _, err := st.Exec(5); err != nil { // cache hit
		t.Fatal(err)
	}
	if h, _ := db.PlanCacheStats(); h != 1 {
		t.Fatalf("after first Exec: hits=%d, want 1", h)
	}
	if entryPlan(t, db, sql).contains("IndexScan") {
		t.Fatal("plan uses an index before one exists")
	}

	// DDL invalidates: the next execution must replan and find the index.
	mustExec(t, db, `CREATE INDEX pc_id ON pc (id)`)
	res, err := st.Exec(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("post-DDL exec returned %d rows", len(res.Rows))
	}
	_, mAfterDDL := db.PlanCacheStats()
	if mAfterDDL != m0+1 {
		t.Fatalf("CREATE INDEX did not invalidate: misses=%d, want %d", mAfterDDL, m0+1)
	}
	if !entryPlan(t, db, sql).contains("IndexScan") {
		t.Fatal("replanned statement still ignores the new index")
	}

	// ANALYZE invalidates too (fresh statistics change plan choice).
	mustExec(t, db, `ANALYZE pc`)
	if _, err := st.Exec(5); err != nil {
		t.Fatal(err)
	}
	if _, m := db.PlanCacheStats(); m != mAfterDDL+1 {
		t.Fatalf("ANALYZE did not invalidate: misses=%d, want %d", m, mAfterDDL+1)
	}
	// Steady state: hits only.
	_, mSteady := db.PlanCacheStats()
	for i := 0; i < 10; i++ {
		if _, err := st.Exec(i); err != nil {
			t.Fatal(err)
		}
	}
	if _, m := db.PlanCacheStats(); m != mSteady {
		t.Fatalf("steady-state executions missed: misses went %d -> %d", mSteady, m)
	}
	// A second session preparing the same text hits the shared cache, and
	// the monitor sees the hit/miss stream.
	if _, err := db.NewSession().Prepare(sql); err != nil {
		t.Fatal(err)
	}
	if mean := db.Monitor().Mean("plancache.hit"); mean <= 0 {
		t.Fatalf("monitor plancache.hit mean = %g, want > 0", mean)
	}
}

// planView wraps a cached plan for assertions.
type planView struct{ text string }

func (p planView) contains(s string) bool { return strings.Contains(p.text, s) }

// entryPlan reads the cached plan for sql (white-box).
func entryPlan(t *testing.T, db *DB, sql string) planView {
	t.Helper()
	key := planKey(db.OptimizerModeNow(), sql)
	db.plans.mu.Lock()
	defer db.plans.mu.Unlock()
	el, ok := db.plans.entries[key]
	if !ok {
		t.Fatalf("no cached plan for %q", sql)
	}
	return planView{text: plan.Explain(el.Value.(*planEntry).node)}
}

// TestPlanCacheLRUBound checks the cache never exceeds its capacity.
func TestPlanCacheLRUBound(t *testing.T) {
	db := openTest(t)
	mustExec(t, db, `CREATE TABLE b (id INT)`)
	mustExec(t, db, `INSERT INTO b VALUES (1)`)
	for i := 0; i < DefaultPlanCacheSize+50; i++ {
		if _, err := db.Prepare(fmt.Sprintf(`SELECT id FROM b WHERE id = %d`, i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := db.plans.len(); n > DefaultPlanCacheSize {
		t.Fatalf("plan cache holds %d entries, cap %d", n, DefaultPlanCacheSize)
	}
}

// TestConcurrentStmtAcrossSessions runs prepared statements concurrently on
// independent sessions sharing the plan cache (meaningful under -race).
func TestConcurrentStmtAcrossSessions(t *testing.T) {
	db := openTest(t)
	seedKV(t, db, 700)
	mustExec(t, db, `ANALYZE kv`)

	const goroutines = 8
	const iters = 60
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := db.NewSession()
			st, err := sess.Prepare(`SELECT val FROM kv WHERE id = ?`)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < iters; i++ {
				id := (g*131 + i*17) % 700
				rows, err := st.Query(id)
				if err != nil {
					errs <- err
					return
				}
				n := 0
				for rows.Next() {
					n++
				}
				if err := rows.Err(); err != nil {
					errs <- err
					return
				}
				rows.Close()
				if n != 1 {
					errs <- fmt.Errorf("id %d returned %d rows", id, n)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	hits, misses := db.PlanCacheStats()
	if hits == 0 {
		t.Fatalf("concurrent sessions never hit the shared cache (hits=%d misses=%d)", hits, misses)
	}
}

// TestRowsCloseMidStreamReleasesTxn verifies that closing a cursor before
// the stream is drained finalizes its read transaction: afterwards the
// oldest-active snapshot horizon advances past the reader's snapshot.
func TestRowsCloseMidStreamReleasesTxn(t *testing.T) {
	db := openTest(t)
	seedKV(t, db, 1200) // several batches

	rows, err := db.Query(`SELECT id FROM kv`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("no rows streamed")
	}
	during := db.mgr.OldestActiveTS()
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	probe := db.mgr.Begin(txn.Snapshot, true)
	after := db.mgr.OldestActiveTS()
	db.mgr.Abort(probe)
	// While the cursor was open its read txn pinned the horizon at its
	// StartTS; once closed, the probe (begun later) must be the oldest.
	if after <= during {
		t.Fatalf("snapshot horizon did not advance after Close: during=%d after=%d", during, after)
	}
	// Closing twice is fine; iteration after Close yields nothing.
	if rows.Next() {
		t.Fatal("Next returned true after Close")
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestQueryWrapsNonSelect checks the cursor API covers the whole dialect.
func TestQueryWrapsNonSelect(t *testing.T) {
	db := openTest(t)
	mustExec(t, db, `CREATE TABLE q (id INT)`)
	rows, err := db.Query(`INSERT INTO q VALUES (1), (2), (3)`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Affected() != 3 || rows.Message() != "INSERT 3" {
		t.Fatalf("INSERT via Query: affected=%d message=%q", rows.Affected(), rows.Message())
	}
	if rows.Next() {
		t.Fatal("INSERT produced rows")
	}
	rows.Close()

	rows, err = db.Query(`EXPLAIN SELECT id FROM q WHERE id = 2`)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	rows.Close()
	if n == 0 {
		t.Fatal("EXPLAIN via Query produced no plan lines")
	}
}

// TestPreparedDML runs prepared INSERT/UPDATE/DELETE re-execution.
func TestPreparedDML(t *testing.T) {
	db := openTest(t)
	mustExec(t, db, `CREATE TABLE d (id INT PRIMARY KEY, v DOUBLE)`)

	ins, err := db.Prepare(`INSERT INTO d VALUES (?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := ins.Exec(i, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if res := mustExec(t, db, `SELECT COUNT(*) FROM d`); res.Rows[0][0].AsInt() != 50 {
		t.Fatalf("prepared inserts: count = %s", res.Rows[0][0])
	}

	up, err := db.Prepare(`UPDATE d SET v = v + $2 WHERE id = $1`)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := up.Exec(7, 100.0); err != nil || res.Affected != 1 {
		t.Fatalf("prepared update: %v affected=%v", err, res)
	}
	if res := mustExec(t, db, `SELECT v FROM d WHERE id = 7`); res.Rows[0][0].AsFloat() != 107 {
		t.Fatalf("update result: %s", res.Rows[0][0])
	}

	del, err := db.Prepare(`DELETE FROM d WHERE id >= ?`)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := del.Exec(40); err != nil || res.Affected != 10 {
		t.Fatalf("prepared delete: %v affected=%v", err, res)
	}

	// Argument-count mismatch is rejected before execution.
	if _, err := ins.Exec(1); err == nil {
		t.Fatal("short argument list accepted")
	}
	if _, err := db.Exec(`SELECT id FROM d WHERE id = ?`); err == nil {
		t.Fatal("Exec with missing argument accepted")
	}
}

// TestMultiValuesInsertAtomic checks a bad tuple anywhere in a multi-VALUES
// INSERT inserts nothing (the batch path validates up front).
func TestMultiValuesInsertAtomic(t *testing.T) {
	db := openTest(t)
	mustExec(t, db, `CREATE TABLE a (id INT NOT NULL, v DOUBLE)`)
	if _, err := db.Exec(`INSERT INTO a VALUES (1, 1.0), (NULL, 2.0), (3, 3.0)`); err == nil {
		t.Fatal("NOT NULL violation accepted")
	}
	if res := mustExec(t, db, `SELECT COUNT(*) FROM a`); res.Rows[0][0].AsInt() != 0 {
		t.Fatalf("failed INSERT left %s rows", res.Rows[0][0])
	}
}

// TestPredictValuesArity checks inline PREDICT rows are validated against
// the feature count up front.
func TestPredictValuesArity(t *testing.T) {
	db := openTest(t)
	mustExec(t, db, `CREATE TABLE p (a DOUBLE, b DOUBLE, y DOUBLE)`)
	mustExec(t, db, `INSERT INTO p VALUES (1, 2, 3), (2, 3, 5), (3, 4, 7)`)
	_, err := db.Exec(`PREDICT VALUE OF y FROM p TRAIN ON a, b VALUES (1)`)
	if err == nil {
		t.Fatal("short VALUES row accepted")
	}
	if !strings.Contains(err.Error(), "feature columns") {
		t.Fatalf("error does not explain the arity: %v", err)
	}
	if _, err := db.Exec(`PREDICT VALUE OF y FROM p TRAIN ON a, b VALUES (1, 2, 3)`); err == nil {
		t.Fatal("long VALUES row accepted")
	}
}

// TestAdHocPlanCache: repeated non-prepared Session.Exec/Query SELECTs must
// hit the shared plan cache on the same (mode, SQL) key path prepared
// statements use, and DDL must invalidate them like any other entry.
func TestAdHocPlanCache(t *testing.T) {
	db := openTest(t)
	seedKV(t, db, 300)

	const sql = `SELECT grp, COUNT(*) FROM kv GROUP BY grp`
	h0, m0 := db.PlanCacheStats()
	first, err := db.Exec(sql) // miss: plans and caches
	if err != nil {
		t.Fatal(err)
	}
	if h, m := db.PlanCacheStats(); h != h0 || m != m0+1 {
		t.Fatalf("first ad-hoc exec: hits %d->%d misses %d->%d, want miss+1", h0, h, m0, m)
	}
	second, err := db.Exec(sql) // hit
	if err != nil {
		t.Fatal(err)
	}
	if h, _ := db.PlanCacheStats(); h != h0+1 {
		t.Fatalf("second ad-hoc exec did not hit the cache")
	}
	if len(first.Rows) != len(second.Rows) {
		t.Fatalf("cached plan changed results: %d vs %d rows", len(first.Rows), len(second.Rows))
	}

	// A prepared statement with the same text shares the entry.
	st, err := db.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if h, _ := db.PlanCacheStats(); h != h0+2 {
		t.Fatalf("Prepare of the same text missed the ad-hoc entry")
	}

	// Query path hits too, and parameters bind per execution.
	rows, err := db.Query(`SELECT val FROM kv WHERE id = ?`, 7) // miss
	if err != nil {
		t.Fatal(err)
	}
	rows.Close()
	_, mBefore := db.PlanCacheStats()
	rows, err = db.Query(`SELECT val FROM kv WHERE id = ?`, 8) // hit, new arg
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for rows.Next() {
		got++
	}
	rows.Close()
	if got != 1 {
		t.Fatalf("parameterized cached plan returned %d rows, want 1", got)
	}
	if _, m := db.PlanCacheStats(); m != mBefore {
		t.Fatalf("repeated ad-hoc query missed the cache")
	}

	// DDL bumps the catalog version: the ad-hoc entry is invalidated.
	mustExec(t, db, `CREATE INDEX kv_grp ON kv (grp)`)
	_, mBefore = db.PlanCacheStats()
	if _, err := db.Exec(sql); err != nil {
		t.Fatal(err)
	}
	if _, m := db.PlanCacheStats(); m != mBefore+1 {
		t.Fatalf("DDL did not invalidate the ad-hoc cached plan")
	}
}
