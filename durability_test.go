package neurdb

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"neurdb/internal/wal"
)

func durableConfig(dir string) Config {
	cfg := DefaultConfig()
	cfg.DataDir = dir
	return cfg
}

func mustExecArgs(t *testing.T, db *DB, sql string, args ...any) *Result {
	t.Helper()
	res, err := db.Exec(sql, args...)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res
}

// queryInts returns the first column of a query as int64s.
func queryInts(t *testing.T, db *DB, sql string) []int64 {
	t.Helper()
	res, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	out := make([]int64, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, r[0].I)
	}
	return out
}

func TestReopenRecoversData(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE kv (id INT PRIMARY KEY, name TEXT, score DOUBLE)`)
	for i := 0; i < 50; i++ {
		mustExecArgs(t, db, `INSERT INTO kv VALUES (?, ?, ?)`, i, fmt.Sprintf("n%d", i), float64(i)/2)
	}
	mustExec(t, db, `UPDATE kv SET score = 99.5 WHERE id = 7`)
	mustExec(t, db, `DELETE FROM kv WHERE id >= 40`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDB(durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer db2.Close()
	ids := queryInts(t, db2, `SELECT id FROM kv ORDER BY id`)
	if len(ids) != 40 || ids[0] != 0 || ids[39] != 39 {
		t.Fatalf("recovered %d rows (%v...)", len(ids), ids[:min(len(ids), 5)])
	}
	res := mustExec(t, db2, `SELECT score FROM kv WHERE id = 7`)
	if len(res.Rows) != 1 || res.Rows[0][0].F != 99.5 {
		t.Fatalf("update lost: %+v", res.Rows)
	}
	// New writes after recovery must not collide with recovered state.
	mustExec(t, db2, `INSERT INTO kv VALUES (100, 'post', 1.0)`)
	if n := len(queryInts(t, db2, `SELECT id FROM kv`)); n != 41 {
		t.Fatalf("post-recovery insert: %d rows", n)
	}
}

func TestReopenWithoutClose(t *testing.T) {
	// Abandoning the instance without Close models a crash: under the default
	// commit-sync mode every acknowledged commit is already fsynced.
	dir := t.TempDir()
	db, err := OpenDB(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY)`)
	for i := 0; i < 10; i++ {
		mustExecArgs(t, db, `INSERT INTO t VALUES (?)`, i)
	}
	// No Close.

	db2, err := OpenDB(durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer db2.Close()
	if n := len(queryInts(t, db2, `SELECT id FROM t`)); n != 10 {
		t.Fatalf("recovered %d rows, want 10", n)
	}
}

func TestDDLRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE keep (id INT PRIMARY KEY, tag TEXT)`)
	mustExec(t, db, `CREATE TABLE gone (id INT PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO keep VALUES (1, 'a'), (2, 'b')`)
	mustExec(t, db, `CREATE INDEX keep_tag ON keep (tag)`)
	mustExec(t, db, `CREATE INDEX keep_tag_h ON keep (tag) USING HASH`)
	mustExec(t, db, `DROP TABLE gone`)
	db.Close()

	db2, err := OpenDB(durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer db2.Close()
	if _, err := db2.cat.Get("gone"); err == nil {
		t.Fatal("dropped table resurrected")
	}
	tbl, err := db2.cat.Get("keep")
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, ix := range tbl.Indexes() {
		names[ix.Name] = true
	}
	for _, want := range []string{"keep_id", "keep_tag", "keep_tag_h"} {
		if !names[want] {
			t.Fatalf("index %s not recovered (have %v)", want, names)
		}
	}
	// Index contents must be rebuilt, not just definitions.
	res := mustExec(t, db2, `SELECT id FROM keep WHERE tag = 'b'`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Fatalf("index lookup after recovery: %+v", res.Rows)
	}
}

func TestCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	for i := 0; i < 30; i++ {
		mustExecArgs(t, db, `INSERT INTO t VALUES (?, 0)`, i)
	}
	mustExec(t, db, `DELETE FROM t WHERE id < 5`)
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// Pre-checkpoint segments must be gone; only the live one remains.
	segs, err := wal.ListSegments(nil, dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("after checkpoint: %d segments (err=%v)", len(segs), err)
	}
	// Post-checkpoint commits land in the retained segment.
	mustExec(t, db, `INSERT INTO t VALUES (100, 1)`)
	mustExec(t, db, `UPDATE t SET v = 7 WHERE id = 10`)
	db.Close()

	db2, err := OpenDB(durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer db2.Close()
	ids := queryInts(t, db2, `SELECT id FROM t ORDER BY id`)
	if len(ids) != 26 || ids[0] != 5 || ids[25] != 100 {
		t.Fatalf("recovered ids: %v", ids)
	}
	res := mustExec(t, db2, `SELECT v FROM t WHERE id = 10`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 7 {
		t.Fatalf("post-checkpoint update lost: %+v", res.Rows)
	}

	// A second checkpoint from the recovered instance must also be clean.
	if err := db2.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after recovery: %v", err)
	}
}

func TestRecoveryIdempotentDoubleReplay(t *testing.T) {
	// Two recoveries in a row (no writes in between) must converge to the
	// same state: replay is pure redo over idempotent installs.
	dir := t.TempDir()
	db, err := OpenDB(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO t VALUES (1), (2), (3)`)
	mustExec(t, db, `DELETE FROM t WHERE id = 2`)
	db.Close()

	for round := 0; round < 2; round++ {
		dbr, err := OpenDB(durableConfig(dir))
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		ids := queryInts(t, dbr, `SELECT id FROM t ORDER BY id`)
		if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
			t.Fatalf("round %d: ids %v", round, ids)
		}
		dbr.Close()
	}
}

func TestSyncModesRecover(t *testing.T) {
	for _, mode := range []string{"interval", "off"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			cfg := durableConfig(dir)
			cfg.WalSync = mode
			cfg.WalSyncInterval = time.Millisecond
			db, err := OpenDB(cfg)
			if err != nil {
				t.Fatal(err)
			}
			mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY)`)
			for i := 0; i < 20; i++ {
				mustExecArgs(t, db, `INSERT INTO t VALUES (?)`, i)
			}
			// Close flushes the tail in every mode, so a clean shutdown
			// loses nothing even without per-commit fsync.
			db.Close()
			db2, err := OpenDB(cfg)
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer db2.Close()
			if n := len(queryInts(t, db2, `SELECT id FROM t`)); n != 20 {
				t.Fatalf("recovered %d rows, want 20", n)
			}
		})
	}
}

func TestOpenDBRejectsBadSyncMode(t *testing.T) {
	cfg := durableConfig(t.TempDir())
	cfg.WalSync = "yolo"
	if _, err := OpenDB(cfg); err == nil {
		t.Fatal("bad wal_sync mode must fail OpenDB")
	}
}

func TestBackgroundCheckpointer(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.CheckpointInterval = 10 * time.Millisecond
	db, err := OpenDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
	deadline := time.Now().Add(5 * time.Second)
	for {
		cks, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt"))
		if len(cks) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background checkpointer never wrote a checkpoint")
		}
		time.Sleep(5 * time.Millisecond)
	}
	db.Close()
	db2, err := OpenDB(cfg)
	if err != nil {
		t.Fatalf("recovery from background checkpoint: %v", err)
	}
	defer db2.Close()
	if n := len(queryInts(t, db2, `SELECT id FROM t`)); n != 1 {
		t.Fatalf("recovered %d rows, want 1", n)
	}
}

// --- kill -9 mid-commit-storm differential test -----------------------------
//
// The parent re-execs the test binary as a child process (TestCrashChild)
// pointed at a shared data directory. The child runs a concurrent insert
// storm, journaling "try" before each statement and "ack" after the commit
// is acknowledged, then the parent SIGKILLs it mid-storm, recovers the
// directory in-process, and checks the durability contract differentially:
// every acknowledged commit is recovered, everything recovered was at least
// attempted, and each writer's recovered rows form a prefix of its attempt
// sequence (serial per-writer inserts admit at most one in-flight row).
func TestCrashRecoveryStorm(t *testing.T) {
	if os.Getenv("NEURDB_CRASH_CHILD") != "" {
		t.Skip("child entrypoint")
	}
	if testing.Short() {
		t.Skip("crash storm needs a subprocess")
	}
	dir := t.TempDir()
	journal := filepath.Join(dir, "journal.txt")

	cmd := exec.Command(os.Args[0], "-test.run", "TestCrashChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		"NEURDB_CRASH_CHILD=1",
		"NEURDB_CRASH_DIR="+dir,
		"NEURDB_CRASH_JOURNAL="+journal,
	)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Let the storm run until a healthy number of commits were acknowledged.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if acks := countJournal(journal, "ack "); acks >= 200 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("child never reached 200 acks (journal: %d lines)", countJournal(journal, ""))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // reap; exit status is meaningless after SIGKILL

	tried, acked := readJournal(t, journal)
	if len(acked) == 0 {
		t.Fatal("no acknowledged commits to verify")
	}

	db, err := OpenDB(durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery after SIGKILL: %v", err)
	}
	defer db.Close()
	recovered := map[int64]bool{}
	for _, id := range queryInts(t, db, `SELECT id FROM storm`) {
		if recovered[id] {
			t.Fatalf("row %d recovered twice", id)
		}
		recovered[id] = true
	}

	// No acknowledged commit may be lost.
	for id := range acked {
		if !recovered[id] {
			t.Fatalf("acked row %d lost (acked=%d recovered=%d)", id, len(acked), len(recovered))
		}
	}
	// Nothing may appear out of thin air.
	for id := range recovered {
		if !tried[id] {
			t.Fatalf("recovered row %d was never attempted", id)
		}
	}
	// Per-writer prefix: writer w inserts w*1e6+0, +1, ... serially, so the
	// recovered rows for w must be a gapless prefix of its sequence.
	maxSeq := map[int64]int64{}
	for id := range recovered {
		w, seq := id/1_000_000, id%1_000_000
		if seq > maxSeq[w] {
			maxSeq[w] = seq
		}
	}
	for w, m := range maxSeq {
		for seq := int64(0); seq <= m; seq++ {
			if !recovered[w*1_000_000+seq] {
				t.Fatalf("writer %d: row %d missing below recovered max %d (non-prefix recovery)", w, seq, m)
			}
		}
	}
	t.Logf("storm verified: %d tried, %d acked, %d recovered", len(tried), len(acked), len(recovered))
}

// TestCrashChild is the subprocess body for TestCrashRecoveryStorm; it runs
// only when re-execed with the environment set, and is killed by the parent.
func TestCrashChild(t *testing.T) {
	if os.Getenv("NEURDB_CRASH_CHILD") == "" {
		t.Skip("not a crash child")
	}
	dir := os.Getenv("NEURDB_CRASH_DIR")
	jpath := os.Getenv("NEURDB_CRASH_JOURNAL")
	db, err := OpenDB(durableConfig(dir))
	if err != nil {
		t.Fatalf("child open: %v", err)
	}
	mustExec(t, db, `CREATE TABLE storm (id INT PRIMARY KEY, payload TEXT)`)

	jf, err := os.OpenFile(jpath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var jmu = make(chan struct{}, 1)
	jmu <- struct{}{}
	journal := func(line string) {
		<-jmu
		// O_APPEND writes survive SIGKILL (the page cache outlives the
		// process); only unwritten application buffers are lost, so write
		// the line in one syscall with no buffering.
		jf.WriteString(line)
		jmu <- struct{}{}
	}

	const writers = 4
	for w := 0; w < writers; w++ {
		go func(w int) {
			s := db.NewSession()
			for seq := 0; ; seq++ {
				id := int64(w)*1_000_000 + int64(seq)
				journal(fmt.Sprintf("try %d\n", id))
				if _, err := s.Exec(`INSERT INTO storm VALUES (?, ?)`, id, strings.Repeat("x", 64)); err != nil {
					return
				}
				journal(fmt.Sprintf("ack %d\n", id))
			}
		}(w)
	}
	time.Sleep(60 * time.Second) // parent SIGKILLs long before this
}

func countJournal(path, prefix string) int {
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if prefix == "" || strings.HasPrefix(sc.Text(), prefix) {
			n++
		}
	}
	return n
}

func readJournal(t *testing.T, path string) (tried, acked map[int64]bool) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tried, acked = map[int64]bool{}, map[int64]bool{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var id int64
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "try "):
			fmt.Sscanf(line, "try %d", &id)
			tried[id] = true
		case strings.HasPrefix(line, "ack "):
			fmt.Sscanf(line, "ack %d", &id)
			acked[id] = true
		}
	}
	return tried, acked
}
