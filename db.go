// Package neurdb is an AI-powered autonomous database engine — a from-
// scratch Go reproduction of "NeurDB: On the Design and Implementation of
// an AI-powered Autonomous Database" (CIDR 2025).
//
// The engine combines a relational core (MVCC snapshot isolation + SSI,
// heap storage with a buffer pool, B-tree/hash indexes, a cost-based
// optimizer and a Volcano executor) with the paper's in-database AI
// ecosystem: AI operators in the executor (train / inference / fine-tune),
// an AI engine with a streaming data protocol, a layered model store with
// incremental updates, a monitor that triggers adaptation, and
// fast-adaptive learned components (learned concurrency control and a
// learned query optimizer).
//
// Quick start:
//
//	db := neurdb.Open(neurdb.DefaultConfig())
//	db.Exec(`CREATE TABLE review (id INT PRIMARY KEY, brand TEXT, score DOUBLE)`)
//
//	ins, _ := db.Prepare(`INSERT INTO review VALUES (?, ?, ?)`) // planned once
//	ins.Exec(1, "acme", 4.5)
//
//	rows, _ := db.Query(`SELECT brand, score FROM review WHERE score >= ?`, 4.0)
//	defer rows.Close()
//	for rows.Next() { // streams one executor batch at a time
//		var brand string
//		var score float64
//		rows.Scan(&brand, &score)
//	}
//
//	res, err := db.Exec(`PREDICT VALUE OF score FROM review TRAIN ON *`)
package neurdb

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"neurdb/internal/aiengine"
	"neurdb/internal/catalog"
	"neurdb/internal/executor"
	"neurdb/internal/index"
	"neurdb/internal/learnedopt"
	"neurdb/internal/models"
	"neurdb/internal/monitor"
	"neurdb/internal/optimizer"
	"neurdb/internal/plan"
	"neurdb/internal/rel"
	"neurdb/internal/sqlparse"
	"neurdb/internal/stats"
	"neurdb/internal/storage"
	"neurdb/internal/txn"
	"neurdb/internal/vfs"
	"neurdb/internal/wal"
)

// ErrReadOnly reports that the database has degraded to read-only because
// its write-ahead log poisoned (a failed fsync). Reads keep serving; every
// write statement and commit fails with an error wrapping this sentinel
// until the process is restarted and recovery replays the durable prefix.
// It aliases txn.ErrReadOnly so errors.Is matches across layers.
var ErrReadOnly = txn.ErrReadOnly

// ErrStatementTimeout reports that a statement exceeded the configured
// statement timeout (Config.StatementTimeout / SET statement_timeout) and
// was stopped at a batch boundary.
var ErrStatementTimeout = errors.New("statement timeout exceeded")

// OptimizerMode selects how SELECT plans are chosen.
type OptimizerMode string

// Optimizer modes. CostMode plans with current statistics; StaleCostMode
// plans with the statistics snapshot taken at the last ANALYZE (the
// "PostgreSQL under drift" behaviour); LearnedMode uses the NeurDB learned
// optimizer over candidate plans with live system conditions.
const (
	CostMode      OptimizerMode = "cost"
	StaleCostMode OptimizerMode = "stale"
	LearnedMode   OptimizerMode = "learned"
)

// Config parameterizes Open.
type Config struct {
	// BufferPoolPages bounds the page cache accounting.
	BufferPoolPages int
	// Serializable runs transactions under SSI instead of snapshot isolation.
	Serializable bool
	// Optimizer selects the planning mode (default CostMode).
	Optimizer OptimizerMode
	// Seed drives all model initialization for reproducibility.
	Seed int64
	// Workers caps intra-query parallelism: morsel-driven operators fan out
	// to at most this many goroutines per query. 0 (the default) resolves
	// to GOMAXPROCS at query time; 1 forces serial execution. Sessions can
	// override it (Session.SetWorkers, SET workers = n).
	Workers int

	// DataDir enables durability: the write-ahead log and checkpoints live
	// here, and OpenDB replays them on boot. Empty (the default) keeps the
	// instance purely in-memory, exactly as before.
	DataDir string
	// WalSync selects when commits become durable: "commit" (group fsync
	// before every acknowledgment — the default), "interval" (background
	// fsync every WalSyncInterval; a crash may lose that window), or "off"
	// (no fsync; a process crash still loses little, a machine crash loses
	// everything since the last checkpoint).
	WalSync string
	// WalSyncInterval is the background fsync period for WalSync
	// "interval" (default 2ms).
	WalSyncInterval time.Duration
	// CheckpointInterval runs a background checkpoint this often (0
	// disables the background checkpointer; Checkpoint can still be called
	// explicitly).
	CheckpointInterval time.Duration
	// CheckpointWalMB additionally triggers a checkpoint whenever the WAL
	// has grown this many MiB since the last one (0 = no size trigger).
	CheckpointWalMB int
	// NoGroupCommit defeats leader/follower fsync batching so every commit
	// pays its own fsync — the baseline the durability benchmark compares
	// group commit against. Never set it in production.
	NoGroupCommit bool
	// FS is the filesystem the durability layer writes through (default
	// vfs.OS). Tests inject a vfs.FaultFS here to script disk faults.
	FS vfs.FS

	// StatementTimeout bounds each streaming statement's execution time:
	// a cursor that exceeds it fails with ErrStatementTimeout at the next
	// batch boundary (the same granularity as client Cancel). 0 disables.
	// Sessions can override it (SET statement_timeout = '500ms').
	StatementTimeout time.Duration
}

// DefaultConfig returns a sensible configuration.
func DefaultConfig() Config {
	return Config{BufferPoolPages: 4096, Optimizer: CostMode, Seed: 1}
}

// DB is a NeurDB database instance.
type DB struct {
	mu sync.Mutex

	cfg     Config
	pool    *storage.BufferPool
	cat     *catalog.Catalog
	mgr     *txn.Manager
	store   *models.Store
	engine  *aiengine.Engine
	tracker *monitor.Tracker

	// staleStats snapshots per-table statistics at ANALYZE time; the
	// stale-cost planner uses them.
	staleStats map[int]*stats.TableStats

	// learned optimizer state (lazily trained by callers via LearnedQO).
	learnedQO *learnedopt.Model

	// plans caches compiled SELECT plans, shared across sessions and
	// invalidated by the catalog version. Prepared statements and ad-hoc
	// Session.Exec/Query SELECTs share the same (mode, SQL) key space.
	plans *planCache

	// stripeWaitSeen tracks the last txn.stripe_wait counter observed by
	// the monitor, so each write statement reports only its delta.
	stripeWaitSeen atomic.Uint64

	// Durability state (nil/zero when Config.DataDir is empty).
	wlog        *wal.Log
	fs          vfs.FS     // filesystem the durability layer writes through
	ckptMu      sync.Mutex // serializes checkpoints
	lastCkptWal atomic.Uint64
	stopCkpt    chan struct{}
	ckptDone    chan struct{}
	closed      atomic.Bool
	// degradedSeen latches the first observation of WAL poison so the
	// db.degraded gauge flips exactly once.
	degradedSeen atomic.Bool

	session *Session // implicit session for autocommit Exec
}

// Open creates a database instance. It panics if Config.DataDir is set and
// recovery fails; durable callers should prefer OpenDB.
func Open(cfg Config) *DB {
	db, err := OpenDB(cfg)
	if err != nil {
		panic("neurdb: " + err.Error())
	}
	return db
}

// OpenDB creates a database instance, recovering state from
// Config.DataDir's checkpoint and write-ahead log when a data directory is
// configured. With an empty DataDir it never fails.
func OpenDB(cfg Config) (*DB, error) {
	if cfg.BufferPoolPages <= 0 {
		cfg.BufferPoolPages = 4096
	}
	if cfg.Optimizer == "" {
		cfg.Optimizer = CostMode
	}
	pool := storage.NewBufferPool(cfg.BufferPoolPages)
	store := models.NewStore()
	db := &DB{
		cfg:        cfg,
		pool:       pool,
		cat:        catalog.New(pool),
		mgr:        txn.NewManager(),
		store:      store,
		engine:     aiengine.NewEngine(store),
		tracker:    monitor.NewTracker(),
		staleStats: make(map[int]*stats.TableStats),
		plans:      newPlanCache(DefaultPlanCacheSize),
	}
	if cfg.DataDir != "" {
		if err := db.openDurable(); err != nil {
			return nil, err
		}
	}
	db.session = db.NewSession()
	return db, nil
}

// Catalog exposes the table registry (read-mostly; used by benchmarks).
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// TxnManager exposes the transaction manager.
func (db *DB) TxnManager() *txn.Manager { return db.mgr }

// AIEngine exposes the in-database AI engine.
func (db *DB) AIEngine() *aiengine.Engine { return db.engine }

// ModelStore exposes the layered model store.
func (db *DB) ModelStore() *models.Store { return db.store }

// BufferPool exposes the buffer pool.
func (db *DB) BufferPool() *storage.BufferPool { return db.pool }

// Monitor exposes the metric tracker.
func (db *DB) Monitor() *monitor.Tracker { return db.tracker }

// Degraded reports whether the instance has degraded to read-only because
// the write-ahead log poisoned. The operator story: established reads keep
// working, writes fail with ErrReadOnly, and restarting the process (which
// replays the durable WAL prefix) restores writability. Acked commits are
// never lost; commits in flight when the fsync failed were never acked.
func (db *DB) Degraded() bool {
	return db.writeErr() != nil
}

// writeErr is the write path's fail-stop check: nil while healthy, an
// ErrReadOnly-wrapping error once the WAL has poisoned. The first failing
// observation flips the db.degraded monitor gauge.
func (db *DB) writeErr() error {
	w := db.wlog
	if w == nil {
		return nil
	}
	perr := w.Err()
	if perr == nil {
		return nil
	}
	if db.degradedSeen.CompareAndSwap(false, true) {
		db.tracker.Observe("db.degraded", 1)
	}
	return fmt.Errorf("%w (cause: %v)", ErrReadOnly, perr)
}

// SetLearnedQO installs a trained learned-optimizer model used by
// LearnedMode planning. Cached plans chosen by the previous model (or the
// cost fallback) are invalidated so prepared statements replan with it.
func (db *DB) SetLearnedQO(m *learnedopt.Model) {
	db.mu.Lock()
	db.learnedQO = m
	db.mu.Unlock()
	db.cat.BumpVersion()
}

// LearnedQO returns the installed learned optimizer (nil if none).
func (db *DB) LearnedQO() *learnedopt.Model {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.learnedQO
}

// SetOptimizerMode switches planning behaviour at runtime.
func (db *DB) SetOptimizerMode(m OptimizerMode) {
	db.mu.Lock()
	db.cfg.Optimizer = m
	db.mu.Unlock()
}

// SetWorkers changes the database-wide intra-query parallelism cap at
// runtime (0 = GOMAXPROCS at query time, 1 = serial). Sessions that called
// Session.SetWorkers keep their override.
func (db *DB) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	db.mu.Lock()
	db.cfg.Workers = n
	db.mu.Unlock()
}

// OptimizerModeNow returns the active mode.
func (db *DB) OptimizerModeNow() OptimizerMode {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.cfg.Optimizer
}

// Result is the outcome of one statement.
type Result struct {
	Columns  []string
	Rows     []rel.Row
	Affected int
	Message  string
	// Predictions carries PREDICT output (aligned with Rows).
	Predictions []float64
}

// Exec parses and executes one statement with autocommit semantics on the
// implicit session, materializing the full result. Optional args bind '?'
// or '$n' placeholders in the statement.
func (db *DB) Exec(sql string, args ...any) (*Result, error) {
	return db.session.Exec(sql, args...)
}

// Query executes one statement on the implicit session and returns a
// streaming cursor: SELECT results are pulled from the executor one batch
// at a time and the read transaction stays open until Rows.Close. Optional
// args bind '?' or '$n' placeholders.
func (db *DB) Query(sql string, args ...any) (*Rows, error) {
	return db.session.Query(sql, args...)
}

// ExecScript runs a semicolon-separated script, returning the last result.
// Scripts take no parameters.
func (db *DB) ExecScript(sql string) (*Result, error) {
	stmts, err := sqlparse.ParseScript(sql)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, stmt := range stmts {
		if n := sqlparse.ParamCount(stmt); n > 0 {
			return nil, fmt.Errorf("neurdb: script statement takes %d parameters; use Prepare/Exec with arguments", n)
		}
		last, err = db.session.execStmt(stmt, nil)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// Session is a connection-like context holding an optional open transaction.
type Session struct {
	db      *DB
	mu      sync.Mutex
	txn     *txn.Txn
	workers int // per-session parallelism override; 0 = inherit DB config
	// stmtTimeout overrides Config.StatementTimeout for this session:
	// 0 = inherit, negative = explicitly disabled (SET statement_timeout=0).
	stmtTimeout time.Duration
}

// NewSession creates an independent session.
func (db *DB) NewSession() *Session { return &Session{db: db} }

// Close releases the session, rolling back any open transaction. It exists
// for connection-scoped owners (the wire server ties one session to each
// client connection and must not leak a BEGIN whose client vanished); the
// session must not be used afterwards. Closing a session with no open
// transaction is a no-op.
func (s *Session) Close() error {
	s.mu.Lock()
	t := s.txn
	s.txn = nil
	s.mu.Unlock()
	if t != nil {
		s.db.mgr.Abort(t)
	}
	return nil
}

// SetWorkers overrides the intra-query parallelism cap for this session
// (0 = inherit the DB configuration, 1 = serial). SET workers = n is the
// SQL form.
func (s *Session) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	s.mu.Lock()
	s.workers = n
	s.mu.Unlock()
}

// SetStatementTimeout overrides the per-statement execution bound for this
// session. d == 0 re-inherits the DB configuration; d < 0 disables the
// timeout outright. SET statement_timeout = '500ms' is the SQL form.
func (s *Session) SetStatementTimeout(d time.Duration) {
	s.mu.Lock()
	s.stmtTimeout = d
	s.mu.Unlock()
}

// effectiveStatementTimeout resolves the statement timeout for one
// execution: session override, then DB config; 0 means no timeout.
func (s *Session) effectiveStatementTimeout() time.Duration {
	s.mu.Lock()
	d := s.stmtTimeout
	s.mu.Unlock()
	if d < 0 {
		return 0
	}
	if d == 0 {
		s.db.mu.Lock()
		d = s.db.cfg.StatementTimeout
		s.db.mu.Unlock()
	}
	if d < 0 {
		d = 0
	}
	return d
}

// effectiveWorkers resolves the parallelism cap for one execution: session
// override, then DB config, then GOMAXPROCS.
func (s *Session) effectiveWorkers() int {
	s.mu.Lock()
	w := s.workers
	s.mu.Unlock()
	if w == 0 {
		s.db.mu.Lock()
		w = s.db.cfg.Workers
		s.db.mu.Unlock()
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return w
}

// Exec parses and executes one statement in this session, materializing the
// full result. Optional args bind '?' or '$n' placeholders.
func (s *Session) Exec(sql string, args ...any) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	vals, err := convertArgs(sqlparse.ParamCount(stmt), args)
	if err != nil {
		return nil, err
	}
	return s.execStmt(stmt, vals)
}

// Query executes one statement in this session and returns a streaming
// cursor (see Rows). Optional args bind '?' or '$n' placeholders.
func (s *Session) Query(sql string, args ...any) (*Rows, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	vals, err := convertArgs(sqlparse.ParamCount(stmt), args)
	if err != nil {
		return nil, err
	}
	return s.queryStmt(stmt, vals)
}

// queryStmt routes a parsed statement to the streaming path: SELECTs stream
// from the executor; everything else executes eagerly and is wrapped as a
// materialized cursor.
func (s *Session) queryStmt(stmt sqlparse.Stmt, args []rel.Value) (*Rows, error) {
	if sel, ok := stmt.(*sqlparse.Select); ok {
		return s.querySelect(sel, args)
	}
	res, err := s.execStmt(stmt, args)
	if err != nil {
		return nil, err
	}
	return newStaticRows(res), nil
}

// querySelect resolves a SELECT through the shared plan cache — ad-hoc
// Session.Exec/Query statements hit the same (optimizer mode, SQL text)
// entries prepared statements populate, so a repeated ad-hoc statement pays
// binding and planning once per catalog version — and opens a streaming
// cursor over the compiled plan.
func (s *Session) querySelect(sel *sqlparse.Select, args []rel.Value) (*Rows, error) {
	if sel.Text == "" {
		// Programmatically built AST with no source text: plan uncached.
		p, err := s.db.PlanSelect(sel)
		if err != nil {
			return nil, err
		}
		return s.streamPlan(p, p.Schema().Names(), len(args) > 0, args)
	}
	e, err := s.db.cachedPlan(sel.Text, sel)
	if err != nil {
		return nil, err
	}
	return s.streamPlan(e.node, e.columns, e.hasParams, args)
}

// streamPlan begins (or joins) the session's read transaction, binds
// parameters into the plan, and opens the batch iterator as a Rows cursor.
// The transaction is finalized by Rows.Close / end of stream.
func (s *Session) streamPlan(p plan.Node, cols []string, hasParams bool, args []rel.Value) (*Rows, error) {
	if hasParams {
		p = plan.BindParams(p, args)
	}
	tx, done := s.begin(true)
	ctx := &executor.Ctx{Mgr: s.db.mgr, Txn: tx, Cat: s.db.cat, Workers: s.effectiveWorkers()}
	it, err := executor.BuildBatch(p, ctx)
	if err != nil {
		return nil, done(err)
	}
	rows, err := newStreamingRows(cols, p.Schema(), it, done)
	if err != nil {
		return nil, err
	}
	if d := s.effectiveStatementTimeout(); d > 0 {
		rows.deadline = time.Now().Add(d)
	}
	return rows, nil
}

// level returns the configured isolation level.
func (s *Session) level() txn.IsolationLevel {
	if s.db.cfg.Serializable {
		return txn.Serializable
	}
	return txn.Snapshot
}

// begin returns the session transaction, or a fresh autocommit one plus a
// finalizer.
func (s *Session) begin(readOnly bool) (*txn.Txn, func(error) error) {
	s.mu.Lock()
	cur := s.txn
	s.mu.Unlock()
	if cur != nil {
		return cur, func(err error) error { return err } // caller-managed
	}
	t := s.db.mgr.Begin(s.level(), readOnly)
	return t, func(err error) error {
		if err != nil {
			s.db.mgr.Abort(t)
			return err
		}
		return s.db.mgr.Commit(t)
	}
}

func (s *Session) execStmt(stmt sqlparse.Stmt, args []rel.Value) (*Result, error) {
	switch stmt.(type) {
	case *sqlparse.CreateTable, *sqlparse.CreateIndex, *sqlparse.DropTable,
		*sqlparse.Insert, *sqlparse.Update, *sqlparse.Delete:
		// Fail-stop before doing any work: a poisoned WAL means the write
		// could never be made durable. The commit path re-checks (the poison
		// can land mid-statement), but rejecting here gives writers a clean
		// ErrReadOnly instead of work that is doomed to abort at commit.
		if err := s.db.writeErr(); err != nil {
			return nil, err
		}
	}
	switch t := stmt.(type) {
	case *sqlparse.CreateTable:
		return s.execCreateTable(t)
	case *sqlparse.CreateIndex:
		return s.execCreateIndex(t)
	case *sqlparse.DropTable:
		return s.execDropTable(t)
	case *sqlparse.Insert:
		return s.execInsert(t, args)
	case *sqlparse.Select:
		return s.execSelect(t, args)
	case *sqlparse.Update:
		return s.execUpdate(t, args)
	case *sqlparse.Delete:
		return s.execDelete(t, args)
	case *sqlparse.TxnStmt:
		return s.execTxnStmt(t)
	case *sqlparse.Analyze:
		return s.execAnalyze(t)
	case *sqlparse.Explain:
		return s.execExplain(t)
	case *sqlparse.SetStmt:
		return s.execSet(t)
	case *sqlparse.Predict:
		return s.execPredict(t, args)
	default:
		return nil, fmt.Errorf("neurdb: unsupported statement %T", stmt)
	}
}

func (s *Session) execCreateTable(ct *sqlparse.CreateTable) (*Result, error) {
	cols := make([]rel.Column, len(ct.Cols))
	for i, c := range ct.Cols {
		cols[i] = rel.Column{Name: strings.ToLower(c.Name), Typ: c.Typ, Unique: c.Unique, NotNull: c.NotNull}
	}
	schema := rel.NewSchema(cols...)
	// With a WAL, the create runs under the exclusive commit gate so the DDL
	// record is ordered before any commit record touching the new table: a
	// racing insert cannot draw its timestamp (GateRLock) until the table's
	// create record is in the log.
	w := s.db.wlog
	if w != nil {
		w.GateLock()
	}
	tbl, err := s.db.cat.Create(ct.Name, schema)
	var lsn uint64
	var aerr error
	if err == nil && w != nil {
		lsn, aerr = w.AppendDDL(wal.EncodeCreateTable(nil, tbl.ID, tbl.Name, schema))
	}
	if w != nil {
		w.GateUnlock()
	}
	if err != nil {
		return nil, err
	}
	if aerr != nil {
		// The append never reached the log; undo the in-memory create so
		// both sides agree the table does not exist.
		_ = s.db.cat.Drop(tbl.Name)
		return nil, fmt.Errorf("neurdb: wal append: %w", aerr)
	}
	// Primary-key style columns get a B-tree automatically. Not logged:
	// replay recreates them from the schema's Unique flags.
	for i, c := range cols {
		if c.Unique {
			tbl.AddIndex(&catalog.Index{Name: tbl.Name + "_" + c.Name, Col: i, BT: index.NewBTree()})
		}
	}
	if w != nil {
		if err := w.Sync(lsn); err != nil {
			return nil, err
		}
	}
	return &Result{Message: "CREATE TABLE"}, nil
}

func (s *Session) execDropTable(dt *sqlparse.DropTable) (*Result, error) {
	// Same gate discipline as CREATE TABLE: while the gate is held
	// exclusively no commit is mid-flight, so every commit record on the
	// table precedes the drop record in the log.
	w := s.db.wlog
	if w != nil {
		w.GateLock()
	}
	err := s.db.cat.Drop(dt.Name)
	var lsn uint64
	var aerr error
	if err == nil && w != nil {
		lsn, aerr = w.AppendDDL(wal.EncodeDropTable(nil, strings.ToLower(dt.Name)))
	}
	if w != nil {
		w.GateUnlock()
	}
	if err != nil {
		if dt.IfExists {
			return &Result{Message: "DROP TABLE (skipped)"}, nil
		}
		return nil, err
	}
	if aerr != nil {
		return nil, fmt.Errorf("neurdb: wal append: %w", aerr)
	}
	if w != nil {
		if err := w.Sync(lsn); err != nil {
			return nil, err
		}
	}
	return &Result{Message: "DROP TABLE"}, nil
}

func (s *Session) execCreateIndex(ci *sqlparse.CreateIndex) (*Result, error) {
	tbl, err := s.db.cat.Get(ci.Table)
	if err != nil {
		return nil, err
	}
	col := tbl.Schema.ColIndex(ci.Col)
	if col < 0 {
		return nil, fmt.Errorf("neurdb: no column %q in %q", ci.Col, ci.Table)
	}
	ix := &catalog.Index{Name: ci.Name, Col: col}
	if ci.UseHash {
		ix.Hash = index.NewHashIndex()
	} else {
		ix.BT = index.NewBTree()
	}
	// Backfill from committed data.
	tx := s.db.mgr.Begin(txn.Snapshot, true)
	cursor := tbl.Heap.NewCursor()
	for {
		id, head, ok := cursor.Next()
		if !ok {
			break
		}
		row, visible := s.db.mgr.ReadHead(tbl.ID, id, head, tx)
		if visible {
			ix.Insert(row[col], id)
		}
	}
	s.db.mgr.Abort(tx)
	tbl.AddIndex(ix)
	// New access path: invalidate cached plans.
	s.db.cat.BumpVersion()
	// The WAL record is metadata-only (replay rebuilds index contents from
	// heap data), so ordering relative to commits is immaterial; the gate
	// only orders it against a concurrent DROP TABLE.
	if w := s.db.wlog; w != nil {
		w.GateLock()
		lsn, aerr := w.AppendDDL(wal.EncodeCreateIndex(nil, tbl.ID, ix.Name, col, ci.UseHash))
		w.GateUnlock()
		if aerr != nil {
			return nil, fmt.Errorf("neurdb: wal append: %w", aerr)
		}
		if err := w.Sync(lsn); err != nil {
			return nil, err
		}
	}
	return &Result{Message: "CREATE INDEX"}, nil
}

func (s *Session) execInsert(ins *sqlparse.Insert, args []rel.Value) (*Result, error) {
	tbl, err := s.db.cat.Get(ins.Table)
	if err != nil {
		return nil, err
	}
	// Map column list (or positional) to schema positions.
	positions := make([]int, 0, tbl.Schema.Arity())
	if len(ins.Cols) == 0 {
		for i := 0; i < tbl.Schema.Arity(); i++ {
			positions = append(positions, i)
		}
	} else {
		for _, name := range ins.Cols {
			ci := tbl.Schema.ColIndex(name)
			if ci < 0 {
				return nil, fmt.Errorf("neurdb: no column %q in %q", name, ins.Table)
			}
			positions = append(positions, ci)
		}
	}
	// Evaluate every VALUES tuple before touching the heap, so a bad tuple
	// inserts nothing; the materialized rows then ride the page-batched
	// insert path in one transaction-manager call.
	rows := make([]rel.Row, 0, len(ins.Rows))
	for _, exprRow := range ins.Rows {
		if len(exprRow) != len(positions) {
			return nil, fmt.Errorf("neurdb: INSERT arity mismatch: %d values for %d columns", len(exprRow), len(positions))
		}
		row := make(rel.Row, tbl.Schema.Arity())
		for i := range row {
			row[i] = rel.Null()
		}
		for i, e := range exprRow {
			v, err := evalConstExpr(e, args)
			if err != nil {
				return nil, err
			}
			row[positions[i]] = v
		}
		rows = append(rows, row)
	}
	tx, done := s.begin(false)
	ctx := &executor.Ctx{Mgr: s.db.mgr, Txn: tx, Cat: s.db.cat}
	_, execErr := executor.InsertBatch(ctx, tbl, rows)
	if err := done(execErr); err != nil {
		return nil, err
	}
	s.observeWrite(ctx)
	return &Result{Affected: len(rows), Message: fmt.Sprintf("INSERT %d", len(rows))}, nil
}

// evalConstExpr evaluates a parsed expression with no column references;
// parameters resolve against args.
func evalConstExpr(e sqlparse.Expr, args []rel.Value) (rel.Value, error) {
	switch t := e.(type) {
	case *sqlparse.Lit:
		return t.Val, nil
	case *sqlparse.Param:
		if t.Idx < 0 || t.Idx >= len(args) {
			return rel.Value{}, fmt.Errorf("neurdb: parameter $%d out of range (%d bound)", t.Idx+1, len(args))
		}
		return args[t.Idx], nil
	case *sqlparse.Unary:
		if t.Op == "-" {
			v, err := evalConstExpr(t.E, args)
			if err != nil {
				return rel.Value{}, err
			}
			switch v.Typ {
			case rel.TypeInt:
				return rel.Int(-v.I), nil
			case rel.TypeFloat:
				return rel.Float(-v.F), nil
			default:
				// Non-numeric: fall through to the error below.
			}
		}
		return rel.Value{}, fmt.Errorf("neurdb: unsupported constant expression")
	case *sqlparse.Binary:
		l, err := evalConstExpr(t.L, args)
		if err != nil {
			return rel.Value{}, err
		}
		r, err := evalConstExpr(t.R, args)
		if err != nil {
			return rel.Value{}, err
		}
		be := &rel.BinOp{L: &rel.Const{Val: l}, R: &rel.Const{Val: r}}
		switch t.Op {
		case "+":
			be.Kind = rel.OpAdd
		case "-":
			be.Kind = rel.OpSub
		case "*":
			be.Kind = rel.OpMul
		case "/":
			be.Kind = rel.OpDiv
		case "%":
			be.Kind = rel.OpMod
		default:
			return rel.Value{}, fmt.Errorf("neurdb: unsupported constant operator %q", t.Op)
		}
		return be.Eval(nil), nil
	default:
		return rel.Value{}, fmt.Errorf("neurdb: INSERT values must be constants, got %T", e)
	}
}

// PlanSelect builds the physical plan for a SELECT under the active
// optimizer mode (exported for benchmarks and EXPLAIN).
func (db *DB) PlanSelect(sel *sqlparse.Select) (plan.Node, error) {
	q, err := optimizer.Bind(sel, db.cat)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	mode := db.cfg.Optimizer
	learned := db.learnedQO
	db.mu.Unlock()
	switch mode {
	case StaleCostMode:
		o := &optimizer.Optimizer{Stats: db.StaleStatsView(), CardScale: 1}
		return o.Plan(q)
	case LearnedMode:
		if learned == nil {
			return optimizer.New().Plan(q)
		}
		cands, err := optimizer.EnumerateCandidates(q, nil, []float64{0.1, 10})
		if err != nil {
			return nil, err
		}
		nodes := make([]plan.Node, len(cands))
		for i, c := range cands {
			nodes[i] = c.Plan
		}
		cond := learnedopt.BuildConditions(db.cat.All(), db.pool)
		pick := learned.Choose(learnedopt.EncodeCandidates(nodes), cond)
		return nodes[pick], nil
	default:
		return optimizer.New().Plan(q)
	}
}

// StaleStatsView returns a StatsView serving the snapshots captured at the
// last ANALYZE (tables never analyzed fall back to live stats).
func (db *DB) StaleStatsView() optimizer.StatsView {
	return func(t *catalog.Table) *stats.TableStats {
		db.mu.Lock()
		defer db.mu.Unlock()
		if snap, ok := db.staleStats[t.ID]; ok {
			return snap
		}
		return t.Stats
	}
}

func (s *Session) execSelect(sel *sqlparse.Select, args []rel.Value) (*Result, error) {
	rows, err := s.querySelect(sel, args)
	if err != nil {
		return nil, err
	}
	return rows.drain()
}

func (s *Session) execUpdate(up *sqlparse.Update, args []rel.Value) (*Result, error) {
	tbl, err := s.db.cat.Get(up.Table)
	if err != nil {
		return nil, err
	}
	where, err := bindTableExpr(tbl, up.Where)
	if err != nil {
		return nil, err
	}
	where = rel.SubstParams(where, args)
	set := make(map[int]rel.Expr, len(up.Set))
	for name, e := range up.Set {
		ci := tbl.Schema.ColIndex(name)
		if ci < 0 {
			return nil, fmt.Errorf("neurdb: no column %q in %q", name, up.Table)
		}
		bound, err := bindTableExpr(tbl, e)
		if err != nil {
			return nil, err
		}
		set[ci] = rel.SubstParams(bound, args)
	}
	tx, done := s.begin(false)
	ctx := &executor.Ctx{Mgr: s.db.mgr, Txn: tx, Cat: s.db.cat, Workers: s.effectiveWorkers()}
	n, execErr := executor.UpdateWhere(ctx, tbl, set, where)
	if err := done(execErr); err != nil {
		return nil, err
	}
	s.observeWrite(ctx)
	return &Result{Affected: n, Message: fmt.Sprintf("UPDATE %d", n)}, nil
}

func (s *Session) execDelete(del *sqlparse.Delete, args []rel.Value) (*Result, error) {
	tbl, err := s.db.cat.Get(del.Table)
	if err != nil {
		return nil, err
	}
	where, err := bindTableExpr(tbl, del.Where)
	if err != nil {
		return nil, err
	}
	where = rel.SubstParams(where, args)
	tx, done := s.begin(false)
	ctx := &executor.Ctx{Mgr: s.db.mgr, Txn: tx, Cat: s.db.cat, Workers: s.effectiveWorkers()}
	n, execErr := executor.DeleteWhere(ctx, tbl, where)
	if err := done(execErr); err != nil {
		return nil, err
	}
	s.observeWrite(ctx)
	return &Result{Affected: n, Message: fmt.Sprintf("DELETE %d", n)}, nil
}

// observeWrite feeds the monitor after a write statement: the buffer pool's
// dirty-page count ("pool.dirty", watched by the checkpoint/flush drift
// detectors), the claim-stripe contention delta since the last observation
// ("txn.stripe_wait"), and — when the statement rode the morsel-parallel
// write path — the page count it dispatched ("dml.parallel_pages").
func (s *Session) observeWrite(ctx *executor.Ctx) {
	s.db.tracker.Observe("pool.dirty", float64(s.db.pool.DirtyPages()))
	_, waits := s.db.mgr.StripeStats()
	// Swap-then-compare tolerates racing sessions: a stale read at worst
	// attributes the delta to the other session's observation, never twice.
	if seen := s.db.stripeWaitSeen.Swap(waits); waits > seen {
		s.db.tracker.Count("txn.stripe_wait", float64(waits-seen))
	}
	if ctx.DMLParallelPages > 0 {
		s.db.tracker.Count("dml.parallel_pages", float64(ctx.DMLParallelPages))
	}
}

// bindTableExpr binds a parsed expression against a single table's schema
// via a synthetic single-table query.
func bindTableExpr(tbl *catalog.Table, e sqlparse.Expr) (rel.Expr, error) {
	if e == nil {
		return nil, nil
	}
	q := syntheticQuery(tbl)
	return q.BindExprPublic(e)
}

// syntheticQuery builds a one-table binding context.
func syntheticQuery(tbl *catalog.Table) *optimizer.Query {
	return optimizer.SingleTableQuery(tbl)
}

func (s *Session) execTxnStmt(t *sqlparse.TxnStmt) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch t.Kind {
	case "BEGIN":
		if s.txn != nil {
			return nil, fmt.Errorf("neurdb: transaction already open")
		}
		s.txn = s.db.mgr.Begin(s.level(), false)
		return &Result{Message: "BEGIN"}, nil
	case "COMMIT":
		if s.txn == nil {
			return nil, fmt.Errorf("neurdb: no open transaction")
		}
		err := s.db.mgr.Commit(s.txn)
		s.txn = nil
		if err != nil {
			return nil, err
		}
		return &Result{Message: "COMMIT"}, nil
	default: // ROLLBACK
		if s.txn == nil {
			return nil, fmt.Errorf("neurdb: no open transaction")
		}
		s.db.mgr.Abort(s.txn)
		s.txn = nil
		return &Result{Message: "ROLLBACK"}, nil
	}
}

func (s *Session) execAnalyze(a *sqlparse.Analyze) (*Result, error) {
	var tables []*catalog.Table
	if a.Table != "" {
		t, err := s.db.cat.Get(a.Table)
		if err != nil {
			return nil, err
		}
		tables = []*catalog.Table{t}
	} else {
		tables = s.db.cat.All()
	}
	tx := s.db.mgr.Begin(txn.Snapshot, true)
	ctx := &executor.Ctx{Mgr: s.db.mgr, Txn: tx, Cat: s.db.cat}
	for _, t := range tables {
		rows := executor.ScanAll(ctx, t)
		t.Stats.Rebuild(rows)
		s.db.mu.Lock()
		s.db.staleStats[t.ID] = t.Stats.Snapshot()
		s.db.mu.Unlock()
	}
	s.db.mgr.Abort(tx)
	// Fresh statistics change plan choice: invalidate cached plans.
	s.db.cat.BumpVersion()
	return &Result{Message: fmt.Sprintf("ANALYZE %d tables", len(tables))}, nil
}

func (s *Session) execExplain(e *sqlparse.Explain) (*Result, error) {
	sel, ok := e.Inner.(*sqlparse.Select)
	if !ok {
		return nil, fmt.Errorf("neurdb: EXPLAIN supports SELECT only")
	}
	p, err := s.db.PlanSelect(sel)
	if err != nil {
		return nil, err
	}
	text := plan.Explain(p)
	var rows []rel.Row
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		rows = append(rows, rel.Row{rel.Text(line)})
	}
	return &Result{Columns: []string{"plan"}, Rows: rows}, nil
}

func (s *Session) execSet(st *sqlparse.SetStmt) (*Result, error) {
	switch st.Key {
	case "optimizer":
		switch OptimizerMode(strings.ToLower(st.Value)) {
		case CostMode, StaleCostMode, LearnedMode:
			s.db.SetOptimizerMode(OptimizerMode(strings.ToLower(st.Value)))
			return &Result{Message: "SET optimizer"}, nil
		}
		return nil, fmt.Errorf("neurdb: unknown optimizer mode %q", st.Value)
	case "workers":
		n, err := strconv.Atoi(st.Value)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("neurdb: SET workers wants a non-negative integer, got %q", st.Value)
		}
		s.SetWorkers(n)
		return &Result{Message: "SET workers"}, nil
	case "statement_timeout":
		d, err := parseTimeoutValue(st.Value)
		if err != nil {
			return nil, err
		}
		if d == 0 {
			d = -1 // explicit 0 disables, rather than re-inheriting the DB config
		}
		s.SetStatementTimeout(d)
		return &Result{Message: "SET statement_timeout"}, nil
	default:
		return nil, fmt.Errorf("neurdb: unknown setting %q", st.Key)
	}
}

// parseTimeoutValue accepts a Go duration string ("500ms", "2s") or a bare
// non-negative integer interpreted as milliseconds (the PostgreSQL
// statement_timeout convention). 0 disables.
func parseTimeoutValue(v string) (time.Duration, error) {
	v = strings.TrimSpace(strings.Trim(v, `'"`))
	if ms, err := strconv.Atoi(v); err == nil {
		if ms < 0 {
			return 0, fmt.Errorf("neurdb: statement_timeout must be >= 0, got %d", ms)
		}
		return time.Duration(ms) * time.Millisecond, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("neurdb: statement_timeout wants a duration or integer milliseconds, got %q", v)
	}
	return d, nil
}

func (s *Session) execPredict(pr *sqlparse.Predict, args []rel.Value) (*Result, error) {
	tbl, err := s.db.cat.Get(pr.Table)
	if err != nil {
		return nil, err
	}
	targetIdx := tbl.Schema.ColIndex(pr.Target)
	if targetIdx < 0 {
		return nil, fmt.Errorf("neurdb: no column %q in %q", pr.Target, pr.Table)
	}
	// Feature columns: explicit list, or * = everything except the target
	// and unique-constrained columns (paper §2.3).
	var featureIdxs []int
	if pr.TrainAll {
		for i, c := range tbl.Schema.Cols {
			if i == targetIdx || c.Unique {
				continue
			}
			featureIdxs = append(featureIdxs, i)
		}
	} else {
		for _, name := range pr.TrainCols {
			ci := tbl.Schema.ColIndex(name)
			if ci < 0 {
				return nil, fmt.Errorf("neurdb: no column %q in %q", name, pr.Table)
			}
			if ci == targetIdx {
				continue
			}
			featureIdxs = append(featureIdxs, ci)
		}
	}
	trainFilter, err := bindTableExpr(tbl, pr.With)
	if err != nil {
		return nil, err
	}
	trainFilter = rel.SubstParams(trainFilter, args)
	predictFilter, err := bindTableExpr(tbl, pr.Where)
	if err != nil {
		return nil, err
	}
	predictFilter = rel.SubstParams(predictFilter, args)
	var inline []rel.Row
	for ri, exprRow := range pr.Values {
		// Inline rows are positional over the feature columns; verify the
		// arity here, where the statement context is known, instead of
		// failing (or silently misaligning) deep in the featurizer.
		if len(exprRow) != len(featureIdxs) {
			return nil, fmt.Errorf("neurdb: PREDICT VALUES row %d has %d values for %d feature columns",
				ri+1, len(exprRow), len(featureIdxs))
		}
		row := make(rel.Row, len(exprRow))
		for i, e := range exprRow {
			v, err := evalConstExpr(e, args)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		inline = append(inline, row)
	}

	task := executor.PredictTask{
		Table:          tbl,
		TargetIdx:      targetIdx,
		FeatureIdxs:    featureIdxs,
		Classification: pr.Kind == sqlparse.PredictClass,
		TrainFilter:    trainFilter,
		PredictFilter:  predictFilter,
		InlineRows:     inline,
		ModelName:      tbl.Name + "." + strings.ToLower(pr.Target),
	}
	tx := s.db.mgr.Begin(txn.Snapshot, true)
	ctx := &executor.Ctx{Mgr: s.db.mgr, Txn: tx, Cat: s.db.cat, Workers: s.effectiveWorkers()}
	res, err := executor.RunPredict(ctx, s.db.engine, task)
	s.db.mgr.Abort(tx)
	if err != nil {
		return nil, err
	}
	// Track training loss in the monitor (accuracy-drift detection input).
	if res.Train != nil && len(res.Train.Losses) > 0 {
		s.db.tracker.Observe("predict."+task.ModelName+".loss", res.Train.Losses[len(res.Train.Losses)-1])
	}
	out := &Result{
		Columns:     []string{"prediction"},
		Predictions: res.Predictions,
		Message:     fmt.Sprintf("PREDICT %s OF %s: %d predictions (model MID=%d reused=%v)", pr.Kind, pr.Target, len(res.Predictions), res.MID, res.Reused),
	}
	for _, p := range res.Predictions {
		v := p
		if task.Classification {
			if v >= 0.5 {
				v = 1
			} else {
				v = 0
			}
		}
		out.Rows = append(out.Rows, rel.Row{rel.Float(v)})
	}
	return out, nil
}
