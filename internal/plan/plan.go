// Package plan defines physical query-plan trees shared by the cost-based
// optimizer, the learned optimizers, and the executor, plus the feature
// encoding that turns plans into token sequences for the learned optimizer's
// tree-transformer encoder (paper Fig. 5).
package plan

import (
	"fmt"
	"strings"

	"neurdb/internal/catalog"
	"neurdb/internal/rel"
)

// Node is a physical plan operator. EstRows/EstCost are annotated by the
// optimizer that produced the plan and double as model features.
//
//lint:closedenum
type Node interface {
	// Schema is the output schema.
	Schema() *rel.Schema
	// Children returns input operators (empty for leaves).
	Children() []Node
	// Estimates returns (estimated rows, estimated cost).
	Estimates() (float64, float64)
	// Label names the operator for EXPLAIN and encoding.
	Label() string
}

// Base carries the fields every node shares.
type Base struct {
	Out     *rel.Schema
	EstRows float64
	EstCost float64
}

// Schema implements Node.
func (b *Base) Schema() *rel.Schema { return b.Out }

// Estimates implements Node.
func (b *Base) Estimates() (float64, float64) { return b.EstRows, b.EstCost }

// SeqScan reads a full table, applying an optional pushed-down filter.
type SeqScan struct {
	Base
	Table  *catalog.Table
	Filter rel.Expr // bound to the table schema; may be nil
}

// Children implements Node.
func (*SeqScan) Children() []Node { return nil }

// Label implements Node.
func (s *SeqScan) Label() string {
	if s.Filter != nil {
		return fmt.Sprintf("SeqScan(%s, %s)", s.Table.Name, s.Filter)
	}
	return fmt.Sprintf("SeqScan(%s)", s.Table.Name)
}

// IndexScan reads rows matching a key or range on an indexed column.
type IndexScan struct {
	Base
	Table  *catalog.Table
	Index  *catalog.Index
	Eq     *rel.Value // equality probe (nil for range)
	Lo, Hi *rel.Value // range bounds (either may be nil)
	// EqArg/LoArg/HiArg are 1-based parameter ordinals for probe bounds
	// supplied at execution time (0 = that bound is not a parameter), so a
	// prepared point lookup keeps its index scan across executions.
	// BindParams resolves them into Eq/Lo/Hi on the per-execution copy; the
	// executor rejects plans where they are still unresolved.
	EqArg, LoArg, HiArg int
	Filter              rel.Expr // residual filter; may be nil
}

// Children implements Node.
func (*IndexScan) Children() []Node { return nil }

// Label implements Node.
func (s *IndexScan) Label() string {
	var cond string
	col := s.Table.Schema.Col(s.Index.Col).Name
	bound := func(v *rel.Value, arg int) string {
		switch {
		case v != nil:
			return v.String()
		case arg != 0:
			return fmt.Sprintf("$%d", arg)
		default:
			return "<nil>"
		}
	}
	switch {
	case s.Eq != nil || s.EqArg != 0:
		cond = fmt.Sprintf("%s=%s", col, bound(s.Eq, s.EqArg))
	default:
		cond = fmt.Sprintf("%s in [%s,%s]", col, bound(s.Lo, s.LoArg), bound(s.Hi, s.HiArg))
	}
	return fmt.Sprintf("IndexScan(%s, %s)", s.Table.Name, cond)
}

// HashJoin is an equi-join: build on the right input, probe with the left.
type HashJoin struct {
	Base
	L, R       Node
	LKey, RKey int      // key column positions in the respective schemas
	Residual   rel.Expr // bound to concat(L,R) schema; may be nil
}

// Children implements Node.
func (j *HashJoin) Children() []Node { return []Node{j.L, j.R} }

// Label implements Node.
func (j *HashJoin) Label() string {
	return fmt.Sprintf("HashJoin(l.#%d = r.#%d)", j.LKey, j.RKey)
}

// NLJoin is a nested-loop join with an arbitrary condition.
type NLJoin struct {
	Base
	L, R Node
	On   rel.Expr // bound to concat(L,R) schema; may be nil (cross join)
}

// Children implements Node.
func (j *NLJoin) Children() []Node { return []Node{j.L, j.R} }

// Label implements Node.
func (j *NLJoin) Label() string {
	if j.On != nil {
		return fmt.Sprintf("NLJoin(%s)", j.On)
	}
	return "NLJoin(cross)"
}

// IndexJoin probes an index on the inner table for each outer row.
type IndexJoin struct {
	Base
	L        Node
	Table    *catalog.Table // inner table
	Index    *catalog.Index
	LKey     int      // key column position in L's schema
	Residual rel.Expr // bound to concat(L, inner) schema; may be nil
	Filter   rel.Expr // inner-table filter; bound to inner schema
}

// Children implements Node.
func (j *IndexJoin) Children() []Node { return []Node{j.L} }

// Label implements Node.
func (j *IndexJoin) Label() string {
	return fmt.Sprintf("IndexJoin(%s, l.#%d)", j.Table.Name, j.LKey)
}

// Filter applies a predicate.
type Filter struct {
	Base
	Child Node
	Pred  rel.Expr
}

// Children implements Node.
func (f *Filter) Children() []Node { return []Node{f.Child} }

// Label implements Node.
func (f *Filter) Label() string { return fmt.Sprintf("Filter(%s)", f.Pred) }

// Project computes output expressions.
type Project struct {
	Base
	Child Node
	Exprs []rel.Expr
}

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Child} }

// Label implements Node.
func (p *Project) Label() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return "Project(" + strings.Join(parts, ", ") + ")"
}

// AggKind enumerates aggregate functions.
//
//lint:closedenum
type AggKind uint8

// Aggregate kinds.
const (
	AggCount AggKind = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String names the aggregate.
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	default:
		return "MAX"
	}
}

// AggSpec is one aggregate output.
type AggSpec struct {
	Kind AggKind
	Arg  rel.Expr // nil for COUNT(*)
}

// AggItem is one output column of an Agg node: either an aggregate or a
// group-key expression (evaluated on the group's first row).
type AggItem struct {
	Agg *AggSpec // nil means key expression
	Key rel.Expr // used when Agg is nil
}

// Agg groups and aggregates.
type Agg struct {
	Base
	Child   Node
	GroupBy []rel.Expr
	Items   []AggItem
}

// Children implements Node.
func (a *Agg) Children() []Node { return []Node{a.Child} }

// Label implements Node.
func (a *Agg) Label() string {
	return fmt.Sprintf("Agg(groups=%d, items=%d)", len(a.GroupBy), len(a.Items))
}

// SortKey is one ordering key.
type SortKey struct {
	E    rel.Expr
	Desc bool
}

// Sort orders rows.
type Sort struct {
	Base
	Child Node
	Keys  []SortKey
}

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Child} }

// Label implements Node.
func (s *Sort) Label() string { return fmt.Sprintf("Sort(keys=%d)", len(s.Keys)) }

// Limit caps output size.
type Limit struct {
	Base
	Child Node
	N     int64
}

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Child} }

// Label implements Node.
func (l *Limit) Label() string { return fmt.Sprintf("Limit(%d)", l.N) }

// Explain renders the plan tree as indented text.
func Explain(n Node) string {
	var sb strings.Builder
	explain(&sb, n, 0)
	return sb.String()
}

func explain(sb *strings.Builder, n Node, depth int) {
	rows, cost := n.Estimates()
	fmt.Fprintf(sb, "%s%s  (rows=%.0f cost=%.1f)\n", strings.Repeat("  ", depth), n.Label(), rows, cost)
	for _, c := range n.Children() {
		explain(sb, c, depth+1)
	}
}

// Walk visits the plan tree pre-order.
func Walk(n Node, visit func(Node, int)) { walk(n, 0, visit) }

func walk(n Node, depth int, visit func(Node, int)) {
	visit(n, depth)
	for _, c := range n.Children() {
		walk(c, depth+1, visit)
	}
}

// Count returns the number of operators in the plan.
func Count(n Node) int {
	total := 0
	Walk(n, func(Node, int) { total++ })
	return total
}
