package plan

import (
	"strings"
	"testing"

	"neurdb/internal/catalog"
	"neurdb/internal/rel"
)

func testTable(t *testing.T) *catalog.Table {
	t.Helper()
	cat := catalog.New(nil)
	tbl, err := cat.Create("t", rel.NewSchema(
		rel.Column{Name: "a", Typ: rel.TypeInt},
		rel.Column{Name: "b", Typ: rel.TypeInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		tbl.Heap.Insert(rel.Row{rel.Int(int64(i)), rel.Int(int64(i % 7))}, 1)
	}
	tbl.Stats.Rebuild([]rel.Row{{rel.Int(1), rel.Int(2)}})
	return tbl
}

func samplePlan(t *testing.T) Node {
	tbl := testTable(t)
	scan := &SeqScan{
		Base:  Base{Out: tbl.Schema, EstRows: 100, EstCost: 10},
		Table: tbl,
		Filter: &rel.BinOp{Kind: rel.OpGt,
			L: &rel.ColRef{Idx: 0, Name: "a"}, R: &rel.Const{Val: rel.Int(5)}},
	}
	scan2 := &SeqScan{Base: Base{Out: tbl.Schema, EstRows: 100, EstCost: 10}, Table: tbl}
	join := &HashJoin{
		Base: Base{Out: tbl.Schema.Concat(tbl.Schema), EstRows: 50, EstCost: 40},
		L:    scan, R: scan2, LKey: 0, RKey: 0,
	}
	return &Project{
		Base:  Base{Out: rel.NewSchema(rel.Column{Name: "a"}), EstRows: 50, EstCost: 45},
		Child: join,
		Exprs: []rel.Expr{&rel.ColRef{Idx: 0, Name: "a"}},
	}
}

func TestExplainWalkCount(t *testing.T) {
	p := samplePlan(t)
	if got := Count(p); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	out := Explain(p)
	for _, want := range []string{"Project", "HashJoin", "SeqScan(t, (a > 5))", "rows=50"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain missing %q:\n%s", want, out)
		}
	}
	// Walk visits with correct depths.
	depths := map[string]int{}
	Walk(p, func(n Node, d int) { depths[n.Label()] = d })
	if depths["HashJoin(l.#0 = r.#0)"] != 1 {
		t.Fatalf("depths: %v", depths)
	}
}

func TestEncodeTreeFeatures(t *testing.T) {
	p := samplePlan(t)
	toks := EncodeTree(p)
	if len(toks) != Count(p) {
		t.Fatalf("token count %d vs nodes %d", len(toks), Count(p))
	}
	for _, tok := range toks {
		if len(tok) != NodeFeatureDim {
			t.Fatalf("feature dim %d", len(tok))
		}
	}
	// Root is a Project → "other" one-hot at position 6, depth 0.
	if toks[0][6] != 1 || toks[0][9] != 0 {
		t.Fatalf("root token wrong: %v", toks[0])
	}
	// Second token is the hash join at depth 1.
	if toks[1][2] != 1 || toks[1][9] == 0 {
		t.Fatalf("join token wrong: %v", toks[1])
	}
	// Leaves carry table features.
	leaf := toks[2]
	if leaf[0] != 1 || leaf[11] <= 0 {
		t.Fatalf("leaf token wrong: %v", leaf)
	}
}

func TestNodeLabelsAndKinds(t *testing.T) {
	tbl := testTable(t)
	v := rel.Int(3)
	nodes := []Node{
		&IndexScan{Base: Base{Out: tbl.Schema}, Table: tbl,
			Index: &catalog.Index{Name: "i", Col: 0}, Eq: &v},
		&IndexScan{Base: Base{Out: tbl.Schema}, Table: tbl,
			Index: &catalog.Index{Name: "i", Col: 0}, Lo: &v},
		&NLJoin{Base: Base{Out: tbl.Schema}, L: &SeqScan{Base: Base{Out: tbl.Schema}, Table: tbl},
			R: &SeqScan{Base: Base{Out: tbl.Schema}, Table: tbl}},
		&IndexJoin{Base: Base{Out: tbl.Schema}, L: &SeqScan{Base: Base{Out: tbl.Schema}, Table: tbl},
			Table: tbl, Index: &catalog.Index{Name: "i", Col: 0}},
		&Filter{Base: Base{Out: tbl.Schema}, Child: &SeqScan{Base: Base{Out: tbl.Schema}, Table: tbl},
			Pred: &rel.Const{Val: rel.Bool(true)}},
		&Agg{Base: Base{Out: tbl.Schema}, Child: &SeqScan{Base: Base{Out: tbl.Schema}, Table: tbl},
			Items: []AggItem{{Agg: &AggSpec{Kind: AggCount}}}},
		&Sort{Base: Base{Out: tbl.Schema}, Child: &SeqScan{Base: Base{Out: tbl.Schema}, Table: tbl}},
		&Limit{Base: Base{Out: tbl.Schema}, Child: &SeqScan{Base: Base{Out: tbl.Schema}, Table: tbl}, N: 5},
	}
	for _, n := range nodes {
		if n.Label() == "" {
			t.Fatalf("%T has empty label", n)
		}
		if n.Schema() == nil {
			t.Fatalf("%T has no schema", n)
		}
	}
	// Aggregate kind names.
	for k, want := range map[AggKind]string{AggCount: "COUNT", AggSum: "SUM", AggAvg: "AVG", AggMin: "MIN", AggMax: "MAX"} {
		if k.String() != want {
			t.Fatalf("agg kind %d name %q", k, k.String())
		}
	}
	// NLJoin without condition renders as cross join.
	cross := &NLJoin{Base: Base{Out: tbl.Schema}, L: nodes[2], R: nodes[2]}
	if !strings.Contains(cross.Label(), "cross") {
		t.Fatal("cross join label wrong")
	}
}
