package plan

import (
	"neurdb/internal/rel"
)

// HasParams reports whether the plan references any query parameter, either
// in an expression tree or as an index-scan probe bound. Prepared statements
// whose plan has no parameters skip the BindParams copy entirely.
func HasParams(n Node) bool {
	found := false
	Walk(n, func(node Node, _ int) {
		if found {
			return
		}
		switch t := node.(type) {
		case *SeqScan:
			found = rel.HasParams(t.Filter)
		case *IndexScan:
			found = t.EqArg != 0 || t.LoArg != 0 || t.HiArg != 0 || rel.HasParams(t.Filter)
		case *HashJoin:
			found = rel.HasParams(t.Residual)
		case *NLJoin:
			found = rel.HasParams(t.On)
		case *IndexJoin:
			found = rel.HasParams(t.Residual) || rel.HasParams(t.Filter)
		case *Filter:
			found = rel.HasParams(t.Pred)
		case *Project:
			found = anyParam(t.Exprs)
		case *Agg:
			found = anyParam(t.GroupBy)
			for _, it := range t.Items {
				if found {
					break
				}
				if it.Agg != nil {
					found = rel.HasParams(it.Agg.Arg)
				} else {
					found = rel.HasParams(it.Key)
				}
			}
		case *Sort:
			for _, k := range t.Keys {
				if rel.HasParams(k.E) {
					found = true
					break
				}
			}
		case *Limit:
			// N is a parsed literal; LIMIT has no parameter slot.
		}
	})
	return found
}

func anyParam(es []rel.Expr) bool {
	for _, e := range es {
		if rel.HasParams(e) {
			return true
		}
	}
	return false
}

// BindParams returns a copy of the plan with every parameter reference
// replaced by the corresponding argument value: expression Params become
// Consts and parameter-bound index probes become concrete Eq/Lo/Hi values.
// Subtrees without parameters are shared, not copied, so re-executing a
// cached plan allocates only along parameterized paths; the cached plan
// itself is never mutated.
func BindParams(n Node, args []rel.Value) Node {
	switch t := n.(type) {
	case *SeqScan:
		f := rel.SubstParams(t.Filter, args)
		if f == t.Filter {
			return t
		}
		cp := *t
		cp.Filter = f
		return &cp
	case *IndexScan:
		f := rel.SubstParams(t.Filter, args)
		if f == t.Filter && t.EqArg == 0 && t.LoArg == 0 && t.HiArg == 0 {
			return t
		}
		cp := *t
		cp.Filter = f
		resolve := func(arg int) *rel.Value {
			if arg < 1 || arg > len(args) {
				v := rel.Null()
				return &v
			}
			v := args[arg-1]
			return &v
		}
		if t.EqArg != 0 {
			cp.Eq, cp.EqArg = resolve(t.EqArg), 0
		}
		if t.LoArg != 0 {
			cp.Lo, cp.LoArg = resolve(t.LoArg), 0
		}
		if t.HiArg != 0 {
			cp.Hi, cp.HiArg = resolve(t.HiArg), 0
		}
		return &cp
	case *HashJoin:
		l, r := BindParams(t.L, args), BindParams(t.R, args)
		res := rel.SubstParams(t.Residual, args)
		if l == t.L && r == t.R && res == t.Residual {
			return t
		}
		cp := *t
		cp.L, cp.R, cp.Residual = l, r, res
		return &cp
	case *NLJoin:
		l, r := BindParams(t.L, args), BindParams(t.R, args)
		on := rel.SubstParams(t.On, args)
		if l == t.L && r == t.R && on == t.On {
			return t
		}
		cp := *t
		cp.L, cp.R, cp.On = l, r, on
		return &cp
	case *IndexJoin:
		l := BindParams(t.L, args)
		res := rel.SubstParams(t.Residual, args)
		f := rel.SubstParams(t.Filter, args)
		if l == t.L && res == t.Residual && f == t.Filter {
			return t
		}
		cp := *t
		cp.L, cp.Residual, cp.Filter = l, res, f
		return &cp
	case *Filter:
		c := BindParams(t.Child, args)
		p := rel.SubstParams(t.Pred, args)
		if c == t.Child && p == t.Pred {
			return t
		}
		cp := *t
		cp.Child, cp.Pred = c, p
		return &cp
	case *Project:
		c := BindParams(t.Child, args)
		exprs, changed := substAll(t.Exprs, args)
		if c == t.Child && !changed {
			return t
		}
		cp := *t
		cp.Child, cp.Exprs = c, exprs
		return &cp
	case *Agg:
		c := BindParams(t.Child, args)
		groupBy, gChanged := substAll(t.GroupBy, args)
		items := t.Items
		iChanged := false
		for i, it := range t.Items {
			var before, after rel.Expr
			if it.Agg != nil {
				before = it.Agg.Arg
			} else {
				before = it.Key
			}
			after = rel.SubstParams(before, args)
			if after == before {
				continue
			}
			if !iChanged {
				items = append([]AggItem(nil), t.Items...)
				iChanged = true
			}
			if it.Agg != nil {
				spec := *it.Agg
				spec.Arg = after
				items[i].Agg = &spec
			} else {
				items[i].Key = after
			}
		}
		if c == t.Child && !gChanged && !iChanged {
			return t
		}
		cp := *t
		cp.Child, cp.GroupBy, cp.Items = c, groupBy, items
		return &cp
	case *Sort:
		c := BindParams(t.Child, args)
		keys := t.Keys
		changed := false
		for i, k := range t.Keys {
			e := rel.SubstParams(k.E, args)
			if e == k.E {
				continue
			}
			if !changed {
				keys = append([]SortKey(nil), t.Keys...)
				changed = true
			}
			keys[i].E = e
		}
		if c == t.Child && !changed {
			return t
		}
		cp := *t
		cp.Child, cp.Keys = c, keys
		return &cp
	case *Limit:
		c := BindParams(t.Child, args)
		if c == t.Child {
			return t
		}
		cp := *t
		cp.Child = c
		return &cp
	default:
		return n
	}
}

// substAll substitutes params across an expression slice, copying the slice
// only when something changed.
func substAll(es []rel.Expr, args []rel.Value) ([]rel.Expr, bool) {
	out := es
	changed := false
	for i, e := range es {
		s := rel.SubstParams(e, args)
		if s == e {
			continue
		}
		if !changed {
			out = append([]rel.Expr(nil), es...)
			changed = true
		}
		out[i] = s
	}
	return out, changed
}
