package plan

import "math"

// NodeFeatureDim is the width of a plan-node token vector consumed by the
// learned optimizer's tree-transformer encoder. Layout:
//
//	[0..6]  one-hot operator type (seqscan, indexscan, hashjoin, nljoin,
//	        indexjoin, filter, other)
//	[7]     log1p(estimated rows), scaled
//	[8]     log1p(estimated cost), scaled
//	[9]     depth / 8
//	[10]    normalized table id (leaves; 0 otherwise)
//	[11]    log1p(table row count), scaled (leaves; 0 otherwise)
const NodeFeatureDim = 12

const logScale = 1.0 / 20.0 // log1p values land roughly in [0, 1]

// NodeFeatures encodes one operator as a feature vector.
func NodeFeatures(n Node, depth int) []float64 {
	f := make([]float64, NodeFeatureDim)
	switch t := n.(type) {
	case *SeqScan:
		f[0] = 1
		f[10] = float64(t.Table.ID%16) / 16
		f[11] = math.Log1p(float64(t.Table.Stats.Rows())) * logScale
	case *IndexScan:
		f[1] = 1
		f[10] = float64(t.Table.ID%16) / 16
		f[11] = math.Log1p(float64(t.Table.Stats.Rows())) * logScale
	case *HashJoin:
		f[2] = 1
	case *NLJoin:
		f[3] = 1
	case *IndexJoin:
		f[4] = 1
		f[10] = float64(t.Table.ID%16) / 16
		f[11] = math.Log1p(float64(t.Table.Stats.Rows())) * logScale
	case *Filter:
		f[5] = 1
	default:
		f[6] = 1
	}
	rows, cost := n.Estimates()
	f[7] = math.Log1p(math.Max(rows, 0)) * logScale
	f[8] = math.Log1p(math.Max(cost, 0)) * logScale
	f[9] = float64(depth) / 8
	return f
}

// EncodeTree flattens a plan into a pre-order token sequence, one feature
// vector per operator. The depth feature preserves tree structure for the
// transformer (a standard tree-linearization trick).
func EncodeTree(n Node) [][]float64 {
	var out [][]float64
	Walk(n, func(node Node, depth int) {
		out = append(out, NodeFeatures(node, depth))
	})
	return out
}
