package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "a.txt")
	f, err := OS.OpenFile(name, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	b, err := OS.ReadFile(name)
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile: %q, %v", b, err)
	}
	if err := OS.Rename(name, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	ents, err := OS.ReadDir(dir)
	if err != nil || len(ents) != 1 || ents[0].Name() != "b.txt" {
		t.Fatalf("ReadDir: %v, %v", ents, err)
	}
	if err := OS.Remove(filepath.Join(dir, "b.txt")); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	// Failed opens must return an untyped nil interface so `if f != nil`
	// cleanup paths behave.
	if f, err := OS.OpenFile(filepath.Join(dir, "nope", "x"), os.O_WRONLY, 0o644); err == nil || f != nil {
		t.Fatalf("expected nil file + error, got %v, %v", f, err)
	}
}

func TestFaultNthMatch(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	ffs.AddFault(Fault{Op: OpSync, Path: "wal", Nth: 2, Err: ErrIO})

	f, err := ffs.OpenFile(filepath.Join(dir, "wal-00000001.log"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("first sync should pass: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrIO) {
		t.Fatalf("second sync should inject EIO, got %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("third sync should pass again: %v", err)
	}
	if got := ffs.CountOps(OpSync, "wal"); got != 3 {
		t.Fatalf("journal should hold 3 syncs, got %d", got)
	}
}

func TestFaultPathFilter(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	ffs.AddFault(Fault{Op: OpWrite, Path: "checkpoint", Err: ErrNoSpace})

	wal, _ := ffs.OpenFile(filepath.Join(dir, "wal-1.log"), os.O_CREATE|os.O_WRONLY, 0o644)
	if _, err := wal.Write([]byte("x")); err != nil {
		t.Fatalf("non-matching path must not fault: %v", err)
	}
	ck, _ := ffs.OpenFile(filepath.Join(dir, "checkpoint-1.tmp"), os.O_CREATE|os.O_WRONLY, 0o644)
	if _, err := ck.Write([]byte("x")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("matching path must inject ENOSPC, got %v", err)
	}
}

func TestShortWrite(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "seg.log")
	ffs := NewFaultFS(OS)
	ffs.AddFault(Fault{Op: OpWrite, Nth: 1, Short: 3, Err: ErrNoSpace})

	f, _ := ffs.OpenFile(name, os.O_CREATE|os.O_WRONLY, 0o644)
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want short write of 3 + ENOSPC, got n=%d err=%v", n, err)
	}
	// The torn prefix really reached the file.
	b, rerr := os.ReadFile(name)
	if rerr != nil || string(b) != "abc" {
		t.Fatalf("torn prefix on disk: %q, %v", b, rerr)
	}
}

func TestCrashPointFreezesMutations(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	ffs.AddFault(Fault{Op: OpWrite, Nth: 2, Crash: true})

	f, _ := ffs.OpenFile(filepath.Join(dir, "seg.log"), os.O_CREATE|os.O_WRONLY, 0o644)
	if _, err := f.Write([]byte("one")); err != nil {
		t.Fatalf("pre-crash write: %v", err)
	}
	if _, err := f.Write([]byte("two")); !errors.Is(err, ErrIO) {
		t.Fatalf("crash-point write should fail with default EIO, got %v", err)
	}
	if !ffs.Crashed() {
		t.Fatal("FS should report crashed")
	}
	// Everything mutating is now frozen, on any path.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: %v", err)
	}
	if err := ffs.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename: %v", err)
	}
	if _, err := ffs.OpenFile(filepath.Join(dir, "new.log"), os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create: %v", err)
	}
	// Reads still work: the harness inspects state through the same FS.
	if _, err := ffs.ReadDir(dir); err != nil {
		t.Fatalf("post-crash readdir should pass: %v", err)
	}
	// Pre-crash data survives.
	b, err := os.ReadFile(filepath.Join(dir, "seg.log"))
	if err != nil || string(b) != "one" {
		t.Fatalf("pre-crash bytes: %q, %v", b, err)
	}
}

func TestJournalRecordsOutcomes(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	ffs.AddFault(Fault{Op: OpRename, Path: "final", Err: ErrIO})

	src := filepath.Join(dir, "t.tmp")
	if f, err := ffs.OpenFile(src, os.O_CREATE|os.O_WRONLY, 0o644); err != nil {
		t.Fatal(err)
	} else if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ffs.Rename(src, filepath.Join(dir, "final")); !errors.Is(err, ErrIO) {
		t.Fatalf("rename should fault: %v", err)
	}
	j := ffs.Journal()
	var sawOpen, sawClose, sawRename bool
	for _, r := range j {
		switch r.Op {
		case OpOpenFile:
			sawOpen = r.Err == nil
		case OpClose:
			sawClose = r.Err == nil
		case OpRename:
			sawRename = errors.Is(r.Err, ErrIO)
		}
	}
	if !sawOpen || !sawClose || !sawRename {
		t.Fatalf("journal missing records: %+v", j)
	}
}
