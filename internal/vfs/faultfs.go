package vfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"syscall"
)

// Injectable errors. EIO/ENOSPC are the real syscall errnos so code and
// tests can match them the same way they would match a production fault.
var (
	ErrIO      = syscall.EIO
	ErrNoSpace = syscall.ENOSPC
	// ErrCrashed is returned by every mutating operation after a crash-point
	// fault fires: the simulated machine has lost power, nothing reaches
	// disk anymore. Recovery tests reopen the directory with a clean FS.
	ErrCrashed = errors.New("vfs: simulated crash (post-crash write frozen)")
)

// Op identifies the kind of filesystem operation, for fault matching and
// the journal.
type Op string

const (
	OpOpenFile Op = "openfile"
	OpOpen     Op = "open"
	OpReadFile Op = "readfile"
	OpReadDir  Op = "readdir"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpMkdirAll Op = "mkdirall"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpClose    Op = "close"
	OpTruncate Op = "truncate"
)

// mutating reports whether the op changes disk state; only these are frozen
// after a crash-point. Reads keep working — a crashed process can't read,
// but the test harness itself reopens files through a fresh FS, and freezing
// reads would only mask bugs in the failure path under test.
func (o Op) mutating() bool {
	switch o {
	case OpOpenFile, OpRename, OpRemove, OpMkdirAll, OpWrite, OpSync, OpTruncate:
		return true
	}
	return false
}

// Fault is one scripted fault. It fires on the Nth operation (1-based,
// counted per fault rule) whose kind matches Op and whose path contains
// Path as a substring (empty Path matches everything).
type Fault struct {
	Op   Op
	Path string
	Nth  int
	// Err is the injected error; defaults to ErrIO when nil.
	Err error
	// Short, for OpWrite faults, accepts the first Short bytes of the
	// triggering write before returning the error — a torn write.
	Short int
	// Crash marks this fault as a crash-point: after it fires, every
	// subsequent mutating operation on the whole FS fails with ErrCrashed,
	// simulating power loss at this exact instant.
	Crash bool

	seen int // matching ops observed so far (guarded by FaultFS.mu)
}

// OpRecord is one journaled operation.
type OpRecord struct {
	Op   Op
	Path string
	// N is the byte count for writes/truncates.
	N int
	// Err is the outcome, nil on success (injected faults included).
	Err error
}

// FaultFS wraps an inner FS and injects scripted faults while journaling
// every operation. Deterministic by construction: the same op sequence hits
// the same faults. Safe for concurrent use; the journal preserves the
// serialization order the mutex imposed.
type FaultFS struct {
	inner FS

	mu      sync.Mutex
	faults  []*Fault
	journal []OpRecord
	crashed bool
}

// NewFaultFS wraps inner (vfs.OS when nil).
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OS
	}
	return &FaultFS{inner: inner}
}

// AddFault schedules a fault. Returns the FaultFS for chaining.
func (f *FaultFS) AddFault(ft Fault) *FaultFS {
	if ft.Nth <= 0 {
		ft.Nth = 1
	}
	if ft.Err == nil {
		ft.Err = ErrIO
	}
	f.mu.Lock()
	f.faults = append(f.faults, &ft)
	f.mu.Unlock()
	return f
}

// Crashed reports whether a crash-point has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// ClearFaults drops all scheduled faults (the crash flag persists).
func (f *FaultFS) ClearFaults() {
	f.mu.Lock()
	f.faults = nil
	f.mu.Unlock()
}

// Journal returns a copy of the op journal.
func (f *FaultFS) Journal() []OpRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]OpRecord(nil), f.journal...)
}

// CountOps returns how many journaled ops match kind and path substring.
func (f *FaultFS) CountOps(op Op, pathContains string) int {
	n := 0
	for _, r := range f.Journal() {
		if r.Op == op && strings.Contains(r.Path, pathContains) {
			n++
		}
	}
	return n
}

// check consults the fault script for one op about to execute. It returns
// the injected error (nil = proceed) and, for short writes, how many bytes
// to accept before failing (-1 = not a short write).
func (f *FaultFS) check(op Op, path string) (error, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed && op.mutating() {
		return ErrCrashed, -1
	}
	for _, ft := range f.faults {
		if ft.Op != op || !strings.Contains(path, ft.Path) {
			continue
		}
		ft.seen++
		if ft.seen != ft.Nth {
			continue
		}
		if ft.Crash {
			f.crashed = true
		}
		short := -1
		if op == OpWrite && ft.Short > 0 {
			short = ft.Short
		}
		return ft.Err, short
	}
	return nil, -1
}

func (f *FaultFS) record(op Op, path string, n int, err error) {
	f.mu.Lock()
	f.journal = append(f.journal, OpRecord{Op: op, Path: path, N: n, Err: err})
	f.mu.Unlock()
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err, _ := f.check(OpOpenFile, name); err != nil {
		f.record(OpOpenFile, name, 0, err)
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	f.record(OpOpenFile, name, 0, err)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, inner: inner}, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	if err, _ := f.check(OpOpen, name); err != nil {
		f.record(OpOpen, name, 0, err)
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	inner, err := f.inner.Open(name)
	f.record(OpOpen, name, 0, err)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, inner: inner}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if err, _ := f.check(OpReadFile, name); err != nil {
		f.record(OpReadFile, name, 0, err)
		return nil, &os.PathError{Op: "read", Path: name, Err: err}
	}
	b, err := f.inner.ReadFile(name)
	f.record(OpReadFile, name, len(b), err)
	return b, err
}

func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) {
	if err, _ := f.check(OpReadDir, name); err != nil {
		f.record(OpReadDir, name, 0, err)
		return nil, &os.PathError{Op: "readdir", Path: name, Err: err}
	}
	ents, err := f.inner.ReadDir(name)
	f.record(OpReadDir, name, len(ents), err)
	return ents, err
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	// Matched and journaled under the destination: checkpoint publication
	// renames tmp → final, and the final name is what the script targets.
	if err, _ := f.check(OpRename, newpath); err != nil {
		f.record(OpRename, newpath, 0, err)
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
	}
	err := f.inner.Rename(oldpath, newpath)
	f.record(OpRename, newpath, 0, err)
	return err
}

func (f *FaultFS) Remove(name string) error {
	if err, _ := f.check(OpRemove, name); err != nil {
		f.record(OpRemove, name, 0, err)
		return &os.PathError{Op: "remove", Path: name, Err: err}
	}
	err := f.inner.Remove(name)
	f.record(OpRemove, name, 0, err)
	return err
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if err, _ := f.check(OpMkdirAll, path); err != nil {
		f.record(OpMkdirAll, path, 0, err)
		return &os.PathError{Op: "mkdir", Path: path, Err: err}
	}
	err := f.inner.MkdirAll(path, perm)
	f.record(OpMkdirAll, path, 0, err)
	return err
}

// faultFile routes per-file ops back through the owning FaultFS script.
type faultFile struct {
	fs    *FaultFS
	name  string
	inner File
}

func (ff *faultFile) Read(p []byte) (int, error) {
	// Reads are not in the fault script (recovery reads use ReadFile);
	// journaled only when they fail, to keep the journal signal-dense.
	n, err := ff.inner.Read(p)
	if err != nil && !errors.Is(err, io.EOF) {
		ff.fs.record(OpOpen, ff.name, n, err)
	}
	return n, err
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if err, short := ff.fs.check(OpWrite, ff.name); err != nil {
		n := 0
		if short > 0 {
			if short > len(p) {
				short = len(p)
			}
			// Torn write: part of the payload reaches the file before the
			// device fails. Inner write errors surface over the scripted one
			// because they mean the substrate itself broke.
			var werr error
			n, werr = ff.inner.Write(p[:short])
			if werr != nil {
				err = werr
			}
		}
		ff.fs.record(OpWrite, ff.name, n, err)
		return n, &os.PathError{Op: "write", Path: ff.name, Err: err}
	}
	n, err := ff.inner.Write(p)
	ff.fs.record(OpWrite, ff.name, n, err)
	return n, err
}

func (ff *faultFile) Sync() error {
	if err, _ := ff.fs.check(OpSync, ff.name); err != nil {
		ff.fs.record(OpSync, ff.name, 0, err)
		return &os.PathError{Op: "sync", Path: ff.name, Err: err}
	}
	err := ff.inner.Sync()
	ff.fs.record(OpSync, ff.name, 0, err)
	return err
}

func (ff *faultFile) Close() error {
	if err, _ := ff.fs.check(OpClose, ff.name); err != nil {
		ff.fs.record(OpClose, ff.name, 0, err)
		// The underlying descriptor is still released — a scripted close
		// failure should not leak fds in long fault-matrix test runs.
		_ = ff.inner.Close()
		return &os.PathError{Op: "close", Path: ff.name, Err: err}
	}
	err := ff.inner.Close()
	ff.fs.record(OpClose, ff.name, 0, err)
	return err
}

func (ff *faultFile) Truncate(size int64) error {
	if err, _ := ff.fs.check(OpTruncate, ff.name); err != nil {
		ff.fs.record(OpTruncate, ff.name, int(size), err)
		return &os.PathError{Op: "truncate", Path: ff.name, Err: err}
	}
	err := ff.inner.Truncate(size)
	ff.fs.record(OpTruncate, ff.name, int(size), err)
	return err
}

// String renders a fault for test failure messages.
func (ft Fault) String() string {
	return fmt.Sprintf("fault{%s %q nth=%d err=%v short=%d crash=%v}",
		ft.Op, ft.Path, ft.Nth, ft.Err, ft.Short, ft.Crash)
}
