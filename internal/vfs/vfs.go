// Package vfs is the virtual filesystem boundary of the durability layer.
// Everything internal/wal and the root-package recovery path do to disk —
// segment creation, record writes, fsyncs, checkpoint rename dances,
// directory listings — goes through the FS interface, so the whole failure
// domain of a real disk (EIO, ENOSPC, short writes, power loss between an
// acknowledged write and its fsync) can be scripted deterministically in
// tests instead of waited for in production.
//
// Two implementations ship: OS, a zero-cost passthrough to the os package,
// and FaultFS (fault.go), which wraps any FS and injects scripted faults
// while journaling every operation for assertions.
package vfs

import (
	"io"
	"os"
)

// File is the subset of *os.File the durability layer uses. Write errors,
// Sync errors, and Close errors are all durability events — see the ioerr
// lint analyzer, which covers every call site of these methods.
type File interface {
	io.Reader
	io.Writer
	// Sync forces the file's data to stable storage (fsync).
	Sync() error
	Close() error
	// Truncate changes the file's size (crash-simulation and repair paths).
	Truncate(size int64) error
}

// FS is the filesystem surface of the durability layer. Implementations
// must be safe for concurrent use by multiple goroutines.
type FS interface {
	// OpenFile is the general open call (os.OpenFile semantics: flag is
	// O_CREATE|O_EXCL|O_WRONLY and friends).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens a file (or directory, for directory fsyncs) read-only.
	Open(name string) (File, error)
	// ReadFile returns the file's whole contents (recovery-time reads).
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory, sorted by filename.
	ReadDir(name string) ([]os.DirEntry, error)
	// Rename atomically moves oldpath to newpath (checkpoint publication).
	Rename(oldpath, newpath string) error
	// Remove deletes a file (segment and checkpoint retention).
	Remove(name string) error
	// MkdirAll creates the directory path (boot).
	MkdirAll(path string, perm os.FileMode) error
}

// OS is the passthrough FS over the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		// Return a typed nil-free interface: a nil *os.File inside a non-nil
		// interface would defeat callers' `if f != nil` cleanup checks.
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
