// Package catalog tracks table metadata: schemas, heaps, secondary indexes,
// and statistics. It is the shared registry every engine layer (parser
// binding, optimizer, executor, AI operators) resolves names against.
package catalog

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"neurdb/internal/index"
	"neurdb/internal/rel"
	"neurdb/internal/stats"
	"neurdb/internal/storage"
)

// Index is a secondary index over one column; exactly one of BT/Hash is set.
type Index struct {
	Name string
	Col  int
	BT   *index.BTree
	Hash *index.HashIndex
}

// Ordered reports whether the index supports range scans.
func (ix *Index) Ordered() bool { return ix.BT != nil }

// Insert adds a posting.
func (ix *Index) Insert(key rel.Value, id storage.RowID) {
	if ix.BT != nil {
		ix.BT.Insert(key, id)
	} else {
		ix.Hash.Insert(key, id)
	}
}

// Delete removes a posting.
func (ix *Index) Delete(key rel.Value, id storage.RowID) {
	if ix.BT != nil {
		ix.BT.Delete(key, id)
	} else {
		ix.Hash.Delete(key, id)
	}
}

// Lookup probes for equal keys.
func (ix *Index) Lookup(key rel.Value) []storage.RowID {
	if ix.BT != nil {
		return ix.BT.Lookup(key)
	}
	return ix.Hash.Lookup(key)
}

// LookupBatch probes every key under one index-lock acquisition, appending
// the postings to ids (flattened) and the per-key end offset to offs, so
// ids[offs[k-1]:offs[k]] are key k's postings (offs[-1] reads as the initial
// len(ids)). The batched index joins use it to pay one lock and zero
// per-probe allocations per outer batch instead of per outer row.
func (ix *Index) LookupBatch(keys []rel.Value, ids []storage.RowID, offs []int) ([]storage.RowID, []int) {
	if ix.BT != nil {
		return ix.BT.LookupBatch(keys, ids, offs)
	}
	return ix.Hash.LookupBatch(keys, ids, offs)
}

// Table bundles everything the engine knows about one relation.
type Table struct {
	ID      int
	Name    string
	Schema  *rel.Schema
	Heap    *storage.Heap
	Stats   *stats.TableStats
	mu      sync.RWMutex
	indexes []*Index
}

// Indexes returns the current index list (copy-safe for iteration).
func (t *Table) Indexes() []*Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Index, len(t.indexes))
	copy(out, t.indexes)
	return out
}

// IndexOn returns an index over the given column, preferring ordered ones,
// or nil.
func (t *Table) IndexOn(col int) *Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var hash *Index
	for _, ix := range t.indexes {
		if ix.Col != col {
			continue
		}
		if ix.BT != nil {
			return ix
		}
		hash = ix
	}
	return hash
}

// AddIndex registers a new index (already populated by the caller).
func (t *Table) AddIndex(ix *Index) {
	t.mu.Lock()
	t.indexes = append(t.indexes, ix)
	t.mu.Unlock()
}

// Catalog is the table registry.
type Catalog struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	nextID  int
	Pool    *storage.BufferPool
	version atomic.Uint64
}

// Version returns the schema-change counter. It ticks on every CREATE/DROP
// TABLE and on every explicit BumpVersion (index creation, ANALYZE), so
// cached plans key their validity on it: a plan compiled at version v is
// stale once Version() != v.
func (c *Catalog) Version() uint64 { return c.version.Load() }

// BumpVersion invalidates plans cached against the current version. DDL
// that does not go through Create/Drop (CREATE INDEX) and statistics
// refreshes (ANALYZE) call it so prepared statements replan.
func (c *Catalog) BumpVersion() { c.version.Add(1) }

// New creates a catalog backed by the given buffer pool (may be nil).
func New(pool *storage.BufferPool) *Catalog {
	return &Catalog{tables: make(map[string]*Table), Pool: pool}
}

// Create registers a new table.
func (c *Catalog) Create(name string, schema *rel.Schema) (*Table, error) {
	key := strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.tables[key]; exists {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	c.nextID++
	t := &Table{
		ID:     c.nextID,
		Name:   key,
		Schema: schema,
		Heap:   storage.NewHeap(c.nextID, c.Pool),
		Stats:  stats.NewTableStats(schema.Arity()),
	}
	c.tables[key] = t
	c.version.Add(1)
	return t, nil
}

// Restore registers a table under an explicit id during WAL recovery,
// advancing the id allocator past it so post-recovery CREATE TABLE never
// reuses a logged id. Replaying a create-table record the checkpoint
// already restored is a no-op (same name, same id); the same name bound to
// a different id means the log and checkpoint disagree and is an error.
func (c *Catalog) Restore(id int, name string, schema *rel.Schema) (*Table, error) {
	key := strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, exists := c.tables[key]; exists {
		if t.ID == id {
			return t, nil
		}
		return nil, fmt.Errorf("catalog: restore table %q: id %d conflicts with existing id %d", name, id, t.ID)
	}
	if id > c.nextID {
		c.nextID = id
	}
	t := &Table{
		ID:     id,
		Name:   key,
		Schema: schema,
		Heap:   storage.NewHeap(id, c.Pool),
		Stats:  stats.NewTableStats(schema.Arity()),
	}
	c.tables[key] = t
	c.version.Add(1)
	return t, nil
}

// ByID resolves a table by id (nil if absent). WAL commit records name
// tables by id; replay uses this to apply their redo operations.
func (c *Catalog) ByID(id int) *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, t := range c.tables {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// Get resolves a table by name.
func (c *Catalog) Get(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: table %q does not exist", name)
	}
	return t, nil
}

// Drop removes a table.
func (c *Catalog) Drop(name string) error {
	key := strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("catalog: table %q does not exist", name)
	}
	delete(c.tables, key)
	c.version.Add(1)
	return nil
}

// All returns all tables sorted by id (stable feature ordering for models).
func (c *Catalog) All() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].ID > out[j].ID; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
