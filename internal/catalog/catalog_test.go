package catalog

import (
	"testing"

	"neurdb/internal/index"
	"neurdb/internal/rel"
	"neurdb/internal/storage"
)

func schema() *rel.Schema {
	return rel.NewSchema(
		rel.Column{Name: "id", Typ: rel.TypeInt, Unique: true},
		rel.Column{Name: "v", Typ: rel.TypeFloat},
	)
}

func TestCreateGetDrop(t *testing.T) {
	c := New(storage.NewBufferPool(16))
	tbl, err := c.Create("T1", schema())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Name != "t1" || tbl.ID == 0 {
		t.Fatalf("table meta: %+v", tbl)
	}
	// Case-insensitive resolution.
	got, err := c.Get("t1")
	if err != nil || got != tbl {
		t.Fatal("get failed")
	}
	if _, err := c.Get("T1"); err != nil {
		t.Fatal("case-insensitive get failed")
	}
	// Duplicate create.
	if _, err := c.Create("t1", schema()); err == nil {
		t.Fatal("duplicate create should fail")
	}
	// Drop.
	if err := c.Drop("t1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("t1"); err == nil {
		t.Fatal("dropped table should be gone")
	}
	if err := c.Drop("t1"); err == nil {
		t.Fatal("double drop should fail")
	}
}

func TestAllSortedByID(t *testing.T) {
	c := New(nil)
	for _, name := range []string{"zed", "alpha", "mid"} {
		if _, err := c.Create(name, schema()); err != nil {
			t.Fatal(err)
		}
	}
	all := c.All()
	if len(all) != 3 {
		t.Fatalf("all = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatal("tables not sorted by id")
		}
	}
}

func TestIndexManagement(t *testing.T) {
	c := New(nil)
	tbl, _ := c.Create("t", schema())
	if tbl.IndexOn(0) != nil {
		t.Fatal("no index expected")
	}
	hash := &Index{Name: "h", Col: 0, Hash: index.NewHashIndex()}
	tbl.AddIndex(hash)
	if got := tbl.IndexOn(0); got != hash {
		t.Fatal("hash index not found")
	}
	if hash.Ordered() {
		t.Fatal("hash index is not ordered")
	}
	// Ordered index on the same column takes precedence.
	bt := &Index{Name: "b", Col: 0, BT: index.NewBTree()}
	tbl.AddIndex(bt)
	if got := tbl.IndexOn(0); got != bt {
		t.Fatal("btree should win over hash")
	}
	if !bt.Ordered() {
		t.Fatal("btree must be ordered")
	}
	if len(tbl.Indexes()) != 2 {
		t.Fatal("index list wrong")
	}
	// Insert/lookup/delete through the unified interface.
	id := storage.RowID{Page: 1, Slot: 2}
	for _, ix := range tbl.Indexes() {
		ix.Insert(rel.Int(5), id)
		if got := ix.Lookup(rel.Int(5)); len(got) != 1 || got[0] != id {
			t.Fatalf("lookup through %s failed", ix.Name)
		}
		ix.Delete(rel.Int(5), id)
		if got := ix.Lookup(rel.Int(5)); len(got) != 0 {
			t.Fatalf("delete through %s failed", ix.Name)
		}
	}
}
