package cc

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Action is a per-operation concurrency-control decision (paper Fig. 4).
type Action uint8

// The action space. For reads, ActOptimistic is a versioned read validated
// at commit; for writes it defers the write lock to commit time (OCC).
// ActLockWait takes the latch with bounded waiting (2PL-flavoured),
// ActLockNoWait aborts immediately on conflict, and ActAbortNow gives up on
// the whole transaction (doomed-transaction early exit).
const (
	ActOptimistic Action = iota
	ActLockWait
	ActLockNoWait
	ActAbortNow
	NumActions
)

// Op is one operation of a transaction: a read or a delta-write on a key.
type Op struct {
	Key   int
	Write bool
	Delta int64
}

// Txn describes a transaction: its type id (workload-defined) and ops.
type Txn struct {
	Type int
	Ops  []Op
}

// Features is the contention-state encoding fed to decision policies: the
// paper's mix of conflict information (record contention, lock state,
// waiters) and contextual information (operation position, transaction
// length, retry count). FeatureDim must match learned-model weights.
type Features struct {
	IsWrite    bool
	OpIdx      int
	TxnLen     int
	TxnType    int
	Retries    int
	Contention float64
	LockState  float64
	Waiters    float64
}

// FeatureDim is the encoded feature-vector width.
const FeatureDim = 8

// Encode writes the fast low-dimensional encoding into dst (len FeatureDim).
func (f *Features) Encode(dst []float64) {
	dst[0] = 1
	if f.IsWrite {
		dst[1] = 1
	} else {
		dst[1] = 0
	}
	dst[2] = float64(f.OpIdx) / float64(max(f.TxnLen, 1))
	dst[3] = float64(f.TxnLen) / 16
	dst[4] = f.Contention
	dst[5] = f.LockState
	dst[6] = f.Waiters / 4
	if dst[6] > 1 {
		dst[6] = 1
	}
	dst[7] = float64(f.Retries) / 3
	if dst[7] > 1 {
		dst[7] = 1
	}
}

// Policy chooses actions per operation.
type Policy interface {
	Name() string
	Choose(f *Features) Action
	// NoteOutcome feeds the transaction outcome back (reward signal);
	// static policies ignore it.
	NoteOutcome(committed bool, dur time.Duration)
}

// Engine executes transactions against a store under a policy.
type Engine struct {
	store  *Store
	policy atomic.Pointer[policyBox]

	commits atomic.Uint64
	aborts  atomic.Uint64
	// latchTimeouts counts bounded-spin waits that expired (ExclusiveWait /
	// SharedWait / UpgradeWait exhausting their spin budget). A timeout is
	// the engine's deadlock breaker, so a rising rate is the early-warning
	// signal of latch-ordering pathologies; callers surface it as the
	// cc.latch_timeouts monitor series.
	latchTimeouts atomic.Uint64
}

type policyBox struct{ p Policy }

// NewEngine creates an engine.
func NewEngine(store *Store, p Policy) *Engine {
	e := &Engine{store: store}
	e.SetPolicy(p)
	return e
}

// SetPolicy swaps the active policy (used by the two-phase adapter while
// the workload keeps running).
func (e *Engine) SetPolicy(p Policy) { e.policy.Store(&policyBox{p: p}) }

// Policy returns the active policy.
func (e *Engine) Policy() Policy { return e.policy.Load().p }

// Stats returns cumulative commit/abort counts.
func (e *Engine) Stats() (commits, aborts uint64) {
	return e.commits.Load(), e.aborts.Load()
}

// LatchTimeouts returns how many bounded latch waits have timed out.
func (e *Engine) LatchTimeouts() uint64 { return e.latchTimeouts.Load() }

// ResetStats zeroes the counters (between measurement intervals).
func (e *Engine) ResetStats() {
	e.commits.Store(0)
	e.aborts.Store(0)
	e.latchTimeouts.Store(0)
}

const lockSpins = 4096

// txnCtx is per-worker scratch to keep the hot path allocation-free.
type txnCtx struct {
	readRecs   []*Record // optimistic read set
	readVers   []uint64
	sharedRecs []*Record // shared-latched reads
	exclRecs   []*Record // exclusively latched (early write locks)
	exclDeltas []int64   // pending deltas for early-locked writes
	deferred   []Op      // writes deferred to commit
	deferRecs  []*Record
	readVals   []int64
}

func newTxnCtx() *txnCtx { return &txnCtx{} }

func (c *txnCtx) reset() {
	c.readRecs = c.readRecs[:0]
	c.readVers = c.readVers[:0]
	c.sharedRecs = c.sharedRecs[:0]
	c.exclRecs = c.exclRecs[:0]
	c.exclDeltas = c.exclDeltas[:0]
	c.deferred = c.deferred[:0]
	c.deferRecs = c.deferRecs[:0]
	c.readVals = c.readVals[:0]
}

// holdsExcl returns the index of rec in the exclusive set, or -1.
func (c *txnCtx) holdsExcl(rec *Record) int {
	for i, r := range c.exclRecs {
		if r == rec {
			return i
		}
	}
	return -1
}

// holdsShared returns the index of rec in the shared set, or -1.
func (c *txnCtx) holdsShared(rec *Record) int {
	for i, r := range c.sharedRecs {
		if r == rec {
			return i
		}
	}
	return -1
}

func (c *txnCtx) dropShared(i int) {
	c.sharedRecs = append(c.sharedRecs[:i], c.sharedRecs[i+1:]...)
}

func (c *txnCtx) releaseAll() {
	for _, r := range c.sharedRecs {
		r.ReleaseShared()
	}
	for _, r := range c.exclRecs {
		r.ReleaseExclusive()
	}
}

// TryTxn executes one attempt of a transaction. It returns committed, and
// terminal=true when the policy decided the transaction is doomed
// (ActAbortNow) — the caller must stop retrying (the paper's "immediately
// abort to avoid unnecessary costs" semantics).
func (e *Engine) TryTxn(ctx *txnCtx, txn *Txn, retries int) (committed, terminal bool) {
	ctx.reset()
	pol := e.Policy()
	var feats Features
	feats.TxnLen = len(txn.Ops)
	feats.TxnType = txn.Type
	feats.Retries = retries

	for i := range txn.Ops {
		op := &txn.Ops[i]
		rec := e.store.Record(op.Key)
		feats.IsWrite = op.Write
		feats.OpIdx = i
		feats.Contention = rec.Contention()
		feats.LockState = rec.LockState()
		feats.Waiters = float64(rec.Waiters())
		action := pol.Choose(&feats)

		if action == ActAbortNow {
			ctx.releaseAll()
			e.aborts.Add(1)
			return false, true
		}
		if op.Write {
			switch action {
			case ActOptimistic:
				// Defer the write to commit time (OCC).
				ctx.deferred = append(ctx.deferred, *op)
				ctx.deferRecs = append(ctx.deferRecs, rec)
			case ActLockWait, ActLockNoWait:
				// Already exclusively held by us: accumulate the delta.
				if i := ctx.holdsExcl(rec); i >= 0 {
					ctx.exclDeltas[i] += op.Delta
					continue
				}
				var ok bool
				if i := ctx.holdsShared(rec); i >= 0 {
					// Lock upgrade: wait for concurrent readers to drain.
					if action == ActLockWait {
						if ok = rec.UpgradeWait(lockSpins); !ok {
							e.latchTimeouts.Add(1)
						}
					} else {
						ok = rec.UpgradeWait(1)
					}
					if ok {
						ctx.dropShared(i)
					}
				} else if action == ActLockWait {
					if ok = rec.ExclusiveWait(lockSpins); !ok {
						e.latchTimeouts.Add(1)
					}
				} else {
					ok = rec.TryExclusive()
				}
				if !ok {
					rec.NoteConflict()
					ctx.releaseAll()
					e.aborts.Add(1)
					return false, false
				}
				rec.DecayConflict()
				// Hold the latch; the delta installs at commit, after
				// validation, so aborts need no rollback.
				ctx.exclRecs = append(ctx.exclRecs, rec)
				ctx.exclDeltas = append(ctx.exclDeltas, op.Delta)
			}
		} else {
			// Reads under our own latch are stable.
			if ctx.holdsExcl(rec) >= 0 || ctx.holdsShared(rec) >= 0 {
				ctx.readVals = append(ctx.readVals, rec.ReadLocked())
				continue
			}
			switch action {
			case ActOptimistic:
				val, ver, ok := rec.ReadOptimistic()
				if !ok {
					rec.NoteConflict()
					ctx.releaseAll()
					e.aborts.Add(1)
					return false, false
				}
				rec.DecayConflict()
				ctx.readRecs = append(ctx.readRecs, rec)
				ctx.readVers = append(ctx.readVers, ver)
				ctx.readVals = append(ctx.readVals, val)
			case ActLockWait, ActLockNoWait:
				var ok bool
				if action == ActLockWait {
					if ok = rec.SharedWait(lockSpins); !ok {
						e.latchTimeouts.Add(1)
					}
				} else {
					ok = rec.TryShared()
				}
				if !ok {
					rec.NoteConflict()
					ctx.releaseAll()
					e.aborts.Add(1)
					return false, false
				}
				rec.DecayConflict()
				ctx.sharedRecs = append(ctx.sharedRecs, rec)
				ctx.readVals = append(ctx.readVals, rec.ReadLocked())
			}
		}
	}

	// Commit: latch deferred writes in key order (deadlock freedom), then
	// validate optimistic reads, then install.
	if len(ctx.deferred) > 0 {
		order := make([]int, len(ctx.deferred))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return ctx.deferred[order[a]].Key < ctx.deferred[order[b]].Key
		})
		locked := make([]*Record, 0, len(order))
		okAll := true
		var prev *Record
		for _, idx := range order {
			rec := ctx.deferRecs[idx]
			if rec == prev {
				continue // duplicate key already latched this round
			}
			prev = rec
			if ctx.holdsExcl(rec) >= 0 {
				continue // already exclusively held from an early lock
			}
			if si := ctx.holdsShared(rec); si >= 0 {
				// Upgrade our read latch for the deferred write.
				if !rec.UpgradeWait(lockSpins / 4) {
					e.latchTimeouts.Add(1)
					rec.NoteConflict()
					okAll = false
					break
				}
				ctx.dropShared(si)
				ctx.exclRecs = append(ctx.exclRecs, rec)
				ctx.exclDeltas = append(ctx.exclDeltas, 0)
				continue
			}
			if !rec.ExclusiveWait(lockSpins / 4) {
				e.latchTimeouts.Add(1)
				rec.NoteConflict()
				okAll = false
				break
			}
			locked = append(locked, rec)
		}
		if !okAll {
			for _, r := range locked {
				r.ReleaseExclusive()
			}
			ctx.releaseAll()
			e.aborts.Add(1)
			return false, false
		}
		// Validate optimistic reads.
		for i, rec := range ctx.readRecs {
			if rec.Version() != ctx.readVers[i] {
				rec.NoteConflict()
				for _, r := range locked {
					r.ReleaseExclusive()
				}
				ctx.releaseAll()
				e.aborts.Add(1)
				return false, false
			}
		}
		for _, idx := range order {
			ctx.deferRecs[idx].Install(ctx.deferred[idx].Delta)
		}
		for i, rec := range ctx.exclRecs {
			rec.Install(ctx.exclDeltas[i])
		}
		for _, r := range locked {
			r.ReleaseExclusive()
		}
	} else {
		// Validate optimistic reads.
		for i, rec := range ctx.readRecs {
			if rec.Version() != ctx.readVers[i] {
				rec.NoteConflict()
				ctx.releaseAll()
				e.aborts.Add(1)
				return false, false
			}
		}
		for i, rec := range ctx.exclRecs {
			rec.Install(ctx.exclDeltas[i])
		}
	}
	ctx.releaseAll()
	e.commits.Add(1)
	return true, false
}

// RunTxn executes a transaction with retries until commit, maxRetries, or a
// terminal early-abort decision by the policy.
func (e *Engine) RunTxn(ctx *txnCtx, txn *Txn, maxRetries int) bool {
	start := time.Now()
	for attempt := 0; ; attempt++ {
		committed, terminal := e.TryTxn(ctx, txn, attempt)
		if committed {
			e.Policy().NoteOutcome(true, time.Since(start))
			return true
		}
		if terminal || attempt >= maxRetries {
			e.Policy().NoteOutcome(false, time.Since(start))
			return false
		}
		// Bounded randomized backoff.
		for i := 0; i < (attempt+1)*64; i++ {
			_ = i
		}
	}
}

// Generator produces transactions for worker threads.
type Generator interface {
	// Generate fills the next transaction for a worker-local RNG.
	Generate(r *rand.Rand, txn *Txn)
}

// Result summarizes a workload run.
type Result struct {
	Commits    uint64
	Aborts     uint64
	Duration   time.Duration
	Throughput float64 // commits/sec
	AbortRate  float64
}

// Run executes the generator on `threads` workers for the given duration
// and reports throughput.
func (e *Engine) Run(gen Generator, threads int, duration time.Duration) Result {
	e.ResetStats()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			ctx := newTxnCtx()
			var txn Txn
			for {
				select {
				case <-stop:
					return
				default:
				}
				gen.Generate(r, &txn)
				e.RunTxn(ctx, &txn, 8)
			}
		}(int64(w) + 1)
	}
	start := time.Now()
	time.Sleep(duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	commits, aborts := e.Stats()
	res := Result{
		Commits:  commits,
		Aborts:   aborts,
		Duration: elapsed,
	}
	if elapsed > 0 {
		res.Throughput = float64(commits) / elapsed.Seconds()
	}
	if commits+aborts > 0 {
		res.AbortRate = float64(aborts) / float64(commits+aborts)
	}
	return res
}

// RunFixed executes exactly n transactions per worker (deterministic tests).
func (e *Engine) RunFixed(gen Generator, threads, perWorker int) Result {
	e.ResetStats()
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			ctx := newTxnCtx()
			var txn Txn
			for i := 0; i < perWorker; i++ {
				gen.Generate(r, &txn)
				e.RunTxn(ctx, &txn, 8)
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	elapsed := time.Since(start)
	commits, aborts := e.Stats()
	res := Result{Commits: commits, Aborts: aborts, Duration: elapsed}
	if elapsed > 0 {
		res.Throughput = float64(commits) / elapsed.Seconds()
	}
	if commits+aborts > 0 {
		res.AbortRate = float64(aborts) / float64(commits+aborts)
	}
	return res
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
