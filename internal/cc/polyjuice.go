package cc

import (
	"math/rand"
	"sync"
	"time"
)

// PolyjuicePolicy is the baseline from Wang et al. (OSDI'21): a policy
// table mapping (transaction type, operation index) to an action, trained
// offline by an evolutionary algorithm. It captures Polyjuice's key design
// — per-access learned actions indexed by static transaction structure —
// and therefore also its key weakness under drift: the table has no live
// contention input, so a workload shift requires re-running generations of
// full-interval evaluations before behaviour improves (Fig. 7b).
type PolyjuicePolicy struct {
	mu    sync.RWMutex
	table map[polyKey]Action
	def   Action
}

type polyKey struct {
	txnType int
	opIdx   int
	isWrite bool
}

// NewPolyjuice creates a policy table with OCC-ish defaults.
func NewPolyjuice() *PolyjuicePolicy {
	return &PolyjuicePolicy{table: make(map[polyKey]Action), def: ActOptimistic}
}

// Name implements Policy.
func (p *PolyjuicePolicy) Name() string { return "polyjuice" }

// Choose implements Policy: a pure table lookup — no contention features.
func (p *PolyjuicePolicy) Choose(f *Features) Action {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if a, ok := p.table[polyKey{f.TxnType, f.OpIdx, f.IsWrite}]; ok {
		return a
	}
	return p.def
}

// NoteOutcome implements Policy (the EA learns between intervals, not per
// transaction).
func (p *PolyjuicePolicy) NoteOutcome(bool, time.Duration) {}

// Clone deep-copies the table.
func (p *PolyjuicePolicy) Clone() *PolyjuicePolicy {
	p.mu.RLock()
	defer p.mu.RUnlock()
	c := NewPolyjuice()
	c.def = p.def
	for k, v := range p.table {
		c.table[k] = v
	}
	return c
}

// mutate randomly flips actions for a few keys.
func (p *PolyjuicePolicy) mutate(r *rand.Rand, txnTypes, maxOps, flips int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := 0; i < flips; i++ {
		k := polyKey{
			txnType: r.Intn(txnTypes),
			opIdx:   r.Intn(maxOps),
			isWrite: r.Intn(2) == 0,
		}
		// Abort-now is rarely useful in a static table; bias against it the
		// way Polyjuice's action space does (it has no early-abort).
		p.table[k] = Action(r.Intn(int(ActAbortNow)))
	}
}

// PolyjuiceTrainer runs the evolutionary algorithm: evaluate a population of
// policy tables over live intervals, keep the elite, mutate.
type PolyjuiceTrainer struct {
	Population int
	Interval   time.Duration
	TxnTypes   int
	MaxOps     int
	rng        *rand.Rand
}

// NewPolyjuiceTrainer creates a trainer.
func NewPolyjuiceTrainer(txnTypes, maxOps int, seed int64) *PolyjuiceTrainer {
	return &PolyjuiceTrainer{
		Population: 6,
		Interval:   30 * time.Millisecond,
		TxnTypes:   txnTypes,
		MaxOps:     maxOps,
		rng:        rand.New(rand.NewSource(seed)),
	}
}

// EvolveOnce runs one EA generation against live traffic and installs the
// best policy. It returns the winner and its measured throughput.
func (t *PolyjuiceTrainer) EvolveOnce(e *Engine, gen Generator, threads int, base *PolyjuicePolicy) (*PolyjuicePolicy, float64) {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			ctx := newTxnCtx()
			var txn Txn
			for {
				select {
				case <-stop:
					return
				default:
				}
				gen.Generate(r, &txn)
				e.RunTxn(ctx, &txn, 8)
			}
		}(int64(w) + 17)
	}
	measure := func(p Policy) float64 {
		e.SetPolicy(p)
		e.ResetStats()
		time.Sleep(t.Interval)
		commits, _ := e.Stats()
		return float64(commits) / t.Interval.Seconds()
	}
	best := base
	bestScore := measure(base)
	for i := 0; i < t.Population-1; i++ {
		cand := best.Clone()
		cand.mutate(t.rng, t.TxnTypes, t.MaxOps, 1+t.rng.Intn(3))
		score := measure(cand)
		if score > bestScore {
			best, bestScore = cand, score
		}
	}
	e.SetPolicy(best)
	close(stop)
	wg.Wait()
	return best, bestScore
}
