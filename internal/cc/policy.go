package cc

import "time"

// StaticPolicy applies a fixed action mapping — the classical algorithms.
type StaticPolicy struct {
	name        string
	readAction  Action
	writeAction Action
}

// Name implements Policy.
func (p *StaticPolicy) Name() string { return p.name }

// Choose implements Policy.
func (p *StaticPolicy) Choose(f *Features) Action {
	if f.IsWrite {
		return p.writeAction
	}
	return p.readAction
}

// NoteOutcome implements Policy (no-op).
func (p *StaticPolicy) NoteOutcome(bool, time.Duration) {}

// NewSSI builds the snapshot-style baseline standing in for PostgreSQL's
// serializable snapshot isolation in Fig. 7(a): reads run against the
// snapshot without locks (validated at commit — the rw-antidependency
// check's effect), writes take their locks eagerly with waiting
// (first-updater-wins blocks the second updater).
func NewSSI() Policy {
	return &StaticPolicy{name: "ssi", readAction: ActOptimistic, writeAction: ActLockWait}
}

// NewTwoPL is strict two-phase locking: shared read locks, exclusive write
// locks, all held to commit, bounded-wait deadlock breaking.
func NewTwoPL() Policy {
	return &StaticPolicy{name: "2pl", readAction: ActLockWait, writeAction: ActLockWait}
}

// NewOCC is Silo-style optimistic concurrency control: versioned reads,
// write locks deferred to commit, validation before install.
func NewOCC() Policy {
	return &StaticPolicy{name: "occ", readAction: ActOptimistic, writeAction: ActOptimistic}
}

// NewNoWait is 2PL with no-wait conflict handling (abort instead of block).
func NewNoWait() Policy {
	return &StaticPolicy{name: "nowait", readAction: ActLockNoWait, writeAction: ActLockNoWait}
}
