// Package cc is a high-performance concurrency-control testbed: fixed
// record arrays, per-record latch words, versioned optimistic reads, and an
// execution engine whose per-operation behaviour is chosen by a pluggable
// policy. The paper evaluates NeurDB(CC) inside the Polyjuice codebase
// rather than inside PostgreSQL for the same reason this package exists:
// micro-benchmarking CC algorithms needs a lean substrate. Policies include
// an SSI-flavoured snapshot baseline ("PostgreSQL" in Fig. 7a), classic 2PL
// and OCC references, the Polyjuice-style evolved policy table, and the
// paper's learned contention-aware decision model with two-phase adaptation.
package cc

import (
	"math"
	"runtime"
	"sync/atomic"
)

// Record is one row of the testbed store. The state word encodes the latch:
// -1 = exclusively locked, 0 = free, n>0 = n shared holders.
type Record struct {
	state    atomic.Int32
	waiters  atomic.Int32
	version  atomic.Uint64
	value    atomic.Int64
	conflict atomic.Uint64 // EWMA of conflict events, stored as float64 bits
}

// Store is a fixed array of records.
type Store struct {
	recs []Record
}

// NewStore allocates n records with zero values.
func NewStore(n int) *Store {
	return &Store{recs: make([]Record, n)}
}

// Size returns the number of records.
func (s *Store) Size() int { return len(s.recs) }

// Record returns record i.
func (s *Store) Record(i int) *Record { return &s.recs[i] }

// Value returns the committed value of record i (racy read for reporting).
func (s *Store) Value(i int) int64 { return s.recs[i].value.Load() }

// Reset zeroes all records (between benchmark phases).
func (s *Store) Reset() {
	for i := range s.recs {
		r := &s.recs[i]
		r.state.Store(0)
		r.waiters.Store(0)
		r.version.Store(0)
		r.value.Store(0)
		r.conflict.Store(0)
	}
}

// TryExclusive attempts to latch the record exclusively without waiting.
func (r *Record) TryExclusive() bool {
	return r.state.CompareAndSwap(0, -1)
}

// ExclusiveWait spins (bounded) for the exclusive latch; false on timeout.
// The bound doubles as timeout-based deadlock breaking.
func (r *Record) ExclusiveWait(maxSpins int) bool {
	r.waiters.Add(1)
	defer r.waiters.Add(-1)
	for i := 0; i < maxSpins; i++ {
		if r.TryExclusive() {
			return true
		}
		if i%32 == 31 {
			runtime.Gosched()
		}
	}
	return false
}

// TryShared attempts to take a shared latch without waiting.
func (r *Record) TryShared() bool {
	for {
		s := r.state.Load()
		if s < 0 {
			return false
		}
		if r.state.CompareAndSwap(s, s+1) {
			return true
		}
	}
}

// SharedWait spins (bounded) for a shared latch.
func (r *Record) SharedWait(maxSpins int) bool {
	r.waiters.Add(1)
	defer r.waiters.Add(-1)
	for i := 0; i < maxSpins; i++ {
		if r.TryShared() {
			return true
		}
		if i%32 == 31 {
			runtime.Gosched()
		}
	}
	return false
}

// ReleaseExclusive drops the exclusive latch.
func (r *Record) ReleaseExclusive() { r.state.Store(0) }

// ReleaseShared drops one shared latch.
func (r *Record) ReleaseShared() { r.state.Add(-1) }

// ReadOptimistic returns (value, version, ok); ok is false when the record
// was exclusively latched (dirty) during the read.
func (r *Record) ReadOptimistic() (int64, uint64, bool) {
	v1 := r.version.Load()
	if r.state.Load() < 0 {
		return 0, 0, false
	}
	val := r.value.Load()
	v2 := r.version.Load()
	if v1 != v2 {
		return 0, 0, false
	}
	return val, v1, true
}

// ReadLocked returns the value; caller must hold a latch.
func (r *Record) ReadLocked() int64 { return r.value.Load() }

// Install applies a delta and bumps the version; caller must hold the
// exclusive latch.
func (r *Record) Install(delta int64) {
	r.value.Add(delta)
	r.version.Add(1)
}

// Version returns the committed version counter.
func (r *Record) Version() uint64 { return r.version.Load() }

// NoteConflict bumps the record's conflict EWMA toward 1.
func (r *Record) NoteConflict() {
	for {
		old := r.conflict.Load()
		f := math.Float64frombits(old)
		nf := f*0.9 + 0.1
		if r.conflict.CompareAndSwap(old, math.Float64bits(nf)) {
			return
		}
	}
}

// DecayConflict relaxes the EWMA toward 0 (called on uncontended access).
func (r *Record) DecayConflict() {
	old := r.conflict.Load()
	f := math.Float64frombits(old)
	if f < 1e-4 {
		return
	}
	r.conflict.CompareAndSwap(old, math.Float64bits(f*0.995))
}

// Contention returns the conflict EWMA in [0, 1].
func (r *Record) Contention() float64 {
	return math.Float64frombits(r.conflict.Load())
}

// Waiters returns the current waiter count.
func (r *Record) Waiters() int32 { return r.waiters.Load() }

// LockState returns a coarse signal: 1 exclusive, 0.5 shared, 0 free.
func (r *Record) LockState() float64 {
	s := r.state.Load()
	switch {
	case s < 0:
		return 1
	case s > 0:
		return 0.5
	default:
		return 0
	}
}

// UpgradeWait upgrades a shared latch held by the caller to exclusive,
// waiting (bounded) for other readers to drain. The caller must hold
// exactly one shared reference.
func (r *Record) UpgradeWait(maxSpins int) bool {
	for i := 0; i < maxSpins; i++ {
		if r.state.CompareAndSwap(1, -1) {
			return true
		}
		if i%32 == 31 {
			runtime.Gosched()
		}
	}
	return false
}
