package cc

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"neurdb/internal/bayesopt"
)

// Weights is the compressed linear decision model (the paper's "flattened
// layer"): score(a) = W[a]·encode(f) + B[a]. It is immutable once published
// so the per-operation inference path is lock-free.
type Weights struct {
	W [NumActions][FeatureDim]float64
	B [NumActions]float64
}

// LearnedPolicy is NeurDB(CC): a contention-state decision model whose
// inference is a 4×8 matrix-vector product — cheap enough to run on every
// operation of millisecond transactions without becoming the bottleneck
// (the paper's "model must not become a bottleneck" constraint; weights are
// read through an atomic snapshot, so the greedy path takes no locks).
type LearnedPolicy struct {
	weights atomic.Pointer[Weights]

	// exploring enables the refinement phase: softmax sampling + REINFORCE.
	exploring atomic.Bool

	mu          sync.Mutex // guards the exploration state below
	Temperature float64
	rng         *rand.Rand
	rewardEWMA  float64
	trace       []traceEntry
	traceCap    int
}

type traceEntry struct {
	feat   [FeatureDim]float64
	action Action
	probs  [NumActions]float64
}

// NewLearnedPolicy builds the model with pre-trained defaults: optimistic
// execution on cold records, no-wait latching for hot-record writes, and
// early abort for doomed retries. These priors play the role of the paper's
// pre-training on synthetic workloads; the two-phase adapter specializes
// them online.
func NewLearnedPolicy(seed int64) *LearnedPolicy {
	p := &LearnedPolicy{rng: rand.New(rand.NewSource(seed)), traceCap: 4096}
	w := &Weights{}
	// Feature layout: [bias, isWrite, opFrac, txnLen, contention, lockState,
	// waiters, retries].
	// The pre-trained prior encodes what the synthetic sweeps teach on this
	// substrate: fail-fast latching dominates for writes (no spin convoys,
	// no commit-time validation waste — aborts happen before work is
	// wasted); reads run optimistically on cold records and switch to
	// fail-fast shared latches on hot ones; transactions that keep
	// retrying against saturated records abort early. The adapter's bias
	// knobs re-weigh these regimes when the workload drifts.
	// Action 0 (optimistic): below the fail-fast row in the prior; the
	// adapter's bias knob promotes it on read-heavy drifted workloads.
	w.W[ActOptimistic] = [FeatureDim]float64{-1.5, -5.0, 0, 0, -1.2, 0, 0, 0}
	// Action 1 (lock-wait): disabled in the prior; spin-waiting collapses
	// under parallelism on small-core boxes.
	w.W[ActLockWait] = [FeatureDim]float64{-5.0, 0, 0, 0, 0, 0, 0, 0}
	// Action 2 (lock-nowait): the default regime — conflicts abort before
	// any work is wasted and latch holds never spin.
	w.W[ActLockNoWait] = [FeatureDim]float64{1.0, 0.2, 0, 0, 0, 0, 0, 0}
	// Action 3 (abort-now): strictly a last resort — it only outscores the
	// fail-fast row when contention, lock state, waiters AND the retry
	// count are all saturated (a genuinely doomed transaction). A lower
	// threshold would re-abort every retry and spiral.
	w.W[ActAbortNow] = [FeatureDim]float64{-4.4, 0.3, 0.4, 0, 1.2, 0.5, 0.5, 3.0}
	p.weights.Store(w)
	return p
}

// Name implements Policy.
func (p *LearnedPolicy) Name() string { return "neurdb-cc" }

// Snapshot returns the current weights.
func (p *LearnedPolicy) Snapshot() *Weights { return p.weights.Load() }

// SetWeights publishes new weights.
func (p *LearnedPolicy) SetWeights(w *Weights) { p.weights.Store(w) }

// StartExploring enables softmax exploration at the given temperature
// (refinement phase).
func (p *LearnedPolicy) StartExploring(temp float64) {
	p.mu.Lock()
	p.Temperature = temp
	p.trace = p.trace[:0]
	p.mu.Unlock()
	p.exploring.Store(true)
}

// StopExploring returns to greedy, lock-free inference.
func (p *LearnedPolicy) StopExploring() {
	p.exploring.Store(false)
	p.mu.Lock()
	p.Temperature = 0
	p.trace = p.trace[:0]
	p.mu.Unlock()
}

func scoreActions(w *Weights, feat *[FeatureDim]float64) [NumActions]float64 {
	var scores [NumActions]float64
	for a := 0; a < int(NumActions); a++ {
		s := w.B[a]
		for i, v := range feat {
			s += w.W[a][i] * v
		}
		scores[a] = s
	}
	return scores
}

// Choose implements Policy. The greedy path (production mode) is lock-free.
func (p *LearnedPolicy) Choose(f *Features) Action {
	var feat [FeatureDim]float64
	f.Encode(feat[:])
	w := p.weights.Load()
	scores := scoreActions(w, &feat)
	if !p.exploring.Load() {
		best := 0
		for a := 1; a < int(NumActions); a++ {
			if scores[a] > scores[best] {
				best = a
			}
		}
		return Action(best)
	}
	return p.chooseExploring(&feat, &scores)
}

// chooseExploring samples from the softmax and records the decision trace.
func (p *LearnedPolicy) chooseExploring(feat *[FeatureDim]float64, scores *[NumActions]float64) Action {
	p.mu.Lock()
	defer p.mu.Unlock()
	temp := p.Temperature
	if temp <= 0 {
		temp = 0.3
	}
	var probs [NumActions]float64
	maxS := scores[0]
	for _, s := range scores[1:] {
		if s > maxS {
			maxS = s
		}
	}
	var sum float64
	for a := range probs {
		probs[a] = math.Exp((scores[a] - maxS) / temp)
		sum += probs[a]
	}
	for a := range probs {
		probs[a] /= sum
	}
	u := p.rng.Float64()
	chosen := Action(0)
	acc := 0.0
	for a := range probs {
		acc += probs[a]
		if u <= acc {
			chosen = Action(a)
			break
		}
		chosen = Action(a)
	}
	if len(p.trace) < p.traceCap {
		p.trace = append(p.trace, traceEntry{feat: *feat, action: chosen, probs: probs})
	}
	return chosen
}

// NoteOutcome implements Policy: during refinement it applies a REINFORCE
// update over the recorded decision trace with reward = +1/latency for
// commits, -penalty for give-ups. In greedy mode it is a no-op with no
// synchronization.
func (p *LearnedPolicy) NoteOutcome(committed bool, dur time.Duration) {
	if !p.exploring.Load() {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.trace) == 0 {
		return
	}
	var reward float64
	if committed {
		us := dur.Seconds() * 1e6
		reward = 1.0 / (1.0 + us/100)
	} else {
		reward = -0.5
	}
	p.rewardEWMA = 0.99*p.rewardEWMA + 0.01*reward
	adv := reward - p.rewardEWMA
	const lr = 0.02
	old := p.weights.Load()
	w := *old // copy
	for _, e := range p.trace {
		for a := 0; a < int(NumActions); a++ {
			indicator := 0.0
			if Action(a) == e.action {
				indicator = 1
			}
			g := adv * (indicator - e.probs[a])
			w.B[a] += lr * g
			for i := range e.feat {
				w.W[a][i] += lr * g * e.feat[i]
			}
		}
	}
	p.weights.Store(&w)
	p.trace = p.trace[:0]
}

// Clone copies the model (weights only).
func (p *LearnedPolicy) Clone(seed int64) *LearnedPolicy {
	c := &LearnedPolicy{rng: rand.New(rand.NewSource(seed)), traceCap: p.traceCap}
	w := *p.weights.Load()
	c.weights.Store(&w)
	return c
}

// applyMeta perturbs a base model with the low-dimensional meta-parameters
// explored by Bayesian optimization in the filtering phase: per-action bias
// shifts and a contention-sensitivity multiplier.
func applyMeta(base *LearnedPolicy, meta []float64, seed int64) *LearnedPolicy {
	c := base.Clone(seed)
	w := *c.weights.Load()
	for a := 0; a < int(NumActions); a++ {
		w.B[a] += meta[a]
	}
	scale := 1 + meta[4]
	for a := 0; a < int(NumActions); a++ {
		w.W[a][4] *= scale // contention feature sensitivity
		w.W[a][5] *= scale // lock-state sensitivity
	}
	c.weights.Store(&w)
	return c
}

// MetaParams returns the filtering-phase search space.
func MetaParams() []bayesopt.Param {
	return []bayesopt.Param{
		{Name: "b_opt", Lo: -1, Hi: 1},
		{Name: "b_wait", Lo: -1, Hi: 1},
		{Name: "b_nowait", Lo: -1, Hi: 1},
		{Name: "b_abort", Lo: -1, Hi: 1},
		{Name: "contention_scale", Lo: -0.5, Hi: 1.0},
	}
}

// Adapter implements the paper's two-phase adaptation (Fig. 4): a
// *filtering* phase generates candidate models via Bayesian optimization
// and evaluates each over a short live timeframe, keeping the best; a
// *refinement* phase then runs reward-based (REINFORCE) updates on the
// winner. The filter-and-refine principle applied to model search.
type Adapter struct {
	Candidates int
	EvalWindow time.Duration
	RefineTime time.Duration
	RefineTemp float64
	seed       int64
}

// NewAdapter returns an adapter with benchmark-friendly defaults.
func NewAdapter(seed int64) *Adapter {
	return &Adapter{
		Candidates: 6,
		EvalWindow: 30 * time.Millisecond,
		RefineTime: 120 * time.Millisecond,
		RefineTemp: 0.4,
		seed:       seed,
	}
}

// Adapt runs two-phase adaptation against live traffic: the engine keeps
// executing gen on `threads` workers while candidate policies are swapped
// in. It returns the adapted policy (already installed in the engine).
func (ad *Adapter) Adapt(e *Engine, gen Generator, threads int, base *LearnedPolicy) *LearnedPolicy {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			ctx := newTxnCtx()
			var txn Txn
			for {
				select {
				case <-stop:
					return
				default:
				}
				gen.Generate(r, &txn)
				e.RunTxn(ctx, &txn, 8)
			}
		}(ad.seed + int64(w))
	}

	measure := func(p *LearnedPolicy) float64 {
		e.SetPolicy(p)
		e.ResetStats()
		time.Sleep(ad.EvalWindow)
		commits, _ := e.Stats()
		return float64(commits) / ad.EvalWindow.Seconds()
	}

	// Phase 1 — filtering: Bayesian-optimization candidate sweep.
	bo := bayesopt.New(MetaParams(), ad.seed)
	bestPolicy := base
	bestScore := measure(base)
	bo.Observe(make([]float64, len(MetaParams())), bestScore)
	for c := 0; c < ad.Candidates; c++ {
		meta := bo.Suggest()
		cand := applyMeta(base, meta, ad.seed+int64(c)+100)
		score := measure(cand)
		bo.Observe(meta, score)
		if score > bestScore {
			bestScore = score
			bestPolicy = cand
		}
	}

	// Phase 2 — refinement: reward-based updates with softmax exploration.
	refined := bestPolicy.Clone(ad.seed + 999)
	refined.StartExploring(ad.RefineTemp)
	e.SetPolicy(refined)
	time.Sleep(ad.RefineTime)
	refined.StopExploring()

	close(stop)
	wg.Wait()
	return refined
}
