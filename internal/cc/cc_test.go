package cc

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// transferGen produces zipfian-ish transfer transactions: two distinct keys,
// read both, then -d / +d writes: total value is conserved iff CC is sound.
type transferGen struct {
	keys int
	hot  int // first `hot` keys absorb half the accesses
}

func (g *transferGen) Generate(r *rand.Rand, txn *Txn) {
	pick := func() int {
		if g.hot > 0 && r.Intn(2) == 0 {
			return r.Intn(g.hot)
		}
		return r.Intn(g.keys)
	}
	a := pick()
	b := pick()
	for b == a {
		b = pick()
	}
	txn.Type = 0
	txn.Ops = txn.Ops[:0]
	txn.Ops = append(txn.Ops,
		Op{Key: a, Write: false},
		Op{Key: b, Write: false},
		Op{Key: a, Write: true, Delta: -1},
		Op{Key: b, Write: true, Delta: +1},
	)
}

func policies(seed int64) []Policy {
	return []Policy{NewSSI(), NewTwoPL(), NewOCC(), NewNoWait(), NewLearnedPolicy(seed), NewPolyjuice()}
}

func TestAllPoliciesConserveTotal(t *testing.T) {
	for _, pol := range policies(1) {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			store := NewStore(64)
			e := NewEngine(store, pol)
			gen := &transferGen{keys: 64, hot: 4}
			res := e.RunFixed(gen, 8, 300)
			if res.Commits == 0 {
				t.Fatal("no commits")
			}
			var total int64
			for i := 0; i < store.Size(); i++ {
				total += store.Value(i)
			}
			if total != 0 {
				t.Fatalf("policy %s: total = %d, want 0 (commits=%d aborts=%d)",
					pol.Name(), total, res.Commits, res.Aborts)
			}
		})
	}
}

// pairGen: writers bump keys 2i and 2i+1 together; readers read both and
// must observe equal values under serializable execution.
type pairGen struct {
	pairs int
}

func (g *pairGen) Generate(r *rand.Rand, txn *Txn) {
	p := r.Intn(g.pairs)
	txn.Type = 1
	txn.Ops = txn.Ops[:0]
	txn.Ops = append(txn.Ops,
		Op{Key: 2 * p, Write: true, Delta: 1},
		Op{Key: 2*p + 1, Write: true, Delta: 1},
	)
}

func TestSerializablePairReads(t *testing.T) {
	for _, pol := range policies(2) {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			store := NewStore(16)
			e := NewEngine(store, pol)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			// Writers.
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					r := rand.New(rand.NewSource(seed))
					ctx := newTxnCtx()
					var txn Txn
					gen := &pairGen{pairs: 8}
					for {
						select {
						case <-stop:
							return
						default:
						}
						gen.Generate(r, &txn)
						e.RunTxn(ctx, &txn, 8)
					}
				}(int64(w) + 1)
			}
			// Readers: verify pair equality on every committed read txn.
			violations := 0
			var vmu sync.Mutex
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					r := rand.New(rand.NewSource(seed))
					ctx := newTxnCtx()
					for {
						select {
						case <-stop:
							return
						default:
						}
						p := r.Intn(8)
						txn := Txn{Type: 2, Ops: []Op{
							{Key: 2 * p, Write: false},
							{Key: 2*p + 1, Write: false},
						}}
						if ok, _ := e.TryTxn(ctx, &txn, 0); ok {
							if len(ctx.readVals) == 2 && ctx.readVals[0] != ctx.readVals[1] {
								vmu.Lock()
								violations++
								vmu.Unlock()
							}
						}
					}
				}(int64(w) + 100)
			}
			time.Sleep(150 * time.Millisecond)
			close(stop)
			wg.Wait()
			if violations > 0 {
				t.Fatalf("policy %s: %d serializability violations", pol.Name(), violations)
			}
		})
	}
}

func TestStaticPolicyActions(t *testing.T) {
	read := &Features{IsWrite: false, TxnLen: 4}
	write := &Features{IsWrite: true, TxnLen: 4}
	if NewSSI().Choose(read) != ActOptimistic || NewSSI().Choose(write) != ActLockWait {
		t.Fatal("ssi actions wrong")
	}
	if NewTwoPL().Choose(read) != ActLockWait || NewTwoPL().Choose(write) != ActLockWait {
		t.Fatal("2pl actions wrong")
	}
	if NewOCC().Choose(write) != ActOptimistic {
		t.Fatal("occ actions wrong")
	}
	if NewNoWait().Choose(read) != ActLockNoWait {
		t.Fatal("nowait actions wrong")
	}
}

func TestLearnedPolicyContentionSensitivity(t *testing.T) {
	p := NewLearnedPolicy(3)
	coldRead := &Features{IsWrite: false, OpIdx: 0, TxnLen: 10}
	coldWrite := &Features{IsWrite: true, OpIdx: 0, TxnLen: 10}
	hotRead := &Features{IsWrite: false, OpIdx: 1, TxnLen: 10, Contention: 0.95, LockState: 1, Waiters: 4}
	doomed := &Features{IsWrite: true, OpIdx: 8, TxnLen: 10, Contention: 1, LockState: 1, Waiters: 8, Retries: 3}
	if a := p.Choose(coldRead); a != ActLockNoWait {
		t.Fatalf("cold read should take a fail-fast shared latch, got %d", a)
	}
	if a := p.Choose(coldWrite); a != ActLockNoWait {
		t.Fatalf("write should take a fail-fast latch, got %d", a)
	}
	if a := p.Choose(hotRead); a != ActLockNoWait {
		t.Fatalf("hot read should take a fail-fast shared latch, got %d", a)
	}
	if a := p.Choose(doomed); a != ActAbortNow {
		t.Fatalf("doomed retried write should abort early, got %d", a)
	}
}

func TestLearnedPolicyRefinementUpdatesWeights(t *testing.T) {
	p := NewLearnedPolicy(4)
	p.StartExploring(0.5)
	before := *p.Snapshot()
	f := &Features{IsWrite: true, OpIdx: 1, TxnLen: 4, Contention: 0.5}
	for i := 0; i < 50; i++ {
		p.Choose(f)
		p.NoteOutcome(i%2 == 0, time.Millisecond)
	}
	after := *p.Snapshot()
	if before == after {
		t.Fatal("refinement did not update weights")
	}
	// Greedy mode: NoteOutcome is a no-op and Choose takes no locks.
	p.StopExploring()
	w := *p.Snapshot()
	p.NoteOutcome(true, time.Millisecond)
	if *p.Snapshot() != w {
		t.Fatal("greedy-mode outcome should not update weights")
	}
}

func TestLearnedCloneIndependent(t *testing.T) {
	p := NewLearnedPolicy(5)
	c := p.Clone(6)
	w := *c.Snapshot()
	w.W[0][0] += 99
	c.SetWeights(&w)
	if p.Snapshot().W[0][0] == c.Snapshot().W[0][0] {
		t.Fatal("clone aliases weights")
	}
}

func TestApplyMetaPerturbsModel(t *testing.T) {
	base := NewLearnedPolicy(7)
	meta := []float64{0.5, -0.5, 0.2, -0.2, 0.5}
	cand := applyMeta(base, meta, 8)
	if cand.Snapshot().B[0] != base.Snapshot().B[0]+0.5 {
		t.Fatal("bias shift not applied")
	}
	if cand.Snapshot().W[0][4] == base.Snapshot().W[0][4] {
		t.Fatal("contention scale not applied")
	}
}

func TestAdapterProducesWorkingPolicy(t *testing.T) {
	store := NewStore(128)
	base := NewLearnedPolicy(9)
	e := NewEngine(store, base)
	gen := &transferGen{keys: 128, hot: 2}
	ad := NewAdapter(10)
	ad.EvalWindow = 10 * time.Millisecond
	ad.RefineTime = 30 * time.Millisecond
	ad.Candidates = 3
	adapted := ad.Adapt(e, gen, 4, base)
	if adapted == nil {
		t.Fatal("no adapted policy")
	}
	if adapted.exploring.Load() {
		t.Fatal("adapted policy should be greedy")
	}
	// The engine should run fine with the adapted policy.
	res := e.RunFixed(gen, 4, 200)
	if res.Commits == 0 {
		t.Fatal("adapted policy cannot commit")
	}
	var total int64
	for i := 0; i < store.Size(); i++ {
		total += store.Value(i)
	}
	if total != 0 {
		t.Fatalf("adapted policy broke conservation: %d", total)
	}
}

func TestPolyjuiceTableAndTrainer(t *testing.T) {
	p := NewPolyjuice()
	f := &Features{TxnType: 0, OpIdx: 0, IsWrite: true, TxnLen: 4}
	if p.Choose(f) != ActOptimistic {
		t.Fatal("default action wrong")
	}
	p.table[polyKey{0, 0, true}] = ActLockWait
	if p.Choose(f) != ActLockWait {
		t.Fatal("table lookup wrong")
	}
	c := p.Clone()
	if c.Choose(f) != ActLockWait {
		t.Fatal("clone lost table")
	}
	c.mutate(rand.New(rand.NewSource(1)), 2, 4, 5)
	if len(c.table) == 0 {
		t.Fatal("mutation added nothing")
	}

	store := NewStore(64)
	e := NewEngine(store, p)
	gen := &transferGen{keys: 64, hot: 2}
	tr := NewPolyjuiceTrainer(1, 4, 2)
	tr.Interval = 10 * time.Millisecond
	tr.Population = 3
	best, tput := tr.EvolveOnce(e, gen, 4, p)
	if best == nil || tput <= 0 {
		t.Fatalf("EA produced nothing: %v %v", best, tput)
	}
}

func TestRunDurationMode(t *testing.T) {
	store := NewStore(256)
	e := NewEngine(store, NewOCC())
	gen := &transferGen{keys: 256}
	res := e.Run(gen, 4, 50*time.Millisecond)
	if res.Commits == 0 || res.Throughput <= 0 {
		t.Fatalf("duration run: %+v", res)
	}
	if res.AbortRate < 0 || res.AbortRate > 1 {
		t.Fatalf("abort rate: %v", res.AbortRate)
	}
}

func TestFeatureEncode(t *testing.T) {
	f := &Features{IsWrite: true, OpIdx: 5, TxnLen: 10, Contention: 0.7, LockState: 1, Waiters: 10, Retries: 9}
	dst := make([]float64, FeatureDim)
	f.Encode(dst)
	if dst[0] != 1 || dst[1] != 1 || dst[2] != 0.5 || dst[4] != 0.7 {
		t.Fatalf("encoding wrong: %v", dst)
	}
	if dst[6] != 1 || dst[7] != 1 {
		t.Fatalf("caps not applied: %v", dst)
	}
}

func TestRecordLatchSemantics(t *testing.T) {
	var r Record
	if !r.TryExclusive() {
		t.Fatal("free record should latch")
	}
	if r.TryExclusive() || r.TryShared() {
		t.Fatal("latched record should refuse")
	}
	r.ReleaseExclusive()
	if !r.TryShared() || !r.TryShared() {
		t.Fatal("shared latches should stack")
	}
	if r.TryExclusive() {
		t.Fatal("shared-latched record should refuse exclusive")
	}
	r.ReleaseShared()
	r.ReleaseShared()
	if !r.ExclusiveWait(100) {
		t.Fatal("wait on free record should succeed")
	}
	if r.ExclusiveWait(100) {
		t.Fatal("bounded wait should time out")
	}
	r.ReleaseExclusive()
	if r.LockState() != 0 {
		t.Fatal("lock state wrong")
	}
	// Optimistic read interacts with the latch.
	if _, _, ok := r.ReadOptimistic(); !ok {
		t.Fatal("optimistic read on free record should succeed")
	}
	r.TryExclusive()
	if _, _, ok := r.ReadOptimistic(); ok {
		t.Fatal("optimistic read under exclusive latch should fail")
	}
	r.ReleaseExclusive()
	// Conflict EWMA.
	r.NoteConflict()
	c1 := r.Contention()
	if c1 <= 0 {
		t.Fatal("conflict not recorded")
	}
	for i := 0; i < 100; i++ {
		r.DecayConflict()
	}
	if r.Contention() >= c1 {
		t.Fatal("conflict did not decay")
	}
}

// TestLatchTimeoutCounter pins a record's exclusive latch from outside the
// engine and drives a 2PL write through it: the bounded spin must expire,
// abort the transaction, and bump the latch-timeout counter exactly once.
func TestLatchTimeoutCounter(t *testing.T) {
	store := NewStore(4)
	e := NewEngine(store, NewTwoPL())
	if !store.Record(0).TryExclusive() {
		t.Fatal("could not pre-latch record 0")
	}
	ctx := newTxnCtx()
	txn := &Txn{Ops: []Op{{Key: 0, Write: true, Delta: 1}}}
	committed, _ := e.TryTxn(ctx, txn, 0)
	if committed {
		t.Fatal("write through a held latch committed")
	}
	if got := e.LatchTimeouts(); got != 1 {
		t.Fatalf("LatchTimeouts() = %d, want 1", got)
	}
	_, aborts := e.Stats()
	if aborts != 1 {
		t.Fatalf("aborts = %d, want 1", aborts)
	}
	store.Record(0).ReleaseExclusive()
	// With the latch free the same transaction commits, and ResetStats
	// clears the counter.
	if committed, _ := e.TryTxn(ctx, txn, 0); !committed {
		t.Fatal("retry after release did not commit")
	}
	e.ResetStats()
	if e.LatchTimeouts() != 0 {
		t.Fatal("ResetStats left latch-timeout counter set")
	}
}
