package armnet

import "math"

func mathExp(x float64) float64 { return math.Exp(x) }
func tanh(x float64) float64    { return math.Tanh(x) }
