// Package armnet implements ARM-Net-lite, the default in-database analytics
// model (the paper uses ARM-Net, Cai et al., SIGMOD'21, for both NeurDB and
// the PostgreSQL+P baseline). This reduced variant keeps the architecture's
// essence for tabular data — per-field embeddings followed by an adaptive
// gated interaction layer and an MLP head — while replacing the exponential
// cross-feature neurons with a sigmoid-gated bilinear interaction, which
// trains stably in this pure-Go runtime. The substitution is recorded in
// DESIGN.md.
package armnet

import (
	"math/rand"

	"neurdb/internal/nn"
)

// GatedInteraction models multiplicative feature interactions:
// out = sigmoid(xW_g + b_g) ⊙ tanh(xW_t + b_t). It is the adaptive
// "relation modeling" block between embeddings and the MLP head.
type GatedInteraction struct {
	Gate, Transform *nn.Linear

	lastG, lastT *nn.Matrix
}

// NewGatedInteraction creates the block mapping in → out features.
func NewGatedInteraction(in, out int, r *rand.Rand) *GatedInteraction {
	return &GatedInteraction{
		Gate:      nn.NewLinear(in, out, r),
		Transform: nn.NewLinear(in, out, r),
	}
}

// Forward implements nn.Module.
func (g *GatedInteraction) Forward(x *nn.Matrix) *nn.Matrix {
	gateLin := g.Gate.Forward(x)
	transLin := g.Transform.Forward(x)
	gate := nn.NewMatrix(gateLin.Rows, gateLin.Cols)
	for i, v := range gateLin.Data {
		gate.Data[i] = 1 / (1 + exp(-v))
	}
	tr := nn.NewMatrix(transLin.Rows, transLin.Cols)
	for i, v := range transLin.Data {
		tr.Data[i] = tanh(v)
	}
	g.lastG, g.lastT = gate, tr
	return nn.Hadamard(gate, tr)
}

// Backward implements nn.Module.
func (g *GatedInteraction) Backward(dy *nn.Matrix) *nn.Matrix {
	// d/dgateLin = dy ⊙ t ⊙ g(1-g);  d/dtransLin = dy ⊙ g ⊙ (1-t²)
	dGate := nn.NewMatrix(dy.Rows, dy.Cols)
	dTrans := nn.NewMatrix(dy.Rows, dy.Cols)
	for i := range dy.Data {
		gv, tv := g.lastG.Data[i], g.lastT.Data[i]
		dGate.Data[i] = dy.Data[i] * tv * gv * (1 - gv)
		dTrans.Data[i] = dy.Data[i] * gv * (1 - tv*tv)
	}
	dx := g.Gate.Backward(dGate)
	nn.AddInPlace(dx, g.Transform.Backward(dTrans))
	return dx
}

// Params implements nn.Module.
func (g *GatedInteraction) Params() []*nn.Param {
	return append(g.Gate.Params(), g.Transform.Params()...)
}

func exp(x float64) float64 {
	// branchless-enough wrapper to keep math import localized
	return mathExp(x)
}

// Model is ARM-Net-lite. The Sequential layout is
//
//	[0] Embedding            (frozen during incremental updates)
//	[1] GatedInteraction     (frozen during incremental updates)
//	[2] Linear + ReLU hidden (fine-tuned)
//	[3] (ReLU)
//	[4] Linear head → 1      (fine-tuned)
//
// matching the paper's incremental-update recipe: freeze the
// representation prefix, adapt the final layers.
type Model struct {
	Net            *nn.Sequential
	Fields         int
	Classification bool
}

// FreezePrefixLayers is the number of leading layers frozen by incremental
// updates (embedding + interaction).
const FreezePrefixLayers = 2

// New builds an ARM-Net-lite for the given shape.
func New(fields, vocab, embDim, hidden int, classification bool, seed int64) *Model {
	r := rand.New(rand.NewSource(seed))
	net := nn.NewSequential(
		nn.NewEmbedding(vocab, embDim, r),
		NewGatedInteraction(fields*embDim, hidden, r),
		nn.NewLinear(hidden, hidden, r),
		&nn.ReLU{},
		nn.NewLinear(hidden, 1, r),
	)
	return &Model{Net: net, Fields: fields, Classification: classification}
}

// Forward computes raw outputs (logits for classification, values for
// regression) for a batch of field-id rows [n, Fields].
func (m *Model) Forward(x *nn.Matrix) *nn.Matrix { return m.Net.Forward(x) }

// LossAndGrad computes the task loss and seeds backprop, returning the loss.
func (m *Model) LossAndGrad(x, y *nn.Matrix) float64 {
	out := m.Net.Forward(x)
	var loss float64
	var grad *nn.Matrix
	if m.Classification {
		loss, grad = nn.BCEWithLogitsLoss(out, y)
	} else {
		loss, grad = nn.MSELoss(out, y)
	}
	m.Net.Backward(grad)
	return loss
}

// TrainBatch runs one optimization step and returns the batch loss.
func (m *Model) TrainBatch(x, y *nn.Matrix, opt nn.Optimizer) float64 {
	opt.ZeroGrad(m.Net.Params())
	loss := m.LossAndGrad(x, y)
	nn.ClipGradNorm(m.Net.Params(), 5)
	opt.Step(m.Net.Params())
	return loss
}

// EvalLoss computes the loss without updating parameters.
func (m *Model) EvalLoss(x, y *nn.Matrix) float64 {
	out := m.Net.Forward(x)
	var loss float64
	if m.Classification {
		loss, _ = nn.BCEWithLogitsLoss(out, y)
	} else {
		loss, _ = nn.MSELoss(out, y)
	}
	return loss
}

// Predict returns predictions: probabilities for classification, values for
// regression.
func (m *Model) Predict(x *nn.Matrix) *nn.Matrix {
	out := m.Net.Forward(x)
	if !m.Classification {
		return out
	}
	probs := nn.NewMatrix(out.Rows, out.Cols)
	for i, v := range out.Data {
		probs.Data[i] = 1 / (1 + exp(-v))
	}
	return probs
}

// FreezeForIncrementalUpdate freezes the representation prefix so only the
// head layers train — the model manager then persists only those layers.
func (m *Model) FreezeForIncrementalUpdate() {
	m.Net.FreezeUpTo(FreezePrefixLayers)
}

// Unfreeze makes all layers trainable again.
func (m *Model) Unfreeze() { m.Net.FreezeUpTo(0) }

// Snapshot returns per-layer weight snapshots aligned with the store's LID
// space.
func (m *Model) Snapshot() []nn.LayerWeights { return nn.SnapshotSequential(m.Net) }

// Restore loads per-layer snapshots.
func (m *Model) Restore(layers []nn.LayerWeights) error {
	return nn.RestoreSequential(m.Net, layers)
}

// UpdatedLayers returns the snapshots of the non-frozen layers keyed by LID,
// the payload of an incremental (partial) save.
func (m *Model) UpdatedLayers() map[int]nn.LayerWeights {
	out := make(map[int]nn.LayerWeights)
	snaps := m.Snapshot()
	for lid, layer := range m.Net.Layers {
		frozen := false
		params := layer.Params()
		if len(params) > 0 {
			frozen = params[0].Frozen
		}
		if !frozen && len(params) > 0 {
			out[lid] = snaps[lid]
		}
	}
	return out
}

// NumLayers is the LID-space size of the model.
func (m *Model) NumLayers() int { return len(m.Net.Layers) }
