package armnet

import (
	"math"
	"math/rand"
	"testing"

	"neurdb/internal/nn"
)

func TestGatedInteractionGradients(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g := NewGatedInteraction(4, 3, r)
	x := nn.Randn(5, 4, 1, r)

	for _, p := range g.Params() {
		p.Grad.Zero()
	}
	y := g.Forward(x)
	// loss = 0.5*sum(y²)
	var loss0 float64
	dy := nn.NewMatrix(y.Rows, y.Cols)
	for i, v := range y.Data {
		loss0 += 0.5 * v * v
		dy.Data[i] = v
	}
	_ = loss0
	dx := g.Backward(dy)

	lossAt := func() float64 {
		out := g.Forward(x)
		var l float64
		for _, v := range out.Data {
			l += 0.5 * v * v
		}
		return l
	}
	const eps, tol = 1e-5, 1e-4
	for pi, p := range g.Params() {
		for i := range p.W.Data {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			lp := lossAt()
			p.W.Data[i] = orig - eps
			lm := lossAt()
			p.W.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-p.Grad.Data[i]) > tol*(1+math.Abs(num)) {
				t.Fatalf("param %d elem %d: analytic %.8f vs numeric %.8f", pi, i, p.Grad.Data[i], num)
			}
		}
	}
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := lossAt()
		x.Data[i] = orig - eps
		lm := lossAt()
		x.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dx.Data[i]) > tol*(1+math.Abs(num)) {
			t.Fatalf("input elem %d: analytic %.8f vs numeric %.8f", i, dx.Data[i], num)
		}
	}
}

// synthBatch builds a learnable categorical task: label depends on id%5.
func synthBatch(r *rand.Rand, n, fields, vocab int, cls bool) (*nn.Matrix, *nn.Matrix) {
	x := nn.NewMatrix(n, fields)
	y := nn.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		var signal float64
		for f := 0; f < fields; f++ {
			id := r.Intn(vocab)
			x.Set(i, f, float64(id))
			signal += float64(id%5) / 5
		}
		signal /= float64(fields)
		if cls {
			if signal > 0.4 {
				y.Set(i, 0, 1)
			}
		} else {
			y.Set(i, 0, signal)
		}
	}
	return x, y
}

func TestRegressionTrainingConverges(t *testing.T) {
	m := New(3, 24, 4, 16, false, 1)
	r := rand.New(rand.NewSource(2))
	opt := nn.NewAdam(0.01)
	var first, last float64
	for i := 0; i < 150; i++ {
		x, y := synthBatch(r, 64, 3, 24, false)
		loss := m.TrainBatch(x, y, opt)
		if i == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Fatalf("regression loss did not decrease: %.4f -> %.4f", first, last)
	}
	// EvalLoss does not change weights.
	x, y := synthBatch(r, 32, 3, 24, false)
	l1 := m.EvalLoss(x, y)
	l2 := m.EvalLoss(x, y)
	if l1 != l2 {
		t.Fatal("EvalLoss must be deterministic and side-effect free")
	}
}

func TestClassificationPredictProbabilities(t *testing.T) {
	m := New(3, 24, 4, 16, true, 3)
	r := rand.New(rand.NewSource(4))
	opt := nn.NewAdam(0.02)
	for i := 0; i < 200; i++ {
		x, y := synthBatch(r, 64, 3, 24, true)
		m.TrainBatch(x, y, opt)
	}
	x, y := synthBatch(r, 256, 3, 24, true)
	probs := m.Predict(x)
	for _, p := range probs.Data {
		if p < 0 || p > 1 {
			t.Fatalf("probability out of range: %v", p)
		}
	}
	var scores, labels []float64
	scores = append(scores, probs.Data...)
	labels = append(labels, y.Data...)
	if auc := nn.AUC(scores, labels); auc < 0.7 {
		t.Fatalf("AUC = %.3f; model failed to learn", auc)
	}
	// Regression predict returns raw values (can exceed [0,1]).
	reg := New(2, 8, 2, 4, false, 5)
	out := reg.Predict(nn.FromRows([][]float64{{1, 2}}))
	if out.Rows != 1 || out.Cols != 1 {
		t.Fatal("regression predict shape wrong")
	}
}

func TestFreezeForIncrementalUpdate(t *testing.T) {
	m := New(3, 24, 4, 16, false, 6)
	m.FreezeForIncrementalUpdate()
	embFrozen := m.Net.Layers[0].Params()[0].Frozen
	gateFrozen := m.Net.Layers[1].Params()[0].Frozen
	headFrozen := m.Net.Layers[4].Params()[0].Frozen
	if !embFrozen || !gateFrozen {
		t.Fatal("prefix should be frozen")
	}
	if headFrozen {
		t.Fatal("head should be trainable")
	}
	// Training with frozen prefix leaves the embedding unchanged.
	r := rand.New(rand.NewSource(7))
	opt := nn.NewAdam(0.05)
	before := append([]float64(nil), m.Net.Layers[0].Params()[0].W.Data...)
	for i := 0; i < 10; i++ {
		x, y := synthBatch(r, 32, 3, 24, false)
		m.TrainBatch(x, y, opt)
	}
	for i, v := range m.Net.Layers[0].Params()[0].W.Data {
		if v != before[i] {
			t.Fatal("frozen embedding moved")
		}
	}
	// UpdatedLayers returns only unfrozen parametered layers.
	up := m.UpdatedLayers()
	if _, ok := up[0]; ok {
		t.Fatal("frozen embedding must not be in updated set")
	}
	if _, ok := up[2]; !ok {
		t.Fatal("hidden layer missing from updated set")
	}
	if _, ok := up[4]; !ok {
		t.Fatal("head missing from updated set")
	}
	m.Unfreeze()
	if m.Net.Layers[0].Params()[0].Frozen {
		t.Fatal("unfreeze failed")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	m := New(2, 16, 4, 8, false, 8)
	if m.NumLayers() != 5 {
		t.Fatalf("layers = %d", m.NumLayers())
	}
	snap := m.Snapshot()
	x := nn.FromRows([][]float64{{3, 7}})
	before := m.Forward(x).At(0, 0)
	// Clobber weights, restore, verify output identical.
	for _, l := range m.Net.Layers {
		for _, p := range l.Params() {
			for i := range p.W.Data {
				p.W.Data[i] = 99
			}
		}
	}
	if err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	after := m.Forward(x).At(0, 0)
	if before != after {
		t.Fatalf("restore mismatch: %v vs %v", before, after)
	}
}
