package aiengine

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"neurdb/internal/models"
	"neurdb/internal/nn"
	"neurdb/internal/rel"
)

// BaselineTrain reproduces the paper's PostgreSQL+P baseline: an external
// AI runtime that loads data from the database in batches. Each batch goes
// through the classic client path — the server serializes rows to the text
// wire format, the client parses the text back into tensors — and the loop
// is fully synchronous: no streaming, no overlap between data preparation
// and training. The delta against Engine.Train is exactly the paper's
// "in-database AI ecosystem vs. bolted-on runtime" comparison (Fig. 6).
func BaselineTrain(spec models.Spec, cfg TrainConfig, src RowBatchSource, feat Featurizer) (*TrainOutcome, error) {
	model, err := buildModel(spec)
	if err != nil {
		return nil, err
	}
	lr := cfg.LR
	if lr == 0 {
		lr = 0.01
	}
	opt := nn.NewAdam(lr)
	out := &TrainOutcome{}
	start := time.Now()
	for {
		rows, ok := src.Next()
		if !ok {
			break
		}
		// Server side: encode the result set as text (one line per row,
		// comma-separated), the way a driver receives it.
		text := encodeRowsText(rows)
		// Client side: parse the text back into rows, then featurize.
		parsed, err := decodeRowsText(text, len(rows[0]))
		if err != nil {
			return nil, fmt.Errorf("aiengine: baseline decode: %w", err)
		}
		x, y := feat(parsed)
		loss := model.TrainBatch(x, y, opt)
		out.Losses = append(out.Losses, loss)
		out.Batches++
		out.Samples += len(rows)
	}
	out.Duration = time.Since(start)
	if out.Duration > 0 {
		out.Throughput = float64(out.Samples) / out.Duration.Seconds()
	}
	return out, nil
}

// BaselineInfer is the inference counterpart of BaselineTrain: batch-wise
// text round trip, synchronous predict.
func BaselineInfer(model interface {
	Predict(*nn.Matrix) *nn.Matrix
}, src RowBatchSource, feat Featurizer) ([]float64, error) {
	var preds []float64
	for {
		rows, ok := src.Next()
		if !ok {
			return preds, nil
		}
		text := encodeRowsText(rows)
		parsed, err := decodeRowsText(text, len(rows[0]))
		if err != nil {
			return nil, err
		}
		x, _ := feat(parsed)
		p := model.Predict(x)
		preds = append(preds, p.Data...)
	}
}

// encodeRowsText renders rows in a psql-like text format.
func encodeRowsText(rows []rel.Row) string {
	var sb strings.Builder
	for _, row := range rows {
		for i, v := range row {
			if i > 0 {
				sb.WriteByte(',')
			}
			switch v.Typ {
			case rel.TypeNull:
				sb.WriteString("\\N")
			case rel.TypeFloat:
				sb.WriteString(strconv.FormatFloat(v.F, 'g', -1, 64))
			case rel.TypeInt:
				sb.WriteString(strconv.FormatInt(v.I, 10))
			case rel.TypeBool:
				if v.B {
					sb.WriteString("t")
				} else {
					sb.WriteString("f")
				}
			default:
				sb.WriteString(v.S)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// decodeRowsText parses the text format back into rows (numbers become
// floats, the lossy-but-typical driver behaviour).
func decodeRowsText(text string, arity int) ([]rel.Row, error) {
	lines := strings.Split(strings.TrimSuffix(text, "\n"), "\n")
	out := make([]rel.Row, 0, len(lines))
	for _, line := range lines {
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != arity {
			return nil, fmt.Errorf("row arity %d, want %d", len(fields), arity)
		}
		row := make(rel.Row, len(fields))
		for i, f := range fields {
			switch f {
			case "\\N":
				row[i] = rel.Null()
			case "t":
				row[i] = rel.Bool(true)
			case "f":
				row[i] = rel.Bool(false)
			default:
				x, err := strconv.ParseFloat(f, 64)
				if err != nil {
					row[i] = rel.Text(f)
				} else {
					row[i] = rel.Float(x)
				}
			}
		}
		out = append(out, row)
	}
	return out, nil
}
