package aiengine

import (
	"math/rand"
	"net"
	"testing"

	"neurdb/internal/models"
	"neurdb/internal/nn"
	"neurdb/internal/rel"
)

// synthSource generates batches from a simple linear ground truth over
// categorical ids so training loss must decrease.
type synthSource struct {
	r       *rand.Rand
	batches int
	size    int
	fields  int
	vocab   int
	cls     bool
	emitted int
}

func (s *synthSource) Next() (*Batch, bool) {
	if s.emitted >= s.batches {
		return nil, false
	}
	s.emitted++
	x := nn.NewMatrix(s.size, s.fields)
	y := nn.NewMatrix(s.size, 1)
	for i := 0; i < s.size; i++ {
		var signal float64
		for j := 0; j < s.fields; j++ {
			id := s.r.Intn(s.vocab)
			x.Set(i, j, float64(id))
			signal += float64(id%7) / 7.0
		}
		signal /= float64(s.fields)
		if s.cls {
			if signal > 0.45 {
				y.Set(i, 0, 1)
			}
		} else {
			y.Set(i, 0, signal)
		}
	}
	return &Batch{X: x, Y: y}, true
}

func testSpec(cls bool) models.Spec {
	return models.Spec{Arch: "armnet", Fields: 4, Vocab: 32, EmbDim: 4, Hidden: 16, Classification: cls, Seed: 7}
}

func TestTrainInProcessLossDecreases(t *testing.T) {
	store := models.NewStore()
	e := NewEngine(store)
	src := &synthSource{r: rand.New(rand.NewSource(1)), batches: 60, size: 64, fields: 4, vocab: 32}
	out, err := e.Train(testSpec(false), TrainConfig{Name: "m1", BatchSize: 64, Window: 8, LR: 0.01}, src)
	if err != nil {
		t.Fatal(err)
	}
	if out.Batches != 60 || out.Samples != 60*64 {
		t.Fatalf("batches=%d samples=%d", out.Batches, out.Samples)
	}
	first := avg(out.Losses[:10])
	last := avg(out.Losses[len(out.Losses)-10:])
	if last >= first {
		t.Fatalf("loss did not decrease: %.4f -> %.4f", first, last)
	}
	if out.Throughput <= 0 {
		t.Fatal("throughput not measured")
	}
	// Model stored and view bound.
	if store.LatestTS(out.MID) != out.TS {
		t.Fatal("stored version mismatch")
	}
	if _, err := store.ResolveView("m1"); err != nil {
		t.Fatal(err)
	}
}

func TestTrainOverRealTCP(t *testing.T) {
	rt, addr, err := StartRuntime()
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	store := models.NewStore()
	e := NewEngine(store)
	e.AddRuntime(addr)
	src := &synthSource{r: rand.New(rand.NewSource(2)), batches: 20, size: 32, fields: 4, vocab: 32}
	out, err := e.Train(testSpec(false), TrainConfig{BatchSize: 32, Window: 4, LR: 0.01}, src)
	if err != nil {
		t.Fatal(err)
	}
	if out.Batches != 20 {
		t.Fatalf("batches = %d", out.Batches)
	}
}

func TestInferenceMatchesTraining(t *testing.T) {
	store := models.NewStore()
	e := NewEngine(store)
	src := &synthSource{r: rand.New(rand.NewSource(3)), batches: 80, size: 64, fields: 4, vocab: 32, cls: true}
	out, err := e.Train(testSpec(true), TrainConfig{BatchSize: 64, Window: 8, LR: 0.02}, src)
	if err != nil {
		t.Fatal(err)
	}
	// Inference on fresh data from the same distribution should beat chance.
	test := &synthSource{r: rand.New(rand.NewSource(4)), batches: 4, size: 128, fields: 4, vocab: 32, cls: true}
	var labels []float64
	var inferBatches []*Batch
	for {
		b, ok := test.Next()
		if !ok {
			break
		}
		labels = append(labels, b.Y.Data...)
		inferBatches = append(inferBatches, &Batch{X: b.X})
	}
	preds, err := e.Infer(out.MID, 0, &SliceSource{Batches: inferBatches})
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != len(labels) {
		t.Fatalf("preds %d labels %d", len(preds), len(labels))
	}
	auc := nn.AUC(preds, labels)
	if auc < 0.75 {
		t.Fatalf("AUC = %.3f, expected learning signal", auc)
	}
}

func TestFineTunePersistsOnlyTailLayers(t *testing.T) {
	store := models.NewStore()
	e := NewEngine(store)
	src := &synthSource{r: rand.New(rand.NewSource(5)), batches: 30, size: 64, fields: 4, vocab: 32}
	out, err := e.Train(testSpec(false), TrainConfig{BatchSize: 64, Window: 8, LR: 0.01}, src)
	if err != nil {
		t.Fatal(err)
	}
	bytesAfterFull := store.StorageBytes()

	ft := &synthSource{r: rand.New(rand.NewSource(6)), batches: 10, size: 64, fields: 4, vocab: 32}
	res, err := e.FineTune(out.MID, 0, 2, 0.02, ft)
	if err != nil {
		t.Fatal(err)
	}
	if res.TS <= out.TS {
		t.Fatal("fine-tune must create a newer version")
	}
	// Incremental save must be much smaller than the full model: the frozen
	// embedding (the bulk of parameters) is shared, not re-stored.
	delta := store.StorageBytes() - bytesAfterFull
	if delta <= 0 || delta >= bytesAfterFull/2 {
		t.Fatalf("incremental update stored %d bytes vs full %d", delta, bytesAfterFull)
	}
	// Both versions load, and share the embedding layer bytes.
	v1, _, err := store.Load(out.MID, out.TS)
	if err != nil {
		t.Fatal(err)
	}
	v2, _, err := store.Load(out.MID, res.TS)
	if err != nil {
		t.Fatal(err)
	}
	if len(v1) != len(v2) {
		t.Fatal("layer counts differ")
	}
	// Frozen prefix identical.
	if !sameWeights(v1[0], v2[0]) {
		t.Fatal("embedding layer should be shared across versions")
	}
	// Tail changed.
	if sameWeights(v1[4], v2[4]) {
		t.Fatal("head layer should differ after fine-tuning")
	}
}

func sameWeights(a, b nn.LayerWeights) bool {
	if len(a.Datas) != len(b.Datas) {
		return false
	}
	for i := range a.Datas {
		if len(a.Datas[i]) != len(b.Datas[i]) {
			return false
		}
		for j := range a.Datas[i] {
			if a.Datas[i][j] != b.Datas[i][j] {
				return false
			}
		}
	}
	return true
}

func TestBaselineTrainsButSlowerPath(t *testing.T) {
	// The baseline must converge too (same model) — only its data path
	// differs. Fig 6 measures the performance delta; here we verify
	// functional equivalence.
	rows := make([]rel.Row, 0, 2048)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2048; i++ {
		a, b := r.Intn(32), r.Intn(32)
		label := float64(a%7)/7.0*0.5 + float64(b%7)/7.0*0.5
		rows = append(rows, rel.Row{rel.Int(int64(a)), rel.Int(int64(b)), rel.Float(label)})
	}
	src := &rowChunks{rows: rows, size: 128}
	feat := func(rs []rel.Row) (*nn.Matrix, *nn.Matrix) {
		x := nn.NewMatrix(len(rs), 2)
		y := nn.NewMatrix(len(rs), 1)
		for i, row := range rs {
			x.Set(i, 0, row[0].AsFloat())
			x.Set(i, 1, row[1].AsFloat())
			y.Set(i, 0, row[2].AsFloat())
		}
		return x, y
	}
	spec := models.Spec{Arch: "armnet", Fields: 2, Vocab: 32, EmbDim: 4, Hidden: 16, Seed: 1}
	out, err := BaselineTrain(spec, TrainConfig{LR: 0.02}, src, feat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Batches != 16 || out.Samples != 2048 {
		t.Fatalf("batches=%d samples=%d", out.Batches, out.Samples)
	}
	if out.Losses[len(out.Losses)-1] >= out.Losses[0] {
		t.Fatalf("baseline loss did not decrease: %v -> %v", out.Losses[0], out.Losses[len(out.Losses)-1])
	}
}

type rowChunks struct {
	rows []rel.Row
	size int
	pos  int
}

func (rc *rowChunks) Next() ([]rel.Row, bool) {
	if rc.pos >= len(rc.rows) {
		return nil, false
	}
	end := rc.pos + rc.size
	if end > len(rc.rows) {
		end = len(rc.rows)
	}
	chunk := rc.rows[rc.pos:end]
	rc.pos = end
	return chunk, true
}

func TestStreamingLoaderPrefetches(t *testing.T) {
	rows := make([]rel.Row, 640)
	for i := range rows {
		rows[i] = rel.Row{rel.Int(int64(i % 32)), rel.Float(0.5)}
	}
	src := &rowChunks{rows: rows, size: 64}
	feat := func(rs []rel.Row) (*nn.Matrix, *nn.Matrix) {
		x := nn.NewMatrix(len(rs), 1)
		y := nn.NewMatrix(len(rs), 1)
		for i, row := range rs {
			x.Set(i, 0, row[0].AsFloat())
			y.Set(i, 0, row[1].AsFloat())
		}
		return x, y
	}
	loader := NewStreamingLoader(src, feat, 4)
	count := 0
	for {
		b, ok := loader.Next()
		if !ok {
			break
		}
		if b.X.Rows != 64 {
			t.Fatal("batch size wrong")
		}
		count++
	}
	if count != 10 {
		t.Fatalf("loader produced %d batches", count)
	}
}

func TestTextRoundTrip(t *testing.T) {
	rows := []rel.Row{
		{rel.Int(1), rel.Float(2.5), rel.Text("abc"), rel.Bool(true), rel.Null()},
		{rel.Int(-3), rel.Float(0), rel.Text("x"), rel.Bool(false), rel.Int(9)},
	}
	text := encodeRowsText(rows)
	back, err := decodeRowsText(text, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("rows = %d", len(back))
	}
	if back[0][0].AsFloat() != 1 || back[0][1].AsFloat() != 2.5 || back[0][2].S != "abc" {
		t.Fatalf("row0 = %v", back[0])
	}
	if !back[0][3].AsBool() || !back[0][4].IsNull() {
		t.Fatalf("row0 tail = %v", back[0])
	}
	if _, err := decodeRowsText("1,2\n", 3); err == nil {
		t.Fatal("arity mismatch should error")
	}
}

func TestTaskManagerRunsTasks(t *testing.T) {
	tm := NewTaskManager(4)
	defer tm.Close()
	results := make([]int, 8)
	var dones []<-chan struct{}
	for i := 0; i < 8; i++ {
		i := i
		dones = append(dones, tm.Submit(func() { results[i] = i + 1 }))
	}
	for _, d := range dones {
		<-d
	}
	for i, v := range results {
		if v != i+1 {
			t.Fatalf("task %d did not run", i)
		}
	}
}

func TestProtocolErrors(t *testing.T) {
	// Runtime rejects unknown architecture via msgError.
	local, remote := net.Pipe()
	go func() {
		defer remote.Close()
		ServeTask(remote)
	}()
	spec := TaskSpec{Kind: TaskTrain, Model: models.Spec{Arch: "nope"}}
	_, err := RunTask(local, spec, &SliceSource{})
	if err == nil {
		t.Fatal("unknown arch should error")
	}
	local.Close()

	// Unknown task kind.
	local2, remote2 := net.Pipe()
	go func() {
		defer remote2.Close()
		ServeTask(remote2)
	}()
	_, err = RunTask(local2, TaskSpec{Kind: "bogus", Model: testSpec(false)}, &SliceSource{})
	if err == nil {
		t.Fatal("bogus kind should error")
	}
	local2.Close()
}

func TestBatchCodecRoundTrip(t *testing.T) {
	x := nn.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y := nn.FromRows([][]float64{{9}, {8}})
	buf := encodeBatch(x, y)
	x2, y2, err := decodeBatch(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x.Data {
		if x2.Data[i] != x.Data[i] {
			t.Fatal("x mismatch")
		}
	}
	for i := range y.Data {
		if y2.Data[i] != y.Data[i] {
			t.Fatal("y mismatch")
		}
	}
	// No labels.
	buf = encodeBatch(x, nil)
	_, y3, err := decodeBatch(buf)
	if err != nil || y3 != nil {
		t.Fatalf("no-label decode: %v %v", y3, err)
	}
	// Corrupt.
	if _, _, err := decodeBatch(buf[:5]); err == nil {
		t.Fatal("short frame should error")
	}
	if _, _, err := decodeBatch(append(buf, 1, 2, 3)); err == nil {
		t.Fatal("oversized frame should error")
	}
}

func avg(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
