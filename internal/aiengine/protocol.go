// Package aiengine implements the paper's in-database AI ecosystem (§4.1):
// a task manager that creates per-task dispatchers, AI runtimes reachable
// over real TCP (or in-process pipes), a binary data streaming protocol with
// a handshake that negotiates model and streaming parameters and
// window-based flow control, a streaming data loader that overlaps data
// preparation with training, and the model-manager operations (train /
// inference / fine-tune) backed by the layered model store.
package aiengine

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"neurdb/internal/models"
	"neurdb/internal/nn"
)

// Message types of the streaming protocol.
const (
	msgHandshake byte = iota + 1
	msgHandshakeAck
	msgBatch
	msgBatchAck
	msgFinish
	msgResult
	msgError
)

// TaskKind selects the AI operator the runtime executes.
type TaskKind string

// Task kinds (the paper's AI operators).
const (
	TaskTrain    TaskKind = "train"
	TaskInfer    TaskKind = "inference"
	TaskFineTune TaskKind = "finetune"
)

// TaskSpec is the handshake payload: model parameters (structure,
// arguments, batch size) and streaming parameters (window size), exactly
// the two parameter groups the paper's handshake negotiates.
type TaskSpec struct {
	Kind      TaskKind
	Model     models.Spec
	BatchSize int
	Window    int // requested batches in flight
	LR        float64
	// FreezeUpTo freezes layers [0, n) for fine-tuning.
	FreezeUpTo int
	// InitWeights carries the model for inference / fine-tuning.
	InitWeights []nn.LayerWeights
}

// HandshakeAck returns the negotiated streaming parameters.
type HandshakeAck struct {
	Window    int
	BatchSize int
}

// BatchAck acknowledges one processed batch, returning credit plus the
// batch's training loss or predictions.
type BatchAck struct {
	Seq   int
	Loss  float64
	Preds []float64
}

// TaskResult is the final payload for a completed task.
type TaskResult struct {
	Batches int
	Losses  []float64
	Preds   []float64
	Weights []nn.LayerWeights
}

// writeFrame writes a [type, len, payload] frame.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > 1<<30 {
		return 0, nil, fmt.Errorf("aiengine: frame too large (%d bytes)", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// encodeBatch packs x (and optional y) matrices into the wire format:
// rows, xcols, ycols as uint32, then row-major float64 payloads.
func encodeBatch(x, y *nn.Matrix) []byte {
	ycols := 0
	if y != nil {
		ycols = y.Cols
	}
	size := 12 + 8*len(x.Data)
	if y != nil {
		size += 8 * len(y.Data)
	}
	buf := make([]byte, size)
	binary.LittleEndian.PutUint32(buf[0:], uint32(x.Rows))
	binary.LittleEndian.PutUint32(buf[4:], uint32(x.Cols))
	binary.LittleEndian.PutUint32(buf[8:], uint32(ycols))
	off := 12
	for _, v := range x.Data {
		binary.LittleEndian.PutUint64(buf[off:], mathFloat64bits(v))
		off += 8
	}
	if y != nil {
		for _, v := range y.Data {
			binary.LittleEndian.PutUint64(buf[off:], mathFloat64bits(v))
			off += 8
		}
	}
	return buf
}

// decodeBatch unpacks a batch frame.
func decodeBatch(buf []byte) (x, y *nn.Matrix, err error) {
	if len(buf) < 12 {
		return nil, nil, fmt.Errorf("aiengine: short batch frame")
	}
	rows := int(binary.LittleEndian.Uint32(buf[0:]))
	xcols := int(binary.LittleEndian.Uint32(buf[4:]))
	ycols := int(binary.LittleEndian.Uint32(buf[8:]))
	need := 12 + 8*rows*(xcols+ycols)
	if len(buf) != need {
		return nil, nil, fmt.Errorf("aiengine: batch frame size %d, want %d", len(buf), need)
	}
	x = nn.NewMatrix(rows, xcols)
	off := 12
	for i := range x.Data {
		x.Data[i] = mathFloat64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	if ycols > 0 {
		y = nn.NewMatrix(rows, ycols)
		for i := range y.Data {
			y.Data[i] = mathFloat64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
	}
	return x, y, nil
}
