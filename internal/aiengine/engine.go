package aiengine

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"neurdb/internal/models"
	"neurdb/internal/nn"
	"neurdb/internal/rel"
)

// Batch is one unit of streamed training/inference data.
type Batch struct {
	X, Y *nn.Matrix
}

// DataSource supplies batches to a dispatcher.
type DataSource interface {
	// Next returns the next batch, or ok=false when exhausted.
	Next() (*Batch, bool)
}

// RowBatchSource supplies raw relational rows in batches (e.g. a table scan
// or a workload generator).
type RowBatchSource interface {
	Next() ([]rel.Row, bool)
}

// Featurizer converts relational rows into model inputs (x) and labels (y).
type Featurizer func([]rel.Row) (x, y *nn.Matrix)

// StreamingLoader is the paper's streaming data loader: a prefetching
// pipeline that featurizes row batches in a background goroutine so data
// preparation overlaps model computation. Window controls the number of
// prepared batches buffered ahead.
type StreamingLoader struct {
	ch chan *Batch
}

// NewStreamingLoader starts the prefetch pipeline.
func NewStreamingLoader(src RowBatchSource, feat Featurizer, window int) *StreamingLoader {
	if window < 1 {
		window = 1
	}
	l := &StreamingLoader{ch: make(chan *Batch, window)}
	go func() {
		defer close(l.ch)
		for {
			rows, ok := src.Next()
			if !ok {
				return
			}
			x, y := feat(rows)
			l.ch <- &Batch{X: x, Y: y}
		}
	}()
	return l
}

// Next implements DataSource.
func (l *StreamingLoader) Next() (*Batch, bool) {
	b, ok := <-l.ch
	return b, ok
}

// SliceSource adapts a pre-materialized batch list to DataSource.
type SliceSource struct {
	Batches []*Batch
	pos     int
}

// Next implements DataSource.
func (s *SliceSource) Next() (*Batch, bool) {
	if s.pos >= len(s.Batches) {
		return nil, false
	}
	b := s.Batches[s.pos]
	s.pos++
	return b, true
}

// Engine is the in-database AI engine: it owns the model store, connects
// dispatchers to AI runtimes, and exposes the train / inference / fine-tune
// operators that the executor's AI operators call.
type Engine struct {
	Store *models.Store

	mu    sync.Mutex
	addrs []string
	rr    int
}

// NewEngine creates an engine backed by the given model store. With no
// registered runtimes, tasks run on in-process runtime goroutines connected
// through synchronous pipes.
func NewEngine(store *models.Store) *Engine {
	return &Engine{Store: store}
}

// AddRuntime registers an external runtime address (round-robin dispatch).
func (e *Engine) AddRuntime(addr string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.addrs = append(e.addrs, addr)
}

// connect opens a task connection to a runtime.
func (e *Engine) connect() (io.ReadWriteCloser, error) {
	e.mu.Lock()
	var addr string
	if len(e.addrs) > 0 {
		addr = e.addrs[e.rr%len(e.addrs)]
		e.rr++
	}
	e.mu.Unlock()
	if addr != "" {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("aiengine: dial runtime %s: %w", addr, err)
		}
		return conn, nil
	}
	local, remote := net.Pipe()
	go func() {
		defer remote.Close()
		ServeTask(remote)
	}()
	return local, nil
}

// RunTask executes one task over a connection: handshake, windowed batch
// streaming with credit-based flow control, finish, result.
func RunTask(conn io.ReadWriter, spec TaskSpec, src DataSource) (*TaskResult, error) {
	payload, err := gobEncode(spec)
	if err != nil {
		return nil, err
	}
	if err := writeFrame(conn, msgHandshake, payload); err != nil {
		return nil, fmt.Errorf("aiengine: send handshake: %w", err)
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("aiengine: read handshake ack: %w", err)
	}
	if typ == msgError {
		var msg string
		_ = gobDecode(payload, &msg)
		return nil, fmt.Errorf("aiengine: runtime error: %s", msg)
	}
	var ack HandshakeAck
	if err := gobDecode(payload, &ack); err != nil {
		return nil, fmt.Errorf("aiengine: decode handshake ack: %w", err)
	}
	window := ack.Window
	if window < 1 {
		window = 1
	}

	// Credit-based pipelined streaming: the sender goroutine keeps up to
	// `window` unacknowledged batches in flight while this goroutine drains
	// acknowledgements.
	credits := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		credits <- struct{}{}
	}
	var sent atomic.Int64
	senderDone := make(chan error, 1)
	go func() {
		for {
			b, ok := src.Next()
			if !ok {
				senderDone <- nil
				return
			}
			<-credits
			frame := encodeBatch(b.X, b.Y)
			if err := writeFrame(conn, msgBatch, frame); err != nil {
				senderDone <- err
				return
			}
			sent.Add(1)
		}
	}()

	// A dedicated reader goroutine lets the main loop select between
	// incoming frames and sender completion without blocking on either.
	type inFrame struct {
		typ     byte
		payload []byte
		err     error
	}
	frames := make(chan inFrame, 8)
	go func() {
		for {
			typ, payload, err := readFrame(conn)
			frames <- inFrame{typ, payload, err}
			if err != nil {
				return
			}
		}
	}()

	result := &TaskResult{}
	acked := int64(0)
	total := int64(-1) // unknown until the sender finishes
	for total < 0 || acked < total {
		select {
		case err := <-senderDone:
			if err != nil {
				return nil, fmt.Errorf("aiengine: stream batches: %w", err)
			}
			total = sent.Load()
		case f := <-frames:
			if f.err != nil {
				return nil, fmt.Errorf("aiengine: read ack: %w", f.err)
			}
			switch f.typ {
			case msgBatchAck:
				var ba BatchAck
				if err := gobDecode(f.payload, &ba); err != nil {
					return nil, fmt.Errorf("aiengine: decode batch ack: %w", err)
				}
				if len(ba.Preds) == 0 {
					result.Losses = append(result.Losses, ba.Loss)
				}
				result.Preds = append(result.Preds, ba.Preds...)
				acked++
				credits <- struct{}{}
			case msgError:
				var msg string
				_ = gobDecode(f.payload, &msg)
				return nil, fmt.Errorf("aiengine: runtime error: %s", msg)
			default:
				return nil, fmt.Errorf("aiengine: unexpected frame %d", f.typ)
			}
		}
	}
	if err := writeFrame(conn, msgFinish, nil); err != nil {
		return nil, fmt.Errorf("aiengine: send finish: %w", err)
	}
	for f := range frames {
		if f.err != nil {
			return nil, fmt.Errorf("aiengine: read result: %w", f.err)
		}
		switch f.typ {
		case msgResult:
			final := &TaskResult{}
			if err := gobDecode(f.payload, final); err != nil {
				return nil, err
			}
			final.Losses = append(result.Losses[:0:0], result.Losses...)
			if len(final.Preds) == 0 {
				final.Preds = result.Preds
			}
			return final, nil
		case msgError:
			var msg string
			_ = gobDecode(f.payload, &msg)
			return nil, fmt.Errorf("aiengine: runtime error: %s", msg)
		default:
			return nil, fmt.Errorf("aiengine: unexpected final frame %d", f.typ)
		}
	}
	return nil, fmt.Errorf("aiengine: connection closed before result")
}

// TrainConfig parameterizes a training task.
type TrainConfig struct {
	Name      string // optional model-view name to bind
	BatchSize int
	Window    int
	LR        float64
}

// TrainOutcome reports a completed training task.
type TrainOutcome struct {
	MID        int
	TS         uint64
	Batches    int
	Losses     []float64
	Samples    int
	Duration   time.Duration
	Throughput float64 // samples/sec
}

// Train runs a training task end to end: dispatch, stream, store the model,
// optionally bind a view.
func (e *Engine) Train(spec models.Spec, cfg TrainConfig, src DataSource) (*TrainOutcome, error) {
	conn, err := e.connect()
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	start := time.Now()
	counter := &countingSource{inner: src}
	res, err := RunTask(conn, TaskSpec{
		Kind:      TaskTrain,
		Model:     spec,
		BatchSize: cfg.BatchSize,
		Window:    cfg.Window,
		LR:        cfg.LR,
	}, counter)
	if err != nil {
		return nil, err
	}
	dur := time.Since(start)
	mid := e.Store.Register(cfg.Name, spec, len(res.Weights))
	ts, err := e.Store.SaveFull(mid, res.Weights)
	if err != nil {
		return nil, err
	}
	if cfg.Name != "" {
		if err := e.Store.CreateView(cfg.Name, mid, 0); err != nil {
			return nil, err
		}
	}
	tp := 0.0
	if dur > 0 {
		tp = float64(counter.samples) / dur.Seconds()
	}
	return &TrainOutcome{
		MID: mid, TS: ts,
		Batches: res.Batches, Losses: res.Losses,
		Samples: counter.samples, Duration: dur, Throughput: tp,
	}, nil
}

// Infer runs inference with model version (mid, ts); ts = 0 means latest.
func (e *Engine) Infer(mid int, ts uint64, src DataSource) ([]float64, error) {
	weights, _, err := e.Store.Load(mid, ts)
	if err != nil {
		return nil, err
	}
	spec, err := e.Store.Spec(mid)
	if err != nil {
		return nil, err
	}
	conn, err := e.connect()
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	res, err := RunTask(conn, TaskSpec{
		Kind:        TaskInfer,
		Model:       spec,
		InitWeights: weights,
		Window:      8,
	}, src)
	if err != nil {
		return nil, err
	}
	return res.Preds, nil
}

// FineTune incrementally updates model (mid, ts): layers [0, freezeUpTo)
// stay frozen, the tail trains on the stream, and only the updated layers
// are persisted (models.SavePartial) as a new version.
func (e *Engine) FineTune(mid int, ts uint64, freezeUpTo int, lr float64, src DataSource) (*TrainOutcome, error) {
	weights, _, err := e.Store.Load(mid, ts)
	if err != nil {
		return nil, err
	}
	spec, err := e.Store.Spec(mid)
	if err != nil {
		return nil, err
	}
	conn, err := e.connect()
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	start := time.Now()
	counter := &countingSource{inner: src}
	res, err := RunTask(conn, TaskSpec{
		Kind:        TaskFineTune,
		Model:       spec,
		InitWeights: weights,
		FreezeUpTo:  freezeUpTo,
		LR:          lr,
		Window:      8,
	}, counter)
	if err != nil {
		return nil, err
	}
	updated := make(map[int]nn.LayerWeights)
	for lid := freezeUpTo; lid < len(res.Weights); lid++ {
		if len(res.Weights[lid].Shapes) > 0 {
			updated[lid] = res.Weights[lid]
		}
	}
	newTS, err := e.Store.SavePartial(mid, updated)
	if err != nil {
		return nil, err
	}
	dur := time.Since(start)
	tp := 0.0
	if dur > 0 {
		tp = float64(counter.samples) / dur.Seconds()
	}
	return &TrainOutcome{
		MID: mid, TS: newTS,
		Batches: res.Batches, Losses: res.Losses,
		Samples: counter.samples, Duration: dur, Throughput: tp,
	}, nil
}

type countingSource struct {
	inner   DataSource
	samples int
}

func (c *countingSource) Next() (*Batch, bool) {
	b, ok := c.inner.Next()
	if ok {
		c.samples += b.X.Rows
	}
	return b, ok
}

// TaskManager queues AI tasks and dispatches them to worker goroutines —
// the coordination component of Fig. 2. Each submitted task gets its own
// dispatcher (connection) when executed.
type TaskManager struct {
	tasks chan func()
	wg    sync.WaitGroup
}

// NewTaskManager starts `workers` dispatcher workers.
func NewTaskManager(workers int) *TaskManager {
	if workers < 1 {
		workers = 1
	}
	tm := &TaskManager{tasks: make(chan func(), 64)}
	tm.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer tm.wg.Done()
			for f := range tm.tasks {
				f()
			}
		}()
	}
	return tm
}

// Submit enqueues a task and returns a completion channel.
func (tm *TaskManager) Submit(f func()) <-chan struct{} {
	done := make(chan struct{})
	tm.tasks <- func() {
		defer close(done)
		f()
	}
	return done
}

// Close drains and stops the workers.
func (tm *TaskManager) Close() {
	close(tm.tasks)
	tm.wg.Wait()
}
