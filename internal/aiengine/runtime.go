package aiengine

import (
	"fmt"
	"io"
	"math"
	"net"
	"sync"

	"neurdb/internal/armnet"
	"neurdb/internal/models"
	"neurdb/internal/nn"
)

func mathFloat64bits(f float64) uint64     { return math.Float64bits(f) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }

// Runtime is an AI runtime node: it accepts task connections from
// dispatchers and executes train / inference / fine-tune operators. In the
// paper's architecture these run on external (GPU) nodes; here they run as
// goroutines behind real TCP sockets on localhost, or in-process pipes.
type Runtime struct {
	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}
}

// StartRuntime listens on a localhost TCP port and serves tasks until Stop.
func StartRuntime() (*Runtime, string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", fmt.Errorf("aiengine: runtime listen: %w", err)
	}
	rt := &Runtime{ln: ln, closed: make(chan struct{})}
	rt.wg.Add(1)
	go rt.acceptLoop()
	return rt, ln.Addr().String(), nil
}

func (rt *Runtime) acceptLoop() {
	defer rt.wg.Done()
	for {
		conn, err := rt.ln.Accept()
		if err != nil {
			select {
			case <-rt.closed:
				return
			default:
				return
			}
		}
		rt.wg.Add(1)
		go func() {
			defer rt.wg.Done()
			defer conn.Close()
			ServeTask(conn)
		}()
	}
}

// Stop shuts the runtime down.
func (rt *Runtime) Stop() {
	close(rt.closed)
	rt.ln.Close()
	rt.wg.Wait()
}

// buildModel constructs the model described by a spec.
func buildModel(spec models.Spec) (*armnet.Model, error) {
	switch spec.Arch {
	case "armnet", "":
		return armnet.New(spec.Fields, spec.Vocab, spec.EmbDim, spec.Hidden, spec.Classification, spec.Seed), nil
	default:
		return nil, fmt.Errorf("aiengine: unknown architecture %q", spec.Arch)
	}
}

// ServeTask handles one task connection end-to-end (exported so in-process
// transports can drive it over a net.Pipe).
func ServeTask(conn io.ReadWriter) {
	if err := serveTask(conn); err != nil {
		payload, _ := gobEncode(err.Error())
		_ = writeFrame(conn, msgError, payload)
	}
}

func serveTask(conn io.ReadWriter) error {
	typ, payload, err := readFrame(conn)
	if err != nil {
		return fmt.Errorf("read handshake: %w", err)
	}
	if typ != msgHandshake {
		return fmt.Errorf("expected handshake, got frame type %d", typ)
	}
	var spec TaskSpec
	if err := gobDecode(payload, &spec); err != nil {
		return fmt.Errorf("decode handshake: %w", err)
	}
	// Negotiate streaming parameters: clamp the window to a sane range.
	window := spec.Window
	if window < 1 {
		window = 1
	}
	if window > 1024 {
		window = 1024
	}
	ackPayload, err := gobEncode(HandshakeAck{Window: window, BatchSize: spec.BatchSize})
	if err != nil {
		return err
	}
	if err := writeFrame(conn, msgHandshakeAck, ackPayload); err != nil {
		return err
	}

	model, err := buildModel(spec.Model)
	if err != nil {
		return err
	}
	if len(spec.InitWeights) > 0 {
		if err := model.Restore(spec.InitWeights); err != nil {
			return fmt.Errorf("restore weights: %w", err)
		}
	}
	switch spec.Kind {
	case TaskFineTune:
		model.Net.FreezeUpTo(spec.FreezeUpTo)
	case TaskTrain, TaskInfer:
	default:
		return fmt.Errorf("unknown task kind %q", spec.Kind)
	}
	lr := spec.LR
	if lr == 0 {
		lr = 0.01
	}
	opt := nn.NewAdam(lr)

	result := TaskResult{}
	seq := 0
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			return fmt.Errorf("read batch: %w", err)
		}
		switch typ {
		case msgBatch:
			x, y, err := decodeBatch(payload)
			if err != nil {
				return err
			}
			ack := BatchAck{Seq: seq}
			seq++
			switch spec.Kind {
			case TaskTrain, TaskFineTune:
				if y == nil {
					return fmt.Errorf("training batch without labels")
				}
				ack.Loss = model.TrainBatch(x, y, opt)
				result.Losses = append(result.Losses, ack.Loss)
			case TaskInfer:
				preds := model.Predict(x)
				ack.Preds = append([]float64(nil), preds.Data...)
				result.Preds = append(result.Preds, ack.Preds...)
			}
			result.Batches++
			ackPayload, err := gobEncode(ack)
			if err != nil {
				return err
			}
			if err := writeFrame(conn, msgBatchAck, ackPayload); err != nil {
				return err
			}
		case msgFinish:
			if spec.Kind != TaskInfer {
				result.Weights = model.Snapshot()
			}
			payload, err := gobEncode(result)
			if err != nil {
				return err
			}
			return writeFrame(conn, msgResult, payload)
		default:
			return fmt.Errorf("unexpected frame type %d mid-task", typ)
		}
	}
}
