// Package models implements the paper's layered model storage and model
// manager (Fig. 3): models are stored as per-layer versioned blobs keyed by
// (MID, LID, timestamp). Reconstructing model M_{i,t} picks, for every layer
// slot, the newest version with timestamp ≤ t — so an incremental update
// that fine-tuned only the tail persists only those layers, and consecutive
// versions share the frozen prefix. Model views give tasks stable names
// bound to (MID, optional pinned timestamp).
package models

import (
	"fmt"
	"sort"
	"sync"

	"neurdb/internal/nn"
)

// Spec describes a model architecture so a runtime can rebuild it from the
// handshake alone.
type Spec struct {
	Arch           string // "armnet" | "mlp"
	Fields         int    // categorical fields per sample
	Vocab          int    // embedding vocabulary size
	EmbDim         int
	Hidden         int
	Classification bool
	Seed           int64
}

// layerVersion is one stored snapshot of one layer.
type layerVersion struct {
	ts   uint64
	blob []byte
}

// meta is the models-table entry.
type meta struct {
	mid       int
	name      string
	spec      Spec
	numLayers int
	versions  []uint64 // creation timestamps of full model versions
}

// Store is the model storage engine.
type Store struct {
	mu     sync.RWMutex
	clock  uint64
	nextID int
	byID   map[int]*meta
	layers map[int]map[int][]layerVersion // MID → LID → versions (ts asc)
	views  map[string]View
	bytes  int64
}

// View is a named logical binding to a model version.
type View struct {
	Name string
	MID  int
	// TS pins the view to a version; 0 means "latest".
	TS uint64
}

// NewStore creates an empty model store.
func NewStore() *Store {
	return &Store{
		byID:   make(map[int]*meta),
		layers: make(map[int]map[int][]layerVersion),
		views:  make(map[string]View),
	}
}

// Register creates a model entry and returns its MID.
func (s *Store) Register(name string, spec Spec, numLayers int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	mid := s.nextID
	s.byID[mid] = &meta{mid: mid, name: name, spec: spec, numLayers: numLayers}
	s.layers[mid] = make(map[int][]layerVersion)
	return mid
}

// Spec returns the architecture spec of a model.
func (s *Store) Spec(mid int) (Spec, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.byID[mid]
	if !ok {
		return Spec{}, fmt.Errorf("models: unknown MID %d", mid)
	}
	return m.spec, nil
}

// SaveFull persists every layer at a fresh timestamp (initial training or
// full retraining) and returns the new version timestamp.
func (s *Store) SaveFull(mid int, layers []nn.LayerWeights) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.byID[mid]
	if !ok {
		return 0, fmt.Errorf("models: unknown MID %d", mid)
	}
	if len(layers) != m.numLayers {
		return 0, fmt.Errorf("models: MID %d expects %d layers, got %d", mid, m.numLayers, len(layers))
	}
	s.clock++
	ts := s.clock
	for lid, lw := range layers {
		blob, err := nn.EncodeWeights(lw)
		if err != nil {
			return 0, err
		}
		s.layers[mid][lid] = append(s.layers[mid][lid], layerVersion{ts: ts, blob: blob})
		s.bytes += int64(len(blob))
	}
	m.versions = append(m.versions, ts)
	return ts, nil
}

// SavePartial persists only the given layers at a fresh timestamp — the
// incremental update path: frozen layers are shared with prior versions.
func (s *Store) SavePartial(mid int, updated map[int]nn.LayerWeights) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.byID[mid]
	if !ok {
		return 0, fmt.Errorf("models: unknown MID %d", mid)
	}
	if len(m.versions) == 0 {
		return 0, fmt.Errorf("models: MID %d has no full version to update incrementally", mid)
	}
	if len(updated) == 0 {
		return 0, fmt.Errorf("models: incremental update with no layers")
	}
	s.clock++
	ts := s.clock
	for lid, lw := range updated {
		if lid < 0 || lid >= m.numLayers {
			return 0, fmt.Errorf("models: LID %d out of range for MID %d", lid, mid)
		}
		blob, err := nn.EncodeWeights(lw)
		if err != nil {
			return 0, err
		}
		s.layers[mid][lid] = append(s.layers[mid][lid], layerVersion{ts: ts, blob: blob})
		s.bytes += int64(len(blob))
	}
	m.versions = append(m.versions, ts)
	return ts, nil
}

// Load reconstructs M_{mid,ts}: for each layer slot the newest stored
// version with timestamp ≤ ts (the paper's layer-selection rule). ts = 0
// loads the latest version.
func (s *Store) Load(mid int, ts uint64) ([]nn.LayerWeights, uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.byID[mid]
	if !ok {
		return nil, 0, fmt.Errorf("models: unknown MID %d", mid)
	}
	if len(m.versions) == 0 {
		return nil, 0, fmt.Errorf("models: MID %d has no stored versions", mid)
	}
	if ts == 0 {
		ts = m.versions[len(m.versions)-1]
	}
	out := make([]nn.LayerWeights, m.numLayers)
	for lid := 0; lid < m.numLayers; lid++ {
		versions := s.layers[mid][lid]
		// Last version with ts' <= ts.
		i := sort.Search(len(versions), func(i int) bool { return versions[i].ts > ts }) - 1
		if i < 0 {
			return nil, 0, fmt.Errorf("models: MID %d layer %d has no version ≤ %d", mid, lid, ts)
		}
		lw, err := nn.DecodeWeights(versions[i].blob)
		if err != nil {
			return nil, 0, err
		}
		out[lid] = lw
	}
	return out, ts, nil
}

// Versions returns the version timestamps of a model, ascending.
func (s *Store) Versions(mid int) []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.byID[mid]
	if !ok {
		return nil
	}
	return append([]uint64(nil), m.versions...)
}

// LatestTS returns the newest version timestamp (0 if none).
func (s *Store) LatestTS(mid int) uint64 {
	v := s.Versions(mid)
	if len(v) == 0 {
		return 0
	}
	return v[len(v)-1]
}

// StorageBytes reports total stored blob bytes — the metric that shows
// incremental updates sharing frozen layers instead of duplicating them.
func (s *Store) StorageBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// CreateView binds a name to (mid, ts); ts = 0 tracks the latest version.
func (s *Store) CreateView(name string, mid int, ts uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byID[mid]; !ok {
		return fmt.Errorf("models: unknown MID %d", mid)
	}
	s.views[name] = View{Name: name, MID: mid, TS: ts}
	return nil
}

// ResolveView returns the view binding.
func (s *Store) ResolveView(name string) (View, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.views[name]
	if !ok {
		return View{}, fmt.Errorf("models: unknown model view %q", name)
	}
	return v, nil
}

// FindViewByName reports whether a view exists (used by PREDICT to decide
// between fresh training and reuse + fine-tuning).
func (s *Store) FindViewByName(name string) (View, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.views[name]
	return v, ok
}
