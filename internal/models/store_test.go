package models

import (
	"math/rand"
	"testing"

	"neurdb/internal/nn"
)

func layer(name string, vals ...float64) nn.LayerWeights {
	return nn.LayerWeights{
		Name:   name,
		Shapes: [][2]int{{1, len(vals)}},
		Datas:  [][]float64{vals},
	}
}

func fullModel(a, b, c float64) []nn.LayerWeights {
	return []nn.LayerWeights{layer("l0", a), layer("l1", b), layer("l2", c)}
}

func TestRegisterSaveLoadRoundTrip(t *testing.T) {
	s := NewStore()
	spec := Spec{Arch: "armnet", Fields: 2}
	mid := s.Register("m", spec, 3)
	ts, err := s.SaveFull(mid, fullModel(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	got, loadedTS, err := s.Load(mid, 0)
	if err != nil {
		t.Fatal(err)
	}
	if loadedTS != ts || len(got) != 3 {
		t.Fatalf("ts=%d layers=%d", loadedTS, len(got))
	}
	if got[0].Datas[0][0] != 1 || got[2].Datas[0][0] != 3 {
		t.Fatal("layer payloads wrong")
	}
	gotSpec, err := s.Spec(mid)
	if err != nil || gotSpec.Fields != 2 {
		t.Fatal("spec lost")
	}
}

func TestPaperLayerSelectionRule(t *testing.T) {
	// Reproduce Fig. 3: M1 v1 = {L1..Ln}@t1; fine-tune Ln at t2. M1,t2 must
	// assemble {L1@t1, ..., Ln@t2}, sharing the untouched prefix.
	s := NewStore()
	mid := s.Register("m", Spec{}, 3)
	t1, _ := s.SaveFull(mid, fullModel(10, 20, 30))
	t2, err := s.SavePartial(mid, map[int]nn.LayerWeights{2: layer("l2", 99)})
	if err != nil {
		t.Fatal(err)
	}
	if t2 <= t1 {
		t.Fatal("timestamps must increase")
	}
	// Version t1: original everywhere.
	v1, _, err := s.Load(mid, t1)
	if err != nil {
		t.Fatal(err)
	}
	if v1[2].Datas[0][0] != 30 {
		t.Fatal("old version must keep old head")
	}
	// Version t2: shared prefix, new head.
	v2, _, err := s.Load(mid, t2)
	if err != nil {
		t.Fatal(err)
	}
	if v2[0].Datas[0][0] != 10 || v2[1].Datas[0][0] != 20 || v2[2].Datas[0][0] != 99 {
		t.Fatalf("layer selection wrong: %v", v2)
	}
	// Versions list is ascending.
	vs := s.Versions(mid)
	if len(vs) != 2 || vs[0] != t1 || vs[1] != t2 {
		t.Fatalf("versions: %v", vs)
	}
	if s.LatestTS(mid) != t2 {
		t.Fatal("latest ts wrong")
	}
}

func TestIncrementalStorageSharing(t *testing.T) {
	s := NewStore()
	mid := s.Register("m", Spec{}, 3)
	big := make([]float64, 10_000)
	fullLayers := []nn.LayerWeights{
		{Name: "emb", Shapes: [][2]int{{1, len(big)}}, Datas: [][]float64{big}},
		layer("mid", 1, 2, 3),
		layer("head", 4),
	}
	if _, err := s.SaveFull(mid, fullLayers); err != nil {
		t.Fatal(err)
	}
	afterFull := s.StorageBytes()
	if _, err := s.SavePartial(mid, map[int]nn.LayerWeights{2: layer("head", 5)}); err != nil {
		t.Fatal(err)
	}
	delta := s.StorageBytes() - afterFull
	if delta <= 0 || delta > afterFull/10 {
		t.Fatalf("incremental delta %d vs full %d — prefix not shared", delta, afterFull)
	}
}

func TestStoreErrorPaths(t *testing.T) {
	s := NewStore()
	if _, _, err := s.Load(99, 0); err == nil {
		t.Fatal("unknown mid should error")
	}
	if _, err := s.SaveFull(99, nil); err == nil {
		t.Fatal("save unknown mid should error")
	}
	if _, err := s.Spec(99); err == nil {
		t.Fatal("spec unknown mid should error")
	}
	mid := s.Register("m", Spec{}, 2)
	if _, err := s.SaveFull(mid, fullModel(1, 2, 3)); err == nil {
		t.Fatal("layer-count mismatch should error")
	}
	if _, err := s.SavePartial(mid, map[int]nn.LayerWeights{0: layer("x", 1)}); err == nil {
		t.Fatal("partial save before full save should error")
	}
	if _, _, err := s.Load(mid, 0); err == nil {
		t.Fatal("load with no versions should error")
	}
	if _, err := s.SaveFull(mid, []nn.LayerWeights{layer("a", 1), layer("b", 2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SavePartial(mid, nil); err == nil {
		t.Fatal("empty partial should error")
	}
	if _, err := s.SavePartial(mid, map[int]nn.LayerWeights{9: layer("x", 1)}); err == nil {
		t.Fatal("out-of-range LID should error")
	}
	if s.Versions(99) != nil || s.LatestTS(99) != 0 {
		t.Fatal("unknown mid versions should be empty")
	}
}

func TestViews(t *testing.T) {
	s := NewStore()
	mid := s.Register("m", Spec{}, 1)
	if err := s.CreateView("v", 99, 0); err == nil {
		t.Fatal("view on unknown mid should error")
	}
	if err := s.CreateView("v", mid, 0); err != nil {
		t.Fatal(err)
	}
	v, err := s.ResolveView("v")
	if err != nil || v.MID != mid {
		t.Fatal("resolve failed")
	}
	if _, err := s.ResolveView("nope"); err == nil {
		t.Fatal("unknown view should error")
	}
	if _, ok := s.FindViewByName("v"); !ok {
		t.Fatal("find failed")
	}
	if _, ok := s.FindViewByName("nope"); ok {
		t.Fatal("phantom view")
	}
}

func TestManyVersionsSelection(t *testing.T) {
	s := NewStore()
	mid := s.Register("m", Spec{}, 2)
	r := rand.New(rand.NewSource(1))
	var stamps []uint64
	var headVals []float64
	first, _ := s.SaveFull(mid, []nn.LayerWeights{layer("base", 7), layer("head", 0)})
	stamps = append(stamps, first)
	headVals = append(headVals, 0)
	for i := 1; i <= 20; i++ {
		v := r.Float64()
		ts, err := s.SavePartial(mid, map[int]nn.LayerWeights{1: layer("head", v)})
		if err != nil {
			t.Fatal(err)
		}
		stamps = append(stamps, ts)
		headVals = append(headVals, v)
	}
	// Loading any historical timestamp reconstructs that exact version.
	for i, ts := range stamps {
		got, _, err := s.Load(mid, ts)
		if err != nil {
			t.Fatal(err)
		}
		if got[0].Datas[0][0] != 7 {
			t.Fatal("base layer must always come from the full save")
		}
		if got[1].Datas[0][0] != headVals[i] {
			t.Fatalf("version %d head = %v, want %v", i, got[1].Datas[0][0], headVals[i])
		}
	}
}
