// Package stats maintains per-table, per-column statistics: row counts,
// min/max, approximate distinct counts, and equi-depth histograms. ANALYZE
// rebuilds them; DML maintains them incrementally so the learned query
// optimizer can observe *current* data conditions while the cost-based
// baseline plans on whatever snapshot its last ANALYZE captured — exactly
// the staleness axis the paper's Figure 8 drift experiment exercises.
package stats

import (
	"math"
	"sort"
	"sync"

	"neurdb/internal/rel"
)

// HistogramBuckets is the number of equi-depth buckets per column.
const HistogramBuckets = 32

// ColumnStats summarizes one numeric (or numeric-coercible) column.
type ColumnStats struct {
	Count     int64
	NullCount int64
	Min, Max  float64
	Distinct  int64 // approximate NDV
	// Bounds are the equi-depth bucket upper bounds (len = buckets used).
	// Each bucket holds ~Count/len(Bounds) values.
	Bounds []float64
	// Sum enables mean maintenance under incremental updates.
	Sum float64
}

// TableStats holds statistics for all columns of a table.
type TableStats struct {
	mu       sync.RWMutex
	RowCount int64
	Cols     []ColumnStats
	// Version increments on every rebuild or incremental change batch, so
	// consumers can cheaply detect drift in the stats themselves.
	Version uint64
}

// NewTableStats creates empty statistics for arity columns.
func NewTableStats(arity int) *TableStats {
	return &TableStats{Cols: make([]ColumnStats, arity)}
}

// Snapshot returns a deep copy, used by planners that must keep planning on
// stale statistics (the PostgreSQL baseline under drift).
func (ts *TableStats) Snapshot() *TableStats {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	cp := &TableStats{RowCount: ts.RowCount, Version: ts.Version}
	cp.Cols = make([]ColumnStats, len(ts.Cols))
	for i, c := range ts.Cols {
		cc := c
		cc.Bounds = append([]float64(nil), c.Bounds...)
		cp.Cols[i] = cc
	}
	return cp
}

// Rebuild recomputes all statistics from a full pass over rows (ANALYZE).
func (ts *TableStats) Rebuild(rows []rel.Row) {
	arity := 0
	if len(rows) > 0 {
		arity = len(rows[0])
	} else {
		arity = len(ts.Cols)
	}
	cols := make([]ColumnStats, arity)
	vals := make([][]float64, arity)
	distinct := make([]map[float64]struct{}, arity)
	for i := range vals {
		vals[i] = make([]float64, 0, len(rows))
		distinct[i] = make(map[float64]struct{})
	}
	for _, row := range rows {
		for i := 0; i < arity && i < len(row); i++ {
			if row[i].IsNull() {
				cols[i].NullCount++
				continue
			}
			f := row[i].AsFloat()
			vals[i] = append(vals[i], f)
			if len(distinct[i]) < 1_000_000 {
				distinct[i][f] = struct{}{}
			}
			cols[i].Sum += f
		}
	}
	for i := range cols {
		cols[i].Count = int64(len(vals[i])) + cols[i].NullCount
		cols[i].Distinct = int64(len(distinct[i]))
		if len(vals[i]) == 0 {
			continue
		}
		sort.Float64s(vals[i])
		cols[i].Min = vals[i][0]
		cols[i].Max = vals[i][len(vals[i])-1]
		cols[i].Bounds = equiDepthBounds(vals[i], HistogramBuckets)
	}
	ts.mu.Lock()
	ts.RowCount = int64(len(rows))
	ts.Cols = cols
	ts.Version++
	ts.mu.Unlock()
}

// equiDepthBounds computes bucket upper bounds over sorted values.
func equiDepthBounds(sorted []float64, buckets int) []float64 {
	if len(sorted) == 0 {
		return nil
	}
	if buckets > len(sorted) {
		buckets = len(sorted)
	}
	bounds := make([]float64, buckets)
	for b := 0; b < buckets; b++ {
		idx := (b + 1) * len(sorted) / buckets
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		} else if idx > 0 {
			idx--
		}
		bounds[b] = sorted[idx]
	}
	return bounds
}

// NoteInsert incrementally folds one row into the statistics.
func (ts *TableStats) NoteInsert(row rel.Row) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.Version++
	ts.noteInsertLocked(row)
}

// NoteInsertBatch folds a batch of inserted rows into the statistics under
// one lock acquisition and one Version bump (a Version tick marks a change
// batch, not a row).
func (ts *TableStats) NoteInsertBatch(rows []rel.Row) {
	if len(rows) == 0 {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.Version++
	for _, row := range rows {
		ts.noteInsertLocked(row)
	}
}

func (ts *TableStats) noteInsertLocked(row rel.Row) {
	ts.RowCount++
	for i := 0; i < len(ts.Cols) && i < len(row); i++ {
		c := &ts.Cols[i]
		if row[i].IsNull() {
			c.NullCount++
			c.Count++
			continue
		}
		f := row[i].AsFloat()
		if c.Count == c.NullCount { // first non-null value
			c.Min, c.Max = f, f
		} else {
			if f < c.Min {
				c.Min = f
			}
			if f > c.Max {
				c.Max = f
			}
		}
		c.Count++
		c.Sum += f
	}
}

// NoteDelete incrementally removes one row's contribution (approximate: min,
// max and histogram are not shrunk — matching real systems, which only fix
// them on ANALYZE).
func (ts *TableStats) NoteDelete(row rel.Row) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.Version++
	ts.noteDeleteLocked(row)
}

// NoteDeleteBatch removes a batch of deleted rows' contributions under one
// lock acquisition and one Version bump.
func (ts *TableStats) NoteDeleteBatch(rows []rel.Row) {
	if len(rows) == 0 {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.Version++
	for _, row := range rows {
		ts.noteDeleteLocked(row)
	}
}

func (ts *TableStats) noteDeleteLocked(row rel.Row) {
	if ts.RowCount > 0 {
		ts.RowCount--
	}
	for i := 0; i < len(ts.Cols) && i < len(row); i++ {
		c := &ts.Cols[i]
		if c.Count > 0 {
			c.Count--
		}
		if row[i].IsNull() {
			if c.NullCount > 0 {
				c.NullCount--
			}
		} else {
			c.Sum -= row[i].AsFloat()
		}
	}
}

// NoteUpdate folds an update as delete+insert on the changed columns.
func (ts *TableStats) NoteUpdate(oldRow, newRow rel.Row) {
	ts.NoteDelete(oldRow)
	ts.NoteInsert(newRow)
}

// NoteUpdateBatch folds a batch of updates (aligned old/new slices) under
// one lock acquisition and one Version bump.
func (ts *TableStats) NoteUpdateBatch(oldRows, newRows []rel.Row) {
	if len(oldRows) == 0 {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.Version++
	for i, old := range oldRows {
		ts.noteDeleteLocked(old)
		ts.noteInsertLocked(newRows[i])
	}
}

// Rows returns the current row-count estimate.
func (ts *TableStats) Rows() int64 {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	return ts.RowCount
}

// Col returns a copy of column i's statistics.
func (ts *TableStats) Col(i int) ColumnStats {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	if i < 0 || i >= len(ts.Cols) {
		return ColumnStats{}
	}
	c := ts.Cols[i]
	c.Bounds = append([]float64(nil), c.Bounds...)
	return c
}

// SelectivityEq estimates the selectivity of "col = v".
func (ts *TableStats) SelectivityEq(col int, v float64) float64 {
	c := ts.Col(col)
	if c.Count == 0 || c.Distinct == 0 {
		return 0.1
	}
	if v < c.Min || v > c.Max {
		return 1.0 / float64(max64(c.Count, 1)) // likely absent
	}
	return 1.0 / float64(c.Distinct)
}

// SelectivityRange estimates the selectivity of lo <= col <= hi using the
// equi-depth histogram (open bounds use ±Inf).
func (ts *TableStats) SelectivityRange(col int, lo, hi float64) float64 {
	c := ts.Col(col)
	if c.Count == 0 {
		return 0.3
	}
	if len(c.Bounds) == 0 {
		// Uniformity fallback over [Min, Max].
		width := c.Max - c.Min
		if width <= 0 {
			if lo <= c.Min && c.Min <= hi {
				return 1
			}
			return 0
		}
		l := math.Max(lo, c.Min)
		h := math.Min(hi, c.Max)
		if h < l {
			return 0
		}
		return (h - l) / width
	}
	n := float64(len(c.Bounds))
	frac := (bucketPosition(c, hi, true) - bucketPosition(c, lo, false)) / n
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return frac
}

// bucketPosition returns the fractional bucket index of value v — roughly,
// how many buckets of mass lie below v. For an upper bound, v at or above
// Max covers all buckets; for a lower bound, v at or below Min covers none.
func bucketPosition(c ColumnStats, v float64, upper bool) float64 {
	n := float64(len(c.Bounds))
	if upper {
		if math.IsInf(v, 1) || v >= c.Max {
			return n
		}
		if v < c.Min {
			return 0
		}
	} else {
		if math.IsInf(v, -1) || v <= c.Min {
			return 0
		}
		if v > c.Max {
			return n
		}
	}
	lo := c.Min
	for i, ub := range c.Bounds {
		if v <= ub {
			width := ub - lo
			if width <= 0 {
				return float64(i + 1)
			}
			return float64(i) + (v-lo)/width
		}
		lo = ub
	}
	return n
}

// Divergence measures how far these statistics have drifted from a snapshot:
// a symmetric histogram-mass difference in [0, 2] plus relative row-count
// change. The monitor uses it to decide when the cost baseline's stats are
// stale and when to refresh learned-model conditions.
func Divergence(fresh, stale *TableStats) float64 {
	fresh.mu.RLock()
	defer fresh.mu.RUnlock()
	stale.mu.RLock()
	defer stale.mu.RUnlock()
	var d float64
	if fresh.RowCount+stale.RowCount > 0 {
		d += math.Abs(float64(fresh.RowCount-stale.RowCount)) /
			float64(max64(fresh.RowCount+stale.RowCount, 1))
	}
	n := len(fresh.Cols)
	if len(stale.Cols) < n {
		n = len(stale.Cols)
	}
	for i := 0; i < n; i++ {
		f, s := fresh.Cols[i], stale.Cols[i]
		if f.Count == 0 || s.Count == 0 {
			continue
		}
		// Compare means and ranges, scale-normalized.
		fm := f.Sum / float64(max64(f.Count-f.NullCount, 1))
		sm := s.Sum / float64(max64(s.Count-s.NullCount, 1))
		scale := math.Max(math.Abs(fm)+math.Abs(sm), 1e-9)
		d += math.Abs(fm-sm) / scale / float64(n)
		rangeF := f.Max - f.Min
		rangeS := s.Max - s.Min
		rscale := math.Max(rangeF+rangeS, 1e-9)
		d += math.Abs(rangeF-rangeS) / rscale / float64(n)
	}
	return d
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
