package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"neurdb/internal/rel"
)

func uniformRows(n int, arity int, r *rand.Rand) []rel.Row {
	rows := make([]rel.Row, n)
	for i := range rows {
		row := make(rel.Row, arity)
		for j := range row {
			row[j] = rel.Float(r.Float64() * 100)
		}
		rows[i] = row
	}
	return rows
}

func TestRebuildBasics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	rows := uniformRows(10_000, 2, r)
	ts := NewTableStats(2)
	ts.Rebuild(rows)
	if ts.Rows() != 10_000 {
		t.Fatalf("rows = %d", ts.Rows())
	}
	c := ts.Col(0)
	if c.Min < 0 || c.Max > 100 || c.Min > 1 || c.Max < 99 {
		t.Fatalf("min/max = %v/%v", c.Min, c.Max)
	}
	if len(c.Bounds) != HistogramBuckets {
		t.Fatalf("buckets = %d", len(c.Bounds))
	}
	if c.Distinct < 9000 {
		t.Fatalf("ndv = %d", c.Distinct)
	}
}

func TestRebuildWithNulls(t *testing.T) {
	rows := []rel.Row{
		{rel.Int(1)}, {rel.Null()}, {rel.Int(3)}, {rel.Null()}, {rel.Int(5)},
	}
	ts := NewTableStats(1)
	ts.Rebuild(rows)
	c := ts.Col(0)
	if c.NullCount != 2 || c.Count != 5 {
		t.Fatalf("null=%d count=%d", c.NullCount, c.Count)
	}
	if c.Min != 1 || c.Max != 5 || c.Distinct != 3 {
		t.Fatalf("col stats: %+v", c)
	}
}

func TestRebuildEmpty(t *testing.T) {
	ts := NewTableStats(2)
	ts.Rebuild(nil)
	if ts.Rows() != 0 {
		t.Fatal("empty rebuild rows")
	}
	if got := ts.SelectivityEq(0, 5); got != 0.1 {
		t.Fatalf("empty eq selectivity = %v", got)
	}
	if got := ts.SelectivityRange(0, 0, 1); got != 0.3 {
		t.Fatalf("empty range selectivity = %v", got)
	}
	// Out-of-range column index.
	if c := ts.Col(99); c.Count != 0 {
		t.Fatal("out-of-range col should be zero")
	}
}

func TestSelectivityEq(t *testing.T) {
	rows := make([]rel.Row, 1000)
	for i := range rows {
		rows[i] = rel.Row{rel.Int(int64(i % 10))} // 10 distinct values
	}
	ts := NewTableStats(1)
	ts.Rebuild(rows)
	if got := ts.SelectivityEq(0, 5); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("eq selectivity = %v, want 0.1", got)
	}
	// Out-of-range probe.
	if got := ts.SelectivityEq(0, 999); got > 0.01 {
		t.Fatalf("oor selectivity = %v", got)
	}
}

func TestSelectivityRangeUniform(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	rows := uniformRows(20_000, 1, r)
	ts := NewTableStats(1)
	ts.Rebuild(rows)
	// Uniform[0,100]: P(25 <= x <= 75) ≈ 0.5
	got := ts.SelectivityRange(0, 25, 75)
	if math.Abs(got-0.5) > 0.05 {
		t.Fatalf("range selectivity = %v, want ~0.5", got)
	}
	// Open bounds.
	if got := ts.SelectivityRange(0, math.Inf(-1), math.Inf(1)); math.Abs(got-1) > 1e-9 {
		t.Fatalf("full range = %v", got)
	}
	if got := ts.SelectivityRange(0, math.Inf(-1), 50); math.Abs(got-0.5) > 0.05 {
		t.Fatalf("half range = %v", got)
	}
	// Empty range.
	if got := ts.SelectivityRange(0, 70, 30); got != 0 {
		t.Fatalf("inverted range = %v", got)
	}
}

func TestSelectivityRangeSkewed(t *testing.T) {
	// 90% of mass at small values: equi-depth histogram should capture it.
	rows := make([]rel.Row, 10_000)
	r := rand.New(rand.NewSource(3))
	for i := range rows {
		if i < 9000 {
			rows[i] = rel.Row{rel.Float(r.Float64())} // [0,1)
		} else {
			rows[i] = rel.Row{rel.Float(100 + r.Float64()*900)} // [100,1000)
		}
	}
	ts := NewTableStats(1)
	ts.Rebuild(rows)
	got := ts.SelectivityRange(0, 0, 1.5)
	if math.Abs(got-0.9) > 0.08 {
		t.Fatalf("skewed selectivity = %v, want ~0.9", got)
	}
	// A uniformity assumption would have said ~0.0015 — the histogram must
	// beat it by orders of magnitude.
	if got < 0.5 {
		t.Fatal("histogram failed to capture skew")
	}
}

func TestIncrementalMaintenance(t *testing.T) {
	ts := NewTableStats(1)
	ts.Rebuild([]rel.Row{{rel.Int(10)}, {rel.Int(20)}})
	ts.NoteInsert(rel.Row{rel.Int(30)})
	if ts.Rows() != 3 {
		t.Fatalf("rows after insert = %d", ts.Rows())
	}
	c := ts.Col(0)
	if c.Max != 30 || c.Min != 10 {
		t.Fatalf("minmax after insert: %v %v", c.Min, c.Max)
	}
	ts.NoteInsert(rel.Row{rel.Int(5)})
	if ts.Col(0).Min != 5 {
		t.Fatal("min not updated")
	}
	ts.NoteDelete(rel.Row{rel.Int(30)})
	if ts.Rows() != 3 {
		t.Fatalf("rows after delete = %d", ts.Rows())
	}
	ts.NoteUpdate(rel.Row{rel.Int(5)}, rel.Row{rel.Int(50)})
	if ts.Col(0).Max != 50 {
		t.Fatal("update not folded")
	}
	// Null insert/delete paths.
	ts.NoteInsert(rel.Row{rel.Null()})
	if ts.Col(0).NullCount != 1 {
		t.Fatal("null insert not counted")
	}
	ts.NoteDelete(rel.Row{rel.Null()})
	if ts.Col(0).NullCount != 0 {
		t.Fatal("null delete not counted")
	}
	// First non-null insert into an empty stats object initializes min/max.
	ts2 := NewTableStats(1)
	ts2.NoteInsert(rel.Row{rel.Null()})
	ts2.NoteInsert(rel.Row{rel.Int(-7)})
	if c := ts2.Col(0); c.Min != -7 || c.Max != -7 {
		t.Fatalf("first value minmax: %+v", c)
	}
}

func TestVersionIncrements(t *testing.T) {
	ts := NewTableStats(1)
	v0 := ts.Version
	ts.Rebuild([]rel.Row{{rel.Int(1)}})
	ts.NoteInsert(rel.Row{rel.Int(2)})
	if ts.Version <= v0+1 {
		t.Fatal("version not incrementing")
	}
}

func TestSnapshotIsIsolated(t *testing.T) {
	ts := NewTableStats(1)
	ts.Rebuild([]rel.Row{{rel.Int(1)}, {rel.Int(2)}})
	snap := ts.Snapshot()
	ts.NoteInsert(rel.Row{rel.Int(100)})
	if snap.Rows() != 2 {
		t.Fatal("snapshot affected by later insert")
	}
	if snap.Col(0).Max == 100 {
		t.Fatal("snapshot shares column state")
	}
}

func TestDivergenceGrowsWithDrift(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	base := uniformRows(5000, 2, r)
	ts := NewTableStats(2)
	ts.Rebuild(base)
	snap := ts.Snapshot()
	if d := Divergence(ts, snap); d > 1e-9 {
		t.Fatalf("self-divergence = %v", d)
	}
	// Mild drift: insert a few shifted rows.
	for i := 0; i < 500; i++ {
		ts.NoteInsert(rel.Row{rel.Float(200 + r.Float64()*10), rel.Float(50)})
	}
	mild := Divergence(ts, snap)
	if mild <= 0 {
		t.Fatal("mild drift should produce positive divergence")
	}
	// Severe drift: shift the distribution far away.
	for i := 0; i < 5000; i++ {
		ts.NoteInsert(rel.Row{rel.Float(10_000 + r.Float64()*100), rel.Float(-500)})
	}
	severe := Divergence(ts, snap)
	if severe <= mild {
		t.Fatalf("severe (%v) should exceed mild (%v)", severe, mild)
	}
}

func TestEquiDepthBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(500)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.NormFloat64() * 10
		}
		rows := make([]rel.Row, n)
		for i, v := range vals {
			rows[i] = rel.Row{rel.Float(v)}
		}
		ts := NewTableStats(1)
		ts.Rebuild(rows)
		c := ts.Col(0)
		// Bounds are sorted and last bound is the max.
		for i := 1; i < len(c.Bounds); i++ {
			if c.Bounds[i] < c.Bounds[i-1] {
				return false
			}
		}
		if len(c.Bounds) > 0 && c.Bounds[len(c.Bounds)-1] != c.Max {
			return false
		}
		// Selectivity over the full range is 1.
		sel := ts.SelectivityRange(0, c.Min, c.Max)
		return sel > 0.9 && sel <= 1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectivityMonotoneProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	rows := uniformRows(5000, 1, r)
	ts := NewTableStats(1)
	ts.Rebuild(rows)
	prev := 0.0
	for hi := 0.0; hi <= 100; hi += 5 {
		s := ts.SelectivityRange(0, 0, hi)
		if s+1e-9 < prev {
			t.Fatalf("selectivity not monotone at hi=%v: %v < %v", hi, s, prev)
		}
		prev = s
	}
}

func TestConstantColumn(t *testing.T) {
	rows := make([]rel.Row, 100)
	for i := range rows {
		rows[i] = rel.Row{rel.Int(7)}
	}
	ts := NewTableStats(1)
	ts.Rebuild(rows)
	if got := ts.SelectivityRange(0, 7, 7); got < 0.9 {
		t.Fatalf("constant column point-range selectivity = %v", got)
	}
	if got := ts.SelectivityRange(0, 8, 9); got > 0.1 {
		t.Fatalf("constant column miss selectivity = %v", got)
	}
}

// TestBatchNotesMatchPerRowNotes: the batched DML-maintenance entry points
// must leave statistics identical to the per-row ones (modulo Version,
// which ticks once per batch instead of once per row).
func TestBatchNotesMatchPerRowNotes(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	mkRow := func(i int) rel.Row {
		v := rel.Float(r.Float64() * 50)
		if i%7 == 0 {
			v = rel.Null()
		}
		return rel.Row{rel.Int(int64(i)), v}
	}
	var ins []rel.Row
	for i := 0; i < 500; i++ {
		ins = append(ins, mkRow(i))
	}
	var olds, news []rel.Row
	for i := 0; i < 200; i++ {
		olds = append(olds, ins[i])
		news = append(news, rel.Row{ins[i][0], rel.Float(999)})
	}

	a, b := NewTableStats(2), NewTableStats(2)
	a.NoteInsertBatch(ins)
	for _, row := range ins {
		b.NoteInsert(row)
	}
	a.NoteUpdateBatch(olds, news)
	for i := range olds {
		b.NoteUpdate(olds[i], news[i])
	}
	a.NoteDeleteBatch(ins[300:400])
	for _, row := range ins[300:400] {
		b.NoteDelete(row)
	}

	if a.Rows() != b.Rows() {
		t.Fatalf("row counts diverge: batch %d per-row %d", a.Rows(), b.Rows())
	}
	for i := 0; i < 2; i++ {
		ca, cb := a.Col(i), b.Col(i)
		if ca.Count != cb.Count || ca.NullCount != cb.NullCount ||
			ca.Min != cb.Min || ca.Max != cb.Max || ca.Sum != cb.Sum {
			t.Fatalf("col %d diverges: batch %+v per-row %+v", i, ca, cb)
		}
	}
	// One Version tick per batch: 3 batches on a, 800 per-row ticks on b.
	if a.Version != 3 {
		t.Fatalf("batch Version = %d, want 3", a.Version)
	}
}

// TestBatchNotesEmptyAreNoOps: empty batches must not bump Version.
func TestBatchNotesEmptyAreNoOps(t *testing.T) {
	ts := NewTableStats(1)
	ts.NoteInsertBatch(nil)
	ts.NoteDeleteBatch(nil)
	ts.NoteUpdateBatch(nil, nil)
	if ts.Version != 0 || ts.Rows() != 0 {
		t.Fatalf("empty batch mutated stats: v=%d rows=%d", ts.Version, ts.Rows())
	}
}
