package wire

import (
	"bytes"
	"errors"
	"math"
	"net"
	"reflect"
	"strings"
	"testing"

	"neurdb/internal/rel"
)

// roundTrip encodes m into a frame, reads it back through a Reader, and
// decodes it.
func roundTrip(t *testing.T, m Msg) Msg {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteMsg(m); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	r := NewReader(&buf, 0)
	op, payload, err := r.ReadFrame()
	if err != nil {
		t.Fatalf("read frame: %v", err)
	}
	if op != m.op() {
		t.Fatalf("opcode %q, want %q", byte(op), byte(m.op()))
	}
	out, err := Decode(op, payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

func TestMessageRoundTrip(t *testing.T) {
	msgs := []Msg{
		&Startup{Version: Version, Options: map[string]string{"application_name": "test", "fetch": "256"}},
		&Startup{Version: Version},
		&Query{SQL: "SELECT * FROM t WHERE a = 'semi;colon'"},
		&Parse{Name: "s1", SQL: "SELECT val FROM kv WHERE id = ?"},
		&Parse{Name: "", SQL: ""},
		&Bind{Portal: "p", Stmt: "s1", Args: []rel.Value{
			rel.Int(-42), rel.Float(math.Pi), rel.Text("héllo"), rel.Bool(true), rel.Null(),
			rel.Float(math.Inf(-1)), rel.Text(""), rel.Int(math.MaxInt64), rel.Bool(false),
		}},
		&Bind{Portal: "", Stmt: ""},
		&Execute{Portal: "p", MaxRows: 1024},
		&Execute{Portal: "", MaxRows: 0},
		&Describe{Kind: KindStatement, Name: "s1"},
		&Describe{Kind: KindPortal, Name: ""},
		&Close{Kind: KindPortal, Name: "p"},
		&Sync{},
		&Terminate{},
		&Cancel{ConnID: 7, Secret: 0xdeadbeefcafef00d},
		&Ready{},
		&Error{Code: CodeError, Message: "neurdb: no table \"missing\""},
		&ParameterStatus{Key: "server_version", Value: "neurdb 5"},
		&BackendKeyData{ConnID: 1, Secret: 2},
		&ParseComplete{NumParams: 3},
		&BindComplete{},
		&CloseComplete{},
		&RowDescription{Cols: []ColDesc{{Name: "id", Type: rel.TypeInt}, {Name: "note", Type: rel.TypeText}, {Name: "x", Type: rel.TypeNull}}},
		&RowDescription{},
		&NoData{},
		&CommandComplete{Tag: "INSERT 3", Affected: 3},
		&CommandComplete{Tag: "", Affected: 0},
		&Suspended{},
	}
	for _, m := range msgs {
		out := roundTrip(t, m)
		if !reflect.DeepEqual(m, out) {
			t.Errorf("round trip %T: got %#v, want %#v", m, out, m)
		}
	}
}

func TestDataBatchRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		b    *DataBatch
	}{
		{"all types with NULLs", &DataBatch{NumCols: 5, Rows: []rel.Row{
			{rel.Int(1), rel.Float(2.5), rel.Text("a"), rel.Bool(true), rel.Null()},
			{rel.Null(), rel.Null(), rel.Null(), rel.Null(), rel.Null()},
			{rel.Int(-9), rel.Float(-0.0), rel.Text(strings.Repeat("x", 1000)), rel.Bool(false), rel.Int(0)},
		}}},
		{"empty batch", &DataBatch{NumCols: 3}},
		{"zero columns", &DataBatch{NumCols: 0}},
		{"single cell", &DataBatch{NumCols: 1, Rows: []rel.Row{{rel.Text("only")}}}},
	}
	for _, tc := range cases {
		out := roundTrip(t, tc.b).(*DataBatch)
		if out.NumCols != tc.b.NumCols {
			t.Errorf("%s: ncols %d, want %d", tc.name, out.NumCols, tc.b.NumCols)
		}
		if len(out.Rows) != len(tc.b.Rows) {
			t.Fatalf("%s: %d rows, want %d", tc.name, len(out.Rows), len(tc.b.Rows))
		}
		for i := range tc.b.Rows {
			if !reflect.DeepEqual(out.Rows[i], tc.b.Rows[i]) {
				t.Errorf("%s: row %d = %v, want %v", tc.name, i, out.Rows[i], tc.b.Rows[i])
			}
		}
	}
}

// TestDataBatchColumnMajor pins the wire layout: the encoded payload holds
// column 0's values contiguously before column 1's. PROTOCOL.md documents
// this ordering for non-Go clients, so a layout change must fail loudly.
func TestDataBatchColumnMajor(t *testing.T) {
	b := &DataBatch{NumCols: 2, Rows: []rel.Row{
		{rel.Text("a0"), rel.Text("b0")},
		{rel.Text("a1"), rel.Text("b1")},
	}}
	payload := b.encode(nil)
	order := []string{"a0", "a1", "b0", "b1"}
	pos := 6 // u16 ncols + u32 nrows
	for _, want := range order {
		v, used, err := rel.DecodeValue(payload[pos:])
		if err != nil {
			t.Fatalf("decode at %d: %v", pos, err)
		}
		if v.S != want {
			t.Fatalf("value at offset %d = %q, want %q (layout not column-major)", pos, v.S, want)
		}
		pos += used
	}
}

func TestOversizedFrameDiscardedAndStreamContinues(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteMsg(&Query{SQL: strings.Repeat("x", 4096)}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMsg(&Sync{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf, 1024) // payload ceiling below the query's size
	op, _, err := r.ReadFrame()
	var tooLarge *FrameTooLargeError
	if !errors.As(err, &tooLarge) {
		t.Fatalf("err = %v, want FrameTooLargeError", err)
	}
	if op != OpQuery || tooLarge.Op != OpQuery {
		t.Fatalf("oversized frame opcode %q/%q, want %q", byte(op), byte(tooLarge.Op), byte(OpQuery))
	}
	// The payload was discarded: the next frame decodes normally.
	op, payload, err := r.ReadFrame()
	if err != nil {
		t.Fatalf("frame after oversized: %v", err)
	}
	if op != OpSync || len(payload) != 0 {
		t.Fatalf("frame after oversized = %q (%d bytes), want Sync", byte(op), len(payload))
	}
}

func TestCorruptFrameLengthIsFatal(t *testing.T) {
	frame := []byte{byte(OpQuery), 0xff, 0xff, 0xff, 0xff} // ~4 GiB claimed
	r := NewReader(bytes.NewReader(frame), 0)
	if _, _, err := r.ReadFrame(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestTruncatedPayloads(t *testing.T) {
	// Every message type must reject a truncated payload instead of
	// panicking or silently zero-filling.
	msgs := []Msg{
		&Startup{Version: Version, Options: map[string]string{"k": "v"}},
		&Query{SQL: "SELECT 1"},
		&Parse{Name: "s", SQL: "SELECT ?"},
		&Bind{Portal: "p", Stmt: "s", Args: []rel.Value{rel.Int(1)}},
		&Execute{Portal: "p", MaxRows: 10},
		&Describe{Kind: KindStatement, Name: "s"},
		&Cancel{ConnID: 1, Secret: 2},
		&Error{Code: CodeError, Message: "m"},
		&RowDescription{Cols: []ColDesc{{Name: "c", Type: rel.TypeInt}}},
		&DataBatch{NumCols: 1, Rows: []rel.Row{{rel.Int(5)}}},
		&CommandComplete{Tag: "SELECT", Affected: 1},
	}
	for _, m := range msgs {
		full := m.encode(nil)
		for cut := 0; cut < len(full); cut++ {
			if _, err := Decode(m.op(), full[:cut]); err == nil {
				t.Errorf("%T: truncation at %d/%d decoded without error", m, cut, len(full))
			}
		}
	}
}

// TestDataBatchBogusCardinalityRejected pins the allocation guard: a tiny
// frame claiming ~4 billion rows must fail before make() runs, not OOM the
// decoder.
func TestDataBatchBogusCardinalityRejected(t *testing.T) {
	payload := appendU16(nil, 2)                // 2 cols
	payload = appendU32(payload, 0xFFFF_FFFF)   // absurd row count
	payload = append(payload, 0, 0, 0, 0, 0, 0) // a few stray bytes
	if _, err := Decode(OpDataBatch, payload); err == nil {
		t.Fatal("bogus DataBatch cardinality decoded without error")
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	payload := (&Sync{}).encode(nil)
	payload = append(payload, 0x01)
	if _, err := Decode(OpSync, payload); err == nil {
		t.Fatal("trailing bytes decoded without error")
	}
}

func TestUnknownOpcode(t *testing.T) {
	if _, err := Decode(Op('?'), nil); err == nil {
		t.Fatal("unknown opcode decoded without error")
	}
}

// TestFramesOverPipe exercises the reader/writer over a real byte stream
// with multiple frames in flight.
func TestFramesOverPipe(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	go func() {
		w := NewWriter(client)
		w.WriteMsg(&Parse{Name: "s1", SQL: "SELECT id FROM t WHERE id = ?"})
		w.WriteMsg(&Bind{Portal: "", Stmt: "s1", Args: []rel.Value{rel.Int(3)}})
		w.WriteMsg(&Execute{Portal: "", MaxRows: 100})
		w.WriteMsg(&Sync{})
		w.Flush()
	}()

	r := NewReader(server, 0)
	want := []Op{OpParse, OpBind, OpExecute, OpSync}
	for _, wop := range want {
		op, payload, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if op != wop {
			t.Fatalf("opcode %q, want %q", byte(op), byte(wop))
		}
		if _, err := Decode(op, payload); err != nil {
			t.Fatalf("decode %q: %v", byte(op), err)
		}
	}
}

func TestVersionHelpers(t *testing.T) {
	if VersionMajor(Version) != 1 || VersionMinor(Version) != 0 {
		t.Fatalf("version = %d.%d, want 1.0", VersionMajor(Version), VersionMinor(Version))
	}
	if FormatVersion(Version) != "1.0" {
		t.Fatalf("FormatVersion = %q", FormatVersion(Version))
	}
}
