// Package wire implements NeurDB's binary client/server protocol: a
// length-prefixed frame layer plus typed message codecs, in the style of
// PostgreSQL's extended query protocol. A connection carries a stream of
// frames, each `[1-byte opcode][4-byte big-endian payload length][payload]`;
// the payload layout per opcode is defined in messages.go and specified for
// non-Go implementors in docs/PROTOCOL.md.
//
// The frame layer enforces a maximum payload size. An oversized frame is
// not a framing failure: the reader discards the payload (the stream stays
// synchronized) and returns *FrameTooLargeError so the server can answer
// with a clean Error message instead of dropping the connection. Only a
// frame whose claimed length exceeds AbsoluteMaxFrame — almost certainly
// stream corruption — is treated as fatal.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the protocol version this package speaks, as major<<16|minor.
// The Startup message carries the client's version; the server accepts any
// minor revision of a major version it knows.
const Version uint32 = 0x0001_0000 // 1.0

// VersionMajor extracts the major component of a protocol version.
func VersionMajor(v uint32) uint16 { return uint16(v >> 16) }

// VersionMinor extracts the minor component of a protocol version.
func VersionMinor(v uint32) uint16 { return uint16(v) }

// FormatVersion renders a protocol version as "major.minor".
func FormatVersion(v uint32) string {
	return fmt.Sprintf("%d.%d", VersionMajor(v), VersionMinor(v))
}

const (
	// DefaultMaxFrame is the default per-frame payload ceiling (16 MiB):
	// large enough for bulk multi-row INSERT statements and full data
	// batches, small enough that a single frame cannot exhaust memory.
	DefaultMaxFrame = 16 << 20
	// AbsoluteMaxFrame is the hard ceiling beyond which a frame length is
	// treated as stream corruption rather than an oversized request.
	AbsoluteMaxFrame = 256 << 20
)

// Op identifies a frame's message type. Client- and server-sent opcodes
// share one byte space with no overlaps, so protocol dumps are unambiguous.
//
//lint:closedenum
type Op byte

// Client-sent opcodes.
const (
	OpStartup   Op = 'U' // protocol version + options; first frame on a connection
	OpQuery     Op = 'Q' // simple query: one SQL statement, no parameters
	OpParse     Op = 'P' // prepare a named statement
	OpBind      Op = 'B' // bind parameter values to a portal
	OpExecute   Op = 'E' // run a portal, optionally bounded by a fetch size
	OpDescribe  Op = 'D' // describe a statement or portal
	OpClose     Op = 'C' // close a statement or portal
	OpSync      Op = 'S' // end of an extended-query sequence
	OpTerminate Op = 'X' // clean connection shutdown
	OpCancel    Op = 'K' // cancel request; first frame on a fresh connection
)

// Server-sent opcodes.
const (
	OpReady           Op = 'Z' // ready for the next command sequence
	OpError           Op = '!' // statement or protocol error
	OpParameterStatus Op = 'p' // server-reported setting (startup)
	OpBackendKeyData  Op = 'k' // cancellation credentials (startup)
	OpParseComplete   Op = '1'
	OpBindComplete    Op = '2'
	OpCloseComplete   Op = '3'
	OpRowDescription  Op = 'T' // result column names and types
	OpNoData          Op = 'n' // statement produces no result rows
	OpDataBatch       Op = 'd' // one executor batch of rows, column-major
	OpCommandComplete Op = 'c' // statement finished: tag + affected count
	OpSuspended       Op = 's' // portal suspended at the fetch-size bound
)

// FrameTooLargeError reports a frame whose payload exceeded the reader's
// limit. The payload has been discarded and the stream remains usable.
type FrameTooLargeError struct {
	Op   Op
	Size uint32
	Max  int
}

func (e *FrameTooLargeError) Error() string {
	return fmt.Sprintf("wire: frame %q payload %d bytes exceeds limit %d", byte(e.Op), e.Size, e.Max)
}

// ErrCorrupt marks a frame length beyond AbsoluteMaxFrame; the connection
// must be dropped because the stream can no longer be trusted.
var ErrCorrupt = errors.New("wire: frame length exceeds absolute maximum; stream corrupt")

// Reader decodes frames from a connection.
type Reader struct {
	r        *bufio.Reader
	maxFrame int
	buf      []byte // reused payload buffer
}

// NewReader wraps r with the given payload ceiling (0 = DefaultMaxFrame).
func NewReader(r io.Reader, maxFrame int) *Reader {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if maxFrame > AbsoluteMaxFrame {
		maxFrame = AbsoluteMaxFrame
	}
	return &Reader{r: bufio.NewReaderSize(r, 64<<10), maxFrame: maxFrame}
}

// Buffered reports the bytes already received but not yet consumed. A
// server uses it to flush pending responses only when the next ReadFrame
// would actually block, so a pipelined command sequence costs one socket
// write instead of one per message.
func (r *Reader) Buffered() int { return r.r.Buffered() }

// ReadFrame reads the next frame. The returned payload aliases an internal
// buffer valid until the next call. An oversized frame is discarded and
// reported as *FrameTooLargeError; the caller may keep reading.
func (r *Reader) ReadFrame() (Op, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return 0, nil, err
	}
	op := Op(hdr[0])
	size := binary.BigEndian.Uint32(hdr[1:])
	if size > AbsoluteMaxFrame {
		return op, nil, ErrCorrupt
	}
	if int(size) > r.maxFrame {
		if _, err := io.CopyN(io.Discard, r.r, int64(size)); err != nil {
			return op, nil, err
		}
		return op, nil, &FrameTooLargeError{Op: op, Size: size, Max: r.maxFrame}
	}
	if cap(r.buf) < int(size) {
		r.buf = make([]byte, size)
	}
	payload := r.buf[:size]
	if _, err := io.ReadFull(r.r, payload); err != nil {
		return op, nil, err
	}
	return op, payload, nil
}

// Writer encodes frames onto a connection. Frames are buffered; Flush
// pushes them to the peer (the server flushes at batch boundaries, the
// client after each pipelined command sequence).
type Writer struct {
	w       *bufio.Writer
	scratch []byte // reused payload build buffer
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 64<<10)}
}

// WriteFrame appends one frame to the buffer.
func (w *Writer) WriteFrame(op Op, payload []byte) error {
	var hdr [5]byte
	hdr[0] = byte(op)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(payload)
	return err
}

// WriteMsg encodes and frames one message.
func (w *Writer) WriteMsg(m Msg) error {
	w.scratch = m.encode(w.scratch[:0])
	return w.WriteFrame(m.op(), w.scratch)
}

// Flush pushes buffered frames to the peer.
func (w *Writer) Flush() error { return w.w.Flush() }
