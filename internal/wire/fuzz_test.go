package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"neurdb/internal/rel"
)

// frame builds one wire frame: [1B op][u32 BE payload length][payload].
func frame(op Op, payload []byte) []byte {
	out := make([]byte, 0, 5+len(payload))
	out = append(out, byte(op))
	out = binary.BigEndian.AppendUint32(out, uint32(len(payload)))
	return append(out, payload...)
}

// FuzzFrameDecode feeds an arbitrary byte stream through the frame reader
// and the message decoder — the exact path a malicious or corrupted client
// connection exercises on the server. Neither layer may panic; ReadFrame
// must either produce a frame or a terminal error, and Decode must reject
// malformed payloads with an error, never garbage.
func FuzzFrameDecode(f *testing.F) {
	seed := func(m Msg) []byte { return frame(m.op(), m.encode(nil)) }
	f.Add(seed(&Startup{Version: Version, Options: map[string]string{"workers": "4"}}))
	f.Add(seed(&Query{SQL: "SELECT 1"}))
	f.Add(seed(&Parse{Name: "s1", SQL: "INSERT INTO t VALUES (?)"}))
	f.Add(seed(&Bind{Portal: "", Stmt: "s1", Args: []rel.Value{rel.Int(7), rel.Text("x"), rel.Null()}}))
	f.Add(seed(&Execute{Portal: "", MaxRows: 100}))
	f.Add(seed(&Describe{Kind: 'S', Name: "s1"}))
	f.Add(seed(&Sync{}))
	f.Add(seed(&Terminate{}))
	// A pipelined sequence in one stream.
	f.Add(bytes.Join([][]byte{
		seed(&Startup{Version: Version}),
		seed(&Query{SQL: "CREATE TABLE t (id INT)"}),
		seed(&Sync{}),
	}, nil))
	// Pathological headers.
	f.Add(frame(OpQuery, nil)[:3])                       // torn header
	f.Add([]byte{byte(OpQuery), 0xff, 0xff, 0xff, 0xff}) // absurd length
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x01, 0x41})    // unknown opcode

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data), 1<<20)
		for i := 0; i < 1000; i++ {
			op, payload, err := r.ReadFrame()
			if err != nil {
				var tooBig *FrameTooLargeError
				if errors.As(err, &tooBig) {
					continue // stream remains usable past an oversized frame
				}
				if errors.Is(err, ErrCorrupt) || errors.Is(err, io.EOF) ||
					errors.Is(err, io.ErrUnexpectedEOF) {
					return
				}
				t.Fatalf("unexpected ReadFrame error type: %v", err)
			}
			if _, err := Decode(op, payload); err != nil {
				continue // malformed payloads are rejected, not crashed on
			}
		}
	})
}
