package wire

import (
	"encoding/binary"
	"fmt"
	"sort"

	"neurdb/internal/rel"
)

// Msg is one protocol message. Encoding appends the payload (without the
// frame header) to dst; Decode reverses it given the opcode.
type Msg interface {
	op() Op
	encode(dst []byte) []byte
}

// Describe/Close target kinds.
const (
	KindStatement byte = 'S'
	KindPortal    byte = 'P'
)

// Error codes carried by the Error message. Codes are coarse — clients
// branch on them to distinguish statement failures from protocol misuse.
const (
	CodeError    = "ERROR"     // statement-level failure (parse, bind, execution)
	CodeProtocol = "PROTOCOL"  // protocol violation (unknown opcode, bad sequence)
	CodeTooLarge = "TOO_LARGE" // frame exceeded the server's size limit
	CodeCanceled = "CANCELED"  // query canceled via a Cancel request
	// CodeReadOnly: the server's WAL has poisoned and the database degraded
	// to read-only — reads keep serving, writes fail until a restart.
	CodeReadOnly = "READ_ONLY"
	// CodeTooManyConns: the server is at Config.MaxConns; sent in response
	// to Startup before the connection is closed. Clients may retry with
	// backoff (the connection was refused, nothing executed).
	CodeTooManyConns = "TOO_MANY_CONNS"
	// CodeTimeout: the statement exceeded the server's statement timeout
	// and was stopped at a batch boundary (partial rows may have streamed,
	// same as CANCELED).
	CodeTimeout = "TIMEOUT"
)

// ---- client messages ----

// Startup opens a connection: protocol version plus string options.
type Startup struct {
	Version uint32
	Options map[string]string
}

// Query executes one SQL statement through the simple protocol: the server
// parses, plans and runs it, streaming RowDescription/DataBatch/
// CommandComplete and finishing with Ready.
type Query struct{ SQL string }

// Parse prepares a named statement server-side (name "" is the unnamed
// statement, silently replaced by the next Parse).
type Parse struct {
	Name string
	SQL  string
}

// Bind creates (or replaces) a portal binding parameter values to a
// prepared statement.
type Bind struct {
	Portal string
	Stmt   string
	Args   []rel.Value
}

// Execute runs a portal. MaxRows bounds the rows returned in this call
// (0 = stream everything); a bounded Execute that stops early leaves the
// portal suspended for a later Execute or Close.
type Execute struct {
	Portal  string
	MaxRows uint32
}

// Describe requests metadata for a statement (KindStatement) or portal
// (KindPortal): RowDescription for row-returning statements, NoData
// otherwise.
type Describe struct {
	Kind byte
	Name string
}

// Close destroys a statement or portal. Closing a name that does not exist
// is not an error.
type Close struct {
	Kind byte
	Name string
}

// Sync ends an extended-query sequence; the server replies Ready. After an
// error in extended mode the server discards messages until Sync.
type Sync struct{}

// Terminate announces a clean client shutdown.
type Terminate struct{}

// Cancel, sent as the first frame of a fresh connection instead of
// Startup, asks the server to cancel the in-flight or suspended query of
// the connection identified by the BackendKeyData credentials.
type Cancel struct {
	ConnID uint64
	Secret uint64
}

// ---- server messages ----

// Ready signals the server finished a command sequence.
type Ready struct{}

// Error reports a failure. Statement errors keep the connection usable;
// after one in extended mode the server skips to the next Sync.
type Error struct {
	Code    string
	Message string
}

// ParameterStatus reports one server setting during startup.
type ParameterStatus struct {
	Key   string
	Value string
}

// BackendKeyData carries the credentials a Cancel request must echo.
type BackendKeyData struct {
	ConnID uint64
	Secret uint64
}

// ParseComplete acknowledges Parse, reporting the statement's parameter
// count.
type ParseComplete struct{ NumParams uint16 }

// BindComplete acknowledges Bind.
type BindComplete struct{}

// CloseComplete acknowledges Close.
type CloseComplete struct{}

// ColDesc describes one result column. Type is a hint (rel.TypeNull means
// dynamically typed); every value on the wire is self-describing.
type ColDesc struct {
	Name string
	Type rel.Type
}

// RowDescription announces the result shape ahead of DataBatch frames.
type RowDescription struct{ Cols []ColDesc }

// NoData announces that a described statement returns no rows.
type NoData struct{}

// DataBatch carries one executor batch of rows, column-major: ncols, nrows,
// then for each column its nrows values in rel's self-delimiting value
// encoding (NULLs included). Row-major order is reconstructed client-side.
type DataBatch struct {
	NumCols int
	Rows    []rel.Row
}

// CommandComplete finishes a statement: a human-readable tag ("INSERT 3",
// "CREATE TABLE", "" for plain SELECT) plus the affected/returned row count.
type CommandComplete struct {
	Tag      string
	Affected uint64
}

// Suspended reports that Execute stopped at its MaxRows bound with rows
// remaining; the portal stays open.
type Suspended struct{}

// ---- encoding ----

func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v>>8), byte(v))
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func appendString(dst []byte, s string) []byte {
	dst = appendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

func (m *Startup) op() Op { return OpStartup }
func (m *Startup) encode(dst []byte) []byte {
	dst = appendU32(dst, m.Version)
	dst = appendU16(dst, uint16(len(m.Options)))
	// Sorted keys keep the encoding byte-identical across runs; map order
	// would leak Go's per-process iteration randomization onto the wire.
	keys := make([]string, 0, len(m.Options))
	for k := range m.Options {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst = appendString(dst, k)
		dst = appendString(dst, m.Options[k])
	}
	return dst
}

func (m *Query) op() Op                   { return OpQuery }
func (m *Query) encode(dst []byte) []byte { return appendString(dst, m.SQL) }

func (m *Parse) op() Op { return OpParse }
func (m *Parse) encode(dst []byte) []byte {
	dst = appendString(dst, m.Name)
	return appendString(dst, m.SQL)
}

func (m *Bind) op() Op { return OpBind }
func (m *Bind) encode(dst []byte) []byte {
	dst = appendString(dst, m.Portal)
	dst = appendString(dst, m.Stmt)
	dst = appendU16(dst, uint16(len(m.Args)))
	for _, v := range m.Args {
		dst = rel.EncodeValue(dst, v)
	}
	return dst
}

func (m *Execute) op() Op { return OpExecute }
func (m *Execute) encode(dst []byte) []byte {
	dst = appendString(dst, m.Portal)
	return appendU32(dst, m.MaxRows)
}

func (m *Describe) op() Op { return OpDescribe }
func (m *Describe) encode(dst []byte) []byte {
	dst = append(dst, m.Kind)
	return appendString(dst, m.Name)
}

func (m *Close) op() Op { return OpClose }
func (m *Close) encode(dst []byte) []byte {
	dst = append(dst, m.Kind)
	return appendString(dst, m.Name)
}

func (m *Sync) op() Op                   { return OpSync }
func (m *Sync) encode(dst []byte) []byte { return dst }

func (m *Terminate) op() Op                   { return OpTerminate }
func (m *Terminate) encode(dst []byte) []byte { return dst }

func (m *Cancel) op() Op { return OpCancel }
func (m *Cancel) encode(dst []byte) []byte {
	dst = appendU64(dst, m.ConnID)
	return appendU64(dst, m.Secret)
}

func (m *Ready) op() Op                   { return OpReady }
func (m *Ready) encode(dst []byte) []byte { return dst }

func (m *Error) op() Op { return OpError }
func (m *Error) encode(dst []byte) []byte {
	dst = appendString(dst, m.Code)
	return appendString(dst, m.Message)
}

func (m *ParameterStatus) op() Op { return OpParameterStatus }
func (m *ParameterStatus) encode(dst []byte) []byte {
	dst = appendString(dst, m.Key)
	return appendString(dst, m.Value)
}

func (m *BackendKeyData) op() Op { return OpBackendKeyData }
func (m *BackendKeyData) encode(dst []byte) []byte {
	dst = appendU64(dst, m.ConnID)
	return appendU64(dst, m.Secret)
}

func (m *ParseComplete) op() Op                   { return OpParseComplete }
func (m *ParseComplete) encode(dst []byte) []byte { return appendU16(dst, m.NumParams) }

func (m *BindComplete) op() Op                   { return OpBindComplete }
func (m *BindComplete) encode(dst []byte) []byte { return dst }

func (m *CloseComplete) op() Op                   { return OpCloseComplete }
func (m *CloseComplete) encode(dst []byte) []byte { return dst }

func (m *RowDescription) op() Op { return OpRowDescription }
func (m *RowDescription) encode(dst []byte) []byte {
	dst = appendU16(dst, uint16(len(m.Cols)))
	for _, c := range m.Cols {
		dst = appendString(dst, c.Name)
		dst = append(dst, byte(c.Type))
	}
	return dst
}

func (m *NoData) op() Op                   { return OpNoData }
func (m *NoData) encode(dst []byte) []byte { return dst }

func (m *DataBatch) op() Op { return OpDataBatch }
func (m *DataBatch) encode(dst []byte) []byte {
	dst = appendU16(dst, uint16(m.NumCols))
	dst = appendU32(dst, uint32(len(m.Rows)))
	// Column-major: each column's values are stored contiguously, so a
	// future non-Go client can decode straight into columnar buffers.
	for c := 0; c < m.NumCols; c++ {
		for _, row := range m.Rows {
			dst = rel.EncodeValue(dst, row[c])
		}
	}
	return dst
}

// RowSize returns the encoded size of one row inside a DataBatch payload.
// Servers use it to bound frame sizes in bytes as well as rows, so a batch
// of wide rows never exceeds a client's frame ceiling.
func RowSize(r rel.Row) int {
	n := 0
	for _, v := range r {
		n++ // type tag
		switch v.Typ {
		case rel.TypeNull:
			// The tag byte alone: NULL carries no payload.
		case rel.TypeInt, rel.TypeFloat:
			n += 8
		case rel.TypeText:
			n += 4 + len(v.S)
		case rel.TypeBool:
			n++
		}
	}
	return n
}

func (m *CommandComplete) op() Op { return OpCommandComplete }
func (m *CommandComplete) encode(dst []byte) []byte {
	dst = appendString(dst, m.Tag)
	return appendU64(dst, m.Affected)
}

func (m *Suspended) op() Op                   { return OpSuspended }
func (m *Suspended) encode(dst []byte) []byte { return dst }

// ---- decoding ----

// dec is a cursor over a frame payload; the first failure sticks.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (d *dec) u8() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail("short payload reading byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) u16() uint16 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 2 {
		d.fail("short payload reading uint16")
		return 0
	}
	v := binary.BigEndian.Uint16(d.b)
	d.b = d.b[2:]
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 4 {
		d.fail("short payload reading uint32")
		return 0
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("short payload reading uint64")
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) str() string {
	n := d.u32()
	if d.err != nil {
		return ""
	}
	if uint32(len(d.b)) < n {
		d.fail("short payload reading string of %d bytes", n)
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *dec) value() rel.Value {
	if d.err != nil {
		return rel.Value{}
	}
	v, used, err := rel.DecodeValue(d.b)
	if err != nil {
		d.fail("decode value: %v", err)
		return rel.Value{}
	}
	d.b = d.b[used:]
	return v
}

func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("wire: %d trailing bytes in payload", len(d.b))
	}
	return nil
}

// Decode parses a frame payload into its message.
func Decode(op Op, payload []byte) (Msg, error) {
	d := &dec{b: payload}
	var m Msg
	switch op {
	case OpStartup:
		s := &Startup{Version: d.u32()}
		if n := d.u16(); n > 0 {
			s.Options = make(map[string]string, n)
			for i := 0; i < int(n); i++ {
				k := d.str()
				s.Options[k] = d.str()
			}
		}
		m = s
	case OpQuery:
		m = &Query{SQL: d.str()}
	case OpParse:
		m = &Parse{Name: d.str(), SQL: d.str()}
	case OpBind:
		b := &Bind{Portal: d.str(), Stmt: d.str()}
		n := d.u16()
		if d.err == nil && n > 0 {
			b.Args = make([]rel.Value, n)
			for i := range b.Args {
				b.Args[i] = d.value()
			}
		}
		m = b
	case OpExecute:
		m = &Execute{Portal: d.str(), MaxRows: d.u32()}
	case OpDescribe:
		m = &Describe{Kind: d.u8(), Name: d.str()}
	case OpClose:
		m = &Close{Kind: d.u8(), Name: d.str()}
	case OpSync:
		m = &Sync{}
	case OpTerminate:
		m = &Terminate{}
	case OpCancel:
		m = &Cancel{ConnID: d.u64(), Secret: d.u64()}
	case OpReady:
		m = &Ready{}
	case OpError:
		m = &Error{Code: d.str(), Message: d.str()}
	case OpParameterStatus:
		m = &ParameterStatus{Key: d.str(), Value: d.str()}
	case OpBackendKeyData:
		m = &BackendKeyData{ConnID: d.u64(), Secret: d.u64()}
	case OpParseComplete:
		m = &ParseComplete{NumParams: d.u16()}
	case OpBindComplete:
		m = &BindComplete{}
	case OpCloseComplete:
		m = &CloseComplete{}
	case OpRowDescription:
		rd := &RowDescription{}
		n := d.u16()
		if d.err == nil && n > 0 {
			rd.Cols = make([]ColDesc, n)
			for i := range rd.Cols {
				rd.Cols[i].Name = d.str()
				rd.Cols[i].Type = rel.Type(d.u8())
			}
		}
		m = rd
	case OpNoData:
		m = &NoData{}
	case OpDataBatch:
		db := &DataBatch{}
		ncols := int(d.u16())
		nrows := int(d.u32())
		db.NumCols = ncols
		// Validate the claimed cardinality against the actual payload
		// before allocating: every encoded value is at least one byte, so
		// a tiny frame cannot demand a huge allocation.
		if minBytes := nrows * max(ncols, 1); d.err == nil && nrows > 0 && minBytes > len(d.b) {
			d.fail("DataBatch claims %d rows x %d cols but payload holds %d bytes", nrows, ncols, len(d.b))
		}
		if d.err == nil && nrows > 0 {
			db.Rows = make([]rel.Row, nrows)
			for i := range db.Rows {
				db.Rows[i] = make(rel.Row, ncols)
			}
			// Invert the column-major layout back into rows.
			for c := 0; c < ncols; c++ {
				for r := 0; r < nrows; r++ {
					db.Rows[r][c] = d.value()
				}
			}
		}
		m = db
	case OpCommandComplete:
		m = &CommandComplete{Tag: d.str(), Affected: d.u64()}
	case OpSuspended:
		m = &Suspended{}
	default:
		return nil, fmt.Errorf("wire: unknown opcode %q", byte(op))
	}
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("%w (opcode %q)", err, byte(op))
	}
	return m, nil
}
