// Package wal implements NeurDB's durability layer: a segmented write-ahead
// log of logical redo records appended at commit, a leader/follower group
// commit that amortizes one fsync across concurrent committers, full-state
// checkpoints that bound replay length, and replay-on-boot that reconstructs
// the database from the last checkpoint plus the retained log suffix.
//
// Redo is physiological: every operation names its physical slot (table,
// page, slot) and carries the full new row image, so applying a record is
// "install this row at this slot" / "clear this slot" — idempotent by
// construction. That makes the recovery protocol simple to reason about:
// replay applies every retained record in file order over the checkpoint
// image, and because first-updater-wins serializes conflicting writers, file
// order agrees with commit order wherever two records touch the same slot,
// so re-application always converges to the committed state.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"neurdb/internal/rel"
	"neurdb/internal/storage"
)

// Record kinds.
const (
	RecCommit      byte = 1 // one committed transaction's redo operations
	RecCreateTable byte = 2
	RecDropTable   byte = 3
	RecCreateIndex byte = 4
)

// Op codes within a commit record mirror the transaction manager's write
// kinds.
const (
	OpInsert byte = 'i'
	OpUpdate byte = 'u'
	OpDelete byte = 'd'
)

// Op is one redo operation of a committed transaction: install Row at
// (Table, ID) for inserts/updates, clear the slot for deletes.
type Op struct {
	Kind  byte
	Table int
	ID    storage.RowID
	Row   rel.Row // nil for deletes
}

// Record is one decoded WAL record.
type Record struct {
	Kind byte

	// Commit fields.
	CommitTS uint64
	Ops      []Op

	// DDL fields.
	TableID int
	Name    string      // table or index name
	Schema  *rel.Schema // create-table only
	Col     int         // create-index only
	Hash    bool        // create-index only: hash instead of btree
}

// crcTable is the Castagnoli polynomial — hardware-accelerated on amd64 and
// arm64, and the conventional choice for storage checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendUint32/appendUint64 are little-endian, matching rel's value codec.
func appendUint32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

func appendUint64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("wal: decode %s: truncated at byte %d", what, d.off)
	}
}

func (d *decoder) u8(what string) byte {
	if d.err != nil {
		return 0
	}
	if d.off+1 > len(d.b) {
		d.fail(what)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) u32(what string) uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.b) {
		d.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64(what string) uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) str(what string) string {
	n := int(d.u32(what))
	if d.err != nil {
		return ""
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail(what)
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) row(what string) rel.Row {
	if d.err != nil {
		return nil
	}
	row, used, err := rel.DecodeRow(d.b[d.off:])
	if err != nil {
		if d.err == nil {
			d.err = fmt.Errorf("wal: decode %s at byte %d: %w", what, d.off, err)
		}
		return nil
	}
	d.off += used
	return row
}

// encodeCommit serializes a commit record payload.
func encodeCommit(dst []byte, cts uint64, ops []Op) []byte {
	dst = append(dst, RecCommit)
	dst = appendUint64(dst, cts)
	dst = appendUint32(dst, uint32(len(ops)))
	for _, op := range ops {
		dst = append(dst, op.Kind)
		dst = appendUint32(dst, uint32(op.Table))
		dst = appendUint32(dst, op.ID.Page)
		dst = appendUint32(dst, op.ID.Slot)
		if op.Kind != OpDelete {
			dst = rel.EncodeRow(dst, op.Row)
		}
	}
	return dst
}

// EncodeCreateTable serializes a create-table DDL payload.
func EncodeCreateTable(dst []byte, tableID int, name string, schema *rel.Schema) []byte {
	dst = append(dst, RecCreateTable)
	dst = appendUint32(dst, uint32(tableID))
	dst = appendString(dst, name)
	dst = appendUint32(dst, uint32(len(schema.Cols)))
	for _, c := range schema.Cols {
		dst = appendString(dst, c.Name)
		dst = append(dst, byte(c.Typ))
		var flags byte
		if c.Unique {
			flags |= 1
		}
		if c.NotNull {
			flags |= 2
		}
		dst = append(dst, flags)
	}
	return dst
}

// EncodeDropTable serializes a drop-table DDL payload.
func EncodeDropTable(dst []byte, name string) []byte {
	dst = append(dst, RecDropTable)
	return appendString(dst, name)
}

// EncodeCreateIndex serializes a create-index DDL payload.
func EncodeCreateIndex(dst []byte, tableID int, name string, col int, hash bool) []byte {
	dst = append(dst, RecCreateIndex)
	dst = appendUint32(dst, uint32(tableID))
	dst = appendString(dst, name)
	dst = appendUint32(dst, uint32(col))
	if hash {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return dst
}

// maxOpsPerRecord bounds the op-count header so a corrupt record cannot
// drive a giant allocation before the per-op bounds checks run.
const maxOpsPerRecord = 1 << 24

// DecodeRecord parses one record payload (the bytes between the CRC header
// and the next record). It never panics on malformed input.
func DecodeRecord(payload []byte) (*Record, error) {
	d := &decoder{b: payload}
	rec := &Record{Kind: d.u8("kind")}
	switch rec.Kind {
	case RecCommit:
		rec.CommitTS = d.u64("commit ts")
		n := d.u32("op count")
		if d.err != nil {
			return nil, d.err
		}
		if n > maxOpsPerRecord {
			return nil, fmt.Errorf("wal: decode commit: implausible op count %d", n)
		}
		rec.Ops = make([]Op, 0, min(int(n), 4096))
		for i := uint32(0); i < n; i++ {
			op := Op{
				Kind:  d.u8("op kind"),
				Table: int(d.u32("op table")),
			}
			op.ID.Page = d.u32("op page")
			op.ID.Slot = d.u32("op slot")
			switch op.Kind {
			case OpInsert, OpUpdate:
				op.Row = d.row("op row")
			case OpDelete:
			default:
				if d.err == nil {
					d.err = fmt.Errorf("wal: decode commit: unknown op kind %q", op.Kind)
				}
			}
			if d.err != nil {
				return nil, d.err
			}
			rec.Ops = append(rec.Ops, op)
		}
	case RecCreateTable:
		rec.TableID = int(d.u32("table id"))
		rec.Name = d.str("table name")
		n := d.u32("column count")
		if d.err != nil {
			return nil, d.err
		}
		if n > 1<<16 {
			return nil, fmt.Errorf("wal: decode create-table: implausible column count %d", n)
		}
		cols := make([]rel.Column, 0, n)
		for i := uint32(0); i < n; i++ {
			c := rel.Column{Name: d.str("column name"), Typ: rel.Type(d.u8("column type"))}
			flags := d.u8("column flags")
			c.Unique = flags&1 != 0
			c.NotNull = flags&2 != 0
			if d.err != nil {
				return nil, d.err
			}
			cols = append(cols, c)
		}
		rec.Schema = rel.NewSchema(cols...)
	case RecDropTable:
		rec.Name = d.str("table name")
	case RecCreateIndex:
		rec.TableID = int(d.u32("table id"))
		rec.Name = d.str("index name")
		rec.Col = int(d.u32("index col"))
		rec.Hash = d.u8("index kind") != 0
	default:
		return nil, fmt.Errorf("wal: unknown record kind %d", rec.Kind)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("wal: record has %d trailing bytes", len(payload)-d.off)
	}
	return rec, nil
}
