//go:build invariants

package wal

import "sync/atomic"

// Built with -tags=invariants, the log asserts the commit-gate protocol at
// runtime: AppendCommit must run inside a gate window (read side for
// commits; the exclusive side also counts, covering DDL and recovery).
// neurdb-lint's commitgate analyzer proves this statically for the commit
// paths it can see; the counter catches any appender that reaches the log
// another way.

// gateHolders counts goroutines currently inside a gate window (read or
// exclusive).
var gateHolders atomic.Int64

func gateEnter() { gateHolders.Add(1) }

func gateExit() {
	if gateHolders.Add(-1) < 0 {
		panic("wal: invariant violated: commit gate released more times than acquired")
	}
}

func assertGated() {
	if gateHolders.Load() <= 0 {
		panic("wal: invariant violated: AppendCommit outside a commit-gate window (append must be covered by GateRLock so a checkpoint cut never sees a half-published commit)")
	}
}
