//go:build invariants

package wal

import "testing"

// TestAppendOutsideGatePanics proves the -tags=invariants runtime assertion
// fires on the violation neurdb-lint's commitgate analyzer flags statically:
// an append with no gate window open.
func TestAppendOutsideGatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ungated assertGated did not panic under -tags=invariants")
		}
	}()
	assertGated()
}

// TestAppendInsideGatePasses is the positive direction: inside a window the
// assertion is silent.
func TestAppendInsideGatePasses(t *testing.T) {
	gateEnter()
	defer gateExit()
	assertGated()
}
