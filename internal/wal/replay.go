package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"

	"neurdb/internal/vfs"
)

// ReplayStats summarizes one recovery pass over the retained segments.
type ReplayStats struct {
	Segments  int    // segment files visited
	Records   int    // records decoded and applied
	MaxCTS    uint64 // highest commit timestamp seen (0 if none)
	Truncated bool   // the final segment ended in a torn record
}

// ReplaySegments reads every WAL segment in dir in sequence order and
// invokes apply on each decoded record. Torn tails — a short record header,
// an implausible length, or a CRC mismatch — are tolerated only in the
// final segment, where they mark the exact point the crash interrupted an
// append: replay stops cleanly at the last whole record. The same damage in
// an earlier segment is a hard error, because rotation seals segments with
// an fsync and corruption there means real data loss.
//
// Records are applied in file order across all segments. Redo is
// idempotent, so callers replay every retained segment unconditionally —
// including records a loaded checkpoint already reflects.
func ReplaySegments(fs vfs.FS, dir string, apply func(*Record) error) (ReplayStats, error) {
	var st ReplayStats
	if fs == nil {
		fs = vfs.OS
	}
	segs, err := ListSegments(fs, dir)
	if err != nil {
		return st, err
	}
	for i, seg := range segs {
		last := i == len(segs)-1
		truncated, err := replayOne(fs, seg, last, apply, &st)
		if err != nil {
			return st, err
		}
		if truncated {
			st.Truncated = true
		}
		st.Segments++
	}
	return st, nil
}

// replayOne replays a single segment file. tolerateTorn permits a torn tail
// (returning truncated=true); otherwise any damage is an error.
func replayOne(fs vfs.FS, seg SegmentRef, tolerateTorn bool, apply func(*Record) error, st *ReplayStats) (truncated bool, err error) {
	data, err := fs.ReadFile(seg.Path)
	if err != nil {
		return false, err
	}
	name := filepath.Base(seg.Path)
	if len(data) < segmentHeaderLen ||
		[8]byte(data[:8]) != segmentMagic ||
		binary.LittleEndian.Uint64(data[8:16]) != seg.Seq {
		if tolerateTorn {
			// The crash interrupted segment creation itself; nothing in it
			// was ever acknowledged.
			return true, nil
		}
		return false, fmt.Errorf("wal: segment %s: bad header", name)
	}
	off := segmentHeaderLen
	for off < len(data) {
		if off+recordHeaderLen > len(data) {
			if tolerateTorn {
				return true, nil
			}
			return false, fmt.Errorf("wal: segment %s: truncated record header at offset %d", name, off)
		}
		length := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		payloadStart := off + recordHeaderLen
		if length <= 0 || length > len(data)-payloadStart {
			if tolerateTorn {
				return true, nil
			}
			return false, fmt.Errorf("wal: segment %s: truncated record body at offset %d (len %d)", name, off, length)
		}
		payload := data[payloadStart : payloadStart+length]
		if crc32.Checksum(payload, crcTable) != sum {
			if tolerateTorn {
				return true, nil
			}
			return false, fmt.Errorf("wal: segment %s: CRC mismatch at offset %d", name, off)
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			// The CRC matched, so these are the bytes that were written —
			// an undecodable record is corruption (or a version skew), not a
			// torn tail. Fail loudly in every segment.
			return false, fmt.Errorf("wal: segment %s: offset %d: %w", name, off, err)
		}
		if err := apply(rec); err != nil {
			return false, err
		}
		st.Records++
		if rec.Kind == RecCommit && rec.CommitTS > st.MaxCTS {
			st.MaxCTS = rec.CommitTS
		}
		off = payloadStart + length
	}
	return false, nil
}
