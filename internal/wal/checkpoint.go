package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"neurdb/internal/rel"
	"neurdb/internal/storage"
	"neurdb/internal/vfs"
)

// IndexMeta names one secondary index in a checkpoint. Indexes are rebuilt
// from heap data after replay, so only the definition is persisted.
type IndexMeta struct {
	Name string
	Col  int
	Hash bool
}

// CkptRow is one visible row image pinned to its physical slot.
type CkptRow struct {
	ID  storage.RowID
	Row rel.Row
}

// CkptTable is one table's full checkpoint image.
type CkptTable struct {
	ID      int
	Name    string
	Schema  *rel.Schema
	Indexes []IndexMeta
	Rows    []CkptRow
}

// Checkpoint is a transactionally consistent full-database snapshot: every
// row visible at Clock, written after WAL segment Seq was sealed. Recovery
// loads the newest checkpoint and replays the retained segments over it;
// because redo is idempotent, re-applying records the checkpoint already
// reflects is harmless.
type Checkpoint struct {
	Seq    uint64 // last WAL segment sealed before the snapshot cut
	Clock  uint64 // commit clock at the cut
	Tables []CkptTable
}

const (
	checkpointPrefix = "checkpoint-"
	checkpointSuffix = ".ckpt"
)

var checkpointMagic = [8]byte{'N', 'D', 'B', 'C', 'K', 'P', 'T', '1'}

func checkpointPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", checkpointPrefix, seq, checkpointSuffix))
}

// listCheckpoints returns checkpoint files in ascending sequence order.
func listCheckpoints(fs vfs.FS, dir string) ([]SegmentRef, error) {
	ents, err := fs.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []SegmentRef
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, checkpointPrefix) || !strings.HasSuffix(name, checkpointSuffix) {
			continue
		}
		seqStr := strings.TrimSuffix(strings.TrimPrefix(name, checkpointPrefix), checkpointSuffix)
		seq, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			continue
		}
		out = append(out, SegmentRef{Seq: seq, Path: filepath.Join(dir, name)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// encodeCheckpoint serializes ck; the trailing u32 is the CRC32C of
// everything before it.
func encodeCheckpoint(ck *Checkpoint) []byte {
	buf := make([]byte, 0, 4096)
	buf = append(buf, checkpointMagic[:]...)
	buf = appendUint64(buf, ck.Seq)
	buf = appendUint64(buf, ck.Clock)
	buf = appendUint32(buf, uint32(len(ck.Tables)))
	for _, t := range ck.Tables {
		buf = appendUint32(buf, uint32(t.ID))
		buf = appendString(buf, t.Name)
		buf = appendUint32(buf, uint32(len(t.Schema.Cols)))
		for _, c := range t.Schema.Cols {
			buf = appendString(buf, c.Name)
			buf = append(buf, byte(c.Typ))
			var flags byte
			if c.Unique {
				flags |= 1
			}
			if c.NotNull {
				flags |= 2
			}
			buf = append(buf, flags)
		}
		buf = appendUint32(buf, uint32(len(t.Indexes)))
		for _, ix := range t.Indexes {
			buf = appendString(buf, ix.Name)
			buf = appendUint32(buf, uint32(ix.Col))
			if ix.Hash {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
		buf = appendUint64(buf, uint64(len(t.Rows)))
		for _, r := range t.Rows {
			buf = appendUint32(buf, r.ID.Page)
			buf = appendUint32(buf, r.ID.Slot)
			buf = rel.EncodeRow(buf, r.Row)
		}
	}
	return appendUint32(buf, crc32.Checksum(buf, crcTable))
}

// decodeCheckpoint parses and CRC-verifies one checkpoint file's contents.
func decodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < len(checkpointMagic)+4 {
		return nil, fmt.Errorf("wal: checkpoint truncated (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("wal: checkpoint CRC mismatch")
	}
	if [8]byte(body[:8]) != checkpointMagic {
		return nil, fmt.Errorf("wal: bad checkpoint magic")
	}
	d := &decoder{b: body, off: 8}
	ck := &Checkpoint{
		Seq:   d.u64("seq"),
		Clock: d.u64("clock"),
	}
	ntables := d.u32("table count")
	if d.err != nil {
		return nil, d.err
	}
	if ntables > 1<<20 {
		return nil, fmt.Errorf("wal: checkpoint: implausible table count %d", ntables)
	}
	for ti := uint32(0); ti < ntables; ti++ {
		t := CkptTable{
			ID:   int(d.u32("table id")),
			Name: d.str("table name"),
		}
		ncols := d.u32("column count")
		if d.err != nil {
			return nil, d.err
		}
		if ncols > 1<<16 {
			return nil, fmt.Errorf("wal: checkpoint: implausible column count %d", ncols)
		}
		cols := make([]rel.Column, 0, ncols)
		for i := uint32(0); i < ncols; i++ {
			c := rel.Column{Name: d.str("column name"), Typ: rel.Type(d.u8("column type"))}
			flags := d.u8("column flags")
			c.Unique = flags&1 != 0
			c.NotNull = flags&2 != 0
			cols = append(cols, c)
		}
		if d.err != nil {
			return nil, d.err
		}
		t.Schema = rel.NewSchema(cols...)
		nidx := d.u32("index count")
		if d.err != nil {
			return nil, d.err
		}
		if nidx > 1<<16 {
			return nil, fmt.Errorf("wal: checkpoint: implausible index count %d", nidx)
		}
		for i := uint32(0); i < nidx; i++ {
			t.Indexes = append(t.Indexes, IndexMeta{
				Name: d.str("index name"),
				Col:  int(d.u32("index col")),
				Hash: d.u8("index kind") != 0,
			})
		}
		nrows := d.u64("row count")
		if d.err != nil {
			return nil, d.err
		}
		if nrows > uint64(len(body)) {
			return nil, fmt.Errorf("wal: checkpoint: implausible row count %d", nrows)
		}
		t.Rows = make([]CkptRow, 0, int(min(nrows, 1<<16)))
		for i := uint64(0); i < nrows; i++ {
			r := CkptRow{}
			r.ID.Page = d.u32("row page")
			r.ID.Slot = d.u32("row slot")
			r.Row = d.row("row data")
			if d.err != nil {
				return nil, d.err
			}
			t.Rows = append(t.Rows, r)
		}
		ck.Tables = append(ck.Tables, t)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("wal: checkpoint has %d trailing bytes", len(body)-d.off)
	}
	return ck, nil
}

// WriteCheckpoint atomically publishes ck: the image goes to a temp file,
// is fsynced, renamed into place, and the directory entry is fsynced — so a
// crash at any point leaves either the old checkpoint set or the new file
// complete, never a half-written one under the final name.
func WriteCheckpoint(fs vfs.FS, dir string, ck *Checkpoint) error {
	if fs == nil {
		fs = vfs.OS
	}
	data := encodeCheckpoint(ck)
	final := checkpointPath(dir, ck.Seq)
	tmp := final + ".tmp"
	f, err := fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	// On the error paths the primary failure is the error to report; the
	// cleanup drops are explicit, and an orphaned .tmp is harmless (never
	// matched by the checkpoint loader).
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		_ = fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, final); err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	return syncDir(fs, dir)
}

// LoadCheckpoint returns the newest checkpoint in dir, or nil if none
// exists. The newest file failing validation is a hard error, not a
// fallback: older checkpoints may already have had their WAL segments
// deleted, so silently using one could lose acknowledged commits.
func LoadCheckpoint(fs vfs.FS, dir string) (*Checkpoint, error) {
	if fs == nil {
		fs = vfs.OS
	}
	cks, err := listCheckpoints(fs, dir)
	if err != nil {
		return nil, err
	}
	if len(cks) == 0 {
		return nil, nil
	}
	newest := cks[len(cks)-1]
	data, err := fs.ReadFile(newest.Path)
	if err != nil {
		return nil, err
	}
	ck, err := decodeCheckpoint(data)
	if err != nil {
		return nil, fmt.Errorf("wal: checkpoint %s: %w", filepath.Base(newest.Path), err)
	}
	return ck, nil
}

// RemoveCheckpointsBefore deletes checkpoint files older than seq, oldest
// first (mirrors the segment-retention invariant).
func RemoveCheckpointsBefore(fs vfs.FS, dir string, seq uint64) error {
	if fs == nil {
		fs = vfs.OS
	}
	cks, err := listCheckpoints(fs, dir)
	if err != nil {
		return err
	}
	for _, c := range cks {
		if c.Seq >= seq {
			break
		}
		if err := fs.Remove(c.Path); err != nil {
			return err
		}
	}
	return nil
}

// syncDir fsyncs a directory so file creations/renames inside it are
// durable.
func syncDir(fs vfs.FS, dir string) error {
	d, err := fs.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
