package wal

import (
	"reflect"
	"testing"

	"neurdb/internal/rel"
	"neurdb/internal/storage"
)

// FuzzWALDecode hammers DecodeRecord with arbitrary payloads: it must never
// panic, and whenever it accepts a commit record the encode/decode pair must
// be a fixed point (re-encoding the decoded record yields the same bytes, so
// replay and the original append agree on every field).
func FuzzWALDecode(f *testing.F) {
	f.Add(encodeCommit(nil, 1, []Op{
		{Kind: OpInsert, Table: 1, ID: storage.RowID{Page: 0, Slot: 3}, Row: rel.Row{rel.Int(42), rel.Text("seed")}},
		{Kind: OpUpdate, Table: 1, ID: storage.RowID{Page: 0, Slot: 3}, Row: rel.Row{rel.Int(43), rel.Null()}},
		{Kind: OpDelete, Table: 2, ID: storage.RowID{Page: 7, Slot: 0}},
	}))
	f.Add(encodeCommit(nil, 0, nil))
	f.Add(EncodeCreateTable(nil, 3, "users", rel.NewSchema(
		rel.Column{Name: "id", Typ: rel.TypeInt, Unique: true, NotNull: true},
		rel.Column{Name: "score", Typ: rel.TypeFloat},
	)))
	f.Add(EncodeDropTable(nil, "users"))
	f.Add(EncodeCreateIndex(nil, 3, "users_score", 1, true))
	f.Add([]byte{})
	f.Add([]byte{RecCommit})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if rec == nil {
			t.Fatal("nil record with nil error")
		}
		if rec.Kind == RecCommit {
			re := encodeCommit(nil, rec.CommitTS, rec.Ops)
			rec2, err := DecodeRecord(re)
			if err != nil {
				t.Fatalf("re-encode of accepted record failed to decode: %v", err)
			}
			if rec2.CommitTS != rec.CommitTS || !reflect.DeepEqual(rec2.Ops, rec.Ops) {
				t.Fatalf("decode/encode not a fixed point:\n got %+v\nwant %+v", rec2, rec)
			}
		}
	})
}

// FuzzCheckpointDecode: arbitrary bytes must never panic the checkpoint
// parser; only CRC-valid, well-formed images are accepted.
func FuzzCheckpointDecode(f *testing.F) {
	f.Add(encodeCheckpoint(&Checkpoint{Seq: 2, Clock: 99, Tables: []CkptTable{{
		ID:      1,
		Name:    "t",
		Schema:  rel.NewSchema(rel.Column{Name: "id", Typ: rel.TypeInt, Unique: true}),
		Indexes: []IndexMeta{{Name: "t_id", Col: 0}},
		Rows:    []CkptRow{{ID: storage.RowID{Page: 0, Slot: 0}, Row: rel.Row{rel.Int(1)}}},
	}}}))
	f.Add(encodeCheckpoint(&Checkpoint{}))
	f.Add([]byte("NDBCKPT1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := decodeCheckpoint(data)
		if err == nil && ck == nil {
			t.Fatal("nil checkpoint with nil error")
		}
	})
}
