package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"neurdb/internal/rel"
	"neurdb/internal/storage"
	"neurdb/internal/vfs"
)

func testOps(n int) []Op {
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, Op{
			Kind:  OpInsert,
			Table: 1,
			ID:    storage.RowID{Page: uint32(i / 128), Slot: uint32(i % 128)},
			Row:   rel.Row{rel.Int(int64(i)), rel.Text(fmt.Sprintf("row-%d", i)), rel.Float(float64(i) / 2)},
		})
	}
	return ops
}

func TestRecordRoundTrip(t *testing.T) {
	ops := []Op{
		{Kind: OpInsert, Table: 3, ID: storage.RowID{Page: 1, Slot: 2}, Row: rel.Row{rel.Int(7), rel.Text("x")}},
		{Kind: OpUpdate, Table: 3, ID: storage.RowID{Page: 1, Slot: 2}, Row: rel.Row{rel.Int(8), rel.Null()}},
		{Kind: OpDelete, Table: 4, ID: storage.RowID{Page: 9, Slot: 0}},
	}
	payload := encodeCommit(nil, 42, ops)
	rec, err := DecodeRecord(payload)
	if err != nil {
		t.Fatalf("decode commit: %v", err)
	}
	if rec.Kind != RecCommit || rec.CommitTS != 42 {
		t.Fatalf("got kind=%d cts=%d", rec.Kind, rec.CommitTS)
	}
	if !reflect.DeepEqual(rec.Ops, ops) {
		t.Fatalf("ops mismatch:\n got %+v\nwant %+v", rec.Ops, ops)
	}

	schema := rel.NewSchema(
		rel.Column{Name: "id", Typ: rel.TypeInt, Unique: true, NotNull: true},
		rel.Column{Name: "name", Typ: rel.TypeText},
	)
	rec, err = DecodeRecord(EncodeCreateTable(nil, 5, "users", schema))
	if err != nil {
		t.Fatalf("decode create-table: %v", err)
	}
	if rec.Kind != RecCreateTable || rec.TableID != 5 || rec.Name != "users" {
		t.Fatalf("create-table fields: %+v", rec)
	}
	if len(rec.Schema.Cols) != 2 || !rec.Schema.Cols[0].Unique || !rec.Schema.Cols[0].NotNull {
		t.Fatalf("schema mismatch: %+v", rec.Schema.Cols)
	}

	rec, err = DecodeRecord(EncodeDropTable(nil, "users"))
	if err != nil || rec.Kind != RecDropTable || rec.Name != "users" {
		t.Fatalf("drop-table roundtrip: %+v err=%v", rec, err)
	}

	rec, err = DecodeRecord(EncodeCreateIndex(nil, 5, "users_name", 1, true))
	if err != nil || rec.Kind != RecCreateIndex || rec.TableID != 5 || rec.Name != "users_name" || rec.Col != 1 || !rec.Hash {
		t.Fatalf("create-index roundtrip: %+v err=%v", rec, err)
	}
}

func TestDecodeRecordRejectsTrailingBytes(t *testing.T) {
	payload := encodeCommit(nil, 1, testOps(1))
	if _, err := DecodeRecord(append(payload, 0)); err == nil {
		t.Fatal("expected trailing-byte error")
	}
	if _, err := DecodeRecord(payload[:len(payload)-1]); err == nil {
		t.Fatal("expected truncation error")
	}
	if _, err := DecodeRecord([]byte{99}); err == nil {
		t.Fatal("expected unknown-kind error")
	}
}

func TestAppendSyncReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Mode: SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		l.GateRLock()
		lsn, err := l.AppendCommit(uint64(i+1), testOps(3))
		l.GateRUnlock()
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var seen []uint64
	st, err := ReplaySegments(nil, dir, func(r *Record) error {
		seen = append(seen, r.CommitTS)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != n || st.MaxCTS != n || st.Truncated {
		t.Fatalf("stats %+v, want %d records", st, n)
	}
	for i, cts := range seen {
		if cts != uint64(i+1) {
			t.Fatalf("record %d has cts %d (file order must equal append order)", i, cts)
		}
	}
}

func TestReplayAcrossSegmentsAndRemoveThrough(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Mode: SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	var sealed uint64
	for i := 0; i < 6; i++ {
		l.GateRLock()
		lsn, err := l.AppendCommit(uint64(i+1), testOps(1))
		l.GateRUnlock()
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(lsn); err != nil {
			t.Fatal(err)
		}
		if i == 1 || i == 3 {
			l.GateLock()
			sealed, err = l.Rotate()
			l.GateUnlock()
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	st, err := ReplaySegments(nil, dir, func(*Record) error { return nil })
	if err != nil || st.Records != 6 || st.Segments != 3 {
		t.Fatalf("pre-removal replay: %+v err=%v", st, err)
	}

	// Drop everything up to the second sealed segment; records 5..6 remain.
	if err := l.RemoveThrough(sealed); err != nil {
		t.Fatal(err)
	}
	var first uint64
	st, err = ReplaySegments(nil, dir, func(r *Record) error {
		if first == 0 {
			first = r.CommitTS
		}
		return nil
	})
	if err != nil || st.Records != 2 || first != 5 {
		t.Fatalf("post-removal replay: %+v first=%d err=%v", st, first, err)
	}

	// The live segment must survive even if asked for.
	if err := l.RemoveThrough(1 << 30); err != nil {
		t.Fatal(err)
	}
	segs, _ := ListSegments(nil, dir)
	if len(segs) != 1 {
		t.Fatalf("want only the live segment, got %d", len(segs))
	}
	l.Close()
}

func TestGroupCommitConcurrency(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Mode: SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	var ctr uint64
	var ctrMu sync.Mutex
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.GateRLock()
				ctrMu.Lock()
				ctr++
				cts := ctr
				ctrMu.Unlock()
				lsn, err := l.AppendCommit(cts, testOps(2))
				l.GateRUnlock()
				if err != nil {
					errs <- err
					return
				}
				if err := l.Sync(lsn); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	_, records, commits, fsyncs := l.Stats()
	if records != writers*per || commits != writers*per {
		t.Fatalf("records=%d commits=%d, want %d", records, commits, writers*per)
	}
	// Each commit needs at most one fsync; grouping should never exceed that.
	if fsyncs > commits {
		t.Fatalf("fsyncs=%d > commits=%d", fsyncs, commits)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := ReplaySegments(nil, dir, func(*Record) error { return nil })
	if err != nil || st.Records != writers*per {
		t.Fatalf("replay after concurrent commits: %+v err=%v", st, err)
	}
}

func TestSyncIntervalEventuallyFsyncs(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Mode: SyncInterval, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	l.GateRLock()
	lsn, err := l.AppendCommit(1, testOps(1))
	l.GateRUnlock()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(lsn); err != nil { // must not block
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, _, fsyncs := l.Stats(); fsyncs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval ticker never fsynced")
		}
		time.Sleep(time.Millisecond)
	}
	l.Close()
}

func TestNoGroupFsyncPerCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Mode: SyncCommit, NoGroup: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l.GateRLock()
		lsn, err := l.AppendCommit(uint64(i+1), testOps(1))
		l.GateRUnlock()
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, _, fsyncs := l.Stats(); fsyncs < 5 {
		t.Fatalf("NoGroup must fsync per commit, got %d fsyncs for 5 commits", fsyncs)
	}
	l.Close()
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	schema := rel.NewSchema(
		rel.Column{Name: "id", Typ: rel.TypeInt, Unique: true},
		rel.Column{Name: "v", Typ: rel.TypeFloat},
	)
	ck := &Checkpoint{
		Seq:   7,
		Clock: 1234,
		Tables: []CkptTable{{
			ID:     2,
			Name:   "m",
			Schema: schema,
			Indexes: []IndexMeta{
				{Name: "m_id", Col: 0, Hash: false},
				{Name: "m_v", Col: 1, Hash: true},
			},
			Rows: []CkptRow{
				{ID: storage.RowID{Page: 0, Slot: 3}, Row: rel.Row{rel.Int(1), rel.Float(0.5)}},
				{ID: storage.RowID{Page: 2, Slot: 0}, Row: rel.Row{rel.Int(2), rel.Null()}},
			},
		}},
	}
	if err := WriteCheckpoint(nil, dir, ck); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != ck.Seq || got.Clock != ck.Clock || len(got.Tables) != 1 {
		t.Fatalf("header mismatch: %+v", got)
	}
	gt, wt := got.Tables[0], ck.Tables[0]
	if gt.ID != wt.ID || gt.Name != wt.Name || !reflect.DeepEqual(gt.Indexes, wt.Indexes) || !reflect.DeepEqual(gt.Rows, wt.Rows) {
		t.Fatalf("table mismatch:\n got %+v\nwant %+v", gt, wt)
	}
	if len(gt.Schema.Cols) != 2 || gt.Schema.Cols[0].Name != "id" || !gt.Schema.Cols[0].Unique {
		t.Fatalf("schema mismatch: %+v", gt.Schema.Cols)
	}
}

func TestLoadCheckpointMissingAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	ck, err := LoadCheckpoint(nil, dir)
	if err != nil || ck != nil {
		t.Fatalf("empty dir: ck=%v err=%v", ck, err)
	}

	if err := WriteCheckpoint(nil, dir, &Checkpoint{Seq: 1, Clock: 10}); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(nil, dir, &Checkpoint{Seq: 3, Clock: 30}); err != nil {
		t.Fatal(err)
	}
	ck, err = LoadCheckpoint(nil, dir)
	if err != nil || ck.Seq != 3 {
		t.Fatalf("newest wins: ck=%+v err=%v", ck, err)
	}

	// A corrupt newest checkpoint is a hard error, never a silent fallback:
	// the older checkpoint's segments may already be deleted.
	path := checkpointPath(dir, 3)
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(nil, dir); err == nil {
		t.Fatal("corrupt newest checkpoint must fail recovery")
	}
}

func TestRemoveCheckpointsBefore(t *testing.T) {
	dir := t.TempDir()
	for _, seq := range []uint64{1, 2, 5} {
		if err := WriteCheckpoint(nil, dir, &Checkpoint{Seq: seq, Clock: seq}); err != nil {
			t.Fatal(err)
		}
	}
	if err := RemoveCheckpointsBefore(nil, dir, 5); err != nil {
		t.Fatal(err)
	}
	cks, _ := listCheckpoints(vfs.OS, dir)
	if len(cks) != 1 || cks[0].Seq != 5 {
		t.Fatalf("want only checkpoint 5, got %+v", cks)
	}
}

func TestReplayHardErrorInSealedSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Mode: SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	l.GateRLock()
	lsn, _ := l.AppendCommit(1, testOps(2))
	l.GateRUnlock()
	l.Sync(lsn)
	l.GateLock()
	sealed, err := l.Rotate()
	l.GateUnlock()
	if err != nil {
		t.Fatal(err)
	}
	l.GateRLock()
	lsn, _ = l.AppendCommit(2, testOps(2))
	l.GateRUnlock()
	l.Sync(lsn)
	l.Close()

	// Corrupt the sealed (non-final) segment: replay must fail loudly.
	path := segmentPath(dir, sealed)
	data, _ := os.ReadFile(path)
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplaySegments(nil, dir, func(*Record) error { return nil }); err == nil {
		t.Fatal("corruption in a sealed segment must be a hard error")
	}
}

func TestOpenAppendsAfterExistingSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	l.GateRLock()
	lsn, _ := l.AppendCommit(1, testOps(1))
	l.GateRUnlock()
	l.Sync(lsn)
	l.Close()

	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	l2.GateRLock()
	lsn, _ = l2.AppendCommit(2, testOps(1))
	l2.GateRUnlock()
	l2.Sync(lsn)
	l2.Close()

	segs, _ := ListSegments(nil, dir)
	if len(segs) != 2 {
		t.Fatalf("reopen must start a fresh segment, got %d", len(segs))
	}
	st, err := ReplaySegments(nil, dir, func(*Record) error { return nil })
	if err != nil || st.Records != 2 || st.MaxCTS != 2 {
		t.Fatalf("replay across reopens: %+v err=%v", st, err)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	l.GateRLock()
	_, err = l.AppendCommit(1, testOps(1))
	l.GateRUnlock()
	if err == nil {
		t.Fatal("append after Close must fail")
	}
}

// metricsRecorder satisfies Metrics for observability assertions.
type metricsRecorder struct {
	mu     sync.Mutex
	counts map[string]float64
	obs    map[string][]float64
}

func (m *metricsRecorder) Count(series string, n float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.counts == nil {
		m.counts = make(map[string]float64)
	}
	m.counts[series] += n
}

func (m *metricsRecorder) Observe(series string, v float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.obs == nil {
		m.obs = make(map[string][]float64)
	}
	m.obs[series] = append(m.obs[series], v)
}

func TestMetricsSeries(t *testing.T) {
	rec := &metricsRecorder{}
	l, err := Open(Options{Dir: t.TempDir(), Mode: SyncCommit, Metrics: rec})
	if err != nil {
		t.Fatal(err)
	}
	l.GateRLock()
	lsn, _ := l.AppendCommit(1, testOps(1))
	l.GateRUnlock()
	if err := l.Sync(lsn); err != nil {
		t.Fatal(err)
	}
	l.Close()
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.counts["wal.bytes"] <= 0 {
		t.Fatal("wal.bytes never counted")
	}
	if rec.counts["wal.fsyncs"] <= 0 {
		t.Fatal("wal.fsyncs never counted")
	}
	if len(rec.obs["wal.group_size"]) == 0 {
		t.Fatal("wal.group_size never observed")
	}
}

func TestListSegmentsIgnoresStrangers(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"wal-abc.log", "checkpoint-1.ckpt", "notes.txt", "wal-00000007.log.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := ListSegments(nil, dir)
	if err != nil || len(segs) != 0 {
		t.Fatalf("got %+v err=%v", segs, err)
	}
}
