package wal

import (
	"encoding/binary"
	"os"
	"testing"

	"neurdb/internal/rel"
	"neurdb/internal/storage"
)

// buildSegment writes a single-segment log with n commit records and returns
// the segment path, the file contents, and the offset at which the last
// record's frame (header + payload) begins.
func buildSegment(t *testing.T, dir string, n int) (path string, data []byte, lastOff int) {
	t.Helper()
	l, err := Open(Options{Dir: dir, Mode: SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		l.GateRLock()
		lsn, err := l.AppendCommit(uint64(i+1), []Op{{
			Kind:  OpInsert,
			Table: 1,
			ID:    storage.RowID{Page: 0, Slot: uint32(i)},
			Row:   rel.Row{rel.Int(int64(i)), rel.Text("torn-tail-probe")},
		}})
		l.GateRUnlock()
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := ListSegments(nil, dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want 1 segment, got %d (err=%v)", len(segs), err)
	}
	path = segs[0].Path
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Walk the frames to find where the last record begins.
	off := segmentHeaderLen
	for i := 0; i < n; i++ {
		lastOff = off
		length := int(binary.LittleEndian.Uint32(data[off:]))
		off += recordHeaderLen + length
	}
	if off != len(data) {
		t.Fatalf("frame walk ended at %d, file is %d bytes", off, len(data))
	}
	return path, data, lastOff
}

// replayCount replays dir and returns the records applied plus the stats.
func replayCount(t *testing.T, dir string) (ReplayStats, []uint64) {
	t.Helper()
	var seen []uint64
	st, err := ReplaySegments(nil, dir, func(r *Record) error {
		seen = append(seen, r.CommitTS)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return st, seen
}

// TestTornTailTruncation truncates the final segment at every byte boundary
// inside the last record's frame. Each cut simulates a crash mid-append;
// replay must stop cleanly at the last whole record — never error, never
// surface a partial record.
func TestTornTailTruncation(t *testing.T) {
	const n = 3
	base := t.TempDir()
	path, data, lastOff := buildSegment(t, base, n)

	for cut := lastOff; cut < len(data); cut++ {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st, seen := replayCount(t, base)
		if st.Records != n-1 {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, st.Records, n-1)
		}
		// A cut exactly at the record boundary leaves a clean shorter log —
		// indistinguishable from never having appended the last record — so
		// only cuts inside the frame report a torn tail.
		if torn := cut > lastOff; st.Truncated != torn {
			t.Fatalf("cut=%d: Truncated=%v, want %v", cut, st.Truncated, torn)
		}
		if len(seen) != n-1 || seen[n-2] != n-1 {
			t.Fatalf("cut=%d: wrong records survived: %v", cut, seen)
		}
	}

	// Restore the full file: all n records come back, no truncation flag.
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st, seen := replayCount(t, base)
	if st.Records != n || st.Truncated || seen[n-1] != n {
		t.Fatalf("intact file: %+v %v", st, seen)
	}
}

// TestTornTailCorruption flips each byte of the last record's frame in turn.
// A corrupted length field, CRC, or payload in the final segment is
// indistinguishable from a torn append and must truncate to the previous
// record, not error.
func TestTornTailCorruption(t *testing.T) {
	const n = 3
	base := t.TempDir()
	path, data, lastOff := buildSegment(t, base, n)

	for pos := lastOff; pos < len(data); pos++ {
		mut := make([]byte, len(data))
		copy(mut, data)
		mut[pos] ^= 0xff
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		st, seen := replayCount(t, base)
		// A flipped length byte can make the frame look short (truncated) or
		// implausibly long; either way the last whole record is record n-1.
		if st.Records != n-1 {
			t.Fatalf("pos=%d: replayed %d records, want %d", pos, st.Records, n-1)
		}
		if !st.Truncated {
			t.Fatalf("pos=%d: corruption not reported as torn tail", pos)
		}
		if len(seen) != n-1 || seen[n-2] != n-1 {
			t.Fatalf("pos=%d: wrong records survived: %v", pos, seen)
		}
	}
}

// TestTornSegmentHeader truncates or corrupts the final segment's own header:
// the crash interrupted segment creation, so replay treats the segment as
// empty rather than failing.
func TestTornSegmentHeader(t *testing.T) {
	base := t.TempDir()
	path, data, _ := buildSegment(t, base, 1)

	for cut := 0; cut < segmentHeaderLen; cut++ {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st, _ := replayCount(t, base)
		if st.Records != 0 || !st.Truncated {
			t.Fatalf("cut=%d: %+v, want empty truncated segment", cut, st)
		}
	}
}
