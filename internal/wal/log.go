package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"neurdb/internal/vfs"
)

// SyncMode selects when appended records are forced to stable storage.
type SyncMode int

const (
	// SyncCommit fsyncs before a commit is acknowledged, with leader/follower
	// group commit batching concurrent committers onto one fsync (default).
	SyncCommit SyncMode = iota
	// SyncInterval acknowledges immediately and fsyncs on a background timer
	// (the PostgreSQL synchronous_commit=off trade: a crash may lose the last
	// interval of acknowledged commits, but never corrupts recovered state).
	SyncInterval
	// SyncOff never fsyncs; records still reach the OS via buffered writes.
	// A machine crash loses everything since the last checkpoint; a process
	// crash loses only the records still in the user-space buffer.
	SyncOff
)

// ParseSyncMode maps the wal_sync knob's string form ("commit", "interval",
// "off") to a SyncMode.
func ParseSyncMode(s string) (SyncMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "commit", "group":
		return SyncCommit, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync mode %q (want commit|interval|off)", s)
	}
}

// Metrics receives the log's monitor series; monitor.Tracker satisfies it.
type Metrics interface {
	Count(series string, n float64)
	Observe(series string, v float64)
}

// Options configures Open.
type Options struct {
	// Dir is the data directory holding wal-*.log segments and checkpoints.
	Dir string
	// Mode selects the sync policy (default SyncCommit).
	Mode SyncMode
	// Interval is the background fsync period for SyncInterval (default 2ms).
	Interval time.Duration
	// NoGroup defeats leader/follower batching so every Sync performs its
	// own fsync — the per-commit-fsync baseline the durability benchmark
	// compares group commit against. Ignored outside SyncCommit.
	NoGroup bool
	// Metrics, when set, receives wal.bytes / wal.fsyncs / wal.group_size.
	Metrics Metrics
	// FS is the filesystem the log writes through (default vfs.OS). Tests
	// pass a vfs.FaultFS here to script disk faults deterministically.
	FS vfs.FS
}

// segmentPrefix/segmentSuffix name WAL segment files: wal-<seq>.log.
const (
	segmentPrefix = "wal-"
	segmentSuffix = ".log"
	// segmentHeaderLen is the fixed per-segment header: 8-byte magic plus
	// the 8-byte little-endian segment sequence number.
	segmentHeaderLen = 16
	// recordHeaderLen prefixes every record: u32 payload length + u32 CRC32C
	// of the payload.
	recordHeaderLen = 8
)

var segmentMagic = [8]byte{'N', 'D', 'B', 'W', 'A', 'L', '0', '1'}

// Log is the write-ahead log. Appends go through an in-process buffer under
// mu; Sync makes them durable according to the configured mode. The
// checkpointer uses Gate/Rotate to cut the log at a quiescent point.
type Log struct {
	dir     string
	fs      vfs.FS
	mode    SyncMode
	noGroup bool
	metrics Metrics

	// gate spans each commit's append-to-publish window (readers) and the
	// checkpointer's cut (writer): while the checkpointer holds it, no
	// commit is between drawing its timestamp and becoming visible, so a
	// rotation under the gate cleanly splits records into "fully published,
	// captured by the snapshot" and "later than the snapshot".
	gate sync.RWMutex

	mu        sync.Mutex // guards file, bw, seq/offset state
	f         vfs.File
	bw        *bufio.Writer
	seq       uint64 // current segment sequence number
	appendLSN uint64 // records appended (monotonic, process-lifetime)
	scratch   []byte // payload build buffer

	// Group commit state: followers wait on cond until syncedLSN covers
	// their record; one waiter at a time becomes leader, flushes + fsyncs,
	// and publishes the new watermark.
	syncMu    sync.Mutex
	syncCond  *sync.Cond
	syncedLSN uint64
	syncing   bool
	syncErr   error // sticky: a failed fsync poisons the log
	// poison mirrors syncErr for lock-free reads: the commit path's
	// fail-stop check (Err) runs before every logged commit and must not
	// contend with group-commit waiters on syncMu.
	poison atomic.Pointer[error]

	// ioMu serializes non-leader fsync paths (NoGroup mode, the interval
	// ticker, rotation, Close). NoGroup needs it for honesty: without it,
	// concurrent per-commit fsyncs batch inside the kernel and the
	// "fsync-per-commit" benchmark baseline silently becomes group commit.
	ioMu sync.Mutex

	closed   atomic.Bool
	stopTick chan struct{}
	tickDone chan struct{}

	bytes      atomic.Uint64 // payload+header bytes appended
	fsyncs     atomic.Uint64
	records    atomic.Uint64
	commits    atomic.Uint64 // commit records appended (group-size numerator)
	lastSynced uint64        // commits covered by previous fsyncs (syncMu)
}

// Open creates or opens the log in opts.Dir, appending to a fresh segment
// after any existing ones (recovery reads the old segments; new records must
// never interleave into a possibly-torn tail).
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: Options.Dir is required")
	}
	fs := opts.FS
	if fs == nil {
		fs = vfs.OS
	}
	if err := fs.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{
		dir:     opts.Dir,
		fs:      fs,
		mode:    opts.Mode,
		noGroup: opts.NoGroup,
		metrics: opts.Metrics,
	}
	l.syncCond = sync.NewCond(&l.syncMu)
	segs, err := ListSegments(fs, opts.Dir)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if n := len(segs); n > 0 {
		next = segs[n-1].Seq + 1
	}
	if err := l.openSegmentLocked(next); err != nil {
		return nil, err
	}
	if opts.Mode == SyncInterval {
		iv := opts.Interval
		if iv <= 0 {
			iv = 2 * time.Millisecond
		}
		l.stopTick = make(chan struct{})
		l.tickDone = make(chan struct{})
		go l.tickLoop(iv)
	}
	return l, nil
}

// tickLoop is the SyncInterval background fsync driver.
func (l *Log) tickLoop(iv time.Duration) {
	defer close(l.tickDone)
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-l.stopTick:
			return
		case <-t.C:
			l.syncNow()
		}
	}
}

// openSegmentLocked starts segment seq. Callers hold mu (or have exclusive
// access during Open).
func (l *Log) openSegmentLocked(seq uint64) error {
	path := segmentPath(l.dir, seq)
	f, err := l.fs.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var hdr [segmentHeaderLen]byte
	copy(hdr[:], segmentMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	if _, err := f.Write(hdr[:]); err != nil {
		_ = f.Close() // error path: the write failure is the error to report
		return err
	}
	// Make the directory entry durable now: a commit fsync later only
	// covers the file's data, not its existence in the directory.
	if err := syncDir(l.fs, l.dir); err != nil {
		_ = f.Close() // error path: the dir-sync failure is the error to report
		return err
	}
	l.f = f
	l.seq = seq
	if l.bw == nil {
		l.bw = bufio.NewWriterSize(f, 256<<10)
	} else {
		l.bw.Reset(f)
	}
	return nil
}

func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", segmentPrefix, seq, segmentSuffix))
}

// SegmentRef names one on-disk segment.
type SegmentRef struct {
	Seq  uint64
	Path string
}

// ListSegments returns the data directory's WAL segments in sequence order.
func ListSegments(fs vfs.FS, dir string) ([]SegmentRef, error) {
	if fs == nil {
		fs = vfs.OS
	}
	ents, err := fs.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []SegmentRef
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		seqStr := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
		seq, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			continue
		}
		out = append(out, SegmentRef{Seq: seq, Path: filepath.Join(dir, name)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// GateRLock enters a commit window: held from commit-timestamp draw through
// in-memory publication so the checkpointer can exclude half-published
// commits from its cut.
func (l *Log) GateRLock() {
	l.gate.RLock()
	gateEnter()
}

// GateRUnlock leaves a commit window.
func (l *Log) GateRUnlock() {
	gateExit()
	l.gate.RUnlock()
}

// GateLock excludes all commit windows (checkpoint cut, DDL ordering).
func (l *Log) GateLock() {
	l.gate.Lock()
	gateEnter()
}

// GateUnlock releases the exclusive gate.
func (l *Log) GateUnlock() {
	gateExit()
	l.gate.Unlock()
}

// AppendCommit appends one committed transaction's redo record and returns
// its LSN for Sync. The caller holds the gate (read side).
func (l *Log) AppendCommit(cts uint64, ops []Op) (uint64, error) {
	assertGated()
	l.mu.Lock()
	l.scratch = encodeCommit(l.scratch[:0], cts, ops)
	lsn, err := l.appendLocked(l.scratch)
	l.mu.Unlock()
	if err == nil {
		l.commits.Add(1)
	}
	return lsn, err
}

// AppendDDL appends a pre-encoded DDL payload (EncodeCreateTable and
// friends). The caller holds the gate exclusively so the record is ordered
// before any commit that touches the new object.
func (l *Log) AppendDDL(payload []byte) (uint64, error) {
	l.mu.Lock()
	lsn, err := l.appendLocked(payload)
	l.mu.Unlock()
	return lsn, err
}

func (l *Log) appendLocked(payload []byte) (uint64, error) {
	if l.closed.Load() {
		return 0, fmt.Errorf("wal: log closed")
	}
	var hdr [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	if _, err := l.bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := l.bw.Write(payload); err != nil {
		return 0, err
	}
	l.appendLSN++
	l.records.Add(1)
	l.bytes.Add(uint64(len(payload) + recordHeaderLen))
	if l.metrics != nil {
		l.metrics.Count("wal.bytes", float64(len(payload)+recordHeaderLen))
	}
	return l.appendLSN, nil
}

// Sync blocks until the record at lsn is durable under the configured mode.
// Under SyncCommit one caller becomes the fsync leader while later arrivals
// wait; the leader's single fsync covers every record appended before it
// flushed, so concurrent committers share the disk round trip.
func (l *Log) Sync(lsn uint64) error {
	switch l.mode {
	case SyncOff, SyncInterval:
		// Acknowledge immediately. Interval mode's ticker (or Close) will
		// flush + fsync behind us; Off mode flushes opportunistically so the
		// user-space buffer stays bounded.
		return nil
	}
	if l.noGroup {
		return l.syncNow()
	}
	l.syncMu.Lock()
	for {
		if l.syncErr != nil {
			err := l.syncErr
			l.syncMu.Unlock()
			return err
		}
		if l.syncedLSN >= lsn {
			l.syncMu.Unlock()
			return nil
		}
		if !l.syncing {
			break
		}
		l.syncCond.Wait()
	}
	l.syncing = true
	l.syncMu.Unlock()

	target, commits, err := l.flushAndSync()

	l.syncMu.Lock()
	l.syncing = false
	if err != nil {
		l.syncErr = err
		l.poison.CompareAndSwap(nil, &err)
	} else {
		if target > l.syncedLSN {
			l.syncedLSN = target
		}
		if l.metrics != nil && commits > l.lastSynced {
			// Group size: commit records made durable by this one fsync.
			l.metrics.Observe("wal.group_size", float64(commits-l.lastSynced))
		}
		if commits > l.lastSynced {
			l.lastSynced = commits
		}
	}
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
	if err != nil {
		return err
	}
	if target >= lsn {
		return nil
	}
	// A racing append slipped past our flush; wait for the next leader.
	return l.Sync(lsn)
}

// syncNow flushes and fsyncs immediately (interval ticker, NoGroup mode,
// rotation, Close).
func (l *Log) syncNow() error {
	l.syncMu.Lock()
	if l.syncErr != nil {
		err := l.syncErr
		l.syncMu.Unlock()
		return err
	}
	l.syncMu.Unlock()
	l.ioMu.Lock()
	target, commits, err := l.flushAndSync()
	l.ioMu.Unlock()
	l.syncMu.Lock()
	if err != nil {
		l.syncErr = err
		l.poison.CompareAndSwap(nil, &err)
	} else {
		if target > l.syncedLSN {
			l.syncedLSN = target
		}
		if l.metrics != nil && commits > l.lastSynced {
			l.metrics.Observe("wal.group_size", float64(commits-l.lastSynced))
		}
		if commits > l.lastSynced {
			l.lastSynced = commits
		}
	}
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
	return err
}

// Err returns the sticky poison error, or nil while the log is healthy.
// Once an fsync has failed the log never un-poisons: the kernel may have
// dropped the dirty pages the failed fsync covered, so no later fsync can
// retroactively make those records durable. Callers use this as a fail-stop
// check before accepting new work; restart-and-recover is the only way back.
func (l *Log) Err() error {
	if p := l.poison.Load(); p != nil {
		return *p
	}
	return nil
}

// flushAndSync pushes the user-space buffer to the OS and fsyncs the current
// segment, returning the LSN and commit count the fsync covers.
func (l *Log) flushAndSync() (lsn uint64, commits uint64, err error) {
	l.mu.Lock()
	lsn = l.appendLSN
	commits = l.commits.Load()
	err = l.bw.Flush()
	f := l.f
	l.mu.Unlock()
	if err != nil {
		return lsn, commits, err
	}
	if err := f.Sync(); err != nil {
		return lsn, commits, err
	}
	l.fsyncs.Add(1)
	if l.metrics != nil {
		l.metrics.Count("wal.fsyncs", 1)
	}
	return lsn, commits, nil
}

// Rotate seals the current segment (flush + fsync) and starts a new one,
// returning the sealed segment's sequence number. The caller holds the gate
// exclusively, so no commit record straddles the boundary half-published.
func (l *Log) Rotate() (sealed uint64, err error) {
	if err := l.syncNow(); err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	sealed = l.seq
	old := l.f
	if err := l.openSegmentLocked(l.seq + 1); err != nil {
		// The old segment stays current; appends continue into it.
		l.f = old
		l.bw.Reset(old)
		return 0, err
	}
	// The sealed segment's bytes are already durable (syncNow above) and
	// the rotation has committed — a descriptor-release failure here must
	// not be reported as a failed rotation.
	_ = old.Close()
	return sealed, nil
}

// RemoveThrough deletes segments with sequence <= seq, oldest first. The
// oldest-first order preserves the replay invariant that the retained
// segments are always a suffix: a crash mid-removal leaves extra old
// segments, never a gap.
func (l *Log) RemoveThrough(seq uint64) error {
	segs, err := ListSegments(l.fs, l.dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s.Seq > seq {
			break
		}
		l.mu.Lock()
		cur := l.seq
		l.mu.Unlock()
		if s.Seq >= cur {
			break // never delete the live segment
		}
		if err := l.fs.Remove(s.Path); err != nil {
			return err
		}
	}
	return nil
}

// Stats reports cumulative append/sync counters.
func (l *Log) Stats() (bytes, records, commits, fsyncs uint64) {
	return l.bytes.Load(), l.records.Load(), l.commits.Load(), l.fsyncs.Load()
}

// Bytes returns the bytes appended so far (checkpoint trigger input).
func (l *Log) Bytes() uint64 { return l.bytes.Load() }

// Dir returns the data directory.
func (l *Log) Dir() string { return l.dir }

// FS returns the filesystem the log writes through.
func (l *Log) FS() vfs.FS { return l.fs }

// Close flushes, fsyncs, and closes the log. Further appends fail.
func (l *Log) Close() error {
	if l.closed.Swap(true) {
		return nil
	}
	if l.stopTick != nil {
		close(l.stopTick)
		<-l.tickDone
	}
	err := l.syncNow()
	l.mu.Lock()
	if ferr := l.f.Close(); err == nil {
		err = ferr
	}
	l.mu.Unlock()
	return err
}
