package wal

// Fault-injection coverage for the WAL: every error return in log.go,
// checkpoint.go, and replay.go is driven by a scripted vfs.FaultFS, and the
// durability invariant — acknowledged commits survive recovery — is checked
// under torn writes and ENOSPC. These tests complement crashtest (process
// kills) with deterministic, single-process fault points.

import (
	"errors"
	"testing"

	"neurdb/internal/rel"
	"neurdb/internal/storage"
	"neurdb/internal/vfs"
)

// faultLog opens a log in a temp dir through the given FaultFS.
func faultLog(t *testing.T, ffs *vfs.FaultFS, mode SyncMode) (*Log, string) {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Mode: mode, FS: ffs})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return l, dir
}

// appendSync appends one commit record and syncs it, returning the error
// from whichever step failed first.
func appendSync(l *Log, cts uint64) error {
	l.GateRLock()
	lsn, err := l.AppendCommit(cts, testOps(2))
	l.GateRUnlock()
	if err != nil {
		return err
	}
	return l.Sync(lsn)
}

func TestFaultOpenMkdirFails(t *testing.T) {
	ffs := vfs.NewFaultFS(nil)
	ffs.AddFault(vfs.Fault{Op: vfs.OpMkdirAll})
	if _, err := Open(Options{Dir: t.TempDir() + "/wal", FS: ffs}); !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("want EIO from MkdirAll, got %v", err)
	}
}

func TestFaultOpenSegmentCreateFails(t *testing.T) {
	ffs := vfs.NewFaultFS(nil)
	ffs.AddFault(vfs.Fault{Op: vfs.OpOpenFile, Path: segmentPrefix})
	if _, err := Open(Options{Dir: t.TempDir(), FS: ffs}); !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("want EIO from segment create, got %v", err)
	}
}

func TestFaultOpenHeaderWriteFails(t *testing.T) {
	ffs := vfs.NewFaultFS(nil)
	ffs.AddFault(vfs.Fault{Op: vfs.OpWrite, Path: segmentPrefix, Err: vfs.ErrNoSpace})
	if _, err := Open(Options{Dir: t.TempDir(), FS: ffs}); !errors.Is(err, vfs.ErrNoSpace) {
		t.Fatalf("want ENOSPC from header write, got %v", err)
	}
}

func TestFaultOpenDirSyncFails(t *testing.T) {
	// The first sync op during Open is the directory fsync that makes the
	// new segment's directory entry durable (segment fsyncs only happen at
	// commit time).
	ffs := vfs.NewFaultFS(nil)
	ffs.AddFault(vfs.Fault{Op: vfs.OpSync})
	if _, err := Open(Options{Dir: t.TempDir(), FS: ffs}); !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("want EIO from dir sync, got %v", err)
	}
}

func TestFaultListSegmentsReadDirFails(t *testing.T) {
	ffs := vfs.NewFaultFS(nil)
	ffs.AddFault(vfs.Fault{Op: vfs.OpReadDir})
	if _, err := ListSegments(ffs, t.TempDir()); !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("want EIO from ReadDir, got %v", err)
	}
}

// TestFaultAppendFlushFails drives the bw.Flush error path in flushAndSync:
// the commit that hits it gets a clean error, and the failure is sticky.
func TestFaultAppendFlushFails(t *testing.T) {
	ffs := vfs.NewFaultFS(nil)
	// Write #1 on the segment is the header (during Open); write #2 is the
	// first commit's buffer flush.
	ffs.AddFault(vfs.Fault{Op: vfs.OpWrite, Path: segmentPrefix, Nth: 2})
	l, _ := faultLog(t, ffs, SyncCommit)
	defer l.Close()

	if err := appendSync(l, 1); !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("want EIO from flush, got %v", err)
	}
	if err := l.Err(); !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("log not poisoned after flush failure: Err() = %v", err)
	}
}

// TestFaultFsyncPoisonSticky is the core fail-stop property: one failed
// fsync poisons the log permanently. The failing commit sees the raw error;
// every later Sync sees the same sticky error even though the disk has
// "recovered" (faults cleared).
func TestFaultFsyncPoisonSticky(t *testing.T) {
	ffs := vfs.NewFaultFS(nil)
	ffs.AddFault(vfs.Fault{Op: vfs.OpSync, Path: segmentPrefix})
	l, _ := faultLog(t, ffs, SyncCommit)
	defer l.Close()

	if err := appendSync(l, 1); !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("want EIO from fsync, got %v", err)
	}
	ffs.ClearFaults() // the device comes back; the log must not trust it
	if err := appendSync(l, 2); !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("poison not sticky: second sync got %v", err)
	}
	if err := l.Err(); !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("Err() = %v, want sticky EIO", err)
	}
	// Close reports the sticky error too — the caller's last chance to
	// learn the tail was never durable.
	if err := l.Close(); !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("Close() = %v, want sticky EIO", err)
	}
}

// TestFaultNoSpaceTornTailRecovery fills the "disk" mid-segment: a commit's
// flush tears after a few bytes with ENOSPC. The unacknowledged commit is
// torn; every commit acknowledged before it must replay.
func TestFaultNoSpaceTornTailRecovery(t *testing.T) {
	ffs := vfs.NewFaultFS(nil)
	// Writes on the segment: #1 header, #2..#4 commits 1..3, #5 commit 4
	// (torn after 3 bytes — not even a whole record header).
	ffs.AddFault(vfs.Fault{Op: vfs.OpWrite, Path: segmentPrefix, Nth: 5, Err: vfs.ErrNoSpace, Short: 3})
	l, dir := faultLog(t, ffs, SyncCommit)

	var acked []uint64
	for cts := uint64(1); cts <= 4; cts++ {
		if err := appendSync(l, cts); err != nil {
			if !errors.Is(err, vfs.ErrNoSpace) {
				t.Fatalf("commit %d: want ENOSPC, got %v", cts, err)
			}
			break
		}
		acked = append(acked, cts)
	}
	if len(acked) != 3 {
		t.Fatalf("acked %v, want exactly commits 1..3", acked)
	}
	_ = l.Close() // returns the sticky error; the tail is already on disk

	// Recovery runs on the real filesystem — the fault script modeled the
	// device failing, not the surviving bytes.
	var recovered []uint64
	st, err := ReplaySegments(nil, dir, func(r *Record) error {
		if r.Kind == RecCommit {
			recovered = append(recovered, r.CommitTS)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !st.Truncated {
		t.Fatal("torn tail not detected")
	}
	for i, cts := range acked {
		if i >= len(recovered) || recovered[i] != cts {
			t.Fatalf("acked ⊆ recovered violated: acked %v, recovered %v", acked, recovered)
		}
	}
}

// TestFaultRotateFails verifies a failed rotation leaves the log fully
// usable on the old segment: the new-segment create fails, appends continue,
// and everything replays.
func TestFaultRotateFails(t *testing.T) {
	ffs := vfs.NewFaultFS(nil)
	// OpenFile #1 on wal- is the initial segment; #2 is the rotation target.
	ffs.AddFault(vfs.Fault{Op: vfs.OpOpenFile, Path: segmentPrefix, Nth: 2})
	l, dir := faultLog(t, ffs, SyncCommit)

	if err := appendSync(l, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Rotate(); !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("want EIO from rotation, got %v", err)
	}
	// The old segment stayed current: more commits land and sync fine.
	if err := appendSync(l, 2); err != nil {
		t.Fatalf("append after failed rotation: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var recovered []uint64
	if _, err := ReplaySegments(nil, dir, func(r *Record) error {
		recovered = append(recovered, r.CommitTS)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(recovered) != 2 || recovered[0] != 1 || recovered[1] != 2 {
		t.Fatalf("recovered %v, want [1 2]", recovered)
	}
}

func TestFaultRemoveThroughFails(t *testing.T) {
	ffs := vfs.NewFaultFS(nil)
	l, _ := faultLog(t, ffs, SyncCommit)
	defer l.Close()
	if err := appendSync(l, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	ffs.AddFault(vfs.Fault{Op: vfs.OpRemove, Path: segmentPrefix})
	if err := l.RemoveThrough(1); !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("want EIO from segment removal, got %v", err)
	}
	// The failed removal must not have left a gap: segment 1 is still there.
	segs, err := ListSegments(nil, l.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || segs[0].Seq != 1 {
		t.Fatalf("segments after failed removal: %+v", segs)
	}
}

// testCheckpoint builds a small but non-trivial checkpoint image.
func testCheckpoint(seq uint64) *Checkpoint {
	schema := rel.NewSchema(
		rel.Column{Name: "id", Typ: rel.TypeInt, Unique: true, NotNull: true},
		rel.Column{Name: "name", Typ: rel.TypeText},
	)
	return &Checkpoint{
		Seq:   seq,
		Clock: seq * 100,
		Tables: []CkptTable{{
			ID:     1,
			Name:   "users",
			Schema: schema,
			Rows: []CkptRow{
				{ID: storage.RowID{Page: 0, Slot: 0}, Row: rel.Row{rel.Int(1), rel.Text("a")}},
				{ID: storage.RowID{Page: 0, Slot: 1}, Row: rel.Row{rel.Int(2), rel.Text("b")}},
			},
		}},
	}
}

// TestFaultCheckpointPublicationAtomic fails checkpoint publication at every
// step — temp-file create, data write, fsync, close, rename, directory sync
// — and verifies the old checkpoint always wins recovery: WriteCheckpoint
// reports the fault and LoadCheckpoint (clean FS) still returns the old
// image, never a torn new one.
func TestFaultCheckpointPublicationAtomic(t *testing.T) {
	steps := []struct {
		name  string
		fault vfs.Fault
	}{
		{"tmp-create", vfs.Fault{Op: vfs.OpOpenFile, Path: ".ckpt.tmp"}},
		{"tmp-write", vfs.Fault{Op: vfs.OpWrite, Path: ".ckpt.tmp"}},
		{"tmp-write-torn", vfs.Fault{Op: vfs.OpWrite, Path: ".ckpt.tmp", Err: vfs.ErrNoSpace, Short: 10}},
		{"tmp-fsync", vfs.Fault{Op: vfs.OpSync, Path: ".ckpt.tmp"}},
		{"tmp-close", vfs.Fault{Op: vfs.OpClose, Path: ".ckpt.tmp"}},
		// Rename is journaled under its destination (the final name).
		{"rename", vfs.Fault{Op: vfs.OpRename, Path: checkpointSuffix}},
	}
	for _, step := range steps {
		t.Run(step.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := WriteCheckpoint(nil, dir, testCheckpoint(1)); err != nil {
				t.Fatalf("seed old checkpoint: %v", err)
			}
			ffs := vfs.NewFaultFS(nil)
			ffs.AddFault(step.fault)
			err := WriteCheckpoint(ffs, dir, testCheckpoint(2))
			if !errors.Is(err, step.fault.Err) && (step.fault.Err != nil || !errors.Is(err, vfs.ErrIO)) {
				t.Fatalf("WriteCheckpoint under %v: got %v", step.fault, err)
			}
			ck, err := LoadCheckpoint(nil, dir)
			if err != nil {
				t.Fatalf("recovery load after failed publication: %v", err)
			}
			if ck == nil || ck.Seq != 1 {
				t.Fatalf("old checkpoint lost: got %+v", ck)
			}
		})
	}

	// Directory-sync failure is the one step past the point of no return:
	// the rename already landed, so recovery may legitimately see the new
	// checkpoint — but it must be whole, and the error must still surface
	// so the checkpointer does not delete the old WAL segments.
	t.Run("dir-sync", func(t *testing.T) {
		dir := t.TempDir()
		if err := WriteCheckpoint(nil, dir, testCheckpoint(1)); err != nil {
			t.Fatal(err)
		}
		ffs := vfs.NewFaultFS(nil)
		// Sync #1 is the tmp-file fsync, #2 the directory fsync after rename.
		ffs.AddFault(vfs.Fault{Op: vfs.OpSync, Nth: 2})
		if err := WriteCheckpoint(ffs, dir, testCheckpoint(2)); !errors.Is(err, vfs.ErrIO) {
			t.Fatalf("want EIO from dir sync, got %v", err)
		}
		ck, err := LoadCheckpoint(nil, dir)
		if err != nil {
			t.Fatalf("load after dir-sync failure: %v", err)
		}
		if ck == nil || (ck.Seq != 1 && ck.Seq != 2) {
			t.Fatalf("checkpoint set corrupted: %+v", ck)
		}
	})
}

func TestFaultLoadCheckpointReadFails(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCheckpoint(nil, dir, testCheckpoint(1)); err != nil {
		t.Fatal(err)
	}
	ffs := vfs.NewFaultFS(nil)
	ffs.AddFault(vfs.Fault{Op: vfs.OpReadFile, Path: checkpointSuffix})
	if _, err := LoadCheckpoint(ffs, dir); !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("want EIO from checkpoint read, got %v", err)
	}
	ffs2 := vfs.NewFaultFS(nil)
	ffs2.AddFault(vfs.Fault{Op: vfs.OpReadDir})
	if _, err := LoadCheckpoint(ffs2, dir); !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("want EIO from checkpoint listing, got %v", err)
	}
}

func TestFaultRemoveCheckpointsBeforeFails(t *testing.T) {
	dir := t.TempDir()
	for seq := uint64(1); seq <= 2; seq++ {
		if err := WriteCheckpoint(nil, dir, testCheckpoint(seq)); err != nil {
			t.Fatal(err)
		}
	}
	ffs := vfs.NewFaultFS(nil)
	ffs.AddFault(vfs.Fault{Op: vfs.OpRemove, Path: checkpointSuffix})
	if err := RemoveCheckpointsBefore(ffs, dir, 2); !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("want EIO from checkpoint removal, got %v", err)
	}
	// The newest checkpoint is untouched either way.
	ck, err := LoadCheckpoint(nil, dir)
	if err != nil || ck == nil || ck.Seq != 2 {
		t.Fatalf("newest checkpoint lost: ck=%+v err=%v", ck, err)
	}
}

func TestFaultReplayReadFails(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Mode: SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	if err := appendSync(l, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ffs := vfs.NewFaultFS(nil)
	ffs.AddFault(vfs.Fault{Op: vfs.OpReadFile, Path: segmentPrefix})
	if _, err := ReplaySegments(ffs, dir, func(*Record) error { return nil }); !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("want EIO from segment read, got %v", err)
	}
}

// TestFaultCrashPointAckedRecovered is the crashtest invariant under a
// deterministic crash-point: commits stream in, the power "fails" at a
// scripted write, and every commit acknowledged before the crash must be
// recovered from the surviving bytes.
func TestFaultCrashPointAckedRecovered(t *testing.T) {
	for _, crashNth := range []int{3, 6, 10} {
		ffs := vfs.NewFaultFS(nil)
		ffs.AddFault(vfs.Fault{Op: vfs.OpWrite, Path: segmentPrefix, Nth: crashNth, Err: vfs.ErrNoSpace, Short: 2, Crash: true})
		l, dir := faultLog(t, ffs, SyncCommit)

		var acked []uint64
		for cts := uint64(1); cts <= 20; cts++ {
			if err := appendSync(l, cts); err != nil {
				break // crash fired somewhere in append/flush/fsync
			}
			acked = append(acked, cts)
		}
		if !ffs.Crashed() {
			t.Fatalf("crashNth=%d: crash point never fired", crashNth)
		}
		_ = l.Close()

		var recovered []uint64
		st, err := ReplaySegments(nil, dir, func(r *Record) error {
			if r.Kind == RecCommit {
				recovered = append(recovered, r.CommitTS)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("crashNth=%d: replay: %v", crashNth, err)
		}
		rec := make(map[uint64]bool, len(recovered))
		for _, cts := range recovered {
			rec[cts] = true
		}
		for _, cts := range acked {
			if !rec[cts] {
				t.Fatalf("crashNth=%d: acked commit %d lost (acked %v, recovered %v, stats %+v)",
					crashNth, cts, acked, recovered, st)
			}
		}
	}
}
