//go:build !invariants

package wal

// In normal builds the gate-protocol hooks compile to nothing; the
// invariant is enforced statically by neurdb-lint (commitgate) and, under
// -tags=invariants, by the runtime assertions in invariants_on.go.

func gateEnter() {}

func gateExit() {}

func assertGated() {}
