// Morsel-driven intra-query parallelism (HyPer-style): a page-range
// dispatcher over the heap feeds a worker pool that runs fused
// scan→filter→project pipelines, with parallel implementations of
// aggregation (per-worker partial accumulators merged in heap first-seen
// order), sort (per-worker sorted runs + k-way merge with a heap-order tie
// break), and hash join (lock-striped parallel build, parallel probe). All
// parallel operators emit exactly the row sequence their serial counterparts
// produce: morsels are re-sequenced in heap order by a bounded ring of
// rendezvous slots, so downstream operators — and differential tests —
// cannot tell the paths apart (float SUM/AVG excepted: addition order over
// partials is not associative, see docs/ARCHITECTURE.md).
package executor

import (
	"sort"
	"sync"
	"sync/atomic"

	"neurdb/internal/catalog"
	"neurdb/internal/plan"
	"neurdb/internal/rel"
	"neurdb/internal/storage"
)

// MorselPages is the page count per morsel: 16 pages (2048 rows) is large
// enough to amortize the claim and re-sequencing cost, small enough that
// work stays balanced across workers on medium tables.
const MorselPages = 16

// minParallelPages keeps small tables serial: below two morsels' worth of
// pages the fan-out cost exceeds the scan.
const minParallelPages = 2 * MorselPages

// parallelWorkerCount tracks live morsel workers across the process
// (instrumentation; the cancellation tests assert it drains to zero).
var parallelWorkerCount atomic.Int64

// ParallelWorkers reports how many morsel workers are currently running.
func ParallelWorkers() int64 { return parallelWorkerCount.Load() }

// pipeStage is one fused transform a worker applies to its morsel's rows.
// Exactly one field is set: pred filters, exprs projects, probe hash-joins.
type pipeStage struct {
	pred  rel.Expr
	exprs []rel.Expr
	probe *joinProbe
}

// scanPipeline is a compiled SeqScan→(Filter|Project)* plan subtree: the
// unit of morsel parallelism. Workers execute the whole pipeline against
// each morsel they claim, so filters and projections run in parallel with
// the scan instead of serially above an exchange.
type scanPipeline struct {
	table  *catalog.Table
	filter rel.Expr // SeqScan's pushed-down filter; may be nil
	stages []pipeStage
}

// extractPipeline compiles n into a scan pipeline, reporting ok=false when
// the subtree contains anything but SeqScan/Filter/Project (index scans are
// point reads, not page ranges; blocking operators split pipelines).
func extractPipeline(n plan.Node) (*scanPipeline, bool) {
	switch t := n.(type) {
	case *plan.SeqScan:
		return &scanPipeline{table: t.Table, filter: t.Filter}, true
	case *plan.Filter:
		p, ok := extractPipeline(t.Child)
		if !ok {
			return nil, false
		}
		p.stages = append(p.stages, pipeStage{pred: t.Pred})
		return p, true
	case *plan.Project:
		p, ok := extractPipeline(t.Child)
		if !ok {
			return nil, false
		}
		p.stages = append(p.stages, pipeStage{exprs: t.Exprs})
		return p, true
	default:
		// Blocking operators and point reads split pipelines.
		return nil, false
	}
}

// pipelineWorkers decides the degree of parallelism for a pipeline under
// ctx: 0 means stay serial (workers not requested, table too small), else
// the worker count clamped to the morsel count.
func pipelineWorkers(ctx *Ctx, p *scanPipeline) int {
	if ctx == nil || ctx.Workers <= 1 || p == nil {
		return 0
	}
	pages := p.table.Heap.NumPages()
	if pages < minParallelPages {
		return 0
	}
	w := ctx.Workers
	if m := (pages + MorselPages - 1) / MorselPages; w > m {
		w = m
	}
	if w <= 1 {
		return 0
	}
	return w
}

// serialized returns a context copy that forces serial execution below it
// (the LIMIT-dominated fallback).
func (ctx *Ctx) serialized() *Ctx {
	c := *ctx
	c.Workers = 1
	return &c
}

// morselRows claims the next morsel and materializes its visible rows with
// every pipeline stage applied. It returns idx=-1 once the source is
// drained. The returned slice is freshly allocated per morsel — ownership
// transfers to the receiver, which is what makes the exchange race-free.
func (p *scanPipeline) morselRows(ctx *Ctx, ms *storage.MorselSource, buf []*storage.Version) (int, []rel.Row) {
	idx, lo, hi, ok := ms.Next()
	if !ok {
		return -1, nil
	}
	rows := make([]rel.Row, 0, int(hi-lo)*storage.RowsPerPage)
	for pg := lo; pg < hi; pg++ {
		n := p.table.Heap.PageHeads(pg, buf)
		if n == 0 {
			continue
		}
		start := len(rows)
		rows = ctx.Mgr.ReadPage(p.table.ID, pg, buf[:n], ctx.Txn, rows)
		if p.filter != nil {
			kept := rows[:start]
			for _, row := range rows[start:] {
				if p.filter.Eval(row).AsBool() {
					kept = append(kept, row)
				}
			}
			rows = kept
		}
	}
	for si := range p.stages {
		st := &p.stages[si]
		switch {
		case st.pred != nil:
			kept := rows[:0]
			for _, row := range rows {
				if st.pred.Eval(row).AsBool() {
					kept = append(kept, row)
				}
			}
			rows = kept
		case st.probe != nil:
			rows = st.probe.apply(rows)
		default:
			for i, row := range rows {
				out := make(rel.Row, len(st.exprs))
				for j, e := range st.exprs {
					out[j] = e.Eval(row)
				}
				rows[i] = out
			}
		}
	}
	return idx, rows
}

// --- ordered exchange (parallel scan/filter/project) ---

type morselOut struct {
	idx  int
	rows []rel.Row
}

// parallelScan runs a scan pipeline on a worker pool and re-emits the
// per-morsel results in morsel order, so consumers observe exactly the
// serial scan's row sequence.
//
// The exchange is a ring of 2×workers rendezvous slots, each a 1-buffered
// channel: the worker that produced morsel i sends to slots[i%len], which
// blocks until the consumer has drained morsel i-len — workers can run at
// most one ring ahead of the consumer, bounding buffered memory without a
// coordinator. Claims come from an atomic counter, so the claimed set is
// always a prefix of the morsel sequence; the slot the consumer is waiting
// on is therefore always claimed by a worker that can complete, which rules
// out deadlock. Close signals done; workers parked on a full slot observe it
// and exit, and Close joins them before returning so the caller can finalize
// the read transaction safely.
type parallelScan struct {
	ctx     *Ctx
	pipe    *scanPipeline
	workers int

	slots   []chan morselOut
	done    chan struct{}
	wg      sync.WaitGroup
	morsels int
	nextIdx int       // next morsel ordinal to emit
	cur     []rel.Row // current morsel's rows
	pos     int
	opened  bool
	closed  bool
}

func newParallelScan(ctx *Ctx, pipe *scanPipeline, workers int) *parallelScan {
	return &parallelScan{ctx: ctx, pipe: pipe, workers: workers}
}

// tryParallelScan returns a morsel-parallel iterator when n is a pure
// scan→filter→project pipeline over a heap large enough to split.
func tryParallelScan(n plan.Node, ctx *Ctx) (BatchIter, bool) {
	pipe, ok := extractPipeline(n)
	if !ok {
		return nil, false
	}
	w := pipelineWorkers(ctx, pipe)
	if w <= 1 {
		return nil, false
	}
	return newParallelScan(ctx, pipe, w), true
}

func (s *parallelScan) Open() error {
	s.start()
	return nil
}

// start launches the worker pool. It is split from Open so the parallel
// hash join can populate its probe table first.
func (s *parallelScan) start() {
	if s.opened {
		return
	}
	s.opened = true
	ms := s.pipe.table.Heap.NewMorselSource(MorselPages)
	s.morsels = ms.Morsels()
	s.done = make(chan struct{})
	s.slots = make([]chan morselOut, 2*s.workers)
	for i := range s.slots {
		s.slots[i] = make(chan morselOut, 1)
	}
	s.wg.Add(s.workers)
	for w := 0; w < s.workers; w++ {
		go s.worker(ms)
	}
}

func (s *parallelScan) worker(ms *storage.MorselSource) {
	parallelWorkerCount.Add(1)
	defer parallelWorkerCount.Add(-1)
	defer s.wg.Done()
	buf := make([]*storage.Version, storage.RowsPerPage)
	for {
		select {
		case <-s.done:
			return
		default:
		}
		idx, rows := s.pipe.morselRows(s.ctx, ms, buf)
		if idx < 0 {
			return
		}
		select {
		case s.slots[idx%len(s.slots)] <- morselOut{idx, rows}:
		case <-s.done:
			return
		}
	}
}

func (s *parallelScan) NextBatch(dst *rel.Batch) (int, error) {
	dst.Reset()
	if s.closed {
		return 0, nil
	}
	for {
		for s.pos < len(s.cur) && dst.Len() < BatchSize {
			dst.Append(s.cur[s.pos])
			s.pos++
		}
		if dst.Len() >= BatchSize || s.nextIdx >= s.morsels {
			return dst.Len(), nil
		}
		out := <-s.slots[s.nextIdx%len(s.slots)]
		s.cur, s.pos = out.rows, 0
		s.nextIdx++
	}
}

func (s *parallelScan) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.opened {
		close(s.done)
		s.wg.Wait()
	}
	return nil
}

// --- parallel aggregation ---

// parallelAgg aggregates a scan pipeline with per-worker partial
// accumulators merged in a final step. Groups come out in global first-seen
// heap order (each partial tracks the smallest row sequence per group), so
// the output row order matches the serial aggBatch exactly.
type parallelAgg struct {
	ctx     *Ctx
	node    *plan.Agg
	pipe    *scanPipeline
	workers int

	out []rel.Row
	pos int
}

func (a *parallelAgg) Open() error {
	ms := a.pipe.table.Heap.NewMorselSource(MorselPages)
	partials := make([]*aggAcc, a.workers)
	var wg sync.WaitGroup
	wg.Add(a.workers)
	for w := 0; w < a.workers; w++ {
		go func(w int) {
			parallelWorkerCount.Add(1)
			defer parallelWorkerCount.Add(-1)
			defer wg.Done()
			acc := newAggAcc(a.node)
			buf := make([]*storage.Version, storage.RowsPerPage)
			for {
				idx, rows := a.pipe.morselRows(a.ctx, ms, buf)
				if idx < 0 {
					break
				}
				seq := uint64(idx) << 32
				for _, row := range rows {
					acc.add(row, seq)
					seq++
				}
			}
			partials[w] = acc
		}(w)
	}
	wg.Wait()
	merged := partials[0]
	for _, p := range partials[1:] {
		merged.mergeFrom(p)
	}
	a.out = merged.finalize()
	return nil
}

func (a *parallelAgg) NextBatch(dst *rel.Batch) (int, error) {
	dst.Reset()
	for a.pos < len(a.out) && dst.Len() < BatchSize {
		dst.Append(a.out[a.pos])
		a.pos++
	}
	return dst.Len(), nil
}

func (a *parallelAgg) Close() error { return nil }

// --- parallel sort ---

// sortRun is one worker's share of a parallel sort: rows with precomputed
// columnar key values, a heap-order sequence per row, and a sorted index
// permutation over them.
type sortRun struct {
	rows []rel.Row
	keys [][]rel.Value // [key][row]
	seqs []uint64
	idx  []int32
}

// parallelSort parallelizes key extraction and run sorting across workers,
// then k-way-merges the runs. Ties on every sort key break on the row's
// heap-order sequence, which reproduces the serial operator's stable sort
// exactly (stability there means heap order too).
type parallelSort struct {
	ctx     *Ctx
	keys    []plan.SortKey
	pipe    *scanPipeline
	workers int

	out []rel.Row
	pos int
}

// less orders (run a, position ai) against (run b, position bi) by the sort
// keys with a heap-sequence tie break. Positions index the runs' idx
// permutations' targets directly.
func (s *parallelSort) less(a *sortRun, ai int32, b *sortRun, bi int32) bool {
	for k := range s.keys {
		c := rel.Compare(a.keys[k][ai], b.keys[k][bi])
		if c == 0 {
			continue
		}
		if s.keys[k].Desc {
			return c > 0
		}
		return c < 0
	}
	return a.seqs[ai] < b.seqs[bi]
}

func (s *parallelSort) Open() error {
	ms := s.pipe.table.Heap.NewMorselSource(MorselPages)
	runs := make([]*sortRun, s.workers)
	var wg sync.WaitGroup
	wg.Add(s.workers)
	for w := 0; w < s.workers; w++ {
		go func(w int) {
			parallelWorkerCount.Add(1)
			defer parallelWorkerCount.Add(-1)
			defer wg.Done()
			run := &sortRun{keys: make([][]rel.Value, len(s.keys))}
			buf := make([]*storage.Version, storage.RowsPerPage)
			for {
				idx, rows := s.pipe.morselRows(s.ctx, ms, buf)
				if idx < 0 {
					break
				}
				seq := uint64(idx) << 32
				for _, row := range rows {
					run.rows = append(run.rows, row)
					run.seqs = append(run.seqs, seq)
					seq++
					for k := range s.keys {
						run.keys[k] = append(run.keys[k], s.keys[k].E.Eval(row))
					}
				}
			}
			run.idx = make([]int32, len(run.rows))
			for i := range run.idx {
				run.idx[i] = int32(i)
			}
			// The seq tie break makes the order total, so an unstable
			// sort is deterministic here.
			sort.Slice(run.idx, func(i, j int) bool {
				return s.less(run, run.idx[i], run, run.idx[j])
			})
			runs[w] = run
		}(w)
	}
	wg.Wait()

	// Merge the runs pairwise, tree-wise: each round halves the run count,
	// with every pair merged on its own goroutine, so the merge does
	// O(n log w) work across workers instead of O(n·w) on one. The seq tie
	// break makes the order total, so every merge schedule — pairwise or
	// the old k-way — produces the one sorted sequence: output identical.
	for len(runs) > 1 {
		next := make([]*sortRun, (len(runs)+1)/2)
		var mwg sync.WaitGroup
		for i := 0; i+1 < len(runs); i += 2 {
			mwg.Add(1)
			go func(i int) {
				parallelWorkerCount.Add(1)
				defer parallelWorkerCount.Add(-1)
				defer mwg.Done()
				next[i/2] = s.mergeRuns(runs[i], runs[i+1])
			}(i)
		}
		if len(runs)%2 == 1 {
			next[len(next)-1] = runs[len(runs)-1]
		}
		mwg.Wait()
		runs = next
	}
	final := runs[0]
	s.out = make([]rel.Row, len(final.rows))
	for i, p := range final.idx {
		s.out[i] = final.rows[p]
	}
	return nil
}

// mergeRuns merges two sorted runs into one whose idx permutation is the
// identity (rows, keys, and seqs are laid out in sorted order), so merged
// runs compose with further merges and with the final extraction.
func (s *parallelSort) mergeRuns(a, b *sortRun) *sortRun {
	n := len(a.idx) + len(b.idx)
	out := &sortRun{
		rows: make([]rel.Row, 0, n),
		seqs: make([]uint64, 0, n),
		keys: make([][]rel.Value, len(s.keys)),
		idx:  make([]int32, n),
	}
	for k := range out.keys {
		out.keys[k] = make([]rel.Value, 0, n)
	}
	take := func(r *sortRun, p int32) {
		out.rows = append(out.rows, r.rows[p])
		out.seqs = append(out.seqs, r.seqs[p])
		for k := range out.keys {
			out.keys[k] = append(out.keys[k], r.keys[k][p])
		}
	}
	ai, bi := 0, 0
	for ai < len(a.idx) && bi < len(b.idx) {
		if s.less(b, b.idx[bi], a, a.idx[ai]) {
			take(b, b.idx[bi])
			bi++
		} else {
			take(a, a.idx[ai])
			ai++
		}
	}
	for ; ai < len(a.idx); ai++ {
		take(a, a.idx[ai])
	}
	for ; bi < len(b.idx); bi++ {
		take(b, b.idx[bi])
	}
	for i := range out.idx {
		out.idx[i] = int32(i)
	}
	return out
}

func (s *parallelSort) NextBatch(dst *rel.Batch) (int, error) {
	dst.Reset()
	for s.pos < len(s.out) && dst.Len() < BatchSize {
		dst.Append(s.out[s.pos])
		s.pos++
	}
	return dst.Len(), nil
}

func (s *parallelSort) Close() error { return nil }

// --- parallel hash join ---

// joinProbe is the hash-probe pipeline stage: each worker probes the shared
// read-only table for its morsel's rows, carving joined rows from a
// morsel-local value slab. table is installed before workers start and never
// mutated afterwards.
type joinProbe struct {
	node  *plan.HashJoin
	table map[uint64][]rel.Row
}

func (jp *joinProbe) apply(in []rel.Row) []rel.Row {
	out := make([]rel.Row, 0, len(in))
	var slab []rel.Value
	for _, l := range in {
		key := l[jp.node.LKey]
		if key.IsNull() {
			continue
		}
		for _, r := range jp.table[key.Hash()] {
			if !rel.Equal(r[jp.node.RKey], key) {
				continue
			}
			out, slab = emitJoined(out, slab, l, r, jp.node.Residual)
		}
	}
	return out
}

// joinStripeCount is the lock striping of the parallel build table: hash
// buckets are distributed over this many independently locked stripes.
const joinStripeCount = 64

// buildJoinTableParallel drains a build-side pipeline with a worker pool
// into a lock-striped hash table, then flattens it into the plain probe
// table with every bucket sorted by build (heap) sequence — probe match
// order is therefore identical to a serial build.
func buildJoinTableParallel(ctx *Ctx, pipe *scanPipeline, rkey, workers int) map[uint64][]rel.Row {
	type buildEnt struct {
		seq uint64
		row rel.Row
	}
	type stripe struct {
		mu sync.Mutex
		m  map[uint64][]buildEnt
	}
	stripes := make([]*stripe, joinStripeCount)
	for i := range stripes {
		stripes[i] = &stripe{m: make(map[uint64][]buildEnt)}
	}
	ms := pipe.table.Heap.NewMorselSource(MorselPages)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			parallelWorkerCount.Add(1)
			defer parallelWorkerCount.Add(-1)
			defer wg.Done()
			buf := make([]*storage.Version, storage.RowsPerPage)
			local := make([]map[uint64][]buildEnt, joinStripeCount)
			for {
				idx, rows := pipe.morselRows(ctx, ms, buf)
				if idx < 0 {
					return
				}
				// Accumulate the morsel into worker-local stripe maps, then
				// splice each touched stripe under one lock acquisition —
				// per-morsel instead of per-row locking. The post-build
				// bucket sort restores deterministic (seq) order, so splice
				// interleaving across workers is irrelevant.
				base := uint64(idx) << 32
				for i, row := range rows {
					key := row[rkey]
					if key.IsNull() {
						continue
					}
					h := key.Hash()
					s := h % joinStripeCount
					if local[s] == nil {
						local[s] = make(map[uint64][]buildEnt)
					}
					local[s][h] = append(local[s][h], buildEnt{base + uint64(i), row})
				}
				for s, m := range local {
					if m == nil {
						continue
					}
					st := stripes[s]
					st.mu.Lock()
					for h, ents := range m {
						st.m[h] = append(st.m[h], ents...)
					}
					st.mu.Unlock()
					local[s] = nil
				}
			}
		}()
	}
	wg.Wait()
	// Flatten: the per-bucket seq sort is embarrassingly parallel (stripes
	// partition the hash space), so workers claim stripes from an atomic
	// counter and sort concurrently; only the final map assembly — bucket
	// pointers, no row data — runs single-threaded.
	flat := make([]map[uint64][]rel.Row, joinStripeCount)
	var nextStripe atomic.Int64
	var swg sync.WaitGroup
	swg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			parallelWorkerCount.Add(1)
			defer parallelWorkerCount.Add(-1)
			defer swg.Done()
			for {
				si := int(nextStripe.Add(1)) - 1
				if si >= joinStripeCount {
					return
				}
				st := stripes[si]
				if len(st.m) == 0 {
					continue
				}
				m := make(map[uint64][]rel.Row, len(st.m))
				for h, ents := range st.m {
					sort.Slice(ents, func(i, j int) bool { return ents[i].seq < ents[j].seq })
					rows := make([]rel.Row, len(ents))
					for i, e := range ents {
						rows[i] = e.row
					}
					m[h] = rows
				}
				flat[si] = m
			}
		}()
	}
	swg.Wait()
	table := make(map[uint64][]rel.Row)
	for _, m := range flat {
		for h, rows := range m {
			table[h] = rows
		}
	}
	return table
}

// parallelHashJoin is a hash join whose probe side is a morsel pipeline:
// Open builds the table (in parallel when the build side is a pipeline too,
// serially from a batch iterator otherwise), installs it in the probe stage,
// and then streams joined rows through the embedded ordered exchange.
type parallelHashJoin struct {
	parallelScan
	probe        *joinProbe
	right        BatchIter // serial build input; nil when buildPipe is set
	buildPipe    *scanPipeline
	buildWorkers int
}

func (j *parallelHashJoin) Open() error {
	if j.buildPipe != nil {
		j.probe.table = buildJoinTableParallel(j.ctx, j.buildPipe, j.probe.node.RKey, j.buildWorkers)
	} else {
		if err := j.right.Open(); err != nil {
			return err
		}
		defer j.right.Close()
		table, err := drainJoinBuild(j.right, j.probe.node.RKey)
		if err != nil {
			return err
		}
		j.probe.table = table
	}
	j.start()
	return nil
}
