package executor

import (
	"neurdb/internal/plan"
	"neurdb/internal/rel"
	"neurdb/internal/storage"
)

// nlJoinBatch is the batched nested-loop join: Open materializes the inner
// (right) side once, then every outer batch rescans it in a tight loop —
// joined rows are carved from a shared value slab and carried in pending
// across NextBatch calls, exactly like the hash join's emission path. With
// this, no relational operator is left on the row-iterator adapter.
type nlJoinBatch struct {
	node        *plan.NLJoin
	left, right BatchIter
	rightRows   []rel.Row
	in          *rel.Batch // outer-side input scratch
	pending     []rel.Row
	pendPos     int
	slab        []rel.Value
	exhausted   bool
}

func (j *nlJoinBatch) Open() error {
	if err := j.right.Open(); err != nil {
		return err
	}
	defer j.right.Close()
	build := rel.NewBatch(BatchSize)
	for {
		n, err := j.right.NextBatch(build)
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
		j.rightRows = append(j.rightRows, build.Rows...)
	}
	return j.left.Open()
}

// emitJoined appends l⋈r to pending via the slab, applying cond (which sees
// the concatenated row). It is shared by the nested-loop and index joins.
func emitJoined(pending []rel.Row, slab []rel.Value, l, r rel.Row, cond rel.Expr) ([]rel.Row, []rel.Value) {
	width := len(l) + len(r)
	if cap(slab)-len(slab) < width {
		n := joinSlabValues
		if n < width {
			n = width
		}
		slab = make([]rel.Value, 0, n)
	}
	start := len(slab)
	slab = append(slab, l...)
	slab = append(slab, r...)
	joined := rel.Row(slab[start:len(slab):len(slab)])
	if cond != nil && !cond.Eval(joined).AsBool() {
		return pending, slab[:start]
	}
	return append(pending, joined), slab
}

func (j *nlJoinBatch) NextBatch(dst *rel.Batch) (int, error) {
	dst.Reset()
	for dst.Len() < BatchSize {
		if j.pendPos < len(j.pending) {
			dst.Append(j.pending[j.pendPos])
			j.pendPos++
			continue
		}
		if j.exhausted {
			break
		}
		n, err := j.left.NextBatch(j.in)
		if err != nil {
			return 0, err
		}
		if n == 0 {
			j.exhausted = true
			break
		}
		j.pending = j.pending[:0]
		j.pendPos = 0
		for _, l := range j.in.Rows {
			for _, r := range j.rightRows {
				j.pending, j.slab = emitJoined(j.pending, j.slab, l, r, j.node.On)
			}
		}
	}
	return dst.Len(), nil
}

func (j *nlJoinBatch) Close() error { return j.left.Close() }

// indexJoinBatch probes the inner table's index for each outer batch in one
// catalog.Index.LookupBatch call — one index-lock acquisition per batch
// instead of per row — then resolves visibility per posting and emits joined
// rows through the shared slab/pending path.
type indexJoinBatch struct {
	ctx  *Ctx
	node *plan.IndexJoin
	left BatchIter

	in      *rel.Batch
	keys    []rel.Value // non-null probe keys of the current batch
	keyRows []int       // aligned index into in.Rows for each key
	ids     []storage.RowID
	offs    []int

	pending   []rel.Row
	pendPos   int
	slab      []rel.Value
	exhausted bool
}

func (j *indexJoinBatch) Open() error { return j.left.Open() }

func (j *indexJoinBatch) NextBatch(dst *rel.Batch) (int, error) {
	dst.Reset()
	for dst.Len() < BatchSize {
		if j.pendPos < len(j.pending) {
			dst.Append(j.pending[j.pendPos])
			j.pendPos++
			continue
		}
		if j.exhausted {
			break
		}
		n, err := j.left.NextBatch(j.in)
		if err != nil {
			return 0, err
		}
		if n == 0 {
			j.exhausted = true
			break
		}
		j.keys, j.keyRows = j.keys[:0], j.keyRows[:0]
		for i, l := range j.in.Rows {
			key := l[j.node.LKey]
			if key.IsNull() {
				continue
			}
			j.keys = append(j.keys, key)
			j.keyRows = append(j.keyRows, i)
		}
		j.ids, j.offs = j.node.Index.LookupBatch(j.keys, j.ids[:0], j.offs[:0])
		j.pending = j.pending[:0]
		j.pendPos = 0
		start := 0
		for k, key := range j.keys {
			l := j.in.Rows[j.keyRows[k]]
			for _, id := range j.ids[start:j.offs[k]] {
				row, visible := j.ctx.Mgr.Read(j.node.Table.Heap, id, j.ctx.Txn)
				if !visible {
					continue
				}
				// Recheck the key (stale postings) and inner filter.
				if !rel.Equal(row[j.node.Index.Col], key) {
					continue
				}
				if j.node.Filter != nil && !j.node.Filter.Eval(row).AsBool() {
					continue
				}
				j.pending, j.slab = emitJoined(j.pending, j.slab, l, row, j.node.Residual)
			}
			start = j.offs[k]
		}
	}
	return dst.Len(), nil
}

func (j *indexJoinBatch) Close() error { return j.left.Close() }
