package executor

import (
	"neurdb/internal/plan"
	"neurdb/internal/rel"
	"neurdb/internal/storage"
)

// BatchSize is the target row count per executor batch: two heap pages per
// batch, big enough to amortize dynamic dispatch and visibility-check call
// overhead, small enough to stay cache-resident.
const BatchSize = 2 * storage.RowsPerPage

// BatchIter is the vectorized counterpart of Iter: operators exchange
// batches of rows instead of one row per virtual call.
//
// Contract: NextBatch resets dst, refills it, and returns the row count;
// 0 with a nil error means end of stream (and repeats on further calls).
// A non-empty result may hold more or fewer than BatchSize rows, but never
// 0 before the stream ends. Rows placed in dst must remain valid after
// subsequent NextBatch calls — producers pass through storage-owned rows or
// allocate fresh ones, never recycle row backing arrays.
type BatchIter interface {
	Open() error
	NextBatch(dst *rel.Batch) (int, error)
	Close() error
}

// BuildBatch compiles a plan into a batch-iterator tree. Every operator
// executes natively batch-at-a-time; when ctx.Workers > 1, subtrees that
// form scan→filter→project pipelines over large-enough heaps run
// morsel-parallel (see parallel.go), with per-plan serial fallbacks: small
// tables stay serial, and a LIMIT directly over a streaming pipeline forces
// its input serial because the short-circuit beats the fan-out.
func BuildBatch(n plan.Node, ctx *Ctx) (BatchIter, error) {
	switch t := n.(type) {
	case *plan.SeqScan:
		if it, ok := tryParallelScan(n, ctx); ok {
			return it, nil
		}
		return &seqScanBatch{ctx: ctx, node: t}, nil
	case *plan.IndexScan:
		return &indexScanBatch{ctx: ctx, node: t}, nil
	case *plan.Filter:
		if it, ok := tryParallelScan(n, ctx); ok {
			return it, nil
		}
		c, err := BuildBatch(t.Child, ctx)
		if err != nil {
			return nil, err
		}
		return &filterBatch{pred: t.Pred, child: c}, nil
	case *plan.Project:
		if it, ok := tryParallelScan(n, ctx); ok {
			return it, nil
		}
		c, err := BuildBatch(t.Child, ctx)
		if err != nil {
			return nil, err
		}
		// Scratch batches start empty and grow toward BatchSize on demand,
		// so short results (prepared point lookups) skip the full-size
		// allocation per execution.
		return &projectBatch{exprs: t.Exprs, child: c, in: rel.NewBatch(0)}, nil
	case *plan.HashJoin:
		return buildHashJoinBatch(t, ctx)
	case *plan.NLJoin:
		l, err := BuildBatch(t.L, ctx)
		if err != nil {
			return nil, err
		}
		r, err := BuildBatch(t.R, ctx)
		if err != nil {
			return nil, err
		}
		return &nlJoinBatch{node: t, left: l, right: r, in: rel.NewBatch(0)}, nil
	case *plan.IndexJoin:
		l, err := BuildBatch(t.L, ctx)
		if err != nil {
			return nil, err
		}
		return &indexJoinBatch{ctx: ctx, node: t, left: l, in: rel.NewBatch(0)}, nil
	case *plan.Agg:
		if pipe, ok := extractPipeline(t.Child); ok {
			if w := pipelineWorkers(ctx, pipe); w > 1 {
				return &parallelAgg{ctx: ctx, node: t, pipe: pipe, workers: w}, nil
			}
		}
		c, err := BuildBatch(t.Child, ctx)
		if err != nil {
			return nil, err
		}
		return &aggBatch{node: t, child: c}, nil
	case *plan.Sort:
		if pipe, ok := extractPipeline(t.Child); ok {
			if w := pipelineWorkers(ctx, pipe); w > 1 {
				return &parallelSort{ctx: ctx, keys: t.Keys, pipe: pipe, workers: w}, nil
			}
		}
		c, err := BuildBatch(t.Child, ctx)
		if err != nil {
			return nil, err
		}
		return &sortBatch{keys: t.Keys, child: c}, nil
	case *plan.Limit:
		cctx := ctx
		if _, ok := extractPipeline(t.Child); ok {
			// LIMIT directly over a streaming pipeline stops after N rows;
			// a parallel scan would read far past them to re-sequence
			// morsels. Blocking children (sort/agg/joins) consume their
			// whole input regardless, so they keep their parallelism.
			cctx = ctx.serialized()
		}
		c, err := BuildBatch(t.Child, cctx)
		if err != nil {
			return nil, err
		}
		return &limitBatch{n: t.N, child: c}, nil
	default:
		it, err := Build(n, ctx)
		if err != nil {
			return nil, err
		}
		return NewBatchIter(it), nil
	}
}

// buildHashJoinBatch picks the hash-join shape: parallel probe when the
// probe (left) side is a large-enough pipeline, parallel build when the
// build (right) side is, serial batch join otherwise — each side degrades
// independently.
func buildHashJoinBatch(t *plan.HashJoin, ctx *Ctx) (BatchIter, error) {
	var probePipe, buildPipe *scanPipeline
	pw, bw := 0, 0
	if p, ok := extractPipeline(t.L); ok {
		if w := pipelineWorkers(ctx, p); w > 1 {
			probePipe, pw = p, w
		}
	}
	if p, ok := extractPipeline(t.R); ok {
		if w := pipelineWorkers(ctx, p); w > 1 {
			buildPipe, bw = p, w
		}
	}
	if pw > 1 {
		jp := &joinProbe{node: t}
		probePipe.stages = append(probePipe.stages, pipeStage{probe: jp})
		j := &parallelHashJoin{
			parallelScan: parallelScan{ctx: ctx, pipe: probePipe, workers: pw},
			probe:        jp,
		}
		if bw > 1 {
			j.buildPipe, j.buildWorkers = buildPipe, bw
		} else {
			r, err := BuildBatch(t.R, ctx)
			if err != nil {
				return nil, err
			}
			j.right = r
		}
		return j, nil
	}
	l, err := BuildBatch(t.L, ctx)
	if err != nil {
		return nil, err
	}
	j := &hashJoinBatch{node: t, left: l, in: rel.NewBatch(0)}
	if bw > 1 {
		j.ctx, j.buildPipe, j.buildWorkers = ctx, buildPipe, bw
	} else {
		r, err := BuildBatch(t.R, ctx)
		if err != nil {
			return nil, err
		}
		j.right = r
	}
	return j, nil
}

// --- adapters ---

// rowIter adapts a BatchIter to the scalar Iter interface, letting
// row-oriented callers consume batch-producing subtrees unchanged. Since
// PR 4 no relational operator needs it — every plan node has a native batch
// implementation.
type rowIter struct {
	b    BatchIter
	buf  *rel.Batch
	pos  int
	done bool
}

// NewRowIter wraps a batch iterator as a row iterator.
func NewRowIter(b BatchIter) Iter {
	return &rowIter{b: b, buf: rel.NewBatch(BatchSize)}
}

func (it *rowIter) Open() error { return it.b.Open() }

func (it *rowIter) Next() (rel.Row, error) {
	for {
		if it.pos < it.buf.Len() {
			row := it.buf.Rows[it.pos]
			it.pos++
			return row, nil
		}
		if it.done {
			return nil, nil
		}
		n, err := it.b.NextBatch(it.buf)
		if err != nil {
			return nil, err
		}
		it.pos = 0
		if n == 0 {
			it.done = true
			return nil, nil
		}
	}
}

func (it *rowIter) Close() error { return it.b.Close() }

// batchIter adapts a scalar Iter to the BatchIter interface for operators
// with no native batch implementation yet.
type batchIter struct {
	it Iter
}

// NewBatchIter wraps a row iterator as a batch iterator.
func NewBatchIter(it Iter) BatchIter { return &batchIter{it: it} }

func (a *batchIter) Open() error { return a.it.Open() }

func (a *batchIter) NextBatch(dst *rel.Batch) (int, error) {
	dst.Reset()
	for dst.Len() < BatchSize {
		row, err := a.it.Next()
		if err != nil {
			return 0, err
		}
		if row == nil {
			break
		}
		dst.Append(row)
	}
	return dst.Len(), nil
}

func (a *batchIter) Close() error { return a.it.Close() }

// --- scans ---

// seqScanBatch is the vectorized heap scan: one page cursor step yields up
// to RowsPerPage chain heads under a single lock acquisition and a single
// buffer-pool touch, and one Manager.ReadPage call resolves the whole
// page's visibility.
type seqScanBatch struct {
	ctx    *Ctx
	node   *plan.SeqScan
	cursor *storage.BatchCursor
}

func (s *seqScanBatch) Open() error {
	s.cursor = s.node.Table.Heap.NewBatchCursor()
	return nil
}

func (s *seqScanBatch) NextBatch(dst *rel.Batch) (int, error) {
	dst.Reset()
	for dst.Len() < BatchSize {
		pageID, heads, ok := s.cursor.NextPage()
		if !ok {
			break
		}
		start := dst.Len()
		dst.Rows = s.ctx.Mgr.ReadPage(s.node.Table.ID, pageID, heads, s.ctx.Txn, dst.Rows)
		if s.node.Filter != nil {
			kept := dst.Rows[:start]
			for _, row := range dst.Rows[start:] {
				if s.node.Filter.Eval(row).AsBool() {
					kept = append(kept, row)
				}
			}
			dst.Rows = kept
		}
	}
	return dst.Len(), nil
}

func (s *seqScanBatch) Close() error { return nil }

// indexScanBatch drains an index-posting list batch-at-a-time. Lookups stay
// per-row (point reads through Heap.Head), but downstream operators get the
// dispatch amortization.
type indexScanBatch struct {
	ctx  *Ctx
	node *plan.IndexScan
	ids  []storage.RowID
	pos  int
}

func (s *indexScanBatch) Open() error {
	ids, err := indexScanIDs(s.node)
	s.ids = ids
	return err
}

func (s *indexScanBatch) NextBatch(dst *rel.Batch) (int, error) {
	dst.Reset()
	for dst.Len() < BatchSize && s.pos < len(s.ids) {
		id := s.ids[s.pos]
		s.pos++
		row, visible := s.ctx.Mgr.Read(s.node.Table.Heap, id, s.ctx.Txn)
		if !visible || !indexRecheck(s.node, row) {
			continue
		}
		if s.node.Filter != nil && !s.node.Filter.Eval(row).AsBool() {
			continue
		}
		dst.Append(row)
	}
	return dst.Len(), nil
}

func (s *indexScanBatch) Close() error { return nil }

// --- row transforms ---

// filterBatch compacts each child batch in place, pulling more batches until
// at least one row survives or the input ends (so 0 still means EOF).
type filterBatch struct {
	pred  rel.Expr
	child BatchIter
}

func (f *filterBatch) Open() error { return f.child.Open() }

func (f *filterBatch) NextBatch(dst *rel.Batch) (int, error) {
	for {
		n, err := f.child.NextBatch(dst)
		if err != nil {
			return 0, err
		}
		if n == 0 {
			return 0, nil
		}
		kept := dst.Rows[:0]
		for _, row := range dst.Rows {
			if f.pred.Eval(row).AsBool() {
				kept = append(kept, row)
			}
		}
		dst.Rows = kept
		if dst.Len() > 0 {
			return dst.Len(), nil
		}
	}
}

func (f *filterBatch) Close() error { return f.child.Close() }

type projectBatch struct {
	exprs []rel.Expr
	child BatchIter
	in    *rel.Batch
}

func (p *projectBatch) Open() error { return p.child.Open() }

func (p *projectBatch) NextBatch(dst *rel.Batch) (int, error) {
	dst.Reset()
	n, err := p.child.NextBatch(p.in)
	if err != nil || n == 0 {
		return 0, err
	}
	for _, row := range p.in.Rows {
		out := make(rel.Row, len(p.exprs))
		for i, e := range p.exprs {
			out[i] = e.Eval(row)
		}
		dst.Append(out)
	}
	return dst.Len(), nil
}

func (p *projectBatch) Close() error { return p.child.Close() }

// --- joins ---

// hashJoinBatch is the batched equi-join: Open drains the build (right)
// side batch-at-a-time into the hash table, then each probe batch from the
// left produces its joined rows in one pass. Joined rows overflowing the
// output batch are carried in pending across calls. When the planner found
// the build side morsel-parallelizable but not the probe side, buildPipe is
// set and Open builds the table with a worker pool instead of draining
// right.
type hashJoinBatch struct {
	node        *plan.HashJoin
	left, right BatchIter
	table       map[uint64][]rel.Row
	in          *rel.Batch // probe-side input scratch
	pending     []rel.Row  // joined rows awaiting emission
	pendPos     int
	slab        []rel.Value // arena joined rows are carved from
	exhausted   bool

	// Parallel-build configuration (nil/0 = serial build from right).
	ctx          *Ctx
	buildPipe    *scanPipeline
	buildWorkers int
}

// joinSlabValues sizes the output-row arena: joined rows are carved from a
// shared value slab, so the join allocates once per slab instead of once
// per output row. Emitted rows keep referencing retired slabs, which stay
// alive for exactly as long as some consumer holds one of their rows.
const joinSlabValues = 4096

// drainJoinBuild materializes a hash-join build side from a batch iterator
// into a probe table; bucket order is the input (heap) order.
func drainJoinBuild(right BatchIter, rkey int) (map[uint64][]rel.Row, error) {
	table := make(map[uint64][]rel.Row)
	build := rel.NewBatch(BatchSize)
	for {
		n, err := right.NextBatch(build)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return table, nil
		}
		for _, row := range build.Rows {
			key := row[rkey]
			if key.IsNull() {
				continue
			}
			hash := key.Hash()
			table[hash] = append(table[hash], row)
		}
	}
}

func (h *hashJoinBatch) Open() error {
	if h.buildPipe != nil {
		h.table = buildJoinTableParallel(h.ctx, h.buildPipe, h.node.RKey, h.buildWorkers)
		return h.left.Open()
	}
	if err := h.right.Open(); err != nil {
		return err
	}
	defer h.right.Close()
	table, err := drainJoinBuild(h.right, h.node.RKey)
	if err != nil {
		return err
	}
	h.table = table
	return h.left.Open()
}

func (h *hashJoinBatch) NextBatch(dst *rel.Batch) (int, error) {
	dst.Reset()
	for dst.Len() < BatchSize {
		if h.pendPos < len(h.pending) {
			dst.Append(h.pending[h.pendPos])
			h.pendPos++
			continue
		}
		if h.exhausted {
			break
		}
		n, err := h.left.NextBatch(h.in)
		if err != nil {
			return 0, err
		}
		if n == 0 {
			h.exhausted = true
			break
		}
		h.pending = h.pending[:0]
		h.pendPos = 0
		for _, l := range h.in.Rows {
			key := l[h.node.LKey]
			if key.IsNull() {
				continue
			}
			for _, r := range h.table[key.Hash()] {
				if !rel.Equal(r[h.node.RKey], key) {
					continue
				}
				width := len(l) + len(r)
				if cap(h.slab)-len(h.slab) < width {
					n := joinSlabValues
					if n < width {
						n = width
					}
					h.slab = make([]rel.Value, 0, n)
				}
				start := len(h.slab)
				h.slab = append(h.slab, l...)
				h.slab = append(h.slab, r...)
				joined := rel.Row(h.slab[start:len(h.slab):len(h.slab)])
				if h.node.Residual != nil && !h.node.Residual.Eval(joined).AsBool() {
					h.slab = h.slab[:start]
					continue
				}
				h.pending = append(h.pending, joined)
			}
		}
	}
	return dst.Len(), nil
}

func (h *hashJoinBatch) Close() error { return h.left.Close() }
