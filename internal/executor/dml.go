package executor

import (
	"fmt"

	"neurdb/internal/catalog"
	"neurdb/internal/rel"
	"neurdb/internal/storage"
)

// InsertRow inserts one row into a table within the context transaction,
// maintaining indexes and statistics.
func InsertRow(ctx *Ctx, t *catalog.Table, row rel.Row) (storage.RowID, error) {
	if len(row) != t.Schema.Arity() {
		return storage.RowID{}, fmt.Errorf("executor: insert arity %d into %s%s", len(row), t.Name, t.Schema)
	}
	for i, col := range t.Schema.Cols {
		if col.NotNull && row[i].IsNull() {
			return storage.RowID{}, fmt.Errorf("executor: null value in NOT NULL column %s.%s", t.Name, col.Name)
		}
	}
	id, err := ctx.Mgr.Insert(t.Heap, row, ctx.Txn)
	if err != nil {
		return storage.RowID{}, err
	}
	for _, ix := range t.Indexes() {
		ix.Insert(row[ix.Col], id)
	}
	t.Stats.NoteInsert(row)
	return id, nil
}

// UpdateWhere updates rows matching the (possibly nil) predicate, setting
// columns via the given expressions (evaluated against the old row). It
// returns the number of rows updated.
func UpdateWhere(ctx *Ctx, t *catalog.Table, set map[int]rel.Expr, where rel.Expr) (int, error) {
	type pending struct {
		id       storage.RowID
		old, new rel.Row
	}
	var todo []pending
	cursor := t.Heap.NewCursor()
	for {
		id, head, ok := cursor.Next()
		if !ok {
			break
		}
		row, visible := ctx.Mgr.ReadHead(t.ID, id, head, ctx.Txn)
		if !visible {
			continue
		}
		if where != nil && !where.Eval(row).AsBool() {
			continue
		}
		newRow := row.Clone()
		for col, e := range set {
			newRow[col] = e.Eval(row)
		}
		todo = append(todo, pending{id: id, old: row, new: newRow})
	}
	for _, p := range todo {
		if err := ctx.Mgr.Update(t.Heap, p.id, p.new, ctx.Txn); err != nil {
			return 0, err
		}
		for _, ix := range t.Indexes() {
			if !rel.Equal(p.old[ix.Col], p.new[ix.Col]) {
				// Lazy maintenance: add the new key; stale postings for the
				// old key are filtered by visibility + recheck on scan.
				ix.Insert(p.new[ix.Col], p.id)
			}
		}
		t.Stats.NoteUpdate(p.old, p.new)
	}
	return len(todo), nil
}

// DeleteWhere deletes rows matching the (possibly nil) predicate, returning
// the number of rows deleted.
func DeleteWhere(ctx *Ctx, t *catalog.Table, where rel.Expr) (int, error) {
	type pending struct {
		id  storage.RowID
		row rel.Row
	}
	var todo []pending
	cursor := t.Heap.NewCursor()
	for {
		id, head, ok := cursor.Next()
		if !ok {
			break
		}
		row, visible := ctx.Mgr.ReadHead(t.ID, id, head, ctx.Txn)
		if !visible {
			continue
		}
		if where != nil && !where.Eval(row).AsBool() {
			continue
		}
		todo = append(todo, pending{id: id, row: row})
	}
	for _, p := range todo {
		if err := ctx.Mgr.Delete(t.Heap, p.id, ctx.Txn); err != nil {
			return 0, err
		}
		t.Stats.NoteDelete(p.row)
	}
	return len(todo), nil
}

// ScanAll returns every row visible to the context transaction (ANALYZE and
// AI training-data extraction use this).
func ScanAll(ctx *Ctx, t *catalog.Table) []rel.Row {
	var out []rel.Row
	cursor := t.Heap.NewCursor()
	for {
		id, head, ok := cursor.Next()
		if !ok {
			return out
		}
		row, visible := ctx.Mgr.ReadHead(t.ID, id, head, ctx.Txn)
		if visible {
			out = append(out, row)
		}
	}
}
