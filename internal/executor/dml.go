package executor

import (
	"fmt"

	"neurdb/internal/catalog"
	"neurdb/internal/plan"
	"neurdb/internal/rel"
	"neurdb/internal/storage"
)

// InsertRow inserts one row into a table within the context transaction,
// maintaining indexes and statistics.
func InsertRow(ctx *Ctx, t *catalog.Table, row rel.Row) (storage.RowID, error) {
	if len(row) != t.Schema.Arity() {
		return storage.RowID{}, fmt.Errorf("executor: insert arity %d into %s%s", len(row), t.Name, t.Schema)
	}
	for i, col := range t.Schema.Cols {
		if col.NotNull && row[i].IsNull() {
			return storage.RowID{}, fmt.Errorf("executor: null value in NOT NULL column %s.%s", t.Name, col.Name)
		}
	}
	id, err := ctx.Mgr.Insert(t.Heap, row, ctx.Txn)
	if err != nil {
		return storage.RowID{}, err
	}
	for _, ix := range t.Indexes() {
		ix.Insert(row[ix.Col], id)
	}
	t.Stats.NoteInsert(row)
	return id, nil
}

// InsertBatch inserts rows into a table within the context transaction with
// one transaction-manager call for the whole batch, per-batch index
// maintenance, and a single statistics note — the insert-side counterpart of
// the page-batched UpdateWhere/DeleteWhere path. Every row is validated up
// front, so a constraint violation inserts nothing. It returns the assigned
// RowIDs in row order.
func InsertBatch(ctx *Ctx, t *catalog.Table, rows []rel.Row) ([]storage.RowID, error) {
	for _, row := range rows {
		if len(row) != t.Schema.Arity() {
			return nil, fmt.Errorf("executor: insert arity %d into %s%s", len(row), t.Name, t.Schema)
		}
		for i, col := range t.Schema.Cols {
			if col.NotNull && row[i].IsNull() {
				return nil, fmt.Errorf("executor: null value in NOT NULL column %s.%s", t.Name, col.Name)
			}
		}
	}
	ids, err := ctx.Mgr.InsertBatch(t.Heap, rows, ctx.Txn)
	if err != nil {
		return nil, err
	}
	for _, ix := range t.Indexes() {
		for i, row := range rows {
			ix.Insert(row[ix.Col], ids[i])
		}
	}
	t.Stats.NoteInsertBatch(rows)
	return ids, nil
}

// dmlScan drives the shared page-batched DML loop: each heap page is read
// through Manager.ReadPageVisible (one visibility call per page), filtered
// by the predicate, and handed to apply as aligned id/row slices. apply runs
// before the scan moves to the next page; updates only replace chain heads
// on the page just visited (deletes free no slots mid-transaction), so the
// page-snapshot scan never re-observes the statement's own writes.
func dmlScan(ctx *Ctx, t *catalog.Table, where rel.Expr, apply func(ids []storage.RowID, rows []rel.Row) error) (int, error) {
	total := 0
	ids := make([]storage.RowID, 0, storage.RowsPerPage)
	rows := make([]rel.Row, 0, storage.RowsPerPage)
	cursor := t.Heap.NewBatchCursor()
	for {
		pageID, heads, ok := cursor.NextPage()
		if !ok {
			return total, nil
		}
		ids, rows = ctx.Mgr.ReadPageVisible(t.ID, pageID, heads, ctx.Txn, ids[:0], rows[:0])
		if where != nil {
			k := 0
			for i, row := range rows {
				if where.Eval(row).AsBool() {
					ids[k], rows[k] = ids[i], rows[i]
					k++
				}
			}
			ids, rows = ids[:k], rows[:k]
		}
		if len(ids) == 0 {
			continue
		}
		if err := apply(ids, rows); err != nil {
			return 0, err
		}
		total += len(ids)
	}
}

// UpdateWhere updates rows matching the (possibly nil) predicate, setting
// columns via the given expressions (evaluated against the old row). The
// heap is scanned page-at-a-time and writes, index maintenance, and
// statistics are applied per page batch. When ctx.Workers allows it the
// pages are dispatched through the morsel-parallel write path instead (see
// dmlParallel); results are identical either way. It returns the number of
// rows updated.
func UpdateWhere(ctx *Ctx, t *catalog.Table, set map[int]rel.Expr, where rel.Expr) (int, error) {
	if w := pipelineWorkers(ctx, &scanPipeline{table: t}); w > 1 {
		return dmlParallel(ctx, t, set, where, w)
	}
	news := make([]rel.Row, 0, storage.RowsPerPage)
	return dmlScan(ctx, t, where, func(ids []storage.RowID, olds []rel.Row) error {
		news = news[:0]
		for _, row := range olds {
			newRow := row.Clone()
			for col, e := range set {
				newRow[col] = e.Eval(row)
			}
			news = append(news, newRow)
		}
		if err := ctx.Mgr.UpdateBatch(t.Heap, ids, news, ctx.Txn); err != nil {
			return err
		}
		for _, ix := range t.Indexes() {
			for i, old := range olds {
				if !rel.Equal(old[ix.Col], news[i][ix.Col]) {
					// Lazy maintenance: add the new key; stale postings for
					// the old key are filtered by visibility + recheck on
					// scan.
					ix.Insert(news[i][ix.Col], ids[i])
				}
			}
		}
		t.Stats.NoteUpdateBatch(olds, news)
		return nil
	})
}

// DeleteWhere deletes rows matching the (possibly nil) predicate, scanning
// page-at-a-time and batching statistics maintenance per page. Like
// UpdateWhere it rides the morsel-parallel write path when ctx.Workers
// allows. It returns the number of rows deleted.
func DeleteWhere(ctx *Ctx, t *catalog.Table, where rel.Expr) (int, error) {
	if w := pipelineWorkers(ctx, &scanPipeline{table: t}); w > 1 {
		return dmlParallel(ctx, t, nil, where, w)
	}
	return dmlScan(ctx, t, where, func(ids []storage.RowID, rows []rel.Row) error {
		if err := ctx.Mgr.DeleteBatch(t.Heap, ids, ctx.Txn); err != nil {
			return err
		}
		t.Stats.NoteDeleteBatch(rows)
		return nil
	})
}

// ScanAll returns every row visible to the context transaction (ANALYZE
// uses this). It rides the page-batched read path: one heap lock, one
// buffer-pool touch, and one visibility call per page.
func ScanAll(ctx *Ctx, t *catalog.Table) []rel.Row {
	out := make([]rel.Row, 0, t.Heap.LiveRows())
	cursor := t.Heap.NewBatchCursor()
	for {
		pageID, heads, ok := cursor.NextPage()
		if !ok {
			return out
		}
		out = ctx.Mgr.ReadPage(t.ID, pageID, heads, ctx.Txn, out)
	}
}

// ScanBatches streams every row visible to the context transaction through
// visit, batch-at-a-time, without ever materializing the full table. When
// ctx.Workers allows it the batches are produced by the morsel-parallel
// pipeline (in heap order); otherwise by the serial page cursor. The batch
// passed to visit is reused between calls — visit must copy what it keeps.
// AI training-data extraction consumes tables through this (paper Fig. 6a).
func ScanBatches(ctx *Ctx, t *catalog.Table, visit func(*rel.Batch) error) error {
	pipe := &scanPipeline{table: t}
	var it BatchIter
	if w := pipelineWorkers(ctx, pipe); w > 1 {
		it = newParallelScan(ctx, pipe, w)
	} else {
		it = &seqScanBatch{ctx: ctx, node: &plan.SeqScan{Table: t}}
	}
	if err := it.Open(); err != nil {
		it.Close()
		return err
	}
	defer it.Close()
	batch := rel.NewBatch(BatchSize)
	for {
		n, err := it.NextBatch(batch)
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
		if err := visit(batch); err != nil {
			return err
		}
	}
}
