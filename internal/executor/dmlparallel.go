// Morsel-parallel DML: UPDATE and DELETE dispatch heap pages through the
// same page-range morsel source the read operators use (PR 4), running the
// whole statement pipeline — visibility, predicate, new-row computation, and
// the striped batch claim — inside each worker. Side effects that must match
// the serial path byte-for-byte (index postings, statistics notes) are
// buffered per page and replayed by the coordinator in morsel order after
// the workers join, so an index scan or stats estimate cannot tell the two
// paths apart. Claims themselves may interleave across workers, which is
// safe: a claim only stamps XMax and swaps the chain head, and commit
// ordering comes from the manager's atomic clock, not claim order.
package executor

import (
	"sync"
	"sync/atomic"

	"neurdb/internal/catalog"
	"neurdb/internal/rel"
	"neurdb/internal/storage"
)

// dmlPageRes is one page's buffered outcome: the claimed row ids, the old
// rows (for stats), and — for UPDATE — the replacement rows (for stats and
// index maintenance). Slices are freshly allocated by the worker; ownership
// transfers to the coordinator.
type dmlPageRes struct {
	ids  []storage.RowID
	olds []rel.Row
	news []rel.Row // nil for DELETE
}

// dmlParallel fans a DML scan out over the morsel dispatcher. set is nil for
// DELETE. It returns the number of rows written; on any worker error the
// statement's partial claims stay in the transaction write set and the
// caller aborts, exactly like the serial path's mid-statement conflicts.
func dmlParallel(ctx *Ctx, t *catalog.Table, set map[int]rel.Expr, where rel.Expr, workers int) (int, error) {
	ms := t.Heap.NewMorselSource(MorselPages)
	results := make([][]dmlPageRes, ms.Morsels())

	var (
		wg       sync.WaitGroup
		stopped  atomic.Bool
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stopped.Store(true)
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			parallelWorkerCount.Add(1)
			defer parallelWorkerCount.Add(-1)
			defer wg.Done()
			buf := make([]*storage.Version, storage.RowsPerPage)
			ids := make([]storage.RowID, 0, storage.RowsPerPage)
			rows := make([]rel.Row, 0, storage.RowsPerPage)
			for !stopped.Load() {
				idx, lo, hi, ok := ms.Next()
				if !ok {
					return
				}
				var pages []dmlPageRes
				for pg := lo; pg < hi && !stopped.Load(); pg++ {
					n := t.Heap.PageHeads(pg, buf)
					if n == 0 {
						continue
					}
					ids, rows = ctx.Mgr.ReadPageVisible(t.ID, pg, buf[:n], ctx.Txn, ids[:0], rows[:0])
					if where != nil {
						k := 0
						for i, row := range rows {
							if where.Eval(row).AsBool() {
								ids[k], rows[k] = ids[i], rows[i]
								k++
							}
						}
						ids, rows = ids[:k], rows[:k]
					}
					if len(ids) == 0 {
						continue
					}
					res := dmlPageRes{
						ids:  append([]storage.RowID(nil), ids...),
						olds: append([]rel.Row(nil), rows...),
					}
					var err error
					if set != nil {
						res.news = make([]rel.Row, 0, len(res.olds))
						for _, row := range res.olds {
							newRow := row.Clone()
							for col, e := range set {
								newRow[col] = e.Eval(row)
							}
							res.news = append(res.news, newRow)
						}
						err = ctx.Mgr.UpdateBatch(t.Heap, res.ids, res.news, ctx.Txn)
					} else {
						err = ctx.Mgr.DeleteBatch(t.Heap, res.ids, ctx.Txn)
					}
					if err != nil {
						fail(err)
						return
					}
					pages = append(pages, res)
				}
				results[idx] = pages
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}

	// Replay the buffered side effects in morsel (heap) order: index
	// postings and statistics notes land in exactly the sequence the serial
	// page loop would have produced them.
	total := 0
	for _, pages := range results {
		for _, p := range pages {
			if p.news != nil {
				for _, ix := range t.Indexes() {
					for i, old := range p.olds {
						if !rel.Equal(old[ix.Col], p.news[i][ix.Col]) {
							ix.Insert(p.news[i][ix.Col], p.ids[i])
						}
					}
				}
				t.Stats.NoteUpdateBatch(p.olds, p.news)
			} else {
				t.Stats.NoteDeleteBatch(p.olds)
			}
			total += len(p.ids)
		}
	}
	ctx.DMLParallelPages += ms.Pages()
	return total, nil
}
