package executor

import (
	"neurdb/internal/plan"
	"neurdb/internal/rel"
)

// aggBatch is the vectorized aggregation operator: a grouped hash table
// keyed on the encoded group-by columns, with columnar accumulator arrays
// (one flat slice per accumulator kind, indexed slot*nAgg+item) instead of
// a per-group state object. The aggregate argument expressions are
// precompiled so plain column references skip interface dispatch, numeric
// min/max comparisons run on cached float mirrors instead of rel.Compare,
// the group-key buffer is reused across rows, and the hash table is probed
// with an allocation-free string conversion — steady-state accumulation
// allocates only when a new group appears.
type aggBatch struct {
	node  *plan.Agg
	child BatchIter

	specs   []aggArgSpec // aggregate items only, precompiled
	keyCols []int        // group-by column fast path (-1 = general expr)

	slots  map[string]int // encoded group key -> slot
	firsts []rel.Row      // first row seen per slot (key-expression source)
	// Columnar accumulators, all indexed slot*nAgg + item.
	cnts []int64 // non-null inputs (COUNT)
	sums []float64
	mins []rel.Value
	maxs []rel.Value
	// minF/maxF mirror mins/maxs as floats while the running extreme is
	// numeric, so the common comparison is one float compare.
	minF []float64
	maxF []float64

	keyBuf []byte
	out    []rel.Row
	pos    int
}

// aggArgSpec is one precompiled aggregate item.
type aggArgSpec struct {
	idx int      // position in node.Items (and in the accumulator stride)
	arg rel.Expr // nil for COUNT(*)
	col int      // column index when arg is a plain ColRef, else -1
}

// colOf returns the column index of a plain column reference, or -1.
func colOf(e rel.Expr) int {
	if c, ok := e.(*rel.ColRef); ok {
		return c.Idx
	}
	return -1
}

func numericType(t rel.Type) bool {
	return t == rel.TypeInt || t == rel.TypeFloat || t == rel.TypeBool
}

// fastFloat is Value.AsFloat without the method-value copy for the types
// the accumulator loop sees constantly.
func fastFloat(v rel.Value) float64 {
	switch v.Typ {
	case rel.TypeInt:
		return float64(v.I)
	case rel.TypeFloat:
		return v.F
	case rel.TypeBool:
		if v.B {
			return 1
		}
		return 0
	default:
		return v.AsFloat()
	}
}

func (a *aggBatch) Open() error {
	if err := a.child.Open(); err != nil {
		return err
	}
	defer a.child.Close()
	a.slots = make(map[string]int)
	a.specs = a.specs[:0]
	for i, item := range a.node.Items {
		if item.Agg == nil {
			continue
		}
		sp := aggArgSpec{idx: i, arg: item.Agg.Arg, col: -1}
		if sp.arg != nil {
			sp.col = colOf(sp.arg)
		}
		a.specs = append(a.specs, sp)
	}
	a.keyCols = a.keyCols[:0]
	for _, g := range a.node.GroupBy {
		a.keyCols = append(a.keyCols, colOf(g))
	}
	nAgg := len(a.node.Items)
	in := rel.NewBatch(BatchSize)
	for {
		n, err := a.child.NextBatch(in)
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
		for _, row := range in.Rows {
			a.accumulate(a.slot(row, nAgg)*nAgg, row)
		}
	}
	a.finalize(nAgg)
	return nil
}

// slot returns the accumulator slot for the row's group, creating it on
// first sight. Group keys are the same self-delimiting encoding the scalar
// engine uses, so NULLs and mixed types group identically on both paths.
func (a *aggBatch) slot(row rel.Row, nAgg int) int {
	a.keyBuf = a.keyBuf[:0]
	for k, g := range a.node.GroupBy {
		var v rel.Value
		if col := a.keyCols[k]; col >= 0 {
			v = row[col]
		} else {
			v = g.Eval(row)
		}
		a.keyBuf = rel.EncodeValue(a.keyBuf, v)
	}
	if s, ok := a.slots[string(a.keyBuf)]; ok {
		return s
	}
	s := len(a.firsts)
	a.slots[string(a.keyBuf)] = s
	a.firsts = append(a.firsts, row)
	a.cnts = append(a.cnts, make([]int64, nAgg)...)
	a.sums = append(a.sums, make([]float64, nAgg)...)
	a.mins = append(a.mins, make([]rel.Value, nAgg)...)
	a.maxs = append(a.maxs, make([]rel.Value, nAgg)...)
	a.minF = append(a.minF, make([]float64, nAgg)...)
	a.maxF = append(a.maxF, make([]float64, nAgg)...)
	return s
}

// accumulate folds one row into the accumulators starting at base.
func (a *aggBatch) accumulate(base int, row rel.Row) {
	for s := range a.specs {
		sp := &a.specs[s]
		j := base + sp.idx
		if sp.arg == nil { // COUNT(*)
			a.cnts[j]++
			continue
		}
		var v rel.Value
		if sp.col >= 0 {
			v = row[sp.col]
		} else {
			v = sp.arg.Eval(row)
		}
		if v.Typ == rel.TypeNull {
			continue
		}
		a.cnts[j]++
		f := fastFloat(v)
		a.sums[j] += f
		if a.cnts[j] == 1 {
			a.mins[j], a.maxs[j] = v, v
			a.minF[j], a.maxF[j] = f, f
			continue
		}
		if numericType(v.Typ) && numericType(a.mins[j].Typ) {
			// Numeric fast path: the float mirrors carry the ordering.
			if f < a.minF[j] {
				a.mins[j], a.minF[j] = v, f
			}
			if f > a.maxF[j] {
				a.maxs[j], a.maxF[j] = v, f
			}
			continue
		}
		if rel.Compare(v, a.mins[j]) < 0 {
			a.mins[j], a.minF[j] = v, f
		}
		if rel.Compare(v, a.maxs[j]) > 0 {
			a.maxs[j], a.maxF[j] = v, f
		}
	}
}

// finalize materializes one output row per group, in first-seen order. A
// scalar aggregate (no GROUP BY) over empty input still yields one row.
func (a *aggBatch) finalize(nAgg int) {
	nGroups := len(a.firsts)
	if nGroups == 0 && len(a.node.GroupBy) == 0 {
		a.firsts = append(a.firsts, nil)
		a.cnts = make([]int64, nAgg)
		a.sums = make([]float64, nAgg)
		a.mins = make([]rel.Value, nAgg)
		a.maxs = make([]rel.Value, nAgg)
		nGroups = 1
	}
	a.out = make([]rel.Row, 0, nGroups)
	for slot := 0; slot < nGroups; slot++ {
		base := slot * nAgg
		row := make(rel.Row, nAgg)
		for i, item := range a.node.Items {
			if item.Agg == nil {
				if a.firsts[slot] == nil {
					row[i] = rel.Null()
				} else {
					row[i] = item.Key.Eval(a.firsts[slot])
				}
				continue
			}
			cnt := a.cnts[base+i]
			switch item.Agg.Kind {
			case plan.AggCount:
				row[i] = rel.Int(cnt)
			case plan.AggSum:
				if cnt == 0 {
					row[i] = rel.Null()
				} else {
					row[i] = rel.Float(a.sums[base+i])
				}
			case plan.AggAvg:
				if cnt == 0 {
					row[i] = rel.Null()
				} else {
					row[i] = rel.Float(a.sums[base+i] / float64(cnt))
				}
			case plan.AggMin:
				if cnt == 0 {
					row[i] = rel.Null()
				} else {
					row[i] = a.mins[base+i]
				}
			case plan.AggMax:
				if cnt == 0 {
					row[i] = rel.Null()
				} else {
					row[i] = a.maxs[base+i]
				}
			}
		}
		a.out = append(a.out, row)
	}
}

func (a *aggBatch) NextBatch(dst *rel.Batch) (int, error) {
	dst.Reset()
	for a.pos < len(a.out) && dst.Len() < BatchSize {
		dst.Append(a.out[a.pos])
		a.pos++
	}
	return dst.Len(), nil
}

func (a *aggBatch) Close() error { return nil }
