package executor

import (
	"sort"

	"neurdb/internal/plan"
	"neurdb/internal/rel"
)

// aggAcc is a grouped-aggregation workspace: a hash table keyed on the
// encoded group-by columns with columnar accumulator arrays (one flat slice
// per accumulator kind, indexed slot*nAgg+item) instead of per-group state
// objects. The aggregate argument expressions are precompiled so plain
// column references skip interface dispatch, numeric min/max comparisons run
// on cached float mirrors instead of rel.Compare, the group-key buffer is
// reused across rows, and the hash table is probed with an allocation-free
// string conversion — steady-state accumulation allocates only when a new
// group appears.
//
// The serial aggBatch operator owns one aggAcc; the morsel-parallel
// aggregation gives each worker its own partial aggAcc and merges them with
// mergeFrom. Every row carries a sequence number monotone in heap order, and
// each slot remembers the smallest one it saw (firstSeen), so finalize can
// emit groups in global first-seen order no matter how the input was split
// across workers — the exact order the serial operator produces.
type aggAcc struct {
	node *plan.Agg
	nAgg int

	specs   []aggArgSpec // aggregate items only, precompiled
	keyCols []int        // group-by column fast path (-1 = general expr)

	slots     map[string]int // encoded group key -> slot
	keys      []string       // encoded key per slot (merge lookups)
	firsts    []rel.Row      // first row seen per slot (key-expression source)
	firstSeen []uint64       // smallest sequence number seen per slot
	// Columnar accumulators, all indexed slot*nAgg + item.
	cnts []int64 // non-null inputs (COUNT)
	sums []float64
	mins []rel.Value
	maxs []rel.Value
	// minF/maxF mirror mins/maxs as floats while the running extreme is
	// numeric, so the common comparison is one float compare.
	minF []float64
	maxF []float64

	keyBuf []byte
}

// aggArgSpec is one precompiled aggregate item.
type aggArgSpec struct {
	idx int      // position in node.Items (and in the accumulator stride)
	arg rel.Expr // nil for COUNT(*)
	col int      // column index when arg is a plain ColRef, else -1
}

// colOf returns the column index of a plain column reference, or -1.
func colOf(e rel.Expr) int {
	if c, ok := e.(*rel.ColRef); ok {
		return c.Idx
	}
	return -1
}

func numericType(t rel.Type) bool {
	return t == rel.TypeInt || t == rel.TypeFloat || t == rel.TypeBool
}

// fastFloat is Value.AsFloat without the method-value copy for the types
// the accumulator loop sees constantly.
func fastFloat(v rel.Value) float64 {
	switch v.Typ {
	case rel.TypeInt:
		return float64(v.I)
	case rel.TypeFloat:
		return v.F
	case rel.TypeBool:
		if v.B {
			return 1
		}
		return 0
	default:
		return v.AsFloat()
	}
}

// newAggAcc precompiles the aggregate items and group-by columns of node
// into an empty accumulator.
func newAggAcc(node *plan.Agg) *aggAcc {
	a := &aggAcc{node: node, nAgg: len(node.Items), slots: make(map[string]int)}
	for i, item := range node.Items {
		if item.Agg == nil {
			continue
		}
		sp := aggArgSpec{idx: i, arg: item.Agg.Arg, col: -1}
		if sp.arg != nil {
			sp.col = colOf(sp.arg)
		}
		a.specs = append(a.specs, sp)
	}
	for _, g := range node.GroupBy {
		a.keyCols = append(a.keyCols, colOf(g))
	}
	return a
}

// slot returns the accumulator slot for the row's group, creating it on
// first sight. Group keys are the same self-delimiting encoding the scalar
// engine uses, so NULLs and mixed types group identically on both paths.
func (a *aggAcc) slot(row rel.Row, seq uint64) int {
	a.keyBuf = a.keyBuf[:0]
	for k, g := range a.node.GroupBy {
		var v rel.Value
		if col := a.keyCols[k]; col >= 0 {
			v = row[col]
		} else {
			v = g.Eval(row)
		}
		a.keyBuf = rel.EncodeValue(a.keyBuf, v)
	}
	if s, ok := a.slots[string(a.keyBuf)]; ok {
		return s
	}
	key := string(a.keyBuf)
	s := len(a.firsts)
	a.slots[key] = s
	a.keys = append(a.keys, key)
	a.firsts = append(a.firsts, row)
	a.firstSeen = append(a.firstSeen, seq)
	a.cnts = append(a.cnts, make([]int64, a.nAgg)...)
	a.sums = append(a.sums, make([]float64, a.nAgg)...)
	a.mins = append(a.mins, make([]rel.Value, a.nAgg)...)
	a.maxs = append(a.maxs, make([]rel.Value, a.nAgg)...)
	a.minF = append(a.minF, make([]float64, a.nAgg)...)
	a.maxF = append(a.maxF, make([]float64, a.nAgg)...)
	return s
}

// add folds one row into its group's accumulators. seq must be monotone in
// the input's heap order (the serial operator uses a running counter; the
// parallel workers derive it from the morsel ordinal).
func (a *aggAcc) add(row rel.Row, seq uint64) {
	base := a.slot(row, seq) * a.nAgg
	for s := range a.specs {
		sp := &a.specs[s]
		j := base + sp.idx
		if sp.arg == nil { // COUNT(*)
			a.cnts[j]++
			continue
		}
		var v rel.Value
		if sp.col >= 0 {
			v = row[sp.col]
		} else {
			v = sp.arg.Eval(row)
		}
		if v.Typ == rel.TypeNull {
			continue
		}
		a.cnts[j]++
		f := fastFloat(v)
		a.sums[j] += f
		if a.cnts[j] == 1 {
			a.mins[j], a.maxs[j] = v, v
			a.minF[j], a.maxF[j] = f, f
			continue
		}
		if numericType(v.Typ) && numericType(a.mins[j].Typ) {
			// Numeric fast path: the float mirrors carry the ordering.
			if f < a.minF[j] {
				a.mins[j], a.minF[j] = v, f
			}
			if f > a.maxF[j] {
				a.maxs[j], a.maxF[j] = v, f
			}
			continue
		}
		if rel.Compare(v, a.mins[j]) < 0 {
			a.mins[j], a.minF[j] = v, f
		}
		if rel.Compare(v, a.maxs[j]) > 0 {
			a.maxs[j], a.maxF[j] = v, f
		}
	}
}

// mergeFrom folds another partial accumulator (over a disjoint slice of the
// input) into a. Counts and sums add, extremes compare, and each group keeps
// the first row from whichever partial saw the group earliest in heap order.
func (a *aggAcc) mergeFrom(src *aggAcc) {
	nAgg := a.nAgg
	for s, key := range src.keys {
		d, ok := a.slots[key]
		if !ok {
			d = len(a.keys)
			a.slots[key] = d
			a.keys = append(a.keys, key)
			a.firsts = append(a.firsts, src.firsts[s])
			a.firstSeen = append(a.firstSeen, src.firstSeen[s])
			a.cnts = append(a.cnts, src.cnts[s*nAgg:(s+1)*nAgg]...)
			a.sums = append(a.sums, src.sums[s*nAgg:(s+1)*nAgg]...)
			a.mins = append(a.mins, src.mins[s*nAgg:(s+1)*nAgg]...)
			a.maxs = append(a.maxs, src.maxs[s*nAgg:(s+1)*nAgg]...)
			a.minF = append(a.minF, src.minF[s*nAgg:(s+1)*nAgg]...)
			a.maxF = append(a.maxF, src.maxF[s*nAgg:(s+1)*nAgg]...)
			continue
		}
		if src.firstSeen[s] < a.firstSeen[d] {
			a.firstSeen[d] = src.firstSeen[s]
			a.firsts[d] = src.firsts[s]
		}
		for i := 0; i < nAgg; i++ {
			sj, dj := s*nAgg+i, d*nAgg+i
			if src.cnts[sj] == 0 {
				continue
			}
			if a.cnts[dj] == 0 {
				a.cnts[dj] = src.cnts[sj]
				a.sums[dj] = src.sums[sj]
				a.mins[dj], a.minF[dj] = src.mins[sj], src.minF[sj]
				a.maxs[dj], a.maxF[dj] = src.maxs[sj], src.maxF[sj]
				continue
			}
			a.cnts[dj] += src.cnts[sj]
			a.sums[dj] += src.sums[sj]
			if rel.Compare(src.mins[sj], a.mins[dj]) < 0 {
				a.mins[dj], a.minF[dj] = src.mins[sj], src.minF[sj]
			}
			if rel.Compare(src.maxs[sj], a.maxs[dj]) > 0 {
				a.maxs[dj], a.maxF[dj] = src.maxs[sj], src.maxF[sj]
			}
		}
	}
}

// finalize materializes one output row per group in first-seen (heap) order.
// A scalar aggregate (no GROUP BY) over empty input still yields one row.
func (a *aggAcc) finalize() []rel.Row {
	nAgg := a.nAgg
	nGroups := len(a.firsts)
	if nGroups == 0 && len(a.node.GroupBy) == 0 {
		a.firsts = append(a.firsts, nil)
		a.firstSeen = append(a.firstSeen, 0)
		a.cnts = make([]int64, nAgg)
		a.sums = make([]float64, nAgg)
		a.mins = make([]rel.Value, nAgg)
		a.maxs = make([]rel.Value, nAgg)
		nGroups = 1
	}
	order := make([]int, nGroups)
	for i := range order {
		order[i] = i
	}
	// Serial accumulation creates slots in first-seen order already (the
	// sort is the identity); merged partials need the reorder. Sequence
	// numbers are unique per row, so the order is total.
	sort.Slice(order, func(i, j int) bool { return a.firstSeen[order[i]] < a.firstSeen[order[j]] })
	out := make([]rel.Row, 0, nGroups)
	for _, slot := range order {
		base := slot * nAgg
		row := make(rel.Row, nAgg)
		for i, item := range a.node.Items {
			if item.Agg == nil {
				if a.firsts[slot] == nil {
					row[i] = rel.Null()
				} else {
					row[i] = item.Key.Eval(a.firsts[slot])
				}
				continue
			}
			cnt := a.cnts[base+i]
			switch item.Agg.Kind {
			case plan.AggCount:
				row[i] = rel.Int(cnt)
			case plan.AggSum:
				if cnt == 0 {
					row[i] = rel.Null()
				} else {
					row[i] = rel.Float(a.sums[base+i])
				}
			case plan.AggAvg:
				if cnt == 0 {
					row[i] = rel.Null()
				} else {
					row[i] = rel.Float(a.sums[base+i] / float64(cnt))
				}
			case plan.AggMin:
				if cnt == 0 {
					row[i] = rel.Null()
				} else {
					row[i] = a.mins[base+i]
				}
			case plan.AggMax:
				if cnt == 0 {
					row[i] = rel.Null()
				} else {
					row[i] = a.maxs[base+i]
				}
			}
		}
		out = append(out, row)
	}
	return out
}

// aggBatch is the serial vectorized aggregation operator: one aggAcc fed
// batch-at-a-time in Open, drained batch-at-a-time afterwards.
type aggBatch struct {
	node  *plan.Agg
	child BatchIter

	out []rel.Row
	pos int
}

func (a *aggBatch) Open() error {
	if err := a.child.Open(); err != nil {
		return err
	}
	defer a.child.Close()
	acc := newAggAcc(a.node)
	in := rel.NewBatch(BatchSize)
	seq := uint64(0)
	for {
		n, err := a.child.NextBatch(in)
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
		for _, row := range in.Rows {
			acc.add(row, seq)
			seq++
		}
	}
	a.out = acc.finalize()
	return nil
}

func (a *aggBatch) NextBatch(dst *rel.Batch) (int, error) {
	dst.Reset()
	for a.pos < len(a.out) && dst.Len() < BatchSize {
		dst.Append(a.out[a.pos])
		a.pos++
	}
	return dst.Len(), nil
}

func (a *aggBatch) Close() error { return nil }
