package executor

import (
	"math/rand"
	"strings"
	"testing"

	"neurdb/internal/catalog"
	"neurdb/internal/index"
	"neurdb/internal/optimizer"
	"neurdb/internal/plan"
	"neurdb/internal/rel"
	"neurdb/internal/sqlparse"
	"neurdb/internal/storage"
	"neurdb/internal/txn"
)

// testDB is an engine harness: catalog + txn manager with helpers to run
// SQL end to end (parse → bind → optimize → execute).
type testDB struct {
	t   *testing.T
	cat *catalog.Catalog
	mgr *txn.Manager
}

func newTestDB(t *testing.T) *testDB {
	return &testDB{
		t:   t,
		cat: catalog.New(storage.NewBufferPool(1024)),
		mgr: txn.NewManager(),
	}
}

func (db *testDB) ctx() *Ctx {
	return &Ctx{Mgr: db.mgr, Txn: db.mgr.Begin(txn.Snapshot, false), Cat: db.cat}
}

func (db *testDB) mustCreate(name string, cols ...rel.Column) *catalog.Table {
	db.t.Helper()
	t, err := db.cat.Create(name, rel.NewSchema(cols...))
	if err != nil {
		db.t.Fatal(err)
	}
	return t
}

func (db *testDB) insert(tbl *catalog.Table, rows ...rel.Row) {
	db.t.Helper()
	ctx := db.ctx()
	for _, r := range rows {
		if _, err := InsertRow(ctx, tbl, r); err != nil {
			db.t.Fatal(err)
		}
	}
	if err := db.mgr.Commit(ctx.Txn); err != nil {
		db.t.Fatal(err)
	}
}

// query runs a SELECT through the full pipeline.
func (db *testDB) query(sql string) []rel.Row {
	db.t.Helper()
	rows, err := db.tryQuery(sql)
	if err != nil {
		db.t.Fatalf("query %q: %v", sql, err)
	}
	return rows
}

func (db *testDB) tryQuery(sql string) ([]rel.Row, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	q, err := optimizer.Bind(stmt.(*sqlparse.Select), db.cat)
	if err != nil {
		return nil, err
	}
	p, err := optimizer.New().Plan(q)
	if err != nil {
		return nil, err
	}
	ctx := &Ctx{Mgr: db.mgr, Txn: db.mgr.Begin(txn.Snapshot, true), Cat: db.cat}
	return Run(p, ctx)
}

func seedUsersPosts(db *testDB) (*catalog.Table, *catalog.Table) {
	users := db.mustCreate("users",
		rel.Column{Name: "id", Typ: rel.TypeInt, Unique: true},
		rel.Column{Name: "name", Typ: rel.TypeText},
		rel.Column{Name: "age", Typ: rel.TypeInt},
	)
	posts := db.mustCreate("posts",
		rel.Column{Name: "id", Typ: rel.TypeInt, Unique: true},
		rel.Column{Name: "owner", Typ: rel.TypeInt},
		rel.Column{Name: "score", Typ: rel.TypeInt},
	)
	db.insert(users,
		rel.Row{rel.Int(1), rel.Text("ann"), rel.Int(30)},
		rel.Row{rel.Int(2), rel.Text("bob"), rel.Int(25)},
		rel.Row{rel.Int(3), rel.Text("cat"), rel.Int(41)},
	)
	db.insert(posts,
		rel.Row{rel.Int(10), rel.Int(1), rel.Int(5)},
		rel.Row{rel.Int(11), rel.Int(1), rel.Int(8)},
		rel.Row{rel.Int(12), rel.Int(2), rel.Int(3)},
		rel.Row{rel.Int(13), rel.Int(3), rel.Int(9)},
		rel.Row{rel.Int(14), rel.Int(3), rel.Int(1)},
	)
	return users, posts
}

func TestSelectStarAndWhere(t *testing.T) {
	db := newTestDB(t)
	seedUsersPosts(db)
	rows := db.query("SELECT * FROM users WHERE age > 26")
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	rows = db.query("SELECT name FROM users WHERE age = 25")
	if len(rows) != 1 || rows[0][0].S != "bob" {
		t.Fatalf("got %v", rows)
	}
}

func TestProjectionAndArithmetic(t *testing.T) {
	db := newTestDB(t)
	seedUsersPosts(db)
	rows := db.query("SELECT age * 2 + 1 FROM users WHERE id = 1")
	if len(rows) != 1 || rows[0][0].AsInt() != 61 {
		t.Fatalf("got %v", rows)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	db := newTestDB(t)
	seedUsersPosts(db)
	rows := db.query("SELECT name FROM users ORDER BY age DESC LIMIT 2")
	if len(rows) != 2 || rows[0][0].S != "cat" || rows[1][0].S != "ann" {
		t.Fatalf("got %v", rows)
	}
	rows = db.query("SELECT name FROM users ORDER BY age")
	if rows[0][0].S != "bob" {
		t.Fatalf("asc order wrong: %v", rows)
	}
}

func TestJoinTwoTables(t *testing.T) {
	db := newTestDB(t)
	seedUsersPosts(db)
	rows := db.query("SELECT u.name, p.score FROM users u JOIN posts p ON u.id = p.owner WHERE p.score >= 5")
	if len(rows) != 3 {
		t.Fatalf("got %d rows: %v", len(rows), rows)
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r[0].S] = true
	}
	if !names["ann"] || !names["cat"] || names["bob"] {
		t.Fatalf("wrong names: %v", names)
	}
	// Comma-join syntax gives the same answer.
	rows2 := db.query("SELECT u.name, p.score FROM users u, posts p WHERE u.id = p.owner AND p.score >= 5")
	if len(rows2) != len(rows) {
		t.Fatalf("comma join mismatch: %d vs %d", len(rows2), len(rows))
	}
}

func TestThreeWayJoin(t *testing.T) {
	db := newTestDB(t)
	users, _ := seedUsersPosts(db)
	comments := db.mustCreate("comments",
		rel.Column{Name: "id", Typ: rel.TypeInt},
		rel.Column{Name: "post", Typ: rel.TypeInt},
		rel.Column{Name: "author", Typ: rel.TypeInt},
	)
	db.insert(comments,
		rel.Row{rel.Int(100), rel.Int(10), rel.Int(2)},
		rel.Row{rel.Int(101), rel.Int(11), rel.Int(3)},
		rel.Row{rel.Int(102), rel.Int(13), rel.Int(1)},
	)
	_ = users
	rows := db.query(`SELECT u.name FROM users u, posts p, comments c
		WHERE u.id = p.owner AND p.id = c.post AND c.author = 3`)
	if len(rows) != 1 || rows[0][0].S != "ann" {
		t.Fatalf("got %v", rows)
	}
}

func TestAggregates(t *testing.T) {
	db := newTestDB(t)
	seedUsersPosts(db)
	rows := db.query("SELECT COUNT(*), SUM(score), AVG(score), MIN(score), MAX(score) FROM posts")
	if len(rows) != 1 {
		t.Fatalf("got %v", rows)
	}
	r := rows[0]
	if r[0].AsInt() != 5 || r[1].AsFloat() != 26 || r[2].AsFloat() != 5.2 || r[3].AsInt() != 1 || r[4].AsInt() != 9 {
		t.Fatalf("aggregates wrong: %v", r)
	}
}

func TestGroupBy(t *testing.T) {
	db := newTestDB(t)
	seedUsersPosts(db)
	rows := db.query("SELECT owner, COUNT(*), SUM(score) FROM posts GROUP BY owner")
	if len(rows) != 3 {
		t.Fatalf("got %d groups", len(rows))
	}
	sums := map[int64]float64{}
	for _, r := range rows {
		sums[r[0].AsInt()] = r[2].AsFloat()
	}
	if sums[1] != 13 || sums[2] != 3 || sums[3] != 10 {
		t.Fatalf("group sums wrong: %v", sums)
	}
}

func TestScalarAggOnEmptyInput(t *testing.T) {
	db := newTestDB(t)
	db.mustCreate("empty", rel.Column{Name: "x", Typ: rel.TypeInt})
	rows := db.query("SELECT COUNT(*), SUM(x) FROM empty")
	if len(rows) != 1 || rows[0][0].AsInt() != 0 || !rows[0][1].IsNull() {
		t.Fatalf("got %v", rows)
	}
}

func TestIndexScanPath(t *testing.T) {
	db := newTestDB(t)
	users, _ := seedUsersPosts(db)
	// Build an index on users.id and make the table big enough that the
	// optimizer prefers the index.
	bt := index.NewBTree()
	ctxScan := db.ctx()
	for _, row := range ScanAll(ctxScan, users) {
		// RowIDs needed: re-scan via cursor for ids.
		_ = row
	}
	db.mgr.Abort(ctxScan.Txn)
	cursor := users.Heap.NewCursor()
	for {
		id, head, ok := cursor.Next()
		if !ok {
			break
		}
		bt.Insert(head.Data[0], id)
	}
	users.AddIndex(&catalog.Index{Name: "users_id", Col: 0, BT: bt})
	r := rand.New(rand.NewSource(1))
	var bulk []rel.Row
	for i := 10; i < 2000; i++ {
		bulk = append(bulk, rel.Row{rel.Int(int64(i)), rel.Text("u"), rel.Int(int64(r.Intn(60)))})
	}
	ctx := db.ctx()
	for _, row := range bulk {
		id, err := InsertRow(ctx, users, row)
		if err != nil {
			t.Fatal(err)
		}
		_ = id
	}
	if err := db.mgr.Commit(ctx.Txn); err != nil {
		t.Fatal(err)
	}
	// ANALYZE equivalent.
	sctx := db.ctx()
	users.Stats.Rebuild(ScanAll(sctx, users))
	db.mgr.Abort(sctx.Txn)

	// Verify plan uses the index.
	stmt, _ := sqlparse.Parse("SELECT name FROM users WHERE id = 1500")
	q, err := optimizer.Bind(stmt.(*sqlparse.Select), db.cat)
	if err != nil {
		t.Fatal(err)
	}
	p, err := optimizer.New().Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(p), "IndexScan") {
		t.Fatalf("expected IndexScan, got:\n%s", plan.Explain(p))
	}
	rows := db.query("SELECT name FROM users WHERE id = 1500")
	if len(rows) != 1 {
		t.Fatalf("index path returned %d rows", len(rows))
	}
	// Range scan through the same index.
	rows = db.query("SELECT id FROM users WHERE id >= 1995 AND id < 1999")
	if len(rows) != 4 {
		t.Fatalf("range scan returned %d rows", len(rows))
	}
}

func TestHintSetsProduceDifferentPlans(t *testing.T) {
	db := newTestDB(t)
	users, posts := seedUsersPosts(db)
	// index on posts.owner enables index joins
	bt := index.NewBTree()
	cursor := posts.Heap.NewCursor()
	for {
		id, head, ok := cursor.Next()
		if !ok {
			break
		}
		bt.Insert(head.Data[1], id)
	}
	posts.AddIndex(&catalog.Index{Name: "posts_owner", Col: 1, BT: bt})
	ctx := db.ctx()
	users.Stats.Rebuild(ScanAll(ctx, users))
	posts.Stats.Rebuild(ScanAll(ctx, posts))
	db.mgr.Abort(ctx.Txn)

	stmt, _ := sqlparse.Parse("SELECT u.name FROM users u JOIN posts p ON u.id = p.owner")
	q, err := optimizer.Bind(stmt.(*sqlparse.Select), db.cat)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := optimizer.EnumerateCandidates(q, nil, []float64{0.1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 2 {
		t.Fatalf("expected plan diversity, got %d candidates", len(cands))
	}
	// All candidates must produce identical results.
	var counts []int
	for _, c := range cands {
		rctx := &Ctx{Mgr: db.mgr, Txn: db.mgr.Begin(txn.Snapshot, true), Cat: db.cat}
		rows, err := Run(c.Plan, rctx)
		if err != nil {
			t.Fatalf("candidate %s failed: %v", c.Hint, err)
		}
		counts = append(counts, len(rows))
	}
	for _, c := range counts {
		if c != counts[0] {
			t.Fatalf("candidate result counts differ: %v", counts)
		}
	}
}

func TestUpdateAndDelete(t *testing.T) {
	db := newTestDB(t)
	users, _ := seedUsersPosts(db)

	ctx := db.ctx()
	where := &rel.BinOp{Kind: rel.OpEq, L: &rel.ColRef{Idx: 0}, R: &rel.Const{Val: rel.Int(1)}}
	n, err := UpdateWhere(ctx, users, map[int]rel.Expr{2: &rel.Const{Val: rel.Int(99)}}, where)
	if err != nil || n != 1 {
		t.Fatalf("update n=%d err=%v", n, err)
	}
	if err := db.mgr.Commit(ctx.Txn); err != nil {
		t.Fatal(err)
	}
	rows := db.query("SELECT age FROM users WHERE id = 1")
	if len(rows) != 1 || rows[0][0].AsInt() != 99 {
		t.Fatalf("update not visible: %v", rows)
	}

	dctx := db.ctx()
	n, err = DeleteWhere(dctx, users, where)
	if err != nil || n != 1 {
		t.Fatalf("delete n=%d err=%v", n, err)
	}
	if err := db.mgr.Commit(dctx.Txn); err != nil {
		t.Fatal(err)
	}
	if rows := db.query("SELECT * FROM users"); len(rows) != 2 {
		t.Fatalf("after delete: %v", rows)
	}
}

func TestInsertValidation(t *testing.T) {
	db := newTestDB(t)
	tbl := db.mustCreate("t",
		rel.Column{Name: "a", Typ: rel.TypeInt, NotNull: true},
		rel.Column{Name: "b", Typ: rel.TypeText},
	)
	ctx := db.ctx()
	if _, err := InsertRow(ctx, tbl, rel.Row{rel.Null(), rel.Text("x")}); err == nil {
		t.Fatal("null into NOT NULL should fail")
	}
	if _, err := InsertRow(ctx, tbl, rel.Row{rel.Int(1)}); err == nil {
		t.Fatal("arity mismatch should fail")
	}
	db.mgr.Abort(ctx.Txn)
}

func TestBindErrors(t *testing.T) {
	db := newTestDB(t)
	seedUsersPosts(db)
	bad := []string{
		"SELECT zzz FROM users",
		"SELECT id FROM users, posts",            // ambiguous
		"SELECT missing.id FROM users",           // unknown alias
		"SELECT u.nope FROM users u",             // unknown column
		"SELECT * FROM nosuch",                   // unknown table
		"SELECT * FROM users u, users u",         // duplicate alias
		"SELECT SUM(id, age) FROM users",         // arity
		"SELECT AVG(*) FROM users",               // star on non-count
		"SELECT COUNT(*) FROM users ORDER BY id", // agg + order by unsupported
	}
	for _, sql := range bad {
		if _, err := db.tryQuery(sql); err == nil {
			t.Errorf("query %q should fail", sql)
		}
	}
}

func TestSnapshotQueriesDontSeeLaterWrites(t *testing.T) {
	db := newTestDB(t)
	users, _ := seedUsersPosts(db)
	// Start a read txn, then modify in another txn.
	readCtx := &Ctx{Mgr: db.mgr, Txn: db.mgr.Begin(txn.Snapshot, true), Cat: db.cat}
	ctx := db.ctx()
	if _, err := InsertRow(ctx, users, rel.Row{rel.Int(50), rel.Text("new"), rel.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := db.mgr.Commit(ctx.Txn); err != nil {
		t.Fatal(err)
	}
	stmt, _ := sqlparse.Parse("SELECT * FROM users")
	q, _ := optimizer.Bind(stmt.(*sqlparse.Select), db.cat)
	p, _ := optimizer.New().Plan(q)
	rows, err := Run(p, readCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("snapshot saw %d rows, want 3", len(rows))
	}
}

func TestExplainOutput(t *testing.T) {
	db := newTestDB(t)
	seedUsersPosts(db)
	stmt, _ := sqlparse.Parse("SELECT u.name FROM users u JOIN posts p ON u.id = p.owner WHERE p.score > 3")
	q, _ := optimizer.Bind(stmt.(*sqlparse.Select), db.cat)
	p, err := optimizer.New().Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	out := plan.Explain(p)
	if !strings.Contains(out, "Project") || !strings.Contains(out, "Join") {
		t.Fatalf("explain:\n%s", out)
	}
	if plan.Count(p) < 4 {
		t.Fatalf("plan too small:\n%s", out)
	}
	// Feature encoding produces one token per operator.
	toks := plan.EncodeTree(p)
	if len(toks) != plan.Count(p) {
		t.Fatalf("tokens %d vs nodes %d", len(toks), plan.Count(p))
	}
	for _, tok := range toks {
		if len(tok) != plan.NodeFeatureDim {
			t.Fatal("feature width wrong")
		}
	}
}

func TestInListAndBetweenExecution(t *testing.T) {
	db := newTestDB(t)
	seedUsersPosts(db)
	rows := db.query("SELECT id FROM posts WHERE score IN (3, 9)")
	if len(rows) != 2 {
		t.Fatalf("IN rows: %v", rows)
	}
	rows = db.query("SELECT id FROM posts WHERE score BETWEEN 3 AND 8")
	if len(rows) != 3 {
		t.Fatalf("BETWEEN rows: %v", rows)
	}
}

func TestCrossJoinFallback(t *testing.T) {
	db := newTestDB(t)
	seedUsersPosts(db)
	rows := db.query("SELECT u.id, p.id FROM users u, posts p")
	if len(rows) != 15 {
		t.Fatalf("cross join rows = %d, want 15", len(rows))
	}
}
