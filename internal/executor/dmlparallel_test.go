package executor

import (
	"errors"
	"fmt"
	"testing"

	"neurdb/internal/catalog"
	"neurdb/internal/index"
	"neurdb/internal/rel"
	"neurdb/internal/txn"
)

// pctx returns a write context with the given worker cap.
func (db *testDB) pctx(workers int) *Ctx {
	return &Ctx{Mgr: db.mgr, Txn: db.mgr.Begin(txn.Snapshot, false), Cat: db.cat, Workers: workers}
}

// TestParallelDMLMatchesSerialDML is the write-path differential: the same
// UPDATE/DELETE sequence through the serial page loop (workers=1) and the
// morsel-parallel path (workers=4) over identically seeded multi-page
// tables must leave byte-identical state — affected counts, heap contents
// in heap order, live-row accounting, statistics, and index posting order.
func TestParallelDMLMatchesSerialDML(t *testing.T) {
	dbS := newTestDB(t)
	dbP := newTestDB(t)
	const n = 6000 // ~47 pages: beyond minParallelPages, many morsels
	ts := seedDMLTable(t, dbS, "t", n)
	tp := seedDMLTable(t, dbP, "t", n)
	for _, tbl := range []*catalog.Table{ts, tp} {
		tbl.AddIndex(&catalog.Index{Name: "t_grp", Col: 1, BT: index.NewBTree()})
	}

	grpEq := func(v int64) rel.Expr {
		return &rel.BinOp{Kind: rel.OpEq, L: &rel.ColRef{Idx: 1}, R: &rel.Const{Val: rel.Int(v)}}
	}
	idGe := func(v int64) rel.Expr {
		return &rel.BinOp{Kind: rel.OpGe, L: &rel.ColRef{Idx: 0}, R: &rel.Const{Val: rel.Int(v)}}
	}
	setGrp := map[int]rel.Expr{1: &rel.BinOp{Kind: rel.OpAdd,
		L: &rel.ColRef{Idx: 1}, R: &rel.Const{Val: rel.Int(1)}}}
	setVal := map[int]rel.Expr{2: &rel.BinOp{Kind: rel.OpMul,
		L: &rel.ColRef{Idx: 2}, R: &rel.Const{Val: rel.Float(2)}}}

	steps := []struct {
		name string
		run  func(ctx *Ctx, tbl *catalog.Table) (int, error)
	}{
		{"update val grp=3", func(ctx *Ctx, tbl *catalog.Table) (int, error) {
			return UpdateWhere(ctx, tbl, setVal, grpEq(3))
		}},
		{"update indexed grp", func(ctx *Ctx, tbl *catalog.Table) (int, error) {
			return UpdateWhere(ctx, tbl, setGrp, grpEq(5))
		}},
		{"delete id>=5000", func(ctx *Ctx, tbl *catalog.Table) (int, error) {
			return DeleteWhere(ctx, tbl, idGe(5000))
		}},
		{"update all", func(ctx *Ctx, tbl *catalog.Table) (int, error) {
			return UpdateWhere(ctx, tbl, setVal, nil)
		}},
		{"delete none", func(ctx *Ctx, tbl *catalog.Table) (int, error) {
			return DeleteWhere(ctx, tbl, grpEq(99))
		}},
	}
	for _, st := range steps {
		cs, cp := dbS.pctx(1), dbP.pctx(4)
		ns, err := st.run(cs, ts)
		if err != nil {
			t.Fatalf("%s (serial): %v", st.name, err)
		}
		np, err := st.run(cp, tp)
		if err != nil {
			t.Fatalf("%s (parallel): %v", st.name, err)
		}
		if ns != np {
			t.Fatalf("%s: serial affected %d, parallel %d", st.name, ns, np)
		}
		if cs.DMLParallelPages != 0 {
			t.Fatalf("%s: serial context reported parallel pages", st.name)
		}
		if cp.DMLParallelPages == 0 {
			t.Fatalf("%s: parallel context reported no parallel pages", st.name)
		}
		if err := dbS.mgr.Commit(cs.Txn); err != nil {
			t.Fatal(err)
		}
		if err := dbP.mgr.Commit(cp.Txn); err != nil {
			t.Fatal(err)
		}

		ss, sp := dbS.ctx(), dbP.ctx()
		rowsS, rowsP := ScanAll(ss, ts), ScanAll(sp, tp)
		dbS.mgr.Abort(ss.Txn)
		dbP.mgr.Abort(sp.Txn)
		if len(rowsS) != len(rowsP) {
			t.Fatalf("%s: %d vs %d rows", st.name, len(rowsS), len(rowsP))
		}
		// Heap order, not canonicalized: the parallel path must reproduce
		// the serial heap layout exactly.
		for i := range rowsS {
			if rowsS[i].String() != rowsP[i].String() {
				t.Fatalf("%s: heap row %d differs: serial %s parallel %s",
					st.name, i, rowsS[i], rowsP[i])
			}
		}
		if ls, lp := ts.Heap.LiveRows(), tp.Heap.LiveRows(); ls != lp {
			t.Fatalf("%s: live rows %d vs %d", st.name, ls, lp)
		}
		if rs, rp := ts.Stats.Rows(), tp.Stats.Rows(); rs != rp {
			t.Fatalf("%s: stats rows %d vs %d", st.name, rs, rp)
		}
		// Index posting order must match: lazy maintenance appends postings
		// in page order on the serial path, and the parallel merge replays
		// them in the same order.
		bs, bp := ts.Indexes()[0].BT, tp.Indexes()[0].BT
		if bs.Size() != bp.Size() {
			t.Fatalf("%s: index size %d vs %d", st.name, bs.Size(), bp.Size())
		}
		for g := int64(0); g <= 9; g++ {
			ps, pp := bs.Lookup(rel.Int(g)), bp.Lookup(rel.Int(g))
			if fmt.Sprint(ps) != fmt.Sprint(pp) {
				t.Fatalf("%s: postings for grp=%d differ:\nserial   %v\nparallel %v",
					st.name, g, ps, pp)
			}
		}
	}
}

// TestParallelDMLConflictAborts: a row claimed by another transaction must
// fail the whole parallel statement with a write conflict, and aborting
// must release every page's partial claims.
func TestParallelDMLConflictAborts(t *testing.T) {
	db := newTestDB(t)
	tbl := seedDMLTable(t, db, "t", 6000)
	set := map[int]rel.Expr{2: &rel.Const{Val: rel.Float(-1)}}

	c1 := db.pctx(1)
	one := &rel.BinOp{Kind: rel.OpEq, L: &rel.ColRef{Idx: 0}, R: &rel.Const{Val: rel.Int(3000)}}
	if _, err := UpdateWhere(c1, tbl, set, one); err != nil {
		t.Fatal(err)
	}
	c2 := db.pctx(4)
	if _, err := UpdateWhere(c2, tbl, set, nil); !errors.Is(err, txn.ErrWriteConflict) {
		t.Fatalf("expected write conflict, got %v", err)
	}
	db.mgr.Abort(c2.Txn)
	if err := db.mgr.Commit(c1.Txn); err != nil {
		t.Fatal(err)
	}
	// All claims released: a fresh parallel statement touches every row.
	c3 := db.pctx(4)
	n, err := UpdateWhere(c3, tbl, set, nil)
	if err != nil {
		t.Fatalf("claims not released after parallel abort: %v", err)
	}
	if n != 6000 {
		t.Fatalf("affected %d, want 6000", n)
	}
	if err := db.mgr.Commit(c3.Txn); err != nil {
		t.Fatal(err)
	}
}

// TestParallelDMLSmallTableStaysSerial: under minParallelPages the parallel
// gate must keep DML on the serial path.
func TestParallelDMLSmallTableStaysSerial(t *testing.T) {
	db := newTestDB(t)
	tbl := seedDMLTable(t, db, "t", 500) // ~4 pages, below the gate
	ctx := db.pctx(8)
	n, err := UpdateWhere(ctx, tbl, map[int]rel.Expr{2: &rel.Const{Val: rel.Float(1)}}, nil)
	if err != nil || n != 500 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if ctx.DMLParallelPages != 0 {
		t.Fatalf("small table took the parallel path (%d pages)", ctx.DMLParallelPages)
	}
	if err := db.mgr.Commit(ctx.Txn); err != nil {
		t.Fatal(err)
	}
}
