package executor

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"neurdb/internal/catalog"
	"neurdb/internal/index"
	"neurdb/internal/optimizer"
	"neurdb/internal/plan"
	"neurdb/internal/rel"
	"neurdb/internal/sqlparse"
	"neurdb/internal/txn"
)

// planFor compiles sql into a physical plan against the test catalog.
func planFor(t *testing.T, db *testDB, sql string) plan.Node {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	q, err := optimizer.Bind(stmt.(*sqlparse.Select), db.cat)
	if err != nil {
		t.Fatal(err)
	}
	p, err := optimizer.New().Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// runWorkers executes sql on the batch engine with the given parallelism.
func runWorkers(t *testing.T, db *testDB, sql string, workers int) []rel.Row {
	t.Helper()
	p := planFor(t, db, sql)
	ctx := &Ctx{Mgr: db.mgr, Txn: db.mgr.Begin(txn.Snapshot, true), Cat: db.cat, Workers: workers}
	rows, err := Run(p, ctx)
	if err != nil {
		t.Fatalf("%q workers=%d: %v", sql, workers, err)
	}
	db.mgr.Abort(ctx.Txn)
	return rows
}

// loadParallelFixture builds two committed tables spanning many heap pages
// (items well past minParallelPages) with NULL keys, NULL aggregate inputs,
// deleted rows, and updated rows, so parallel visibility, filters, grouping,
// ties, and join matches all cross morsel boundaries. All float values are
// small multiples of 0.5: their sums are exact in float64 regardless of
// addition order, so SUM/AVG compare byte-identically across any morsel
// split (see docs/ARCHITECTURE.md on parallel float aggregation).
func loadParallelFixture(t *testing.T, db *testDB) {
	items := db.mustCreate("items",
		rel.Column{Name: "id", Typ: rel.TypeInt, Unique: true},
		rel.Column{Name: "cat", Typ: rel.TypeInt},
		rel.Column{Name: "price", Typ: rel.TypeFloat},
	)
	cats := db.mustCreate("cats",
		rel.Column{Name: "cid", Typ: rel.TypeInt},
		rel.Column{Name: "label", Typ: rel.TypeText},
	)
	r := rand.New(rand.NewSource(11))
	ctx := db.ctx()
	rows := make([]rel.Row, 0, 12000)
	for i := 0; i < 12000; i++ {
		cat := rel.Int(int64(r.Intn(7))) // heavy ties for sort/group
		if i%29 == 0 {
			cat = rel.Null()
		}
		price := rel.Float(float64(r.Intn(400)) * 0.5) // exact sums
		if i%37 == 0 {
			price = rel.Null()
		}
		rows = append(rows, rel.Row{rel.Int(int64(i)), cat, price})
	}
	if _, err := InsertBatch(ctx, items, rows); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 7; c++ {
		if _, err := InsertRow(ctx, cats, rel.Row{rel.Int(int64(c)), rel.Text(fmt.Sprintf("c%d", c))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.mgr.Commit(ctx.Txn); err != nil {
		t.Fatal(err)
	}
	// Version chains and vacated slots must not confuse morsel scans.
	mctx := db.ctx()
	del := &rel.BinOp{Kind: rel.OpLt, L: &rel.ColRef{Idx: 0}, R: &rel.Const{Val: rel.Int(700)}}
	if _, err := DeleteWhere(mctx, items, del); err != nil {
		t.Fatal(err)
	}
	set := map[int]rel.Expr{2: &rel.Const{Val: rel.Float(2.5)}}
	upd := &rel.BinOp{Kind: rel.OpGt, L: &rel.ColRef{Idx: 0}, R: &rel.Const{Val: rel.Int(11000)}}
	if _, err := UpdateWhere(mctx, items, set, upd); err != nil {
		t.Fatal(err)
	}
	if err := db.mgr.Commit(mctx.Txn); err != nil {
		t.Fatal(err)
	}
}

// TestParallelMatchesSerialExact is the parallel differential: every query
// shape must return the exact same row *sequence* with 4 workers as with 1 —
// not just the same multiset. The ordered morsel exchange, the first-seen
// merge order of parallel aggregation, the sequence tie break of the
// parallel sort, and the seq-sorted join buckets are what make this hold.
func TestParallelMatchesSerialExact(t *testing.T) {
	db := newTestDB(t)
	loadParallelFixture(t, db)

	queries := []string{
		"SELECT * FROM items",
		"SELECT id, price FROM items WHERE cat = 3",
		"SELECT id, price * 2 FROM items WHERE price > 50",
		"SELECT cat, COUNT(*), SUM(price) FROM items GROUP BY cat",
		"SELECT cat, AVG(price), MIN(price), MAX(price) FROM items GROUP BY cat",
		"SELECT COUNT(*), SUM(price), AVG(price), MIN(price), MAX(price) FROM items",
		"SELECT COUNT(*) FROM items WHERE id < 0", // scalar agg over empty input
		"SELECT id, cat FROM items ORDER BY cat",  // heavy ties: stability check
		"SELECT id, cat FROM items ORDER BY cat DESC, price",
		"SELECT id FROM items ORDER BY price DESC LIMIT 37",
		"SELECT id FROM items LIMIT 10",
		"SELECT id FROM items LIMIT 0",
		"SELECT i.id, c.label FROM items i JOIN cats c ON i.cat = c.cid WHERE i.price > 90",
		"SELECT i.id, c.label FROM items i, cats c WHERE i.cat = c.cid AND c.label = 'c5'",
		"SELECT c.label, i.id FROM cats c JOIN items i ON c.cid = i.cat WHERE c.cid = 2",
	}
	for _, sql := range queries {
		serial := runWorkers(t, db, sql, 1)
		par := runWorkers(t, db, sql, 4)
		if len(serial) != len(par) {
			t.Fatalf("%q: serial %d rows, parallel %d rows", sql, len(serial), len(par))
		}
		for i := range serial {
			if serial[i].String() != par[i].String() {
				t.Fatalf("%q: position %d differs: serial %v parallel %v", sql, i, serial[i], par[i])
			}
		}
	}
}

// TestParallelOperatorSelection pins the planner/executor boundary: big
// pipelines go parallel, small tables and LIMIT-dominated pipelines stay
// serial.
func TestParallelOperatorSelection(t *testing.T) {
	db := newTestDB(t)
	loadParallelFixture(t, db)
	small := db.mustCreate("small", rel.Column{Name: "x", Typ: rel.TypeInt})
	db.insert(small, rel.Row{rel.Int(1)}, rel.Row{rel.Int(2)})

	ctx := &Ctx{Mgr: db.mgr, Txn: db.mgr.Begin(txn.Snapshot, true), Cat: db.cat, Workers: 4}
	defer db.mgr.Abort(ctx.Txn)
	build := func(sql string) BatchIter {
		it, err := BuildBatch(planFor(t, db, sql), ctx)
		if err != nil {
			t.Fatal(err)
		}
		return it
	}

	if _, ok := build("SELECT id FROM items WHERE price > 10").(*parallelScan); !ok {
		t.Fatal("big scan→filter→project pipeline did not go parallel")
	}
	if _, ok := build("SELECT cat, COUNT(*) FROM items GROUP BY cat").(*parallelAgg); !ok {
		t.Fatal("big aggregation did not go parallel")
	}
	it := build("SELECT id FROM items ORDER BY price")
	proj, ok := it.(*projectBatch)
	if !ok {
		t.Fatalf("ORDER BY plan root is %T, want projectBatch", it)
	}
	if _, ok := proj.child.(*parallelSort); !ok {
		t.Fatalf("big sort did not go parallel (child is %T)", proj.child)
	}
	if _, ok := build("SELECT x FROM small").(*parallelScan); ok {
		t.Fatal("two-row table went parallel; small tables must stay serial")
	}
	// LIMIT directly over a streaming pipeline: the child must be the
	// serial scan so the limit can short-circuit.
	lim, ok := build("SELECT id FROM items LIMIT 5").(*limitBatch)
	if !ok {
		t.Fatal("LIMIT plan did not build a limitBatch root")
	}
	if _, ok := lim.child.(*parallelScan); ok {
		t.Fatal("LIMIT-dominated pipeline went parallel; short-circuit beats fan-out")
	}
	// ...but LIMIT over a blocking sort keeps the parallel child.
	lim, ok = build("SELECT id FROM items ORDER BY price LIMIT 5").(*limitBatch)
	if !ok {
		t.Fatal("ORDER BY LIMIT plan did not build a limitBatch root")
	}
	if proj, ok := lim.child.(*projectBatch); !ok {
		t.Fatalf("ORDER BY LIMIT child is %T, want projectBatch", lim.child)
	} else if _, ok := proj.child.(*parallelSort); !ok {
		t.Fatalf("sort under LIMIT lost its parallelism (got %T)", proj.child)
	}
}

// TestParallelScanCancellation: closing a parallel iterator mid-stream must
// stop every worker (including ones parked on a full exchange slot) before
// Close returns, and leave the process with no lingering morsel goroutines.
func TestParallelScanCancellation(t *testing.T) {
	db := newTestDB(t)
	loadParallelFixture(t, db)

	ctx := &Ctx{Mgr: db.mgr, Txn: db.mgr.Begin(txn.Snapshot, true), Cat: db.cat, Workers: 4}
	it, err := BuildBatch(planFor(t, db, "SELECT * FROM items"), ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.(*parallelScan); !ok {
		t.Fatalf("expected a parallel scan, got %T", it)
	}
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	batch := rel.NewBatch(BatchSize)
	if n, err := it.NextBatch(batch); err != nil || n == 0 {
		t.Fatalf("first batch: n=%d err=%v", n, err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	db.mgr.Abort(ctx.Txn)
	// Close joins the workers, so the counter must already be drained; the
	// poll guards against other tests' stragglers on slow machines.
	deadline := time.Now().Add(5 * time.Second)
	for ParallelWorkers() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := ParallelWorkers(); n != 0 {
		t.Fatalf("%d morsel workers still running after Close", n)
	}
}

// TestScanBatchesParallelMatchesScanAll: the streaming extraction path (AI
// featurization) must deliver exactly the rows and order of the materialized
// ScanAll, serial and parallel alike.
func TestScanBatchesParallelMatchesScanAll(t *testing.T) {
	db := newTestDB(t)
	loadParallelFixture(t, db)
	items, err := db.cat.Get("items")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		ctx := &Ctx{Mgr: db.mgr, Txn: db.mgr.Begin(txn.Snapshot, true), Cat: db.cat, Workers: workers}
		want := ScanAll(ctx, items)
		var got []rel.Row
		if err := ScanBatches(ctx, items, func(b *rel.Batch) error {
			got = append(got, b.Rows...)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		db.mgr.Abort(ctx.Txn)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: ScanBatches %d rows, ScanAll %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i].String() != want[i].String() {
				t.Fatalf("workers=%d: row %d differs: %v vs %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestBatchJoinsMatchScalar: the native batch nested-loop and index joins
// must reproduce the scalar row-iterator joins exactly, including inner
// order.
func TestBatchJoinsMatchScalar(t *testing.T) {
	db := newTestDB(t)
	left := db.mustCreate("l",
		rel.Column{Name: "k", Typ: rel.TypeInt},
		rel.Column{Name: "v", Typ: rel.TypeInt},
	)
	right := db.mustCreate("r",
		rel.Column{Name: "k", Typ: rel.TypeInt},
		rel.Column{Name: "w", Typ: rel.TypeInt},
	)
	// An index on the inner join column makes the plan index-join eligible
	// (postings are backfilled by the insert helper's InsertRow calls).
	right.AddIndex(&catalog.Index{Name: "r_k", Col: 0, BT: index.NewBTree()})
	rng := rand.New(rand.NewSource(3))
	var lrows, rrows []rel.Row
	for i := 0; i < 900; i++ {
		k := rel.Int(int64(rng.Intn(300)))
		if i%41 == 0 {
			k = rel.Null()
		}
		lrows = append(lrows, rel.Row{k, rel.Int(int64(i))})
	}
	for i := 0; i < 300; i++ {
		rrows = append(rrows, rel.Row{rel.Int(int64(i)), rel.Int(int64(i * 10))})
	}
	db.insert(left, lrows...)
	db.insert(right, rrows...)
	// Statistics make the index join costable (distinct counts drive the
	// per-probe match estimate).
	left.Stats.Rebuild(lrows)
	right.Stats.Rebuild(rrows)

	cases := []struct {
		sql   string
		hints optimizer.HintSet
		shape string // plan operator the hint set must force
	}{
		// Equi-join against the unique (indexed) column, hash and NL
		// disabled: index join.
		{"SELECT l.v, r.w FROM l JOIN r ON l.k = r.k",
			optimizer.HintSet{NoHashJoin: true, NoNLJoin: true}, "IndexJoin"},
		// Same equi-join with hash and index joins disabled: nested loop.
		{"SELECT l.v, r.w FROM l JOIN r ON l.k = r.k",
			optimizer.HintSet{NoHashJoin: true, NoIndexJoin: true}, "NLJoin"},
		// Non-equi condition: cross nested loop with a residual filter.
		{"SELECT l.v, r.w FROM l, r WHERE l.v < 5 AND r.w < 30 AND l.v < r.w",
			optimizer.HintSet{}, "NLJoin"},
	}
	for _, tc := range cases {
		stmt, err := sqlparse.Parse(tc.sql)
		if err != nil {
			t.Fatal(err)
		}
		q, err := optimizer.Bind(stmt.(*sqlparse.Select), db.cat)
		if err != nil {
			t.Fatal(err)
		}
		o := optimizer.New()
		o.Hints = tc.hints
		p, err := o.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		shaped := false
		plan.Walk(p, func(n plan.Node, _ int) {
			switch n.(type) {
			case *plan.IndexJoin:
				shaped = shaped || tc.shape == "IndexJoin"
			case *plan.NLJoin:
				shaped = shaped || tc.shape == "NLJoin"
			}
		})
		if !shaped {
			t.Fatalf("%q (%+v): plan does not contain %s:\n%s", tc.sql, tc.hints, tc.shape, plan.Explain(p))
		}

		run := func(build func(plan.Node, *Ctx) (Iter, error)) []rel.Row {
			ctx := &Ctx{Mgr: db.mgr, Txn: db.mgr.Begin(txn.Snapshot, true), Cat: db.cat}
			defer db.mgr.Abort(ctx.Txn)
			it, err := build(p, ctx)
			if err != nil {
				t.Fatal(err)
			}
			if err := it.Open(); err != nil {
				t.Fatal(err)
			}
			defer it.Close()
			var out []rel.Row
			for {
				row, err := it.Next()
				if err != nil {
					t.Fatal(err)
				}
				if row == nil {
					return out
				}
				out = append(out, row)
			}
		}
		batched := run(Build)      // batch engine (nlJoinBatch/indexJoinBatch)
		scalar := run(buildScalar) // legacy row tree
		if len(batched) != len(scalar) {
			t.Fatalf("%q [%s]: batch %d rows, scalar %d rows", tc.sql, tc.shape, len(batched), len(scalar))
		}
		for i := range batched {
			if batched[i].String() != scalar[i].String() {
				t.Fatalf("%q [%s]: position %d differs: batch %v scalar %v", tc.sql, tc.shape, i, batched[i], scalar[i])
			}
		}
	}
}
