package executor

import (
	"testing"

	"neurdb/internal/catalog"
	"neurdb/internal/index"
	"neurdb/internal/rel"
)

func seedInsertTable(db *testDB) *catalog.Table {
	tbl := db.mustCreate("ib",
		rel.Column{Name: "id", Typ: rel.TypeInt, NotNull: true},
		rel.Column{Name: "val", Typ: rel.TypeFloat},
	)
	tbl.AddIndex(&catalog.Index{Name: "ib_id", Col: 0, BT: index.NewBTree()})
	return tbl
}

func batchRows(n, base int) []rel.Row {
	rows := make([]rel.Row, n)
	for i := range rows {
		rows[i] = rel.Row{rel.Int(int64(base + i)), rel.Float(float64(i) * 0.5)}
	}
	return rows
}

// TestInsertBatchMatchesInsertRow inserts the same rows through InsertBatch
// and the per-row InsertRow path and compares visible contents, index
// postings, live-row accounting, and statistics row counts.
func TestInsertBatchMatchesInsertRow(t *testing.T) {
	const n = 300 // spans multiple heap pages
	dbBatch, dbRow := newTestDB(t), newTestDB(t)
	tb, tr := seedInsertTable(dbBatch), seedInsertTable(dbRow)

	ctx := dbBatch.ctx()
	ids, err := InsertBatch(ctx, tb, batchRows(n, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != n {
		t.Fatalf("InsertBatch returned %d ids, want %d", len(ids), n)
	}
	if err := dbBatch.mgr.Commit(ctx.Txn); err != nil {
		t.Fatal(err)
	}
	dbRow.insert(tr, batchRows(n, 0)...)

	got := dbBatch.query("SELECT id, val FROM ib")
	want := dbRow.query("SELECT id, val FROM ib")
	if len(got) != n || len(want) != n {
		t.Fatalf("visible rows: batch %d, row %d, want %d", len(got), len(want), n)
	}
	for i := range got {
		if got[i].String() != want[i].String() {
			t.Fatalf("row %d differs: batch %v, row-path %v", i, got[i], want[i])
		}
	}
	if lb, lr := tb.Heap.LiveRows(), tr.Heap.LiveRows(); lb != lr {
		t.Fatalf("live rows differ: batch %d, row-path %d", lb, lr)
	}
	if sb, sr := tb.Stats.Rows(), tr.Stats.Rows(); sb != sr {
		t.Fatalf("stats rows differ: batch %d, row-path %d", sb, sr)
	}
	// Every id must be probeable through the index.
	ix := tb.IndexOn(0)
	for i := 0; i < n; i++ {
		if len(ix.Lookup(rel.Int(int64(i)))) != 1 {
			t.Fatalf("index posting missing for id %d", i)
		}
	}
}

// TestInsertBatchStatsSingleTick verifies the whole batch costs one
// statistics version bump (one lock, one Version tick), not one per row.
func TestInsertBatchStatsSingleTick(t *testing.T) {
	db := newTestDB(t)
	tbl := seedInsertTable(db)
	before := tbl.Stats.Version
	ctx := db.ctx()
	if _, err := InsertBatch(ctx, tbl, batchRows(64, 0)); err != nil {
		t.Fatal(err)
	}
	if err := db.mgr.Commit(ctx.Txn); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Stats.Version - before; got != 1 {
		t.Fatalf("stats version ticked %d times for one batch, want 1", got)
	}
}

// TestInsertBatchValidatesUpFront checks that a constraint violation
// anywhere in the batch inserts nothing.
func TestInsertBatchValidatesUpFront(t *testing.T) {
	db := newTestDB(t)
	tbl := seedInsertTable(db)
	rows := batchRows(10, 0)
	rows[7] = rel.Row{rel.Null(), rel.Float(1)} // violates NOT NULL id
	ctx := db.ctx()
	if _, err := InsertBatch(ctx, tbl, rows); err == nil {
		t.Fatal("expected NOT NULL violation")
	}
	db.mgr.Abort(ctx.Txn)
	if got := db.query("SELECT id FROM ib"); len(got) != 0 {
		t.Fatalf("failed batch left %d visible rows", len(got))
	}
	if live := tbl.Heap.LiveRows(); live != 0 {
		t.Fatalf("failed batch left live=%d", live)
	}
}

// TestInsertBatchAbortRollsBack aborts a committed-free batch and checks
// nothing stays visible.
func TestInsertBatchAbortRollsBack(t *testing.T) {
	db := newTestDB(t)
	tbl := seedInsertTable(db)
	ctx := db.ctx()
	if _, err := InsertBatch(ctx, tbl, batchRows(50, 0)); err != nil {
		t.Fatal(err)
	}
	db.mgr.Abort(ctx.Txn)
	if got := db.query("SELECT id FROM ib"); len(got) != 0 {
		t.Fatalf("aborted batch left %d visible rows", len(got))
	}
}
