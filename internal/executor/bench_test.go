package executor

import (
	"math/rand"
	"testing"

	"neurdb/internal/catalog"
	"neurdb/internal/plan"
	"neurdb/internal/rel"
	"neurdb/internal/storage"
	"neurdb/internal/txn"
)

// benchEnv builds a committed table of n rows (id, grp, val) for scan and
// join benchmarks.
type benchEnv struct {
	cat *catalog.Catalog
	mgr *txn.Manager
}

func newBenchEnv(b *testing.B) *benchEnv {
	return &benchEnv{
		cat: catalog.New(storage.NewBufferPool(4096)),
		mgr: txn.NewManager(),
	}
}

func (e *benchEnv) fill(b *testing.B, name string, n, groups int) *catalog.Table {
	tbl, err := e.cat.Create(name, rel.NewSchema(
		rel.Column{Name: "id", Typ: rel.TypeInt},
		rel.Column{Name: "grp", Typ: rel.TypeInt},
		rel.Column{Name: "val", Typ: rel.TypeFloat},
	))
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	ctx := &Ctx{Mgr: e.mgr, Txn: e.mgr.Begin(txn.Snapshot, false), Cat: e.cat}
	for i := 0; i < n; i++ {
		if _, err := InsertRow(ctx, tbl, rel.Row{
			rel.Int(int64(i)), rel.Int(int64(r.Intn(groups))), rel.Float(r.Float64()),
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.mgr.Commit(ctx.Txn); err != nil {
		b.Fatal(err)
	}
	return tbl
}

func (e *benchEnv) readCtx() *Ctx {
	return &Ctx{Mgr: e.mgr, Txn: e.mgr.Begin(txn.Snapshot, true), Cat: e.cat}
}

const scanRows = 50_000

// drainScalar pulls a row iterator dry, returning the row count.
func drainScalar(b *testing.B, it Iter) int {
	if err := it.Open(); err != nil {
		b.Fatal(err)
	}
	defer it.Close()
	n := 0
	for {
		row, err := it.Next()
		if err != nil {
			b.Fatal(err)
		}
		if row == nil {
			return n
		}
		n++
	}
}

// drainBatch pulls a batch iterator dry, returning the row count.
func drainBatch(b *testing.B, it BatchIter, batch *rel.Batch) int {
	if err := it.Open(); err != nil {
		b.Fatal(err)
	}
	defer it.Close()
	n := 0
	for {
		c, err := it.NextBatch(batch)
		if err != nil {
			b.Fatal(err)
		}
		if c == 0 {
			return n
		}
		n += c
	}
}

// BenchmarkSeqScanRow is the row-at-a-time baseline: the legacy Volcano
// iterator over a 50k-row heap, one virtual call and one visibility check
// per row.
func BenchmarkSeqScanRow(b *testing.B) {
	e := newBenchEnv(b)
	tbl := e.fill(b, "t", scanRows, 16)
	node := &plan.SeqScan{Base: plan.Base{Out: tbl.Schema}, Table: tbl}
	ctx := e.readCtx()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := buildScalar(node, ctx)
		if err != nil {
			b.Fatal(err)
		}
		if got := drainScalar(b, it); got != scanRows {
			b.Fatalf("scan saw %d rows", got)
		}
	}
	b.ReportMetric(float64(scanRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkSeqScanBatch is the vectorized scan over the same heap: one lock
// acquisition, one buffer-pool touch, and one visibility call per page.
func BenchmarkSeqScanBatch(b *testing.B) {
	e := newBenchEnv(b)
	tbl := e.fill(b, "t", scanRows, 16)
	node := &plan.SeqScan{Base: plan.Base{Out: tbl.Schema}, Table: tbl}
	ctx := e.readCtx()
	batch := rel.NewBatch(BatchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := BuildBatch(node, ctx)
		if err != nil {
			b.Fatal(err)
		}
		if got := drainBatch(b, it, batch); got != scanRows {
			b.Fatalf("scan saw %d rows", got)
		}
	}
	b.ReportMetric(float64(scanRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

func joinPlan(l, r *catalog.Table) *plan.HashJoin {
	return &plan.HashJoin{
		Base: plan.Base{Out: l.Schema.Concat(r.Schema)},
		L:    &plan.SeqScan{Base: plan.Base{Out: l.Schema}, Table: l},
		R:    &plan.SeqScan{Base: plan.Base{Out: r.Schema}, Table: r},
		LKey: 1, RKey: 0,
	}
}

// BenchmarkHashJoinRow: row-at-a-time hash join, 20k probe x 2k build.
func BenchmarkHashJoinRow(b *testing.B) {
	e := newBenchEnv(b)
	probe := e.fill(b, "probe", 20_000, 2000)
	build := e.fill(b, "build", 2000, 2000)
	node := joinPlan(probe, build)
	ctx := e.readCtx()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := buildScalar(node, ctx)
		if err != nil {
			b.Fatal(err)
		}
		if got := drainScalar(b, it); got == 0 {
			b.Fatal("empty join")
		}
	}
}

// BenchmarkHashJoinBatch: the batched build+probe join over the same data.
func BenchmarkHashJoinBatch(b *testing.B) {
	e := newBenchEnv(b)
	probe := e.fill(b, "probe", 20_000, 2000)
	build := e.fill(b, "build", 2000, 2000)
	node := joinPlan(probe, build)
	ctx := e.readCtx()
	batch := rel.NewBatch(BatchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := BuildBatch(node, ctx)
		if err != nil {
			b.Fatal(err)
		}
		if got := drainBatch(b, it, batch); got == 0 {
			b.Fatal("empty join")
		}
	}
}
