package executor

import (
	"math/rand"
	"runtime"
	"testing"

	"neurdb/internal/catalog"
	"neurdb/internal/plan"
	"neurdb/internal/rel"
	"neurdb/internal/storage"
	"neurdb/internal/txn"
)

// benchEnv builds a committed table of n rows (id, grp, val) for scan and
// join benchmarks.
type benchEnv struct {
	cat *catalog.Catalog
	mgr *txn.Manager
}

func newBenchEnv(b *testing.B) *benchEnv {
	return &benchEnv{
		cat: catalog.New(storage.NewBufferPool(4096)),
		mgr: txn.NewManager(),
	}
}

func (e *benchEnv) fill(b *testing.B, name string, n, groups int) *catalog.Table {
	tbl, err := e.cat.Create(name, rel.NewSchema(
		rel.Column{Name: "id", Typ: rel.TypeInt},
		rel.Column{Name: "grp", Typ: rel.TypeInt},
		rel.Column{Name: "val", Typ: rel.TypeFloat},
	))
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	ctx := &Ctx{Mgr: e.mgr, Txn: e.mgr.Begin(txn.Snapshot, false), Cat: e.cat}
	for i := 0; i < n; i++ {
		if _, err := InsertRow(ctx, tbl, rel.Row{
			rel.Int(int64(i)), rel.Int(int64(r.Intn(groups))), rel.Float(r.Float64()),
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.mgr.Commit(ctx.Txn); err != nil {
		b.Fatal(err)
	}
	return tbl
}

func (e *benchEnv) readCtx() *Ctx {
	return &Ctx{Mgr: e.mgr, Txn: e.mgr.Begin(txn.Snapshot, true), Cat: e.cat}
}

const scanRows = 50_000

// drainScalar pulls a row iterator dry, returning the row count.
func drainScalar(b *testing.B, it Iter) int {
	if err := it.Open(); err != nil {
		b.Fatal(err)
	}
	defer it.Close()
	n := 0
	for {
		row, err := it.Next()
		if err != nil {
			b.Fatal(err)
		}
		if row == nil {
			return n
		}
		n++
	}
}

// drainBatch pulls a batch iterator dry, returning the row count.
func drainBatch(b *testing.B, it BatchIter, batch *rel.Batch) int {
	if err := it.Open(); err != nil {
		b.Fatal(err)
	}
	defer it.Close()
	n := 0
	for {
		c, err := it.NextBatch(batch)
		if err != nil {
			b.Fatal(err)
		}
		if c == 0 {
			return n
		}
		n += c
	}
}

// BenchmarkSeqScanRow is the row-at-a-time baseline: the legacy Volcano
// iterator over a 50k-row heap, one virtual call and one visibility check
// per row.
func BenchmarkSeqScanRow(b *testing.B) {
	e := newBenchEnv(b)
	tbl := e.fill(b, "t", scanRows, 16)
	node := &plan.SeqScan{Base: plan.Base{Out: tbl.Schema}, Table: tbl}
	ctx := e.readCtx()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := buildScalar(node, ctx)
		if err != nil {
			b.Fatal(err)
		}
		if got := drainScalar(b, it); got != scanRows {
			b.Fatalf("scan saw %d rows", got)
		}
	}
	b.ReportMetric(float64(scanRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkSeqScanBatch is the vectorized scan over the same heap: one lock
// acquisition, one buffer-pool touch, and one visibility call per page.
func BenchmarkSeqScanBatch(b *testing.B) {
	e := newBenchEnv(b)
	tbl := e.fill(b, "t", scanRows, 16)
	node := &plan.SeqScan{Base: plan.Base{Out: tbl.Schema}, Table: tbl}
	ctx := e.readCtx()
	batch := rel.NewBatch(BatchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := BuildBatch(node, ctx)
		if err != nil {
			b.Fatal(err)
		}
		if got := drainBatch(b, it, batch); got != scanRows {
			b.Fatalf("scan saw %d rows", got)
		}
	}
	b.ReportMetric(float64(scanRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

func joinPlan(l, r *catalog.Table) *plan.HashJoin {
	return &plan.HashJoin{
		Base: plan.Base{Out: l.Schema.Concat(r.Schema)},
		L:    &plan.SeqScan{Base: plan.Base{Out: l.Schema}, Table: l},
		R:    &plan.SeqScan{Base: plan.Base{Out: r.Schema}, Table: r},
		LKey: 1, RKey: 0,
	}
}

// BenchmarkHashJoinRow: row-at-a-time hash join, 20k probe x 2k build.
func BenchmarkHashJoinRow(b *testing.B) {
	e := newBenchEnv(b)
	probe := e.fill(b, "probe", 20_000, 2000)
	build := e.fill(b, "build", 2000, 2000)
	node := joinPlan(probe, build)
	ctx := e.readCtx()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := buildScalar(node, ctx)
		if err != nil {
			b.Fatal(err)
		}
		if got := drainScalar(b, it); got == 0 {
			b.Fatal("empty join")
		}
	}
}

// BenchmarkHashJoinBatch: the batched build+probe join over the same data.
func BenchmarkHashJoinBatch(b *testing.B) {
	e := newBenchEnv(b)
	probe := e.fill(b, "probe", 20_000, 2000)
	build := e.fill(b, "build", 2000, 2000)
	node := joinPlan(probe, build)
	ctx := e.readCtx()
	batch := rel.NewBatch(BatchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := BuildBatch(node, ctx)
		if err != nil {
			b.Fatal(err)
		}
		if got := drainBatch(b, it, batch); got == 0 {
			b.Fatal("empty join")
		}
	}
}

// aggPlanNode builds GROUP BY grp with COUNT/SUM/MIN/MAX(val) — the shape
// the aggregation benchmarks run.
func aggPlanNode(tbl *catalog.Table) *plan.Agg {
	grp := &rel.ColRef{Idx: 1}
	val := &rel.ColRef{Idx: 2}
	return &plan.Agg{
		Child:   &plan.SeqScan{Base: plan.Base{Out: tbl.Schema}, Table: tbl},
		GroupBy: []rel.Expr{grp},
		Items: []plan.AggItem{
			{Key: grp},
			{Agg: &plan.AggSpec{Kind: plan.AggCount}},
			{Agg: &plan.AggSpec{Kind: plan.AggSum, Arg: val}},
			{Agg: &plan.AggSpec{Kind: plan.AggMin, Arg: val}},
			{Agg: &plan.AggSpec{Kind: plan.AggMax, Arg: val}},
		},
	}
}

// BenchmarkAggRowAdapter is the pre-PR-2 production aggregation path: the
// scalar aggIter pulling rows one at a time through the batch-scan adapter,
// re-encoding the group key into a fresh allocation per row.
func BenchmarkAggRowAdapter(b *testing.B) {
	e := newBenchEnv(b)
	tbl := e.fill(b, "t", scanRows, 16)
	node := aggPlanNode(tbl)
	ctx := e.readCtx()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scan, err := BuildBatch(node.Child, ctx)
		if err != nil {
			b.Fatal(err)
		}
		it := &aggIter{node: node, child: NewRowIter(scan)}
		if got := drainScalar(b, it); got != 16 {
			b.Fatalf("agg produced %d groups", got)
		}
	}
	b.ReportMetric(float64(scanRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkAggBatch is the native vectorized aggregation: grouped hash
// table with a reused key buffer and columnar accumulators, fed directly by
// the batch scan.
func BenchmarkAggBatch(b *testing.B) {
	e := newBenchEnv(b)
	tbl := e.fill(b, "t", scanRows, 16)
	node := aggPlanNode(tbl)
	ctx := e.readCtx()
	batch := rel.NewBatch(BatchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := BuildBatch(node, ctx)
		if err != nil {
			b.Fatal(err)
		}
		if got := drainBatch(b, it, batch); got != 16 {
			b.Fatalf("agg produced %d groups", got)
		}
	}
	b.ReportMetric(float64(scanRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// --- batch DML ---

const dmlRows = 100_000

func dmlWhere() rel.Expr {
	return &rel.BinOp{Kind: rel.OpEq, L: &rel.ColRef{Idx: 1}, R: &rel.Const{Val: rel.Int(7)}}
}

func dmlSet() map[int]rel.Expr {
	return map[int]rel.Expr{2: &rel.BinOp{Kind: rel.OpAdd,
		L: &rel.ColRef{Idx: 2}, R: &rel.Const{Val: rel.Float(1)}}}
}

// benchDML times one DML statement per iteration over a 100k-row table,
// aborting outside the timer so every iteration sees identical data.
func benchDML(b *testing.B, run func(ctx *Ctx, tbl *catalog.Table) (int, error)) {
	e := newBenchEnv(b)
	tbl := e.fill(b, "t", dmlRows, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := &Ctx{Mgr: e.mgr, Txn: e.mgr.Begin(txn.Snapshot, false), Cat: e.cat}
		n, err := run(ctx, tbl)
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("DML matched no rows")
		}
		b.StopTimer()
		e.mgr.Abort(ctx.Txn)
		b.StartTimer()
	}
	b.ReportMetric(float64(dmlRows)*float64(b.N)/b.Elapsed().Seconds(), "scanned_rows/s")
}

// BenchmarkUpdateWhereRowCursor is the legacy row-at-a-time UPDATE: one
// cursor step, one visibility call, and one writeMu acquisition per row.
func BenchmarkUpdateWhereRowCursor(b *testing.B) {
	set, where := dmlSet(), dmlWhere()
	benchDML(b, func(ctx *Ctx, tbl *catalog.Table) (int, error) {
		return updateWhereRowCursor(ctx, tbl, set, where)
	})
}

// BenchmarkUpdateWhereBatch is the page-batched UPDATE: per-page visibility,
// claims, index and statistics maintenance.
func BenchmarkUpdateWhereBatch(b *testing.B) {
	set, where := dmlSet(), dmlWhere()
	benchDML(b, func(ctx *Ctx, tbl *catalog.Table) (int, error) {
		return UpdateWhere(ctx, tbl, set, where)
	})
}

// BenchmarkDeleteWhereRowCursor is the legacy row-at-a-time DELETE.
func BenchmarkDeleteWhereRowCursor(b *testing.B) {
	where := dmlWhere()
	benchDML(b, func(ctx *Ctx, tbl *catalog.Table) (int, error) {
		return deleteWhereRowCursor(ctx, tbl, where)
	})
}

// BenchmarkDeleteWhereBatch is the page-batched DELETE.
func BenchmarkDeleteWhereBatch(b *testing.B) {
	where := dmlWhere()
	benchDML(b, func(ctx *Ctx, tbl *catalog.Table) (int, error) {
		return DeleteWhere(ctx, tbl, where)
	})
}

// benchParallelDML times one morsel-parallel DML statement per iteration
// with the worker pool sized to GOMAXPROCS, so `-cpu 1,2,4` records the
// write-path scaling curve through the striped claim path (the
// bench-multicore CI job does exactly that; a 1-core container shows ~1x
// by construction).
func benchParallelDML(b *testing.B, run func(ctx *Ctx, tbl *catalog.Table) (int, error)) {
	e := newBenchEnv(b)
	tbl := e.fill(b, "t", dmlRows, 16)
	workers := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := &Ctx{Mgr: e.mgr, Txn: e.mgr.Begin(txn.Snapshot, false), Cat: e.cat, Workers: workers}
		n, err := run(ctx, tbl)
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("DML matched no rows")
		}
		b.StopTimer()
		e.mgr.Abort(ctx.Txn)
		b.StartTimer()
	}
	b.ReportMetric(float64(dmlRows)*float64(b.N)/b.Elapsed().Seconds(), "scanned_rows/s")
}

// BenchmarkParallelDMLUpdate is the morsel-parallel UPDATE (page-batched
// claims through the lock stripes, per-worker side-effect buffers).
func BenchmarkParallelDMLUpdate(b *testing.B) {
	set, where := dmlSet(), dmlWhere()
	benchParallelDML(b, func(ctx *Ctx, tbl *catalog.Table) (int, error) {
		return UpdateWhere(ctx, tbl, set, where)
	})
}

// BenchmarkParallelDMLDelete is the morsel-parallel DELETE.
func BenchmarkParallelDMLDelete(b *testing.B) {
	where := dmlWhere()
	benchParallelDML(b, func(ctx *Ctx, tbl *catalog.Table) (int, error) {
		return DeleteWhere(ctx, tbl, where)
	})
}

// BenchmarkParallelScanAgg runs the scan+aggregation pipeline with the
// morsel-parallel worker pool sized to GOMAXPROCS, so `-cpu 1,2,4` records
// the intra-query scaling curve (the bench-multicore CI job does exactly
// that; a 1-core container shows ~1x by construction).
func BenchmarkParallelScanAgg(b *testing.B) {
	e := newBenchEnv(b)
	tbl := e.fill(b, "t", scanRows, 16)
	node := aggPlanNode(tbl)
	ctx := e.readCtx()
	ctx.Workers = runtime.GOMAXPROCS(0)
	batch := rel.NewBatch(BatchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := BuildBatch(node, ctx)
		if err != nil {
			b.Fatal(err)
		}
		if got := drainBatch(b, it, batch); got != 16 {
			b.Fatalf("agg produced %d groups", got)
		}
	}
	b.ReportMetric(float64(scanRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkParallelScanFilter is the ordered-exchange pipeline (scan +
// filter + project, no blocking operator) at GOMAXPROCS workers.
func BenchmarkParallelScanFilter(b *testing.B) {
	e := newBenchEnv(b)
	tbl := e.fill(b, "t", scanRows, 16)
	node := &plan.Project{
		Base: plan.Base{Out: tbl.Schema},
		Child: &plan.Filter{
			Base:  plan.Base{Out: tbl.Schema},
			Child: &plan.SeqScan{Base: plan.Base{Out: tbl.Schema}, Table: tbl},
			Pred:  &rel.BinOp{Kind: rel.OpGt, L: &rel.ColRef{Idx: 2}, R: &rel.Const{Val: rel.Float(0.5)}},
		},
		Exprs: []rel.Expr{&rel.ColRef{Idx: 0}, &rel.ColRef{Idx: 2}},
	}
	ctx := e.readCtx()
	ctx.Workers = runtime.GOMAXPROCS(0)
	batch := rel.NewBatch(BatchSize)
	b.ReportAllocs()
	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		it, err := BuildBatch(node, ctx)
		if err != nil {
			b.Fatal(err)
		}
		rows = drainBatch(b, it, batch)
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}
