package executor

import (
	"errors"
	"math/rand"
	"testing"

	"neurdb/internal/catalog"
	"neurdb/internal/rel"
	"neurdb/internal/storage"
	"neurdb/internal/txn"
)

// --- legacy row-cursor DML, preserved as the reference implementation ---
//
// These are verbatim copies of the pre-batching UpdateWhere/DeleteWhere:
// one cursor step, one visibility check, one manager write, and one
// index/stats maintenance call per row. The differential tests pin the
// page-batched implementations against them, and the benchmarks use them
// as the before side of the before/after numbers.

func updateWhereRowCursor(ctx *Ctx, t *catalog.Table, set map[int]rel.Expr, where rel.Expr) (int, error) {
	type pending struct {
		id       storage.RowID
		old, new rel.Row
	}
	var todo []pending
	cursor := t.Heap.NewCursor()
	for {
		id, head, ok := cursor.Next()
		if !ok {
			break
		}
		row, visible := ctx.Mgr.ReadHead(t.ID, id, head, ctx.Txn)
		if !visible {
			continue
		}
		if where != nil && !where.Eval(row).AsBool() {
			continue
		}
		newRow := row.Clone()
		for col, e := range set {
			newRow[col] = e.Eval(row)
		}
		todo = append(todo, pending{id: id, old: row, new: newRow})
	}
	for _, p := range todo {
		if err := ctx.Mgr.Update(t.Heap, p.id, p.new, ctx.Txn); err != nil {
			return 0, err
		}
		for _, ix := range t.Indexes() {
			if !rel.Equal(p.old[ix.Col], p.new[ix.Col]) {
				ix.Insert(p.new[ix.Col], p.id)
			}
		}
		t.Stats.NoteUpdate(p.old, p.new)
	}
	return len(todo), nil
}

func deleteWhereRowCursor(ctx *Ctx, t *catalog.Table, where rel.Expr) (int, error) {
	type pending struct {
		id  storage.RowID
		row rel.Row
	}
	var todo []pending
	cursor := t.Heap.NewCursor()
	for {
		id, head, ok := cursor.Next()
		if !ok {
			break
		}
		row, visible := ctx.Mgr.ReadHead(t.ID, id, head, ctx.Txn)
		if !visible {
			continue
		}
		if where != nil && !where.Eval(row).AsBool() {
			continue
		}
		todo = append(todo, pending{id: id, row: row})
	}
	for _, p := range todo {
		if err := ctx.Mgr.Delete(t.Heap, p.id, ctx.Txn); err != nil {
			return 0, err
		}
		t.Stats.NoteDelete(p.row)
	}
	return len(todo), nil
}

// seedDMLTable fills a multi-page table (id, grp, val) with deterministic
// data including NULLs in both the predicate column and the value column.
func seedDMLTable(t *testing.T, db *testDB, name string, n int) *catalog.Table {
	tbl := db.mustCreate(name,
		rel.Column{Name: "id", Typ: rel.TypeInt},
		rel.Column{Name: "grp", Typ: rel.TypeInt},
		rel.Column{Name: "val", Typ: rel.TypeFloat},
	)
	r := rand.New(rand.NewSource(99))
	ctx := db.ctx()
	for i := 0; i < n; i++ {
		grp := rel.Int(int64(r.Intn(8)))
		if i%13 == 0 {
			grp = rel.Null()
		}
		val := rel.Float(r.Float64() * 100)
		if i%17 == 0 {
			val = rel.Null()
		}
		if _, err := InsertRow(ctx, tbl, rel.Row{rel.Int(int64(i)), grp, val}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.mgr.Commit(ctx.Txn); err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestBatchDMLMatchesRowCursorDML runs the same UPDATE/DELETE sequence
// through the page-batched DML and the legacy row-cursor reference on
// identically-seeded tables, then compares affected counts, final visible
// contents, live-row accounting, and statistics row counts.
func TestBatchDMLMatchesRowCursorDML(t *testing.T) {
	dbBatch := newTestDB(t)
	dbRow := newTestDB(t)
	const n = 1500 // spans many pages
	tb := seedDMLTable(t, dbBatch, "t", n)
	tr := seedDMLTable(t, dbRow, "t", n)

	grpEq := func(v int64) rel.Expr {
		return &rel.BinOp{Kind: rel.OpEq, L: &rel.ColRef{Idx: 1}, R: &rel.Const{Val: rel.Int(v)}}
	}
	idLt := func(v int64) rel.Expr {
		return &rel.BinOp{Kind: rel.OpLt, L: &rel.ColRef{Idx: 0}, R: &rel.Const{Val: rel.Int(v)}}
	}
	bump := map[int]rel.Expr{2: &rel.BinOp{Kind: rel.OpAdd,
		L: &rel.ColRef{Idx: 2}, R: &rel.Const{Val: rel.Float(1000)}}}

	type step struct {
		name string
		run  func(ctx *Ctx, tbl *catalog.Table, batch bool) (int, error)
	}
	steps := []step{
		{"update grp=3", func(ctx *Ctx, tbl *catalog.Table, batch bool) (int, error) {
			if batch {
				return UpdateWhere(ctx, tbl, bump, grpEq(3))
			}
			return updateWhereRowCursor(ctx, tbl, bump, grpEq(3))
		}},
		{"delete id<200", func(ctx *Ctx, tbl *catalog.Table, batch bool) (int, error) {
			if batch {
				return DeleteWhere(ctx, tbl, idLt(200))
			}
			return deleteWhereRowCursor(ctx, tbl, idLt(200))
		}},
		{"update all (nil where)", func(ctx *Ctx, tbl *catalog.Table, batch bool) (int, error) {
			if batch {
				return UpdateWhere(ctx, tbl, bump, nil)
			}
			return updateWhereRowCursor(ctx, tbl, bump, nil)
		}},
		{"delete none (grp=99)", func(ctx *Ctx, tbl *catalog.Table, batch bool) (int, error) {
			if batch {
				return DeleteWhere(ctx, tbl, grpEq(99))
			}
			return deleteWhereRowCursor(ctx, tbl, grpEq(99))
		}},
		{"delete all", func(ctx *Ctx, tbl *catalog.Table, batch bool) (int, error) {
			if batch {
				return DeleteWhere(ctx, tbl, nil)
			}
			return deleteWhereRowCursor(ctx, tbl, nil)
		}},
	}
	for _, st := range steps {
		cb, cr := dbBatch.ctx(), dbRow.ctx()
		nb, err := st.run(cb, tb, true)
		if err != nil {
			t.Fatalf("%s (batch): %v", st.name, err)
		}
		nr, err := st.run(cr, tr, false)
		if err != nil {
			t.Fatalf("%s (row): %v", st.name, err)
		}
		if nb != nr {
			t.Fatalf("%s: batch affected %d, row-cursor %d", st.name, nb, nr)
		}
		if err := dbBatch.mgr.Commit(cb.Txn); err != nil {
			t.Fatal(err)
		}
		if err := dbRow.mgr.Commit(cr.Txn); err != nil {
			t.Fatal(err)
		}
		sb, sr := dbBatch.ctx(), dbRow.ctx()
		gotB := canonical(ScanAll(sb, tb))
		gotR := canonical(ScanAll(sr, tr))
		dbBatch.mgr.Abort(sb.Txn)
		dbRow.mgr.Abort(sr.Txn)
		if len(gotB) != len(gotR) {
			t.Fatalf("%s: batch %d rows, row-cursor %d rows", st.name, len(gotB), len(gotR))
		}
		for i := range gotB {
			if gotB[i] != gotR[i] {
				t.Fatalf("%s: row %d differs: batch %q row-cursor %q", st.name, i, gotB[i], gotR[i])
			}
		}
		if lb, lr := tb.Heap.LiveRows(), tr.Heap.LiveRows(); lb != lr {
			t.Fatalf("%s: live rows %d vs %d", st.name, lb, lr)
		}
		if rb, rr := tb.Stats.Rows(), tr.Stats.Rows(); rb != rr {
			t.Fatalf("%s: stats rows %d vs %d", st.name, rb, rr)
		}
	}
}

// TestBatchDMLOnEmptyTable: DML over an empty heap must affect nothing and
// not error.
func TestBatchDMLOnEmptyTable(t *testing.T) {
	db := newTestDB(t)
	tbl := db.mustCreate("e", rel.Column{Name: "x", Typ: rel.TypeInt})
	ctx := db.ctx()
	if n, err := UpdateWhere(ctx, tbl, map[int]rel.Expr{0: &rel.Const{Val: rel.Int(1)}}, nil); err != nil || n != 0 {
		t.Fatalf("update empty: n=%d err=%v", n, err)
	}
	if n, err := DeleteWhere(ctx, tbl, nil); err != nil || n != 0 {
		t.Fatalf("delete empty: n=%d err=%v", n, err)
	}
	if err := db.mgr.Commit(ctx.Txn); err != nil {
		t.Fatal(err)
	}
}

// TestBatchDMLWriteConflict: first-updater-wins must survive the batched
// claim path — a second transaction touching the same rows conflicts, and
// aborting it rolls its claims back so the winner's view is unaffected.
func TestBatchDMLWriteConflict(t *testing.T) {
	db := newTestDB(t)
	tbl := seedDMLTable(t, db, "t", 300)
	set := map[int]rel.Expr{2: &rel.Const{Val: rel.Float(-1)}}

	c1 := db.ctx()
	c2 := db.ctx()
	if _, err := UpdateWhere(c1, tbl, set, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := UpdateWhere(c2, tbl, set, nil); !errors.Is(err, txn.ErrWriteConflict) {
		t.Fatalf("expected write conflict, got %v", err)
	}
	db.mgr.Abort(c2.Txn)
	if err := db.mgr.Commit(c1.Txn); err != nil {
		t.Fatal(err)
	}
	rows := db.query("SELECT COUNT(*) FROM t WHERE val < 0")
	if rows[0][0].AsInt() != 300 {
		t.Fatalf("winner's update lost: %v", rows)
	}
}
