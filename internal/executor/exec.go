// Package executor evaluates physical plans with Volcano-style iterators
// and implements DML with index and statistics maintenance. It also hosts
// the in-database AI operators (train / inference / fine-tune) that bridge
// query processing to the AI engine (paper Fig. 1).
package executor

import (
	"fmt"
	"sort"

	"neurdb/internal/catalog"
	"neurdb/internal/plan"
	"neurdb/internal/rel"
	"neurdb/internal/storage"
	"neurdb/internal/txn"
)

// Ctx carries the execution environment.
type Ctx struct {
	Mgr *txn.Manager
	Txn *txn.Txn
	Cat *catalog.Catalog
	// Workers caps intra-query parallelism: plans built under this context
	// fan morsel pipelines out to at most this many goroutines. 0 or 1
	// keeps execution serial (the zero value preserves the behaviour of
	// callers that never opt in).
	Workers int
	// DMLParallelPages reports back how many heap pages the last DML
	// statement processed through the morsel-parallel write path (0 when it
	// ran serially). Written by the DML coordinator after its workers have
	// joined, so a plain int is safe; the session layer feeds it to the
	// monitor's dml.parallel_pages series.
	DMLParallelPages int
}

// Iter is a pull-based row iterator. Next returns (nil, nil) at the end.
type Iter interface {
	Open() error
	Next() (rel.Row, error)
	Close() error
}

// Build compiles a plan into an iterator tree. Every relational operator
// has a native vectorized implementation (scans, filter, project, all three
// joins, aggregation, sort, limit); they execute batch-at-a-time internally
// (morsel-parallel when ctx.Workers allows) and surface rows through an
// adapter, so row-oriented callers transparently ride the batch engine.
func Build(n plan.Node, ctx *Ctx) (Iter, error) {
	switch n.(type) {
	case *plan.SeqScan, *plan.IndexScan, *plan.HashJoin, *plan.NLJoin,
		*plan.IndexJoin, *plan.Filter, *plan.Project, *plan.Agg, *plan.Sort,
		*plan.Limit:
		b, err := BuildBatch(n, ctx)
		if err != nil {
			return nil, err
		}
		return NewRowIter(b), nil
	}
	return buildWith(n, ctx, Build)
}

// buildScalar compiles a plan into the legacy row-at-a-time iterator tree,
// with no batch operators anywhere. The batch engine replaced it on the hot
// path; it remains the reference implementation for differential tests and
// the baseline for the vectorization benchmarks.
func buildScalar(n plan.Node, ctx *Ctx) (Iter, error) {
	return buildWith(n, ctx, buildScalar)
}

// buildWith constructs the row operator for n, building child subtrees with
// the given builder (Build for batch-backed children, buildScalar for pure
// row trees).
func buildWith(n plan.Node, ctx *Ctx, child func(plan.Node, *Ctx) (Iter, error)) (Iter, error) {
	switch t := n.(type) {
	case *plan.SeqScan:
		return &seqScanIter{ctx: ctx, node: t}, nil
	case *plan.IndexScan:
		return &indexScanIter{ctx: ctx, node: t}, nil
	case *plan.HashJoin:
		l, err := child(t.L, ctx)
		if err != nil {
			return nil, err
		}
		r, err := child(t.R, ctx)
		if err != nil {
			return nil, err
		}
		return &hashJoinIter{node: t, left: l, right: r}, nil
	case *plan.NLJoin:
		l, err := child(t.L, ctx)
		if err != nil {
			return nil, err
		}
		r, err := child(t.R, ctx)
		if err != nil {
			return nil, err
		}
		return &nlJoinIter{node: t, left: l, right: r}, nil
	case *plan.IndexJoin:
		l, err := child(t.L, ctx)
		if err != nil {
			return nil, err
		}
		return &indexJoinIter{ctx: ctx, node: t, left: l}, nil
	case *plan.Filter:
		c, err := child(t.Child, ctx)
		if err != nil {
			return nil, err
		}
		return &filterIter{pred: t.Pred, child: c}, nil
	case *plan.Project:
		c, err := child(t.Child, ctx)
		if err != nil {
			return nil, err
		}
		return &projectIter{exprs: t.Exprs, child: c}, nil
	case *plan.Agg:
		c, err := child(t.Child, ctx)
		if err != nil {
			return nil, err
		}
		return &aggIter{node: t, child: c}, nil
	case *plan.Sort:
		c, err := child(t.Child, ctx)
		if err != nil {
			return nil, err
		}
		return &sortIter{keys: t.Keys, child: c}, nil
	case *plan.Limit:
		c, err := child(t.Child, ctx)
		if err != nil {
			return nil, err
		}
		return &limitIter{n: t.N, child: c}, nil
	default:
		return nil, fmt.Errorf("executor: unsupported plan node %T", n)
	}
}

// Run executes a plan to completion and returns all rows. The plan runs on
// the batch engine; operators without a batch implementation are adapted.
func Run(n plan.Node, ctx *Ctx) ([]rel.Row, error) {
	it, err := BuildBatch(n, ctx)
	if err != nil {
		return nil, err
	}
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	var out []rel.Row
	batch := rel.NewBatch(BatchSize)
	for {
		cnt, err := it.NextBatch(batch)
		if err != nil {
			return nil, err
		}
		if cnt == 0 {
			return out, nil
		}
		out = append(out, batch.Rows...)
	}
}

// --- scans ---

type seqScanIter struct {
	ctx    *Ctx
	node   *plan.SeqScan
	cursor *storage.Cursor
}

func (it *seqScanIter) Open() error {
	it.cursor = it.node.Table.Heap.NewCursor()
	return nil
}

func (it *seqScanIter) Next() (rel.Row, error) {
	for {
		id, head, ok := it.cursor.Next()
		if !ok {
			return nil, nil
		}
		row, visible := it.ctx.Mgr.ReadHead(it.node.Table.ID, id, head, it.ctx.Txn)
		if !visible {
			continue
		}
		if it.node.Filter != nil && !it.node.Filter.Eval(row).AsBool() {
			continue
		}
		return row, nil
	}
}

func (it *seqScanIter) Close() error { return nil }

type indexScanIter struct {
	ctx  *Ctx
	node *plan.IndexScan
	ids  []storage.RowID
	pos  int
}

// indexScanIDs materializes the posting list an index scan will visit.
func indexScanIDs(n *plan.IndexScan) ([]storage.RowID, error) {
	if n.EqArg != 0 || n.LoArg != 0 || n.HiArg != 0 {
		return nil, fmt.Errorf("executor: index scan on %q has unbound parameters (apply plan.BindParams first)", n.Index.Name)
	}
	switch {
	case n.Eq != nil:
		return n.Index.Lookup(*n.Eq), nil
	case n.Index.BT != nil:
		var ids []storage.RowID
		n.Index.BT.Range(n.Lo, n.Hi, func(_ rel.Value, got []storage.RowID) bool {
			ids = append(ids, got...)
			return true
		})
		return ids, nil
	default:
		return nil, fmt.Errorf("executor: range scan over hash index %q", n.Index.Name)
	}
}

// indexRecheck verifies the index condition against the fetched row:
// postings can be stale when an update changed the key (lazy index
// maintenance).
func indexRecheck(n *plan.IndexScan, row rel.Row) bool {
	v := row[n.Index.Col]
	if n.Eq != nil {
		return rel.Equal(v, *n.Eq)
	}
	if n.Lo != nil && rel.Compare(v, *n.Lo) < 0 {
		return false
	}
	if n.Hi != nil && rel.Compare(v, *n.Hi) > 0 {
		return false
	}
	return true
}

func (it *indexScanIter) Open() error {
	ids, err := indexScanIDs(it.node)
	it.ids = ids
	return err
}

func (it *indexScanIter) Next() (rel.Row, error) {
	for it.pos < len(it.ids) {
		id := it.ids[it.pos]
		it.pos++
		row, visible := it.ctx.Mgr.Read(it.node.Table.Heap, id, it.ctx.Txn)
		if !visible || !indexRecheck(it.node, row) {
			continue
		}
		if it.node.Filter != nil && !it.node.Filter.Eval(row).AsBool() {
			continue
		}
		return row, nil
	}
	return nil, nil
}

func (it *indexScanIter) Close() error { return nil }

// --- joins ---

type hashJoinIter struct {
	node        *plan.HashJoin
	left, right Iter
	table       map[uint64][]rel.Row
	leftRow     rel.Row
	matches     []rel.Row
	matchPos    int
}

func (it *hashJoinIter) Open() error {
	if err := it.right.Open(); err != nil {
		return err
	}
	defer it.right.Close()
	it.table = make(map[uint64][]rel.Row)
	for {
		row, err := it.right.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		key := row[it.node.RKey]
		if key.IsNull() {
			continue
		}
		h := key.Hash()
		it.table[h] = append(it.table[h], row)
	}
	return it.left.Open()
}

func (it *hashJoinIter) Next() (rel.Row, error) {
	for {
		if it.matchPos < len(it.matches) {
			r := it.matches[it.matchPos]
			it.matchPos++
			joined := make(rel.Row, 0, len(it.leftRow)+len(r))
			joined = append(joined, it.leftRow...)
			joined = append(joined, r...)
			if it.node.Residual != nil && !it.node.Residual.Eval(joined).AsBool() {
				continue
			}
			return joined, nil
		}
		l, err := it.left.Next()
		if err != nil {
			return nil, err
		}
		if l == nil {
			return nil, nil
		}
		key := l[it.node.LKey]
		if key.IsNull() {
			continue
		}
		it.leftRow = l
		bucket := it.table[key.Hash()]
		it.matches = it.matches[:0]
		for _, r := range bucket {
			if rel.Equal(r[it.node.RKey], key) {
				it.matches = append(it.matches, r)
			}
		}
		it.matchPos = 0
	}
}

func (it *hashJoinIter) Close() error { return it.left.Close() }

type nlJoinIter struct {
	node        *plan.NLJoin
	left, right Iter
	rightRows   []rel.Row
	leftRow     rel.Row
	pos         int
}

func (it *nlJoinIter) Open() error {
	if err := it.right.Open(); err != nil {
		return err
	}
	defer it.right.Close()
	for {
		row, err := it.right.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		it.rightRows = append(it.rightRows, row)
	}
	it.pos = len(it.rightRows) // force first left fetch
	return it.left.Open()
}

func (it *nlJoinIter) Next() (rel.Row, error) {
	for {
		if it.pos < len(it.rightRows) {
			r := it.rightRows[it.pos]
			it.pos++
			joined := make(rel.Row, 0, len(it.leftRow)+len(r))
			joined = append(joined, it.leftRow...)
			joined = append(joined, r...)
			if it.node.On != nil && !it.node.On.Eval(joined).AsBool() {
				continue
			}
			return joined, nil
		}
		l, err := it.left.Next()
		if err != nil {
			return nil, err
		}
		if l == nil {
			return nil, nil
		}
		it.leftRow = l
		it.pos = 0
	}
}

func (it *nlJoinIter) Close() error { return it.left.Close() }

type indexJoinIter struct {
	ctx      *Ctx
	node     *plan.IndexJoin
	left     Iter
	leftRow  rel.Row
	matches  []rel.Row
	matchPos int
}

func (it *indexJoinIter) Open() error { return it.left.Open() }

func (it *indexJoinIter) Next() (rel.Row, error) {
	for {
		if it.matchPos < len(it.matches) {
			r := it.matches[it.matchPos]
			it.matchPos++
			joined := make(rel.Row, 0, len(it.leftRow)+len(r))
			joined = append(joined, it.leftRow...)
			joined = append(joined, r...)
			if it.node.Residual != nil && !it.node.Residual.Eval(joined).AsBool() {
				continue
			}
			return joined, nil
		}
		l, err := it.left.Next()
		if err != nil {
			return nil, err
		}
		if l == nil {
			return nil, nil
		}
		key := l[it.node.LKey]
		if key.IsNull() {
			continue
		}
		it.leftRow = l
		it.matches = it.matches[:0]
		for _, id := range it.node.Index.Lookup(key) {
			row, visible := it.ctx.Mgr.Read(it.node.Table.Heap, id, it.ctx.Txn)
			if !visible {
				continue
			}
			// Recheck the key (stale postings) and inner filter.
			if !rel.Equal(row[it.node.Index.Col], key) {
				continue
			}
			if it.node.Filter != nil && !it.node.Filter.Eval(row).AsBool() {
				continue
			}
			it.matches = append(it.matches, row)
		}
		it.matchPos = 0
	}
}

func (it *indexJoinIter) Close() error { return it.left.Close() }

// --- row transforms ---

type filterIter struct {
	pred  rel.Expr
	child Iter
}

func (it *filterIter) Open() error { return it.child.Open() }

func (it *filterIter) Next() (rel.Row, error) {
	for {
		row, err := it.child.Next()
		if err != nil || row == nil {
			return nil, err
		}
		if it.pred.Eval(row).AsBool() {
			return row, nil
		}
	}
}

func (it *filterIter) Close() error { return it.child.Close() }

type projectIter struct {
	exprs []rel.Expr
	child Iter
}

func (it *projectIter) Open() error { return it.child.Open() }

func (it *projectIter) Next() (rel.Row, error) {
	row, err := it.child.Next()
	if err != nil || row == nil {
		return nil, err
	}
	out := make(rel.Row, len(it.exprs))
	for i, e := range it.exprs {
		out[i] = e.Eval(row)
	}
	return out, nil
}

func (it *projectIter) Close() error { return it.child.Close() }

type sortIter struct {
	keys  []plan.SortKey
	child Iter
	rows  []rel.Row
	pos   int
}

func (it *sortIter) Open() error {
	if err := it.child.Open(); err != nil {
		return err
	}
	defer it.child.Close()
	for {
		row, err := it.child.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		it.rows = append(it.rows, row)
	}
	sort.SliceStable(it.rows, func(i, j int) bool {
		for _, k := range it.keys {
			c := rel.Compare(k.E.Eval(it.rows[i]), k.E.Eval(it.rows[j]))
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return nil
}

func (it *sortIter) Next() (rel.Row, error) {
	if it.pos >= len(it.rows) {
		return nil, nil
	}
	row := it.rows[it.pos]
	it.pos++
	return row, nil
}

func (it *sortIter) Close() error { return nil }

type limitIter struct {
	n     int64
	child Iter
	seen  int64
}

func (it *limitIter) Open() error { return it.child.Open() }

func (it *limitIter) Next() (rel.Row, error) {
	if it.seen >= it.n {
		return nil, nil
	}
	row, err := it.child.Next()
	if err != nil || row == nil {
		return nil, err
	}
	it.seen++
	return row, nil
}

func (it *limitIter) Close() error { return it.child.Close() }

// --- aggregation ---

type aggState struct {
	first rel.Row
	count int64
	sums  []float64
	mins  []rel.Value
	maxs  []rel.Value
	cnts  []int64
}

type aggIter struct {
	node   *plan.Agg
	child  Iter
	groups []rel.Row
	pos    int
}

func (it *aggIter) Open() error {
	if err := it.child.Open(); err != nil {
		return err
	}
	defer it.child.Close()
	states := map[string]*aggState{}
	var order []string
	nAgg := len(it.node.Items)
	for {
		row, err := it.child.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		key := groupKey(it.node.GroupBy, row)
		st, ok := states[key]
		if !ok {
			st = &aggState{
				first: row.Clone(),
				sums:  make([]float64, nAgg),
				mins:  make([]rel.Value, nAgg),
				maxs:  make([]rel.Value, nAgg),
				cnts:  make([]int64, nAgg),
			}
			states[key] = st
			order = append(order, key)
		}
		st.count++
		for i, item := range it.node.Items {
			if item.Agg == nil {
				continue
			}
			if item.Agg.Arg == nil { // COUNT(*)
				st.cnts[i]++
				continue
			}
			v := item.Agg.Arg.Eval(row)
			if v.IsNull() {
				continue
			}
			st.cnts[i]++
			f := v.AsFloat()
			st.sums[i] += f
			if st.cnts[i] == 1 {
				st.mins[i], st.maxs[i] = v, v
			} else {
				if rel.Compare(v, st.mins[i]) < 0 {
					st.mins[i] = v
				}
				if rel.Compare(v, st.maxs[i]) > 0 {
					st.maxs[i] = v
				}
			}
		}
	}
	// Scalar aggregate over an empty input still yields one row.
	if len(order) == 0 && len(it.node.GroupBy) == 0 {
		order = append(order, "")
		states[""] = &aggState{
			sums: make([]float64, nAgg),
			mins: make([]rel.Value, nAgg),
			maxs: make([]rel.Value, nAgg),
			cnts: make([]int64, nAgg),
		}
	}
	for _, key := range order {
		st := states[key]
		out := make(rel.Row, nAgg)
		for i, item := range it.node.Items {
			if item.Agg == nil {
				if st.first == nil {
					out[i] = rel.Null()
				} else {
					out[i] = item.Key.Eval(st.first)
				}
				continue
			}
			switch item.Agg.Kind {
			case plan.AggCount:
				out[i] = rel.Int(st.cnts[i])
			case plan.AggSum:
				if st.cnts[i] == 0 {
					out[i] = rel.Null()
				} else {
					out[i] = rel.Float(st.sums[i])
				}
			case plan.AggAvg:
				if st.cnts[i] == 0 {
					out[i] = rel.Null()
				} else {
					out[i] = rel.Float(st.sums[i] / float64(st.cnts[i]))
				}
			case plan.AggMin:
				if st.cnts[i] == 0 {
					out[i] = rel.Null()
				} else {
					out[i] = st.mins[i]
				}
			case plan.AggMax:
				if st.cnts[i] == 0 {
					out[i] = rel.Null()
				} else {
					out[i] = st.maxs[i]
				}
			}
		}
		it.groups = append(it.groups, out)
	}
	return nil
}

func groupKey(groupBy []rel.Expr, row rel.Row) string {
	if len(groupBy) == 0 {
		return ""
	}
	var buf []byte
	for _, g := range groupBy {
		buf = rel.EncodeValue(buf, g.Eval(row))
	}
	return string(buf)
}

func (it *aggIter) Next() (rel.Row, error) {
	if it.pos >= len(it.groups) {
		return nil, nil
	}
	row := it.groups[it.pos]
	it.pos++
	return row, nil
}

func (it *aggIter) Close() error { return nil }
