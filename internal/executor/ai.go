package executor

import (
	"fmt"
	"math/rand"

	"neurdb/internal/aiengine"
	"neurdb/internal/armnet"
	"neurdb/internal/catalog"
	"neurdb/internal/models"
	"neurdb/internal/nn"
	"neurdb/internal/rel"
)

// PredictTask is a bound PREDICT statement: the executor's AI operators
// (train / inference / fine-tune, Fig. 1) run it against the AI engine.
type PredictTask struct {
	Table          *catalog.Table
	TargetIdx      int
	FeatureIdxs    []int
	Classification bool
	TrainFilter    rel.Expr  // WITH clause; nil = all rows with non-null target
	PredictFilter  rel.Expr  // WHERE clause; nil with no VALUES = rows with null target
	InlineRows     []rel.Row // VALUES rows, in FeatureIdxs order
	ModelName      string
	BatchSize      int
	Window         int
	LR             float64
	// Epochs repeats the training data with per-epoch reshuffling; 0 picks
	// an adaptive count targeting a fixed optimization-step budget.
	Epochs          int
	BucketsPerField int
	EmbDim, Hidden  int
}

// PredictResult reports a completed PREDICT.
type PredictResult struct {
	Predictions []float64
	Inputs      []rel.Row
	Train       *aiengine.TrainOutcome
	MID         int
	TS          uint64
	Reused      bool // true when an existing model view was fine-tuned
}

// fieldCodec featurizes one column into bucket ids with a stable mapping
// snapshotted at task start.
type fieldCodec struct {
	isNumeric bool
	min, max  float64
	buckets   int
}

func (c fieldCodec) encode(v rel.Value) int {
	if !c.isNumeric || v.Typ == rel.TypeText {
		return int(v.Hash() % uint64(c.buckets))
	}
	f := v.AsFloat()
	span := c.max - c.min
	if span <= 0 {
		return 0
	}
	b := int((f - c.min) / span * float64(c.buckets))
	if b < 0 {
		b = 0
	}
	if b >= c.buckets {
		b = c.buckets - 1
	}
	return b
}

// buildCodecs snapshots per-feature featurization from table statistics.
func buildCodecs(t *catalog.Table, featureIdxs []int, buckets int) []fieldCodec {
	out := make([]fieldCodec, len(featureIdxs))
	for i, col := range featureIdxs {
		cs := t.Stats.Col(col)
		typ := t.Schema.Col(col).Typ
		out[i] = fieldCodec{
			isNumeric: typ == rel.TypeInt || typ == rel.TypeFloat || typ == rel.TypeBool,
			min:       cs.Min,
			max:       cs.Max,
			buckets:   buckets,
		}
		if cs.Count == 0 {
			// No statistics yet: hash everything.
			out[i].isNumeric = false
		}
	}
	return out
}

// chunkSource yields fixed-size row batches from a slice for a number of
// epochs, reshuffling between epochs.
type chunkSource struct {
	rows   []rel.Row
	size   int
	pos    int
	epochs int
	rng    *rand.Rand
}

// Next implements aiengine.RowBatchSource.
func (c *chunkSource) Next() ([]rel.Row, bool) {
	if c.pos >= len(c.rows) {
		if c.epochs <= 1 {
			return nil, false
		}
		c.epochs--
		c.pos = 0
		if c.rng != nil {
			c.rng.Shuffle(len(c.rows), func(i, j int) {
				c.rows[i], c.rows[j] = c.rows[j], c.rows[i]
			})
		}
	}
	end := c.pos + c.size
	if end > len(c.rows) {
		end = len(c.rows)
	}
	chunk := c.rows[c.pos:end]
	c.pos = end
	return chunk, true
}

// RunPredict executes a PREDICT task end to end: retrieve training data,
// train (or fine-tune an existing model view), then run inference and
// return predictions.
func RunPredict(ctx *Ctx, eng *aiengine.Engine, task PredictTask) (*PredictResult, error) {
	if task.BatchSize <= 0 {
		task.BatchSize = 128
	}
	if task.Window <= 0 {
		task.Window = 8
	}
	if task.LR <= 0 {
		task.LR = 0.02
	}
	if task.BucketsPerField <= 0 {
		task.BucketsPerField = 32
	}
	if task.EmbDim <= 0 {
		task.EmbDim = 8
	}
	if task.Hidden <= 0 {
		task.Hidden = 32
	}
	if len(task.FeatureIdxs) == 0 {
		return nil, fmt.Errorf("executor: predict with no feature columns")
	}
	// Inline rows are positional over FeatureIdxs; a short or long row would
	// misalign every feature after the mismatch, so reject it up front.
	for i, row := range task.InlineRows {
		if len(row) != len(task.FeatureIdxs) {
			return nil, fmt.Errorf("executor: inline predict row %d has %d values for %d feature columns",
				i+1, len(row), len(task.FeatureIdxs))
		}
	}

	// 1. Extraction: a single streaming pass over the table collects the
	// training rows (non-null target passing the WITH filter) and — when
	// there are no inline VALUES — the inference inputs, batch-at-a-time
	// straight off the scan pipeline (morsel-parallel under ctx.Workers).
	// Only the two filtered subsets are materialized; the full row slice
	// never is (paper Fig. 6a: extraction cost bounds adaptive training).
	var trainRows, inferRows []rel.Row
	collectInfer := len(task.InlineRows) == 0
	err := ScanBatches(ctx, task.Table, func(b *rel.Batch) error {
		for _, row := range b.Rows {
			if !row[task.TargetIdx].IsNull() &&
				(task.TrainFilter == nil || task.TrainFilter.Eval(row).AsBool()) {
				trainRows = append(trainRows, row)
			}
			if collectInfer {
				match := false
				if task.PredictFilter != nil {
					match = task.PredictFilter.Eval(row).AsBool()
				} else {
					match = row[task.TargetIdx].IsNull()
				}
				if match {
					inferRows = append(inferRows, row)
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(trainRows) == 0 {
		return nil, fmt.Errorf("executor: predict has no training rows in %s", task.Table.Name)
	}

	codecs := buildCodecs(task.Table, task.FeatureIdxs, task.BucketsPerField)
	fields := len(task.FeatureIdxs)
	vocab := fields * task.BucketsPerField
	featurize := func(rows []rel.Row) (*nn.Matrix, *nn.Matrix) {
		x := nn.NewMatrix(len(rows), fields)
		y := nn.NewMatrix(len(rows), 1)
		for i, row := range rows {
			for f, col := range task.FeatureIdxs {
				x.Set(i, f, float64(f*task.BucketsPerField+codecs[f].encode(row[col])))
			}
			tv := row[task.TargetIdx].AsFloat()
			if task.Classification && tv > 0.5 {
				tv = 1
			} else if task.Classification {
				tv = 0
			}
			y.Set(i, 0, tv)
		}
		return x, y
	}
	// Inline VALUES rows are already in feature order (arity checked above).
	featurizeInline := func(rows []rel.Row) *nn.Matrix {
		x := nn.NewMatrix(len(rows), fields)
		for i, row := range rows {
			for f := range task.FeatureIdxs {
				x.Set(i, f, float64(f*task.BucketsPerField+codecs[f].encode(row[f])))
			}
		}
		return x
	}

	spec := models.Spec{
		Arch: "armnet", Fields: fields, Vocab: vocab,
		EmbDim: task.EmbDim, Hidden: task.Hidden,
		Classification: task.Classification, Seed: 42,
	}

	epochs := task.Epochs
	if epochs <= 0 {
		// Target ~60 optimization steps for small datasets.
		stepsPerEpoch := (len(trainRows) + task.BatchSize - 1) / task.BatchSize
		epochs = 60/max(stepsPerEpoch, 1) + 1
		if epochs > 40 {
			epochs = 40
		}
	}
	res := &PredictResult{}
	// trainRows is freshly collected above and not used for anything else,
	// so the per-epoch reshuffle can permute it in place.
	loader := aiengine.NewStreamingLoader(&chunkSource{
		rows: trainRows, size: task.BatchSize, epochs: epochs,
		rng: rand.New(rand.NewSource(7)),
	}, featurize, task.Window)
	if view, ok := eng.Store.FindViewByName(task.ModelName); ok && task.ModelName != "" {
		// Incremental path: fine-tune the existing model on fresh data.
		out, err := eng.FineTune(view.MID, 0, armnet.FreezePrefixLayers, task.LR, loader)
		if err != nil {
			return nil, err
		}
		res.Train = out
		res.MID, res.TS = out.MID, out.TS
		res.Reused = true
	} else {
		out, err := eng.Train(spec, aiengine.TrainConfig{
			Name: task.ModelName, BatchSize: task.BatchSize,
			Window: task.Window, LR: task.LR,
		}, loader)
		if err != nil {
			return nil, err
		}
		res.Train = out
		res.MID, res.TS = out.MID, out.TS
	}

	// 2. Inference inputs (collected during the extraction pass).
	var inferX *nn.Matrix
	if len(task.InlineRows) > 0 {
		res.Inputs = task.InlineRows
		inferX = featurizeInline(task.InlineRows)
	} else {
		res.Inputs = inferRows
		if len(res.Inputs) == 0 {
			// Nothing to predict: the task degenerates to model training.
			return res, nil
		}
		x, _ := featurize(res.Inputs)
		inferX = x
	}
	batches := make([]*aiengine.Batch, 0, inferX.Rows/task.BatchSize+1)
	for start := 0; start < inferX.Rows; start += task.BatchSize {
		end := start + task.BatchSize
		if end > inferX.Rows {
			end = inferX.Rows
		}
		sub := nn.NewMatrix(end-start, inferX.Cols)
		copy(sub.Data, inferX.Data[start*inferX.Cols:end*inferX.Cols])
		batches = append(batches, &aiengine.Batch{X: sub})
	}
	preds, err := eng.Infer(res.MID, 0, &aiengine.SliceSource{Batches: batches})
	if err != nil {
		return nil, err
	}
	res.Predictions = preds
	return res, nil
}
