package executor

import (
	"sort"

	"neurdb/internal/plan"
	"neurdb/internal/rel"
)

// sortBatch is the vectorized sort: Open collects the child's batches,
// evaluates each sort-key expression once per row into columnar key arrays,
// and sorts an index permutation over them — rows are never moved and key
// expressions are evaluated n times instead of O(n log n) comparator calls.
// NextBatch re-emits the rows in permuted order, batch-at-a-time.
type sortBatch struct {
	keys  []plan.SortKey
	child BatchIter

	rows    []rel.Row
	keyVals [][]rel.Value // one column per sort key, aligned with rows
	idx     []int32
	pos     int
}

func (s *sortBatch) Open() error {
	if err := s.child.Open(); err != nil {
		return err
	}
	defer s.child.Close()
	in := rel.NewBatch(BatchSize)
	for {
		n, err := s.child.NextBatch(in)
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
		s.rows = append(s.rows, in.Rows...)
	}
	s.keyVals = make([][]rel.Value, len(s.keys))
	for k, key := range s.keys {
		col := make([]rel.Value, len(s.rows))
		for i, row := range s.rows {
			col[i] = key.E.Eval(row)
		}
		s.keyVals[k] = col
	}
	s.idx = make([]int32, len(s.rows))
	for i := range s.idx {
		s.idx[i] = int32(i)
	}
	sort.SliceStable(s.idx, func(a, b int) bool {
		ia, ib := s.idx[a], s.idx[b]
		for k := range s.keys {
			c := rel.Compare(s.keyVals[k][ia], s.keyVals[k][ib])
			if c == 0 {
				continue
			}
			if s.keys[k].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return nil
}

func (s *sortBatch) NextBatch(dst *rel.Batch) (int, error) {
	dst.Reset()
	for s.pos < len(s.idx) && dst.Len() < BatchSize {
		dst.Append(s.rows[s.idx[s.pos]])
		s.pos++
	}
	return dst.Len(), nil
}

func (s *sortBatch) Close() error { return nil }

// limitBatch caps the stream at n rows by slicing batches: full batches
// pass through untouched, the final batch is truncated in place, and once
// the limit is reached the child is not pulled again (LIMIT 0 never pulls).
type limitBatch struct {
	n     int64
	child BatchIter
	seen  int64
}

func (l *limitBatch) Open() error { return l.child.Open() }

func (l *limitBatch) NextBatch(dst *rel.Batch) (int, error) {
	if l.seen >= l.n {
		dst.Reset()
		return 0, nil
	}
	cnt, err := l.child.NextBatch(dst)
	if err != nil || cnt == 0 {
		return 0, err
	}
	if rem := l.n - l.seen; int64(cnt) > rem {
		dst.Truncate(int(rem))
		cnt = int(rem)
	}
	l.seen += int64(cnt)
	return cnt, nil
}

func (l *limitBatch) Close() error { return l.child.Close() }
