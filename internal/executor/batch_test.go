package executor

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"neurdb/internal/optimizer"
	"neurdb/internal/rel"
	"neurdb/internal/sqlparse"
	"neurdb/internal/txn"
)

// runScalar executes a plan on the legacy row-at-a-time engine.
func (db *testDB) runScalar(sql string) ([]rel.Row, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	q, err := optimizer.Bind(stmt.(*sqlparse.Select), db.cat)
	if err != nil {
		return nil, err
	}
	p, err := optimizer.New().Plan(q)
	if err != nil {
		return nil, err
	}
	ctx := &Ctx{Mgr: db.mgr, Txn: db.mgr.Begin(txn.Snapshot, true), Cat: db.cat}
	it, err := buildScalar(p, ctx)
	if err != nil {
		return nil, err
	}
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	var out []rel.Row
	for {
		row, err := it.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return out, nil
		}
		out = append(out, row)
	}
}

func canonical(rows []rel.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

// TestBatchEngineMatchesScalarEngine is the differential check for the
// vectorized executor: every query shape must return exactly the same
// multiset of rows on the batch engine (Run) and the legacy scalar engine.
// The table spans multiple heap pages and includes updated and deleted rows
// so visibility, filters, joins, and aggregation all cross batch
// boundaries.
func TestBatchEngineMatchesScalarEngine(t *testing.T) {
	db := newTestDB(t)
	items := db.mustCreate("items",
		rel.Column{Name: "id", Typ: rel.TypeInt, Unique: true},
		rel.Column{Name: "cat", Typ: rel.TypeInt},
		rel.Column{Name: "price", Typ: rel.TypeFloat},
	)
	cats := db.mustCreate("cats",
		rel.Column{Name: "cid", Typ: rel.TypeInt, Unique: true},
		rel.Column{Name: "label", Typ: rel.TypeText},
	)
	r := rand.New(rand.NewSource(42))
	ctx := db.ctx()
	for i := 0; i < 3000; i++ {
		cat := rel.Int(int64(r.Intn(10)))
		if i%23 == 0 {
			cat = rel.Null() // NULL group keys
		}
		price := rel.Float(r.Float64() * 100)
		if i%31 == 0 {
			price = rel.Null() // NULL aggregate inputs
		}
		if _, err := InsertRow(ctx, items, rel.Row{rel.Int(int64(i)), cat, price}); err != nil {
			t.Fatal(err)
		}
	}
	for c := 0; c < 10; c++ {
		if _, err := InsertRow(ctx, cats, rel.Row{rel.Int(int64(c)), rel.Text(fmt.Sprintf("c%d", c))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.mgr.Commit(ctx.Txn); err != nil {
		t.Fatal(err)
	}
	// Mutate: version chains and dead slots must not confuse batch scans.
	mctx := db.ctx()
	where := &rel.BinOp{Kind: rel.OpLt, L: &rel.ColRef{Idx: 0}, R: &rel.Const{Val: rel.Int(200)}}
	if _, err := DeleteWhere(mctx, items, where); err != nil {
		t.Fatal(err)
	}
	set := map[int]rel.Expr{2: &rel.Const{Val: rel.Float(1)}}
	whereUpd := &rel.BinOp{Kind: rel.OpGt, L: &rel.ColRef{Idx: 0}, R: &rel.Const{Val: rel.Int(2800)}}
	if _, err := UpdateWhere(mctx, items, set, whereUpd); err != nil {
		t.Fatal(err)
	}
	if err := db.mgr.Commit(mctx.Txn); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		"SELECT * FROM items",
		"SELECT id FROM items WHERE cat = 3",
		"SELECT id, price * 2 FROM items WHERE price > 50",
		"SELECT i.id, c.label FROM items i JOIN cats c ON i.cat = c.cid WHERE i.price > 90",
		"SELECT cat, COUNT(*), SUM(price) FROM items GROUP BY cat",
		"SELECT cat, AVG(price), MIN(price), MAX(price) FROM items GROUP BY cat",
		"SELECT id FROM items ORDER BY price DESC LIMIT 17",
		"SELECT COUNT(*) FROM items WHERE id < 1000",
		"SELECT COUNT(*), SUM(price), AVG(price), MIN(price), MAX(price) FROM items",
		"SELECT i.id, c.label FROM items i, cats c WHERE i.cat = c.cid AND c.label = 'c7'",
		// Edge cases: empty input under agg/sort/limit, LIMIT 0, LIMIT
		// beyond the table, LIMIT on a batch boundary.
		"SELECT COUNT(*), SUM(price) FROM items WHERE id < 0",
		"SELECT cat, COUNT(*) FROM items WHERE id < 0 GROUP BY cat",
		"SELECT id FROM items WHERE id < 0 ORDER BY price",
		"SELECT id FROM items ORDER BY price LIMIT 0",
		"SELECT id FROM items LIMIT 0",
		"SELECT id FROM items LIMIT 100000",
		"SELECT id FROM items ORDER BY cat, price DESC LIMIT 512",
	}
	for _, sql := range queries {
		batched, err := db.tryQuery(sql) // Run → batch engine
		if err != nil {
			t.Fatalf("batch %q: %v", sql, err)
		}
		scalar, err := db.runScalar(sql)
		if err != nil {
			t.Fatalf("scalar %q: %v", sql, err)
		}
		bc, sc := canonical(batched), canonical(scalar)
		if len(bc) != len(sc) {
			t.Fatalf("%q: batch %d rows, scalar %d rows", sql, len(bc), len(sc))
		}
		for i := range bc {
			if bc[i] != sc[i] {
				t.Fatalf("%q: row %d differs: batch %q scalar %q", sql, i, bc[i], sc[i])
			}
		}
	}
}

// TestBatchSortOrderMatchesScalar pins the *sequence* the batch sort emits
// (the multiset check above sorts rows canonically, so it cannot see
// ordering bugs). Both engines use a stable sort over the same heap order,
// so ties must come out identically too.
func TestBatchSortOrderMatchesScalar(t *testing.T) {
	db := newTestDB(t)
	tbl := db.mustCreate("s",
		rel.Column{Name: "id", Typ: rel.TypeInt},
		rel.Column{Name: "k", Typ: rel.TypeInt},
	)
	r := rand.New(rand.NewSource(7))
	var rows []rel.Row
	for i := 0; i < 1000; i++ {
		k := rel.Int(int64(r.Intn(5))) // heavy ties
		if i%19 == 0 {
			k = rel.Null() // NULL sort keys (sort first)
		}
		rows = append(rows, rel.Row{rel.Int(int64(i)), k})
	}
	db.insert(tbl, rows...)
	for _, sql := range []string{
		"SELECT id, k FROM s ORDER BY k",
		"SELECT id, k FROM s ORDER BY k DESC",
		"SELECT id, k FROM s ORDER BY k, id DESC",
		"SELECT id, k FROM s ORDER BY k DESC LIMIT 300",
	} {
		batched, err := db.tryQuery(sql)
		if err != nil {
			t.Fatalf("batch %q: %v", sql, err)
		}
		scalar, err := db.runScalar(sql)
		if err != nil {
			t.Fatalf("scalar %q: %v", sql, err)
		}
		if len(batched) != len(scalar) {
			t.Fatalf("%q: batch %d rows, scalar %d", sql, len(batched), len(scalar))
		}
		for i := range batched {
			if batched[i].String() != scalar[i].String() {
				t.Fatalf("%q: position %d differs: batch %v scalar %v", sql, i, batched[i], scalar[i])
			}
		}
	}
}

// TestFilterBatchSkipsEmptyBatches: a highly selective filter must keep
// pulling child batches rather than signalling a spurious end-of-stream
// when one batch filters down to zero rows.
func TestFilterBatchSkipsEmptyBatches(t *testing.T) {
	db := newTestDB(t)
	tbl := db.mustCreate("t", rel.Column{Name: "x", Typ: rel.TypeInt})
	var rows []rel.Row
	for i := 0; i < 2000; i++ {
		rows = append(rows, rel.Row{rel.Int(int64(i))})
	}
	db.insert(tbl, rows...)
	// Exactly one row, deep in the table: every earlier batch is empty
	// after filtering.
	got := db.query("SELECT x FROM t WHERE x = 1999")
	if len(got) != 1 || got[0][0].AsInt() != 1999 {
		t.Fatalf("got %v", got)
	}
}

// TestHashJoinBatchOverflow: one probe batch can produce far more than
// BatchSize joined rows; the pending buffer must carry them across
// NextBatch calls without loss or duplication.
func TestHashJoinBatchOverflow(t *testing.T) {
	db := newTestDB(t)
	l := db.mustCreate("l", rel.Column{Name: "k", Typ: rel.TypeInt})
	rr := db.mustCreate("r", rel.Column{Name: "k", Typ: rel.TypeInt})
	var lrows, rrows []rel.Row
	for i := 0; i < 40; i++ {
		lrows = append(lrows, rel.Row{rel.Int(1)})
	}
	for i := 0; i < 50; i++ {
		rrows = append(rrows, rel.Row{rel.Int(1)})
	}
	db.insert(l, lrows...)
	db.insert(rr, rrows...)
	rows := db.query("SELECT * FROM l, r WHERE l.k = r.k")
	if len(rows) != 40*50 {
		t.Fatalf("join produced %d rows, want %d", len(rows), 40*50)
	}
}

// TestRowIterAdapterRoundTrip: wrapping a batch iterator as rows and back
// as batches must preserve the stream.
func TestRowIterAdapterRoundTrip(t *testing.T) {
	db := newTestDB(t)
	tbl := db.mustCreate("t", rel.Column{Name: "x", Typ: rel.TypeInt})
	var rows []rel.Row
	for i := 0; i < 700; i++ { // not a multiple of BatchSize
		rows = append(rows, rel.Row{rel.Int(int64(i))})
	}
	db.insert(tbl, rows...)

	stmt, _ := sqlparse.Parse("SELECT x FROM t")
	q, err := optimizer.Bind(stmt.(*sqlparse.Select), db.cat)
	if err != nil {
		t.Fatal(err)
	}
	p, err := optimizer.New().Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Ctx{Mgr: db.mgr, Txn: db.mgr.Begin(txn.Snapshot, true), Cat: db.cat}
	b, err := BuildBatch(p, ctx)
	if err != nil {
		t.Fatal(err)
	}
	it := NewBatchIter(NewRowIter(b))
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	total := 0
	batch := rel.NewBatch(BatchSize)
	for {
		n, err := it.NextBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		total += n
	}
	if total != 700 {
		t.Fatalf("round trip lost rows: %d", total)
	}
}

// TestSerializableBatchScanRegistersReads: the batch scan's serializable
// path must keep SSI bookkeeping — classic write skew between two
// serializable transactions still aborts one of them.
func TestSerializableBatchScanRegistersReads(t *testing.T) {
	db := newTestDB(t)
	tbl := db.mustCreate("t",
		rel.Column{Name: "id", Typ: rel.TypeInt},
		rel.Column{Name: "v", Typ: rel.TypeInt},
	)
	db.insert(tbl, rel.Row{rel.Int(1), rel.Int(10)}, rel.Row{rel.Int(2), rel.Int(10)})

	t1 := db.mgr.Begin(txn.Serializable, false)
	t2 := db.mgr.Begin(txn.Serializable, false)
	c1 := &Ctx{Mgr: db.mgr, Txn: t1, Cat: db.cat}
	c2 := &Ctx{Mgr: db.mgr, Txn: t2, Cat: db.cat}

	// Both read the whole table through the batch scan...
	stmt, _ := sqlparse.Parse("SELECT * FROM t")
	q, _ := optimizer.Bind(stmt.(*sqlparse.Select), db.cat)
	p, _ := optimizer.New().Plan(q)
	if _, err := Run(p, c1); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, c2); err != nil {
		t.Fatal(err)
	}
	// ...then each updates the row the other read (write skew).
	w1 := &rel.BinOp{Kind: rel.OpEq, L: &rel.ColRef{Idx: 0}, R: &rel.Const{Val: rel.Int(1)}}
	w2 := &rel.BinOp{Kind: rel.OpEq, L: &rel.ColRef{Idx: 0}, R: &rel.Const{Val: rel.Int(2)}}
	if _, err := UpdateWhere(c1, tbl, map[int]rel.Expr{1: &rel.Const{Val: rel.Int(0)}}, w1); err != nil {
		t.Fatal(err)
	}
	if _, err := UpdateWhere(c2, tbl, map[int]rel.Expr{1: &rel.Const{Val: rel.Int(0)}}, w2); err != nil {
		t.Fatal(err)
	}
	err1 := db.mgr.Commit(t1)
	err2 := db.mgr.Commit(t2)
	if err1 == nil && err2 == nil {
		t.Fatal("write skew committed on both sides: batch scan lost SSI read registration")
	}
	if err1 != nil && !strings.Contains(err1.Error(), "serialization") {
		t.Fatalf("unexpected t1 error: %v", err1)
	}
	if err2 != nil && !strings.Contains(err2.Error(), "serialization") {
		t.Fatalf("unexpected t2 error: %v", err2)
	}
}
