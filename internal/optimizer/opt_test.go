package optimizer

import (
	"math/rand"
	"strings"
	"testing"

	"neurdb/internal/catalog"
	"neurdb/internal/index"
	"neurdb/internal/plan"
	"neurdb/internal/rel"
	"neurdb/internal/sqlparse"
	"neurdb/internal/stats"
	"neurdb/internal/storage"
)

// buildCat creates two joined tables with data, stats and an FK index.
func buildCat(t *testing.T) (*catalog.Catalog, *catalog.Table, *catalog.Table) {
	t.Helper()
	cat := catalog.New(storage.NewBufferPool(256))
	users, err := cat.Create("users", rel.NewSchema(
		rel.Column{Name: "id", Typ: rel.TypeInt, Unique: true},
		rel.Column{Name: "rep", Typ: rel.TypeInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	posts, err := cat.Create("posts", rel.NewSchema(
		rel.Column{Name: "id", Typ: rel.TypeInt, Unique: true},
		rel.Column{Name: "owner", Typ: rel.TypeInt},
		rel.Column{Name: "score", Typ: rel.TypeInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	var uRows, pRows []rel.Row
	ownerIdx := index.NewBTree()
	for i := 0; i < 1000; i++ {
		row := rel.Row{rel.Int(int64(i)), rel.Int(int64(r.Intn(5000)))}
		uRows = append(uRows, row)
		users.Heap.Insert(row, 1)
	}
	for i := 0; i < 3000; i++ {
		row := rel.Row{rel.Int(int64(i)), rel.Int(int64(r.Intn(1000))), rel.Int(int64(r.Intn(100)))}
		pRows = append(pRows, row)
		id := posts.Heap.Insert(row, 1)
		ownerIdx.Insert(row[1], id)
	}
	posts.AddIndex(&catalog.Index{Name: "posts_owner", Col: 1, BT: ownerIdx})
	users.Stats.Rebuild(uRows)
	posts.Stats.Rebuild(pRows)
	return cat, users, posts
}

func bindSQL(t *testing.T, cat *catalog.Catalog, sql string) *Query {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Bind(stmt.(*sqlparse.Select), cat)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestBindClassifiesPredicates(t *testing.T) {
	cat, _, _ := buildCat(t)
	q := bindSQL(t, cat, `SELECT u.id FROM users u, posts p
		WHERE u.id = p.owner AND u.rep > 100 AND p.score < 50 AND u.id + p.score > 10`)
	if len(q.Joins) != 1 {
		t.Fatalf("joins = %d", len(q.Joins))
	}
	if len(q.Local[0]) != 1 || len(q.Local[1]) != 1 {
		t.Fatalf("local preds: %d/%d", len(q.Local[0]), len(q.Local[1]))
	}
	if len(q.Residual) != 1 {
		t.Fatalf("residual preds = %d", len(q.Residual))
	}
	// Local predicates are rebased to the table's own schema.
	refs := map[int]bool{}
	rel.ReferencedCols(q.Local[1][0], refs)
	if !refs[2] {
		t.Fatalf("posts-local pred not rebased: %v", refs)
	}
}

func TestPlanChoosesHashJoinAndRespectsHints(t *testing.T) {
	cat, _, _ := buildCat(t)
	q := bindSQL(t, cat, `SELECT u.id FROM users u, posts p WHERE u.id = p.owner`)

	def, err := New().Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	defStr := strings.ToLower(plan.Explain(def))
	if !strings.Contains(defStr, "join") {
		t.Fatalf("no join in plan:\n%s", defStr)
	}

	noHash := &Optimizer{Hints: HintSet{NoHashJoin: true, NoIndexJoin: true}}
	p2, err := noHash.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan.Explain(p2), "HashJoin") || strings.Contains(plan.Explain(p2), "IndexJoin") {
		t.Fatalf("hints not respected:\n%s", plan.Explain(p2))
	}
}

func TestStaleStatsChangePlans(t *testing.T) {
	cat, users, posts := buildCat(t)
	q := bindSQL(t, cat, `SELECT u.id FROM users u, posts p WHERE u.id = p.owner AND p.score > 90`)
	stale := map[int]*stats.TableStats{
		users.ID: users.Stats.Snapshot(),
		posts.ID: posts.Stats.Snapshot(),
	}
	staleView := func(t *catalog.Table) *stats.TableStats {
		if s, ok := stale[t.ID]; ok {
			return s
		}
		return t.Stats
	}
	// Drift: posts grows 10x with only high scores.
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 30000; i++ {
		row := rel.Row{rel.Int(int64(10000 + i)), rel.Int(int64(r.Intn(1000))), rel.Int(95)}
		posts.Stats.NoteInsert(row)
	}
	liveOpt := &Optimizer{Stats: LiveStats}
	staleOpt := &Optimizer{Stats: staleView}
	livePlan, err := liveOpt.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	stalePlan, err := staleOpt.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	liveRows, _ := livePlan.Estimates()
	staleRows, _ := stalePlan.Estimates()
	if liveRows <= staleRows {
		t.Fatalf("live estimate (%v) should exceed stale (%v) after drift", liveRows, staleRows)
	}
}

func TestEnumerateCandidatesDiversity(t *testing.T) {
	cat, _, _ := buildCat(t)
	q := bindSQL(t, cat, `SELECT COUNT(*) FROM users u, posts p WHERE u.id = p.owner AND p.score > 50`)
	cands, err := EnumerateCandidates(q, nil, []float64{0.1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 2 {
		t.Fatalf("candidates = %d", len(cands))
	}
	names := map[string]bool{}
	for _, c := range cands {
		names[c.Hint] = true
	}
	if !names["default"] {
		t.Fatal("default hint missing")
	}
}

func TestSingleTableQueryBinding(t *testing.T) {
	cat, users, _ := buildCat(t)
	_ = cat
	q := SingleTableQuery(users)
	stmt, _ := sqlparse.Parse("SELECT id FROM users WHERE rep > 10 AND id IN (1,2)")
	where := stmt.(*sqlparse.Select).Where
	bound, err := q.BindExprPublic(where)
	if err != nil {
		t.Fatal(err)
	}
	row := rel.Row{rel.Int(1), rel.Int(50)}
	if !bound.Eval(row).AsBool() {
		t.Fatal("bound predicate wrong")
	}
	row2 := rel.Row{rel.Int(3), rel.Int(50)}
	if bound.Eval(row2).AsBool() {
		t.Fatal("IN list not applied")
	}
}

func TestSelOfEstimates(t *testing.T) {
	cat, users, _ := buildCat(t)
	_ = cat
	ts := users.Stats
	colRep := &rel.ColRef{Idx: 1}
	gt := &rel.BinOp{Kind: rel.OpGt, L: colRep, R: &rel.Const{Val: rel.Int(2500)}}
	sel := selOf(ts, gt)
	if sel <= 0 || sel >= 1 {
		t.Fatalf("selectivity = %v", sel)
	}
	// NOT inverts.
	notSel := selOf(ts, &rel.Not{E: gt})
	if notSel <= 0 || notSel >= 1 || notSel+sel < 0.9 || notSel+sel > 1.1 {
		t.Fatalf("NOT selectivity inconsistent: %v + %v", sel, notSel)
	}
	// AND multiplies, OR adds.
	and := &rel.BinOp{Kind: rel.OpAnd, L: gt, R: gt}
	if selOf(ts, and) >= sel {
		t.Fatal("AND should shrink selectivity")
	}
	or := &rel.BinOp{Kind: rel.OpOr, L: gt, R: gt}
	if selOf(ts, or) < sel {
		t.Fatal("OR should not shrink selectivity")
	}
	// Reversed comparison (const op col).
	rev := &rel.BinOp{Kind: rel.OpLt, L: &rel.Const{Val: rel.Int(2500)}, R: colRep}
	if s := selOf(ts, rev); s <= 0 || s >= 1 {
		t.Fatalf("reversed selectivity = %v", s)
	}
}

func TestBindRejectsBadQueries(t *testing.T) {
	cat, _, _ := buildCat(t)
	bad := []string{
		"SELECT id FROM users u, posts p",                       // ambiguous id
		"SELECT q.id FROM users u",                              // unknown alias
		"SELECT u.id FROM users u WHERE u.rep > 1 ORDER BY xxx", // unknown order col
	}
	for _, sql := range bad {
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		if _, err := Bind(stmt.(*sqlparse.Select), cat); err == nil {
			t.Errorf("Bind(%q) should fail", sql)
		}
	}
}
