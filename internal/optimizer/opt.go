package optimizer

import (
	"fmt"
	"math"

	"neurdb/internal/catalog"
	"neurdb/internal/plan"
	"neurdb/internal/rel"
	"neurdb/internal/stats"
)

// Cost-model constants, following PostgreSQL's defaults in spirit.
const (
	seqPageCost  = 1.0
	randPageCost = 4.0
	cpuTupleCost = 0.01
	cpuOpCost    = 0.0025
	hashEntry    = 0.015
)

// HintSet constrains the plan search space; the Bao baseline's arms are
// hint sets (paper §5.3 / Bao SIGMOD'21).
type HintSet struct {
	Name        string
	NoHashJoin  bool
	NoIndexJoin bool
	NoNLJoin    bool
	NoIndexScan bool
}

// StandardHintSets returns the arm set used by the Bao baseline and by
// candidate generation for the learned optimizer.
func StandardHintSets() []HintSet {
	return []HintSet{
		{Name: "default"},
		{Name: "no-hashjoin", NoHashJoin: true},
		{Name: "no-indexjoin", NoIndexJoin: true},
		{Name: "no-nljoin", NoNLJoin: true},
		{Name: "no-indexscan", NoIndexScan: true, NoIndexJoin: true},
		{Name: "hash-only", NoIndexJoin: true, NoNLJoin: true},
	}
}

// StatsView resolves the statistics a planner sees for a table. Live
// planning uses Table.Stats; the "PostgreSQL under drift" baseline plugs in
// stale snapshots taken at its last ANALYZE.
type StatsView func(*catalog.Table) *stats.TableStats

// LiveStats is the default StatsView: current statistics.
func LiveStats(t *catalog.Table) *stats.TableStats { return t.Stats }

// Optimizer plans bound queries.
type Optimizer struct {
	Stats StatsView
	Hints HintSet
	// CardScale perturbs join selectivity estimates; the Lero baseline
	// generates candidates by sweeping it (e.g. 0.1, 1, 10).
	CardScale float64
}

// New creates an optimizer with live statistics and default hints.
func New() *Optimizer {
	return &Optimizer{Stats: LiveStats, CardScale: 1}
}

type subPlan struct {
	node   plan.Node
	layout []int // table indexes in output column order
	rows   float64
	cost   float64
}

// globalToPlan builds the column remap from global query coordinates to the
// subplan's output coordinates for a given layout.
func (q *Query) globalToPlan(layout []int) func(int) int {
	mapping := make(map[int]int)
	off := 0
	for _, ti := range layout {
		arity := q.Tables[ti].Schema.Arity()
		for c := 0; c < arity; c++ {
			mapping[q.Offsets[ti]+c] = off + c
		}
		off += arity
	}
	return func(i int) int {
		if j, ok := mapping[i]; ok {
			return j
		}
		return 0
	}
}

func layoutSchema(q *Query, layout []int) *rel.Schema {
	out := &rel.Schema{}
	for _, ti := range layout {
		for _, c := range q.Tables[ti].Schema.Cols {
			cc := c
			cc.Name = q.Aliases[ti] + "." + cc.Name
			out.Cols = append(out.Cols, cc)
		}
	}
	return out
}

// Plan produces the cheapest physical plan under the configured hints.
func (o *Optimizer) Plan(q *Query) (plan.Node, error) {
	if o.CardScale == 0 {
		o.CardScale = 1
	}
	if o.Stats == nil {
		o.Stats = LiveStats
	}
	n := len(q.Tables)
	// Base table access paths.
	base := make([]subPlan, n)
	for i := range q.Tables {
		base[i] = o.bestAccessPath(q, i)
	}
	best := base[0]
	if n > 1 {
		var err error
		best, err = o.joinDP(q, base)
		if err != nil {
			return nil, err
		}
	}
	return o.finish(q, best)
}

// bestAccessPath picks SeqScan or IndexScan for one base table.
func (o *Optimizer) bestAccessPath(q *Query, ti int) subPlan {
	t := q.Tables[ti]
	ts := o.Stats(t)
	rows := float64(ts.Rows())
	conjs := q.Local[ti]
	sel := 1.0
	for _, c := range conjs {
		sel *= selOf(ts, c)
	}
	outRows := math.Max(rows*sel, 0.5)
	pages := float64(t.Heap.NumPages())
	seqCost := pages*seqPageCost + rows*cpuTupleCost*(1+0.25*float64(len(conjs)))
	bestNode := plan.Node(&plan.SeqScan{
		Base:   plan.Base{Out: layoutSchema(q, []int{ti}), EstRows: outRows, EstCost: seqCost},
		Table:  t,
		Filter: rel.CombineConjuncts(conjs),
	})
	bestCost := seqCost

	if !o.Hints.NoIndexScan {
		for ci, conj := range conjs {
			col, eq, lo, hi, ok := indexableConjunct(conj)
			if !ok {
				continue
			}
			ix := t.IndexOn(col)
			if ix == nil || (!eq.set() && !ix.Ordered()) {
				continue
			}
			var matchSel float64
			switch {
			case eq.Val != nil:
				matchSel = ts.SelectivityEq(col, eq.Val.AsFloat())
			case eq.Arg != 0:
				// Parameterized probe: the value is unknown until
				// execution, so assume a uniform equality match over the
				// column's distinct values (a generic plan), with the same
				// no-statistics fallback SelectivityEq uses.
				if d := ts.Col(col).Distinct; d > 0 {
					matchSel = 1 / float64(d)
				} else {
					matchSel = 0.1
				}
			case lo.Arg != 0 || hi.Arg != 0:
				matchSel = 0.33 // generic range estimate
			default:
				loF, hiF := math.Inf(-1), math.Inf(1)
				if lo.Val != nil {
					loF = lo.Val.AsFloat()
				}
				if hi.Val != nil {
					hiF = hi.Val.AsFloat()
				}
				matchSel = ts.SelectivityRange(col, loF, hiF)
			}
			matched := math.Max(rows*matchSel, 0.5)
			cost := math.Log2(rows+2)*cpuOpCost + matched*(randPageCost*0.25+cpuTupleCost)
			if cost < bestCost {
				residual := make([]rel.Expr, 0, len(conjs))
				residual = append(residual, conjs[:ci]...)
				residual = append(residual, conjs[ci+1:]...)
				// Row estimate: matchSel already accounts for the probed
				// conjunct, so resSel covers only the others.
				resSel := 1.0
				for _, c := range residual {
					resSel *= selOf(ts, c)
				}
				if lo.Strict || hi.Strict {
					// Inclusive probe of a strict bound: re-check the
					// original conjunct so the boundary key is excluded
					// (a boundary-only filter; selectivity ~1, already
					// counted in matchSel).
					residual = append(residual, conj)
				}
				bestCost = cost
				bestNode = &plan.IndexScan{
					Base: plan.Base{
						Out:     layoutSchema(q, []int{ti}),
						EstRows: math.Max(matched*resSel, 0.5),
						EstCost: cost,
					},
					Table: t, Index: ix,
					Eq: eq.Val, Lo: lo.Val, Hi: hi.Val,
					EqArg: eq.Arg, LoArg: lo.Arg, HiArg: hi.Arg,
					Filter: rel.CombineConjuncts(residual),
				}
			}
		}
	}
	r, c := bestNode.Estimates()
	return subPlan{node: bestNode, layout: []int{ti}, rows: r, cost: c}
}

// indexBound is one probe bound of an indexable conjunct: either a literal
// value known at plan time or a query parameter resolved at execution time
// (Arg is the 1-based parameter ordinal; 0 means Val is set).
type indexBound struct {
	Val *rel.Value
	Arg int
	// Strict marks a '<'/'>' bound: the index probe itself is inclusive,
	// so the original conjunct must stay in the residual filter.
	Strict bool
}

// indexableConjunct recognizes "col op const" and "col op param" patterns
// usable by an index. Parameter bounds let prepared statements keep their
// index scans across executions (the PostgreSQL generic-plan shape); the
// concrete probe value is filled in by plan.BindParams.
func indexableConjunct(e rel.Expr) (col int, eq, lo, hi indexBound, ok bool) {
	b, isBin := e.(*rel.BinOp)
	if !isBin {
		return 0, eq, lo, hi, false
	}
	cr, crOK := b.L.(*rel.ColRef)
	rhs := b.R
	kind := b.Kind
	if !crOK {
		// try reversed: const/param op col
		cr2, r2ok := b.R.(*rel.ColRef)
		if !r2ok {
			return 0, eq, lo, hi, false
		}
		cr, rhs = cr2, b.L
		switch kind {
		case rel.OpLt:
			kind = rel.OpGt
		case rel.OpLe:
			kind = rel.OpGe
		case rel.OpGt:
			kind = rel.OpLt
		case rel.OpGe:
			kind = rel.OpLe
		}
	}
	var bound indexBound
	switch t := rhs.(type) {
	case *rel.Const:
		v := t.Val
		bound.Val = &v
	case *rel.Param:
		bound.Arg = t.Idx + 1
	default:
		return 0, eq, lo, hi, false
	}
	// Strict bounds ('<', '>') are probed inclusively by the B-tree range
	// scan, so the caller must keep the original conjunct as a filter.
	switch kind {
	case rel.OpEq:
		return cr.Idx, bound, lo, hi, true
	case rel.OpLt, rel.OpLe:
		bound.Strict = kind == rel.OpLt
		return cr.Idx, eq, lo, bound, true
	case rel.OpGt, rel.OpGe:
		bound.Strict = kind == rel.OpGt
		return cr.Idx, eq, bound, hi, true
	default:
		return 0, eq, lo, hi, false
	}
}

// set reports whether the bound is present (value or parameter).
func (b indexBound) set() bool { return b.Val != nil || b.Arg != 0 }

// selOf estimates the selectivity of a bound single-table conjunct.
func selOf(ts *stats.TableStats, e rel.Expr) float64 {
	switch t := e.(type) {
	case *rel.BinOp:
		switch t.Kind {
		case rel.OpAnd:
			return selOf(ts, t.L) * selOf(ts, t.R)
		case rel.OpOr:
			s := selOf(ts, t.L) + selOf(ts, t.R)
			if s > 1 {
				s = 1
			}
			return s
		}
		cr, crOK := t.L.(*rel.ColRef)
		cn, cnOK := t.R.(*rel.Const)
		if !crOK || !cnOK {
			cn2, c2ok := t.L.(*rel.Const)
			cr2, r2ok := t.R.(*rel.ColRef)
			if !c2ok || !r2ok {
				return 0.33
			}
			// reverse the comparison
			cr, cn = cr2, cn2
			switch t.Kind {
			case rel.OpLt:
				return ts.SelectivityRange(cr.Idx, cn.Val.AsFloat(), math.Inf(1))
			case rel.OpLe:
				return ts.SelectivityRange(cr.Idx, cn.Val.AsFloat(), math.Inf(1))
			case rel.OpGt:
				return ts.SelectivityRange(cr.Idx, math.Inf(-1), cn.Val.AsFloat())
			case rel.OpGe:
				return ts.SelectivityRange(cr.Idx, math.Inf(-1), cn.Val.AsFloat())
			case rel.OpEq:
				return ts.SelectivityEq(cr.Idx, cn.Val.AsFloat())
			case rel.OpNe:
				return 1 - ts.SelectivityEq(cr.Idx, cn.Val.AsFloat())
			}
			return 0.33
		}
		v := cn.Val.AsFloat()
		switch t.Kind {
		case rel.OpEq:
			return ts.SelectivityEq(cr.Idx, v)
		case rel.OpNe:
			return 1 - ts.SelectivityEq(cr.Idx, v)
		case rel.OpLt, rel.OpLe:
			return ts.SelectivityRange(cr.Idx, math.Inf(-1), v)
		case rel.OpGt, rel.OpGe:
			return ts.SelectivityRange(cr.Idx, v, math.Inf(1))
		}
		return 0.33
	case *rel.InList:
		if cr, ok := t.E.(*rel.ColRef); ok {
			s := 0.0
			for _, v := range t.List {
				s += ts.SelectivityEq(cr.Idx, v.AsFloat())
			}
			if s > 1 {
				s = 1
			}
			return s
		}
		return 0.2
	case *rel.IsNullExpr:
		c := ts.Col(0)
		frac := 0.05
		if c.Count > 0 {
			frac = float64(c.NullCount) / float64(c.Count)
		}
		if t.Negate {
			return 1 - frac
		}
		return frac
	case *rel.Not:
		return 1 - selOf(ts, t.E)
	default:
		return 0.33
	}
}

// joinDP performs left-deep dynamic-programming join enumeration.
func (o *Optimizer) joinDP(q *Query, base []subPlan) (subPlan, error) {
	n := len(q.Tables)
	full := (1 << n) - 1
	memo := make(map[int]subPlan, 1<<n)
	for i := 0; i < n; i++ {
		memo[1<<i] = base[i]
	}
	// Enumerate subsets by population count.
	for size := 2; size <= n; size++ {
		for s := 1; s <= full; s++ {
			if popcount(s) != size {
				continue
			}
			var best subPlan
			found := false
			for t := 0; t < n; t++ {
				bit := 1 << t
				if s&bit == 0 {
					continue
				}
				left, ok := memo[s^bit]
				if !ok {
					continue
				}
				preds := connectingPreds(q, left.layout, t)
				// Prefer connected joins; allow cross joins only if no
				// connected extension exists for this subset.
				if len(preds) == 0 && hasConnectedOption(q, s) {
					continue
				}
				cands := o.joinMethods(q, left, t, preds)
				for _, c := range cands {
					if !found || c.cost < best.cost {
						best = c
						found = true
					}
				}
			}
			if found {
				memo[s] = best
			}
		}
	}
	result, ok := memo[full]
	if !ok {
		return subPlan{}, fmt.Errorf("optimizer: join enumeration failed (disconnected graph without cross-join fallback)")
	}
	return result, nil
}

// hasConnectedOption reports whether some left-deep extension of subset s
// uses a join predicate.
func hasConnectedOption(q *Query, s int) bool {
	n := len(q.Tables)
	for t := 0; t < n; t++ {
		bit := 1 << t
		if s&bit == 0 {
			continue
		}
		rest := s ^ bit
		for _, jp := range q.Joins {
			if jp.LT == t && rest&(1<<jp.RT) != 0 {
				return true
			}
			if jp.RT == t && rest&(1<<jp.LT) != 0 {
				return true
			}
		}
	}
	return false
}

// connectingPreds finds join predicates between the tables in layout and
// table t, normalized so the left side refers to layout.
func connectingPreds(q *Query, layout []int, t int) []JoinPred {
	inLeft := map[int]bool{}
	for _, ti := range layout {
		inLeft[ti] = true
	}
	var out []JoinPred
	for _, jp := range q.Joins {
		if inLeft[jp.LT] && jp.RT == t {
			out = append(out, jp)
		} else if inLeft[jp.RT] && jp.LT == t {
			out = append(out, JoinPred{LT: jp.RT, LC: jp.RC, RT: jp.LT, RC: jp.LC})
		}
	}
	return out
}

// joinMethods generates hash, index and nested-loop joins of (left ⋈ t).
func (o *Optimizer) joinMethods(q *Query, left subPlan, t int, preds []JoinPred) []subPlan {
	right := o.bestAccessPath(q, t)
	newLayout := append(append([]int(nil), left.layout...), t)
	outSchema := layoutSchema(q, newLayout)
	remap := q.globalToPlan(newLayout)
	leftMap := q.globalToPlan(left.layout)

	// Join cardinality: product divided by max NDV over equi keys.
	tsR := o.Stats(q.Tables[t])
	outRows := left.rows * right.rows
	for _, jp := range preds {
		tsL := o.Stats(q.Tables[jp.LT])
		ndvL := float64(tsL.Col(jp.LC).Distinct)
		ndvR := float64(tsR.Col(jp.RC).Distinct)
		ndv := math.Max(math.Max(ndvL, ndvR), 1)
		outRows /= ndv
	}
	outRows = math.Max(outRows*o.CardScale, 0.5)

	// Build the full ON condition in output coordinates.
	var onConjs []rel.Expr
	for _, jp := range preds {
		l := &rel.ColRef{Idx: remap(q.Offsets[jp.LT] + jp.LC)}
		r := &rel.ColRef{Idx: remap(q.Offsets[jp.RT] + jp.RC)}
		onConjs = append(onConjs, &rel.BinOp{Kind: rel.OpEq, L: l, R: r})
	}
	on := rel.CombineConjuncts(onConjs)

	var out []subPlan

	// Hash join (first equi pred as hash key, rest residual).
	if !o.Hints.NoHashJoin && len(preds) > 0 {
		jp := preds[0]
		var residual rel.Expr
		if len(preds) > 1 {
			residual = rel.CombineConjuncts(onConjs[1:])
		}
		cost := left.cost + right.cost +
			right.rows*hashEntry + left.rows*cpuOpCost + outRows*cpuTupleCost
		out = append(out, subPlan{
			node: &plan.HashJoin{
				Base: plan.Base{Out: outSchema, EstRows: outRows, EstCost: cost},
				L:    left.node, R: right.node,
				LKey:     leftMap(q.Offsets[jp.LT] + jp.LC),
				RKey:     jp.RC,
				Residual: residual,
			},
			layout: newLayout, rows: outRows, cost: cost,
		})
	}

	// Index nested-loop join: probe an index on the inner join column.
	if !o.Hints.NoIndexJoin && len(preds) > 0 {
		for pi, jp := range preds {
			ix := q.Tables[t].IndexOn(jp.RC)
			if ix == nil {
				continue
			}
			var residual rel.Expr
			if len(preds) > 1 {
				rest := make([]rel.Expr, 0, len(onConjs)-1)
				rest = append(rest, onConjs[:pi]...)
				rest = append(rest, onConjs[pi+1:]...)
				residual = rel.CombineConjuncts(rest)
			}
			rowsT := float64(tsR.Rows())
			matchPerProbe := rowsT / math.Max(float64(tsR.Col(jp.RC).Distinct), 1)
			cost := left.cost +
				left.rows*(math.Log2(rowsT+2)*cpuOpCost+matchPerProbe*(randPageCost*0.1+cpuTupleCost)) +
				outRows*cpuTupleCost
			out = append(out, subPlan{
				node: &plan.IndexJoin{
					Base:  plan.Base{Out: outSchema, EstRows: outRows, EstCost: cost},
					L:     left.node,
					Table: q.Tables[t], Index: ix,
					LKey:     leftMap(q.Offsets[jp.LT] + jp.LC),
					Residual: residual,
					Filter:   rel.CombineConjuncts(q.Local[t]),
				},
				layout: newLayout, rows: outRows, cost: cost,
			})
			break
		}
	}

	// Nested-loop join (always available; required for cross joins).
	if !o.Hints.NoNLJoin || len(out) == 0 {
		cost := left.cost + right.cost +
			left.rows*math.Max(right.rows, 1)*cpuOpCost + outRows*cpuTupleCost
		out = append(out, subPlan{
			node: &plan.NLJoin{
				Base: plan.Base{Out: outSchema, EstRows: outRows, EstCost: cost},
				L:    left.node, R: right.node, On: on,
			},
			layout: newLayout, rows: outRows, cost: cost,
		})
	}
	return out
}

// finish applies residual filters, aggregation/projection, ordering, limit.
func (o *Optimizer) finish(q *Query, sp subPlan) (plan.Node, error) {
	node := sp.node
	remap := q.globalToPlan(sp.layout)
	rows := sp.rows
	cost := sp.cost

	if len(q.Residual) > 0 {
		pred := rel.MapCols(rel.CombineConjuncts(q.Residual), remap)
		rows = math.Max(rows*0.33, 0.5)
		cost += rows * cpuOpCost
		node = &plan.Filter{
			Base:  plan.Base{Out: node.Schema(), EstRows: rows, EstCost: cost},
			Child: node,
			Pred:  pred,
		}
	}

	if q.HasAgg {
		agg := &plan.Agg{
			Base:  plan.Base{EstCost: cost + rows*cpuOpCost},
			Child: node,
		}
		outSchema := &rel.Schema{}
		for _, g := range q.GroupBy {
			agg.GroupBy = append(agg.GroupBy, rel.MapCols(g, remap))
		}
		for _, item := range q.Items {
			if item.Agg != nil {
				spec := &plan.AggSpec{Kind: aggKindOf(item.Agg.Kind)}
				if item.Agg.Arg != nil {
					spec.Arg = rel.MapCols(item.Agg.Arg, remap)
				}
				agg.Items = append(agg.Items, plan.AggItem{Agg: spec})
				outSchema.Cols = append(outSchema.Cols, rel.Column{Name: item.Alias, Typ: rel.TypeFloat})
			} else {
				agg.Items = append(agg.Items, plan.AggItem{Key: rel.MapCols(item.E, remap)})
				outSchema.Cols = append(outSchema.Cols, rel.Column{Name: item.Alias})
			}
		}
		groups := math.Max(rows/10, 1)
		if len(agg.GroupBy) == 0 {
			groups = 1
		}
		agg.Out = outSchema
		agg.EstRows = groups
		node = agg
		rows = groups
	} else {
		// Plain projection.
		exprs := make([]rel.Expr, len(q.Items))
		outSchema := &rel.Schema{}
		for i, item := range q.Items {
			exprs[i] = rel.MapCols(item.E, remap)
			outSchema.Cols = append(outSchema.Cols, rel.Column{Name: item.Alias})
		}
		cost += rows * cpuOpCost
		node = &plan.Project{
			Base:  plan.Base{Out: outSchema, EstRows: rows, EstCost: cost},
			Child: node,
			Exprs: exprs,
		}
	}

	if len(q.OrderBy) > 0 {
		if q.HasAgg {
			return nil, fmt.Errorf("optimizer: ORDER BY with aggregates is not supported")
		}
		keys := make([]plan.SortKey, len(q.OrderBy))
		for i, ob := range q.OrderBy {
			keys[i] = plan.SortKey{E: rel.MapCols(ob.E, remap), Desc: ob.Desc}
		}
		// Sort keys reference pre-projection columns; sort below projection
		// would be more standard, but our Project only renames/reorders, so
		// sorting above with remapped keys is incorrect when the projection
		// drops sort columns. Sort therefore goes *below* the projection.
		proj := node.(*plan.Project)
		cost += rows * math.Log2(rows+2) * cpuOpCost
		sortNode := &plan.Sort{
			Base:  plan.Base{Out: proj.Child.Schema(), EstRows: rows, EstCost: cost},
			Child: proj.Child,
			Keys:  keys,
		}
		proj.Child = sortNode
		proj.EstCost = cost
		node = proj
	}

	if q.Limit >= 0 {
		node = &plan.Limit{
			Base:  plan.Base{Out: node.Schema(), EstRows: math.Min(rows, float64(q.Limit)), EstCost: cost},
			Child: node,
			N:     q.Limit,
		}
	}
	return node, nil
}

func aggKindOf(name string) plan.AggKind {
	switch name {
	case "COUNT":
		return plan.AggCount
	case "SUM":
		return plan.AggSum
	case "AVG":
		return plan.AggAvg
	case "MIN":
		return plan.AggMin
	default:
		return plan.AggMax
	}
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// Candidate is a plan produced under a named strategy.
type Candidate struct {
	Plan plan.Node
	Hint string
}

// EnumerateCandidates produces a diverse candidate plan set: one plan per
// hint set plus cardinality-perturbed variants — the filtering stage of the
// filter-and-refine principle the learned optimizer's analyzer then refines.
func EnumerateCandidates(q *Query, sv StatsView, cardScales []float64) ([]Candidate, error) {
	if sv == nil {
		sv = LiveStats
	}
	var out []Candidate
	seen := map[string]bool{}
	add := func(p plan.Node, hint string) {
		key := plan.Explain(p)
		if !seen[key] {
			seen[key] = true
			out = append(out, Candidate{Plan: p, Hint: hint})
		}
	}
	for _, h := range StandardHintSets() {
		o := &Optimizer{Stats: sv, Hints: h, CardScale: 1}
		p, err := o.Plan(q)
		if err != nil {
			return nil, err
		}
		add(p, h.Name)
	}
	for _, cs := range cardScales {
		if cs == 1 || cs <= 0 {
			continue
		}
		o := &Optimizer{Stats: sv, CardScale: cs}
		p, err := o.Plan(q)
		if err != nil {
			return nil, err
		}
		add(p, fmt.Sprintf("cardx%g", cs))
	}
	return out, nil
}
