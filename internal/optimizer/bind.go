// Package optimizer turns parsed SELECT statements into physical plans. It
// provides name binding, a histogram-driven cardinality model, a
// PostgreSQL-style cost model, dynamic-programming join enumeration, and
// hint-set candidate generation. The learned optimizers (internal/learnedopt)
// consume its candidate plans; the cost-based path with (possibly stale)
// statistics is the paper's "PostgreSQL" baseline in Figure 8.
package optimizer

import (
	"fmt"
	"strings"

	"neurdb/internal/catalog"
	"neurdb/internal/rel"
	"neurdb/internal/sqlparse"
)

// JoinPred is an equi-join predicate between two tables, in global column
// coordinates (table index + column within that table).
type JoinPred struct {
	LT, LC int // left table index, column index within that table
	RT, RC int
}

// OutputExpr is one SELECT item bound to the global column space.
type OutputExpr struct {
	E     rel.Expr
	Alias string
	Agg   *AggBind // non-nil when the item is an aggregate
}

// AggBind describes an aggregate item.
type AggBind struct {
	Kind string   // COUNT, SUM, AVG, MIN, MAX
	Arg  rel.Expr // nil for COUNT(*)
}

// Query is a bound SELECT: tables, predicates split into per-table local
// filters, equi-join predicates, and residual (cross-table or non-equi)
// predicates over the global schema (tables concatenated in FROM order).
type Query struct {
	Tables  []*catalog.Table
	Aliases []string
	Offsets []int // column offset of each table in the global schema
	Global  *rel.Schema

	Local    [][]rel.Expr // per-table filters, bound to that table's schema
	Joins    []JoinPred
	Residual []rel.Expr // bound to the global schema

	Items   []OutputExpr
	GroupBy []rel.Expr
	OrderBy []boundOrder
	Limit   int64
	HasAgg  bool
}

type boundOrder struct {
	E    rel.Expr
	Desc bool
}

// Bind resolves a parsed SELECT against the catalog.
func Bind(sel *sqlparse.Select, cat *catalog.Catalog) (*Query, error) {
	q := &Query{Limit: sel.Limit}
	refs := append([]sqlparse.TableRef(nil), sel.From...)
	var joinOns []sqlparse.Expr
	for _, j := range sel.Joins {
		refs = append(refs, j.Table)
		joinOns = append(joinOns, j.On)
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("optimizer: query has no tables")
	}
	if len(refs) > 12 {
		return nil, fmt.Errorf("optimizer: too many tables (%d > 12)", len(refs))
	}
	seen := map[string]bool{}
	offset := 0
	global := &rel.Schema{}
	for _, ref := range refs {
		t, err := cat.Get(ref.Name)
		if err != nil {
			return nil, err
		}
		alias := strings.ToLower(ref.RefName())
		if seen[alias] {
			return nil, fmt.Errorf("optimizer: duplicate table alias %q", alias)
		}
		seen[alias] = true
		q.Tables = append(q.Tables, t)
		q.Aliases = append(q.Aliases, alias)
		q.Offsets = append(q.Offsets, offset)
		for _, c := range t.Schema.Cols {
			cc := c
			cc.Name = alias + "." + strings.ToLower(c.Name)
			global.Cols = append(global.Cols, cc)
		}
		offset += t.Schema.Arity()
	}
	q.Global = global
	q.Local = make([][]rel.Expr, len(q.Tables))

	// Gather all predicates: WHERE plus JOIN ... ON conditions.
	var preds []sqlparse.Expr
	if sel.Where != nil {
		preds = append(preds, sel.Where)
	}
	preds = append(preds, joinOns...)
	for _, p := range preds {
		bound, err := q.bindExpr(p)
		if err != nil {
			return nil, err
		}
		for _, conj := range rel.SplitConjuncts(bound) {
			q.classify(conj)
		}
	}

	// Output items.
	for _, item := range sel.Items {
		if item.Star {
			for i, col := range global.Cols {
				q.Items = append(q.Items, OutputExpr{
					E:     &rel.ColRef{Idx: i, Name: col.Name},
					Alias: col.Name,
				})
			}
			continue
		}
		if fc, ok := item.E.(*sqlparse.FuncCall); ok && isAggName(fc.Name) {
			ab := &AggBind{Kind: fc.Name}
			if !fc.Star {
				if len(fc.Args) != 1 {
					return nil, fmt.Errorf("optimizer: %s expects one argument", fc.Name)
				}
				arg, err := q.bindExpr(fc.Args[0])
				if err != nil {
					return nil, err
				}
				ab.Arg = arg
			} else if fc.Name != "COUNT" {
				return nil, fmt.Errorf("optimizer: %s(*) is not valid", fc.Name)
			}
			alias := item.Alias
			if alias == "" {
				alias = strings.ToLower(fc.Name)
			}
			q.Items = append(q.Items, OutputExpr{Alias: alias, Agg: ab})
			q.HasAgg = true
			continue
		}
		bound, err := q.bindExpr(item.E)
		if err != nil {
			return nil, err
		}
		alias := item.Alias
		if alias == "" {
			alias = bound.String()
		}
		q.Items = append(q.Items, OutputExpr{E: bound, Alias: alias})
	}

	for _, g := range sel.GroupBy {
		bound, err := q.bindExpr(g)
		if err != nil {
			return nil, err
		}
		q.GroupBy = append(q.GroupBy, bound)
	}
	for _, o := range sel.OrderBy {
		bound, err := q.bindExpr(o.E)
		if err != nil {
			return nil, err
		}
		q.OrderBy = append(q.OrderBy, boundOrder{E: bound, Desc: o.Desc})
	}
	if q.HasAgg && len(q.GroupBy) == 0 {
		// Scalar aggregate: fine.
	}
	return q, nil
}

func isAggName(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// resolveColumn maps a possibly-qualified name to a global column index.
func (q *Query) resolveColumn(c *sqlparse.ColName) (int, error) {
	name := strings.ToLower(c.Name)
	if c.Table != "" {
		tbl := strings.ToLower(c.Table)
		for i, alias := range q.Aliases {
			if alias == tbl {
				ci := q.Tables[i].Schema.ColIndex(name)
				if ci < 0 {
					return 0, fmt.Errorf("optimizer: column %q not in table %q", name, tbl)
				}
				return q.Offsets[i] + ci, nil
			}
		}
		return 0, fmt.Errorf("optimizer: unknown table alias %q", tbl)
	}
	found := -1
	for i, t := range q.Tables {
		if ci := t.Schema.ColIndex(name); ci >= 0 {
			if found >= 0 {
				return 0, fmt.Errorf("optimizer: ambiguous column %q", name)
			}
			found = q.Offsets[i] + ci
		}
	}
	if found < 0 {
		return 0, fmt.Errorf("optimizer: unknown column %q", name)
	}
	return found, nil
}

// bindExpr converts a parsed expression into a bound one over the global
// schema.
func (q *Query) bindExpr(e sqlparse.Expr) (rel.Expr, error) {
	switch t := e.(type) {
	case *sqlparse.ColName:
		idx, err := q.resolveColumn(t)
		if err != nil {
			return nil, err
		}
		return &rel.ColRef{Idx: idx, Name: q.Global.Cols[idx].Name}, nil
	case *sqlparse.Lit:
		return &rel.Const{Val: t.Val}, nil
	case *sqlparse.Param:
		return &rel.Param{Idx: t.Idx}, nil
	case *sqlparse.Binary:
		l, err := q.bindExpr(t.L)
		if err != nil {
			return nil, err
		}
		r, err := q.bindExpr(t.R)
		if err != nil {
			return nil, err
		}
		kind, err := binOpKind(t.Op)
		if err != nil {
			return nil, err
		}
		return &rel.BinOp{Kind: kind, L: l, R: r}, nil
	case *sqlparse.Unary:
		inner, err := q.bindExpr(t.E)
		if err != nil {
			return nil, err
		}
		if t.Op == "NOT" {
			return &rel.Not{E: inner}, nil
		}
		return &rel.BinOp{Kind: rel.OpSub, L: &rel.Const{Val: rel.Int(0)}, R: inner}, nil
	case *sqlparse.IsNull:
		inner, err := q.bindExpr(t.E)
		if err != nil {
			return nil, err
		}
		return &rel.IsNullExpr{E: inner, Negate: t.Negate}, nil
	case *sqlparse.InList:
		inner, err := q.bindExpr(t.E)
		if err != nil {
			return nil, err
		}
		return &rel.InList{E: inner, List: t.Vals}, nil
	case *sqlparse.FuncCall:
		return nil, fmt.Errorf("optimizer: function %s not allowed here", t.Name)
	default:
		return nil, fmt.Errorf("optimizer: unsupported expression %T", e)
	}
}

func binOpKind(op string) (rel.BinOpKind, error) {
	switch op {
	case "=":
		return rel.OpEq, nil
	case "<>":
		return rel.OpNe, nil
	case "<":
		return rel.OpLt, nil
	case "<=":
		return rel.OpLe, nil
	case ">":
		return rel.OpGt, nil
	case ">=":
		return rel.OpGe, nil
	case "+":
		return rel.OpAdd, nil
	case "-":
		return rel.OpSub, nil
	case "*":
		return rel.OpMul, nil
	case "/":
		return rel.OpDiv, nil
	case "%":
		return rel.OpMod, nil
	case "AND":
		return rel.OpAnd, nil
	case "OR":
		return rel.OpOr, nil
	default:
		return 0, fmt.Errorf("optimizer: unknown operator %q", op)
	}
}

// tableOfGlobal returns which table a global column index belongs to, and
// the column index within that table.
func (q *Query) tableOfGlobal(idx int) (int, int) {
	for i := len(q.Offsets) - 1; i >= 0; i-- {
		if idx >= q.Offsets[i] {
			return i, idx - q.Offsets[i]
		}
	}
	return 0, idx
}

// classify routes one conjunct into local / join / residual buckets.
func (q *Query) classify(e rel.Expr) {
	refs := map[int]bool{}
	rel.ReferencedCols(e, refs)
	tables := map[int]bool{}
	for idx := range refs {
		ti, _ := q.tableOfGlobal(idx)
		tables[ti] = true
	}
	switch len(tables) {
	case 0:
		q.Residual = append(q.Residual, e)
	case 1:
		var ti int
		for t := range tables {
			ti = t
		}
		// Rebase to the table's local schema.
		local := rel.MapCols(e, func(i int) int { return i - q.Offsets[ti] })
		q.Local[ti] = append(q.Local[ti], local)
	case 2:
		// Equi-join between two plain columns?
		if b, ok := e.(*rel.BinOp); ok && b.Kind == rel.OpEq {
			lc, lok := b.L.(*rel.ColRef)
			rc, rok := b.R.(*rel.ColRef)
			if lok && rok {
				lt, lci := q.tableOfGlobal(lc.Idx)
				rt, rci := q.tableOfGlobal(rc.Idx)
				if lt != rt {
					q.Joins = append(q.Joins, JoinPred{LT: lt, LC: lci, RT: rt, RC: rci})
					return
				}
			}
		}
		q.Residual = append(q.Residual, e)
	default:
		q.Residual = append(q.Residual, e)
	}
}

// SingleTableQuery builds a binding context over one table, used to bind
// UPDATE/DELETE predicates and PREDICT clauses.
func SingleTableQuery(t *catalog.Table) *Query {
	global := &rel.Schema{}
	for _, c := range t.Schema.Cols {
		cc := c
		cc.Name = strings.ToLower(c.Name)
		global.Cols = append(global.Cols, cc)
	}
	return &Query{
		Tables:  []*catalog.Table{t},
		Aliases: []string{strings.ToLower(t.Name)},
		Offsets: []int{0},
		Global:  global,
		Local:   make([][]rel.Expr, 1),
		Limit:   -1,
	}
}

// BindExprPublic binds a parsed expression against this query's schema
// (exported for the facade's single-table statements).
func (q *Query) BindExprPublic(e sqlparse.Expr) (rel.Expr, error) {
	return q.bindExpr(e)
}
