package storage

import (
	"sync/atomic"

	"neurdb/internal/rel"
)

// Version is one MVCC version of a row. Visibility fields follow the
// classic design: XMin/XMax are creating/deleting transaction ids, and
// BeginTS/EndTS are the corresponding commit timestamps once known. XMin and
// Data are immutable after publication; the mutable fields use atomics so
// readers never block writers.
type Version struct {
	Data rel.Row
	XMin uint64 // creating txn id (immutable)

	xmax    atomic.Uint64 // deleting txn id (0 = none)
	beginTS atomic.Uint64 // commit ts of creator (0 = uncommitted)
	endTS   atomic.Uint64 // commit ts of deleter (InfinityTS = live)
	next    atomic.Pointer[Version]
}

// NewVersion creates a live, uncommitted version.
func NewVersion(data rel.Row, xmin uint64, next *Version) *Version {
	v := &Version{Data: data, XMin: xmin}
	v.endTS.Store(InfinityTS)
	if next != nil {
		v.next.Store(next)
	}
	return v
}

// XMax returns the deleting txn id (0 if none).
func (v *Version) XMax() uint64 { return v.xmax.Load() }

// SetXMax claims or clears the deleter slot.
func (v *Version) SetXMax(x uint64) { v.xmax.Store(x) }

// BeginTS returns the creator's commit timestamp (0 = uncommitted).
func (v *Version) BeginTS() uint64 { return v.beginTS.Load() }

// SetBeginTS stamps the creator's commit timestamp.
func (v *Version) SetBeginTS(ts uint64) { v.beginTS.Store(ts) }

// EndTS returns the deleter's commit timestamp (InfinityTS = live).
func (v *Version) EndTS() uint64 { return v.endTS.Load() }

// SetEndTS stamps the deleter's commit timestamp.
func (v *Version) SetEndTS(ts uint64) { v.endTS.Store(ts) }

// Next returns the older version in the chain, or nil.
func (v *Version) Next() *Version { return v.next.Load() }

// SetNext relinks the chain (used by vacuum).
func (v *Version) SetNext(n *Version) { v.next.Store(n) }
