package storage

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"neurdb/internal/rel"
)

// TestShardedPoolFeatureParity locks in the acceptance criterion of the
// sharding refactor: for a deterministic single-threaded access trace, the
// buffer-info features the learned optimizer consumes (hit ratio, hit/miss
// counts, per-table residency, resident length) are identical to the
// pre-refactor single-mutex pool, preserved verbatim as legacyBufferPool.
//
// Two configurations are checked: a 1-shard pool must match the legacy
// pool on an eviction-heavy trace (identical exact-LRU semantics, only the
// data structures changed), and the default 16-shard pool must match on a
// trace whose working set is pool-resident (the only regime where a
// partitioned LRU is observationally equivalent to a global one).
func TestShardedPoolFeatureParity(t *testing.T) {
	check := func(name string, got *BufferPool, want *legacyBufferPool, tables int, trace func(i int) (int, uint32)) {
		t.Helper()
		n := 20000
		for i := 0; i < n; i++ {
			table, page := trace(i)
			if g, w := got.Touch(table, page, i%8 == 0), want.Touch(table, page, i%8 == 0); g != w {
				t.Fatalf("%s: access %d (table=%d page=%d): hit=%v, legacy hit=%v", name, i, table, page, g, w)
			}
		}
		gh, gm := got.Stats()
		wh, wm := want.Stats()
		if gh != wh || gm != wm {
			t.Fatalf("%s: stats diverged: %d/%d vs legacy %d/%d", name, gh, gm, wh, wm)
		}
		if got.HitRatio() != want.HitRatio() {
			t.Fatalf("%s: hit ratio diverged: %v vs %v", name, got.HitRatio(), want.HitRatio())
		}
		for table := 0; table < tables; table++ {
			if got.ResidentPages(table) != want.ResidentPages(table) {
				t.Fatalf("%s: table %d residency diverged: %d vs %d",
					name, table, got.ResidentPages(table), want.ResidentPages(table))
			}
		}
		if got.Len() != want.Len() {
			t.Fatalf("%s: len diverged: %d vs %d", name, got.Len(), want.Len())
		}
	}

	// 1 shard, eviction churn: 4 tables x 300 pages over 512 capacity.
	r := rand.New(rand.NewSource(7))
	check("1shard-churn", NewShardedBufferPool(512, 1), newLegacyBufferPool(512), 4,
		func(int) (int, uint32) { return r.Intn(4), uint32(r.Intn(300)) })

	// 16 shards, resident working set: 4 tables x 50 pages in 1024 capacity.
	r2 := rand.New(rand.NewSource(11))
	check("16shard-resident", NewShardedBufferPool(1024, 16), newLegacyBufferPool(1024), 4,
		func(int) (int, uint32) { return r2.Intn(4), uint32(r2.Intn(50)) })
}

// TestPerTableResidencyNoLeak is the regression test for the eviction leak:
// the old pool left zero-count perTable entries behind forever (and could
// drive them negative). Dense table ids now use a counts slice (zero means
// absent, nothing to leak); ids beyond maxDenseTableID take the map
// fallback, which must delete keys at zero.
func TestPerTableResidencyNoLeak(t *testing.T) {
	p := NewShardedBufferPool(4, 1)
	const big = maxDenseTableID + 1000
	for i := 0; i < 100; i++ {
		p.Touch(big+i, 0, false) // each table: one page, map fallback path
	}
	s := p.shards[0]
	s.mu.Lock()
	for table, n := range s.perTable {
		if n <= 0 {
			t.Fatalf("perTable[%d] = %d leaked after eviction", table, n)
		}
	}
	entries := len(s.perTable)
	s.mu.Unlock()
	if entries > p.Capacity() {
		t.Fatalf("%d perTable entries for capacity %d: zero-count keys leaked", entries, p.Capacity())
	}
	// Evicted tables report zero residency; the last ones stay resident.
	if p.ResidentPages(big) != 0 {
		t.Fatalf("evicted table still counted: %d", p.ResidentPages(big))
	}
	if p.ResidentPages(big+99) != 1 {
		t.Fatalf("resident table lost: %d", p.ResidentPages(big+99))
	}
	// Dense-id churn keeps counts consistent too: no table may go negative.
	for i := 0; i < 100; i++ {
		p.Touch(i%10, uint32(i), false)
	}
	for table := 0; table < 10; table++ {
		if p.ResidentPages(table) < 0 {
			t.Fatalf("table %d residency negative", table)
		}
	}
}

// TestShardedPoolEviction exercises overflow across shards: residency never
// exceeds capacity and per-table counts stay consistent with Len.
func TestShardedPoolEviction(t *testing.T) {
	p := NewShardedBufferPool(128, 8)
	for i := 0; i < 10000; i++ {
		p.Touch(i%5, uint32(i), false)
	}
	if p.Len() > p.Capacity() {
		t.Fatalf("len %d exceeds capacity %d", p.Len(), p.Capacity())
	}
	sum := 0
	for table := 0; table < 5; table++ {
		sum += p.ResidentPages(table)
	}
	if sum != p.Len() {
		t.Fatalf("per-table sum %d != len %d", sum, p.Len())
	}
	p.Reset()
	if p.Len() != 0 || p.HitRatio() != 1 {
		t.Fatal("reset failed")
	}
}

// TestNewBufferPoolShardScaling pins the auto-sharding policy: tiny pools
// stay single-shard (exact global LRU), large pools fan out to the ceiling.
func TestNewBufferPoolShardScaling(t *testing.T) {
	cases := []struct{ capacity, shards int }{
		{1, 1}, {2, 1}, {63, 1}, {64, 2}, {256, 8}, {4096, 16}, {1 << 20, 16},
	}
	for _, c := range cases {
		if got := NewBufferPool(c.capacity).Shards(); got != c.shards {
			t.Errorf("capacity %d: shards = %d, want %d", c.capacity, got, c.shards)
		}
	}
}

func TestScanBatchVisitsAllRows(t *testing.T) {
	pool := NewBufferPool(64)
	h := NewHeap(1, pool)
	for i := 0; i < 300; i++ {
		h.Insert(rel.Row{rel.Int(int64(i))}, 1)
	}
	seen := map[int64]bool{}
	pages := 0
	h.ScanBatch(func(pageID uint32, heads []*Version) bool {
		if pageID != uint32(pages) {
			t.Fatalf("page order: got %d want %d", pageID, pages)
		}
		pages++
		for _, head := range heads {
			if head != nil {
				seen[head.Data[0].I] = true
			}
		}
		return true
	})
	if len(seen) != 300 || pages != 3 {
		t.Fatalf("scan batch saw %d rows over %d pages", len(seen), pages)
	}
	// Early stop.
	pages = 0
	h.ScanBatch(func(uint32, []*Version) bool { pages++; return false })
	if pages != 1 {
		t.Fatalf("early stop visited %d pages", pages)
	}
	// Page touches were per page, not per row: 3 inserts pages + 4 scan
	// touches (3 full scan + 1 early stop) on 3 distinct pages.
	hits, misses := pool.Stats()
	if misses != 3 {
		t.Fatalf("misses = %d, want 3 (one per page)", misses)
	}
	if hits != 300-3+4 {
		t.Fatalf("hits = %d", hits)
	}
}

func TestBatchCursorSlotIdentity(t *testing.T) {
	h := NewHeap(1, nil)
	var ids []RowID
	for i := 0; i < 200; i++ {
		ids = append(ids, h.Insert(rel.Row{rel.Int(int64(i))}, 1))
	}
	c := h.NewBatchCursor()
	i := 0
	for {
		pageID, heads, ok := c.NextPage()
		if !ok {
			break
		}
		for slot, head := range heads {
			if head == nil {
				continue
			}
			got := RowID{Page: pageID, Slot: uint32(slot)}
			if got != ids[i] {
				t.Fatalf("row %d: id %v want %v", i, got, ids[i])
			}
			i++
		}
	}
	if i != 200 {
		t.Fatalf("visited %d rows", i)
	}
}

// TestHeapConcurrentBatchScanStress runs parallel Insert / Head / ScanBatch
// / Vacuum against one heap attached to a sharded pool. Run under -race it
// verifies that page snapshots taken by scans cannot race with Vacuum's
// slot writes, and that the sharded pool tolerates concurrent touches.
func TestHeapConcurrentBatchScanStress(t *testing.T) {
	pool := NewShardedBufferPool(256, 16)
	h := NewHeap(1, pool)
	const writers = 4
	var wg, writerWG sync.WaitGroup
	var stop atomic.Bool

	for g := 0; g < writers; g++ {
		writerWG.Add(1)
		go func(g int) {
			defer writerWG.Done()
			for i := 0; i < 500; i++ {
				id := h.Insert(rel.Row{rel.Int(int64(g*1000 + i))}, uint64(g+1))
				v := h.Head(id)
				v.SetBeginTS(1)
				if i%3 == 0 {
					// Committed delete: eligible for vacuum.
					v.SetEndTS(2)
					h.NoteDelete()
				}
			}
		}(g)
	}
	// Batch scanners.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				rows := 0
				h.ScanBatch(func(_ uint32, heads []*Version) bool {
					for _, head := range heads {
						if head != nil && head.EndTS() == InfinityTS {
							rows++
						}
					}
					return true
				})
			}
		}()
	}
	// Point readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(3))
		for !stop.Load() {
			id := RowID{Page: uint32(r.Intn(16)), Slot: uint32(r.Intn(RowsPerPage))}
			if v := h.Head(id); v != nil {
				_ = v.Data[0].I
			}
		}
	}()
	// Vacuum loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			h.Vacuum(5)
		}
	}()

	// Writers finish first, then stop the scanners/readers/vacuum.
	writerWG.Wait()
	stop.Store(true)
	wg.Wait()

	// Each writer inserts 500 rows and deletes the 167 with i%3==0.
	want := int64(writers * (500 - 167))
	if got := h.LiveRows(); got != want {
		t.Fatalf("live rows = %d, want %d", got, want)
	}
	if pool.Len() > pool.Capacity() {
		t.Fatalf("pool overflowed: %d > %d", pool.Len(), pool.Capacity())
	}
}
