package storage

import (
	"container/list"
	"sync"
)

// pageKey identifies a page across tables.
type pageKey struct {
	table int
	page  uint32
}

// BufferPool is an LRU page cache accountant. All data actually lives in
// process memory; the pool tracks which pages would be resident in a real
// bounded buffer, producing the hit-ratio and per-table residency signals
// that the learned query optimizer consumes as "buffer information"
// (paper Fig. 5) and that the monitor watches for thrashing.
type BufferPool struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recent; values are pageKey
	index    map[pageKey]*list.Element

	hits, misses uint64
	perTable     map[int]int // resident pages per table
}

// NewBufferPool creates a pool that holds at most capacity pages.
func NewBufferPool(capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		capacity: capacity,
		lru:      list.New(),
		index:    make(map[pageKey]*list.Element),
		perTable: make(map[int]int),
	}
}

// Touch records an access to (table, page), returning true on a buffer hit.
// Misses admit the page, evicting the LRU page if at capacity.
func (b *BufferPool) Touch(table int, page uint32, write bool) bool {
	key := pageKey{table, page}
	b.mu.Lock()
	defer b.mu.Unlock()
	if el, ok := b.index[key]; ok {
		b.lru.MoveToFront(el)
		b.hits++
		return true
	}
	b.misses++
	if b.lru.Len() >= b.capacity {
		back := b.lru.Back()
		if back != nil {
			victim := back.Value.(pageKey)
			b.lru.Remove(back)
			delete(b.index, victim)
			b.perTable[victim.table]--
		}
	}
	b.index[key] = b.lru.PushFront(key)
	b.perTable[table]++
	return false
}

// HitRatio returns hits/(hits+misses), or 1 when no accesses happened.
func (b *BufferPool) HitRatio() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	total := b.hits + b.misses
	if total == 0 {
		return 1
	}
	return float64(b.hits) / float64(total)
}

// Stats returns cumulative hit and miss counts.
func (b *BufferPool) Stats() (hits, misses uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.hits, b.misses
}

// ResidentPages returns how many pages of the table are currently cached.
func (b *BufferPool) ResidentPages(table int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.perTable[table]
}

// ResidentFraction returns the cached fraction of a table given its total
// page count (1 if the table has no pages).
func (b *BufferPool) ResidentFraction(table, totalPages int) float64 {
	if totalPages <= 0 {
		return 1
	}
	f := float64(b.ResidentPages(table)) / float64(totalPages)
	if f > 1 {
		f = 1
	}
	return f
}

// Capacity returns the configured page capacity.
func (b *BufferPool) Capacity() int { return b.capacity }

// Len returns the number of currently resident pages.
func (b *BufferPool) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lru.Len()
}

// Reset clears residency and counters (used between benchmark phases).
func (b *BufferPool) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lru.Init()
	b.index = make(map[pageKey]*list.Element)
	b.perTable = make(map[int]int)
	b.hits, b.misses = 0, 0
}
