package storage

import (
	"sync"
	"sync/atomic"
)

// pageKey identifies a page across tables.
type pageKey struct {
	table int
	page  uint32
}

// hash mixes table and page ids (splitmix64 finalizer). Shard selection
// uses the high bits and bucket selection the low bits, so the two are
// decorrelated; a multiplicative mix keeps sequential scans from piling
// consecutive pages onto one shard.
func (k pageKey) hash() uint64 {
	h := uint64(k.table)<<32 ^ uint64(k.page)
	h *= 0x9E3779B97F4A7C15
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return h
}

// DefaultPoolShards is the shard-count ceiling for NewBufferPool.
const DefaultPoolShards = 16

// minPagesPerShard keeps tiny pools unsharded: below this many pages per
// shard, splitting the LRU changes eviction behaviour noticeably and buys no
// concurrency worth having.
const minPagesPerShard = 32

// entry is one resident page in a shard: a slot in the preallocated entry
// arena, chained into its hash bucket and doubly linked in LRU order.
// Intrusive int32 links instead of container/list mean the hot path touches
// no allocator and no pointer-heavy nodes.
type entry struct {
	key        pageKey
	hnext      int32 // next entry in the hash-bucket chain (-1 = end)
	prev, next int32 // LRU neighbours (-1 = end); prev side is MRU
	dirty      bool  // written since admission; cleared by eviction (write-back)
}

// poolShard is one independently locked exact-LRU region of the pool.
// Hit/miss counters are atomics so stats reads never take the shard lock.
type poolShard struct {
	mu       sync.Mutex
	capacity int
	entries  []entry // arena, len = capacity; index is the entry id
	buckets  []int32 // hash table: bucket -> first entry id (-1 = empty)
	bmask    uint32
	used     int   // arena slots in use; admission fills 0..capacity-1, then evicts
	head     int32 // MRU entry (-1 = empty)
	tail     int32 // LRU entry (-1 = empty)

	// Per-table residency, merged on read. Catalog table ids are small
	// sequential ints, so counts live in a dense slice grown on demand —
	// a residency update is one indexed add, not a map operation on the
	// admit/evict path. perTable is the fallback for out-of-range ids and
	// deletes keys at zero so dead tables never accumulate.
	counts   []int32
	perTable map[int]int

	// Dirty-page accounting mirrors residency: a write Touch marks the
	// entry dirty (once), eviction models write-back and clears it. The
	// dense/map split matches counts/perTable.
	dirtyTotal  int
	dirtyCounts []int32
	dirtyPer    map[int]int

	hits, misses atomic.Uint64
}

// maxDenseTableID bounds the dense residency slice (4 KiB per shard worst
// case); ids beyond it fall back to the map.
const maxDenseTableID = 1 << 10

// tableAdd adjusts the residency count of a table by ±1.
func (s *poolShard) tableAdd(table, delta int) {
	if table >= 0 && table < len(s.counts) {
		s.counts[table] += int32(delta)
		return
	}
	if table >= 0 && table < maxDenseTableID {
		s.counts = append(s.counts, make([]int32, table+1-len(s.counts))...)
		s.counts[table] += int32(delta)
		return
	}
	if n := s.perTable[table] + delta; n <= 0 {
		delete(s.perTable, table)
	} else {
		s.perTable[table] = n
	}
}

// residentPages returns the shard's resident page count for a table.
func (s *poolShard) residentPages(table int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if table >= 0 && table < len(s.counts) {
		return int(s.counts[table])
	}
	return s.perTable[table]
}

// dirtyAdd adjusts the dirty-page count of a table by ±1. Caller holds mu.
func (s *poolShard) dirtyAdd(table, delta int) {
	s.dirtyTotal += delta
	if table >= 0 && table < len(s.dirtyCounts) {
		s.dirtyCounts[table] += int32(delta)
		return
	}
	if table >= 0 && table < maxDenseTableID {
		s.dirtyCounts = append(s.dirtyCounts, make([]int32, table+1-len(s.dirtyCounts))...)
		s.dirtyCounts[table] += int32(delta)
		return
	}
	if n := s.dirtyPer[table] + delta; n <= 0 {
		delete(s.dirtyPer, table)
	} else {
		s.dirtyPer[table] = n
	}
}

// dirtyPages returns the shard's dirty page count, for one table (>= 0) or
// in total (table < 0).
func (s *poolShard) dirtyPages(table int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if table < 0 {
		return s.dirtyTotal
	}
	if table < len(s.dirtyCounts) {
		return int(s.dirtyCounts[table])
	}
	return s.dirtyPer[table]
}

func newPoolShard(capacity int) *poolShard {
	nbuckets := 8
	for nbuckets < 2*capacity {
		nbuckets *= 2
	}
	s := &poolShard{
		capacity: capacity,
		entries:  make([]entry, capacity),
		buckets:  make([]int32, nbuckets),
		bmask:    uint32(nbuckets - 1),
	}
	s.resetLocked()
	return s
}

func (s *poolShard) resetLocked() {
	for i := range s.buckets {
		s.buckets[i] = -1
	}
	s.used = 0
	s.head, s.tail = -1, -1
	s.counts = s.counts[:0]
	s.perTable = make(map[int]int)
	s.dirtyTotal = 0
	s.dirtyCounts = s.dirtyCounts[:0]
	s.dirtyPer = make(map[int]int)
}

// touch records an access within this shard: exact LRU with admission on
// miss, identical semantics to the original single-mutex pool. A write
// access marks the resident entry dirty; evicting a dirty page models the
// write-back and clears the accounting.
func (s *poolShard) touch(key pageKey, h uint64, write bool) bool {
	s.mu.Lock()
	b := uint32(h) & s.bmask
	for i := s.buckets[b]; i >= 0; i = s.entries[i].hnext {
		if s.entries[i].key == key {
			s.moveToFront(i)
			if write && !s.entries[i].dirty {
				s.entries[i].dirty = true
				s.dirtyAdd(key.table, 1)
			}
			s.mu.Unlock()
			s.hits.Add(1)
			return true
		}
	}
	// Miss: admit, evicting this shard's LRU entry if the arena is full.
	var idx int32
	if s.used < s.capacity {
		idx = int32(s.used)
		s.used++
	} else {
		idx = s.tail
		victim := s.entries[idx]
		s.unlink(idx)
		s.bucketRemove(victim.key, idx)
		s.tableAdd(victim.key.table, -1)
		if victim.dirty {
			s.dirtyAdd(victim.key.table, -1)
		}
	}
	e := &s.entries[idx]
	e.key = key
	e.hnext = s.buckets[b]
	s.buckets[b] = idx
	e.prev = -1
	e.next = s.head
	e.dirty = write
	if s.head >= 0 {
		s.entries[s.head].prev = idx
	}
	s.head = idx
	if s.tail < 0 {
		s.tail = idx
	}
	s.tableAdd(key.table, 1)
	if write {
		s.dirtyAdd(key.table, 1)
	}
	s.mu.Unlock()
	s.misses.Add(1)
	return false
}

// moveToFront makes entry i the MRU. Caller holds mu.
func (s *poolShard) moveToFront(i int32) {
	if s.head == i {
		return
	}
	s.unlink(i)
	e := &s.entries[i]
	e.prev = -1
	e.next = s.head
	if s.head >= 0 {
		s.entries[s.head].prev = i
	}
	s.head = i
	if s.tail < 0 {
		s.tail = i
	}
}

// unlink removes entry i from the LRU list. Caller holds mu.
func (s *poolShard) unlink(i int32) {
	e := &s.entries[i]
	if e.prev >= 0 {
		s.entries[e.prev].next = e.next
	} else {
		s.head = e.next
	}
	if e.next >= 0 {
		s.entries[e.next].prev = e.prev
	} else {
		s.tail = e.prev
	}
}

// bucketRemove detaches entry idx from key's hash chain. Caller holds mu.
func (s *poolShard) bucketRemove(key pageKey, idx int32) {
	b := uint32(key.hash()) & s.bmask
	if s.buckets[b] == idx {
		s.buckets[b] = s.entries[idx].hnext
		return
	}
	for i := s.buckets[b]; i >= 0; i = s.entries[i].hnext {
		if s.entries[i].hnext == idx {
			s.entries[i].hnext = s.entries[idx].hnext
			return
		}
	}
}

func (s *poolShard) reset() {
	s.mu.Lock()
	s.resetLocked()
	s.mu.Unlock()
	s.hits.Store(0)
	s.misses.Store(0)
}

// BufferPool is an LRU page cache accountant. All data actually lives in
// process memory; the pool tracks which pages would be resident in a real
// bounded buffer, producing the hit-ratio and per-table residency signals
// that the learned query optimizer consumes as "buffer information"
// (paper Fig. 5) and that the monitor watches for thrashing.
//
// The pool is sharded by pageKey hash: each shard owns an independent mutex,
// an exact-LRU arena, and a slice of the capacity, so concurrent scans do
// not serialize on one lock and the per-access cost stays allocation-free.
// Aggregate reads (Stats, HitRatio, ResidentPages, Len) merge across
// shards. A 1-shard pool preserves exact global-LRU behaviour.
type BufferPool struct {
	capacity int
	shards   []*poolShard
	mask     uint64 // len(shards)-1; shard count is a power of two
}

// NewBufferPool creates a pool that holds at most capacity pages, sharded
// up to DefaultPoolShards ways (fewer for small capacities, so tiny pools
// keep exact global-LRU behaviour).
func NewBufferPool(capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	shards := 1
	for shards*2 <= DefaultPoolShards && capacity/(shards*2) >= minPagesPerShard {
		shards *= 2
	}
	return NewShardedBufferPool(capacity, shards)
}

// NewShardedBufferPool creates a pool with an explicit shard count (rounded
// down to a power of two, clamped to [1, capacity]). A 1-shard pool behaves
// exactly like the pre-sharding single-mutex implementation; tests use it
// as the reference.
func NewShardedBufferPool(capacity, shards int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	if shards < 1 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	pow := 1
	for pow*2 <= shards {
		pow *= 2
	}
	shards = pow
	b := &BufferPool{capacity: capacity, mask: uint64(shards - 1)}
	base, rem := capacity/shards, capacity%shards
	for i := 0; i < shards; i++ {
		c := base
		if i < rem {
			c++
		}
		b.shards = append(b.shards, newPoolShard(c))
	}
	return b
}

// Touch records an access to (table, page), returning true on a buffer hit.
// Misses admit the page, evicting that shard's LRU page if at capacity.
// Write accesses additionally mark the page dirty (see DirtyPages).
func (b *BufferPool) Touch(table int, page uint32, write bool) bool {
	key := pageKey{table, page}
	h := key.hash()
	return b.shards[(h>>48)&b.mask].touch(key, h, write)
}

// DirtyPages returns how many resident pages carry unflushed writes: pages
// admitted or re-touched with write=true and not yet evicted. Eviction
// models the write-back, so capacity pressure drains the count — the
// checkpoint/flush signal the monitor tracks as the "pool.dirty" series.
func (b *BufferPool) DirtyPages() int {
	total := 0
	for _, s := range b.shards {
		total += s.dirtyPages(-1)
	}
	return total
}

// DirtyTablePages returns how many of a table's resident pages are dirty.
func (b *BufferPool) DirtyTablePages(table int) int {
	if table < 0 {
		return 0
	}
	total := 0
	for _, s := range b.shards {
		total += s.dirtyPages(table)
	}
	return total
}

// HitRatio returns hits/(hits+misses), or 1 when no accesses happened.
func (b *BufferPool) HitRatio() float64 {
	hits, misses := b.Stats()
	total := hits + misses
	if total == 0 {
		return 1
	}
	return float64(hits) / float64(total)
}

// Stats returns cumulative hit and miss counts, merged across shards.
func (b *BufferPool) Stats() (hits, misses uint64) {
	for _, s := range b.shards {
		hits += s.hits.Load()
		misses += s.misses.Load()
	}
	return hits, misses
}

// ResidentPages returns how many pages of the table are currently cached.
func (b *BufferPool) ResidentPages(table int) int {
	total := 0
	for _, s := range b.shards {
		total += s.residentPages(table)
	}
	return total
}

// ResidentFraction returns the cached fraction of a table given its total
// page count (1 if the table has no pages).
func (b *BufferPool) ResidentFraction(table, totalPages int) float64 {
	if totalPages <= 0 {
		return 1
	}
	f := float64(b.ResidentPages(table)) / float64(totalPages)
	if f > 1 {
		f = 1
	}
	return f
}

// Capacity returns the configured page capacity.
func (b *BufferPool) Capacity() int { return b.capacity }

// Shards returns the number of independently locked LRU regions.
func (b *BufferPool) Shards() int { return len(b.shards) }

// Len returns the number of currently resident pages.
func (b *BufferPool) Len() int {
	total := 0
	for _, s := range b.shards {
		s.mu.Lock()
		total += s.used
		s.mu.Unlock()
	}
	return total
}

// Reset clears residency and counters (used between benchmark phases).
func (b *BufferPool) Reset() {
	for _, s := range b.shards {
		s.reset()
	}
}
