package storage

import (
	"fmt"
	"sync"
	"testing"

	"neurdb/internal/rel"
)

func TestHeapInsertScan(t *testing.T) {
	h := NewHeap(1, nil)
	var ids []RowID
	for i := 0; i < 300; i++ {
		ids = append(ids, h.Insert(rel.Row{rel.Int(int64(i))}, 1))
	}
	if h.LiveRows() != 300 {
		t.Fatalf("live rows = %d", h.LiveRows())
	}
	if h.NumPages() != 3 { // 300 rows at 128/page
		t.Fatalf("pages = %d, want 3", h.NumPages())
	}
	seen := map[int64]bool{}
	h.Scan(func(id RowID, v *Version) bool {
		seen[v.Data[0].I] = true
		return true
	})
	if len(seen) != 300 {
		t.Fatalf("scan saw %d rows", len(seen))
	}
	// Head returns the inserted version.
	v := h.Head(ids[42])
	if v == nil || v.Data[0].I != 42 {
		t.Fatal("Head wrong")
	}
	// Out-of-range Head is nil.
	if h.Head(RowID{Page: 99, Slot: 0}) != nil || h.Head(RowID{Page: 0, Slot: 999}) != nil {
		t.Fatal("out-of-range Head should be nil")
	}
}

func TestHeapScanEarlyStop(t *testing.T) {
	h := NewHeap(1, nil)
	for i := 0; i < 10; i++ {
		h.Insert(rel.Row{rel.Int(int64(i))}, 1)
	}
	count := 0
	h.Scan(func(RowID, *Version) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestHeapSetHeadAndVersionChain(t *testing.T) {
	h := NewHeap(1, nil)
	id := h.Insert(rel.Row{rel.Int(1)}, 1)
	old := h.Head(id)
	old.SetBeginTS(5)
	old.SetEndTS(10)
	old.SetXMax(2)
	newer := NewVersion(rel.Row{rel.Int(2)}, 2, old)
	newer.SetBeginTS(10)
	h.SetHead(id, newer)
	got := h.Head(id)
	if got.Data[0].I != 2 || got.Next() != old {
		t.Fatal("SetHead chain wrong")
	}
}

func TestHeapVacuumAndSlotReuse(t *testing.T) {
	h := NewHeap(1, nil)
	id := h.Insert(rel.Row{rel.Int(1)}, 1)
	v := h.Head(id)
	v.SetBeginTS(1)
	v.SetEndTS(5) // deleted at ts 5
	h.NoteDelete()
	if n := h.Vacuum(10); n != 1 {
		t.Fatalf("vacuum reclaimed %d, want 1", n)
	}
	// Chain should be gone from scans.
	count := 0
	h.Scan(func(RowID, *Version) bool { count++; return true })
	if count != 0 {
		t.Fatalf("scan after vacuum saw %d", count)
	}
	// Next insert reuses the freed slot.
	id2 := h.Insert(rel.Row{rel.Int(2)}, 2)
	if id2 != id {
		t.Fatalf("slot not reused: %v vs %v", id2, id)
	}
	// Vacuum trims dead middle versions but keeps the live head.
	id3 := h.Insert(rel.Row{rel.Int(3)}, 3)
	head := h.Head(id3)
	head.SetBeginTS(3)
	dead := NewVersion(rel.Row{rel.Int(0)}, 1, nil)
	dead.SetBeginTS(1)
	dead.SetEndTS(2)
	head.SetNext(dead)
	if n := h.Vacuum(10); n != 1 {
		t.Fatalf("vacuum middle reclaimed %d, want 1", n)
	}
	if h.Head(id3).Next() != nil {
		t.Fatal("dead tail not trimmed")
	}
	if h.String() == "" {
		t.Fatal("String empty")
	}
}

func TestHeapConcurrentInsertScan(t *testing.T) {
	h := NewHeap(1, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.Insert(rel.Row{rel.Int(int64(g*1000 + i))}, uint64(g))
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			h.Scan(func(RowID, *Version) bool { return true })
		}
		close(done)
	}()
	wg.Wait()
	<-done
	if h.LiveRows() != 1600 {
		t.Fatalf("live = %d", h.LiveRows())
	}
}

func TestBufferPoolLRUAndStats(t *testing.T) {
	p := NewBufferPool(2)
	if p.Touch(1, 0, false) {
		t.Fatal("first access must miss")
	}
	if !p.Touch(1, 0, false) {
		t.Fatal("second access must hit")
	}
	p.Touch(1, 1, false) // fills capacity
	p.Touch(1, 2, false) // evicts LRU page 0
	if p.Touch(1, 0, false) {
		t.Fatal("page 0 should have been evicted")
	}
	hits, misses := p.Stats()
	if hits != 1 || misses != 4 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	if p.Len() != 2 || p.Capacity() != 2 {
		t.Fatal("len/capacity wrong")
	}
	if got := p.HitRatio(); got <= 0 || got >= 1 {
		t.Fatalf("hit ratio = %v", got)
	}
	p.Reset()
	if p.Len() != 0 || p.HitRatio() != 1 {
		t.Fatal("reset failed")
	}
}

func TestBufferPoolResidency(t *testing.T) {
	p := NewBufferPool(10)
	for i := uint32(0); i < 4; i++ {
		p.Touch(7, i, false)
	}
	p.Touch(8, 0, false)
	if p.ResidentPages(7) != 4 || p.ResidentPages(8) != 1 {
		t.Fatal("per-table residency wrong")
	}
	if f := p.ResidentFraction(7, 8); f != 0.5 {
		t.Fatalf("fraction = %v", f)
	}
	if p.ResidentFraction(7, 0) != 1 {
		t.Fatal("zero-page table should report 1")
	}
	if p.ResidentFraction(7, 2) != 1 {
		t.Fatal("fraction must clamp to 1")
	}
	// Capacity below 1 clamps.
	if NewBufferPool(0).Capacity() != 1 {
		t.Fatal("capacity clamp failed")
	}
}

func TestBufferPoolEvictionUpdatesPerTable(t *testing.T) {
	p := NewBufferPool(3)
	p.Touch(1, 0, false)
	p.Touch(1, 1, false)
	p.Touch(2, 0, false)
	p.Touch(2, 1, false) // evicts (1,0)
	if p.ResidentPages(1) != 1 || p.ResidentPages(2) != 2 {
		t.Fatalf("per-table after eviction: t1=%d t2=%d", p.ResidentPages(1), p.ResidentPages(2))
	}
}

func TestHeapWithPoolAccounting(t *testing.T) {
	pool := NewBufferPool(100)
	h := NewHeap(3, pool)
	for i := 0; i < 200; i++ {
		h.Insert(rel.Row{rel.Int(int64(i))}, 1)
	}
	h.Scan(func(RowID, *Version) bool { return true })
	if pool.ResidentPages(3) != h.NumPages() {
		t.Fatalf("resident=%d pages=%d", pool.ResidentPages(3), h.NumPages())
	}
	hits, _ := pool.Stats()
	if hits == 0 {
		t.Fatal("expected buffer hits from scan after inserts")
	}
}

func TestRowIDFormatting(t *testing.T) {
	id := RowID{Page: 2, Slot: 7}
	if fmt.Sprintf("%v", id) != "{2 7}" {
		t.Fatalf("RowID format: %v", id)
	}
}
