package storage

import "testing"

// TestDirtyPageAccounting: write touches mark pages dirty exactly once,
// read touches never do, and the counts are visible in total and per table.
func TestDirtyPageAccounting(t *testing.T) {
	p := NewShardedBufferPool(64, 1)
	p.Touch(1, 0, false) // read admission: clean
	p.Touch(1, 1, true)  // write admission: dirty
	p.Touch(2, 0, true)
	p.Touch(2, 0, true) // re-dirtying the same page must not double-count
	p.Touch(2, 1, false)

	if got := p.DirtyPages(); got != 2 {
		t.Fatalf("DirtyPages() = %d, want 2", got)
	}
	if got := p.DirtyTablePages(1); got != 1 {
		t.Fatalf("DirtyTablePages(1) = %d, want 1", got)
	}
	if got := p.DirtyTablePages(2); got != 1 {
		t.Fatalf("DirtyTablePages(2) = %d, want 1", got)
	}
	// A write hit on a clean resident page dirties it.
	p.Touch(1, 0, true)
	if got := p.DirtyTablePages(1); got != 2 {
		t.Fatalf("after write hit: DirtyTablePages(1) = %d, want 2", got)
	}
	if got := p.DirtyTablePages(3); got != 0 {
		t.Fatalf("DirtyTablePages(3) = %d, want 0", got)
	}
	p.Reset()
	if got := p.DirtyPages(); got != 0 {
		t.Fatalf("after Reset: DirtyPages() = %d, want 0", got)
	}
}

// TestDirtyPageEvictionWritesBack: evicting a dirty page models write-back —
// the dirty count drops with the residency.
func TestDirtyPageEvictionWritesBack(t *testing.T) {
	p := NewShardedBufferPool(4, 1) // tiny single-shard pool, exact LRU
	for pg := uint32(0); pg < 4; pg++ {
		p.Touch(1, pg, true)
	}
	if got := p.DirtyPages(); got != 4 {
		t.Fatalf("DirtyPages() = %d, want 4", got)
	}
	// Admit 4 clean pages of another table: the dirty ones are evicted LRU.
	for pg := uint32(0); pg < 4; pg++ {
		p.Touch(2, pg, false)
	}
	if got := p.DirtyPages(); got != 0 {
		t.Fatalf("after eviction: DirtyPages() = %d, want 0", got)
	}
	if got := p.DirtyTablePages(1); got != 0 {
		t.Fatalf("after eviction: DirtyTablePages(1) = %d, want 0", got)
	}
	if got := p.ResidentPages(2); got != 4 {
		t.Fatalf("ResidentPages(2) = %d, want 4", got)
	}
}
