package storage

import (
	"sync"
	"testing"

	"neurdb/internal/rel"
)

// TestMorselSourceCoversAllPagesOnce: concurrent claimers must partition the
// page range exactly — every page claimed once, no overlaps, no gaps.
func TestMorselSourceCoversAllPagesOnce(t *testing.T) {
	h := NewHeap(1, nil)
	const rows = 70*RowsPerPage + 13 // 71 pages, last one partial
	for i := 0; i < rows; i++ {
		h.Insert(rel.Row{rel.Int(int64(i))}, 1)
	}
	ms := h.NewMorselSource(16)
	wantMorsels := (71 + 15) / 16
	if got := ms.Morsels(); got != wantMorsels {
		t.Fatalf("Morsels() = %d, want %d", got, wantMorsels)
	}
	var mu sync.Mutex
	claimed := map[uint32]int{}
	seenIdx := map[int]bool{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx, lo, hi, ok := ms.Next()
				if !ok {
					return
				}
				mu.Lock()
				if seenIdx[idx] {
					t.Errorf("morsel %d claimed twice", idx)
				}
				seenIdx[idx] = true
				for p := lo; p < hi; p++ {
					claimed[p]++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(claimed) != 71 {
		t.Fatalf("claimed %d distinct pages, want 71", len(claimed))
	}
	for p, n := range claimed {
		if n != 1 {
			t.Fatalf("page %d claimed %d times", p, n)
		}
	}
	// Exhausted sources keep answering not-ok.
	if _, _, _, ok := ms.Next(); ok {
		t.Fatal("Next returned ok after exhaustion")
	}
}

// TestPageHeadsMatchesBatchCursor: random-access page reads must see exactly
// what the sequential batch cursor sees.
func TestPageHeadsMatchesBatchCursor(t *testing.T) {
	h := NewHeap(1, nil)
	for i := 0; i < 5*RowsPerPage+7; i++ {
		h.Insert(rel.Row{rel.Int(int64(i))}, 1)
	}
	buf := make([]*Version, RowsPerPage)
	c := h.NewBatchCursor()
	pages := 0
	for {
		id, heads, ok := c.NextPage()
		if !ok {
			break
		}
		pages++
		n := h.PageHeads(id, buf)
		if n != len(heads) {
			t.Fatalf("page %d: PageHeads n=%d, cursor %d heads", id, n, len(heads))
		}
		for s := 0; s < n; s++ {
			if buf[s] != heads[s] {
				t.Fatalf("page %d slot %d: heads differ", id, s)
			}
		}
	}
	if pages != 6 {
		t.Fatalf("cursor visited %d pages, want 6", pages)
	}
	if n := h.PageHeads(uint32(pages), buf); n != 0 {
		t.Fatalf("out-of-range PageHeads returned %d heads", n)
	}
}

// TestMorselSourceSnapshotsPageCount: pages appended after the source is
// created are not handed out (their rows are invisible to any snapshot taken
// before they committed anyway).
func TestMorselSourceSnapshotsPageCount(t *testing.T) {
	h := NewHeap(1, nil)
	for i := 0; i < 2*RowsPerPage; i++ {
		h.Insert(rel.Row{rel.Int(int64(i))}, 1)
	}
	ms := h.NewMorselSource(1)
	for i := 0; i < 3*RowsPerPage; i++ {
		h.Insert(rel.Row{rel.Int(int64(i))}, 2)
	}
	total := 0
	for {
		_, lo, hi, ok := ms.Next()
		if !ok {
			break
		}
		total += int(hi - lo)
	}
	if total != 2 {
		t.Fatalf("source handed out %d pages, want the 2-page snapshot", total)
	}
}
