// Package storage implements the physical storage substrate: heap tables
// organized as pages of MVCC version chains, and a buffer pool whose
// residency statistics feed the learned query optimizer's "buffer info"
// system-condition features (paper Fig. 5).
package storage

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"neurdb/internal/rel"
)

// RowsPerPage is the heap page fan-out. Pages are the unit the buffer pool
// accounts for.
const RowsPerPage = 128

// InfinityTS marks a version with no end timestamp (still live).
const InfinityTS = math.MaxUint64

// RowID locates a version chain within a heap.
type RowID struct {
	Page uint32
	Slot uint32
}

// page is a fixed-capacity container of version-chain heads.
type page struct {
	id     uint32
	chains []*Version
}

// Heap is an append-only paged table of MVCC version chains. A table-level
// RWMutex guards structure; version-field mutation is coordinated by the
// transaction manager, which serializes writers per row.
type Heap struct {
	mu      sync.RWMutex
	TableID int
	pages   []*page
	free    []RowID // slots of fully-dead chains available for reuse
	pool    *BufferPool
	live    int64 // approximate live row count
}

// NewHeap creates an empty heap for the given table id, attached to an
// optional buffer pool (nil means unaccounted access).
func NewHeap(tableID int, pool *BufferPool) *Heap {
	return &Heap{TableID: tableID, pool: pool}
}

// NumPages returns the current number of pages.
func (h *Heap) NumPages() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.pages)
}

// LiveRows returns the approximate number of live rows.
func (h *Heap) LiveRows() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.live
}

// Insert appends a new version chain with the given creator txn and returns
// its RowID. BeginTS stays 0 until the creator commits.
func (h *Heap) Insert(row rel.Row, xmin uint64) RowID {
	v := NewVersion(row, xmin, nil)
	h.mu.Lock()
	defer h.mu.Unlock()
	h.live++
	if n := len(h.free); n > 0 {
		id := h.free[n-1]
		h.free = h.free[:n-1]
		h.pages[id.Page].chains[id.Slot] = v
		h.touch(id.Page, true)
		return id
	}
	if len(h.pages) == 0 || len(h.pages[len(h.pages)-1].chains) >= RowsPerPage {
		h.pages = append(h.pages, &page{id: uint32(len(h.pages))})
	}
	p := h.pages[len(h.pages)-1]
	p.chains = append(p.chains, v)
	id := RowID{Page: p.id, Slot: uint32(len(p.chains) - 1)}
	h.touch(p.id, true)
	return id
}

// InsertBatch appends new version chains for all rows under one lock
// acquisition, appending the assigned RowIDs to ids and the created chain
// heads to heads (aligned). The buffer pool is touched once per distinct
// page written instead of once per row, so bulk loads and multi-VALUES
// INSERT pay page-granular accounting like the batch read path.
func (h *Heap) InsertBatch(rows []rel.Row, xmin uint64, ids []RowID, heads []*Version) ([]RowID, []*Version) {
	h.mu.Lock()
	defer h.mu.Unlock()
	lastTouched := uint32(math.MaxUint32)
	for _, row := range rows {
		v := NewVersion(row, xmin, nil)
		h.live++
		var id RowID
		if n := len(h.free); n > 0 {
			id = h.free[n-1]
			h.free = h.free[:n-1]
			h.pages[id.Page].chains[id.Slot] = v
		} else {
			if len(h.pages) == 0 || len(h.pages[len(h.pages)-1].chains) >= RowsPerPage {
				h.pages = append(h.pages, &page{id: uint32(len(h.pages))})
			}
			p := h.pages[len(h.pages)-1]
			p.chains = append(p.chains, v)
			id = RowID{Page: p.id, Slot: uint32(len(p.chains) - 1)}
		}
		if id.Page != lastTouched {
			h.touch(id.Page, true)
			lastTouched = id.Page
		}
		ids = append(ids, id)
		heads = append(heads, v)
	}
	return ids, heads
}

// Head returns the newest version at id, or nil.
func (h *Heap) Head(id RowID) *Version {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if int(id.Page) >= len(h.pages) {
		return nil
	}
	p := h.pages[id.Page]
	if int(id.Slot) >= len(p.chains) {
		return nil
	}
	h.touch(id.Page, false)
	return p.chains[id.Slot]
}

// Heads resolves the chain heads at ids in one pass, appending to dst (nil
// for out-of-range or vacuumed slots). The heap lock is acquired once and
// the buffer pool touched once per distinct consecutive page, so the batch
// DML write path pays page-granular instead of row-granular lookup cost.
// ids are expected to be page-clustered, as a batch scan produces them.
func (h *Heap) Heads(ids []RowID, dst []*Version) []*Version {
	h.mu.RLock()
	defer h.mu.RUnlock()
	lastPage := uint32(math.MaxUint32)
	for _, id := range ids {
		if id.Page != lastPage {
			if int(id.Page) < len(h.pages) {
				h.touch(id.Page, false)
			}
			lastPage = id.Page
		}
		var v *Version
		if int(id.Page) < len(h.pages) {
			p := h.pages[id.Page]
			if int(id.Slot) < len(p.chains) {
				v = p.chains[id.Slot]
			}
		}
		dst = append(dst, v)
	}
	return dst
}

// SetHead replaces the chain head at id (prepending a new version whose Next
// must already link to the old head). Caller coordinates concurrency.
func (h *Heap) SetHead(id RowID, v *Version) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.pages[id.Page].chains[id.Slot] = v
	h.touch(id.Page, true)
}

// NoteDelete decrements the live-row estimate after a committed delete.
func (h *Heap) NoteDelete() {
	h.mu.Lock()
	h.live--
	h.mu.Unlock()
}

// NoteDeleteN decrements the live-row estimate by n in one acquisition —
// the batched form commit and abort use after tallying a run of deletes
// against the same heap.
func (h *Heap) NoteDeleteN(n int) {
	h.mu.Lock()
	h.live -= int64(n)
	h.mu.Unlock()
}

// Scan visits every version-chain head in heap order. The visitor receives
// the RowID and chain head; returning false stops the scan. Page touches are
// recorded against the buffer pool. Each page's heads are copied out under
// the lock, so the visitor runs lock-free and concurrent Vacuum/SetHead
// cannot race with it.
func (h *Heap) Scan(visit func(RowID, *Version) bool) {
	var buf [RowsPerPage]*Version
	for pageNo := 0; ; pageNo++ {
		h.mu.RLock()
		if pageNo >= len(h.pages) {
			h.mu.RUnlock()
			return
		}
		h.touch(uint32(pageNo), false)
		n := copy(buf[:], h.pages[pageNo].chains)
		h.mu.RUnlock()
		for slot := 0; slot < n; slot++ {
			head := buf[slot]
			if head == nil {
				continue
			}
			if !visit(RowID{Page: uint32(pageNo), Slot: uint32(slot)}, head) {
				return
			}
		}
	}
}

// ScanBatch visits the heap page-at-a-time: the visitor receives a page id
// and that page's chain heads (entries may be nil for vacuumed slots; the
// slice index is the slot). Heap.mu is acquired once and the buffer pool
// touched once per page, not per row. Returning false stops the scan. The
// heads slice is only valid during the visit.
func (h *Heap) ScanBatch(visit func(pageID uint32, heads []*Version) bool) {
	c := h.NewBatchCursor()
	for {
		id, heads, ok := c.NextPage()
		if !ok {
			return
		}
		if !visit(id, heads) {
			return
		}
	}
}

// Vacuum removes versions whose EndTS <= horizon and frees fully-dead chains.
// It returns the number of versions reclaimed. The horizon is the oldest
// snapshot timestamp still active.
func (h *Heap) Vacuum(horizon uint64) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	reclaimed := 0
	for _, p := range h.pages {
		for slot, head := range p.chains {
			if head == nil {
				continue
			}
			// Trim dead tail versions.
			for v := head; v != nil; v = v.Next() {
				for n := v.Next(); n != nil && n.EndTS() <= horizon; n = v.Next() {
					v.SetNext(n.Next())
					reclaimed++
				}
			}
			if head.EndTS() <= horizon && head.Next() == nil {
				p.chains[slot] = nil
				h.free = append(h.free, RowID{Page: p.id, Slot: uint32(slot)})
				reclaimed++
			}
		}
	}
	return reclaimed
}

func (h *Heap) touch(pageID uint32, write bool) {
	if h.pool != nil {
		h.pool.Touch(h.TableID, pageID, write)
	}
}

// String summarizes the heap for debugging.
func (h *Heap) String() string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return fmt.Sprintf("heap{table=%d pages=%d live=%d}", h.TableID, len(h.pages), h.live)
}

// Cursor iterates version-chain heads in heap order without holding locks
// across calls. Each page's heads are copied into the cursor under RLock,
// so iteration cannot race with concurrent Vacuum/SetHead slot writes.
type Cursor struct {
	h    *Heap
	page int
	slot int
	n    int
	buf  [RowsPerPage]*Version
}

// NewCursor returns a cursor positioned before the first row.
func (h *Heap) NewCursor() *Cursor { return &Cursor{h: h, page: -1} }

// Next advances and returns the next chain head, or ok=false at the end.
func (c *Cursor) Next() (RowID, *Version, bool) {
	for {
		if c.slot >= c.n {
			c.page++
			c.slot = 0
			c.h.mu.RLock()
			if c.page >= len(c.h.pages) {
				c.h.mu.RUnlock()
				return RowID{}, nil, false
			}
			c.h.touch(uint32(c.page), false)
			c.n = copy(c.buf[:], c.h.pages[c.page].chains)
			c.h.mu.RUnlock()
			continue
		}
		head := c.buf[c.slot]
		id := RowID{Page: uint32(c.page), Slot: uint32(c.slot)}
		c.slot++
		if head != nil {
			return id, head, true
		}
	}
}

// PageHeads copies one page's chain heads into buf (entries may be nil for
// vacuumed slots; the index is the slot) and returns the head count, or 0
// for an out-of-range page. It is the random-access counterpart of
// BatchCursor.NextPage for parallel workers reading morsel page ranges: one
// RLock acquisition and one buffer-pool touch per call, and because the
// heads are copied out under the lock, concurrent Vacuum/SetHead slot writes
// cannot race with the caller.
func (h *Heap) PageHeads(pageID uint32, buf []*Version) int {
	h.mu.RLock()
	if int(pageID) >= len(h.pages) {
		h.mu.RUnlock()
		return 0
	}
	h.touch(pageID, false)
	n := copy(buf, h.pages[pageID].chains)
	h.mu.RUnlock()
	return n
}

// MorselSource hands out disjoint page ranges ("morsels") of a heap to
// concurrent scan workers: each Next is one atomic fetch-add, so claiming is
// contention-free and every page in the snapshot is claimed exactly once.
// The page count is snapshotted at creation — pages appended afterwards hold
// only rows invisible to any snapshot taken before they were committed, which
// is the same horizon a serial scan observes.
type MorselSource struct {
	h     *Heap
	pages uint32 // page count snapshot
	size  uint32 // pages per morsel
	next  atomic.Uint32
}

// NewMorselSource snapshots the heap's page count and returns a dispatcher
// carving it into morsels of pagesPerMorsel pages (the final morsel may be
// short).
func (h *Heap) NewMorselSource(pagesPerMorsel int) *MorselSource {
	if pagesPerMorsel < 1 {
		pagesPerMorsel = 1
	}
	h.mu.RLock()
	pages := uint32(len(h.pages))
	h.mu.RUnlock()
	return &MorselSource{h: h, pages: pages, size: uint32(pagesPerMorsel)}
}

// Morsels returns the total number of morsels the source will hand out.
func (ms *MorselSource) Morsels() int {
	return int((ms.pages + ms.size - 1) / ms.size)
}

// Pages returns the snapshotted page count the source dispatches.
func (ms *MorselSource) Pages() int { return int(ms.pages) }

// Next claims the next morsel, returning its ordinal and page range
// [lo, hi), or ok=false once the heap snapshot is exhausted.
func (ms *MorselSource) Next() (idx int, lo, hi uint32, ok bool) {
	i := ms.next.Add(1) - 1
	lo = i * ms.size
	if lo >= ms.pages {
		return 0, 0, 0, false
	}
	hi = lo + ms.size
	if hi > ms.pages {
		hi = ms.pages
	}
	return int(i), lo, hi, true
}

// BatchCursor iterates the heap one page at a time, the storage half of the
// executor's vectorized scan: one lock acquisition and one buffer-pool touch
// buy up to RowsPerPage chain heads.
type BatchCursor struct {
	h    *Heap
	page int
	buf  [RowsPerPage]*Version
}

// NewBatchCursor returns a batch cursor positioned before the first page.
func (h *Heap) NewBatchCursor() *BatchCursor { return &BatchCursor{h: h, page: -1} }

// NextPage advances to the next page and returns its id and a snapshot of
// its chain heads (index = slot; entries may be nil for vacuumed chains), or
// ok=false at the end. The slice is valid until the next NextPage call.
func (c *BatchCursor) NextPage() (uint32, []*Version, bool) {
	c.page++
	c.h.mu.RLock()
	if c.page >= len(c.h.pages) {
		c.h.mu.RUnlock()
		return 0, nil, false
	}
	c.h.touch(uint32(c.page), false)
	n := copy(c.buf[:], c.h.pages[c.page].chains)
	c.h.mu.RUnlock()
	return uint32(c.page), c.buf[:n], true
}
