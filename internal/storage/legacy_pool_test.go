package storage

import (
	"container/list"
	"sync"
)

// legacyBufferPool is the pre-refactor buffer pool, preserved verbatim as
// the golden reference for the feature-parity test and the "before"
// baseline for the sharding benchmarks: one global mutex, container/list
// LRU (one heap allocation per admission), and map-based index. It also
// carries the original per-table residency leak (zero-count entries are
// never deleted), which the parity test works around by checking counts,
// not map sizes.
type legacyBufferPool struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List
	index    map[pageKey]*list.Element

	hits, misses uint64
	perTable     map[int]int
}

func newLegacyBufferPool(capacity int) *legacyBufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &legacyBufferPool{
		capacity: capacity,
		lru:      list.New(),
		index:    make(map[pageKey]*list.Element),
		perTable: make(map[int]int),
	}
}

func (b *legacyBufferPool) Touch(table int, page uint32, write bool) bool {
	key := pageKey{table, page}
	b.mu.Lock()
	defer b.mu.Unlock()
	if el, ok := b.index[key]; ok {
		b.lru.MoveToFront(el)
		b.hits++
		return true
	}
	b.misses++
	if b.lru.Len() >= b.capacity {
		back := b.lru.Back()
		if back != nil {
			victim := back.Value.(pageKey)
			b.lru.Remove(back)
			delete(b.index, victim)
			b.perTable[victim.table]--
		}
	}
	b.index[key] = b.lru.PushFront(key)
	b.perTable[table]++
	return false
}

func (b *legacyBufferPool) Stats() (hits, misses uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.hits, b.misses
}

func (b *legacyBufferPool) HitRatio() float64 {
	hits, misses := b.Stats()
	total := hits + misses
	if total == 0 {
		return 1
	}
	return float64(hits) / float64(total)
}

func (b *legacyBufferPool) ResidentPages(table int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.perTable[table]
}

func (b *legacyBufferPool) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lru.Len()
}
