package storage

import "neurdb/internal/rel"

// InstallAt places a committed row image at an explicit slot during WAL
// replay, growing pages as needed: redo records carry the physical RowID the
// original execution assigned, so re-applying one always lands on the same
// slot ("install row at slot" — idempotent by construction). The installed
// version is a single-element chain with XMin 0 (no live transaction ever
// has id 0) and BeginTS cts, which the visibility fast path treats as
// committed-at-cts. Recovery is single-threaded, but the heap lock is taken
// anyway so the method is safe if that ever changes.
func (h *Heap) InstallAt(id RowID, row rel.Row, cts uint64) {
	v := NewVersion(row, 0, nil)
	v.SetBeginTS(cts)
	h.mu.Lock()
	defer h.mu.Unlock()
	for int(id.Page) >= len(h.pages) {
		h.pages = append(h.pages, &page{id: uint32(len(h.pages))})
	}
	p := h.pages[id.Page]
	for int(id.Slot) >= len(p.chains) {
		p.chains = append(p.chains, nil)
	}
	if p.chains[id.Slot] == nil {
		h.live++
	}
	p.chains[id.Slot] = v
	h.touch(id.Page, true)
}

// ClearAt empties a slot during WAL replay ("clear slot" — the delete half
// of the physiological redo pair). Clearing an already-empty or
// out-of-range slot is a no-op, so re-applying a delete record is
// idempotent. The slot is not pushed onto the free list here: replay may
// later re-install it (a reused RowID from a later record), and the free
// list must never alias a live slot. RebuildFree reconciles after replay.
func (h *Heap) ClearAt(id RowID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if int(id.Page) >= len(h.pages) {
		return
	}
	p := h.pages[id.Page]
	if int(id.Slot) >= len(p.chains) {
		return
	}
	if p.chains[id.Slot] != nil {
		h.live--
		p.chains[id.Slot] = nil
		h.touch(id.Page, true)
	}
}

// RebuildFree rescans the heap and rebuilds the free list from empty slots.
// Called once after replay finishes: deletes replayed via ClearAt and
// inserts from aborted transactions (never logged, so their slots stay
// holes) both become reusable without risking a free-list entry that
// aliases a slot a later replay record re-installs.
func (h *Heap) RebuildFree() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.free = h.free[:0]
	for _, p := range h.pages {
		for slot, head := range p.chains {
			if head == nil {
				h.free = append(h.free, RowID{Page: p.id, Slot: uint32(slot)})
			}
		}
	}
}

// FlushDirty models a checkpoint's write-back pass: every resident dirty
// page is written out (accounting-wise) and its dirty bit cleared. Returns
// the number of pages flushed — the "ckpt.pages" monitor series — and
// drains the "pool.dirty" signal the checkpointer acts on.
func (b *BufferPool) FlushDirty() int {
	total := 0
	for _, s := range b.shards {
		s.mu.Lock()
		n := 0
		for i := 0; i < s.used; i++ {
			if s.entries[i].dirty {
				s.entries[i].dirty = false
				n++
			}
		}
		s.dirtyTotal = 0
		s.dirtyCounts = s.dirtyCounts[:0]
		s.dirtyPer = make(map[int]int)
		s.mu.Unlock()
		total += n
	}
	return total
}
