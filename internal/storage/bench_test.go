package storage

import (
	"sync"
	"testing"
)

// poolToucher abstracts the sharded pool and the legacy baseline so both
// run the identical benchmark workload.
type poolToucher interface {
	Touch(table int, page uint32, write bool) bool
}

// benchPoolCapacity and benchPoolPages put the 8-goroutine workload in the
// eviction-churn regime: each goroutine touches uniform-random pages of its
// own table from a space 2x the whole pool, so even one goroutine running
// alone keeps missing and paying the admit/evict path — the regime where
// buffer accounting actually matters and where the legacy pool also pays
// map churn and one heap allocation per admission.
const (
	benchPoolCapacity = 8192
	benchPoolPages    = 16384 // per table: 2x pool capacity
)

// touchParallel drives b.N pool touches from 8 goroutines, each hitting
// random pages of its own table (concurrent scans with poor locality).
func touchParallel(b *testing.B, p poolToucher) {
	const goroutines = 8
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / goroutines
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			state := uint64(g + 1)
			for i := 0; i < per; i++ {
				// xorshift64: cheap deterministic per-goroutine randomness.
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				p.Touch(g, uint32(state)%benchPoolPages, false)
			}
		}(g)
	}
	wg.Wait()
}

// BenchmarkBufferPoolTouchParallel measures Touch throughput on the sharded
// pool under 8-way concurrency with eviction churn.
func BenchmarkBufferPoolTouchParallel(b *testing.B) {
	touchParallel(b, NewShardedBufferPool(benchPoolCapacity, DefaultPoolShards))
}

// BenchmarkBufferPoolTouchParallelSingleMutex is the pre-sharding baseline:
// the same workload against the original global-mutex container/list pool.
func BenchmarkBufferPoolTouchParallelSingleMutex(b *testing.B) {
	touchParallel(b, newLegacyBufferPool(benchPoolCapacity))
}

// BenchmarkBufferPoolTouchSerial isolates single-threaded Touch cost on the
// sharded pool (hit-dominated: working set fits).
func BenchmarkBufferPoolTouchSerial(b *testing.B) {
	p := NewShardedBufferPool(benchPoolCapacity, DefaultPoolShards)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Touch(1, uint32(i%512), false)
	}
}

// BenchmarkBufferPoolTouchSerialSingleMutex is the matching legacy serial
// baseline.
func BenchmarkBufferPoolTouchSerialSingleMutex(b *testing.B) {
	p := newLegacyBufferPool(benchPoolCapacity)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Touch(1, uint32(i%512), false)
	}
}
