package workload

import (
	"math"
	"math/rand"
	"testing"

	"neurdb/internal/cc"
	"neurdb/internal/rel"
)

func TestAvazuRowShape(t *testing.T) {
	gen := NewAvazu(1)
	row := gen.Row()
	if len(row) != AvazuFields+1 {
		t.Fatalf("row arity = %d", len(row))
	}
	for f := 0; f < AvazuFields; f++ {
		id := row[f].AsInt()
		if id < 0 || id >= AvazuVocab {
			t.Fatalf("field %d id out of range: %d", f, id)
		}
	}
	rate := row[AvazuFields].AsFloat()
	if rate < 0 || rate > 1 {
		t.Fatalf("click_rate out of range: %v", rate)
	}
}

func TestAvazuClustersDiffer(t *testing.T) {
	gen := NewAvazu(2)
	meanRate := func(cluster int) float64 {
		gen.SetCluster(cluster)
		var sum float64
		rows := gen.Batch(2000)
		for _, r := range rows {
			sum += r[AvazuFields].AsFloat()
		}
		return sum / float64(len(rows))
	}
	m0 := meanRate(0)
	differs := false
	for c := 1; c < AvazuClusters; c++ {
		if math.Abs(meanRate(c)-m0) > 0.01 {
			differs = true
		}
	}
	if !differs {
		t.Fatal("clusters should have different label distributions")
	}
	if gen.Cluster() != AvazuClusters-1 {
		t.Fatal("cluster accessor wrong")
	}
}

func TestAvazuBatchSourceSwitchesClusters(t *testing.T) {
	gen := NewAvazu(3)
	src := gen.NewBatchSource(100, 10, 250) // switch every 250 samples
	count := 0
	clusters := map[int]bool{}
	for {
		rows, ok := src.Next()
		if !ok {
			break
		}
		if len(rows) != 100 {
			t.Fatal("batch size wrong")
		}
		clusters[gen.Cluster()] = true
		count++
	}
	if count != 10 {
		t.Fatalf("batches = %d", count)
	}
	if len(clusters) < 3 {
		t.Fatalf("expected several clusters, saw %v", clusters)
	}
}

func TestAvazuFeaturizer(t *testing.T) {
	gen := NewAvazu(4)
	rows := gen.Batch(32)
	x, y := AvazuFeaturizer(rows)
	if x.Rows != 32 || x.Cols != AvazuFields || y.Rows != 32 || y.Cols != 1 {
		t.Fatal("featurizer shapes wrong")
	}
	for i := 0; i < x.Rows; i++ {
		for f := 0; f < AvazuFields; f++ {
			id := int(x.At(i, f))
			if id < f*AvazuVocab || id >= (f+1)*AvazuVocab {
				t.Fatalf("global id %d outside field %d slot", id, f)
			}
		}
	}
}

func TestDiabetesGeneratorAndFeaturizer(t *testing.T) {
	gen := NewDiabetes(5)
	rows := gen.Batch(500)
	var pos int
	for _, row := range rows {
		if len(row) != DiabetesFields+1 {
			t.Fatal("arity wrong")
		}
		if row[DiabetesFields].AsInt() == 1 {
			pos++
		}
	}
	// Outcome must be non-degenerate.
	if pos == 0 || pos == len(rows) {
		t.Fatalf("degenerate labels: %d/%d", pos, len(rows))
	}
	x, y := DiabetesFeaturizer(rows)
	if x.Cols != DiabetesFields || y.Cols != 1 {
		t.Fatal("featurizer shapes wrong")
	}
	src := gen.NewSource(50, 3)
	n := 0
	for {
		_, ok := src.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Fatalf("source batches = %d", n)
	}
}

func TestYCSBZipfianSkew(t *testing.T) {
	y := NewYCSB(10_000, 0.9)
	r := rand.New(rand.NewSource(1))
	counts := map[int]int{}
	const draws = 50_000
	for i := 0; i < draws; i++ {
		k := y.Key(r)
		if k < 0 || k >= 10_000 {
			t.Fatalf("key out of range: %d", k)
		}
		counts[k]++
	}
	// Hot head: key 0 should be drawn far more than uniform (5 per key).
	if counts[0] < 100 {
		t.Fatalf("zipf head too cold: %d", counts[0])
	}
	// Uniform variant.
	u := NewYCSB(10_000, 0)
	for i := 0; i < 100; i++ {
		if k := u.Key(r); k < 0 || k >= 10_000 {
			t.Fatalf("uniform key out of range: %d", k)
		}
	}
}

func TestYCSBTxnShape(t *testing.T) {
	y := NewYCSB(1000, 0.9)
	r := rand.New(rand.NewSource(2))
	var txn cc.Txn
	for i := 0; i < 200; i++ {
		y.Generate(r, &txn)
		if len(txn.Ops) != 10 {
			t.Fatalf("ops = %d", len(txn.Ops))
		}
		reads, writes := 0, 0
		seen := map[int]bool{}
		for _, op := range txn.Ops {
			if seen[op.Key] {
				t.Fatal("duplicate key within txn")
			}
			seen[op.Key] = true
			if op.Write {
				writes++
			} else {
				reads++
			}
		}
		if reads != 5 || writes != 5 {
			t.Fatalf("reads=%d writes=%d", reads, writes)
		}
	}
}

func TestTPCCGeneratorShape(t *testing.T) {
	g := NewTPCC(2)
	if g.Warehouses() != 2 {
		t.Fatal("warehouse count wrong")
	}
	r := rand.New(rand.NewSource(3))
	var txn cc.Txn
	sawNO, sawPay := false, false
	for i := 0; i < 300; i++ {
		g.Generate(r, &txn)
		limit := StoreSize(2)
		for _, op := range txn.Ops {
			if op.Key < 0 || op.Key >= limit {
				t.Fatalf("key %d outside store of %d", op.Key, limit)
			}
		}
		switch txn.Type {
		case TPCCNewOrder:
			sawNO = true
			if len(txn.Ops) != 8 {
				t.Fatalf("neworder ops = %d", len(txn.Ops))
			}
		case TPCCPayment:
			sawPay = true
			if len(txn.Ops) != 3 {
				t.Fatalf("payment ops = %d", len(txn.Ops))
			}
		}
	}
	if !sawNO || !sawPay {
		t.Fatal("both txn types should occur")
	}
	g.SetWarehouses(0) // clamps to 1
	if g.Warehouses() != 1 {
		t.Fatal("clamp failed")
	}
}

func TestStatsWorkloadTables(t *testing.T) {
	sw := NewStats(1, 7)
	defs := sw.Tables()
	if len(defs) != 8 {
		t.Fatalf("tables = %d", len(defs))
	}
	for _, def := range defs {
		rows := sw.Rows(def.Name)
		if len(rows) == 0 {
			t.Fatalf("table %s has no rows", def.Name)
		}
		for _, row := range rows[:10] {
			if len(row) != len(def.Cols) {
				t.Fatalf("table %s arity mismatch", def.Name)
			}
		}
	}
	if len(sw.Queries()) != 8 {
		t.Fatal("expected 8 SPJ queries")
	}
}

func TestStatsDrift(t *testing.T) {
	sw := NewStats(1, 8)
	if sw.DriftInserts("posts", DriftNone) != nil {
		t.Fatal("no-drift should be empty")
	}
	mild := sw.DriftInserts("posts", DriftMild)
	severe := sw.DriftInserts("posts", DriftSevere)
	if len(mild) == 0 || len(severe) <= len(mild) {
		t.Fatalf("drift sizes: mild=%d severe=%d", len(mild), len(severe))
	}
	// Severe drift shifts post scores upward.
	meanScore := func(rows []rel.Row) float64 {
		var s float64
		for _, r := range rows {
			s += r[2].AsFloat()
		}
		return s / float64(len(rows))
	}
	base := meanScore(sw.Rows("posts"))
	drifted := meanScore(severe)
	if drifted <= base+20 {
		t.Fatalf("severe drift should shift scores: base=%.1f drifted=%.1f", base, drifted)
	}
	// Users drift only at severe level.
	if len(sw.DriftInserts("users", DriftMild)) != 0 {
		t.Fatal("users should not drift at mild level")
	}
	if len(sw.DriftInserts("users", DriftSevere)) == 0 {
		t.Fatal("users should drift at severe level")
	}
	// Deletes exist only for severe.
	if sw.DriftDeletes(DriftMild) != nil {
		t.Fatal("mild should have no deletes")
	}
	if len(sw.DriftDeletes(DriftSevere)) == 0 {
		t.Fatal("severe should have deletes")
	}
	// Level names.
	if DriftNone.String() == DriftSevere.String() {
		t.Fatal("level names should differ")
	}
}
