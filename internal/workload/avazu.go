// Package workload provides the paper's evaluation workloads, rebuilt as
// deterministic synthetic generators (the substitution table in DESIGN.md):
// an Avazu-style CTR stream with five drift clusters (Workload E), a
// Diabetes-style classification set (Workload H), a YCSB micro-benchmark
// and a TPC-C-style contention generator for the CC experiments, and a
// STATS-style 8-table join schema with drift for the optimizer experiments.
package workload

import (
	"math"
	"math/rand"

	"neurdb/internal/nn"
	"neurdb/internal/rel"
)

// AvazuFields is the attribute count of the Avazu CTR dataset (paper: 22).
const AvazuFields = 22

// AvazuVocab is the per-field categorical vocabulary.
const AvazuVocab = 64

// AvazuClusters is the number of drift clusters C1..C5 (paper §5.1).
const AvazuClusters = 5

// Avazu generates an Avazu-like CTR stream. Each cluster has its own
// per-field categorical distribution and its own logistic label function, so
// switching clusters drifts both the feature and the label distribution —
// the protocol behind Fig. 6(c).
type Avazu struct {
	weights [AvazuClusters][AvazuFields]float64 // logistic weights per cluster
	bias    [AvazuClusters]float64
	skew    [AvazuClusters][AvazuFields]float64 // per-field zipf-ish skew
	rng     *rand.Rand
	cluster int
}

// NewAvazu creates a deterministic generator.
func NewAvazu(seed int64) *Avazu {
	a := &Avazu{rng: rand.New(rand.NewSource(seed))}
	setup := rand.New(rand.NewSource(seed * 7919))
	for c := 0; c < AvazuClusters; c++ {
		for f := 0; f < AvazuFields; f++ {
			a.weights[c][f] = setup.NormFloat64() * 1.2
			a.skew[c][f] = 0.5 + setup.Float64()*1.5
		}
		a.bias[c] = setup.NormFloat64() * 0.3
	}
	return a
}

// SetCluster switches the active data cluster (simulating data drift).
func (a *Avazu) SetCluster(c int) { a.cluster = c % AvazuClusters }

// Cluster returns the active cluster.
func (a *Avazu) Cluster() int { return a.cluster }

// sampleID draws a field value with cluster-specific skew.
func (a *Avazu) sampleID(r *rand.Rand, c, f int) int {
	// Power-law-ish: id = vocab * u^skew, clusters permute by offset.
	u := math.Pow(r.Float64(), a.skew[c][f])
	id := int(u * AvazuVocab)
	if id >= AvazuVocab {
		id = AvazuVocab - 1
	}
	// Cluster-specific rotation decorrelates clusters' hot ids.
	return (id + c*13) % AvazuVocab
}

// Row generates one record: 22 categorical attributes plus the click_rate
// label in [0,1].
func (a *Avazu) Row() rel.Row {
	return a.RowFrom(a.rng, a.cluster)
}

// RowFrom generates one record from an explicit RNG and cluster.
func (a *Avazu) RowFrom(r *rand.Rand, c int) rel.Row {
	row := make(rel.Row, AvazuFields+1)
	z := a.bias[c]
	for f := 0; f < AvazuFields; f++ {
		id := a.sampleID(r, c, f)
		row[f] = rel.Int(int64(id))
		// Feature contribution: normalized id interacts with cluster weight.
		z += a.weights[c][f] * (float64(id)/AvazuVocab - 0.5)
	}
	rate := 1 / (1 + math.Exp(-z))
	row[AvazuFields] = rel.Float(rate)
	return row
}

// Batch generates n records from the active cluster.
func (a *Avazu) Batch(n int) []rel.Row {
	out := make([]rel.Row, n)
	for i := range out {
		out[i] = a.Row()
	}
	return out
}

// BatchSource adapts the generator to the AI engine's RowBatchSource:
// totalBatches batches of batchSize records, switching clusters every
// switchEvery samples (0 = never switch).
type BatchSource struct {
	gen         *Avazu
	batchSize   int
	remaining   int
	switchEvery int
	emitted     int
}

// NewBatchSource creates a finite streaming source over the generator.
func (a *Avazu) NewBatchSource(batchSize, totalBatches, switchEvery int) *BatchSource {
	return &BatchSource{gen: a, batchSize: batchSize, remaining: totalBatches, switchEvery: switchEvery}
}

// Next implements aiengine.RowBatchSource.
func (s *BatchSource) Next() ([]rel.Row, bool) {
	if s.remaining <= 0 {
		return nil, false
	}
	s.remaining--
	if s.switchEvery > 0 {
		cluster := (s.emitted / s.switchEvery) % AvazuClusters
		s.gen.SetCluster(cluster)
	}
	s.emitted += s.batchSize
	return s.gen.Batch(s.batchSize), true
}

// AvazuFeaturizer converts Avazu rows to ARM-Net inputs: per-field global
// ids (field*vocab + id) and the click_rate label.
func AvazuFeaturizer(rows []rel.Row) (*nn.Matrix, *nn.Matrix) {
	x := nn.NewMatrix(len(rows), AvazuFields)
	y := nn.NewMatrix(len(rows), 1)
	for i, row := range rows {
		for f := 0; f < AvazuFields; f++ {
			id := int(row[f].AsInt())
			if id < 0 {
				id = 0
			}
			if id >= AvazuVocab {
				id = AvazuVocab - 1
			}
			x.Set(i, f, float64(f*AvazuVocab+id))
		}
		y.Set(i, 0, row[AvazuFields].AsFloat())
	}
	return x, y
}

// AvazuTotalVocab is the embedding vocabulary for the Avazu featurizer.
const AvazuTotalVocab = AvazuFields * AvazuVocab
