package workload

import (
	"math/rand"
	"sync/atomic"

	"neurdb/internal/cc"
)

// TPCC is a TPC-C-style contention generator for the drift experiment
// (Fig. 7b). The record space mimics TPC-C's hot-spot structure: per
// warehouse, one warehouse row (very hot under Payment), 10 district rows
// (hot under NewOrder's order-id counter), 3000 customer rows and a stock
// segment. The drift axes match the paper's: warehouse count and thread
// count change between phases.
type TPCC struct {
	warehouses atomic.Int32
	// Layout constants per warehouse.
	districts int
	customers int
	stock     int
}

// TPCCRecordsPerWarehouse is the record-space footprint of one warehouse.
const TPCCRecordsPerWarehouse = 1 + 10 + 3000 + 1000

// Transaction type ids.
const (
	TPCCNewOrder = 0
	TPCCPayment  = 1
)

// NewTPCC creates a generator starting with w warehouses.
func NewTPCC(w int) *TPCC {
	t := &TPCC{districts: 10, customers: 3000, stock: 1000}
	t.SetWarehouses(w)
	return t
}

// SetWarehouses switches the active warehouse count (workload drift).
func (t *TPCC) SetWarehouses(w int) {
	if w < 1 {
		w = 1
	}
	t.warehouses.Store(int32(w))
}

// Warehouses returns the active warehouse count.
func (t *TPCC) Warehouses() int { return int(t.warehouses.Load()) }

// StoreSize returns the record count needed for up to maxWarehouses.
func StoreSize(maxWarehouses int) int { return maxWarehouses * TPCCRecordsPerWarehouse }

func (t *TPCC) base(w int) int { return w * TPCCRecordsPerWarehouse }

// Generate implements cc.Generator: 50/50 NewOrder / Payment.
func (t *TPCC) Generate(r *rand.Rand, txn *cc.Txn) {
	w := r.Intn(t.Warehouses())
	base := t.base(w)
	txn.Ops = txn.Ops[:0]
	if r.Intn(2) == 0 {
		// NewOrder: read warehouse tax, bump district next-order-id (hot),
		// read customer, update 5 distinct stock rows.
		txn.Type = TPCCNewOrder
		d := r.Intn(t.districts)
		c := r.Intn(t.customers)
		txn.Ops = append(txn.Ops,
			cc.Op{Key: base, Write: false},                  // warehouse
			cc.Op{Key: base + 1 + d, Write: true, Delta: 1}, // district counter
			cc.Op{Key: base + 11 + c, Write: false},         // customer
		)
		seen := map[int]bool{}
		for i := 0; i < 5; i++ {
			var s int
			for {
				s = base + 11 + t.customers + r.Intn(t.stock)
				if !seen[s] {
					seen[s] = true
					break
				}
			}
			txn.Ops = append(txn.Ops, cc.Op{Key: s, Write: true, Delta: -1})
		}
	} else {
		// Payment: bump warehouse YTD (very hot), district YTD, customer
		// balance.
		txn.Type = TPCCPayment
		d := r.Intn(t.districts)
		c := r.Intn(t.customers)
		txn.Ops = append(txn.Ops,
			cc.Op{Key: base, Write: true, Delta: 10},         // warehouse YTD
			cc.Op{Key: base + 1 + d, Write: true, Delta: 10}, // district YTD
			cc.Op{Key: base + 11 + c, Write: true, Delta: -10},
		)
	}
}

// MaxOps is the maximum operation count per transaction (Polyjuice table
// sizing).
const MaxOps = 8
