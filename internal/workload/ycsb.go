package workload

import (
	"math"
	"math/rand"

	"neurdb/internal/cc"
)

// YCSB generates the paper's micro-benchmark transactions: 5 selects and 5
// updates per transaction over a table of Records rows, with Zipfian key
// skew (Cooper et al., SoCC'10). Keys within a transaction are distinct.
type YCSB struct {
	Records int
	Theta   float64 // Zipfian skew (0 = uniform; 0.99 = standard hot-spot)
	zeta    float64 // precomputed zeta(Records, Theta)
	zeta2   float64
	alpha   float64
	eta     float64
}

// NewYCSB creates a generator over n records with the given skew.
func NewYCSB(n int, theta float64) *YCSB {
	y := &YCSB{Records: n, Theta: theta}
	if theta > 0 {
		y.zeta = zetaStatic(n, theta)
		y.zeta2 = zetaStatic(2, theta)
		y.alpha = 1 / (1 - theta)
		y.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - y.zeta2/y.zeta)
	}
	return y
}

// zetaStatic computes the generalized harmonic number.
func zetaStatic(n int, theta float64) float64 {
	var sum float64
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Key draws one Zipfian-distributed key in [0, Records).
func (y *YCSB) Key(r *rand.Rand) int {
	if y.Theta <= 0 {
		return r.Intn(y.Records)
	}
	u := r.Float64()
	uz := u * y.zeta
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, y.Theta) {
		return 1
	}
	return int(float64(y.Records) * math.Pow(y.eta*u-y.eta+1, y.alpha))
}

// Generate implements cc.Generator: 5 reads + 5 writes on distinct keys.
func (y *YCSB) Generate(r *rand.Rand, txn *cc.Txn) {
	txn.Type = 0
	txn.Ops = txn.Ops[:0]
	seen := make(map[int]bool, 10)
	pick := func() int {
		for {
			k := y.Key(r)
			if k >= y.Records {
				k = y.Records - 1
			}
			if !seen[k] {
				seen[k] = true
				return k
			}
		}
	}
	for i := 0; i < 5; i++ {
		txn.Ops = append(txn.Ops, cc.Op{Key: pick(), Write: false})
	}
	for i := 0; i < 5; i++ {
		txn.Ops = append(txn.Ops, cc.Op{Key: pick(), Write: true, Delta: 1})
	}
}
