package workload

import (
	"fmt"
	"math"
	"math/rand"

	"neurdb/internal/rel"
)

// DriftLevel selects the drift intensity for the STATS workload (Fig. 8's
// three panels: original, mild drift, severe drift).
type DriftLevel int

// Drift levels.
const (
	DriftNone DriftLevel = iota
	DriftMild
	DriftSevere
)

// String names the level like the paper's panels.
func (d DriftLevel) String() string {
	switch d {
	case DriftMild:
		return "STATS w. Mild Drift"
	case DriftSevere:
		return "STATS w. Severe Drift"
	default:
		return "Original STATS"
	}
}

// StatsTableDef describes one table of the STATS-like schema.
type StatsTableDef struct {
	Name string
	Cols []rel.Column
	// IndexCols are columns that get B-trees (primary/FK columns).
	IndexCols []string
}

// Stats is a synthetic Stack-Exchange-like workload: the 8 tables of the
// STATS benchmark with FK join structure, skewed value distributions, 8 SPJ
// query templates, and drift generators following ALECE's protocol
// (inserts/updates/deletes with shifted value distributions).
type Stats struct {
	Scale int // rows multiplier; 1 ≈ 36k rows total
	seed  int64
}

// NewStats creates the workload at the given scale.
func NewStats(scale int, seed int64) *Stats {
	if scale < 1 {
		scale = 1
	}
	return &Stats{Scale: scale, seed: seed}
}

func intCol(name string) rel.Column { return rel.Column{Name: name, Typ: rel.TypeInt} }

// Tables returns the schema.
func (s *Stats) Tables() []StatsTableDef {
	return []StatsTableDef{
		{Name: "users", Cols: []rel.Column{intCol("id"), intCol("reputation"), intCol("upvotes"), intCol("downvotes")}, IndexCols: []string{"id"}},
		{Name: "posts", Cols: []rel.Column{intCol("id"), intCol("owneruserid"), intCol("score"), intCol("viewcount"), intCol("answercount")}, IndexCols: []string{"id", "owneruserid"}},
		{Name: "comments", Cols: []rel.Column{intCol("id"), intCol("postid"), intCol("userid"), intCol("score")}, IndexCols: []string{"postid", "userid"}},
		{Name: "votes", Cols: []rel.Column{intCol("id"), intCol("postid"), intCol("userid"), intCol("votetypeid")}, IndexCols: []string{"postid"}},
		{Name: "badges", Cols: []rel.Column{intCol("id"), intCol("userid"), intCol("class")}, IndexCols: []string{"userid"}},
		{Name: "posthistory", Cols: []rel.Column{intCol("id"), intCol("postid"), intCol("userid"), intCol("typeid")}, IndexCols: []string{"postid"}},
		{Name: "postlinks", Cols: []rel.Column{intCol("id"), intCol("postid"), intCol("relatedpostid"), intCol("linktypeid")}, IndexCols: []string{"postid"}},
		{Name: "tags", Cols: []rel.Column{intCol("id"), intCol("excerptpostid"), intCol("count")}, IndexCols: []string{"excerptpostid"}},
	}
}

// counts returns base row counts per table at this scale.
func (s *Stats) counts() map[string]int {
	k := s.Scale
	return map[string]int{
		"users":       2000 * k,
		"posts":       5000 * k,
		"comments":    8000 * k,
		"votes":       10000 * k,
		"badges":      3000 * k,
		"posthistory": 6000 * k,
		"postlinks":   1500 * k,
		"tags":        500 * k,
	}
}

// zipfInt draws a skewed value in [0, n): small values are hot.
func zipfInt(r *rand.Rand, n int, skew float64) int {
	u := r.Float64()
	v := int(float64(n) * pow(u, skew))
	if v >= n {
		v = n - 1
	}
	return v
}

func pow(x, p float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, p)
}

// Rows generates the initial data for one table.
func (s *Stats) Rows(table string) []rel.Row {
	n := s.counts()[table]
	r := rand.New(rand.NewSource(s.seed + int64(len(table))*1009))
	users := s.counts()["users"]
	posts := s.counts()["posts"]
	out := make([]rel.Row, n)
	for i := 0; i < n; i++ {
		switch table {
		case "users":
			out[i] = rel.Row{
				rel.Int(int64(i)),
				rel.Int(int64(zipfInt(r, 10000, 3))), // reputation: skewed low
				rel.Int(int64(zipfInt(r, 500, 2))),
				rel.Int(int64(zipfInt(r, 100, 2))),
			}
		case "posts":
			out[i] = rel.Row{
				rel.Int(int64(i)),
				rel.Int(int64(zipfInt(r, users, 2))), // owners skewed: power users
				rel.Int(int64(r.Intn(100))),          // score uniform 0..99
				rel.Int(int64(zipfInt(r, 20000, 3))), // viewcount skewed
				rel.Int(int64(r.Intn(10))),
			}
		case "comments":
			out[i] = rel.Row{
				rel.Int(int64(i)),
				rel.Int(int64(zipfInt(r, posts, 2))), // hot posts get comments
				rel.Int(int64(zipfInt(r, users, 2))),
				rel.Int(int64(zipfInt(r, 20, 2))),
			}
		case "votes":
			out[i] = rel.Row{
				rel.Int(int64(i)),
				rel.Int(int64(zipfInt(r, posts, 2))),
				rel.Int(int64(zipfInt(r, users, 1.5))),
				rel.Int(int64(1 + zipfInt(r, 10, 3))), // votetype: 2 dominates-ish
			}
		case "badges":
			out[i] = rel.Row{
				rel.Int(int64(i)),
				rel.Int(int64(zipfInt(r, users, 1.5))),
				rel.Int(int64(1 + r.Intn(3))),
			}
		case "posthistory":
			out[i] = rel.Row{
				rel.Int(int64(i)),
				rel.Int(int64(zipfInt(r, posts, 2))),
				rel.Int(int64(zipfInt(r, users, 2))),
				rel.Int(int64(1 + r.Intn(6))),
			}
		case "postlinks":
			out[i] = rel.Row{
				rel.Int(int64(i)),
				rel.Int(int64(zipfInt(r, posts, 2))),
				rel.Int(int64(r.Intn(posts))),
				rel.Int(int64(1 + r.Intn(3))),
			}
		case "tags":
			out[i] = rel.Row{
				rel.Int(int64(i)),
				rel.Int(int64(r.Intn(posts))),
				rel.Int(int64(zipfInt(r, 5000, 3))),
			}
		}
	}
	return out
}

// Queries returns the 8 SPJ query templates (paper: "randomly select 8 SPJ
// queries provided by STATS datasets").
func (s *Stats) Queries() []string {
	return []string{
		// Q1: 2-way FK join with selective filters on both sides.
		`SELECT COUNT(*) FROM users u, posts p WHERE u.id = p.owneruserid AND u.reputation > 500 AND p.score > 50`,
		// Q2: users × badges.
		`SELECT COUNT(*) FROM users u, badges b WHERE u.id = b.userid AND u.upvotes > 50 AND b.class = 1`,
		// Q3: posts × comments with a cold filter.
		`SELECT COUNT(*) FROM posts p, comments c WHERE p.id = c.postid AND c.score = 0 AND p.viewcount > 1000`,
		// Q4: 3-way users × posts × comments.
		`SELECT COUNT(*) FROM users u, posts p, comments c WHERE u.id = p.owneruserid AND p.id = c.postid AND u.reputation > 100 AND p.score > 20`,
		// Q5: posts × votes with a hot filter.
		`SELECT COUNT(*) FROM posts p, votes v WHERE p.id = v.postid AND v.votetypeid = 2 AND p.score > 80`,
		// Q6: 3-way users × comments × badges.
		`SELECT COUNT(*) FROM users u, comments c, badges b WHERE u.id = c.userid AND u.id = b.userid AND c.score > 5 AND b.class = 2`,
		// Q7: 3-way posts × posthistory × votes.
		`SELECT COUNT(*) FROM posts p, posthistory h, votes v WHERE p.id = h.postid AND p.id = v.postid AND h.typeid = 2 AND p.answercount > 3`,
		// Q8: 4-way users × posts × comments × votes.
		`SELECT COUNT(*) FROM users u, posts p, comments c, votes v WHERE u.id = p.owneruserid AND p.id = c.postid AND p.id = v.postid AND u.reputation > 1000 AND p.score > 60`,
	}
}

// DriftInserts returns extra rows whose value distributions are shifted —
// mild drift adds ~20% skew-shifted rows to the fact tables; severe drift
// adds 1-2× rows with inverted hot ranges so selectivities and join
// cardinalities change drastically.
func (s *Stats) DriftInserts(table string, level DriftLevel) []rel.Row {
	if level == DriftNone {
		return nil
	}
	counts := s.counts()
	n := counts[table]
	users := counts["users"]
	posts := counts["posts"]
	r := rand.New(rand.NewSource(s.seed*31 + int64(len(table))*7 + int64(level)))
	var frac float64
	switch level {
	case DriftMild:
		frac = 0.2
	case DriftSevere:
		frac = 1.2
	}
	extra := int(float64(n) * frac)
	out := make([]rel.Row, 0, extra)
	for i := 0; i < extra; i++ {
		id := int64(n + i)
		switch table {
		case "posts":
			// Drifted posts: high scores dominate; owners are cold users.
			score := 50 + r.Intn(50)
			if level == DriftSevere {
				score = 80 + r.Intn(20)
			}
			owner := users - 1 - zipfInt(r, users, 2) // invert owner skew
			out = append(out, rel.Row{
				rel.Int(id), rel.Int(int64(owner)), rel.Int(int64(score)),
				rel.Int(int64(r.Intn(2000))), rel.Int(int64(5 + r.Intn(5))),
			})
		case "votes":
			// Drifted votes: new vote types, cold posts become hot.
			vt := 1 + r.Intn(10)
			if level == DriftSevere {
				vt = 2 // everything becomes votetype 2
			}
			post := posts - 1 - zipfInt(r, posts, 2)
			out = append(out, rel.Row{
				rel.Int(id), rel.Int(int64(post)),
				rel.Int(int64(r.Intn(users))), rel.Int(int64(vt)),
			})
		case "comments":
			// Drifted comments: scores shift upward.
			score := zipfInt(r, 20, 2)
			if level == DriftSevere {
				score = 6 + r.Intn(14)
			}
			out = append(out, rel.Row{
				rel.Int(id), rel.Int(int64(posts - 1 - zipfInt(r, posts, 2))),
				rel.Int(int64(r.Intn(users))), rel.Int(int64(score)),
			})
		case "users":
			// New cohort with high reputation (severe only).
			if level != DriftSevere {
				return out
			}
			out = append(out, rel.Row{
				rel.Int(id), rel.Int(int64(2000 + r.Intn(8000))),
				rel.Int(int64(100 + r.Intn(400))), rel.Int(int64(r.Intn(100))),
			})
		default:
			return out
		}
	}
	return out
}

// DriftDeletes returns WHERE clauses deleting old hot rows under severe
// drift (completing the insert/update/delete protocol).
func (s *Stats) DriftDeletes(level DriftLevel) map[string]string {
	if level != DriftSevere {
		return nil
	}
	return map[string]string{
		"votes":    fmt.Sprintf("id < %d", s.counts()["votes"]/4),
		"comments": fmt.Sprintf("id < %d", s.counts()["comments"]/5),
	}
}
