package workload

import (
	"math"
	"math/rand"

	"neurdb/internal/nn"
	"neurdb/internal/rel"
)

// DiabetesFields is the attribute count of the scaled UCI Diabetes dataset
// the paper uses (~43 attributes).
const DiabetesFields = 43

// DiabetesBuckets is the per-field bucketization granularity for ARM-Net.
const DiabetesBuckets = 32

// Diabetes generates a diabetes-progression-style classification workload
// (Workload H): 43 numeric attributes with a sparse logistic ground truth
// for the binary `outcome` label.
type Diabetes struct {
	weights [DiabetesFields]float64
	bias    float64
	rng     *rand.Rand
}

// NewDiabetes creates a deterministic generator.
func NewDiabetes(seed int64) *Diabetes {
	d := &Diabetes{rng: rand.New(rand.NewSource(seed))}
	setup := rand.New(rand.NewSource(seed * 104729))
	for f := range d.weights {
		// Sparse signal: a third of the attributes carry most information.
		if setup.Intn(3) == 0 {
			d.weights[f] = setup.NormFloat64() * 2
		} else {
			d.weights[f] = setup.NormFloat64() * 0.2
		}
	}
	d.bias = -0.1
	return d
}

// Row generates one record: 43 float attributes in [0, 1] plus the binary
// outcome.
func (d *Diabetes) Row() rel.Row {
	row := make(rel.Row, DiabetesFields+1)
	z := d.bias
	for f := 0; f < DiabetesFields; f++ {
		v := d.rng.Float64()
		row[f] = rel.Float(v)
		z += d.weights[f] * (v - 0.5)
	}
	p := 1 / (1 + math.Exp(-z))
	outcome := int64(0)
	if d.rng.Float64() < p {
		outcome = 1
	}
	row[DiabetesFields] = rel.Int(outcome)
	return row
}

// Batch generates n records.
func (d *Diabetes) Batch(n int) []rel.Row {
	out := make([]rel.Row, n)
	for i := range out {
		out[i] = d.Row()
	}
	return out
}

// DiabetesSource is a finite RowBatchSource over the generator.
type DiabetesSource struct {
	gen       *Diabetes
	batchSize int
	remaining int
}

// NewSource creates a finite batch stream.
func (d *Diabetes) NewSource(batchSize, totalBatches int) *DiabetesSource {
	return &DiabetesSource{gen: d, batchSize: batchSize, remaining: totalBatches}
}

// Next implements aiengine.RowBatchSource.
func (s *DiabetesSource) Next() ([]rel.Row, bool) {
	if s.remaining <= 0 {
		return nil, false
	}
	s.remaining--
	return s.gen.Batch(s.batchSize), true
}

// DiabetesFeaturizer bucketizes the numeric attributes into per-field ids
// for the ARM-Net embedding and extracts the binary label.
func DiabetesFeaturizer(rows []rel.Row) (*nn.Matrix, *nn.Matrix) {
	x := nn.NewMatrix(len(rows), DiabetesFields)
	y := nn.NewMatrix(len(rows), 1)
	for i, row := range rows {
		for f := 0; f < DiabetesFields; f++ {
			v := row[f].AsFloat()
			b := int(v * DiabetesBuckets)
			if b < 0 {
				b = 0
			}
			if b >= DiabetesBuckets {
				b = DiabetesBuckets - 1
			}
			x.Set(i, f, float64(f*DiabetesBuckets+b))
		}
		y.Set(i, 0, row[DiabetesFields].AsFloat())
	}
	return x, y
}

// DiabetesTotalVocab is the embedding vocabulary for the featurizer.
const DiabetesTotalVocab = DiabetesFields * DiabetesBuckets
