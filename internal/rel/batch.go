package rel

// Batch is a reusable container of rows passed between vectorized executor
// operators. Operators fill a caller-supplied Batch so the hot read path
// performs one dynamic dispatch per batch instead of one per row; the Rows
// slice (of row references) is recycled across calls, while the rows placed
// in it must remain valid after subsequent refills — producers either pass
// through storage-owned rows or allocate fresh ones.
type Batch struct {
	Rows []Row
}

// NewBatch returns an empty batch with the given row capacity.
func NewBatch(capacity int) *Batch {
	return &Batch{Rows: make([]Row, 0, capacity)}
}

// Reset empties the batch, keeping its capacity.
func (b *Batch) Reset() { b.Rows = b.Rows[:0] }

// Len returns the number of rows currently in the batch.
func (b *Batch) Len() int { return len(b.Rows) }

// Append adds a row to the batch.
func (b *Batch) Append(r Row) { b.Rows = append(b.Rows, r) }

// Truncate shortens the batch to its first n rows. It is a no-op when the
// batch already holds n or fewer; LIMIT uses it to slice a final partial
// batch without copying.
func (b *Batch) Truncate(n int) {
	if n < 0 {
		n = 0
	}
	if n < len(b.Rows) {
		b.Rows = b.Rows[:n]
	}
}
