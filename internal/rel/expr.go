package rel

import (
	"fmt"
	"math"
	"strings"
)

// BinOpKind enumerates binary operators in bound expressions.
type BinOpKind uint8

// Binary operators.
const (
	OpEq BinOpKind = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
)

// String returns the SQL spelling of the operator.
func (k BinOpKind) String() string {
	switch k {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	default:
		return "?"
	}
}

// Expr is a bound (column-index-resolved) expression evaluated against rows.
type Expr interface {
	// Eval computes the expression over the row.
	Eval(Row) Value
	// String renders the expression for EXPLAIN output.
	String() string
}

// ColRef references a column by position.
type ColRef struct {
	Idx  int
	Name string // for display only
}

// Eval implements Expr.
func (c *ColRef) Eval(r Row) Value { return r[c.Idx] }

// String implements Expr.
func (c *ColRef) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("#%d", c.Idx)
}

// Const is a literal value.
type Const struct{ Val Value }

// Eval implements Expr.
func (c *Const) Eval(Row) Value { return c.Val }

// String implements Expr.
func (c *Const) String() string {
	if c.Val.Typ == TypeText {
		return "'" + c.Val.S + "'"
	}
	return c.Val.String()
}

// Param is a query-parameter placeholder in a bound expression. Plans keep
// Params in their expression trees so a prepared statement can be planned
// once and executed many times; SubstParams (and plan.BindParams above it)
// replace every Param with the call's argument value before execution.
// Eval on an unsubstituted Param yields NULL — executors must only ever see
// substituted trees.
type Param struct {
	Idx int // zero-based parameter ordinal
}

// Eval implements Expr. Params are substituted before execution; an
// unbound one evaluates to NULL rather than panicking.
func (p *Param) Eval(Row) Value { return Null() }

// String implements Expr using the $n spelling.
func (p *Param) String() string { return fmt.Sprintf("$%d", p.Idx+1) }

// HasParams reports whether the expression tree references any parameter.
func HasParams(e Expr) bool {
	switch t := e.(type) {
	case nil:
		return false
	case *Param:
		return true
	case *BinOp:
		return HasParams(t.L) || HasParams(t.R)
	case *Not:
		return HasParams(t.E)
	case *IsNullExpr:
		return HasParams(t.E)
	case *InList:
		return HasParams(t.E)
	default:
		return false
	}
}

// SubstParams returns the expression with every Param replaced by the
// corresponding argument value as a Const. Expressions without parameters
// are returned unchanged (no copy), so shared cached plans stay untouched.
// Out-of-range ordinals substitute NULL; callers validate argument counts
// up front.
func SubstParams(e Expr, args []Value) Expr {
	if e == nil || !HasParams(e) {
		return e
	}
	switch t := e.(type) {
	case *Param:
		if t.Idx >= 0 && t.Idx < len(args) {
			return &Const{Val: args[t.Idx]}
		}
		return &Const{Val: Null()}
	case *BinOp:
		return &BinOp{Kind: t.Kind, L: SubstParams(t.L, args), R: SubstParams(t.R, args)}
	case *Not:
		return &Not{E: SubstParams(t.E, args)}
	case *IsNullExpr:
		return &IsNullExpr{E: SubstParams(t.E, args), Negate: t.Negate}
	case *InList:
		return &InList{E: SubstParams(t.E, args), List: t.List}
	default:
		return e
	}
}

// BinOp applies a binary operator to two sub-expressions.
type BinOp struct {
	Kind BinOpKind
	L, R Expr
}

// Eval implements Expr with SQL three-valued-ish semantics: comparisons with
// NULL yield false, arithmetic with NULL yields NULL.
func (b *BinOp) Eval(r Row) Value {
	l := b.L.Eval(r)
	rv := b.R.Eval(r)
	switch b.Kind {
	case OpAnd:
		return Bool(l.AsBool() && rv.AsBool())
	case OpOr:
		return Bool(l.AsBool() || rv.AsBool())
	}
	if l.IsNull() || rv.IsNull() {
		switch b.Kind {
		case OpAdd, OpSub, OpMul, OpDiv, OpMod:
			return Null()
		default:
			return Bool(false)
		}
	}
	switch b.Kind {
	case OpEq:
		return Bool(Compare(l, rv) == 0)
	case OpNe:
		return Bool(Compare(l, rv) != 0)
	case OpLt:
		return Bool(Compare(l, rv) < 0)
	case OpLe:
		return Bool(Compare(l, rv) <= 0)
	case OpGt:
		return Bool(Compare(l, rv) > 0)
	case OpGe:
		return Bool(Compare(l, rv) >= 0)
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		return arith(b.Kind, l, rv)
	default:
		return Null()
	}
}

func arith(k BinOpKind, l, r Value) Value {
	if l.Typ == TypeInt && r.Typ == TypeInt {
		switch k {
		case OpAdd:
			return Int(l.I + r.I)
		case OpSub:
			return Int(l.I - r.I)
		case OpMul:
			return Int(l.I * r.I)
		case OpDiv:
			if r.I == 0 {
				return Null()
			}
			return Int(l.I / r.I)
		case OpMod:
			if r.I == 0 {
				return Null()
			}
			return Int(l.I % r.I)
		}
	}
	lf, rf := l.AsFloat(), r.AsFloat()
	switch k {
	case OpAdd:
		return Float(lf + rf)
	case OpSub:
		return Float(lf - rf)
	case OpMul:
		return Float(lf * rf)
	case OpDiv:
		if rf == 0 {
			return Null()
		}
		return Float(lf / rf)
	case OpMod:
		if rf == 0 {
			return Null()
		}
		return Float(math.Mod(lf, rf))
	}
	return Null()
}

// String implements Expr.
func (b *BinOp) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Kind, b.R)
}

// Not negates a boolean sub-expression.
type Not struct{ E Expr }

// Eval implements Expr.
func (n *Not) Eval(r Row) Value { return Bool(!n.E.Eval(r).AsBool()) }

// String implements Expr.
func (n *Not) String() string { return "NOT " + n.E.String() }

// IsNullExpr tests a sub-expression for NULL (IS NULL / IS NOT NULL).
type IsNullExpr struct {
	E      Expr
	Negate bool
}

// Eval implements Expr.
func (e *IsNullExpr) Eval(r Row) Value {
	isNull := e.E.Eval(r).IsNull()
	if e.Negate {
		return Bool(!isNull)
	}
	return Bool(isNull)
}

// String implements Expr.
func (e *IsNullExpr) String() string {
	if e.Negate {
		return e.E.String() + " IS NOT NULL"
	}
	return e.E.String() + " IS NULL"
}

// InList tests membership of a sub-expression in a literal list.
type InList struct {
	E    Expr
	List []Value
}

// Eval implements Expr.
func (e *InList) Eval(r Row) Value {
	v := e.E.Eval(r)
	for _, item := range e.List {
		if Equal(v, item) {
			return Bool(true)
		}
	}
	return Bool(false)
}

// String implements Expr.
func (e *InList) String() string {
	parts := make([]string, len(e.List))
	for i, v := range e.List {
		parts[i] = v.String()
	}
	return fmt.Sprintf("%s IN (%s)", e.E, strings.Join(parts, ", "))
}

// SplitConjuncts flattens nested ANDs into a conjunct list; useful for
// predicate pushdown and selectivity estimation.
func SplitConjuncts(e Expr) []Expr {
	b, ok := e.(*BinOp)
	if !ok || b.Kind != OpAnd {
		return []Expr{e}
	}
	return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
}

// CombineConjuncts joins expressions with AND; nil for an empty list.
func CombineConjuncts(es []Expr) Expr {
	var out Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &BinOp{Kind: OpAnd, L: out, R: e}
		}
	}
	return out
}

// ReferencedCols collects the column indexes referenced by the expression.
func ReferencedCols(e Expr, out map[int]bool) {
	switch t := e.(type) {
	case *ColRef:
		out[t.Idx] = true
	case *Const:
	case *BinOp:
		ReferencedCols(t.L, out)
		ReferencedCols(t.R, out)
	case *Not:
		ReferencedCols(t.E, out)
	case *IsNullExpr:
		ReferencedCols(t.E, out)
	case *InList:
		ReferencedCols(t.E, out)
	}
}

// ShiftCols returns a copy of the expression with every column index shifted
// by delta; used when splitting join predicates across inputs.
func ShiftCols(e Expr, delta int) Expr {
	switch t := e.(type) {
	case *ColRef:
		return &ColRef{Idx: t.Idx + delta, Name: t.Name}
	case *Const:
		return t
	case *BinOp:
		return &BinOp{Kind: t.Kind, L: ShiftCols(t.L, delta), R: ShiftCols(t.R, delta)}
	case *Not:
		return &Not{E: ShiftCols(t.E, delta)}
	case *IsNullExpr:
		return &IsNullExpr{E: ShiftCols(t.E, delta), Negate: t.Negate}
	case *InList:
		return &InList{E: ShiftCols(t.E, delta), List: t.List}
	default:
		return e
	}
}

// MapCols returns a copy of the expression with every column index rewritten
// through f; used to retarget predicates when join trees permute column
// layouts.
func MapCols(e Expr, f func(int) int) Expr {
	switch t := e.(type) {
	case *ColRef:
		return &ColRef{Idx: f(t.Idx), Name: t.Name}
	case *Const:
		return t
	case *BinOp:
		return &BinOp{Kind: t.Kind, L: MapCols(t.L, f), R: MapCols(t.R, f)}
	case *Not:
		return &Not{E: MapCols(t.E, f)}
	case *IsNullExpr:
		return &IsNullExpr{E: MapCols(t.E, f), Negate: t.Negate}
	case *InList:
		return &InList{E: MapCols(t.E, f), List: t.List}
	default:
		return e
	}
}
