// Package rel defines the relational data model shared across the engine:
// typed values, schemas, rows, comparison semantics, and a compact binary
// row codec used by the storage layer and the AI streaming protocol.
package rel

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Type identifies the type of a Value.
//
//lint:closedenum
type Type uint8

// Supported column types. The engine is deliberately small: integers,
// floats, text and booleans cover every workload in the paper's evaluation.
const (
	TypeNull Type = iota
	TypeInt
	TypeFloat
	TypeText
	TypeBool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return "BIGINT"
	case TypeFloat:
		return "DOUBLE"
	case TypeText:
		return "TEXT"
	case TypeBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Value is a single typed datum. The zero Value is NULL.
type Value struct {
	Typ Type
	I   int64
	F   float64
	S   string
	B   bool
}

// Null returns the NULL value.
func Null() Value { return Value{Typ: TypeNull} }

// Int wraps an int64 as a Value.
func Int(v int64) Value { return Value{Typ: TypeInt, I: v} }

// Float wraps a float64 as a Value.
func Float(v float64) Value { return Value{Typ: TypeFloat, F: v} }

// Text wraps a string as a Value.
func Text(v string) Value { return Value{Typ: TypeText, S: v} }

// Bool wraps a bool as a Value.
func Bool(v bool) Value { return Value{Typ: TypeBool, B: v} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Typ == TypeNull }

// FromGo converts a native Go value into an engine Value — the single
// parameter-conversion table shared by the embedded client API and the wire
// driver, so the same Go program binds identically in-process and over TCP.
// []byte and time.Time arrive as TEXT (RFC 3339 for times); unsigned values
// that overflow int64 are rejected rather than wrapped.
func FromGo(a any) (Value, error) {
	switch v := a.(type) {
	case nil:
		return Null(), nil
	case Value:
		return v, nil
	case int:
		return Int(int64(v)), nil
	case int8:
		return Int(int64(v)), nil
	case int16:
		return Int(int64(v)), nil
	case int32:
		return Int(int64(v)), nil
	case int64:
		return Int(v), nil
	case uint:
		if uint64(v) > math.MaxInt64 {
			return Value{}, fmt.Errorf("uint parameter %d overflows int64", v)
		}
		return Int(int64(v)), nil
	case uint8:
		return Int(int64(v)), nil
	case uint16:
		return Int(int64(v)), nil
	case uint32:
		return Int(int64(v)), nil
	case uint64:
		if v > math.MaxInt64 {
			return Value{}, fmt.Errorf("uint64 parameter %d overflows int64", v)
		}
		return Int(int64(v)), nil
	case float32:
		return Float(float64(v)), nil
	case float64:
		return Float(v), nil
	case string:
		return Text(v), nil
	case []byte:
		return Text(string(v)), nil
	case bool:
		return Bool(v), nil
	case time.Time:
		return Text(v.Format(time.RFC3339Nano)), nil
	default:
		return Value{}, fmt.Errorf("unsupported parameter type %T", a)
	}
}

// AsFloat converts numeric and boolean values to float64; text parses if
// possible. It is the canonical featurization path for AI operators.
func (v Value) AsFloat() float64 {
	switch v.Typ {
	case TypeInt:
		return float64(v.I)
	case TypeFloat:
		return v.F
	case TypeBool:
		if v.B {
			return 1
		}
		return 0
	case TypeText:
		f, err := strconv.ParseFloat(v.S, 64)
		if err != nil {
			return 0
		}
		return f
	default:
		return 0
	}
}

// AsInt converts the value to an int64 using truncation semantics.
func (v Value) AsInt() int64 {
	switch v.Typ {
	case TypeInt:
		return v.I
	case TypeFloat:
		return int64(v.F)
	case TypeBool:
		if v.B {
			return 1
		}
		return 0
	case TypeText:
		i, err := strconv.ParseInt(v.S, 10, 64)
		if err != nil {
			return 0
		}
		return i
	default:
		return 0
	}
}

// AsBool converts the value to a boolean; non-zero numerics are true.
func (v Value) AsBool() bool {
	switch v.Typ {
	case TypeBool:
		return v.B
	case TypeInt:
		return v.I != 0
	case TypeFloat:
		return v.F != 0
	case TypeText:
		return v.S == "true" || v.S == "t" || v.S == "1"
	default:
		return false
	}
}

// GoValue returns the value's native Go representation (nil, int64,
// float64, string or bool) — the inverse of FromGo for scan results.
func (v Value) GoValue() any {
	switch v.Typ {
	case TypeInt:
		return v.I
	case TypeFloat:
		return v.F
	case TypeText:
		return v.S
	case TypeBool:
		return v.B
	default:
		return nil
	}
}

// Assign copies the value into a Scan target — the single conversion table
// shared by the embedded cursor and the wire client, so Scan behaves
// identically in-process and over TCP. Supported targets: *Value, *any,
// *int, *int64, *float64, *string, *bool. SQL NULL assigns the target's
// zero value (nil for *any).
func Assign(dest any, v Value) error {
	switch d := dest.(type) {
	case *Value:
		*d = v
	case *any:
		*d = v.GoValue()
	case *int64:
		*d = v.AsInt()
	case *int:
		*d = int(v.AsInt())
	case *float64:
		*d = v.AsFloat()
	case *string:
		if v.IsNull() {
			*d = ""
		} else {
			*d = v.String()
		}
	case *bool:
		*d = v.AsBool()
	default:
		return fmt.Errorf("unsupported Scan target %T", dest)
	}
	return nil
}

// String renders the value the way the CLI prints it.
func (v Value) String() string {
	switch v.Typ {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TypeText:
		return v.S
	case TypeBool:
		if v.B {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// typeClass buckets types so Compare is a total order: NULL sorts before
// every numeric (int/float/bool compare by value) which sorts before text.
func typeClass(t Type) int {
	switch t {
	case TypeNull:
		return 0
	case TypeInt, TypeFloat, TypeBool:
		return 1
	default:
		return 2
	}
}

// Compare orders two values. NULL sorts first; int/float/bool compare
// numerically by value; text compares lexicographically; the classes
// themselves are ordered NULL < numeric < text so Compare is a total order.
func Compare(a, b Value) int {
	ca, cb := typeClass(a.Typ), typeClass(b.Typ)
	if ca != cb {
		if ca < cb {
			return -1
		}
		return 1
	}
	switch ca {
	case 0:
		return 0
	case 1:
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	default:
		return strings.Compare(a.S, b.S)
	}
}

// Equal reports whether two values compare equal. NULL never equals NULL
// under SQL semantics; use Compare for ordering semantics instead.
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	return Compare(a, b) == 0
}

func isNumeric(t Type) bool { return t == TypeInt || t == TypeFloat || t == TypeBool }

// Hash returns a 64-bit hash of the value, used by hash joins and the hash
// index. Numerically equal int/float values hash identically.
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	switch v.Typ {
	case TypeNull:
		mix(0)
	case TypeInt, TypeFloat, TypeBool:
		f := v.AsFloat()
		if f == 0 {
			f = 0 // normalize -0
		}
		bits := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			mix(byte(bits >> (8 * i)))
		}
	case TypeText:
		mix(4)
		for i := 0; i < len(v.S); i++ {
			mix(v.S[i])
		}
	}
	return h
}

// EncodeValue appends a self-delimiting binary encoding of v to dst.
func EncodeValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.Typ))
	switch v.Typ {
	case TypeNull:
		// The tag byte alone: NULL carries no payload.
	case TypeInt:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v.I))
		dst = append(dst, buf[:]...)
	case TypeFloat:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.F))
		dst = append(dst, buf[:]...)
	case TypeText:
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], uint32(len(v.S)))
		dst = append(dst, buf[:]...)
		dst = append(dst, v.S...)
	case TypeBool:
		if v.B {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// DecodeValue decodes a value produced by EncodeValue, returning the value
// and the number of bytes consumed.
func DecodeValue(src []byte) (Value, int, error) {
	if len(src) == 0 {
		return Value{}, 0, fmt.Errorf("rel: decode value: empty input")
	}
	t := Type(src[0])
	rest := src[1:]
	switch t {
	case TypeNull:
		return Null(), 1, nil
	case TypeInt:
		if len(rest) < 8 {
			return Value{}, 0, fmt.Errorf("rel: decode int: short input")
		}
		return Int(int64(binary.LittleEndian.Uint64(rest))), 9, nil
	case TypeFloat:
		if len(rest) < 8 {
			return Value{}, 0, fmt.Errorf("rel: decode float: short input")
		}
		return Float(math.Float64frombits(binary.LittleEndian.Uint64(rest))), 9, nil
	case TypeText:
		if len(rest) < 4 {
			return Value{}, 0, fmt.Errorf("rel: decode text: short input")
		}
		n := int(binary.LittleEndian.Uint32(rest))
		if len(rest) < 4+n {
			return Value{}, 0, fmt.Errorf("rel: decode text: short payload")
		}
		return Text(string(rest[4 : 4+n])), 5 + n, nil
	case TypeBool:
		if len(rest) < 1 {
			return Value{}, 0, fmt.Errorf("rel: decode bool: short input")
		}
		return Bool(rest[0] != 0), 2, nil
	default:
		return Value{}, 0, fmt.Errorf("rel: decode: unknown type tag %d", t)
	}
}
