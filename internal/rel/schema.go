package rel

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name    string
	Typ     Type
	Unique  bool // unique / primary-key constraint; PREDICT TRAIN ON * skips these
	NotNull bool
}

// Schema is an ordered list of columns.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return &Schema{Cols: cols} }

// Arity returns the number of columns.
func (s *Schema) Arity() int { return len(s.Cols) }

// ColIndex returns the index of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Col returns the column at index i.
func (s *Schema) Col(i int) Column { return s.Cols[i] }

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	cols := make([]Column, len(s.Cols))
	copy(cols, s.Cols)
	return &Schema{Cols: cols}
}

// Project returns a schema with only the given column indexes.
func (s *Schema) Project(idx []int) *Schema {
	cols := make([]Column, len(idx))
	for i, j := range idx {
		cols[i] = s.Cols[j]
	}
	return &Schema{Cols: cols}
}

// Concat returns the concatenation of two schemas (join output shape).
func (s *Schema) Concat(o *Schema) *Schema {
	cols := make([]Column, 0, len(s.Cols)+len(o.Cols))
	cols = append(cols, s.Cols...)
	cols = append(cols, o.Cols...)
	return &Schema{Cols: cols}
}

// String renders the schema as "(a BIGINT, b TEXT)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Typ)
	}
	b.WriteByte(')')
	return b.String()
}

// Row is a tuple of values, positionally matching a Schema.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// String renders the row as a comma-separated list.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return strings.Join(parts, ", ")
}

// EncodeRow appends the binary encoding of a row to dst.
func EncodeRow(dst []byte, r Row) []byte {
	var hdr [4]byte
	hdr[0] = byte(len(r))
	hdr[1] = byte(len(r) >> 8)
	hdr[2] = byte(len(r) >> 16)
	hdr[3] = byte(len(r) >> 24)
	dst = append(dst, hdr[:]...)
	for _, v := range r {
		dst = EncodeValue(dst, v)
	}
	return dst
}

// DecodeRow decodes a row produced by EncodeRow, returning the row and the
// number of bytes consumed.
func DecodeRow(src []byte) (Row, int, error) {
	if len(src) < 4 {
		return nil, 0, fmt.Errorf("rel: decode row: short header")
	}
	n := int(src[0]) | int(src[1])<<8 | int(src[2])<<16 | int(src[3])<<24
	if n < 0 || n > 1<<20 {
		return nil, 0, fmt.Errorf("rel: decode row: bad arity %d", n)
	}
	off := 4
	row := make(Row, n)
	for i := 0; i < n; i++ {
		v, used, err := DecodeValue(src[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("rel: decode row col %d: %w", i, err)
		}
		row[i] = v
		off += used
	}
	return row, off, nil
}

// FeatureVector converts a row to a float64 feature vector using the given
// column indexes; NULLs become 0. This is the bridge between relational rows
// and the AI engine's tensors.
func (r Row) FeatureVector(idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = r[j].AsFloat()
	}
	return out
}
