package rel

import (
	"testing"
)

func col(i int) Expr                  { return &ColRef{Idx: i, Name: ""} }
func lit(v Value) Expr                { return &Const{Val: v} }
func bin(k BinOpKind, l, r Expr) Expr { return &BinOp{Kind: k, L: l, R: r} }

func TestBinOpComparisons(t *testing.T) {
	row := Row{Int(5), Float(2.5), Text("abc"), Bool(true), Null()}
	cases := []struct {
		e    Expr
		want bool
	}{
		{bin(OpEq, col(0), lit(Int(5))), true},
		{bin(OpNe, col(0), lit(Int(5))), false},
		{bin(OpLt, col(1), lit(Float(3))), true},
		{bin(OpLe, col(1), lit(Float(2.5))), true},
		{bin(OpGt, col(0), lit(Int(4))), true},
		{bin(OpGe, col(0), lit(Int(6))), false},
		{bin(OpEq, col(2), lit(Text("abc"))), true},
		{bin(OpEq, col(3), lit(Bool(true))), true},
		{bin(OpEq, col(4), lit(Int(0))), false}, // NULL = 0 -> false
		{bin(OpNe, col(4), lit(Int(0))), false}, // NULL <> 0 -> false
		{bin(OpAnd, lit(Bool(true)), lit(Bool(false))), false},
		{bin(OpOr, lit(Bool(true)), lit(Bool(false))), true},
	}
	for i, c := range cases {
		if got := c.e.Eval(row).AsBool(); got != c.want {
			t.Errorf("case %d %s = %v, want %v", i, c.e, got, c.want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	row := Row{Int(7), Int(2), Float(0.5)}
	cases := []struct {
		e    Expr
		want Value
	}{
		{bin(OpAdd, col(0), col(1)), Int(9)},
		{bin(OpSub, col(0), col(1)), Int(5)},
		{bin(OpMul, col(0), col(1)), Int(14)},
		{bin(OpDiv, col(0), col(1)), Int(3)},
		{bin(OpMod, col(0), col(1)), Int(1)},
		{bin(OpAdd, col(0), col(2)), Float(7.5)},
		{bin(OpDiv, col(0), lit(Float(2))), Float(3.5)},
		{bin(OpDiv, col(0), lit(Int(0))), Null()},
		{bin(OpMod, col(0), lit(Int(0))), Null()},
		{bin(OpDiv, col(0), lit(Float(0))), Null()},
		{bin(OpAdd, col(0), lit(Null())), Null()},
		{bin(OpMod, lit(Float(7.5)), lit(Float(2))), Float(1.5)},
	}
	for i, c := range cases {
		got := c.e.Eval(row)
		if got.Typ != c.want.Typ || (got.Typ != TypeNull && Compare(got, c.want) != 0) {
			t.Errorf("case %d %s = %v, want %v", i, c.e, got, c.want)
		}
	}
}

func TestNotIsNullInList(t *testing.T) {
	row := Row{Int(3), Null()}
	if (&Not{E: bin(OpEq, col(0), lit(Int(3)))}).Eval(row).AsBool() {
		t.Fatal("NOT (3=3) should be false")
	}
	if !(&IsNullExpr{E: col(1)}).Eval(row).AsBool() {
		t.Fatal("col1 IS NULL should be true")
	}
	if (&IsNullExpr{E: col(0)}).Eval(row).AsBool() {
		t.Fatal("col0 IS NULL should be false")
	}
	if !(&IsNullExpr{E: col(0), Negate: true}).Eval(row).AsBool() {
		t.Fatal("col0 IS NOT NULL should be true")
	}
	in := &InList{E: col(0), List: []Value{Int(1), Int(3), Int(5)}}
	if !in.Eval(row).AsBool() {
		t.Fatal("3 IN (1,3,5) should be true")
	}
	notIn := &InList{E: col(0), List: []Value{Int(2)}}
	if notIn.Eval(row).AsBool() {
		t.Fatal("3 IN (2) should be false")
	}
}

func TestSplitCombineConjuncts(t *testing.T) {
	a := bin(OpEq, col(0), lit(Int(1)))
	b := bin(OpGt, col(1), lit(Int(2)))
	c := bin(OpLt, col(2), lit(Int(3)))
	e := bin(OpAnd, bin(OpAnd, a, b), c)
	parts := SplitConjuncts(e)
	if len(parts) != 3 {
		t.Fatalf("expected 3 conjuncts, got %d", len(parts))
	}
	re := CombineConjuncts(parts)
	row := Row{Int(1), Int(5), Int(0)}
	if !re.Eval(row).AsBool() {
		t.Fatal("recombined conjunction should hold")
	}
	if CombineConjuncts(nil) != nil {
		t.Fatal("empty conjunct list should be nil")
	}
	// An OR expression is a single conjunct.
	if got := SplitConjuncts(bin(OpOr, a, b)); len(got) != 1 {
		t.Fatalf("OR should not split, got %d parts", len(got))
	}
}

func TestReferencedColsAndShift(t *testing.T) {
	e := bin(OpAnd,
		bin(OpEq, col(0), col(3)),
		&Not{E: &InList{E: col(2), List: []Value{Int(1)}}})
	refs := map[int]bool{}
	ReferencedCols(e, refs)
	for _, want := range []int{0, 2, 3} {
		if !refs[want] {
			t.Fatalf("missing referenced column %d (got %v)", want, refs)
		}
	}
	if len(refs) != 3 {
		t.Fatalf("expected 3 refs, got %v", refs)
	}
	shifted := ShiftCols(e, 10)
	refs2 := map[int]bool{}
	ReferencedCols(shifted, refs2)
	for _, want := range []int{10, 12, 13} {
		if !refs2[want] {
			t.Fatalf("missing shifted column %d (got %v)", want, refs2)
		}
	}
	// IsNull shift path
	n := ShiftCols(&IsNullExpr{E: col(1)}, 2)
	refs3 := map[int]bool{}
	ReferencedCols(n, refs3)
	if !refs3[3] {
		t.Fatal("IsNull shift failed")
	}
}

func TestExprString(t *testing.T) {
	e := bin(OpAnd, bin(OpEq, &ColRef{Idx: 0, Name: "a"}, lit(Text("x"))), &IsNullExpr{E: &ColRef{Idx: 1, Name: "b"}})
	s := e.String()
	if s != "((a = 'x') AND b IS NULL)" {
		t.Fatalf("unexpected string: %s", s)
	}
	if (&ColRef{Idx: 4}).String() != "#4" {
		t.Fatal("anonymous colref rendering wrong")
	}
}

func TestSchemaOps(t *testing.T) {
	s := NewSchema(
		Column{Name: "id", Typ: TypeInt, Unique: true},
		Column{Name: "name", Typ: TypeText},
		Column{Name: "score", Typ: TypeFloat},
	)
	if s.Arity() != 3 {
		t.Fatal("arity wrong")
	}
	if s.ColIndex("NAME") != 1 || s.ColIndex("missing") != -1 {
		t.Fatal("colindex wrong")
	}
	if s.Col(0).Name != "id" {
		t.Fatal("col accessor wrong")
	}
	p := s.Project([]int{2, 0})
	if p.Arity() != 2 || p.Cols[0].Name != "score" || p.Cols[1].Name != "id" {
		t.Fatal("project wrong")
	}
	c := s.Concat(p)
	if c.Arity() != 5 {
		t.Fatal("concat wrong")
	}
	cl := s.Clone()
	cl.Cols[0].Name = "zzz"
	if s.Cols[0].Name != "id" {
		t.Fatal("clone must not alias")
	}
	if got := s.String(); got != "(id BIGINT, name TEXT, score DOUBLE)" {
		t.Fatalf("schema string: %s", got)
	}
	names := s.Names()
	if len(names) != 3 || names[2] != "score" {
		t.Fatal("names wrong")
	}
}

func TestRowHelpers(t *testing.T) {
	r := Row{Int(1), Float(2.5), Text("9")}
	cl := r.Clone()
	cl[0] = Int(99)
	if r[0].I != 1 {
		t.Fatal("clone aliases")
	}
	if r.String() != "1, 2.5, 9" {
		t.Fatalf("row string: %s", r.String())
	}
	fv := r.FeatureVector([]int{0, 1, 2})
	if fv[0] != 1 || fv[1] != 2.5 || fv[2] != 9 {
		t.Fatalf("feature vector: %v", fv)
	}
}
