package rel

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Fatal("Null() should be null")
	}
	if got := Int(7).AsFloat(); got != 7 {
		t.Fatalf("Int(7).AsFloat() = %v", got)
	}
	if got := Float(2.5).AsInt(); got != 2 {
		t.Fatalf("Float(2.5).AsInt() = %v", got)
	}
	if !Bool(true).AsBool() {
		t.Fatal("Bool(true).AsBool() = false")
	}
	if got := Text("42").AsInt(); got != 42 {
		t.Fatalf("Text(42).AsInt() = %v", got)
	}
	if got := Text("3.5").AsFloat(); got != 3.5 {
		t.Fatalf("Text(3.5).AsFloat() = %v", got)
	}
	if Text("xyz").AsFloat() != 0 {
		t.Fatal("non-numeric text should convert to 0")
	}
	if !Text("true").AsBool() || Text("no").AsBool() {
		t.Fatal("text bool conversion wrong")
	}
	if Bool(true).AsInt() != 1 || Bool(false).AsInt() != 0 {
		t.Fatal("bool int conversion wrong")
	}
	if Null().AsFloat() != 0 || Null().AsInt() != 0 || Null().AsBool() {
		t.Fatal("null conversions should be zero values")
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NULL":  Null(),
		"5":     Int(5),
		"2.5":   Float(2.5),
		"hi":    Text("hi"),
		"true":  Bool(true),
		"false": Bool(false),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", v, got, want)
		}
	}
}

func TestTypeString(t *testing.T) {
	if TypeInt.String() != "BIGINT" || TypeText.String() != "TEXT" {
		t.Fatal("type names wrong")
	}
	if TypeNull.String() != "NULL" || TypeFloat.String() != "DOUBLE" || TypeBool.String() != "BOOLEAN" {
		t.Fatal("type names wrong")
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Int(2), -1},
		{Int(2), Float(1.5), 1},
		{Float(2), Int(2), 0},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Null(), Null(), 0},
		{Text("a"), Text("b"), -1},
		{Text("b"), Text("b"), 0},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
		{Bool(false), Int(1), -1}, // bool is numeric: 0 < 1
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if Equal(Null(), Null()) {
		t.Fatal("NULL = NULL must be false")
	}
	if Equal(Null(), Int(0)) || Equal(Int(0), Null()) {
		t.Fatal("NULL = x must be false")
	}
	if !Equal(Int(2), Float(2)) {
		t.Fatal("2 = 2.0 must hold")
	}
}

func TestHashEqualValuesAgree(t *testing.T) {
	if Int(7).Hash() != Float(7).Hash() {
		t.Fatal("numerically equal values must hash equal")
	}
	if Text("abc").Hash() == Text("abd").Hash() {
		t.Fatal("different strings should (almost surely) hash differently")
	}
}

func randValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Null()
	case 1:
		return Int(r.Int63n(1e6) - 5e5)
	case 2:
		return Float(r.NormFloat64() * 100)
	case 3:
		buf := make([]byte, r.Intn(20))
		for i := range buf {
			buf[i] = byte('a' + r.Intn(26))
		}
		return Text(string(buf))
	default:
		return Bool(r.Intn(2) == 0)
	}
}

func TestEncodeDecodeValueRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randValue(r)
		buf := EncodeValue(nil, v)
		got, n, err := DecodeValue(buf)
		if err != nil || n != len(buf) {
			return false
		}
		return reflect.DeepEqual(got, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeValueErrors(t *testing.T) {
	if _, _, err := DecodeValue(nil); err == nil {
		t.Fatal("empty input should error")
	}
	if _, _, err := DecodeValue([]byte{byte(TypeInt), 1, 2}); err == nil {
		t.Fatal("short int should error")
	}
	if _, _, err := DecodeValue([]byte{byte(TypeFloat)}); err == nil {
		t.Fatal("short float should error")
	}
	if _, _, err := DecodeValue([]byte{byte(TypeText), 9, 0, 0, 0, 'a'}); err == nil {
		t.Fatal("short text payload should error")
	}
	if _, _, err := DecodeValue([]byte{byte(TypeBool)}); err == nil {
		t.Fatal("short bool should error")
	}
	if _, _, err := DecodeValue([]byte{99}); err == nil {
		t.Fatal("unknown tag should error")
	}
}

func TestEncodeDecodeRowRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		row := make(Row, r.Intn(12))
		for i := range row {
			row[i] = randValue(r)
		}
		buf := EncodeRow(nil, row)
		got, n, err := DecodeRow(buf)
		if err != nil || n != len(buf) {
			return false
		}
		if len(got) != len(row) {
			return false
		}
		for i := range row {
			if !reflect.DeepEqual(got[i], row[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRowErrors(t *testing.T) {
	if _, _, err := DecodeRow([]byte{1}); err == nil {
		t.Fatal("short header should error")
	}
	// arity says 2 but only one value present
	buf := EncodeRow(nil, Row{Int(1)})
	buf[0] = 2
	if _, _, err := DecodeRow(buf); err == nil {
		t.Fatal("truncated row should error")
	}
}

func TestCompareIsTotalOrderOnSamples(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	vals := make([]Value, 60)
	for i := range vals {
		vals[i] = randValue(r)
	}
	for _, a := range vals {
		if math.Abs(float64(Compare(a, a))) != 0 {
			t.Fatalf("Compare(%v,%v) != 0", a, a)
		}
		for _, b := range vals {
			if Compare(a, b) != -Compare(b, a) {
				t.Fatalf("antisymmetry violated for %v, %v", a, b)
			}
			for _, c := range vals {
				if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
					t.Fatalf("transitivity violated for %v %v %v", a, b, c)
				}
			}
		}
	}
}
