package bench

import (
	"fmt"
	"strings"
	"time"

	"neurdb"
	"neurdb/internal/executor"
	"neurdb/internal/rel"
	"neurdb/internal/txn"
	"neurdb/internal/workload"
)

// Table1Row is one AI-analytics query of the paper's Table 1, executed end
// to end through the SQL surface.
type Table1Row struct {
	Workload  string
	Statement string
	Latency   time.Duration
	Rows      int
	FinalLoss float64
}

// RunTable1 loads scaled-down Avazu/Diabetes tables and executes the two
// PREDICT statements from Table 1 through the full SQL path (parse → bind →
// AI operators → AI engine).
func RunTable1(sc Scale) ([]Table1Row, error) {
	db := neurdb.Open(neurdb.DefaultConfig())
	rows := sc.BatchSize * 8

	// Workload E: avazu table with c0..c21 + click_rate.
	{
		var cols []string
		for i := 0; i < workload.AvazuFields; i++ {
			cols = append(cols, fmt.Sprintf("c%d INT", i))
		}
		cols = append(cols, "click_rate DOUBLE")
		if _, err := db.Exec("CREATE TABLE avazu (" + strings.Join(cols, ", ") + ")"); err != nil {
			return nil, err
		}
		gen := workload.NewAvazu(41)
		if err := bulkInsert(db, "avazu", gen.Batch(rows)); err != nil {
			return nil, err
		}
	}
	// Workload H: diabetes table with f0..f42 + outcome.
	{
		var cols []string
		for i := 0; i < workload.DiabetesFields; i++ {
			cols = append(cols, fmt.Sprintf("f%d DOUBLE", i))
		}
		cols = append(cols, "outcome INT")
		if _, err := db.Exec("CREATE TABLE diabetes (" + strings.Join(cols, ", ") + ")"); err != nil {
			return nil, err
		}
		gen := workload.NewDiabetes(42)
		if err := bulkInsert(db, "diabetes", gen.Batch(rows)); err != nil {
			return nil, err
		}
	}
	if _, err := db.Exec("ANALYZE"); err != nil {
		return nil, err
	}

	stmts := []struct {
		workload, sql string
	}{
		{"E-Commerce (E)", "PREDICT VALUE OF click_rate FROM avazu TRAIN ON *"},
		{"Healthcare (H)", "PREDICT CLASS OF outcome FROM diabetes TRAIN ON *"},
	}
	var out []Table1Row
	for _, s := range stmts {
		start := time.Now()
		res, err := db.Exec(s.sql)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", s.sql, err)
		}
		out = append(out, Table1Row{
			Workload:  s.workload,
			Statement: s.sql,
			Latency:   time.Since(start),
			Rows:      len(res.Rows),
		})
	}
	return out, nil
}

// bulkInsert loads rows through the executor (faster than SQL text for bulk
// data, same code path as INSERT).
func bulkInsert(db *neurdb.DB, table string, rows []rel.Row) error {
	tbl, err := db.Catalog().Get(table)
	if err != nil {
		return err
	}
	mgr := db.TxnManager()
	tx := mgr.Begin(txn.Snapshot, false)
	ctx := &executor.Ctx{Mgr: mgr, Txn: tx, Cat: db.Catalog()}
	for _, row := range rows {
		if _, err := executor.InsertRow(ctx, tbl, row); err != nil {
			mgr.Abort(tx)
			return err
		}
	}
	return mgr.Commit(tx)
}

// RenderTable1 prints the executed statements.
func RenderTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("Table 1 — Queries for AI analytics evaluations (executed end to end)\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-15s %-55s  %8.0fms\n", r.Workload, r.Statement, float64(r.Latency.Milliseconds()))
	}
	return sb.String()
}
