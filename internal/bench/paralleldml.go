package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"neurdb"
)

// ParallelDMLPoint is one worker-count measurement of the write-path
// scaling experiment.
type ParallelDMLPoint struct {
	Workers int
	// UpdateNsPerOp is a statement updating 75% of the table (grp < 48 of
	// 64 groups), morsel-parallel through the striped claim path.
	UpdateNsPerOp float64
	// DeleteNsPerOp is a statement deleting the remaining 25%.
	DeleteNsPerOp float64
	// InsertNsPerOp re-inserts the deleted quarter in multi-row chunks
	// (recorded, not gated: inserts append to the heap tail serially).
	InsertNsPerOp float64
}

// ParallelDMLResult reports morsel-parallel DML scaling: the same mixed
// UPDATE/DELETE/INSERT cycle executed with 1, 2, and 4 workers over a
// fresh identically-loaded table each time. Speedups are t(1)/t(4); on a
// host with fewer than 4 procs (MaxProcs) workers time-slice one core and
// the CI gate skips the floor.
type ParallelDMLResult struct {
	Rows     int
	Iters    int
	MaxProcs int
	Points   []ParallelDMLPoint
	// UpdateSpeedup4 / DeleteSpeedup4 are the 1-worker over 4-worker
	// latency ratios (>1 means parallel is faster).
	UpdateSpeedup4 float64
	DeleteSpeedup4 float64
}

// RunParallelDML measures the write path at 1/2/4 workers. Each worker
// count gets a fresh database with sc.ParallelRows rows so heap layout and
// version-chain state are identical across points; between iterations the
// table is vacuumed (untimed) so dead versions from one cycle don't slow
// the next.
func RunParallelDML(sc Scale) (*ParallelDMLResult, error) {
	res := &ParallelDMLResult{
		Rows:     sc.ParallelRows,
		Iters:    sc.ParallelDMLIters,
		MaxProcs: runtime.GOMAXPROCS(0),
	}

	// The deleted quarter (grp >= 48) is re-inserted with its original
	// values each cycle; the statements are identical every iteration, so
	// build them once up front and keep string assembly out of the timings.
	const chunk = 512
	var reinsert []string
	{
		var sb strings.Builder
		count := 0
		for i := 0; i < sc.ParallelRows; i++ {
			if i%64 < 48 {
				continue
			}
			if count == 0 {
				sb.Reset()
				sb.WriteString("INSERT INTO wide VALUES ")
			} else {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "(%d,%d,%g,%g)", i, i%64, float64(i%1000)*0.5, float64(i%97)*0.25)
			if count++; count == chunk {
				reinsert = append(reinsert, sb.String())
				count = 0
			}
		}
		if count > 0 {
			reinsert = append(reinsert, sb.String())
		}
	}
	wantUpdated := 0
	for i := 0; i < sc.ParallelRows; i++ {
		if i%64 < 48 {
			wantUpdated++
		}
	}
	wantDeleted := sc.ParallelRows - wantUpdated

	for _, w := range []int{1, 2, 4} {
		db := neurdb.Open(neurdb.DefaultConfig())
		if _, err := db.Exec(`CREATE TABLE wide (id INT PRIMARY KEY, grp INT, a DOUBLE, b DOUBLE)`); err != nil {
			return nil, err
		}
		for base := 0; base < sc.ParallelRows; base += chunk {
			var sb strings.Builder
			sb.WriteString("INSERT INTO wide VALUES ")
			for i := base; i < base+chunk && i < sc.ParallelRows; i++ {
				if i > base {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, "(%d,%d,%g,%g)", i, i%64, float64(i%1000)*0.5, float64(i%97)*0.25)
			}
			if _, err := db.Exec(sb.String()); err != nil {
				return nil, err
			}
		}
		if _, err := db.Exec(`ANALYZE`); err != nil {
			return nil, err
		}
		db.SetWorkers(w)

		vacuum := func() {
			horizon := db.TxnManager().OldestActiveTS()
			for _, t := range db.Catalog().All() {
				t.Heap.Vacuum(horizon)
			}
		}
		cycle := func(sanity bool) (upd, del, ins time.Duration, err error) {
			start := time.Now()
			r, err := db.Exec(`UPDATE wide SET a = a + 1 WHERE grp < 48`)
			if err != nil {
				return 0, 0, 0, err
			}
			upd = time.Since(start)
			if sanity && r.Affected != wantUpdated {
				return 0, 0, 0, fmt.Errorf("bench parallel-dml: updated %d rows, want %d", r.Affected, wantUpdated)
			}
			start = time.Now()
			r, err = db.Exec(`DELETE FROM wide WHERE grp >= 48`)
			if err != nil {
				return 0, 0, 0, err
			}
			del = time.Since(start)
			if sanity && r.Affected != wantDeleted {
				return 0, 0, 0, fmt.Errorf("bench parallel-dml: deleted %d rows, want %d", r.Affected, wantDeleted)
			}
			start = time.Now()
			for _, stmt := range reinsert {
				if _, err := db.Exec(stmt); err != nil {
					return 0, 0, 0, err
				}
			}
			ins = time.Since(start)
			return upd, del, ins, nil
		}

		// Warmup cycle (untimed) doubles as the sanity check on row counts.
		if _, _, _, err := cycle(true); err != nil {
			return nil, err
		}
		vacuum()
		var updTotal, delTotal, insTotal time.Duration
		for i := 0; i < sc.ParallelDMLIters; i++ {
			upd, del, ins, err := cycle(false)
			if err != nil {
				return nil, err
			}
			updTotal += upd
			delTotal += del
			insTotal += ins
			vacuum()
		}
		iters := float64(sc.ParallelDMLIters)
		res.Points = append(res.Points, ParallelDMLPoint{
			Workers:       w,
			UpdateNsPerOp: float64(updTotal.Nanoseconds()) / iters,
			DeleteNsPerOp: float64(delTotal.Nanoseconds()) / iters,
			InsertNsPerOp: float64(insTotal.Nanoseconds()) / iters,
		})
	}

	base, top := res.Points[0], res.Points[len(res.Points)-1]
	if top.UpdateNsPerOp > 0 {
		res.UpdateSpeedup4 = base.UpdateNsPerOp / top.UpdateNsPerOp
	}
	if top.DeleteNsPerOp > 0 {
		res.DeleteSpeedup4 = base.DeleteNsPerOp / top.DeleteNsPerOp
	}
	return res, nil
}

// RenderParallelDML prints the write-path scaling table.
func RenderParallelDML(r *ParallelDMLResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "morsel-parallel DML scaling (%d rows, %d iters, GOMAXPROCS=%d)\n",
		r.Rows, r.Iters, r.MaxProcs)
	fmt.Fprintf(&sb, "  %-8s %14s %14s %14s\n", "workers", "update ns/op", "delete ns/op", "insert ns/op")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "  %-8d %14.0f %14.0f %14.0f\n",
			p.Workers, p.UpdateNsPerOp, p.DeleteNsPerOp, p.InsertNsPerOp)
	}
	fmt.Fprintf(&sb, "  speedup at 4 workers: update %.2fx, delete %.2fx\n",
		r.UpdateSpeedup4, r.DeleteSpeedup4)
	if r.MaxProcs < 4 {
		fmt.Fprintf(&sb, "  (host has %d procs; 4-worker speedup is not expected to exceed 1x)\n", r.MaxProcs)
	}
	return sb.String()
}
