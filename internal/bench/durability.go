package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"neurdb"
)

// DurabilityPoint is one writer-count measurement of the group-commit
// experiment: the same insert storm with leader/follower fsync batching on
// (the default) versus defeated (one fsync per commit).
type DurabilityPoint struct {
	Writers    int
	GroupTps   float64
	NoGroupTps float64
}

// DurabilityResult reports the WAL's commit-path economics: what a durable
// ack costs at different concurrency levels, how much group commit claws
// back, and what the always-durable mode costs relative to running with no
// WAL at all.
type DurabilityResult struct {
	// FsyncUs is the measured raw fsync latency on the bench host's temp
	// filesystem. It calibrates the gate: when fsync is nearly free (tmpfs,
	// battery-backed cache), batching fsyncs cannot produce a speedup and
	// the group-commit floor self-disables.
	FsyncUs float64
	// WalOffTps is the insert storm with no data directory (pure in-memory
	// engine) at the middle writer count — the zero-durability ceiling.
	WalOffTps float64
	// IntervalTps is the same storm with WalSync "interval" (durability to
	// within the sync window) at the middle writer count.
	IntervalTps float64
	Points      []DurabilityPoint
	// GroupSpeedup32 is GroupTps/NoGroupTps at the top writer count: how
	// much leader/follower batching amortizes the fsync under contention.
	GroupSpeedup32 float64
	// IntervalOverhead is WalOffTps/IntervalTps: the multiplicative cost of
	// WAL append + background fsync over no logging at all.
	IntervalOverhead float64
}

// durabilityWriters are the storm concurrency levels; the middle entry also
// serves as the writer count for the wal-off and interval comparisons.
var durabilityWriters = []int{1, 8, 32}

// measureFsync times raw 4 KiB write+fsync cycles on the same filesystem
// the storm data directories use.
func measureFsync() (float64, error) {
	f, err := os.CreateTemp("", "neurdb-fsync-probe-")
	if err != nil {
		return 0, err
	}
	defer os.Remove(f.Name())
	defer f.Close()
	buf := make([]byte, 4096)
	const iters = 32
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := f.WriteAt(buf, 0); err != nil {
			return 0, err
		}
		if err := f.Sync(); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Microseconds()) / iters, nil
}

// durabilityStorm opens a fresh database under cfg, loads the storm table,
// and runs writers concurrent sessions each committing single-row inserts
// serially for dur. Returns acknowledged commits per second.
func durabilityStorm(cfg neurdb.Config, writers int, dur time.Duration) (float64, error) {
	db, err := neurdb.OpenDB(cfg)
	if err != nil {
		return 0, err
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE storm (id INT PRIMARY KEY, payload TEXT)`); err != nil {
		return 0, err
	}

	payload := strings.Repeat("x", 64)
	var stop atomic.Bool
	var commits atomic.Int64
	errCh := make(chan error, writers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.NewSession()
			for seq := 0; !stop.Load(); seq++ {
				id := int64(w)*10_000_000 + int64(seq)
				if _, err := s.Exec(`INSERT INTO storm VALUES (?, ?)`, id, payload); err != nil {
					errCh <- err
					return
				}
				commits.Add(1)
			}
		}(w)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	return float64(commits.Load()) / elapsed.Seconds(), nil
}

// RunDurability measures the WAL commit path: group commit versus
// fsync-per-commit at 1/8/32 writers, plus the wal-off and interval-sync
// reference points, each on a fresh data directory.
func RunDurability(sc Scale) (*DurabilityResult, error) {
	res := &DurabilityResult{}
	var err error
	if res.FsyncUs, err = measureFsync(); err != nil {
		return nil, err
	}

	base, err := os.MkdirTemp("", "neurdb-durability-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(base)

	durable := func(name string, noGroup bool, mode string) neurdb.Config {
		cfg := neurdb.DefaultConfig()
		cfg.DataDir = filepath.Join(base, name)
		cfg.WalSync = mode
		cfg.NoGroupCommit = noGroup
		// No background checkpoints: the storm measures the commit path only.
		cfg.CheckpointInterval = 0
		cfg.CheckpointWalMB = 0
		return cfg
	}

	for _, w := range durabilityWriters {
		group, err := durabilityStorm(durable(fmt.Sprintf("group-%d", w), false, "commit"), w, sc.DurabilityDuration)
		if err != nil {
			return nil, err
		}
		noGroup, err := durabilityStorm(durable(fmt.Sprintf("nogroup-%d", w), true, "commit"), w, sc.DurabilityDuration)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, DurabilityPoint{Writers: w, GroupTps: group, NoGroupTps: noGroup})
	}

	mid := durabilityWriters[1]
	if res.WalOffTps, err = durabilityStorm(neurdb.DefaultConfig(), mid, sc.DurabilityDuration); err != nil {
		return nil, err
	}
	if res.IntervalTps, err = durabilityStorm(durable("interval", false, "interval"), mid, sc.DurabilityDuration); err != nil {
		return nil, err
	}

	top := res.Points[len(res.Points)-1]
	if top.NoGroupTps > 0 {
		res.GroupSpeedup32 = top.GroupTps / top.NoGroupTps
	}
	if res.IntervalTps > 0 {
		res.IntervalOverhead = res.WalOffTps / res.IntervalTps
	}
	return res, nil
}

// RenderDurability prints the WAL commit-path table.
func RenderDurability(r *DurabilityResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "WAL commit path (raw fsync %.0f us)\n", r.FsyncUs)
	fmt.Fprintf(&sb, "  %-8s %16s %16s %9s\n", "writers", "group tps", "fsync/commit tps", "speedup")
	for _, p := range r.Points {
		speedup := 0.0
		if p.NoGroupTps > 0 {
			speedup = p.GroupTps / p.NoGroupTps
		}
		fmt.Fprintf(&sb, "  %-8d %16.0f %16.0f %8.2fx\n", p.Writers, p.GroupTps, p.NoGroupTps, speedup)
	}
	fmt.Fprintf(&sb, "  wal off:        %10.0f tps (%d writers)\n", r.WalOffTps, durabilityWriters[1])
	fmt.Fprintf(&sb, "  interval sync:  %10.0f tps (%d writers, %.2fx overhead vs wal off)\n",
		r.IntervalTps, durabilityWriters[1], r.IntervalOverhead)
	return sb.String()
}
