package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"neurdb"
	"neurdb/internal/executor"
	"neurdb/internal/learnedopt"
	"neurdb/internal/nn"
	"neurdb/internal/optimizer"
	"neurdb/internal/plan"
	"neurdb/internal/rel"
	"neurdb/internal/sqlparse"
	"neurdb/internal/txn"
	"neurdb/internal/workload"
)

// Fig8Optimizers lists the compared systems in paper order, plus an Oracle
// row (the best measured live candidate) as the achievable floor.
var Fig8Optimizers = []string{"PostgreSQL", "Bao", "Lero", "NeurDB", "Oracle"}

// Fig8Result carries per-query latencies for each drift level and system.
type Fig8Result struct {
	Levels  []string
	Queries int
	// LatencyMS[level][system][queryIdx]
	LatencyMS map[string]map[string][]float64
	AvgMS     map[string]map[string]float64
	// NeurDBReduction is 1 - avg(NeurDB)/avg(best baseline) over drifted
	// levels; paper reports up to 20.32% lower average latency.
	NeurDBReduction float64
}

// fig8Env is the benchmark environment.
type fig8Env struct {
	db      *neurdb.DB
	sw      *workload.Stats
	queries []*sqlparse.Select
	sc      Scale
}

// RunFig8 reproduces the learned-query-optimizer drift experiment: 8 SPJ
// queries on the STATS-like schema under {original, mild, severe} drift,
// comparing the stale-statistics cost optimizer ("PostgreSQL"), stable Bao
// and Lero models, and the NeurDB dual-module optimizer fed with live
// system conditions.
//
// Protocol: candidates are measured at the original state (training data
// for all learned systems) and at a held-out half-drift state (NeurDB
// only — standing in for the paper's synthetic pre-training diversity);
// models are then frozen and evaluated at the mild and severe states.
func RunFig8(sc Scale) (*Fig8Result, error) {
	env := &fig8Env{db: neurdb.Open(neurdb.DefaultConfig()), sw: workload.NewStats(sc.StatsScale, 99), sc: sc}
	if err := env.load(); err != nil {
		return nil, err
	}
	for _, q := range env.sw.Queries() {
		stmt, err := sqlparse.Parse(q)
		if err != nil {
			return nil, fmt.Errorf("bench: parse %q: %w", q, err)
		}
		env.queries = append(env.queries, stmt.(*sqlparse.Select))
	}
	if _, err := env.db.Exec("ANALYZE"); err != nil {
		return nil, err
	}

	// --- State 0 (original): measure candidates; eval + training data.
	state0, err := env.measureAll()
	if err != nil {
		return nil, err
	}

	// --- State 0.5: half of the mild drift, training data for NeurDB.
	if err := env.applyInserts(workload.DriftMild, 0, 0.5); err != nil {
		return nil, err
	}
	state05, err := env.measureAll()
	if err != nil {
		return nil, err
	}

	// --- Train models, then freeze.
	bao := learnedopt.NewBao(5)
	lero := learnedopt.NewLero(6)
	trainBaselines(state0, bao, lero)
	bao.Freeze()
	lero.Freeze()
	ndModel := learnedopt.NewModel(16, 2, 7)
	trainNeurDB(append(append([]*queryMeasurement{}, state0...), state05...), ndModel, sc.QOTrainPasses)
	env.db.SetLearnedQO(ndModel)

	// --- State 1 (mild): complete the mild drift; evaluate.
	if err := env.applyInserts(workload.DriftMild, 0.5, 1.0); err != nil {
		return nil, err
	}
	state1, err := env.measureAll()
	if err != nil {
		return nil, err
	}
	// Continuous adaptation: after the mild state has been measured (and
	// its evaluation numbers fixed), its observations join the training
	// pool — the paper's models keep pre-training over drift states; the
	// severe state remains fully held out. Bao and Lero stay frozen
	// ("stable models", per the paper's protocol).
	trainNeurDB(state1, ndModel, sc.QOTrainPasses)

	// --- State 2 (severe): severe drift inserts + deletes; evaluate.
	if err := env.applyInserts(workload.DriftSevere, 0, 1.0); err != nil {
		return nil, err
	}
	if err := env.applyDeletes(); err != nil {
		return nil, err
	}
	state2, err := env.measureAll()
	if err != nil {
		return nil, err
	}

	res := &Fig8Result{
		Levels:    []string{"Original STATS", "STATS w. Mild Drift", "STATS w. Severe Drift"},
		Queries:   len(env.queries),
		LatencyMS: map[string]map[string][]float64{},
		AvgMS:     map[string]map[string]float64{},
	}
	for li, ms := range [][]*queryMeasurement{state0, state1, state2} {
		level := res.Levels[li]
		res.LatencyMS[level] = map[string][]float64{}
		for _, sys := range Fig8Optimizers {
			res.LatencyMS[level][sys] = make([]float64, len(env.queries))
		}
		for qi, m := range ms {
			res.LatencyMS[level]["PostgreSQL"][qi] = m.choose(m.pgChoice)
			res.LatencyMS[level]["Bao"][qi] = m.choose(bao.Choose(m.stalePlans))
			res.LatencyMS[level]["Lero"][qi] = m.choose(lero.Choose(m.leroPlans(m)))
			cond := m.cond
			filtered := make([]plan.Node, len(m.topLive))
			for i, idx := range m.topLive {
				filtered[i] = m.livePlans[idx]
			}
			pick := ndModel.Choose(learnedopt.EncodeCandidates(filtered), cond)
			res.LatencyMS[level]["NeurDB"][qi] = m.chooseLive(m.topLive[pick])
			res.LatencyMS[level]["Oracle"][qi] = m.chooseLive(m.bestLive)
		}
		res.AvgMS[level] = map[string]float64{}
		for _, sys := range Fig8Optimizers {
			res.AvgMS[level][sys] = mean(res.LatencyMS[level][sys])
		}
	}
	// NeurDB reduction vs the best baseline, averaged over drifted levels.
	var ndSum, baseSum float64
	for _, level := range res.Levels[1:] {
		ndSum += res.AvgMS[level]["NeurDB"]
		best := res.AvgMS[level]["PostgreSQL"]
		for _, sys := range []string{"Bao", "Lero"} {
			if res.AvgMS[level][sys] < best {
				best = res.AvgMS[level][sys]
			}
		}
		baseSum += best
	}
	if baseSum > 0 {
		res.NeurDBReduction = 1 - ndSum/baseSum
	}
	return res, nil
}

// load creates the schema, indexes, and initial data.
func (env *fig8Env) load() error {
	cat := env.db.Catalog()
	mgr := env.db.TxnManager()
	for _, def := range env.sw.Tables() {
		if _, err := cat.Create(def.Name, rel.NewSchema(def.Cols...)); err != nil {
			return err
		}
		tbl, _ := cat.Get(def.Name)
		for _, colName := range def.IndexCols {
			ci := tbl.Schema.ColIndex(colName)
			if _, err := env.db.Exec(fmt.Sprintf("CREATE INDEX %s_%s ON %s (%s)", def.Name, colName, def.Name, colName)); err != nil {
				return err
			}
			_ = ci
		}
		rows := env.sw.Rows(def.Name)
		tx := mgr.Begin(txn.Snapshot, false)
		ctx := &executor.Ctx{Mgr: mgr, Txn: tx, Cat: cat}
		for _, row := range rows {
			if _, err := executor.InsertRow(ctx, tbl, row); err != nil {
				mgr.Abort(tx)
				return err
			}
		}
		if err := mgr.Commit(tx); err != nil {
			return err
		}
	}
	return nil
}

// applyInserts applies a fraction range [from, to) of a drift level's
// inserts (live statistics update incrementally through the executor).
func (env *fig8Env) applyInserts(level workload.DriftLevel, from, to float64) error {
	cat := env.db.Catalog()
	mgr := env.db.TxnManager()
	for _, def := range env.sw.Tables() {
		rows := env.sw.DriftInserts(def.Name, level)
		if len(rows) == 0 {
			continue
		}
		lo := int(from * float64(len(rows)))
		hi := int(to * float64(len(rows)))
		tbl, _ := cat.Get(def.Name)
		tx := mgr.Begin(txn.Snapshot, false)
		ctx := &executor.Ctx{Mgr: mgr, Txn: tx, Cat: cat}
		for _, row := range rows[lo:hi] {
			if _, err := executor.InsertRow(ctx, tbl, row); err != nil {
				mgr.Abort(tx)
				return err
			}
		}
		if err := mgr.Commit(tx); err != nil {
			return err
		}
	}
	return nil
}

// applyDeletes applies the severe-drift deletions.
func (env *fig8Env) applyDeletes() error {
	for table, where := range env.sw.DriftDeletes(workload.DriftSevere) {
		if _, err := env.db.Exec(fmt.Sprintf("DELETE FROM %s WHERE %s", table, where)); err != nil {
			return err
		}
	}
	return nil
}

// queryMeasurement holds one query's candidates and measured runtimes at
// one data state.
type queryMeasurement struct {
	stalePlans []plan.Node // candidates the stale-stats planner generates
	livePlans  []plan.Node // candidates generated with live statistics
	topLive    []int       // FRP filter: top candidates by live estimated cost
	staleMS    []float64   // measured runtime per stale candidate
	liveMS     []float64
	pgChoice   int // index of the stale default plan
	leroIdx    []int
	cond       *nn.Matrix
	bestLive   int
}

func (m *queryMeasurement) choose(i int) float64 {
	if i < 0 || i >= len(m.staleMS) {
		return m.staleMS[0]
	}
	return m.staleMS[i]
}

func (m *queryMeasurement) chooseLive(i int) float64 {
	if i < 0 || i >= len(m.liveMS) {
		return m.liveMS[0]
	}
	return m.liveMS[i]
}

// leroPlans restricts the stale candidates to Lero's cardinality-sweep arms.
func (m *queryMeasurement) leroPlans(_ *queryMeasurement) []plan.Node {
	out := make([]plan.Node, 0, len(m.leroIdx))
	for _, i := range m.leroIdx {
		out = append(out, m.stalePlans[i])
	}
	return out
}

// measureAll generates and measures candidates for every query at the
// current data state.
func (env *fig8Env) measureAll() ([]*queryMeasurement, error) {
	var out []*queryMeasurement
	cond := learnedopt.BuildConditions(env.db.Catalog().All(), env.db.BufferPool())
	for _, sel := range env.queries {
		q, err := optimizer.Bind(sel, env.db.Catalog())
		if err != nil {
			return nil, err
		}
		staleCands, err := optimizer.EnumerateCandidates(q, env.db.StaleStatsView(), []float64{0.1, 10})
		if err != nil {
			return nil, err
		}
		liveCands, err := optimizer.EnumerateCandidates(q, nil, []float64{0.1, 10})
		if err != nil {
			return nil, err
		}
		m := &queryMeasurement{cond: cond}
		for i, c := range staleCands {
			m.stalePlans = append(m.stalePlans, c.Plan)
			if c.Hint == "default" {
				m.pgChoice = i
			}
			if c.Hint == "default" || strings.HasPrefix(c.Hint, "cardx") {
				m.leroIdx = append(m.leroIdx, i)
			}
		}
		for _, c := range liveCands {
			m.livePlans = append(m.livePlans, c.Plan)
		}
		// Filter-and-refine: the analyzer refines among the K cheapest
		// candidates under live statistics (paper §4.2 Discussion).
		order := make([]int, len(m.livePlans))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			_, ca := m.livePlans[order[a]].Estimates()
			_, cb := m.livePlans[order[b]].Estimates()
			return ca < cb
		})
		k := 4
		if k > len(order) {
			k = len(order)
		}
		m.topLive = order[:k]
		m.staleMS = make([]float64, len(m.stalePlans))
		for i, p := range m.stalePlans {
			ms, err := env.timePlan(p)
			if err != nil {
				return nil, err
			}
			m.staleMS[i] = ms
		}
		m.liveMS = make([]float64, len(m.livePlans))
		best := 0
		for i, p := range m.livePlans {
			ms, err := env.timePlan(p)
			if err != nil {
				return nil, err
			}
			m.liveMS[i] = ms
			if ms < m.liveMS[best] {
				best = i
			}
		}
		m.bestLive = best
		out = append(out, m)
	}
	return out, nil
}

// timePlan executes a plan and returns the median latency in milliseconds.
func (env *fig8Env) timePlan(p plan.Node) (float64, error) {
	var samples []float64
	for i := 0; i < env.sc.QORepeats; i++ {
		tx := env.db.TxnManager().Begin(txn.Snapshot, true)
		ctx := &executor.Ctx{Mgr: env.db.TxnManager(), Txn: tx, Cat: env.db.Catalog()}
		start := time.Now()
		_, err := executor.Run(p, ctx)
		env.db.TxnManager().Abort(tx)
		if err != nil {
			return 0, err
		}
		samples = append(samples, float64(time.Since(start).Microseconds())/1000)
	}
	sort.Float64s(samples)
	return samples[len(samples)/2], nil
}

// trainBaselines fits Bao and Lero on the original-state measurements.
func trainBaselines(state []*queryMeasurement, bao *learnedopt.Bao, lero *learnedopt.Lero) {
	baoOpt := nn.NewAdam(0.005)
	leroOpt := nn.NewAdam(0.005)
	for pass := 0; pass < 40; pass++ {
		for _, m := range state {
			for i, p := range m.stalePlans {
				bao.Train(p, m.staleMS[i]/1000, baoOpt)
			}
			for i := 0; i < len(m.stalePlans); i++ {
				for j := i + 1; j < len(m.stalePlans); j++ {
					if m.staleMS[i] < m.staleMS[j] {
						lero.TrainPair(m.stalePlans[i], m.stalePlans[j], leroOpt)
					} else if m.staleMS[j] < m.staleMS[i] {
						lero.TrainPair(m.stalePlans[j], m.stalePlans[i], leroOpt)
					}
				}
			}
		}
	}
}

// trainNeurDB fits the dual-module model on (candidates, conditions, best)
// examples with light feature-noise augmentation.
func trainNeurDB(state []*queryMeasurement, model *learnedopt.Model, passes int) {
	opt := nn.NewAdam(0.003)
	rng := rand.New(rand.NewSource(13))
	var examples []learnedopt.Example
	for _, m := range state {
		if len(m.topLive) >= 2 {
			filtered := make([]plan.Node, len(m.topLive))
			best := 0
			for i, idx := range m.topLive {
				filtered[i] = m.livePlans[idx]
				if m.liveMS[idx] < m.liveMS[m.topLive[best]] {
					best = i
				}
			}
			examples = append(examples, learnedopt.Example{
				Tokens: learnedopt.EncodeCandidates(filtered),
				Cond:   m.cond,
				Best:   best,
			})
		}
		// The stale candidate set (with its own measured runtimes) doubles
		// the training data and broadens plan diversity.
		if len(m.stalePlans) >= 2 {
			best := 0
			for i := range m.staleMS {
				if m.staleMS[i] < m.staleMS[best] {
					best = i
				}
			}
			examples = append(examples, learnedopt.Example{
				Tokens: learnedopt.EncodeCandidates(m.stalePlans),
				Cond:   m.cond,
				Best:   best,
			})
		}
	}
	for pass := 0; pass < passes; pass++ {
		for _, ex := range examples {
			// Jitter tokens slightly for regularization.
			jit := make([][][]float64, len(ex.Tokens))
			for i, seq := range ex.Tokens {
				jseq := make([][]float64, len(seq))
				for j, tok := range seq {
					jtok := append([]float64(nil), tok...)
					for k := range jtok {
						jtok[k] += rng.NormFloat64() * 0.01
					}
					jseq[j] = jtok
				}
				jit[i] = jseq
			}
			model.TrainExample(learnedopt.Example{Tokens: jit, Cond: ex.Cond, Best: ex.Best}, opt)
		}
	}
}

// RenderFig8 prints the per-query latency table.
func RenderFig8(r *Fig8Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 8 — Learned query optimizers on STATS under drift (latency, ms)\n")
	sb.WriteString("paper: NeurDB up to 20.32% lower average latency across evaluated queries\n")
	for _, level := range r.Levels {
		fmt.Fprintf(&sb, "  %s:\n", level)
		fmt.Fprintf(&sb, "    %-12s", "query")
		for q := 0; q < r.Queries; q++ {
			fmt.Fprintf(&sb, "  Q%-6d", q+1)
		}
		sb.WriteString("  avg\n")
		for _, sys := range Fig8Optimizers {
			fmt.Fprintf(&sb, "    %-12s", sys)
			for _, ms := range r.LatencyMS[level][sys] {
				fmt.Fprintf(&sb, "  %-7.2f", ms)
			}
			fmt.Fprintf(&sb, "  %.2f\n", r.AvgMS[level][sys])
		}
	}
	fmt.Fprintf(&sb, "  NeurDB average-latency reduction vs best baseline (drifted levels): %.1f%%\n",
		r.NeurDBReduction*100)
	return sb.String()
}
