// Package bench implements the paper's evaluation harness: one runner per
// table/figure (Table 1, Figures 6a-c, 7a-b, 8), each printing
// paper-reported versus measured results. Every experiment takes a Scale so
// `go test` runs in seconds while `neurdb-bench -full` approaches
// paper-scale shapes.
package bench

import "time"

// Scale parameterizes experiment sizes.
type Scale struct {
	// --- Fig 6 (AI analytics) ---
	// BatchSize is the records per training batch (paper: 4096).
	BatchSize int
	// Fig6aBatches is the training-batch count for the end-to-end run.
	Fig6aBatches int
	// Fig6bBatchCounts is the x-axis of the data-volume sweep (paper:
	// 20..640).
	Fig6bBatchCounts []int
	// Fig6cSwitchEvery is the samples-per-cluster before drift (paper:
	// 81,920).
	Fig6cSwitchEvery int
	// Window is the streaming window in batches (paper default: 80).
	Window int

	// --- Fig 7 (learned CC) ---
	// YCSBRecords is the table size (paper: 1M).
	YCSBRecords int
	// CCDuration is the measurement time per throughput point.
	CCDuration time.Duration
	// Fig7bPhase is the wall-clock length of each drift phase (paper: 600s).
	Fig7bPhase time.Duration
	// Fig7bIntervals is the number of throughput samples per phase.
	Fig7bIntervals int

	// --- Prepared-statement throughput (client API) ---
	// PreparedRows is the keyed-table size for the point-SELECT comparison.
	PreparedRows int
	// PreparedIters is the per-path execution count.
	PreparedIters int

	// --- Wire-protocol throughput (remote client API) ---
	// WireIters is the per-path execution count for the loopback
	// prepared-vs-simple-vs-line comparison (table size reuses
	// PreparedRows).
	WireIters int

	// --- Morsel-driven parallel scaling ---
	// ParallelRows is the big-table size for the worker-scaling runs (must
	// span many morsels: 16-page morsels hold 2048 rows each).
	ParallelRows int
	// ParallelIters is the per-worker-count execution count.
	ParallelIters int
	// ParallelDMLIters is the per-worker-count mixed UPDATE/DELETE/INSERT
	// cycle count for the write-path scaling run (table size reuses
	// ParallelRows).
	ParallelDMLIters int

	// --- WAL commit path (durability) ---
	// DurabilityDuration is the measurement window per (mode, writer-count)
	// storm point in the group-commit experiment.
	DurabilityDuration time.Duration

	// --- Fig 8 (learned QO) ---
	// StatsScale multiplies the STATS table sizes (1 ≈ 36k rows total).
	StatsScale int
	// QORepeats is the per-plan execution count (median taken).
	QORepeats int
	// QOTrainPasses is the training-epoch count over collected examples.
	QOTrainPasses int
}

// DefaultScale runs every experiment in seconds (CI-friendly).
func DefaultScale() Scale {
	return Scale{
		BatchSize:        256,
		Fig6aBatches:     30,
		Fig6bBatchCounts: []int{5, 10, 20, 40, 80},
		Fig6cSwitchEvery: 2048,
		Window:           16,

		YCSBRecords:    100_000,
		CCDuration:     400 * time.Millisecond,
		Fig7bPhase:     1500 * time.Millisecond,
		Fig7bIntervals: 6,

		PreparedRows:  20_000,
		PreparedIters: 3_000,

		WireIters: 2_000,

		ParallelRows:     150_000,
		ParallelIters:    8,
		ParallelDMLIters: 5,

		DurabilityDuration: 250 * time.Millisecond,

		StatsScale:    1,
		QORepeats:     2,
		QOTrainPasses: 60,
	}
}

// FullScale approaches the paper's parameters (minutes to hours).
func FullScale() Scale {
	return Scale{
		BatchSize:        4096,
		Fig6aBatches:     80,
		Fig6bBatchCounts: []int{20, 40, 80, 160, 320, 640},
		Fig6cSwitchEvery: 81920,
		Window:           80,

		YCSBRecords:    1_000_000,
		CCDuration:     5 * time.Second,
		Fig7bPhase:     30 * time.Second,
		Fig7bIntervals: 15,

		PreparedRows:  200_000,
		PreparedIters: 30_000,

		WireIters: 20_000,

		ParallelRows:     1_000_000,
		ParallelIters:    20,
		ParallelDMLIters: 10,

		DurabilityDuration: 2 * time.Second,

		StatsScale:    4,
		QORepeats:     3,
		QOTrainPasses: 120,
	}
}
