package bench

import "testing"

func TestExpectationsCheck(t *testing.T) {
	results := map[string]any{
		"fig6a": []Fig6aRow{{Workload: "E", TputSpeedup: 1.0}, {Workload: "H", TputSpeedup: 1.2}},
		"fig6c": &Fig6cResult{
			StorageFullBytes: 1000, StorageIncBytes: 300,
			MeanPostDriftNoInc: 0.5, MeanPostDriftInc: 0.4,
		},
		"fig7b": &Fig7bResult{PostDriftRatio: 0.5},
	}

	pass := &Expectations{
		Fig6a: &Fig6aExpectations{MinTputSpeedup: map[string]float64{"E": 0.8, "H": 0.8}},
		Fig6c: &Fig6cExpectations{MaxStorageRatio: 0.5, MaxPostDriftLossRatio: 1.1},
		Fig7b: &Fig7bExpectations{MinPostDriftRatio: 0.25},
	}
	if v := pass.Check(results); len(v) != 0 {
		t.Fatalf("expected pass, got %v", v)
	}

	failing := &Expectations{
		Fig6a: &Fig6aExpectations{MinTputSpeedup: map[string]float64{"E": 1.5}},
		Fig6c: &Fig6cExpectations{MaxStorageRatio: 0.1},
		Fig7b: &Fig7bExpectations{MinPostDriftRatio: 0.9},
	}
	if v := failing.Check(results); len(v) != 3 {
		t.Fatalf("expected 3 violations, got %v", v)
	}

	// Experiments absent from results are skipped, not violations.
	if v := failing.Check(map[string]any{}); len(v) != 0 {
		t.Fatalf("missing experiments must be skipped, got %v", v)
	}
}

// TestParallelExpectationsGate: the scaling floor applies only when the
// measuring host had >= 4 procs; under that, results are recorded but never
// violations.
func TestParallelExpectationsGate(t *testing.T) {
	exp := &Expectations{Parallel: &ParallelExpectations{MinScanAggSpeedup4: 1.6, MinJoinSpeedup4: 1.2}}

	slow := map[string]any{"parallel": &ParallelResult{MaxProcs: 4, ScanAggSpeedup4: 1.1, JoinSpeedup4: 1.0}}
	if v := exp.Check(slow); len(v) != 2 {
		t.Fatalf("expected 2 violations on a 4-proc host below both floors, got %v", v)
	}
	fast := map[string]any{"parallel": &ParallelResult{MaxProcs: 4, ScanAggSpeedup4: 2.4, JoinSpeedup4: 1.9}}
	if v := exp.Check(fast); len(v) != 0 {
		t.Fatalf("expected pass, got %v", v)
	}
	onecore := map[string]any{"parallel": &ParallelResult{MaxProcs: 1, ScanAggSpeedup4: 0.9, JoinSpeedup4: 0.9}}
	if v := exp.Check(onecore); len(v) != 0 {
		t.Fatalf("sub-4-proc host must not gate, got %v", v)
	}
}
