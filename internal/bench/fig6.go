package bench

import (
	"fmt"
	"strings"
	"time"

	"neurdb/internal/aiengine"
	"neurdb/internal/models"
	"neurdb/internal/monitor"
	"neurdb/internal/workload"
)

// avazuSpec is the model shape for Workload E.
func avazuSpec(seed int64) models.Spec {
	return models.Spec{
		Arch: "armnet", Fields: workload.AvazuFields, Vocab: workload.AvazuTotalVocab,
		EmbDim: 8, Hidden: 64, Classification: false, Seed: seed,
	}
}

// diabetesSpec is the model shape for Workload H.
func diabetesSpec(seed int64) models.Spec {
	return models.Spec{
		Arch: "armnet", Fields: workload.DiabetesFields, Vocab: workload.DiabetesTotalVocab,
		EmbDim: 8, Hidden: 64, Classification: true, Seed: seed,
	}
}

// Fig6aRow is one workload's end-to-end comparison (paper Fig. 6a).
type Fig6aRow struct {
	Workload         string
	BaselineLatency  time.Duration
	NeurDBLatency    time.Duration
	BaselineTput     float64 // samples/sec
	NeurDBTput       float64
	LatencyReduction float64 // fraction, paper: 41.3% (E), 48.6% (H)
	TputSpeedup      float64 // paper: 1.96× (E), 2.92× (H)
}

// RunFig6a measures end-to-end latency and training throughput of NeurDB's
// in-database streaming path versus the PostgreSQL+P batch-loading baseline
// for Workloads E and H.
func RunFig6a(sc Scale) ([]Fig6aRow, error) {
	var out []Fig6aRow

	// Workload E (Avazu CTR regression).
	{
		base, err := aiengine.BaselineTrain(avazuSpec(1),
			aiengine.TrainConfig{BatchSize: sc.BatchSize, LR: 0.01},
			workload.NewAvazu(11).NewBatchSource(sc.BatchSize, sc.Fig6aBatches, 0),
			workload.AvazuFeaturizer)
		if err != nil {
			return nil, err
		}
		rt, addr, err := aiengine.StartRuntime()
		if err != nil {
			return nil, err
		}
		store := models.NewStore()
		engine := aiengine.NewEngine(store)
		engine.AddRuntime(addr)
		loader := aiengine.NewStreamingLoader(
			workload.NewAvazu(11).NewBatchSource(sc.BatchSize, sc.Fig6aBatches, 0),
			workload.AvazuFeaturizer, sc.Window)
		neur, err := engine.Train(avazuSpec(1),
			aiengine.TrainConfig{BatchSize: sc.BatchSize, Window: sc.Window, LR: 0.01}, loader)
		rt.Stop()
		if err != nil {
			return nil, err
		}
		out = append(out, fig6aRow("E", base, neur))
	}

	// Workload H (Diabetes classification).
	{
		base, err := aiengine.BaselineTrain(diabetesSpec(2),
			aiengine.TrainConfig{BatchSize: sc.BatchSize, LR: 0.01},
			workload.NewDiabetes(12).NewSource(sc.BatchSize, sc.Fig6aBatches),
			workload.DiabetesFeaturizer)
		if err != nil {
			return nil, err
		}
		rt, addr, err := aiengine.StartRuntime()
		if err != nil {
			return nil, err
		}
		store := models.NewStore()
		engine := aiengine.NewEngine(store)
		engine.AddRuntime(addr)
		loader := aiengine.NewStreamingLoader(
			workload.NewDiabetes(12).NewSource(sc.BatchSize, sc.Fig6aBatches),
			workload.DiabetesFeaturizer, sc.Window)
		neur, err := engine.Train(diabetesSpec(2),
			aiengine.TrainConfig{BatchSize: sc.BatchSize, Window: sc.Window, LR: 0.01}, loader)
		rt.Stop()
		if err != nil {
			return nil, err
		}
		out = append(out, fig6aRow("H", base, neur))
	}
	return out, nil
}

func fig6aRow(name string, base, neur *aiengine.TrainOutcome) Fig6aRow {
	row := Fig6aRow{
		Workload:        name,
		BaselineLatency: base.Duration,
		NeurDBLatency:   neur.Duration,
		BaselineTput:    base.Throughput,
		NeurDBTput:      neur.Throughput,
	}
	if base.Duration > 0 {
		row.LatencyReduction = 1 - neur.Duration.Seconds()/base.Duration.Seconds()
	}
	if base.Throughput > 0 {
		row.TputSpeedup = neur.Throughput / base.Throughput
	}
	return row
}

// RenderFig6a prints the paper-vs-measured table.
func RenderFig6a(rows []Fig6aRow) string {
	var sb strings.Builder
	sb.WriteString("Figure 6(a) — End-to-end AI analytics: NeurDB vs PostgreSQL+P\n")
	sb.WriteString("paper: E: 41.3% lower latency, 1.96x throughput; H: 48.6% lower latency, 2.92x throughput\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %s: latency %8.0fms -> %8.0fms (%.1f%% lower) | tput %8.0f -> %8.0f samples/s (%.2fx)\n",
			r.Workload,
			float64(r.BaselineLatency.Milliseconds()), float64(r.NeurDBLatency.Milliseconds()),
			r.LatencyReduction*100, r.BaselineTput, r.NeurDBTput, r.TputSpeedup)
	}
	return sb.String()
}

// Fig6bPoint is one data-volume point (paper Fig. 6b).
type Fig6bPoint struct {
	Batches  int
	Baseline time.Duration
	NeurDB   time.Duration
}

// RunFig6b sweeps the number of data batches for Workload E.
func RunFig6b(sc Scale) ([]Fig6bPoint, error) {
	var out []Fig6bPoint
	for _, n := range sc.Fig6bBatchCounts {
		base, err := aiengine.BaselineTrain(avazuSpec(1),
			aiengine.TrainConfig{BatchSize: sc.BatchSize, LR: 0.01},
			workload.NewAvazu(21).NewBatchSource(sc.BatchSize, n, 0),
			workload.AvazuFeaturizer)
		if err != nil {
			return nil, err
		}
		rt, addr, err := aiengine.StartRuntime()
		if err != nil {
			return nil, err
		}
		engine := aiengine.NewEngine(models.NewStore())
		engine.AddRuntime(addr)
		loader := aiengine.NewStreamingLoader(
			workload.NewAvazu(21).NewBatchSource(sc.BatchSize, n, 0),
			workload.AvazuFeaturizer, sc.Window)
		neur, err := engine.Train(avazuSpec(1),
			aiengine.TrainConfig{BatchSize: sc.BatchSize, Window: sc.Window, LR: 0.01}, loader)
		rt.Stop()
		if err != nil {
			return nil, err
		}
		out = append(out, Fig6bPoint{Batches: n, Baseline: base.Duration, NeurDB: neur.Duration})
	}
	return out, nil
}

// RenderFig6b prints the sweep.
func RenderFig6b(points []Fig6bPoint) string {
	var sb strings.Builder
	sb.WriteString("Figure 6(b) — Effect of data volume (Workload E latency)\n")
	sb.WriteString("paper: NeurDB consistently below PostgreSQL+P, both growing ~linearly\n")
	for _, p := range points {
		marker := ""
		if p.NeurDB < p.Baseline {
			marker = "  [NeurDB wins]"
		}
		fmt.Fprintf(&sb, "  %4d batches: PostgreSQL+P %8.0fms | NeurDB %8.0fms%s\n",
			p.Batches, float64(p.Baseline.Milliseconds()), float64(p.NeurDB.Milliseconds()), marker)
	}
	return sb.String()
}

// Fig6cResult carries the loss trajectories with and without incremental
// updates under cluster drift (paper Fig. 6c).
type Fig6cResult struct {
	SamplesAxis []int
	LossNoInc   []float64
	LossInc     []float64
	DriftPoints []int // sample indexes where the cluster switched
	// MeanPostDriftNoInc/Inc average the loss over post-drift segments —
	// the scalar the shape check uses.
	MeanPostDriftNoInc float64
	MeanPostDriftInc   float64
	// StorageFullBytes is what storing every post-drift version as a full
	// model would cost; StorageIncBytes is what the incremental layer-level
	// saves actually cost (paper Fig. 3's storage-saving claim).
	StorageFullBytes int64
	StorageIncBytes  int64
}

// RunFig6c reproduces the drift-adaptation experiment: training over the
// Avazu stream with a cluster switch every SwitchEvery samples (C1..C5).
// The no-incremental path is the classical workflow the paper's
// introduction criticizes: when drift is detected, the model is completely
// retrained on the new data (fresh initialization, full save). The
// incremental path fine-tunes the previous version's final layers and
// persists only those layers.
func RunFig6c(sc Scale) (*Fig6cResult, error) {
	batches := sc.Fig6cSwitchEvery * workloadClusters / sc.BatchSize
	if batches < workloadClusters {
		batches = workloadClusters
	}
	batchesPerCluster := batches / workloadClusters

	res := &Fig6cResult{}

	// Path 1: complete retraining at each detected drift — a fresh model
	// trained on the new cluster's data, stored as a full version.
	{
		store := models.NewStore()
		engine := aiengine.NewEngine(store)
		gen := workload.NewAvazu(31)
		for c := 0; c < workloadClusters; c++ {
			gen.SetCluster(c)
			loader := aiengine.NewStreamingLoader(
				gen.NewBatchSource(sc.BatchSize, batchesPerCluster, 0),
				workload.AvazuFeaturizer, sc.Window)
			out, err := engine.Train(avazuSpec(3),
				aiengine.TrainConfig{BatchSize: sc.BatchSize, Window: sc.Window, LR: 0.01}, loader)
			if err != nil {
				return nil, err
			}
			res.LossNoInc = append(res.LossNoInc, out.Losses...)
		}
		res.StorageFullBytes = store.StorageBytes()
	}

	// Path 2: incremental updates over the *same* sample stream (one
	// generator, sequential draws — identical data to path 1). Train fully
	// on C1, then fine-tune the non-embedding layers on each subsequent
	// cluster (drift detected by a loss-spike monitor in the harness loop).
	{
		store := models.NewStore()
		engine := aiengine.NewEngine(store)
		gen := workload.NewAvazu(31)
		gen.SetCluster(0)
		loader := aiengine.NewStreamingLoader(
			gen.NewBatchSource(sc.BatchSize, batchesPerCluster, 0),
			workload.AvazuFeaturizer, sc.Window)
		out, err := engine.Train(avazuSpec(3),
			aiengine.TrainConfig{BatchSize: sc.BatchSize, Window: sc.Window, LR: 0.01}, loader)
		if err != nil {
			return nil, err
		}
		res.LossInc = append(res.LossInc, out.Losses...)
		tracker := monitor.NewTracker()
		tracker.SetBaseline("loss", mean(out.Losses[len(out.Losses)/2:]))
		for c := 1; c < workloadClusters; c++ {
			gen.SetCluster(c)
			ftLoader := aiengine.NewStreamingLoader(
				gen.NewBatchSource(sc.BatchSize, batchesPerCluster, 0),
				workload.AvazuFeaturizer, sc.Window)
			// The monitor's spike trigger models detection; fine-tuning is
			// the triggered adaptation: freeze embedding + interaction,
			// adapt the head at a boosted learning rate.
			ft, err := engine.FineTune(out.MID, 0, 2, 0.03, ftLoader)
			if err != nil {
				return nil, err
			}
			res.LossInc = append(res.LossInc, ft.Losses...)
			for _, l := range ft.Losses {
				tracker.Observe("loss", l)
			}
		}
		res.StorageIncBytes = store.StorageBytes()
	}

	for i := range res.LossNoInc {
		res.SamplesAxis = append(res.SamplesAxis, i*sc.BatchSize)
	}
	for c := 1; c < workloadClusters; c++ {
		res.DriftPoints = append(res.DriftPoints, c*batchesPerCluster*sc.BatchSize)
	}
	// Post-drift means: batches after each switch (excluding the first
	// cluster's cold start).
	res.MeanPostDriftNoInc = meanAfter(res.LossNoInc, batchesPerCluster)
	res.MeanPostDriftInc = meanAfter(res.LossInc, batchesPerCluster)
	return res, nil
}

const workloadClusters = workload.AvazuClusters

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func meanAfter(xs []float64, from int) float64 {
	if from >= len(xs) {
		return 0
	}
	return mean(xs[from:])
}

// RenderFig6c prints the drift comparison.
func RenderFig6c(r *Fig6cResult) string {
	var sb strings.Builder
	sb.WriteString("Figure 6(c) — Loss under data-distribution drift (cluster switch C1..C5)\n")
	sb.WriteString("paper: with incremental updates, loss is lower after each drift and converges faster\n")
	fmt.Fprintf(&sb, "  post-drift mean loss: w/o incremental %.4f | with incremental %.4f\n",
		r.MeanPostDriftNoInc, r.MeanPostDriftInc)
	fmt.Fprintf(&sb, "  model storage: full saves %d bytes | incremental saves %d bytes\n",
		r.StorageFullBytes, r.StorageIncBytes)
	// Compact sparkline of both series (8 buckets).
	fmt.Fprintf(&sb, "  loss (w/o inc): %s\n", sparkline(r.LossNoInc, 16))
	fmt.Fprintf(&sb, "  loss (w/ inc):  %s\n", sparkline(r.LossInc, 16))
	return sb.String()
}

// sparkline renders a coarse text plot.
func sparkline(xs []float64, buckets int) string {
	if len(xs) == 0 {
		return ""
	}
	marks := []rune("▁▂▃▄▅▆▇█")
	per := len(xs) / buckets
	if per < 1 {
		per = 1
	}
	var vals []float64
	for i := 0; i+per <= len(xs); i += per {
		vals = append(vals, mean(xs[i:i+per]))
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	var sb strings.Builder
	for _, v := range vals {
		idx := int((v - lo) / span * float64(len(marks)-1))
		sb.WriteRune(marks[idx])
	}
	return sb.String()
}
