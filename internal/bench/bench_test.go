package bench

import (
	"testing"
	"time"
)

// tinyScale shrinks everything for CI smoke tests.
func tinyScale() Scale {
	return Scale{
		BatchSize:        128,
		Fig6aBatches:     8,
		Fig6bBatchCounts: []int{2, 4},
		Fig6cSwitchEvery: 512,
		Window:           8,

		YCSBRecords:    20_000,
		CCDuration:     80 * time.Millisecond,
		Fig7bPhase:     300 * time.Millisecond,
		Fig7bIntervals: 3,

		StatsScale:    1,
		QORepeats:     1,
		QOTrainPasses: 20,

		DurabilityDuration: 60 * time.Millisecond,
	}
}

func TestRunTable1(t *testing.T) {
	rows, err := RunTable1(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	if rows[0].Latency <= 0 || rows[1].Latency <= 0 {
		t.Fatal("latency not measured")
	}
	if out := RenderTable1(rows); out == "" {
		t.Fatal("empty render")
	}
}

func TestRunFig6a(t *testing.T) {
	rows, err := RunFig6a(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Workload != "E" || rows[1].Workload != "H" {
		t.Fatalf("rows: %+v", rows)
	}
	for _, r := range rows {
		if r.NeurDBTput <= 0 || r.BaselineTput <= 0 {
			t.Fatalf("throughput missing: %+v", r)
		}
	}
	if out := RenderFig6a(rows); out == "" {
		t.Fatal("empty render")
	}
}

func TestRunFig6b(t *testing.T) {
	points, err := RunFig6b(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points: %d", len(points))
	}
	// Latency grows with batch count for both systems.
	if points[1].NeurDB <= points[0].NeurDB/4 {
		t.Fatalf("NeurDB latency not scaling: %+v", points)
	}
	if out := RenderFig6b(points); out == "" {
		t.Fatal("empty render")
	}
}

func TestRunFig6c(t *testing.T) {
	res, err := RunFig6c(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LossNoInc) == 0 || len(res.LossInc) == 0 {
		t.Fatal("loss series missing")
	}
	if res.StorageIncBytes >= res.StorageFullBytes {
		t.Fatalf("incremental storage (%d) should undercut full saves (%d)",
			res.StorageIncBytes, res.StorageFullBytes)
	}
	if out := RenderFig6c(res); out == "" {
		t.Fatal("empty render")
	}
}

func TestRunFig7a(t *testing.T) {
	rows, err := RunFig7a(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Threads != 4 || rows[1].Threads != 16 {
		t.Fatalf("rows: %+v", rows)
	}
	for _, r := range rows {
		if r.PG <= 0 || r.NeurDB <= 0 {
			t.Fatalf("throughput missing: %+v", r)
		}
	}
	if out := RenderFig7a(rows); out == "" {
		t.Fatal("empty render")
	}
}

func TestRunFig7b(t *testing.T) {
	res, err := RunFig7b(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * tinyScale().Fig7bIntervals
	if len(res.NeurDBCC) != want || len(res.Polyjuice) != want {
		t.Fatalf("series length: %d vs %d", len(res.NeurDBCC), want)
	}
	if res.PostDriftRatio <= 0 {
		t.Fatal("ratio missing")
	}
	if out := RenderFig7b(res); out == "" {
		t.Fatal("empty render")
	}
}

func TestRunDurability(t *testing.T) {
	res, err := RunDurability(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(durabilityWriters) {
		t.Fatalf("points: %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.GroupTps <= 0 || p.NoGroupTps <= 0 {
			t.Fatalf("throughput missing: %+v", p)
		}
	}
	if res.FsyncUs <= 0 || res.WalOffTps <= 0 || res.IntervalTps <= 0 {
		t.Fatalf("reference points missing: %+v", res)
	}
	if out := RenderDurability(res); out == "" {
		t.Fatal("empty render")
	}
	t.Logf("\n%s", RenderDurability(res))
}

func TestRunFig8(t *testing.T) {
	res, err := RunFig8(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 3 || res.Queries != 8 {
		t.Fatalf("shape: %+v", res.Levels)
	}
	for _, level := range res.Levels {
		for _, sys := range Fig8Optimizers {
			lat := res.LatencyMS[level][sys]
			if len(lat) != 8 {
				t.Fatalf("%s/%s: %d latencies", level, sys, len(lat))
			}
			for qi, ms := range lat {
				if ms <= 0 {
					t.Fatalf("%s/%s Q%d: non-positive latency", level, sys, qi+1)
				}
			}
		}
	}
	if out := RenderFig8(res); out == "" {
		t.Fatal("empty render")
	}
	t.Logf("\n%s", RenderFig8(res))
}
