package bench

import (
	"fmt"
	"strings"
	"time"

	"neurdb/internal/cc"
	"neurdb/internal/monitor"
	"neurdb/internal/workload"
)

// Fig7aRow is one thread-count comparison (paper Fig. 7a).
type Fig7aRow struct {
	Threads     int
	PG          float64 // SSI baseline throughput (txns/s)
	NeurDB      float64 // learned CC throughput
	Speedup     float64 // paper: up to 1.44×
	PGAbort     float64
	NeurDBAbort float64
}

// RunFig7a compares the learned CC against the SSI baseline on the YCSB
// micro-benchmark (5 selects + 5 updates per txn) at 4 and 16 threads.
func RunFig7a(sc Scale) ([]Fig7aRow, error) {
	gen := workload.NewYCSB(sc.YCSBRecords, 0.9)
	var out []Fig7aRow
	for _, threads := range []int{4, 16} {
		store := cc.NewStore(sc.YCSBRecords)
		ssiEng := cc.NewEngine(store, cc.NewSSI())
		pg := ssiEng.Run(gen, threads, sc.CCDuration)

		store2 := cc.NewStore(sc.YCSBRecords)
		learnedEng := cc.NewEngine(store2, cc.NewLearnedPolicy(1))
		nd := learnedEng.Run(gen, threads, sc.CCDuration)

		row := Fig7aRow{
			Threads: threads,
			PG:      pg.Throughput, NeurDB: nd.Throughput,
			PGAbort: pg.AbortRate, NeurDBAbort: nd.AbortRate,
		}
		if pg.Throughput > 0 {
			row.Speedup = nd.Throughput / pg.Throughput
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderFig7a prints the comparison.
func RenderFig7a(rows []Fig7aRow) string {
	var sb strings.Builder
	sb.WriteString("Figure 7(a) — Learned CC vs PostgreSQL (SSI) on YCSB micro-benchmark\n")
	sb.WriteString("paper: NeurDB up to 1.44x higher throughput\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %2d threads: PostgreSQL %8.0f txn/s (abort %4.1f%%) | NeurDB %8.0f txn/s (abort %4.1f%%) | %.2fx\n",
			r.Threads, r.PG, r.PGAbort*100, r.NeurDB, r.NeurDBAbort*100, r.Speedup)
	}
	return sb.String()
}

// Fig7bPhaseSpec is one drift phase of the TPC-C experiment.
type Fig7bPhaseSpec struct {
	Threads    int
	Warehouses int
}

// Fig7bPhases reproduces the paper's drift schedule: 8 threads/1 warehouse →
// 8 threads/2 warehouses → 16 threads/1 warehouse.
func Fig7bPhases() []Fig7bPhaseSpec {
	return []Fig7bPhaseSpec{
		{Threads: 8, Warehouses: 1},
		{Threads: 8, Warehouses: 2},
		{Threads: 16, Warehouses: 1},
	}
}

// Fig7bResult carries throughput series under drift.
type Fig7bResult struct {
	TimesSec    []float64
	Polyjuice   []float64
	NeurDBCC    []float64
	PhaseStarts []float64
	// PostDriftRatio compares mean post-drift throughput (phases 2-3):
	// paper reports NeurDB(CC) up to 2.05× Polyjuice.
	PostDriftRatio       float64
	NeurDBAdaptations    int
	PolyjuiceGenerations int
}

// RunFig7b runs the TPC-C drift schedule under both adaptive CC systems.
// Both run the same monitor-driven loop: measure an interval, feed the
// throughput tracker, and adapt when a drop is detected — NeurDB(CC) with
// one two-phase adaptation (Bayesian-optimization filtering + RL
// refinement), Polyjuice with one evolutionary generation per degraded
// interval (its adaptation mechanism, which is why it recovers slower).
func RunFig7b(sc Scale) (*Fig7bResult, error) {
	phases := Fig7bPhases()
	maxWh := 2
	interval := sc.Fig7bPhase / time.Duration(sc.Fig7bIntervals)
	res := &Fig7bResult{}

	// NeurDB(CC).
	ndStore := cc.NewStore(workload.StoreSize(maxWh))
	ndPolicy := cc.NewLearnedPolicy(1)
	ndEngine := cc.NewEngine(ndStore, ndPolicy)
	ndTracker := monitor.NewTracker()

	// Polyjuice.
	pjStore := cc.NewStore(workload.StoreSize(maxWh))
	pjPolicy := cc.NewPolyjuice()
	pjEngine := cc.NewEngine(pjStore, pjPolicy)
	pjTracker := monitor.NewTracker()
	pjTrainer := workloadPolyjuiceTrainer(sc)

	ndGen := workload.NewTPCC(1)
	pjGen := workload.NewTPCC(1)

	adapter := cc.NewAdapter(7)
	adapter.EvalWindow = interval / 4
	adapter.RefineTime = interval / 2

	// Pre-training on the initial phase, as the paper's protocol implies:
	// Polyjuice's table is tuned by its evolutionary algorithm, NeurDB(CC)
	// by one two-phase adaptation.
	pre := phases[0]
	for g := 0; g < 3; g++ {
		best, _ := pjTrainer.EvolveOnce(pjEngine, pjGen, pre.Threads, pjEngine.Policy().(*cc.PolyjuicePolicy))
		pjEngine.SetPolicy(best)
	}
	ndEngine.SetPolicy(adapter.Adapt(ndEngine, ndGen, pre.Threads, ndPolicy))
	ndStore.Reset()
	pjStore.Reset()

	elapsed := 0.0
	for pi, ph := range phases {
		ndGen.SetWarehouses(ph.Warehouses)
		pjGen.SetWarehouses(ph.Warehouses)
		res.PhaseStarts = append(res.PhaseStarts, elapsed)
		for i := 0; i < sc.Fig7bIntervals; i++ {
			// NeurDB(CC): measure, monitor, adapt on drop.
			ndRes := ndEngine.Run(ndGen, ph.Threads, interval)
			res.NeurDBCC = append(res.NeurDBCC, ndRes.Throughput)
			ndTracker.Observe("tps", ndRes.Throughput)
			// Bounded-spin latch waits that expired this interval: the
			// deadlock-breaker firing, an early congestion signal alongside
			// the abort rate.
			ndTracker.Count("cc.latch_timeouts", float64(ndEngine.LatchTimeouts()))
			if ndTracker.Baseline("tps") == 0 && pi == 0 && i >= sc.Fig7bIntervals/2 {
				ndTracker.SetBaseline("tps", ndTracker.Mean("tps"))
			}
			if base := ndTracker.Baseline("tps"); base > 0 && ndRes.Throughput < base*0.7 {
				cur := ndEngine.Policy().(*cc.LearnedPolicy)
				adapted := adapter.Adapt(ndEngine, ndGen, ph.Threads, cur)
				ndEngine.SetPolicy(adapted)
				res.NeurDBAdaptations++
				// Rebaseline after adapting to the new phase.
				ndTracker.SetBaseline("tps", ndRes.Throughput)
			}

			// Polyjuice: measure, monitor, one EA generation on drop.
			pjRes := pjEngine.Run(pjGen, ph.Threads, interval)
			res.Polyjuice = append(res.Polyjuice, pjRes.Throughput)
			pjTracker.Observe("tps", pjRes.Throughput)
			pjTracker.Count("cc.latch_timeouts", float64(pjEngine.LatchTimeouts()))
			if pjTracker.Baseline("tps") == 0 && pi == 0 && i >= sc.Fig7bIntervals/2 {
				pjTracker.SetBaseline("tps", pjTracker.Mean("tps"))
			}
			if base := pjTracker.Baseline("tps"); base > 0 && pjRes.Throughput < base*0.7 {
				best, _ := pjTrainer.EvolveOnce(pjEngine, pjGen, ph.Threads, pjEngine.Policy().(*cc.PolyjuicePolicy))
				pjEngine.SetPolicy(best)
				res.PolyjuiceGenerations++
				if res.PolyjuiceGenerations%6 == 0 {
					pjTracker.SetBaseline("tps", pjRes.Throughput)
				}
			}

			res.TimesSec = append(res.TimesSec, elapsed)
			elapsed += interval.Seconds()
		}
	}

	// Post-drift comparison over phases 2 and 3.
	n := sc.Fig7bIntervals
	ndPost := mean(res.NeurDBCC[n:])
	pjPost := mean(res.Polyjuice[n:])
	if pjPost > 0 {
		res.PostDriftRatio = ndPost / pjPost
	}
	return res, nil
}

func workloadPolyjuiceTrainer(sc Scale) *cc.PolyjuiceTrainer {
	tr := cc.NewPolyjuiceTrainer(2, workload.MaxOps, 3)
	tr.Interval = sc.Fig7bPhase / time.Duration(sc.Fig7bIntervals) / 6
	return tr
}

// RenderFig7b prints the drift series.
func RenderFig7b(r *Fig7bResult) string {
	var sb strings.Builder
	sb.WriteString("Figure 7(b) — Throughput under TPC-C drift (8thr/1wh -> 8thr/2wh -> 16thr/1wh)\n")
	sb.WriteString("paper: NeurDB(CC) adapts quickly after each shift, up to 2.05x Polyjuice\n")
	fmt.Fprintf(&sb, "  post-drift mean throughput ratio NeurDB(CC)/Polyjuice: %.2fx\n", r.PostDriftRatio)
	fmt.Fprintf(&sb, "  adaptations: NeurDB two-phase %d | Polyjuice EA generations %d\n",
		r.NeurDBAdaptations, r.PolyjuiceGenerations)
	fmt.Fprintf(&sb, "  NeurDB(CC):  %s\n", sparkline(r.NeurDBCC, len(r.NeurDBCC)))
	fmt.Fprintf(&sb, "  Polyjuice:   %s\n", sparkline(r.Polyjuice, len(r.Polyjuice)))
	for i, t := range r.TimesSec {
		fmt.Fprintf(&sb, "  t=%5.1fs  polyjuice %8.0f  neurdb %8.0f\n", t, r.Polyjuice[i], r.NeurDBCC[i])
	}
	return sb.String()
}
