package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// Expectations pins floors/ceilings for the stable scalars the paper
// harness produces. CI runs `neurdb-bench -json -exp ... -check FILE`
// against the committed seed expectations (ci/bench_expectations.json) and
// fails the build when a measured result regresses past them — the
// thresholds carry slack over the seed measurements so run-to-run noise
// passes but a real regression (a broken streaming path, a storage-saving
// regression, a collapsed post-drift recovery) does not. Experiments absent
// from either side are skipped, so the gate only constrains what a given CI
// invocation actually ran.
type Expectations struct {
	Fig6a    *Fig6aExpectations    `json:"fig6a,omitempty"`
	Fig6c    *Fig6cExpectations    `json:"fig6c,omitempty"`
	Fig7a    *Fig7aExpectations    `json:"fig7a,omitempty"`
	Fig7b    *Fig7bExpectations    `json:"fig7b,omitempty"`
	Table1   *Table1Expectations   `json:"table1,omitempty"`
	Prepared *PreparedExpectations `json:"prepared,omitempty"`
	Parallel *ParallelExpectations `json:"parallel,omitempty"`
	// ParallelDML gates write-path scaling under the "parallel-dml"
	// experiment key.
	ParallelDML *ParallelDMLExpectations `json:"parallel_dml,omitempty"`
	Wire        *WireExpectations        `json:"wire,omitempty"`
	// Durability gates the WAL commit path under the "durability"
	// experiment key.
	Durability *DurabilityExpectations `json:"durability,omitempty"`
}

// Fig6aExpectations gates the end-to-end AI-analytics comparison.
type Fig6aExpectations struct {
	// MinTputSpeedup is the per-workload floor on NeurDB-vs-baseline
	// training throughput (paper reports 1.96x/2.92x at full scale).
	MinTputSpeedup map[string]float64 `json:"min_tput_speedup"`
}

// Fig6cExpectations gates the drift-adaptation experiment.
type Fig6cExpectations struct {
	// MaxStorageRatio bounds incremental-save bytes over full-save bytes.
	MaxStorageRatio float64 `json:"max_storage_ratio"`
	// MaxPostDriftLossRatio bounds mean post-drift loss with incremental
	// updates over the full-retrain baseline (≤1 means no worse).
	MaxPostDriftLossRatio float64 `json:"max_postdrift_loss_ratio"`
}

// Fig7aExpectations gates the learned-CC throughput comparison.
type Fig7aExpectations struct {
	// MinSpeedup is the floor on learned-CC/SSI throughput at any
	// measured thread count.
	MinSpeedup float64 `json:"min_speedup"`
}

// Fig7bExpectations gates the CC drift experiment.
type Fig7bExpectations struct {
	// MinPostDriftRatio is the floor on NeurDB(CC)/Polyjuice post-drift
	// throughput.
	MinPostDriftRatio float64 `json:"min_postdrift_ratio"`
}

// Table1Expectations gates the end-to-end PREDICT statements.
type Table1Expectations struct {
	// MaxFinalLoss bounds each statement's final training loss.
	MaxFinalLoss float64 `json:"max_final_loss"`
	// MinRows is the floor on returned prediction rows per statement.
	MinRows int `json:"min_rows"`
}

// PreparedExpectations gates the prepared-statement throughput comparison.
type PreparedExpectations struct {
	// MinSpeedup is the floor on reparse/prepared ns-per-op (prepared
	// re-execution must stay measurably faster than parse-per-call Exec).
	MinSpeedup float64 `json:"min_speedup"`
	// MinCacheHitRate is the floor on the plan-cache hit rate during the
	// prepared run (a collapse means invalidation churn or a broken cache).
	MinCacheHitRate float64 `json:"min_cache_hit_rate"`
}

// ParallelExpectations gates morsel-driven intra-query scaling. The floors
// only apply when the measured host actually had >= 4 procs (GOMAXPROCS):
// on a 1-core runner 4 workers time-slice one core and no speedup exists to
// gate.
type ParallelExpectations struct {
	// MinScanAggSpeedup4 is the floor on t(1 worker)/t(4 workers) for the
	// full-table scan+filter+aggregate pipeline.
	MinScanAggSpeedup4 float64 `json:"min_scanagg_speedup4"`
	// MinJoinSpeedup4 is the floor for the hash-join pipeline (0 = not
	// gated).
	MinJoinSpeedup4 float64 `json:"min_join_speedup4"`
}

// ParallelDMLExpectations gates morsel-parallel DML scaling. As with the
// read-side parallel gate, the floors only apply when the measured host had
// >= 4 procs: on fewer procs 4 workers time-slice and there is no speedup
// to gate.
type ParallelDMLExpectations struct {
	// MinUpdateSpeedup4 is the floor on t(1 worker)/t(4 workers) for the
	// 75%-of-table UPDATE statement.
	MinUpdateSpeedup4 float64 `json:"min_update_speedup4"`
	// MinDeleteSpeedup4 is the floor for the 25%-of-table DELETE statement
	// (0 = not gated).
	MinDeleteSpeedup4 float64 `json:"min_delete_speedup4"`
}

// WireExpectations gates the remote-protocol throughput comparison.
type WireExpectations struct {
	// MinSpeedup is the floor on simple/prepared ns-per-op over the wire:
	// both paths pay the same loopback round trip, so the floor is
	// conservative, but Parse/Bind/Execute must stay measurably ahead of
	// per-call reparse or wire plan reuse has broken.
	MinSpeedup float64 `json:"min_speedup"`
	// MinCacheHitRate is the floor on the server plan-cache hit rate while
	// the prepared path runs.
	MinCacheHitRate float64 `json:"min_cache_hit_rate"`
}

// DurabilityExpectations gates the WAL commit path. The group-commit floor
// only applies when raw fsync on the bench host costs at least
// MinGateFsyncUs: on tmpfs or write-cached disks an fsync is nearly free,
// batching it amortizes nothing, and there is no speedup to gate.
type DurabilityExpectations struct {
	// MinGroupSpeedup32 is the floor on group-commit over fsync-per-commit
	// throughput at the top writer count (the headline claim: batching
	// amortizes the fsync across concurrent committers).
	MinGroupSpeedup32 float64 `json:"min_group_speedup32"`
	// MaxIntervalOverhead is the ceiling on wal-off over interval-sync
	// throughput: WAL append plus a background fsync must stay within this
	// factor of running with no log at all (0 = not gated).
	MaxIntervalOverhead float64 `json:"max_interval_overhead"`
	// MinGateFsyncUs disables the group-commit floor on hosts where raw
	// fsync is cheaper than this many microseconds.
	MinGateFsyncUs float64 `json:"min_gate_fsync_us"`
}

// LoadExpectations reads an expectations file.
func LoadExpectations(path string) (*Expectations, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var e Expectations
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("bench: parse expectations %s: %w", path, err)
	}
	return &e, nil
}

// Check validates collected experiment results (as the neurdb-bench runner
// accumulates them, keyed by experiment name) against the expectations and
// returns one human-readable violation per failed threshold.
func (e *Expectations) Check(results map[string]any) []string {
	var bad []string
	fail := func(format string, args ...any) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}

	if e.Fig6a != nil {
		if rows, ok := results["fig6a"].([]Fig6aRow); ok {
			for _, r := range rows {
				floor, gated := e.Fig6a.MinTputSpeedup[r.Workload]
				if gated && r.TputSpeedup < floor {
					fail("fig6a %s: tput speedup %.3f below floor %.3f", r.Workload, r.TputSpeedup, floor)
				}
			}
		}
	}
	if e.Fig6c != nil {
		if res, ok := results["fig6c"].(*Fig6cResult); ok {
			if res.StorageFullBytes > 0 {
				ratio := float64(res.StorageIncBytes) / float64(res.StorageFullBytes)
				if ratio > e.Fig6c.MaxStorageRatio {
					fail("fig6c: storage ratio %.3f above ceiling %.3f", ratio, e.Fig6c.MaxStorageRatio)
				}
			}
			if res.MeanPostDriftNoInc > 0 && e.Fig6c.MaxPostDriftLossRatio > 0 {
				ratio := res.MeanPostDriftInc / res.MeanPostDriftNoInc
				if ratio > e.Fig6c.MaxPostDriftLossRatio {
					fail("fig6c: post-drift loss ratio %.3f above ceiling %.3f", ratio, e.Fig6c.MaxPostDriftLossRatio)
				}
			}
		}
	}
	if e.Fig7a != nil {
		if rows, ok := results["fig7a"].([]Fig7aRow); ok {
			for _, r := range rows {
				if r.Speedup < e.Fig7a.MinSpeedup {
					fail("fig7a %d threads: learned-CC speedup %.3f below floor %.3f", r.Threads, r.Speedup, e.Fig7a.MinSpeedup)
				}
			}
		}
	}
	if e.Fig7b != nil {
		if res, ok := results["fig7b"].(*Fig7bResult); ok {
			if res.PostDriftRatio < e.Fig7b.MinPostDriftRatio {
				fail("fig7b: post-drift ratio %.3f below floor %.3f", res.PostDriftRatio, e.Fig7b.MinPostDriftRatio)
			}
		}
	}
	if e.Prepared != nil {
		if res, ok := results["prepared"].(*PreparedResult); ok {
			if res.Speedup < e.Prepared.MinSpeedup {
				fail("prepared: speedup %.3f below floor %.3f", res.Speedup, e.Prepared.MinSpeedup)
			}
			if e.Prepared.MinCacheHitRate > 0 && res.CacheHitRate < e.Prepared.MinCacheHitRate {
				fail("prepared: plan-cache hit rate %.3f below floor %.3f", res.CacheHitRate, e.Prepared.MinCacheHitRate)
			}
		}
	}
	if e.Wire != nil {
		if res, ok := results["wire"].(*WireResult); ok {
			if res.Speedup < e.Wire.MinSpeedup {
				fail("wire: prepared-vs-simple speedup %.3f below floor %.3f", res.Speedup, e.Wire.MinSpeedup)
			}
			if e.Wire.MinCacheHitRate > 0 && res.CacheHitRate < e.Wire.MinCacheHitRate {
				fail("wire: plan-cache hit rate %.3f below floor %.3f", res.CacheHitRate, e.Wire.MinCacheHitRate)
			}
		}
	}
	if e.Parallel != nil {
		// On hosts with < 4 procs, 4 workers time-slice and no speedup
		// exists to gate: record, don't fail.
		if res, ok := results["parallel"].(*ParallelResult); ok && res.MaxProcs >= 4 {
			if e.Parallel.MinScanAggSpeedup4 > 0 && res.ScanAggSpeedup4 < e.Parallel.MinScanAggSpeedup4 {
				fail("parallel: scan+agg speedup at 4 workers %.3f below floor %.3f",
					res.ScanAggSpeedup4, e.Parallel.MinScanAggSpeedup4)
			}
			if e.Parallel.MinJoinSpeedup4 > 0 && res.JoinSpeedup4 < e.Parallel.MinJoinSpeedup4 {
				fail("parallel: join speedup at 4 workers %.3f below floor %.3f",
					res.JoinSpeedup4, e.Parallel.MinJoinSpeedup4)
			}
		}
	}
	if e.ParallelDML != nil {
		// Same proc guard as the read-side parallel gate.
		if res, ok := results["parallel-dml"].(*ParallelDMLResult); ok && res.MaxProcs >= 4 {
			if e.ParallelDML.MinUpdateSpeedup4 > 0 && res.UpdateSpeedup4 < e.ParallelDML.MinUpdateSpeedup4 {
				fail("parallel-dml: update speedup at 4 workers %.3f below floor %.3f",
					res.UpdateSpeedup4, e.ParallelDML.MinUpdateSpeedup4)
			}
			if e.ParallelDML.MinDeleteSpeedup4 > 0 && res.DeleteSpeedup4 < e.ParallelDML.MinDeleteSpeedup4 {
				fail("parallel-dml: delete speedup at 4 workers %.3f below floor %.3f",
					res.DeleteSpeedup4, e.ParallelDML.MinDeleteSpeedup4)
			}
		}
	}
	if e.Durability != nil {
		if res, ok := results["durability"].(*DurabilityResult); ok {
			// An fsync that costs nothing cannot be amortized; the speedup
			// floor only bites where the disk makes durability expensive.
			if e.Durability.MinGroupSpeedup32 > 0 && res.FsyncUs >= e.Durability.MinGateFsyncUs &&
				res.GroupSpeedup32 < e.Durability.MinGroupSpeedup32 {
				fail("durability: group-commit speedup at %d writers %.3f below floor %.3f (fsync %.0f us)",
					durabilityWriters[len(durabilityWriters)-1], res.GroupSpeedup32,
					e.Durability.MinGroupSpeedup32, res.FsyncUs)
			}
			if e.Durability.MaxIntervalOverhead > 0 && res.IntervalOverhead > e.Durability.MaxIntervalOverhead {
				fail("durability: interval-sync overhead %.3fx above ceiling %.3fx",
					res.IntervalOverhead, e.Durability.MaxIntervalOverhead)
			}
		}
	}
	if e.Table1 != nil {
		if rows, ok := results["table1"].([]Table1Row); ok {
			for _, r := range rows {
				if e.Table1.MaxFinalLoss > 0 && r.FinalLoss > e.Table1.MaxFinalLoss {
					fail("table1 %s: final loss %.4f above ceiling %.4f", r.Workload, r.FinalLoss, e.Table1.MaxFinalLoss)
				}
				if r.Rows < e.Table1.MinRows {
					fail("table1 %s: %d rows below floor %d", r.Workload, r.Rows, e.Table1.MinRows)
				}
			}
		}
	}
	return bad
}
