package bench

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"time"

	"neurdb"
	"neurdb/client"
	"neurdb/internal/server"
)

// WireResult compares three remote execution paths for an indexed point
// SELECT over loopback TCP:
//
//   - prepared-over-wire: Parse once, then Bind/Execute per call — the
//     extended protocol reusing the server's plan cache;
//   - simple-over-wire: a Query message per call — the server re-parses and
//     re-plans every time;
//   - line protocol: the pre-PR5 text protocol (one SQL line in, tab rows
//     out), re-parsing per call and string-formatting every value.
//
// All three pay the same loopback round trip, so the deltas isolate the
// protocol and plan-reuse costs the wire redesign removes.
type WireResult struct {
	Rows  int // table size
	Iters int // executions per path

	PreparedNsPerOp float64
	SimpleNsPerOp   float64
	LineNsPerOp     float64

	// Speedup is simple/prepared (>1 = extended protocol wins); the CI
	// gate's floor applies to it.
	Speedup float64
	// LineSpeedup is line/prepared (recorded, not gated: it bundles
	// formatting and protocol differences).
	LineSpeedup float64
	// CacheHitRate is the server plan-cache hit rate during the prepared
	// run.
	CacheHitRate float64
}

// RunWire loads a keyed table, serves it over loopback with both the wire
// server and a minimal replica of the old line protocol, and measures the
// three client paths.
func RunWire(sc Scale) (*WireResult, error) {
	db := neurdb.Open(neurdb.DefaultConfig())
	if _, err := db.Exec(`CREATE TABLE kv (id INT PRIMARY KEY, grp INT, val DOUBLE)`); err != nil {
		return nil, err
	}
	const chunk = 512
	for base := 0; base < sc.PreparedRows; base += chunk {
		var sb strings.Builder
		sb.WriteString("INSERT INTO kv VALUES ")
		for i := base; i < base+chunk && i < sc.PreparedRows; i++ {
			if i > base {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "(%d,%d,%g)", i, i%97, float64(i)*0.5)
		}
		if _, err := db.Exec(sb.String()); err != nil {
			return nil, err
		}
	}
	if _, err := db.Exec(`ANALYZE kv`); err != nil {
		return nil, err
	}

	// Wire server.
	srv := server.New(db, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln)
	defer srv.Shutdown(2 * time.Second)

	// Line-protocol server (the old text protocol, kept here as the bench
	// baseline).
	lineLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer lineLn.Close()
	go serveLineProtocol(db, lineLn)

	conn, err := client.Connect(ln.Addr().String())
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	// Prepared-over-wire: plan compiled once server-side; each call is one
	// Bind/Execute round trip.
	stmt, err := conn.Prepare(`SELECT val FROM kv WHERE id = ?`)
	if err != nil {
		return nil, err
	}
	prepared := func(i int) error {
		res, err := stmt.Exec(i % sc.PreparedRows)
		if err != nil {
			return err
		}
		if res.Affected != 1 {
			return fmt.Errorf("bench: prepared point select returned %d rows", res.Affected)
		}
		return nil
	}

	// Simple-over-wire: one Query message per call; the server parses and
	// plans each time.
	simple := func(i int) error {
		res, err := conn.Exec(fmt.Sprintf(`SELECT val FROM kv WHERE id = %d`, i%sc.PreparedRows))
		if err != nil {
			return err
		}
		if res.Affected != 1 {
			return fmt.Errorf("bench: simple point select returned %d rows", res.Affected)
		}
		return nil
	}

	// Line protocol: newline-framed SQL in, text rows + OK out.
	lineConn, err := net.Dial("tcp", lineLn.Addr().String())
	if err != nil {
		return nil, err
	}
	defer lineConn.Close()
	lineR := bufio.NewReader(lineConn)
	line := func(i int) error {
		if _, err := fmt.Fprintf(lineConn, "SELECT val FROM kv WHERE id = %d\n", i%sc.PreparedRows); err != nil {
			return err
		}
		rows := -1 // header line
		for {
			l, err := lineR.ReadString('\n')
			if err != nil {
				return err
			}
			l = strings.TrimRight(l, "\n")
			if l == "OK" {
				if rows != 1 {
					return fmt.Errorf("bench: line point select returned %d rows", rows)
				}
				return nil
			}
			if strings.HasPrefix(l, "ERR ") {
				return fmt.Errorf("bench: line protocol: %s", l)
			}
			rows++
		}
	}

	measure := func(f func(int) error) (float64, error) {
		for i := 0; i < sc.WireIters/10+1; i++ { // warmup
			if err := f(i); err != nil {
				return 0, err
			}
		}
		start := time.Now()
		for i := 0; i < sc.WireIters; i++ {
			if err := f(i); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(sc.WireIters), nil
	}

	res := &WireResult{Rows: sc.PreparedRows, Iters: sc.WireIters}
	if res.LineNsPerOp, err = measure(line); err != nil {
		return nil, err
	}
	if res.SimpleNsPerOp, err = measure(simple); err != nil {
		return nil, err
	}
	h0, m0 := db.PlanCacheStats()
	if res.PreparedNsPerOp, err = measure(prepared); err != nil {
		return nil, err
	}
	h1, m1 := db.PlanCacheStats()
	if lookups := (h1 - h0) + (m1 - m0); lookups > 0 {
		res.CacheHitRate = float64(h1-h0) / float64(lookups)
	}
	if res.PreparedNsPerOp > 0 {
		res.Speedup = res.SimpleNsPerOp / res.PreparedNsPerOp
		res.LineSpeedup = res.LineNsPerOp / res.PreparedNsPerOp
	}
	return res, nil
}

// serveLineProtocol replicates the pre-PR5 text server: one SQL statement
// per line, rows as tab-joined text, "OK"/"ERR" terminators.
func serveLineProtocol(db *neurdb.DB, ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			defer conn.Close()
			session := db.NewSession()
			defer session.Close()
			scanner := bufio.NewScanner(conn)
			scanner.Buffer(make([]byte, 1<<20), 1<<20)
			w := bufio.NewWriter(conn)
			for scanner.Scan() {
				sql := strings.TrimSuffix(strings.TrimSpace(scanner.Text()), ";")
				if sql == "" {
					continue
				}
				if err := lineStream(session, w, sql); err != nil {
					fmt.Fprintf(w, "ERR %v\n", err)
				} else {
					fmt.Fprintln(w, "OK")
				}
				w.Flush()
			}
		}(conn)
	}
}

func lineStream(session *neurdb.Session, w *bufio.Writer, sql string) error {
	rows, err := session.Query(sql)
	if err != nil {
		return err
	}
	defer rows.Close()
	if cols := rows.Columns(); len(cols) > 0 {
		fmt.Fprintln(w, strings.Join(cols, "\t"))
	}
	for rows.Next() {
		fmt.Fprintln(w, rows.Row().String())
	}
	if err := rows.Err(); err != nil {
		return err
	}
	if msg := rows.Message(); msg != "" {
		fmt.Fprintln(w, msg)
	}
	return nil
}

// RenderWire prints the comparison.
func RenderWire(r *WireResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "wire-protocol throughput (remote point SELECT over %d rows, %d iters, loopback TCP)\n", r.Rows, r.Iters)
	fmt.Fprintf(&sb, "  %-28s %12s %14s\n", "path", "ns/op", "ops/sec")
	fmt.Fprintf(&sb, "  %-28s %12.0f %14.0f\n", "line protocol (pre-PR5)", r.LineNsPerOp, 1e9/r.LineNsPerOp)
	fmt.Fprintf(&sb, "  %-28s %12.0f %14.0f\n", "wire simple Query", r.SimpleNsPerOp, 1e9/r.SimpleNsPerOp)
	fmt.Fprintf(&sb, "  %-28s %12.0f %14.0f\n", "wire Parse/Bind/Execute", r.PreparedNsPerOp, 1e9/r.PreparedNsPerOp)
	fmt.Fprintf(&sb, "  prepared vs simple %.2fx, vs line %.2fx, plan-cache hit rate %.3f\n",
		r.Speedup, r.LineSpeedup, r.CacheHitRate)
	return sb.String()
}
