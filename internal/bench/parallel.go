package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"neurdb"
)

// ParallelPoint is one worker-count measurement of the parallel experiment.
type ParallelPoint struct {
	Workers int
	// ScanAggNsPerOp is a full-table scan→filter→group-aggregate pipeline.
	ScanAggNsPerOp float64
	// JoinNsPerOp is a hash join probing the big table against a dimension
	// table, with a filter on the probe side.
	JoinNsPerOp float64
}

// ParallelResult reports morsel-driven intra-query scaling: the same
// queries executed with 1, 2, and 4 workers. Speedups are t(1)/t(4); on a
// host with fewer than 4 procs (MaxProcs) the workers time-slice one core
// and the speedup floor is not meaningful, so the CI gate skips it there.
type ParallelResult struct {
	Rows     int
	Iters    int
	MaxProcs int
	Points   []ParallelPoint
	// ScanAggSpeedup4 / JoinSpeedup4 are the 1-worker over 4-worker
	// latency ratios (>1 means parallel is faster).
	ScanAggSpeedup4 float64
	JoinSpeedup4    float64
}

// RunParallel loads a multi-morsel table plus a small dimension table and
// measures the scan+agg and join pipelines at 1/2/4 workers.
func RunParallel(sc Scale) (*ParallelResult, error) {
	db := neurdb.Open(neurdb.DefaultConfig())
	if _, err := db.Exec(`CREATE TABLE wide (id INT PRIMARY KEY, grp INT, a DOUBLE, b DOUBLE)`); err != nil {
		return nil, err
	}
	// No index on dims.g: the join must plan as a hash join with seq-scan
	// inputs (parallel probe over wide, serial build over the small side).
	if _, err := db.Exec(`CREATE TABLE dims (g INT, label TEXT)`); err != nil {
		return nil, err
	}
	const chunk = 512
	for base := 0; base < sc.ParallelRows; base += chunk {
		var sb strings.Builder
		sb.WriteString("INSERT INTO wide VALUES ")
		for i := base; i < base+chunk && i < sc.ParallelRows; i++ {
			if i > base {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "(%d,%d,%g,%g)", i, i%64, float64(i%1000)*0.5, float64(i%97)*0.25)
		}
		if _, err := db.Exec(sb.String()); err != nil {
			return nil, err
		}
	}
	for g := 0; g < 64; g++ {
		if _, err := db.Exec(fmt.Sprintf(`INSERT INTO dims VALUES (%d, 'd%d')`, g, g)); err != nil {
			return nil, err
		}
	}
	if _, err := db.Exec(`ANALYZE`); err != nil {
		return nil, err
	}

	scanAgg, err := db.Prepare(`SELECT grp, COUNT(*), SUM(a), MAX(b) FROM wide WHERE a >= 25 GROUP BY grp`)
	if err != nil {
		return nil, err
	}
	join, err := db.Prepare(`SELECT COUNT(*) FROM wide w, dims d WHERE w.grp = d.g AND w.a > 50`)
	if err != nil {
		return nil, err
	}
	measure := func(stmt *neurdb.Stmt, wantRows int) (float64, error) {
		if res, err := stmt.Exec(); err != nil { // warmup + sanity
			return 0, err
		} else if len(res.Rows) != wantRows {
			return 0, fmt.Errorf("bench parallel: got %d rows, want %d", len(res.Rows), wantRows)
		}
		start := time.Now()
		for i := 0; i < sc.ParallelIters; i++ {
			if _, err := stmt.Exec(); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(sc.ParallelIters), nil
	}

	res := &ParallelResult{Rows: sc.ParallelRows, Iters: sc.ParallelIters, MaxProcs: runtime.GOMAXPROCS(0)}
	for _, w := range []int{1, 2, 4} {
		db.SetWorkers(w)
		pt := ParallelPoint{Workers: w}
		if pt.ScanAggNsPerOp, err = measure(scanAgg, 64); err != nil {
			return nil, err
		}
		if pt.JoinNsPerOp, err = measure(join, 1); err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	base, top := res.Points[0], res.Points[len(res.Points)-1]
	if top.ScanAggNsPerOp > 0 {
		res.ScanAggSpeedup4 = base.ScanAggNsPerOp / top.ScanAggNsPerOp
	}
	if top.JoinNsPerOp > 0 {
		res.JoinSpeedup4 = base.JoinNsPerOp / top.JoinNsPerOp
	}
	return res, nil
}

// RenderParallel prints the scaling table.
func RenderParallel(r *ParallelResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "morsel-driven parallel scaling (%d rows, %d iters, GOMAXPROCS=%d)\n",
		r.Rows, r.Iters, r.MaxProcs)
	fmt.Fprintf(&sb, "  %-8s %14s %14s\n", "workers", "scan+agg ns/op", "join ns/op")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "  %-8d %14.0f %14.0f\n", p.Workers, p.ScanAggNsPerOp, p.JoinNsPerOp)
	}
	fmt.Fprintf(&sb, "  speedup at 4 workers: scan+agg %.2fx, join %.2fx\n",
		r.ScanAggSpeedup4, r.JoinSpeedup4)
	if r.MaxProcs < 4 {
		fmt.Fprintf(&sb, "  (host has %d procs; 4-worker speedup is not expected to exceed 1x)\n", r.MaxProcs)
	}
	return sb.String()
}
