package bench

import (
	"fmt"
	"strings"
	"time"

	"neurdb"
)

// PreparedResult compares prepared re-execution of a point SELECT (plan
// compiled once, cached, parameters bound per call) against the
// parse-per-call Exec path over the same statement shape. This is the
// client-surface counterpart of the paper's repeated-query emphasis: with
// persistent connections issuing the same statements at high rate, plan
// cost must be paid once, not per call.
type PreparedResult struct {
	Rows  int // table size
	Iters int // executions per mode

	PreparedNsPerOp float64
	ReparseNsPerOp  float64
	// Speedup is reparse/prepared (>1 means prepared is faster).
	Speedup float64
	// CacheHitRate is plan-cache hits/(hits+misses) over the prepared run.
	CacheHitRate float64
}

// RunPrepared loads a keyed table and measures prepared-vs-reparse
// throughput on an indexed point SELECT.
func RunPrepared(sc Scale) (*PreparedResult, error) {
	db := neurdb.Open(neurdb.DefaultConfig())
	if _, err := db.Exec(`CREATE TABLE kv (id INT PRIMARY KEY, grp INT, val DOUBLE)`); err != nil {
		return nil, err
	}
	// Bulk-load via multi-VALUES INSERT (page-batched insert path).
	const chunk = 512
	for base := 0; base < sc.PreparedRows; base += chunk {
		var sb strings.Builder
		sb.WriteString("INSERT INTO kv VALUES ")
		for i := base; i < base+chunk && i < sc.PreparedRows; i++ {
			if i > base {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "(%d,%d,%g)", i, i%97, float64(i)*0.5)
		}
		if _, err := db.Exec(sb.String()); err != nil {
			return nil, err
		}
	}
	if _, err := db.Exec(`ANALYZE kv`); err != nil {
		return nil, err
	}

	// Reparse path: every call re-lexes, re-parses, re-binds, re-plans.
	reparse := func(i int) error {
		res, err := db.Exec(fmt.Sprintf(`SELECT val FROM kv WHERE id = %d`, i%sc.PreparedRows))
		if err != nil {
			return err
		}
		if len(res.Rows) != 1 {
			return fmt.Errorf("bench: point select returned %d rows", len(res.Rows))
		}
		return nil
	}
	// Prepared path: plan compiled once, cached; per call only binds the
	// parameter and executes.
	stmt, err := db.Prepare(`SELECT val FROM kv WHERE id = ?`)
	if err != nil {
		return nil, err
	}
	prepared := func(i int) error {
		res, err := stmt.Exec(i % sc.PreparedRows)
		if err != nil {
			return err
		}
		if len(res.Rows) != 1 {
			return fmt.Errorf("bench: prepared point select returned %d rows", len(res.Rows))
		}
		return nil
	}

	measure := func(f func(int) error) (float64, error) {
		// Warmup settles the plan cache and branch state.
		for i := 0; i < sc.PreparedIters/10+1; i++ {
			if err := f(i); err != nil {
				return 0, err
			}
		}
		start := time.Now()
		for i := 0; i < sc.PreparedIters; i++ {
			if err := f(i); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(sc.PreparedIters), nil
	}

	res := &PreparedResult{Rows: sc.PreparedRows, Iters: sc.PreparedIters}
	if res.ReparseNsPerOp, err = measure(reparse); err != nil {
		return nil, err
	}
	h0, m0 := db.PlanCacheStats()
	if res.PreparedNsPerOp, err = measure(prepared); err != nil {
		return nil, err
	}
	h1, m1 := db.PlanCacheStats()
	if lookups := (h1 - h0) + (m1 - m0); lookups > 0 {
		res.CacheHitRate = float64(h1-h0) / float64(lookups)
	}
	if res.PreparedNsPerOp > 0 {
		res.Speedup = res.ReparseNsPerOp / res.PreparedNsPerOp
	}
	return res, nil
}

// RenderPrepared prints the comparison.
func RenderPrepared(r *PreparedResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "prepared-statement throughput (point SELECT over %d rows, %d iters)\n", r.Rows, r.Iters)
	fmt.Fprintf(&sb, "  %-22s %12s %14s\n", "path", "ns/op", "ops/sec")
	fmt.Fprintf(&sb, "  %-22s %12.0f %14.0f\n", "Exec (reparse)", r.ReparseNsPerOp, 1e9/r.ReparseNsPerOp)
	fmt.Fprintf(&sb, "  %-22s %12.0f %14.0f\n", "Stmt.Exec (cached)", r.PreparedNsPerOp, 1e9/r.PreparedNsPerOp)
	fmt.Fprintf(&sb, "  speedup %.2fx, plan-cache hit rate %.3f\n", r.Speedup, r.CacheHitRate)
	return sb.String()
}
