package server_test

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"neurdb"
	"neurdb/client"
	"neurdb/internal/server"
	"neurdb/internal/wire"
)

// startServer boots a wire server over a fresh database on a loopback
// port, returning the engine handle (for white-box assertions) and the
// address. The server is drained at test end.
func startServer(t *testing.T, cfg server.Config) (*neurdb.DB, string) {
	t.Helper()
	db := neurdb.Open(neurdb.DefaultConfig())
	srv := server.New(db, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown(2 * time.Second)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return db, ln.Addr().String()
}

func mustExec(t *testing.T, c *client.Conn, sql string, args ...any) *client.Result {
	t.Helper()
	res, err := c.Exec(sql, args...)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

func TestEndToEnd(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if v := c.ServerParam("protocol_version"); v != wire.FormatVersion(wire.Version) {
		t.Fatalf("protocol_version = %q", v)
	}

	mustExec(t, c, `CREATE TABLE review (id INT PRIMARY KEY, brand TEXT, score DOUBLE)`)
	res := mustExec(t, c, `INSERT INTO review VALUES (1,'acme',4.5),(2,'beta',3.0),(3,'acme',5.0)`)
	if res.Affected != 3 || res.Tag != "INSERT 3" {
		t.Fatalf("insert result = %+v", res)
	}

	// Parameterized DML through the extended protocol.
	res = mustExec(t, c, `UPDATE review SET score = ? WHERE id = ?`, 4.0, 2)
	if res.Affected != 1 {
		t.Fatalf("update affected = %d", res.Affected)
	}

	// Streaming SELECT with Scan.
	rows, err := c.Query(`SELECT brand, score FROM review WHERE score >= ? ORDER BY id`, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for rows.Next() {
		var brand string
		var score float64
		if err := rows.Scan(&brand, &score); err != nil {
			t.Fatal(err)
		}
		got = append(got, fmt.Sprintf("%s=%g", brand, score))
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rows.Close()
	want := []string{"acme=4.5", "beta=4", "acme=5"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("rows = %v, want %v", got, want)
	}

	// Explicit transaction spanning the session.
	mustExec(t, c, `BEGIN`)
	mustExec(t, c, `DELETE FROM review WHERE id = ?`, 3)
	mustExec(t, c, `ROLLBACK`)
	res = mustExec(t, c, `SELECT id FROM review`)
	if res.Affected != 3 {
		t.Fatalf("post-rollback count = %d, want 3", res.Affected)
	}

	// A statement error leaves the connection usable.
	if _, err := c.Exec(`SELECT nope FROM review`); err == nil {
		t.Fatal("bad column did not error")
	}
	mustExec(t, c, `SELECT id FROM review`)
}

// TestPreparedReuseHitsPlanCache is the core plan-cache contract: remote
// Parse goes through Session.Prepare, so repeated Execute calls on one
// prepared statement revalidate the shared cached plan instead of
// replanning.
func TestPreparedReuseHitsPlanCache(t *testing.T) {
	db, addr := startServer(t, server.Config{})
	c, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	mustExec(t, c, `CREATE TABLE kv (id INT PRIMARY KEY, val DOUBLE)`)
	ins, err := c.Prepare(`INSERT INTO kv VALUES (?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := ins.Exec(i, float64(i)*0.5); err != nil {
			t.Fatal(err)
		}
	}
	ins.Close()

	st, err := c.Prepare(`SELECT val FROM kv WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	h0, m0 := db.PlanCacheStats()
	const iters = 100
	for i := 0; i < iters; i++ {
		rows, err := st.Query(i % 200)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		var val float64
		for rows.Next() {
			rows.Scan(&val)
			n++
		}
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
		if n != 1 || val != float64(i%200)*0.5 {
			t.Fatalf("iter %d: %d rows, val=%g", i, n, val)
		}
	}
	h1, m1 := db.PlanCacheStats()
	hits, misses := h1-h0, m1-m0
	if total := hits + misses; total == 0 || float64(hits)/float64(total) < 0.9 {
		t.Fatalf("plan cache hit rate = %d/%d, want >= 0.9", hits, hits+misses)
	}
}

func TestDescribeMetadata(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	mustExec(t, c, `CREATE TABLE m (id INT PRIMARY KEY, note TEXT, ok BOOLEAN)`)

	st, err := c.Prepare(`SELECT note, ok, id FROM m WHERE id > ?`)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumParams() != 1 {
		t.Fatalf("NumParams = %d", st.NumParams())
	}
	if cols := st.Columns(); strings.Join(cols, ",") != "m.note,m.ok,m.id" {
		t.Fatalf("Columns = %v", cols)
	}
	st.Close()

	// Non-SELECT statements describe as NoData: no columns.
	dml, err := c.Prepare(`INSERT INTO m VALUES (?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	if cols := dml.Columns(); cols != nil {
		t.Fatalf("DML Columns = %v, want nil", cols)
	}
	if dml.NumParams() != 3 {
		t.Fatalf("DML NumParams = %d", dml.NumParams())
	}
	dml.Close()
}

// TestConcurrentConnections exercises independent sessions under -race:
// every connection prepares its own statements and the plan cache is
// shared.
func TestConcurrentConnections(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	setup, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, setup, `CREATE TABLE c (id INT PRIMARY KEY, worker INT, val DOUBLE)`)
	setup.Close()

	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Connect(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			ins, err := c.Prepare(`INSERT INTO c VALUES (?, ?, ?)`)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < perWorker; i++ {
				if _, err := ins.Exec(w*perWorker+i, w, float64(i)); err != nil {
					errs <- fmt.Errorf("worker %d insert %d: %w", w, i, err)
					return
				}
			}
			sel, err := c.Prepare(`SELECT id FROM c WHERE worker = ?`)
			if err != nil {
				errs <- err
				return
			}
			rows, err := sel.Query(w)
			if err != nil {
				errs <- err
				return
			}
			n := 0
			for rows.Next() {
				n++
			}
			if err := rows.Close(); err != nil {
				errs <- err
				return
			}
			if n != perWorker {
				errs <- fmt.Errorf("worker %d saw %d own rows, want %d", w, n, perWorker)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMidStreamDisconnect drops the TCP connection while the server is
// streaming a large result. The server must notice the failed write, close
// the cursor (releasing the read transaction so the snapshot horizon
// advances) and keep serving other clients.
func TestMidStreamDisconnect(t *testing.T) {
	db, addr := startServer(t, server.Config{})
	setup, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, setup, `CREATE TABLE big (id INT PRIMARY KEY, pad TEXT)`)
	pad := strings.Repeat("x", 200)
	for base := 0; base < 20000; base += 500 {
		var sb strings.Builder
		sb.WriteString("INSERT INTO big VALUES ")
		for i := base; i < base+500; i++ {
			if i > base {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "(%d,'%s')", i, pad)
		}
		mustExec(t, setup, sb.String())
	}
	setup.Close()

	// Raw wire connection so the socket can be severed mid-stream.
	netc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	r := wire.NewReader(netc, 0)
	w := wire.NewWriter(netc)
	w.WriteMsg(&wire.Startup{Version: wire.Version})
	w.Flush()
	for {
		op, _, err := r.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if op == wire.OpReady {
			break
		}
	}
	w.WriteMsg(&wire.Query{SQL: `SELECT id, pad FROM big`})
	w.WriteMsg(&wire.Sync{})
	w.Flush()
	// Pull the first data frame so the read transaction is provably open,
	// then sever the connection.
	for {
		op, _, err := r.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if op == wire.OpDataBatch {
			break
		}
	}
	during := db.TxnManager().OldestActiveTS()
	netc.Close()

	// The server-side cursor must be closed and the snapshot horizon move
	// past the abandoned reader.
	deadline := time.Now().Add(5 * time.Second)
	for {
		// Horizon = min(active snapshots, nextTS): bump nextTS with a tiny
		// write so a freed horizon is observable.
		if _, err := db.Exec(`INSERT INTO big VALUES (?, 'probe')`, 100000+int(time.Now().UnixNano()%100000)); err == nil {
			if db.TxnManager().OldestActiveTS() > during {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot horizon stuck at %d after disconnect", during)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// And the server still accepts new work.
	c2, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	res := mustExec(t, c2, `SELECT id FROM big WHERE id = ?`, 7)
	if res.Affected != 1 {
		t.Fatalf("post-disconnect select affected = %d", res.Affected)
	}
}

// TestCancel delivers a Cancel request over a side connection while a
// chunked query is being consumed; the in-flight portal must die with a
// CANCELED error and the connection stay usable.
func TestCancel(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c, err := client.ConnectOptions(addr, client.Options{FetchSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	mustExec(t, c, `CREATE TABLE n (id INT PRIMARY KEY)`)
	var sb strings.Builder
	sb.WriteString("INSERT INTO n VALUES ")
	for i := 0; i < 5000; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "(%d)", i)
	}
	mustExec(t, c, sb.String())

	st, err := c.Prepare(`SELECT id FROM n`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	if err := c.Cancel(); err != nil {
		t.Fatal(err)
	}
	n := 1
	for rows.Next() {
		n++
	}
	err = rows.Err()
	if err == nil {
		t.Fatalf("query survived cancellation (%d rows)", n)
	}
	var werr *client.Error
	if !asClientError(err, &werr) || werr.Code != wire.CodeCanceled {
		t.Fatalf("err = %v, want CANCELED", err)
	}
	rows.Close()

	// Connection remains usable after the canceled sequence.
	res := mustExec(t, c, `SELECT id FROM n WHERE id = ?`, 3)
	if res.Affected != 1 {
		t.Fatalf("post-cancel select affected = %d", res.Affected)
	}
}

func asClientError(err error, target **client.Error) bool {
	return errors.As(err, target)
}

// TestOversizedFrame sends a frame above the server's limit: the payload
// must be discarded, answered with a clean TOO_LARGE error, and the
// connection must keep working.
func TestOversizedFrame(t *testing.T) {
	_, addr := startServer(t, server.Config{MaxFrame: 64 << 10})
	netc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer netc.Close()
	r := wire.NewReader(netc, 0)
	w := wire.NewWriter(netc)
	w.WriteMsg(&wire.Startup{Version: wire.Version})
	w.Flush()
	for {
		op, _, err := r.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if op == wire.OpReady {
			break
		}
	}

	w.WriteMsg(&wire.Query{SQL: "SELECT 1 -- " + strings.Repeat("x", 128<<10)})
	w.WriteMsg(&wire.Sync{})
	w.Flush()

	var sawTooLarge bool
	for {
		op, payload, err := r.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if op == wire.OpError {
			msg, err := wire.Decode(op, payload)
			if err != nil {
				t.Fatal(err)
			}
			if msg.(*wire.Error).Code != wire.CodeTooLarge {
				t.Fatalf("error code = %q, want TOO_LARGE", msg.(*wire.Error).Code)
			}
			sawTooLarge = true
		}
		if op == wire.OpReady {
			break
		}
	}
	if !sawTooLarge {
		t.Fatal("no TOO_LARGE error seen")
	}

	// Same connection still executes statements.
	w.WriteMsg(&wire.Query{SQL: `CREATE TABLE ok (id INT PRIMARY KEY)`})
	w.WriteMsg(&wire.Sync{})
	w.Flush()
	var sawComplete bool
	for {
		op, _, err := r.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if op == wire.OpCommandComplete {
			sawComplete = true
		}
		if op == wire.OpReady {
			break
		}
	}
	if !sawComplete {
		t.Fatal("statement after oversized frame did not complete")
	}
}

// TestVersionNegotiation rejects an unknown protocol major version with an
// explicit error instead of garbage.
func TestVersionNegotiation(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	netc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer netc.Close()
	r := wire.NewReader(netc, 0)
	w := wire.NewWriter(netc)
	w.WriteMsg(&wire.Startup{Version: 0x0002_0000})
	w.Flush()
	op, payload, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if op != wire.OpError {
		t.Fatalf("opcode %q, want Error", byte(op))
	}
	msg, err := wire.Decode(op, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg.(*wire.Error).Message, "protocol version") {
		t.Fatalf("message = %q", msg.(*wire.Error).Message)
	}
}

// TestMonitorSeries checks the server feeds connection and statement
// gauges into the engine monitor.
func TestMonitorSeries(t *testing.T) {
	db, addr := startServer(t, server.Config{})
	c, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, c, `CREATE TABLE g (id INT PRIMARY KEY)`)
	st, err := c.Prepare(`SELECT id FROM g`)
	if err != nil {
		t.Fatal(err)
	}
	if mean := db.Monitor().Mean("server.conns"); mean <= 0 {
		t.Fatalf("server.conns mean = %g, want > 0", mean)
	}
	if mean := db.Monitor().Mean("server.stmts"); mean <= 0 {
		t.Fatalf("server.stmts mean = %g, want > 0", mean)
	}
	st.Close()
	c.Close()
}

// TestGracefulShutdown drains active connections: Shutdown returns once
// clients disconnect and the listener refuses new work.
func TestGracefulShutdown(t *testing.T) {
	db := neurdb.Open(neurdb.DefaultConfig())
	srv := server.New(db, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	c, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, c, `CREATE TABLE s (id INT PRIMARY KEY)`)

	shutdownDone := make(chan struct{})
	go func() {
		srv.Shutdown(5 * time.Second)
		close(shutdownDone)
	}()

	// The in-flight connection still works during the drain window.
	time.Sleep(20 * time.Millisecond)
	mustExec(t, c, `INSERT INTO s VALUES (1)`)
	c.Close()

	select {
	case <-shutdownDone:
	case <-time.After(4 * time.Second):
		t.Fatal("Shutdown did not return after the client disconnected")
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if _, err := client.Connect(addr); err == nil {
		t.Fatal("connect succeeded after shutdown")
	}
}
