package server_test

// Overload-protection and degradation tests over the wire: MaxConns typed
// refusal, client retry backoff, per-statement timeout, idle-connection
// reaping, and read-only degradation surfacing as a typed error code.

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"neurdb"
	"neurdb/client"
	"neurdb/internal/server"
	"neurdb/internal/vfs"
	"neurdb/internal/wire"
)

// startServerOn boots a wire server over a caller-supplied database, for
// tests that need a non-default engine config (fault injection, timeouts).
func startServerOn(t *testing.T, db *neurdb.DB, cfg server.Config) string {
	t.Helper()
	srv := server.New(db, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown(2 * time.Second)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return ln.Addr().String()
}

// queryCount runs a one-value aggregate query and returns the result.
func queryCount(t *testing.T, c *client.Conn, sql string) int64 {
	t.Helper()
	rows, err := c.Query(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("%s: no row (err=%v)", sql, rows.Err())
	}
	var n int64
	if err := rows.Scan(&n); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestMaxConnsTypedRefusal(t *testing.T) {
	db, addr := startServer(t, server.Config{MaxConns: 2})

	c1, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}

	// The third connection gets the typed at-capacity refusal, not a hangup.
	_, err = client.Connect(addr)
	var srvErr *client.Error
	if !errors.As(err, &srvErr) || srvErr.Code != wire.CodeTooManyConns {
		t.Fatalf("over-capacity connect: want %s, got %v", wire.CodeTooManyConns, err)
	}
	if n := db.Monitor().Total("server.conns_refused"); n < 1 {
		t.Fatalf("server.conns_refused = %v, want >= 1", n)
	}

	// Releasing a slot readmits new clients. The server unregisters the
	// closed connection asynchronously, so ride the client's own backoff
	// instead of racing it.
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	c3, err := client.ConnectOptions(addr, client.Options{
		RetryBackoff:  10 * time.Millisecond,
		RetryAttempts: 8,
	})
	if err != nil {
		t.Fatalf("connect after slot freed: %v", err)
	}
	defer c3.Close()
	mustExec(t, c3, `CREATE TABLE ok (id INT PRIMARY KEY)`)
}

// TestMaxConnsCancelPassthrough verifies Cancel still works when the server
// is saturated — the exact moment a client most needs it.
func TestMaxConnsCancelPassthrough(t *testing.T) {
	_, addr := startServer(t, server.Config{MaxConns: 1})
	c1, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	// Cancel dials a second connection; with MaxConns=1 it rides the
	// refusal path, which must pass it through rather than reject it.
	if err := c1.Cancel(); err != nil {
		t.Fatalf("cancel at capacity: %v", err)
	}
}

func TestMaxConnsClientRetryBackoff(t *testing.T) {
	_, addr := startServer(t, server.Config{MaxConns: 1})
	c1, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}

	// Without retry: immediate typed failure.
	if _, err := client.ConnectOptions(addr, client.Options{}); err == nil {
		t.Fatal("expected at-capacity refusal")
	}

	// With retry: the slot frees while the second client is backing off.
	go func() {
		time.Sleep(60 * time.Millisecond)
		c1.Close()
	}()
	c2, err := client.ConnectOptions(addr, client.Options{
		RetryBackoff:  20 * time.Millisecond,
		RetryAttempts: 8,
	})
	if err != nil {
		t.Fatalf("retrying connect never got the freed slot: %v", err)
	}
	defer c2.Close()
	if err := c2.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestStatementTimeoutOverWire(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mustExec(t, c, `CREATE TABLE t (id INT PRIMARY KEY)`)
	mustExec(t, c, `INSERT INTO t VALUES (1), (2), (3)`)

	// An expired deadline fails the statement with the typed TIMEOUT code.
	mustExec(t, c, `SET statement_timeout = '1ns'`)
	_, err = c.Exec(`SELECT id FROM t`)
	var srvErr *client.Error
	if !errors.As(err, &srvErr) || srvErr.Code != wire.CodeTimeout {
		t.Fatalf("want %s over the wire, got %v", wire.CodeTimeout, err)
	}

	// The session survives the timeout and SET ... = 0 disables the bound.
	mustExec(t, c, `SET statement_timeout = 0`)
	res := mustExec(t, c, `SELECT id FROM t`)
	if res.Affected != 3 {
		t.Fatalf("after clearing timeout: %d rows", res.Affected)
	}
}

func TestIdleTimeoutSeversConnection(t *testing.T) {
	_, addr := startServer(t, server.Config{IdleTimeout: 100 * time.Millisecond})
	c, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping on fresh connection: %v", err)
	}
	// Stay well under the deadline across two commands: activity re-arms it.
	time.Sleep(60 * time.Millisecond)
	if err := c.Ping(); err != nil {
		t.Fatalf("ping within idle window: %v", err)
	}
	// Now exceed it: the server reaps the connection.
	time.Sleep(300 * time.Millisecond)
	if err := c.Ping(); err == nil {
		t.Fatal("ping succeeded on a connection the server should have severed")
	}
}

// TestDegradedReadOnlyOverWire drives the degradation story end-to-end over
// TCP: after a WAL fsync failure, remote writes fail with the READ_ONLY
// code, remote reads keep working.
func TestDegradedReadOnlyOverWire(t *testing.T) {
	cfg := neurdb.DefaultConfig()
	cfg.DataDir = t.TempDir()
	ffs := vfs.NewFaultFS(nil)
	cfg.FS = ffs
	db, err := neurdb.OpenDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	addr := startServerOn(t, db, server.Config{})

	c, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mustExec(t, c, `CREATE TABLE kv (id INT PRIMARY KEY, v TEXT)`)
	for i := 0; i < 5; i++ {
		mustExec(t, c, fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'x')`, i))
	}

	ffs.AddFault(vfs.Fault{Op: vfs.OpSync, Path: "wal-"})
	if _, err := c.Exec(`INSERT INTO kv VALUES (100, 'doomed')`); err == nil {
		t.Fatal("commit over failed fsync succeeded")
	}

	// Later writes surface the typed degradation code to remote clients.
	_, err = c.Exec(`INSERT INTO kv VALUES (101, 'rejected')`)
	var srvErr *client.Error
	if !errors.As(err, &srvErr) || srvErr.Code != wire.CodeReadOnly {
		t.Fatalf("degraded write: want %s, got %v", wire.CodeReadOnly, err)
	}
	if !db.Degraded() {
		t.Fatal("engine not degraded")
	}

	// Reads — same connection and a brand-new one — keep serving.
	if n := queryCount(t, c, `SELECT count(*) FROM kv WHERE id < 100`); n != 5 {
		t.Fatalf("degraded read saw %d acked rows, want 5", n)
	}
	c2, err := client.Connect(addr)
	if err != nil {
		t.Fatalf("new connection while degraded: %v", err)
	}
	defer c2.Close()
	if n := queryCount(t, c2, `SELECT count(*) FROM kv WHERE id < 100`); n != 5 {
		t.Fatalf("fresh-connection degraded read saw %d rows", n)
	}
}
