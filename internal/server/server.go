// Package server implements the NeurDB wire-protocol server: one TCP
// listener multiplexing independent client connections, each with its own
// engine Session, named-statement registry and portal table. The protocol
// (internal/wire, specified in docs/PROTOCOL.md) is a PostgreSQL-style
// extended query protocol — Parse/Bind/Execute against server-side prepared
// statements backed by Session.Prepare, so remote clients share the DB-wide
// plan cache exactly like embedded callers.
//
// Result streaming rides the engine's streaming Rows cursor: data is framed
// one executor batch per DataBatch message and flushed at every batch
// boundary, so the server never materializes a result set. A client that
// disconnects mid-stream surfaces as a write error, which closes the cursor
// (Rows.Close cancels parallel workers and releases the read transaction)
// before the connection is torn down.
package server

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"neurdb"
	"neurdb/internal/executor"
	"neurdb/internal/rel"
	"neurdb/internal/wire"
)

// Config parameterizes a Server.
type Config struct {
	// MaxFrame bounds incoming frame payloads (default wire.DefaultMaxFrame).
	// An oversized frame is answered with a clean TOO_LARGE Error and the
	// connection stays usable.
	MaxFrame int
	// BatchRows caps rows per DataBatch message (default executor.BatchSize,
	// matching the engine's batch granularity).
	BatchRows int
	// BatchBytes soft-caps the encoded payload per DataBatch message
	// (default 1 MiB), so batches of wide rows split instead of producing a
	// frame beyond a client's ceiling. A single row larger than the cap
	// still travels alone in an oversized frame.
	BatchBytes int
	// MaxConns caps concurrent client connections (0 = unlimited). A
	// connection beyond the cap gets a clean TOO_MANY_CONNS Error in
	// response to its Startup and is closed — clients can retry with
	// backoff. Cancel requests are exempt: they must get through exactly
	// when the server is busiest.
	MaxConns int
	// IdleTimeout bounds how long a connection may sit idle between
	// frames (0 = forever). A dead or stalled peer is torn down when it
	// expires, releasing its session, cursors, and prepared statements —
	// so abandoned clients cannot pin server resources indefinitely.
	IdleTimeout time.Duration
}

// Server serves a NeurDB instance over the binary wire protocol.
type Server struct {
	db  *neurdb.DB
	cfg Config

	mu       sync.Mutex
	conns    map[uint64]*conn
	nextID   uint64
	draining bool
	ln       net.Listener

	wg    sync.WaitGroup
	stmts atomic.Int64 // live prepared statements across all connections
}

// New creates a server over db.
func New(db *neurdb.DB, cfg Config) *Server {
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = wire.DefaultMaxFrame
	}
	if cfg.BatchRows <= 0 {
		cfg.BatchRows = executor.BatchSize
	}
	if cfg.BatchBytes <= 0 {
		cfg.BatchBytes = 1 << 20
	}
	return &Server{db: db, cfg: cfg, conns: make(map[uint64]*conn)}
}

// Serve accepts connections on ln until the listener is closed (Shutdown
// closes it). It returns nil on clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		netc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		c, full := s.register(netc)
		if c == nil {
			if full {
				// At MaxConns: answer the handshake with a typed refusal in
				// a short-lived goroutine (the Startup read must not block
				// the accept loop) instead of slamming the socket shut.
				go s.refuse(netc)
			} else {
				netc.Close() // raced with Shutdown
			}
			continue
		}
		go func() {
			defer s.wg.Done()
			c.run()
		}()
	}
}

// Shutdown drains the server: stop accepting, give in-flight connections up
// to grace to finish, then force-close the stragglers. It blocks until every
// connection goroutine has exited.
func (s *Server) Shutdown(grace time.Duration) {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return
	case <-time.After(grace):
	}
	// Grace expired: sever remaining connections (their goroutines unblock
	// on the closed socket and clean up sessions/cursors on the way out).
	s.mu.Lock()
	for _, c := range s.conns {
		c.netc.Close()
	}
	s.mu.Unlock()
	<-done
}

// register adds a connection with fresh cancellation credentials, or
// returns nil when the server is draining (full=false) or at MaxConns
// (full=true). The drain WaitGroup is incremented under the same mutex
// Shutdown takes to set draining, so a connection is either visible to
// wg.Wait or refused — never in between.
func (s *Server) register(netc net.Conn) (c *conn, full bool) {
	var secret [8]byte
	if _, err := rand.Read(secret[:]); err != nil {
		binary.BigEndian.PutUint64(secret[:], uint64(time.Now().UnixNano()))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false
	}
	if s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns {
		s.db.Monitor().Count("server.conns_refused", 1)
		return nil, true
	}
	s.nextID++
	c = &conn{
		id:      s.nextID,
		secret:  binary.BigEndian.Uint64(secret[:]),
		srv:     s,
		netc:    netc,
		r:       wire.NewReader(netc, s.cfg.MaxFrame),
		w:       wire.NewWriter(netc),
		session: s.db.NewSession(),
		stmts:   make(map[string]*neurdb.Stmt),
		portals: make(map[string]*portal),
	}
	s.conns[c.id] = c
	s.wg.Add(1) // balanced by wg.Done in the connection goroutine
	s.db.Monitor().Observe("server.conns", float64(len(s.conns)))
	return c, false
}

// refuse answers one over-capacity connection: read its first frame under a
// short deadline, pass a Cancel through (cancels must work precisely when
// the server is saturated), and answer a Startup with TOO_MANY_CONNS so the
// client fails with a typed, retryable error instead of a raw hangup.
func (s *Server) refuse(netc net.Conn) {
	defer netc.Close()
	_ = netc.SetDeadline(time.Now().Add(5 * time.Second))
	r := wire.NewReader(netc, s.cfg.MaxFrame)
	op, payload, err := r.ReadFrame()
	if err != nil {
		return
	}
	msg, err := wire.Decode(op, payload)
	if err != nil {
		return
	}
	w := wire.NewWriter(netc)
	switch m := msg.(type) {
	case *wire.Cancel:
		s.cancel(m.ConnID, m.Secret)
	case *wire.Startup:
		_ = w.WriteMsg(&wire.Error{
			Code:    wire.CodeTooManyConns,
			Message: fmt.Sprintf("server at capacity (%d connections)", s.cfg.MaxConns),
		})
		_ = w.Flush()
	}
}

// unregister removes a finished connection.
func (s *Server) unregister(c *conn) {
	s.mu.Lock()
	delete(s.conns, c.id)
	n := len(s.conns)
	s.mu.Unlock()
	s.db.Monitor().Observe("server.conns", float64(n))
}

// cancel flags the identified connection's in-flight (or next) query for
// cancellation. Bad credentials are ignored, like PostgreSQL.
func (s *Server) cancel(id, secret uint64) {
	s.mu.Lock()
	c := s.conns[id]
	s.mu.Unlock()
	if c != nil && c.secret == secret {
		c.canceled.Store(true)
	}
}

// noteStmts tracks the cross-connection prepared-statement count as the
// "server.stmts" monitor series.
func (s *Server) noteStmts(delta int) {
	s.db.Monitor().Observe("server.stmts", float64(s.stmts.Add(int64(delta))))
}

// portal is one bound (and possibly suspended) execution of a prepared
// statement.
type portal struct {
	stmt *neurdb.Stmt
	args []any
	rows *neurdb.Rows // nil until the first Execute
	// pending buffers the row read ahead to distinguish "suspended with
	// more rows" from "exactly drained" at a MaxRows boundary.
	pending rel.Row
	hasPend bool
	sent    uint64 // rows returned across Executes of this portal
}

// conn is one client connection: a session plus protocol state, driven by a
// single goroutine.
type conn struct {
	id     uint64
	secret uint64
	srv    *Server
	netc   net.Conn
	r      *wire.Reader
	w      *wire.Writer

	session *neurdb.Session
	stmts   map[string]*neurdb.Stmt
	portals map[string]*portal

	// canceled is set by Server.cancel from another goroutine; the
	// streaming loops poll it between rows.
	canceled atomic.Bool

	// skipToSync discards messages after an error until the client's Sync,
	// so a pipelined sequence fails as a unit.
	skipToSync bool
}

// run drives the connection to completion and releases everything it owns:
// open cursors (aborting their read transactions), prepared statements, the
// session's open transaction, and the socket.
func (c *conn) run() {
	defer func() {
		for name := range c.portals {
			c.closePortal(name)
		}
		c.srv.noteStmts(-len(c.stmts))
		for _, st := range c.stmts {
			st.Close()
		}
		c.session.Close()
		c.netc.Close()
		c.srv.unregister(c)
	}()

	if ok, err := c.handshake(); !ok || err != nil {
		return
	}
	for {
		// Deferred-flush policy (as in PostgreSQL): responses accumulate in
		// the write buffer while more client frames are already waiting, and
		// go out in one write when the connection is about to block. Full
		// DataBatches mid-stream still flush eagerly in stream().
		if c.r.Buffered() == 0 {
			if err := c.w.Flush(); err != nil {
				return
			}
		}
		// Idle deadline: a peer that sends nothing within the window is torn
		// down (the deferred cleanup above releases everything it pinned).
		// Re-armed before every frame, so an active connection never expires.
		if idle := c.srv.cfg.IdleTimeout; idle > 0 {
			_ = c.netc.SetReadDeadline(time.Now().Add(idle))
		}
		op, payload, err := c.r.ReadFrame()
		if err != nil {
			var tooLarge *wire.FrameTooLargeError
			if errors.As(err, &tooLarge) {
				// The payload was discarded; report and resynchronize at
				// the client's Sync instead of dropping the connection.
				c.sendError(wire.CodeTooLarge, tooLarge.Error())
				continue
			}
			return // disconnect or corrupt stream
		}
		if c.skipToSync && op != wire.OpSync && op != wire.OpTerminate {
			continue
		}
		msg, err := wire.Decode(op, payload)
		if err != nil {
			c.sendError(wire.CodeProtocol, err.Error())
			continue
		}
		var fatal error
		switch m := msg.(type) {
		case *wire.Query:
			fatal = c.simpleQuery(m.SQL)
		case *wire.Parse:
			c.parse(m)
		case *wire.Bind:
			c.bind(m)
		case *wire.Execute:
			fatal = c.execute(m)
		case *wire.Describe:
			fatal = c.describe(m)
		case *wire.Close:
			c.closeMsg(m)
		case *wire.Sync:
			c.skipToSync = false
			c.canceled.Store(false) // a cancel request dies with its sequence
			fatal = c.send(&wire.Ready{})
		case *wire.Terminate:
			return
		default:
			c.sendError(wire.CodeProtocol, fmt.Sprintf("unexpected message %T", msg))
		}
		if fatal != nil {
			return
		}
	}
}

// handshake consumes the first frame: a Startup (negotiate and answer) or a
// Cancel (apply and close).
func (c *conn) handshake() (bool, error) {
	if idle := c.srv.cfg.IdleTimeout; idle > 0 {
		_ = c.netc.SetReadDeadline(time.Now().Add(idle))
	}
	op, payload, err := c.r.ReadFrame()
	if err != nil {
		return false, err
	}
	msg, err := wire.Decode(op, payload)
	if err != nil {
		return false, err
	}
	switch m := msg.(type) {
	case *wire.Cancel:
		c.srv.cancel(m.ConnID, m.Secret)
		return false, nil // cancel connections carry nothing else
	case *wire.Startup:
		if wire.VersionMajor(m.Version) != wire.VersionMajor(wire.Version) {
			c.sendError(wire.CodeProtocol, fmt.Sprintf(
				"unsupported protocol version %s (server speaks %s)",
				wire.FormatVersion(m.Version), wire.FormatVersion(wire.Version)))
			c.w.Flush()
			return false, nil
		}
		c.send(&wire.ParameterStatus{Key: "server_version", Value: "neurdb"})
		c.send(&wire.ParameterStatus{Key: "protocol_version", Value: wire.FormatVersion(wire.Version)})
		c.send(&wire.ParameterStatus{Key: "max_frame", Value: fmt.Sprint(c.srv.cfg.MaxFrame)})
		c.send(&wire.BackendKeyData{ConnID: c.id, Secret: c.secret})
		if err := c.send(&wire.Ready{}); err != nil {
			return false, err
		}
		return true, c.w.Flush()
	default:
		c.sendError(wire.CodeProtocol, fmt.Sprintf("expected Startup, got %T", msg))
		c.w.Flush()
		return false, nil
	}
}

// send writes one message (buffered until the next flush point).
func (c *conn) send(m wire.Msg) error { return c.w.WriteMsg(m) }

// sendError reports a statement or protocol error and arms skip-to-Sync so
// the rest of a pipelined sequence is discarded.
func (c *conn) sendError(code, msg string) {
	c.skipToSync = true
	c.send(&wire.Error{Code: code, Message: msg})
}

// sendStmtError reports a statement failure with the most specific wire
// code the error maps to, so remote clients can branch on degradation
// (READ_ONLY) and overload (TIMEOUT) the same way embedded callers use
// errors.Is.
func (c *conn) sendStmtError(err error) {
	c.sendError(stmtErrCode(err), err.Error())
}

// stmtErrCode maps engine errors onto wire error codes.
func stmtErrCode(err error) string {
	switch {
	case errors.Is(err, neurdb.ErrReadOnly):
		return wire.CodeReadOnly
	case errors.Is(err, neurdb.ErrStatementTimeout):
		return wire.CodeTimeout
	default:
		return wire.CodeError
	}
}

// parse prepares a named statement through the session, putting the plan in
// the DB-wide plan cache.
func (c *conn) parse(m *wire.Parse) {
	if m.Name != "" {
		if _, dup := c.stmts[m.Name]; dup {
			c.sendError(wire.CodeError, fmt.Sprintf("prepared statement %q already exists", m.Name))
			return
		}
	}
	st, err := c.session.Prepare(m.SQL)
	if err != nil {
		c.sendError(wire.CodeError, err.Error())
		return
	}
	if old, ok := c.stmts[m.Name]; ok { // unnamed statement: silent replace
		old.Close()
		c.srv.noteStmts(-1)
	}
	c.stmts[m.Name] = st
	c.srv.noteStmts(1)
	c.send(&wire.ParseComplete{NumParams: uint16(st.NumParams())})
}

// bind creates a portal over a prepared statement with decoded argument
// values. Execution is deferred to Execute.
func (c *conn) bind(m *wire.Bind) {
	st, ok := c.stmts[m.Stmt]
	if !ok {
		c.sendError(wire.CodeError, fmt.Sprintf("unknown prepared statement %q", m.Stmt))
		return
	}
	if len(m.Args) != st.NumParams() {
		c.sendError(wire.CodeError, fmt.Sprintf(
			"statement %q takes %d parameters, Bind carried %d", m.Stmt, st.NumParams(), len(m.Args)))
		return
	}
	args := make([]any, len(m.Args))
	for i, v := range m.Args {
		args[i] = v
	}
	c.closePortal(m.Portal) // rebinding an open portal closes its cursor
	c.portals[m.Portal] = &portal{stmt: st, args: args}
	c.send(&wire.BindComplete{})
}

// execute runs (or resumes) a portal, streaming DataBatch frames flushed at
// every batch boundary. A MaxRows bound that stops early leaves the portal
// suspended. The returned error is fatal (I/O): statement failures are
// reported in-band.
func (c *conn) execute(m *wire.Execute) error {
	p, ok := c.portals[m.Portal]
	if !ok {
		c.sendError(wire.CodeError, fmt.Sprintf("unknown portal %q", m.Portal))
		return nil
	}
	if p.rows == nil {
		rows, err := p.stmt.Query(p.args...)
		if err != nil {
			delete(c.portals, m.Portal)
			c.sendStmtError(err)
			return nil
		}
		p.rows = rows
		// Non-SELECT statements that still return rows (EXPLAIN, PREDICT)
		// announce their shape in-band: Describe cannot know it before
		// execution.
		if !p.stmt.IsSelect() {
			if cols := rows.Columns(); len(cols) > 0 {
				if err := c.send(&wire.RowDescription{Cols: rowsCols(rows)}); err != nil {
					c.closePortalNamed(m.Portal, p)
					return err
				}
			}
		}
	}
	return c.stream(p, m.Portal, m.MaxRows)
}

// stream pushes rows from a portal's cursor: up to maxRows (0 = all),
// framed in DataBatch messages of at most cfg.BatchRows rows each. Full
// mid-stream batches are flushed eagerly so the client sees the first rows
// before the last are produced; the final partial batch and the trailing
// CommandComplete/Suspended stay buffered and ride the Ready flush at Sync
// — one socket write per round trip on the point-query hot path.
func (c *conn) stream(p *portal, name string, maxRows uint32) error {
	ncols := len(p.rows.Columns())
	batch := make([]rel.Row, 0, c.srv.cfg.BatchRows)
	batchBytes := 0
	// sendBatch frames the buffered rows; flush pushes mid-stream batches.
	sendBatch := func(flush bool) error {
		if len(batch) == 0 {
			return nil
		}
		if err := c.send(&wire.DataBatch{NumCols: ncols, Rows: batch}); err != nil {
			return err
		}
		batch, batchBytes = batch[:0], 0
		if !flush {
			return nil
		}
		return c.w.Flush()
	}

	var n uint32
	for maxRows == 0 || n < maxRows {
		if c.canceled.Load() {
			c.closePortalNamed(name, p)
			c.sendError(wire.CodeCanceled, "query canceled")
			return nil
		}
		var row rel.Row
		switch {
		case p.hasPend:
			row, p.pending, p.hasPend = p.pending, nil, false
		case p.rows.Next():
			row = p.rows.Row()
		default: // drained (or failed)
			if err := sendBatch(false); err != nil {
				c.closePortalNamed(name, p)
				return err
			}
			return c.finishPortal(name, p)
		}
		batch = append(batch, row)
		batchBytes += wire.RowSize(row)
		p.sent++
		n++
		if len(batch) >= c.srv.cfg.BatchRows || batchBytes >= c.srv.cfg.BatchBytes {
			if err := sendBatch(true); err != nil {
				c.closePortalNamed(name, p)
				return err
			}
		}
	}
	// MaxRows reached: peek one row ahead to decide between suspension and
	// completion, so an exactly-drained portal completes in one Execute.
	if p.rows.Next() {
		p.pending, p.hasPend = p.rows.Row(), true
		if err := sendBatch(false); err != nil {
			c.closePortalNamed(name, p)
			return err
		}
		return c.send(&wire.Suspended{})
	}
	if err := sendBatch(false); err != nil {
		c.closePortalNamed(name, p)
		return err
	}
	return c.finishPortal(name, p)
}

// finishPortal completes a drained portal: surface the cursor error if any,
// otherwise CommandComplete with the statement tag and row/affected count.
func (c *conn) finishPortal(name string, p *portal) error {
	err := p.rows.Err()
	tag := p.rows.Message()
	affected := uint64(p.rows.Affected())
	c.closePortalNamed(name, p)
	if err != nil {
		c.sendStmtError(err)
		return nil
	}
	if affected == 0 {
		affected = p.sent
	}
	return c.send(&wire.CommandComplete{Tag: tag, Affected: affected})
}

// closePortal closes the named portal's cursor (if open) and forgets it.
// Closing a missing portal is a no-op.
func (c *conn) closePortal(name string) {
	if p, ok := c.portals[name]; ok {
		c.closePortalNamed(name, p)
	}
}

func (c *conn) closePortalNamed(name string, p *portal) {
	if p.rows != nil {
		p.rows.Close()
		p.rows = nil
	}
	delete(c.portals, name)
}

// describe reports metadata: RowDescription for SELECTs, NoData otherwise.
func (c *conn) describe(m *wire.Describe) error {
	var st *neurdb.Stmt
	switch m.Kind {
	case wire.KindStatement:
		s, ok := c.stmts[m.Name]
		if !ok {
			c.sendError(wire.CodeError, fmt.Sprintf("unknown prepared statement %q", m.Name))
			return nil
		}
		st = s
	case wire.KindPortal:
		p, ok := c.portals[m.Name]
		if !ok || p.stmt == nil {
			c.sendError(wire.CodeError, fmt.Sprintf("unknown portal %q", m.Name))
			return nil
		}
		st = p.stmt
	default:
		c.sendError(wire.CodeProtocol, fmt.Sprintf("bad Describe kind %q", m.Kind))
		return nil
	}
	schema, err := st.ResultSchema()
	if err != nil {
		c.sendError(wire.CodeError, err.Error())
		return nil
	}
	if schema == nil {
		return c.send(&wire.NoData{})
	}
	return c.send(&wire.RowDescription{Cols: schemaCols(schema)})
}

// closeMsg handles the Close message for statements and portals.
func (c *conn) closeMsg(m *wire.Close) {
	switch m.Kind {
	case wire.KindStatement:
		if st, ok := c.stmts[m.Name]; ok {
			st.Close()
			delete(c.stmts, m.Name)
			c.srv.noteStmts(-1)
		}
	case wire.KindPortal:
		c.closePortal(m.Name)
	default:
		c.sendError(wire.CodeProtocol, fmt.Sprintf("bad Close kind %q", m.Kind))
		return
	}
	c.send(&wire.CloseComplete{})
}

// simpleQuery runs one statement through the simple protocol: parse, plan
// and execute in one shot, streaming the result. The plan cache is not
// consulted — that is the extended protocol's job.
func (c *conn) simpleQuery(sql string) error {
	rows, err := c.session.Query(sql)
	if err != nil {
		c.sendStmtError(err)
		return nil
	}
	if cols := rows.Columns(); len(cols) > 0 {
		if err := c.send(&wire.RowDescription{Cols: rowsCols(rows)}); err != nil {
			rows.Close()
			return err
		}
	}
	c.closePortal("") // simple Query displaces the unnamed portal, like PG
	p := &portal{rows: rows}
	c.portals[""] = p // registered so conn teardown closes it on fatal error
	return c.stream(p, "", 0)
}

// schemaCols converts an engine schema into wire column descriptors.
func schemaCols(s *rel.Schema) []wire.ColDesc {
	cols := make([]wire.ColDesc, s.Arity())
	for i, c := range s.Cols {
		cols[i] = wire.ColDesc{Name: c.Name, Type: c.Typ}
	}
	return cols
}

// rowsCols builds column descriptors for a cursor: typed when the engine
// exposes a schema (streamed SELECTs), dynamically typed otherwise.
func rowsCols(rows *neurdb.Rows) []wire.ColDesc {
	names := rows.Columns()
	cols := make([]wire.ColDesc, len(names))
	schema := rows.Schema()
	for i, n := range names {
		cols[i] = wire.ColDesc{Name: n}
		if schema != nil && i < schema.Arity() {
			cols[i].Type = schema.Col(i).Typ
		}
	}
	return cols
}
