package sqlparse

import (
	"strings"
	"testing"

	"neurdb/internal/rel"
)

func mustParse(t *testing.T, src string) Stmt {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func TestLexerBasics(t *testing.T) {
	toks, err := Tokenize("SELECT a, b2 FROM t WHERE x <= 3.5 AND name = 'it''s' -- comment\n;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
		texts = append(texts, tk.Text)
	}
	want := []string{"SELECT", "a", ",", "b2", "FROM", "t", "WHERE", "x", "<=", "3.5", "AND", "name", "=", "it's", ";", ""}
	if len(texts) != len(want) {
		t.Fatalf("tokens: %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[9] != TokNumber || kinds[13] != TokString {
		t.Fatal("token kinds wrong")
	}
}

func TestLexerBlockCommentAndScientific(t *testing.T) {
	toks, err := Tokenize("/* hi */ 1e-3 2E+4 5e2")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "1e-3" || toks[1].Text != "2E+4" || toks[2].Text != "5e2" {
		t.Fatalf("scientific tokens: %v %v %v", toks[0].Text, toks[1].Text, toks[2].Text)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := Tokenize("'unterminated"); err == nil {
		t.Fatal("unterminated string should error")
	}
	if _, err := Tokenize("a @ b"); err == nil {
		t.Fatal("bad character should error")
	}
}

func TestParseCreateTable(t *testing.T) {
	s := mustParse(t, `CREATE TABLE users (
		id BIGINT PRIMARY KEY,
		name TEXT NOT NULL,
		score DOUBLE,
		active BOOLEAN UNIQUE
	)`)
	ct := s.(*CreateTable)
	if ct.Name != "users" || len(ct.Cols) != 4 {
		t.Fatalf("bad create: %+v", ct)
	}
	if !ct.Cols[0].Unique || !ct.Cols[0].NotNull || ct.Cols[0].Typ != rel.TypeInt {
		t.Fatal("primary key flags wrong")
	}
	if !ct.Cols[1].NotNull || ct.Cols[1].Typ != rel.TypeText {
		t.Fatal("not null flags wrong")
	}
	if !ct.Cols[3].Unique || ct.Cols[3].Typ != rel.TypeBool {
		t.Fatal("unique flag wrong")
	}
}

func TestParseCreateIndex(t *testing.T) {
	s := mustParse(t, "CREATE INDEX idx_u ON users (id)")
	ci := s.(*CreateIndex)
	if ci.Name != "idx_u" || ci.Table != "users" || ci.Col != "id" || ci.UseHash {
		t.Fatalf("bad index: %+v", ci)
	}
	s2 := mustParse(t, "CREATE INDEX h ON users (id) USING HASH")
	if !s2.(*CreateIndex).UseHash {
		t.Fatal("hash flag missing")
	}
}

func TestParseDrop(t *testing.T) {
	d := mustParse(t, "DROP TABLE IF EXISTS t").(*DropTable)
	if d.Name != "t" || !d.IfExists {
		t.Fatal("drop wrong")
	}
}

func TestParseInsert(t *testing.T) {
	s := mustParse(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
	ins := s.(*Insert)
	if ins.Table != "t" || len(ins.Cols) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("bad insert: %+v", ins)
	}
	if lit := ins.Rows[1][0].(*Lit); lit.Val.I != 2 {
		t.Fatal("row literal wrong")
	}
	// Positional insert with negative and null values.
	s2 := mustParse(t, "INSERT INTO t VALUES (-3, NULL, 2.5, true)")
	row := s2.(*Insert).Rows[0]
	if row[0].(*Lit).Val.I != -3 || !row[1].(*Lit).Val.IsNull() || row[3].(*Lit).Val.B != true {
		t.Fatal("positional values wrong")
	}
}

func TestParseSelectBasic(t *testing.T) {
	s := mustParse(t, "SELECT * FROM t WHERE a = 1 ORDER BY b DESC LIMIT 10")
	sel := s.(*Select)
	if !sel.Items[0].Star || sel.From[0].Name != "t" || sel.Limit != 10 {
		t.Fatalf("bad select: %+v", sel)
	}
	if !sel.OrderBy[0].Desc {
		t.Fatal("desc missing")
	}
	w := sel.Where.(*Binary)
	if w.Op != "=" || w.L.(*ColName).Name != "a" {
		t.Fatal("where wrong")
	}
}

func TestParseSelectJoins(t *testing.T) {
	s := mustParse(t, `SELECT u.id, p.score FROM users u JOIN posts p ON u.id = p.owner WHERE p.score > 5`)
	sel := s.(*Select)
	if len(sel.From) != 1 || sel.From[0].Alias != "u" || len(sel.Joins) != 1 {
		t.Fatalf("bad join parse: %+v", sel)
	}
	on := sel.Joins[0].On.(*Binary)
	if on.L.(*ColName).Table != "u" || on.R.(*ColName).Table != "p" {
		t.Fatal("join condition qualifiers wrong")
	}
	// Comma joins.
	s2 := mustParse(t, "SELECT a.x FROM a, b, c WHERE a.id = b.id AND b.id = c.id")
	if len(s2.(*Select).From) != 3 {
		t.Fatal("comma join count wrong")
	}
}

func TestParseSelectAggregates(t *testing.T) {
	s := mustParse(t, "SELECT k, COUNT(*), SUM(v) AS total, AVG(v) FROM t GROUP BY k")
	sel := s.(*Select)
	if len(sel.Items) != 4 || len(sel.GroupBy) != 1 {
		t.Fatalf("agg parse: %+v", sel)
	}
	cnt := sel.Items[1].E.(*FuncCall)
	if cnt.Name != "COUNT" || !cnt.Star {
		t.Fatal("count(*) wrong")
	}
	sum := sel.Items[2].E.(*FuncCall)
	if sum.Name != "SUM" || sel.Items[2].Alias != "total" {
		t.Fatal("sum alias wrong")
	}
}

func TestParseUpdateDelete(t *testing.T) {
	s := mustParse(t, "UPDATE t SET a = a + 1, b = 'x' WHERE id = 5")
	up := s.(*Update)
	if up.Table != "t" || len(up.Set) != 2 || up.Where == nil {
		t.Fatalf("update wrong: %+v", up)
	}
	if up.Cols[0] != "a" || up.Cols[1] != "b" {
		t.Fatal("set order lost")
	}
	if _, err := Parse("UPDATE t SET a=1, a=2"); err == nil {
		t.Fatal("duplicate SET should fail")
	}
	d := mustParse(t, "DELETE FROM t WHERE a IN (1, 2, 3)").(*Delete)
	in := d.Where.(*InList)
	if len(in.Vals) != 3 {
		t.Fatal("in list wrong")
	}
}

func TestParseTxnStmts(t *testing.T) {
	for src, kind := range map[string]string{
		"BEGIN":             "BEGIN",
		"BEGIN TRANSACTION": "BEGIN",
		"COMMIT":            "COMMIT",
		"ROLLBACK":          "ROLLBACK",
		"ABORT":             "ROLLBACK",
	} {
		if got := mustParse(t, src).(*TxnStmt).Kind; got != kind {
			t.Fatalf("%s -> %s, want %s", src, got, kind)
		}
	}
}

func TestParseAnalyzeExplainSet(t *testing.T) {
	if a := mustParse(t, "ANALYZE").(*Analyze); a.Table != "" {
		t.Fatal("analyze all wrong")
	}
	if a := mustParse(t, "ANALYZE users").(*Analyze); a.Table != "users" {
		t.Fatal("analyze table wrong")
	}
	e := mustParse(t, "EXPLAIN SELECT * FROM t").(*Explain)
	if _, ok := e.Inner.(*Select); !ok {
		t.Fatal("explain inner wrong")
	}
	st := mustParse(t, "SET optimizer = 'learned'").(*SetStmt)
	if st.Key != "optimizer" || st.Value != "learned" {
		t.Fatal("set wrong")
	}
}

func TestParsePredictRegression(t *testing.T) {
	// Listing 1 from the paper.
	s := mustParse(t, `PREDICT VALUE OF score
		FROM review
		WHERE brand_name = 'Special Goods'
		TRAIN ON *
		WITH brand_name <> 'Special Goods'`)
	pr := s.(*Predict)
	if pr.Kind != PredictValue || pr.Target != "score" || pr.Table != "review" {
		t.Fatalf("predict wrong: %+v", pr)
	}
	if !pr.TrainAll || pr.Where == nil || pr.With == nil {
		t.Fatal("clauses missing")
	}
}

func TestParsePredictClassification(t *testing.T) {
	// Listing 2 from the paper.
	s := mustParse(t, `PREDICT CLASS OF outcome
		FROM diabetes
		TRAIN ON pregnancies, glucose, blood_pressure
		VALUES (6, 148, 72), (1, 85, 66)`)
	pr := s.(*Predict)
	if pr.Kind != PredictClass || pr.Target != "outcome" {
		t.Fatalf("predict wrong: %+v", pr)
	}
	if len(pr.TrainCols) != 3 || pr.TrainCols[2] != "blood_pressure" {
		t.Fatal("train cols wrong")
	}
	if len(pr.Values) != 2 || len(pr.Values[0]) != 3 {
		t.Fatal("values wrong")
	}
	if pr.Kind.String() != "CLASS" || PredictValue.String() != "VALUE" {
		t.Fatal("kind strings wrong")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE a + 2 * 3 = 7 AND NOT b OR c")
	sel := s.(*Select)
	or := sel.Where.(*Binary)
	if or.Op != "OR" {
		t.Fatal("OR should be outermost")
	}
	and := or.L.(*Binary)
	if and.Op != "AND" {
		t.Fatal("AND should bind tighter than OR")
	}
	eq := and.L.(*Binary)
	if eq.Op != "=" {
		t.Fatal("comparison nesting wrong")
	}
	plus := eq.L.(*Binary)
	if plus.Op != "+" {
		t.Fatal("additive nesting wrong")
	}
	if plus.R.(*Binary).Op != "*" {
		t.Fatal("* should bind tighter than +")
	}
	if _, ok := and.R.(*Unary); !ok {
		t.Fatal("NOT parse wrong")
	}
}

func TestParseBetweenAndIsNull(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b IS NOT NULL AND c IS NULL")
	sel := s.(*Select)
	conj := sel.Where.(*Binary)
	if conj.Op != "AND" {
		t.Fatal("top AND missing")
	}
	src := exprString(sel.Where)
	if !strings.Contains(src, ">=") || !strings.Contains(src, "<=") {
		t.Fatalf("between not desugared: %s", src)
	}
}

// exprString is a minimal expression printer for assertions.
func exprString(e Expr) string {
	switch t := e.(type) {
	case *ColName:
		return t.String()
	case *Lit:
		return t.Val.String()
	case *Binary:
		return "(" + exprString(t.L) + " " + t.Op + " " + exprString(t.R) + ")"
	case *Unary:
		return t.Op + " " + exprString(t.E)
	case *IsNull:
		if t.Negate {
			return exprString(t.E) + " IS NOT NULL"
		}
		return exprString(t.E) + " IS NULL"
	case *InList:
		return exprString(t.E) + " IN (...)"
	case *FuncCall:
		return t.Name + "(...)"
	}
	return "?"
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript(`
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES (1);
		SELECT * FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("script stmt count = %d", len(stmts))
	}
	if _, err := ParseScript("SELECT * FROM t SELECT"); err == nil {
		t.Fatal("missing semicolon should fail")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FOO BAR",
		"CREATE VIEW v",
		"CREATE TABLE t (a BADTYPE)",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"INSERT INTO t",
		"INSERT t VALUES (1)",
		"PREDICT SCORE OF x FROM t TRAIN ON *",
		"PREDICT VALUE OF x FROM t",       // missing TRAIN ON
		"PREDICT VALUE OF x FROM t TRAIN", // missing ON
		"UPDATE t SET",
		"DELETE t",
		"SELECT a FROM t LIMIT x",
		"SELECT * FROM t; garbage",
		"SELECT a b c FROM t",
		"SET x",
		"SELECT (a FROM t",
		"SELECT a FROM t WHERE a IN ()",
		"SELECT a FROM t INNER t2",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseTableOneAliasStyles(t *testing.T) {
	s := mustParse(t, "SELECT x.a FROM tab AS x WHERE x.a > 0")
	if s.(*Select).From[0].Alias != "x" {
		t.Fatal("AS alias wrong")
	}
	s2 := mustParse(t, "SELECT a FROM tab x")
	ref := s2.(*Select).From[0]
	if ref.RefName() != "x" || ref.Name != "tab" {
		t.Fatal("bare alias wrong")
	}
	s3 := mustParse(t, "SELECT a FROM tab")
	if s3.(*Select).From[0].RefName() != "tab" {
		t.Fatal("refname fallback wrong")
	}
}
