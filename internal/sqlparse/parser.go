package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"neurdb/internal/rel"
)

// Parser is a recursive-descent SQL parser.
type Parser struct {
	toks      []Token
	pos       int
	qmarks    int  // '?' placeholders seen so far (they number left to right)
	sawDollar bool // '$n' placeholder seen (styles must not mix)
}

// Parse parses a single SQL statement (an optional trailing semicolon is
// allowed).
func Parse(src string) (Stmt, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if !p.atEOF() {
		return nil, fmt.Errorf("sql: trailing input at %q", p.peek().Text)
	}
	if sel, ok := stmt.(*Select); ok {
		sel.Text = strings.TrimSpace(src)
	}
	return stmt, nil
}

// SplitScript splits a semicolon-separated script into individual statement
// strings using the lexer, so semicolons inside string literals or comments
// never split a statement. Empty segments are dropped. Callers that want to
// execute statements one at a time (e.g. a streaming shell) use this and
// feed each piece to Query/Exec.
func SplitScript(src string) ([]string, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	var out []string
	start := -1 // byte offset of the current statement's first token
	for _, t := range toks {
		switch {
		case t.Kind == TokPunct && t.Text == ";":
			if start >= 0 {
				out = append(out, src[start:t.Pos])
				start = -1
			}
		case t.Kind == TokEOF:
			if start >= 0 {
				out = append(out, src[start:t.Pos])
			}
		default:
			if start < 0 {
				start = t.Pos
			}
		}
	}
	return out, nil
}

// ParseScript parses a semicolon-separated list of statements.
func ParseScript(src string) ([]Stmt, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	var out []Stmt
	for !p.atEOF() {
		if p.accept(";") {
			continue
		}
		start := p.peek().Pos
		stmt, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if sel, ok := stmt.(*Select); ok {
			// The next token is the ';' separator or EOF: everything in
			// between is this statement's text.
			sel.Text = strings.TrimSpace(src[start:p.peek().Pos])
		}
		out = append(out, stmt)
		if !p.accept(";") && !p.atEOF() {
			return nil, fmt.Errorf("sql: expected ';' between statements, got %q", p.peek().Text)
		}
	}
	return out, nil
}

func (p *Parser) peek() Token { return p.toks[p.pos] }

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) atEOF() bool { return p.peek().Kind == TokEOF }

// accept consumes the next token if it matches the keyword or punctuation.
func (p *Parser) accept(s string) bool {
	t := p.peek()
	if t.Kind == TokPunct && t.Text == s {
		p.pos++
		return true
	}
	if t.keyword(s) {
		p.pos++
		return true
	}
	return false
}

// expect consumes a required keyword/punctuation.
func (p *Parser) expect(s string) error {
	if p.accept(s) {
		return nil
	}
	return fmt.Errorf("sql: expected %q, got %q at offset %d", s, p.peek().Text, p.peek().Pos)
}

func (p *Parser) ident() (string, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return "", fmt.Errorf("sql: expected identifier, got %q at offset %d", t.Text, t.Pos)
	}
	p.pos++
	return t.Text, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	// Placeholder numbering and style tracking are per statement (the
	// parser is reused across a script).
	p.qmarks, p.sawDollar = 0, false
	t := p.peek()
	switch {
	case t.keyword("CREATE"):
		return p.parseCreate()
	case t.keyword("DROP"):
		return p.parseDrop()
	case t.keyword("INSERT"):
		return p.parseInsert()
	case t.keyword("SELECT"):
		return p.parseSelect()
	case t.keyword("UPDATE"):
		return p.parseUpdate()
	case t.keyword("DELETE"):
		return p.parseDelete()
	case t.keyword("BEGIN") || t.keyword("START"):
		p.next()
		p.accept("TRANSACTION")
		return &TxnStmt{Kind: "BEGIN"}, nil
	case t.keyword("COMMIT"):
		p.next()
		return &TxnStmt{Kind: "COMMIT"}, nil
	case t.keyword("ROLLBACK") || t.keyword("ABORT"):
		p.next()
		return &TxnStmt{Kind: "ROLLBACK"}, nil
	case t.keyword("ANALYZE"):
		p.next()
		if p.peek().Kind == TokIdent {
			name, _ := p.ident()
			return &Analyze{Table: name}, nil
		}
		return &Analyze{}, nil
	case t.keyword("EXPLAIN"):
		p.next()
		inner, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &Explain{Inner: inner}, nil
	case t.keyword("SET"):
		p.next()
		key, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		vt := p.next()
		if vt.Kind != TokIdent && vt.Kind != TokString && vt.Kind != TokNumber {
			return nil, fmt.Errorf("sql: bad SET value %q", vt.Text)
		}
		return &SetStmt{Key: strings.ToLower(key), Value: vt.Text}, nil
	case t.keyword("PREDICT"):
		return p.parsePredict()
	default:
		return nil, fmt.Errorf("sql: unexpected statement start %q at offset %d", t.Text, t.Pos)
	}
}

func (p *Parser) parseCreate() (Stmt, error) {
	p.next() // CREATE
	switch {
	case p.accept("TABLE"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		ct := &CreateTable{Name: name}
		for {
			colName, err := p.ident()
			if err != nil {
				return nil, err
			}
			typName, err := p.ident()
			if err != nil {
				return nil, err
			}
			typ, err := parseType(typName)
			if err != nil {
				return nil, err
			}
			def := ColumnDef{Name: colName, Typ: typ}
			for {
				switch {
				case p.accept("PRIMARY"):
					if err := p.expect("KEY"); err != nil {
						return nil, err
					}
					def.Unique, def.NotNull = true, true
				case p.accept("UNIQUE"):
					def.Unique = true
				case p.accept("NOT"):
					if err := p.expect("NULL"); err != nil {
						return nil, err
					}
					def.NotNull = true
				default:
					goto colDone
				}
			}
		colDone:
			ct.Cols = append(ct.Cols, def)
			if p.accept(",") {
				continue
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			break
		}
		return ct, nil
	case p.accept("INDEX"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("ON"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		ci := &CreateIndex{Name: name, Table: table, Col: col}
		if p.accept("USING") {
			method, err := p.ident()
			if err != nil {
				return nil, err
			}
			ci.UseHash = strings.EqualFold(method, "HASH")
		}
		return ci, nil
	default:
		return nil, fmt.Errorf("sql: CREATE must be followed by TABLE or INDEX")
	}
}

func (p *Parser) parseDrop() (Stmt, error) {
	p.next() // DROP
	if err := p.expect("TABLE"); err != nil {
		return nil, err
	}
	d := &DropTable{}
	if p.accept("IF") {
		if err := p.expect("EXISTS"); err != nil {
			return nil, err
		}
		d.IfExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	d.Name = name
	return d, nil
}

func parseType(name string) (rel.Type, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return rel.TypeInt, nil
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC":
		return rel.TypeFloat, nil
	case "TEXT", "VARCHAR", "CHAR", "STRING":
		return rel.TypeText, nil
	case "BOOL", "BOOLEAN":
		return rel.TypeBool, nil
	default:
		return 0, fmt.Errorf("sql: unknown type %q", name)
	}
}

func (p *Parser) parseInsert() (Stmt, error) {
	p.next() // INSERT
	if err := p.expect("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.accept("(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Cols = append(ins.Cols, col)
			if p.accept(",") {
				continue
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			break
		}
	}
	if err := p.expect("VALUES"); err != nil {
		return nil, err
	}
	for {
		row, err := p.parseExprTuple()
		if err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(",") {
			break
		}
	}
	return ins, nil
}

func (p *Parser) parseExprTuple() ([]Expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var out []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if p.accept(",") {
			continue
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return out, nil
	}
}

func (p *Parser) parseSelect() (Stmt, error) {
	p.next() // SELECT
	sel := &Select{Limit: -1}
	for {
		if p.accept("*") {
			sel.Items = append(sel.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{E: e}
			if p.accept("AS") {
				alias, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			} else if p.peek().Kind == TokIdent && !isClauseKeyword(p.peek().Text) {
				alias, _ := p.ident()
				item.Alias = alias
			}
			sel.Items = append(sel.Items, item)
		}
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, ref)
		if !p.accept(",") {
			break
		}
	}
	for {
		inner := p.accept("INNER")
		if !p.accept("JOIN") {
			if inner {
				return nil, fmt.Errorf("sql: INNER must be followed by JOIN")
			}
			break
		}
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expect("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Joins = append(sel.Joins, JoinClause{Table: ref, On: on})
	}
	if p.accept("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.accept("GROUP") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.accept("ORDER") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{E: e}
			if p.accept("DESC") {
				item.Desc = true
			} else {
				p.accept("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.accept("LIMIT") {
		t := p.next()
		if t.Kind != TokNumber {
			return nil, fmt.Errorf("sql: LIMIT expects a number, got %q", t.Text)
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad LIMIT: %w", err)
		}
		sel.Limit = n
	}
	return sel, nil
}

func isClauseKeyword(s string) bool {
	switch strings.ToUpper(s) {
	case "FROM", "WHERE", "GROUP", "ORDER", "LIMIT", "JOIN", "INNER", "ON", "AS",
		"TRAIN", "WITH", "VALUES", "SET", "AND", "OR", "NOT", "IS", "IN", "DESC", "ASC",
		"SELECT", "INSERT", "UPDATE", "DELETE", "CREATE", "DROP", "PREDICT",
		"EXPLAIN", "ANALYZE", "BEGIN", "COMMIT", "ROLLBACK", "ABORT", "USING", "BETWEEN":
		return true
	}
	return false
}

func (p *Parser) parseTableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	if p.accept("AS") {
		alias, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if p.peek().Kind == TokIdent && !isClauseKeyword(p.peek().Text) {
		alias, _ := p.ident()
		ref.Alias = alias
	}
	return ref, nil
}

func (p *Parser) parseUpdate() (Stmt, error) {
	p.next() // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("SET"); err != nil {
		return nil, err
	}
	up := &Update{Table: table, Set: map[string]Expr{}}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, dup := up.Set[strings.ToLower(col)]; dup {
			return nil, fmt.Errorf("sql: duplicate SET column %q", col)
		}
		up.Set[strings.ToLower(col)] = e
		up.Cols = append(up.Cols, strings.ToLower(col))
		if !p.accept(",") {
			break
		}
	}
	if p.accept("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Where = w
	}
	return up, nil
}

func (p *Parser) parseDelete() (Stmt, error) {
	p.next() // DELETE
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &Delete{Table: table}
	if p.accept("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Where = w
	}
	return d, nil
}

// parsePredict parses the paper's AI-analytics statement.
func (p *Parser) parsePredict() (Stmt, error) {
	p.next() // PREDICT
	pr := &Predict{}
	switch {
	case p.accept("VALUE"):
		pr.Kind = PredictValue
	case p.accept("CLASS"):
		pr.Kind = PredictClass
	default:
		return nil, fmt.Errorf("sql: PREDICT must be followed by VALUE or CLASS")
	}
	if err := p.expect("OF"); err != nil {
		return nil, err
	}
	target, err := p.ident()
	if err != nil {
		return nil, err
	}
	pr.Target = target
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	pr.Table = table
	if p.accept("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		pr.Where = w
	}
	if err := p.expect("TRAIN"); err != nil {
		return nil, err
	}
	if err := p.expect("ON"); err != nil {
		return nil, err
	}
	if p.accept("*") {
		pr.TrainAll = true
	} else {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			pr.TrainCols = append(pr.TrainCols, col)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.accept("WITH") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		pr.With = w
	}
	if p.accept("VALUES") {
		for {
			row, err := p.parseExprTuple()
			if err != nil {
				return nil, err
			}
			pr.Values = append(pr.Values, row)
			if !p.accept(",") {
				break
			}
		}
	}
	return pr, nil
}

// --- expressions ---

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.accept("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", E: e}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == TokPunct {
		switch t.Text {
		case "=", "==", "<>", "!=", "<", "<=", ">", ">=":
			p.next()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			op := t.Text
			if op == "==" {
				op = "="
			}
			if op == "!=" {
				op = "<>"
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	if t.keyword("IS") {
		p.next()
		negate := p.accept("NOT")
		if err := p.expect("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{E: l, Negate: negate}, nil
	}
	if t.keyword("IN") {
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var vals []rel.Value
		for {
			lit, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			vals = append(vals, lit)
			if p.accept(",") {
				continue
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			break
		}
		return &InList{E: l, Vals: vals}, nil
	}
	if t.keyword("BETWEEN") {
		p.next()
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expect("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: "AND",
			L: &Binary{Op: ">=", L: l, R: lo},
			R: &Binary{Op: "<=", L: l, R: hi},
		}, nil
	}
	return l, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokPunct && (t.Text == "+" || t.Text == "-") {
			p.next()
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.Text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokPunct && (t.Text == "*" || t.Text == "/" || t.Text == "%") {
			p.next()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.Text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if t := p.peek(); t.Kind == TokPunct && t.Text == "-" {
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*Lit); ok {
			switch lit.Val.Typ {
			case rel.TypeInt:
				return &Lit{Val: rel.Int(-lit.Val.I)}, nil
			case rel.TypeFloat:
				return &Lit{Val: rel.Float(-lit.Val.F)}, nil
			default:
				// Non-numeric: keep the Unary node; eval rejects it.
			}
		}
		return &Unary{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokParam:
		p.next()
		if t.Text == "" { // '?': positional, numbered left to right
			if p.sawDollar {
				return nil, fmt.Errorf("sql: cannot mix '?' and '$n' placeholders (offset %d)", t.Pos)
			}
			idx := p.qmarks
			p.qmarks++
			return &Param{Idx: idx}, nil
		}
		if p.qmarks > 0 {
			return nil, fmt.Errorf("sql: cannot mix '?' and '$n' placeholders (offset %d)", t.Pos)
		}
		p.sawDollar = true
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("sql: bad parameter number $%s at offset %d", t.Text, t.Pos)
		}
		return &Param{Idx: n - 1}, nil
	case TokNumber:
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return &Lit{Val: v}, nil
	case TokString:
		p.next()
		return &Lit{Val: rel.Text(t.Text)}, nil
	case TokIdent:
		switch strings.ToUpper(t.Text) {
		case "NULL":
			p.next()
			return &Lit{Val: rel.Null()}, nil
		case "TRUE":
			p.next()
			return &Lit{Val: rel.Bool(true)}, nil
		case "FALSE":
			p.next()
			return &Lit{Val: rel.Bool(false)}, nil
		}
		name, _ := p.ident()
		// Function call?
		if p.peek().Kind == TokPunct && p.peek().Text == "(" {
			p.next()
			fc := &FuncCall{Name: strings.ToUpper(name)}
			if p.accept("*") {
				fc.Star = true
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				return fc, nil
			}
			if p.accept(")") {
				return fc, nil
			}
			for {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fc.Args = append(fc.Args, arg)
				if p.accept(",") {
					continue
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				break
			}
			return fc, nil
		}
		// Qualified column?
		if p.peek().Kind == TokPunct && p.peek().Text == "." {
			p.next()
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColName{Table: strings.ToLower(name), Name: strings.ToLower(col)}, nil
		}
		return &ColName{Name: strings.ToLower(name)}, nil
	case TokPunct:
		if t.Text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("sql: unexpected token %q at offset %d", t.Text, t.Pos)
}

// parseLiteral parses a literal value token (number or string), used where
// only constants are allowed (IN lists).
func (p *Parser) parseLiteral() (rel.Value, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return rel.Value{}, fmt.Errorf("sql: bad number %q: %w", t.Text, err)
			}
			return rel.Float(f), nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.Text, 64)
			if ferr != nil {
				return rel.Value{}, fmt.Errorf("sql: bad number %q: %w", t.Text, err)
			}
			return rel.Float(f), nil
		}
		return rel.Int(i), nil
	case TokString:
		p.next()
		return rel.Text(t.Text), nil
	case TokPunct:
		if t.Text == "-" {
			p.next()
			v, err := p.parseLiteral()
			if err != nil {
				return rel.Value{}, err
			}
			switch v.Typ {
			case rel.TypeInt:
				return rel.Int(-v.I), nil
			case rel.TypeFloat:
				return rel.Float(-v.F), nil
			default:
				// Non-numeric: fall through to the error below.
			}
			return rel.Value{}, fmt.Errorf("sql: cannot negate %v", v)
		}
	case TokIdent:
		switch strings.ToUpper(t.Text) {
		case "NULL":
			p.next()
			return rel.Null(), nil
		case "TRUE":
			p.next()
			return rel.Bool(true), nil
		case "FALSE":
			p.next()
			return rel.Bool(false), nil
		}
	}
	return rel.Value{}, fmt.Errorf("sql: expected literal, got %q at offset %d", t.Text, t.Pos)
}
