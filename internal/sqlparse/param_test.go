package sqlparse

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseQuestionMarkParams(t *testing.T) {
	stmt, err := Parse(`SELECT a FROM t WHERE b = ? AND c > ?`)
	if err != nil {
		t.Fatal(err)
	}
	if got := ParamCount(stmt); got != 2 {
		t.Fatalf("ParamCount = %d, want 2", got)
	}
	sel := stmt.(*Select)
	// '?' placeholders number left to right.
	and := sel.Where.(*Binary)
	if p := and.L.(*Binary).R.(*Param); p.Idx != 0 {
		t.Fatalf("first ? got ordinal %d", p.Idx)
	}
	if p := and.R.(*Binary).R.(*Param); p.Idx != 1 {
		t.Fatalf("second ? got ordinal %d", p.Idx)
	}
}

func TestParseDollarParams(t *testing.T) {
	stmt, err := Parse(`UPDATE t SET v = $2 WHERE id = $1`)
	if err != nil {
		t.Fatal(err)
	}
	if got := ParamCount(stmt); got != 2 {
		t.Fatalf("ParamCount = %d, want 2", got)
	}
	up := stmt.(*Update)
	if p := up.Set["v"].(*Param); p.Idx != 1 {
		t.Fatalf("$2 got ordinal %d", p.Idx)
	}
	if p := up.Where.(*Binary).R.(*Param); p.Idx != 0 {
		t.Fatalf("$1 got ordinal %d", p.Idx)
	}
}

func TestParamCountCoversStatementKinds(t *testing.T) {
	cases := map[string]int{
		`INSERT INTO t VALUES (?, ?, ?)`:                              3,
		`INSERT INTO t (a, b) VALUES (?, 1), (2, ?)`:                  2,
		`DELETE FROM t WHERE id = ?`:                                  1,
		`SELECT a + ? FROM t GROUP BY a ORDER BY a LIMIT 3`:           1,
		`SELECT a FROM t`:                                             0,
		`PREDICT VALUE OF y FROM t WHERE x = ? TRAIN ON a WITH a > ?`: 2,
		`EXPLAIN SELECT a FROM t WHERE a = ?`:                         1,
	}
	for sql, want := range cases {
		stmt, err := Parse(sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", sql, err)
		}
		if got := ParamCount(stmt); got != want {
			t.Errorf("ParamCount(%q) = %d, want %d", sql, got, want)
		}
	}
}

func TestBadDollarParam(t *testing.T) {
	if _, err := Parse(`SELECT a FROM t WHERE b = $`); err == nil {
		t.Fatal("expected error for '$' without number")
	}
	if _, err := Parse(`SELECT a FROM t WHERE b = $0`); err == nil {
		t.Fatal("expected error for $0 (ordinals are 1-based)")
	}
}

func TestMixedPlaceholderStylesRejected(t *testing.T) {
	// '?' ordinals are implicit and '$n' ordinals explicit; mixing them
	// would silently alias parameters, so both orders must error.
	for _, sql := range []string{
		`UPDATE t SET v = $1 WHERE id = ?`,
		`UPDATE t SET v = ? WHERE id = $2`,
	} {
		if _, err := Parse(sql); err == nil || !strings.Contains(err.Error(), "mix") {
			t.Fatalf("Parse(%q) err = %v, want mixed-placeholder error", sql, err)
		}
	}
	// Style state resets between script statements.
	stmts, err := ParseScript(`SELECT a FROM t WHERE a = ?; SELECT b FROM t WHERE b = $1`)
	if err != nil || len(stmts) != 2 {
		t.Fatalf("per-statement styles in a script: %v (%d stmts)", err, len(stmts))
	}
	// '?' numbering also restarts per statement.
	if p := stmts[0].(*Select).Where.(*Binary).R.(*Param); p.Idx != 0 {
		t.Fatalf("first statement ? ordinal = %d", p.Idx)
	}
}

func TestSplitScript(t *testing.T) {
	src := `CREATE TABLE t (a INT); -- trailing comment
INSERT INTO t VALUES (1), (2);
SELECT 'semi; colon' FROM t;
SELECT a FROM t`
	stmts, err := SplitScript(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 4 {
		t.Fatalf("SplitScript produced %d statements, want 4: %#v", len(stmts), stmts)
	}
	if !strings.Contains(stmts[2], "semi; colon") {
		t.Fatalf("semicolon inside string literal split the statement: %q", stmts[2])
	}
	// Every piece must parse on its own.
	for _, s := range stmts {
		if _, err := Parse(s); err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
	}
	// Empty input and bare semicolons produce nothing.
	for _, empty := range []string{"", " ;; ", "-- just a comment"} {
		got, err := SplitScript(empty)
		if err != nil || len(got) != 0 {
			t.Fatalf("SplitScript(%q) = %v, %v", empty, got, err)
		}
	}
}

func TestWalkExprsVisitsInsertTuples(t *testing.T) {
	stmt, err := Parse(`INSERT INTO t VALUES (1 + ?, 'x')`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	WalkExprs(stmt, func(e Expr) {
		kinds = append(kinds, reflect.TypeOf(e).String())
	})
	want := []string{"*sqlparse.Binary", "*sqlparse.Lit", "*sqlparse.Param", "*sqlparse.Lit"}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("WalkExprs visited %v, want %v", kinds, want)
	}
}
