package sqlparse

import (
	"strings"

	"neurdb/internal/rel"
)

// Stmt is any parsed SQL statement.
type Stmt interface{ stmt() }

// Expr is an unbound (name-based) expression tree. The planner binds column
// names to positions, producing rel.Expr.
type Expr interface{ expr() }

// ColName references a column, optionally qualified ("t.col").
type ColName struct {
	Table string
	Name  string
}

func (*ColName) expr() {}

// String renders the possibly-qualified name.
func (c *ColName) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// Lit is a literal value.
type Lit struct{ Val rel.Value }

func (*Lit) expr() {}

// Binary is a binary operation with SQL operator spelling.
type Binary struct {
	Op   string // "=", "<>", "<", "<=", ">", ">=", "+", "-", "*", "/", "%", "AND", "OR"
	L, R Expr
}

func (*Binary) expr() {}

// Unary is NOT or unary minus.
type Unary struct {
	Op string // "NOT", "-"
	E  Expr
}

func (*Unary) expr() {}

// IsNull is "expr IS [NOT] NULL".
type IsNull struct {
	E      Expr
	Negate bool
}

func (*IsNull) expr() {}

// InList is "expr IN (v1, v2, ...)".
type InList struct {
	E    Expr
	Vals []rel.Value
}

func (*InList) expr() {}

// FuncCall is an aggregate or scalar function call.
type FuncCall struct {
	Name string // upper-cased
	Args []Expr
	Star bool // COUNT(*)
}

func (*FuncCall) expr() {}

// Param is a query-parameter placeholder ('?' or '$n'), bound to a concrete
// value at execution time. Idx is the zero-based parameter ordinal: '?'
// placeholders number themselves left to right, '$n' maps to ordinal n-1.
type Param struct {
	Idx int
}

func (*Param) expr() {}

// walkExpr visits e and every sub-expression pre-order.
func walkExpr(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch t := e.(type) {
	case *Binary:
		walkExpr(t.L, f)
		walkExpr(t.R, f)
	case *Unary:
		walkExpr(t.E, f)
	case *IsNull:
		walkExpr(t.E, f)
	case *InList:
		walkExpr(t.E, f)
	case *FuncCall:
		for _, a := range t.Args {
			walkExpr(a, f)
		}
	}
}

// WalkExprs calls f on every expression appearing in the statement,
// including sub-expressions. It is the traversal ParamCount and other
// whole-statement analyses build on.
func WalkExprs(s Stmt, f func(Expr)) {
	switch t := s.(type) {
	case *Select:
		for _, it := range t.Items {
			walkExpr(it.E, f)
		}
		for _, j := range t.Joins {
			walkExpr(j.On, f)
		}
		walkExpr(t.Where, f)
		for _, g := range t.GroupBy {
			walkExpr(g, f)
		}
		for _, o := range t.OrderBy {
			walkExpr(o.E, f)
		}
	case *Insert:
		for _, row := range t.Rows {
			for _, e := range row {
				walkExpr(e, f)
			}
		}
	case *Update:
		for _, col := range t.Cols {
			walkExpr(t.Set[col], f)
		}
		walkExpr(t.Where, f)
	case *Delete:
		walkExpr(t.Where, f)
	case *Predict:
		walkExpr(t.Where, f)
		walkExpr(t.With, f)
		for _, row := range t.Values {
			for _, e := range row {
				walkExpr(e, f)
			}
		}
	case *Explain:
		WalkExprs(t.Inner, f)
	}
}

// ParamCount returns the number of parameter slots the statement needs:
// one past the highest parameter ordinal referenced (0 when the statement
// has no placeholders).
func ParamCount(s Stmt) int {
	n := 0
	WalkExprs(s, func(e Expr) {
		if p, ok := e.(*Param); ok && p.Idx+1 > n {
			n = p.Idx + 1
		}
	})
	return n
}

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name    string
	Typ     rel.Type
	Unique  bool
	NotNull bool
}

// CreateTable is CREATE TABLE.
type CreateTable struct {
	Name string
	Cols []ColumnDef
}

func (*CreateTable) stmt() {}

// CreateIndex is CREATE INDEX name ON table (col) [USING HASH].
type CreateIndex struct {
	Name    string
	Table   string
	Col     string
	UseHash bool
}

func (*CreateIndex) stmt() {}

// DropTable is DROP TABLE [IF EXISTS] name.
type DropTable struct {
	Name     string
	IfExists bool
}

func (*DropTable) stmt() {}

// Insert is INSERT INTO t [(cols)] VALUES (...), (...).
type Insert struct {
	Table string
	Cols  []string // empty = positional
	Rows  [][]Expr
}

func (*Insert) stmt() {}

// SelectItem is one output column of a SELECT.
type SelectItem struct {
	E     Expr
	Alias string
	Star  bool
}

// TableRef is one relation in the FROM clause with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// RefName returns the name the query refers to this table by.
func (t TableRef) RefName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinClause is "JOIN t ON cond".
type JoinClause struct {
	Table TableRef
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	E    Expr
	Desc bool
}

// Select is a SELECT statement (SPJ + aggregation + order/limit).
type Select struct {
	Items   []SelectItem
	From    []TableRef // comma-list
	Joins   []JoinClause
	Where   Expr
	GroupBy []Expr
	OrderBy []OrderItem
	Limit   int64 // -1 = none
	// Text is the statement's source text, stamped by Parse/ParseScript.
	// The session layer keys the shared plan cache on it; empty (for ASTs
	// built programmatically) means "don't cache".
	Text string
}

func (*Select) stmt() {}

// Update is UPDATE t SET col = expr, ... [WHERE ...].
type Update struct {
	Table string
	Set   map[string]Expr
	Cols  []string // deterministic order of Set keys
	Where Expr
}

func (*Update) stmt() {}

// Delete is DELETE FROM t [WHERE ...].
type Delete struct {
	Table string
	Where Expr
}

func (*Delete) stmt() {}

// TxnStmt is BEGIN/COMMIT/ROLLBACK.
type TxnStmt struct {
	Kind string // "BEGIN", "COMMIT", "ROLLBACK"
}

func (*TxnStmt) stmt() {}

// Analyze is ANALYZE [table].
type Analyze struct {
	Table string // empty = all
}

func (*Analyze) stmt() {}

// Explain wraps a statement for plan display.
type Explain struct {
	Inner Stmt
}

func (*Explain) stmt() {}

// SetStmt is SET key = value (engine knobs, e.g. optimizer mode).
type SetStmt struct {
	Key   string
	Value string
}

func (*SetStmt) stmt() {}

// PredictKind distinguishes regression from classification.
//
//lint:closedenum
type PredictKind uint8

// Predict task kinds (paper §2.3).
const (
	PredictValue PredictKind = iota // PREDICT VALUE OF — regression
	PredictClass                    // PREDICT CLASS OF — classification
)

// String names the kind.
func (k PredictKind) String() string {
	if k == PredictClass {
		return "CLASS"
	}
	return "VALUE"
}

// Predict is the paper's AI-analytics statement:
//
//	PREDICT {VALUE|CLASS} OF target
//	FROM table
//	[WHERE pred]           -- rows whose target to predict
//	TRAIN ON cols | *      -- feature columns (asterisk skips unique cols)
//	[WITH pred]            -- training-data filter
//	[VALUES (...), (...)]  -- inline feature rows to predict
type Predict struct {
	Kind      PredictKind
	Target    string
	Table     string
	Where     Expr
	TrainAll  bool
	TrainCols []string
	With      Expr
	Values    [][]Expr
}

func (*Predict) stmt() {}

// keyword reports whether the token is the given keyword (case-insensitive).
func (t Token) keyword(kw string) bool {
	return t.Kind == TokIdent && strings.EqualFold(t.Text, kw)
}
