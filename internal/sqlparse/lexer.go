// Package sqlparse implements the SQL front-end: a lexer and
// recursive-descent parser for the engine's SQL dialect, including the
// paper's AI-analytics extension — PREDICT {VALUE|CLASS} OF ... TRAIN ON ...
// (Listings 1 and 2 in the paper).
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString
	TokPunct // operators and punctuation, e.g. ( ) , = <> <= >= + - * / %
	TokParam // query parameter placeholder: '?' (Text empty) or '$n' (Text = n)
)

// Token is a lexical token with position information for error messages.
type Token struct {
	Kind TokenKind
	Text string // identifiers are kept verbatim; keywords match case-insensitively
	Pos  int    // byte offset in the input
}

// Lexer splits SQL text into tokens.
type Lexer struct {
	src string
	pos int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(rune(c)):
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		return Token{Kind: TokIdent, Text: l.src[start:l.pos], Pos: start}, nil
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '.' && !seenDot {
				seenDot = true
				l.pos++
				continue
			}
			if ch == 'e' || ch == 'E' {
				// scientific notation
				if l.pos+1 < len(l.src) && (isDigit(l.src[l.pos+1]) || l.src[l.pos+1] == '-' || l.src[l.pos+1] == '+') {
					l.pos += 2
					for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
						l.pos++
					}
				}
				break
			}
			if !isDigit(ch) {
				break
			}
			l.pos++
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'') // escaped quote
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			sb.WriteByte(ch)
			l.pos++
		}
		return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
	case c == '?':
		l.pos++
		return Token{Kind: TokParam, Pos: start}, nil
	case c == '$':
		l.pos++
		digits := l.pos
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == digits {
			return Token{}, fmt.Errorf("sql: expected parameter number after '$' at offset %d", start)
		}
		return Token{Kind: TokParam, Text: l.src[digits:l.pos], Pos: start}, nil
	default:
		// multi-char operators first
		for _, op := range []string{"<>", "<=", ">=", "!=", "=="} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += len(op)
				return Token{Kind: TokPunct, Text: op, Pos: start}, nil
			}
		}
		if strings.ContainsRune("()[],;=<>+-*/%.", rune(c)) {
			l.pos++
			return Token{Kind: TokPunct, Text: string(c), Pos: start}, nil
		}
		return Token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, l.pos)
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if strings.HasPrefix(l.src[l.pos:], "--") {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if strings.HasPrefix(l.src[l.pos:], "/*") {
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
				return
			}
			l.pos += 2 + end + 2
			continue
		}
		return
	}
}

func isIdentStart(c rune) bool { return unicode.IsLetter(c) || c == '_' }
func isIdentPart(c rune) bool  { return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' }
func isDigit(c byte) bool      { return c >= '0' && c <= '9' }

// Tokenize lexes the full input (testing helper).
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
