//go:build invariants

package txn

import "testing"

// TestStripeNestingPanics proves the -tags=invariants runtime assertion
// fires on the exact violation neurdb-lint's stripelock analyzer flags
// statically: acquiring a second write stripe while one is held.
func TestStripeNestingPanics(t *testing.T) {
	stripeEnter()
	defer stripeExit()
	defer func() {
		if recover() == nil {
			t.Fatal("nested stripe acquire did not panic under -tags=invariants")
		}
	}()
	stripeEnter()
}

// TestStripeReleaseUnheldPanics covers the other direction: releasing a
// stripe this goroutine does not hold.
func TestStripeReleaseUnheldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unheld stripe release did not panic under -tags=invariants")
		}
	}()
	stripeExit()
}
