//go:build !invariants

package txn

// In normal builds the stripe-discipline hooks compile to nothing; the
// invariant is enforced statically by neurdb-lint (stripelock) and, under
// -tags=invariants, by the runtime assertions in invariants_on.go.

func stripeEnter() {}

func stripeExit() {}
