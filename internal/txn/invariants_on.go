//go:build invariants

package txn

import (
	"bytes"
	"runtime"
	"strconv"
	"sync"
)

// Built with -tags=invariants, the engine carries cheap runtime assertions
// for the invariants neurdb-lint enforces statically: here, the stripe
// discipline — a goroutine holds at most one write-claim stripe at a time.
// The static analyzer (internal/lint, stripelock) proves this for the code
// it can see; the runtime counter catches what escapes analysis (calls
// through interfaces, future code paths) the moment it happens, with a
// panic naming the invariant instead of a silent deadlock.

// stripeHeld maps goroutine id -> held-stripe count (0 entries are removed).
var stripeHeld sync.Map

// goid parses the current goroutine's id from the stack header
// ("goroutine 123 [running]:"). Slow, which is fine: this file only builds
// under the invariants tag.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	fields := bytes.Fields(buf[:n])
	if len(fields) < 2 {
		return 0
	}
	id, _ := strconv.ParseUint(string(fields[1]), 10, 64)
	return id
}

func stripeEnter() {
	id := goid()
	if held, ok := stripeHeld.Load(id); ok && held.(int) > 0 {
		panic("txn: invariant violated: goroutine acquired a second write stripe while holding one (stripe discipline: at most one stripe per txn at a time)")
	}
	stripeHeld.Store(id, 1)
}

func stripeExit() {
	id := goid()
	held, ok := stripeHeld.Load(id)
	if !ok || held.(int) <= 0 {
		panic("txn: invariant violated: write stripe released by a goroutine that holds none")
	}
	stripeHeld.Delete(id)
}
