// Package txn implements the SQL engine's transaction manager: MVCC
// snapshot isolation with first-updater-wins write conflicts, plus a
// serializable mode based on rw-antidependency tracking in the spirit of
// PostgreSQL's Serializable Snapshot Isolation (Ports & Grittner, VLDB'12).
// This is the engine the paper's "PostgreSQL" baseline maps onto; the
// high-throughput learned-CC testbed lives in internal/cc.
package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"neurdb/internal/rel"
	"neurdb/internal/storage"
	"neurdb/internal/wal"
)

// Status is the lifecycle state of a transaction.
type Status uint8

// Transaction states.
const (
	StatusActive Status = iota
	StatusCommitted
	StatusAborted
)

// ErrWriteConflict is returned when first-updater-wins detects a concurrent
// writer on the same row.
var ErrWriteConflict = errors.New("txn: write-write conflict")

// ErrSerializationFailure is returned when SSI detects a dangerous structure
// (the transaction is a pivot with both in- and out-rw-antidependencies).
var ErrSerializationFailure = errors.New("txn: serialization failure (SSI)")

// ErrTxnFinished is returned when operating on a committed/aborted txn.
var ErrTxnFinished = errors.New("txn: transaction already finished")

// ErrReadOnly is returned by writing commits after the write-ahead log has
// poisoned (a failed fsync whose dirty pages the kernel may have dropped).
// The engine fail-stops its write path: reads keep serving, every write is
// rejected with an error wrapping this sentinel, and a restart — which
// replays the durable log prefix — is the only way back to writability.
var ErrReadOnly = errors.New("txn: database is read-only (WAL poisoned; restart to recover)")

// IsolationLevel selects the concurrency-control behaviour.
type IsolationLevel uint8

// Supported isolation levels.
const (
	Snapshot     IsolationLevel = iota // SI: first-updater-wins only
	Serializable                       // SI + SSI rw-antidependency tracking
)

type rowKey struct {
	table int
	id    storage.RowID
}

type writeRec struct {
	heap    *storage.Heap
	id      storage.RowID
	created *storage.Version // new version we prepended (nil for delete)
	old     *storage.Version // previous head (nil for insert)
	kind    byte             // 'i', 'u', 'd'
}

// Txn is a transaction handle.
type Txn struct {
	ID       uint64
	StartTS  uint64
	Level    IsolationLevel
	ReadOnly bool

	mu       sync.Mutex
	status   Status
	commitTS uint64
	writes   []writeRec
	reads    []rowKey          // registered SIREAD entries (serializable only)
	inFrom   map[*Txn]struct{} // transactions with rw-antidependency into us
	outTo    map[*Txn]struct{} // transactions we have rw-antidependency out to
	outToOld bool              // out-conflict to an already-committed writer
}

// noteIn records an incoming rw-antidependency from r (r read, we wrote).
func (t *Txn) noteIn(r *Txn) {
	t.mu.Lock()
	if t.inFrom == nil {
		t.inFrom = make(map[*Txn]struct{})
	}
	t.inFrom[r] = struct{}{}
	t.mu.Unlock()
}

// noteOut records an outgoing rw-antidependency to w (we read, w wrote).
func (t *Txn) noteOut(w *Txn) {
	t.mu.Lock()
	if t.outTo == nil {
		t.outTo = make(map[*Txn]struct{})
	}
	t.outTo[w] = struct{}{}
	t.mu.Unlock()
}

// isPivot reports whether t currently has both a live incoming and a live
// outgoing rw-antidependency — the dangerous structure SSI aborts on.
// Edges to aborted transactions do not count.
func (t *Txn) isPivot() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	in := false
	for c := range t.inFrom {
		if c.Status() != StatusAborted {
			in = true
			break
		}
	}
	out := t.outToOld
	if !out {
		for c := range t.outTo {
			if c.Status() != StatusAborted {
				out = true
				break
			}
		}
	}
	return in && out
}

// Status returns the transaction status.
func (t *Txn) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// CommitTS returns the commit timestamp (0 if not committed).
func (t *Txn) CommitTS() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.commitTS
}

// WriteStripeCount is the number of independent claim locks the manager
// partitions writers over. Claims hash (table, page) onto a stripe, so
// writers touching disjoint page sets never contend; 64 matches the
// executor's join-build striping and keeps the padded lock array small.
const WriteStripeCount = 64

// writeStripe is one claim lock, padded to its own cache line so stripes
// hashed to adjacent slots don't false-share under heavy write traffic.
type writeStripe struct {
	mu sync.Mutex
	_  [56]byte
}

// Manager coordinates transactions over heaps.
type Manager struct {
	mu       sync.RWMutex
	nextID   uint64
	active   map[uint64]*Txn
	statusOf map[uint64]Status // finished txns (bounded via pruning)
	commitOf map[uint64]uint64

	// clock is the commit-timestamp clock: Begin snapshots it, Commit
	// advances it with one atomic add, so commit timestamps stay totally
	// ordered without any lock. The stamp-before-publish discipline in
	// Commit (version timestamps first, statusOf after) is what lets
	// readers interpret a missing stamp as "not committed".
	clock atomic.Uint64

	// stripes partitions write claims (and their abort undo) by the row's
	// (table, page): the per-row test-and-set of XMax and the head swap
	// must be atomic against other claimers of the same row, but claims on
	// different pages are independent. A claim takes exactly one stripe at
	// a time — batch claims lock per page run, never holding two stripes —
	// so no lock ordering is needed and deadlock is impossible. Commit
	// takes no stripes at all: it only stamps versions the transaction
	// already claimed, and concurrent claimers observe the claim via XMax.
	stripes [WriteStripeCount]writeStripe

	// stripeClaims/stripeWaits count stripe acquisitions and the subset
	// that had to block (TryLock failed) — the txn.stripe_wait monitor
	// series measures write-path contention from these.
	stripeClaims atomic.Uint64
	stripeWaits  atomic.Uint64

	readersMu sync.Mutex
	readers   map[rowKey]map[*Txn]struct{} // SIREAD registry

	// log, when set, receives every writing transaction's redo record at
	// commit (see Commit for the ordering protocol). Installed once at
	// boot, before any transaction runs.
	log CommitLog

	commits, aborts, ssiAborts, wwAborts uint64
}

// CommitLog is the durability hook the WAL implements. The manager drives
// it with a strict ordering protocol: GateRLock is held from the commit-
// timestamp draw through in-memory publication (so a checkpoint cut under
// the exclusive gate never observes a half-published commit), AppendCommit
// happens before any stamp becomes visible (so a transaction can never be
// observed — and built upon — before its redo record is in the log), and
// Sync blocks the acknowledgment until the record is durable under the
// configured policy.
type CommitLog interface {
	GateRLock()
	GateRUnlock()
	AppendCommit(cts uint64, ops []wal.Op) (lsn uint64, err error)
	Sync(lsn uint64) error
	// Err reports the log's sticky poison state (nil while healthy). The
	// manager checks it before every logged commit as a fail-stop: once an
	// fsync has failed, no further commit may become visible in memory,
	// because its durability could never be guaranteed.
	Err() error
}

// SetCommitLog installs the durability hook. Must be called before any
// transaction begins (boot-time only): the field is read without
// synchronization on the commit path.
func (m *Manager) SetCommitLog(l CommitLog) { m.log = l }

// ClockNow returns the current commit clock (the checkpoint cut reads it
// under the exclusive commit gate).
func (m *Manager) ClockNow() uint64 { return m.clock.Load() }

// RestoreClock fast-forwards the commit clock after WAL replay so new
// commits stamp timestamps beyond every recovered version. Boot-time only.
func (m *Manager) RestoreClock(ts uint64) { m.clock.Store(ts) }

// NewManager creates a transaction manager.
func NewManager() *Manager {
	return &Manager{
		nextID:   0,
		active:   make(map[uint64]*Txn),
		statusOf: make(map[uint64]Status),
		commitOf: make(map[uint64]uint64),
		readers:  make(map[rowKey]map[*Txn]struct{}),
	}
}

// stripeIndex hashes a (table, page) pair onto a claim stripe.
func stripeIndex(table int, page uint32) uint32 {
	h := uint32(table)*0x9e3779b1 ^ page*0x85ebca6b
	return (h ^ h>>16) % WriteStripeCount
}

// lockStripe acquires one claim stripe, counting contention for the
// txn.stripe_wait series.
func (m *Manager) lockStripe(i uint32) {
	stripeEnter()
	m.stripeClaims.Add(1)
	if m.stripes[i].mu.TryLock() {
		return
	}
	m.stripeWaits.Add(1)
	m.stripes[i].mu.Lock()
}

// unlockStripe releases one claim stripe.
func (m *Manager) unlockStripe(i uint32) {
	stripeExit()
	m.stripes[i].mu.Unlock()
}

// StripeStats reports cumulative claim-stripe acquisitions and how many of
// them had to wait for a concurrent writer on the same stripe.
func (m *Manager) StripeStats() (claims, waits uint64) {
	return m.stripeClaims.Load(), m.stripeWaits.Load()
}

// Begin starts a transaction at the given isolation level.
func (m *Manager) Begin(level IsolationLevel, readOnly bool) *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	t := &Txn{
		ID:       m.nextID,
		StartTS:  m.clock.Load(),
		Level:    level,
		ReadOnly: readOnly,
		status:   StatusActive,
	}
	m.active[t.ID] = t
	return t
}

// Stats reports cumulative commit/abort counters; ssi and ww break down the
// abort causes attributable to serialization failures and write conflicts.
func (m *Manager) Stats() (commits, aborts, ssiAborts, wwAborts uint64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.commits, m.aborts, m.ssiAborts, m.wwAborts
}

// OldestActiveTS returns the snapshot horizon for vacuum: the minimum
// StartTS among active transactions, or the current clock if none.
func (m *Manager) OldestActiveTS() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	horizon := m.clock.Load()
	for _, t := range m.active {
		if t.StartTS < horizon {
			horizon = t.StartTS
		}
	}
	return horizon
}

// committedAt reports whether xid committed, and its commit timestamp.
func (m *Manager) committedAt(xid uint64) (uint64, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if s, ok := m.statusOf[xid]; ok && s == StatusCommitted {
		return m.commitOf[xid], true
	}
	return 0, false
}

// visibleVersion walks the chain from head and returns the first version
// visible to t under its snapshot, along with whether a newer committed
// version was skipped (used for SSI out-conflict detection).
func (m *Manager) visibleVersion(head *storage.Version, t *Txn) (*storage.Version, *storage.Version) {
	var skippedNewer *storage.Version
	for v := head; v != nil; v = v.Next() {
		if m.versionVisible(v, t) {
			return v, skippedNewer
		}
		// Track a committed newer version that our snapshot skips.
		if bts := v.BeginTS(); bts != 0 && bts > t.StartTS {
			skippedNewer = v
		}
	}
	return nil, skippedNewer
}

func (m *Manager) versionVisible(v *storage.Version, t *Txn) bool {
	// Created by self: visible unless also deleted by self.
	if v.XMin == t.ID {
		return v.XMax() != t.ID
	}
	begin := v.BeginTS()
	if begin == 0 {
		// Creator not stamped: check status (it may have committed between
		// our chain read and now; the stamp is applied before the status is
		// published, so a missing stamp means not committed).
		ts, ok := m.committedAt(v.XMin)
		if !ok {
			return false
		}
		begin = ts
	}
	if begin > t.StartTS {
		return false
	}
	// Deleted?
	xmax := v.XMax()
	if xmax == 0 {
		return true
	}
	if xmax == t.ID {
		return false // we deleted it ourselves
	}
	end := v.EndTS()
	if end == storage.InfinityTS {
		ts, ok := m.committedAt(xmax)
		if !ok {
			return true // deleter still active/aborted: still visible to us
		}
		end = ts
	}
	return end > t.StartTS
}

// Read returns the row visible to t at id, or ok=false.
func (m *Manager) Read(h *storage.Heap, id storage.RowID, t *Txn) (rel.Row, bool) {
	head := h.Head(id)
	if head == nil {
		return nil, false
	}
	v, skipped := m.visibleVersion(head, t)
	if t.Level == Serializable && !t.ReadOnly {
		m.registerRead(h.TableID, id, t)
		if skipped != nil {
			// We read under a snapshot that excludes a committed newer
			// version: rw-antidependency t -> writer(skipped).
			m.flagConflict(t, skipped.XMin)
		}
		// Also if the visible version carries an uncommitted deleter, the
		// write already claimed it; reading still creates t -> deleter.
		if v != nil {
			if xmax := v.XMax(); xmax != 0 && xmax != t.ID {
				m.flagConflict(t, xmax)
			}
		}
	}
	if v == nil {
		return nil, false
	}
	return v.Data, true
}

// registerRead adds an SIREAD entry for the row.
func (m *Manager) registerRead(table int, id storage.RowID, t *Txn) {
	rk := rowKey{table, id}
	m.readersMu.Lock()
	set, ok := m.readers[rk]
	if !ok {
		set = make(map[*Txn]struct{})
		m.readers[rk] = set
	}
	if _, dup := set[t]; !dup {
		set[t] = struct{}{}
		t.mu.Lock()
		t.reads = append(t.reads, rk)
		t.mu.Unlock()
	}
	m.readersMu.Unlock()
}

// flagConflict records a rw-antidependency from reader to the writer xid.
func (m *Manager) flagConflict(reader *Txn, writerID uint64) {
	m.mu.RLock()
	w := m.active[writerID]
	m.mu.RUnlock()
	if w != nil {
		reader.noteOut(w)
		w.noteIn(reader)
		return
	}
	// Writer already finished; if it committed, the out-edge is permanent.
	if _, committed := m.committedAt(writerID); committed {
		reader.mu.Lock()
		reader.outToOld = true
		reader.mu.Unlock()
	}
}

// Insert adds a row as part of t.
func (m *Manager) Insert(h *storage.Heap, row rel.Row, t *Txn) (storage.RowID, error) {
	if t.Status() != StatusActive {
		return storage.RowID{}, ErrTxnFinished
	}
	id := h.Insert(row, t.ID)
	created := h.Head(id)
	t.mu.Lock()
	t.writes = append(t.writes, writeRec{heap: h, id: id, created: created, kind: 'i'})
	t.mu.Unlock()
	return id, nil
}

// InsertBatch adds rows as part of t with one heap lock acquisition and one
// write-set append for the whole batch — the insert-side counterpart of
// UpdateBatch/DeleteBatch for multi-VALUES INSERT and prepared-statement
// bulk loads. It returns the assigned RowIDs in row order.
func (m *Manager) InsertBatch(h *storage.Heap, rows []rel.Row, t *Txn) ([]storage.RowID, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	if t.Status() != StatusActive {
		return nil, ErrTxnFinished
	}
	ids, heads := h.InsertBatch(rows, t.ID,
		make([]storage.RowID, 0, len(rows)), make([]*storage.Version, 0, len(rows)))
	recs := make([]writeRec, len(ids))
	for i, id := range ids {
		recs[i] = writeRec{heap: h, id: id, created: heads[i], kind: 'i'}
	}
	t.mu.Lock()
	t.writes = append(t.writes, recs...)
	t.mu.Unlock()
	return ids, nil
}

// Update replaces the visible version of a row with newRow.
func (m *Manager) Update(h *storage.Heap, id storage.RowID, newRow rel.Row, t *Txn) error {
	return m.modify(h, id, newRow, t, 'u')
}

// Delete removes the visible version of a row.
func (m *Manager) Delete(h *storage.Heap, id storage.RowID, t *Txn) error {
	return m.modify(h, id, nil, t, 'd')
}

func (m *Manager) modify(h *storage.Heap, id storage.RowID, newRow rel.Row, t *Txn, kind byte) error {
	if t.Status() != StatusActive {
		return ErrTxnFinished
	}
	si := stripeIndex(h.TableID, id.Page)
	m.lockStripe(si)
	rec, err := m.claimLocked(h, id, h.Head(id), newRow, t, kind)
	m.unlockStripe(si)
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.writes = append(t.writes, rec)
	t.mu.Unlock()
	return nil
}

// claimLocked validates and claims the version of head visible to t,
// installing the replacement head for updates. The caller holds the claim
// stripe covering the row's (table, page).
func (m *Manager) claimLocked(h *storage.Heap, id storage.RowID, head *storage.Version, newRow rel.Row, t *Txn, kind byte) (writeRec, error) {
	if head == nil {
		return writeRec{}, fmt.Errorf("txn: modify missing row %v", id)
	}
	vis, _ := m.visibleVersion(head, t)
	if vis == nil {
		return writeRec{}, ErrWriteConflict // row gone or not yet visible
	}
	// First-updater-wins: if someone else already claimed this version.
	if xmax := vis.XMax(); xmax != 0 && xmax != t.ID {
		if _, committed := m.committedAt(xmax); committed {
			return writeRec{}, ErrWriteConflict // deleter committed after our snapshot
		}
		return writeRec{}, ErrWriteConflict // concurrent active writer
	}
	// If the head is newer than our visible version, a concurrent writer
	// already installed a successor: snapshot write conflict.
	if vis != head && head.XMin != t.ID {
		return writeRec{}, ErrWriteConflict
	}
	// SSI: readers of this row have rw-antidependency into us.
	if t.Level == Serializable {
		m.flagReaders(h.TableID, id, t)
	}
	// Claim.
	vis.SetXMax(t.ID)
	var created *storage.Version
	if kind == 'u' {
		created = storage.NewVersion(newRow, t.ID, head)
		h.SetHead(id, created)
	}
	return writeRec{heap: h, id: id, created: created, old: vis, kind: kind}, nil
}

// UpdateBatch replaces the visible versions of ids with newRows (aligned
// slices). It is the write-side counterpart of ReadPage: one claim-stripe
// acquisition and one batched head lookup cover each page run of the batch,
// so page-clustered DML pays per-page instead of per-row locking — and
// because the stripes partition by page, concurrent batch writers on
// disjoint pages proceed in parallel. On the first conflicting row the
// error is returned immediately; rows already claimed stay recorded in the
// transaction's write set, and the caller is expected to abort (undoing
// them) as with any mid-statement write conflict.
func (m *Manager) UpdateBatch(h *storage.Heap, ids []storage.RowID, newRows []rel.Row, t *Txn) error {
	return m.modifyBatch(h, ids, newRows, t, 'u')
}

// DeleteBatch deletes the visible versions of ids. Semantics match
// UpdateBatch with no replacement rows.
func (m *Manager) DeleteBatch(h *storage.Heap, ids []storage.RowID, t *Txn) error {
	return m.modifyBatch(h, ids, nil, t, 'd')
}

func (m *Manager) modifyBatch(h *storage.Heap, ids []storage.RowID, newRows []rel.Row, t *Txn, kind byte) error {
	if len(ids) == 0 {
		return nil
	}
	if t.Status() != StatusActive {
		return ErrTxnFinished
	}
	heads := make([]*storage.Version, 0, storage.RowsPerPage)
	recs := make([]writeRec, 0, len(ids))
	var firstErr error
	// Claim page run by page run: each run of ids on the same page takes
	// its stripe once, resolves heads under it (so a concurrent writer's
	// head swap cannot slip between lookup and claim), and claims every
	// row of the run. Only one stripe is ever held at a time, so
	// concurrent batches need no lock ordering.
	for start := 0; start < len(ids) && firstErr == nil; {
		end := start + 1
		for end < len(ids) && ids[end].Page == ids[start].Page {
			end++
		}
		si := stripeIndex(h.TableID, ids[start].Page)
		m.lockStripe(si)
		heads = h.Heads(ids[start:end], heads[:0])
		for i := start; i < end; i++ {
			var newRow rel.Row
			if kind == 'u' {
				newRow = newRows[i]
			}
			rec, err := m.claimLocked(h, ids[i], heads[i-start], newRow, t, kind)
			if err != nil {
				firstErr = err
				break
			}
			recs = append(recs, rec)
		}
		m.unlockStripe(si)
		start = end
	}
	if len(recs) > 0 {
		t.mu.Lock()
		t.writes = append(t.writes, recs...)
		t.mu.Unlock()
	}
	return firstErr
}

// flagReaders marks rw-antidependencies reader -> t for all registered
// readers of the row.
func (m *Manager) flagReaders(table int, id storage.RowID, t *Txn) {
	rk := rowKey{table, id}
	m.readersMu.Lock()
	set := m.readers[rk]
	var rs []*Txn
	for r := range set {
		if r != t {
			rs = append(rs, r)
		}
	}
	m.readersMu.Unlock()
	for _, r := range rs {
		r.noteOut(t)
		t.noteIn(r)
	}
}

// Commit finalizes t. Under Serializable it aborts pivots (both in- and
// out-conflicts), returning ErrSerializationFailure.
//
// With a CommitLog installed, writing transactions follow the WAL protocol:
// the redo record is appended *before* the stamps are published (if T2 ever
// reads T1's writes, T1's record precedes T2's in the log, so a log prefix
// is always causally closed), the whole draw-append-stamp-publish window
// runs under the gate's read lock (so the checkpointer's exclusive cut sees
// only fully published commits), and the call returns — acknowledging the
// commit — only after Sync reports the record durable under the configured
// policy. Read-only transactions skip all of it.
func (m *Manager) Commit(t *Txn) error {
	t.mu.Lock()
	if t.status != StatusActive {
		t.mu.Unlock()
		return ErrTxnFinished
	}
	nwrites := len(t.writes)
	t.mu.Unlock()
	if t.Level == Serializable && t.isPivot() {
		m.abortInternal(t, true)
		return ErrSerializationFailure
	}

	log := m.log
	logged := log != nil && nwrites > 0
	if logged {
		// Fail-stop: a poisoned log means the last fsync's pages may already
		// be gone from the kernel, so no new commit can ever be made durable.
		// Reject before any in-memory state changes; the first commit that
		// *caused* the poison got the raw fsync error from Sync below, and
		// every commit after it degrades to read-only here.
		if perr := log.Err(); perr != nil {
			m.abortInternal(t, false)
			return fmt.Errorf("%w (cause: %v)", ErrReadOnly, perr)
		}
		log.GateRLock()
	}

	// Draw the commit timestamp from the atomic clock: total commit order
	// without any global write lock. Stamping happens *before* the status
	// is published below — a reader that sees StatusCommitted also sees the
	// stamps (the m.mu release/acquire pair orders them), while a reader
	// racing ahead of publication resolves the writer as in-progress via
	// statusOf and ignores the version. No claim stripes are taken here:
	// every version being stamped was claimed earlier (XMax set, head
	// swapped), so concurrent claimers already observe the conflict through
	// XMax regardless of commit timing.
	cts := m.clock.Add(1)

	var lsn uint64
	if logged {
		var err error
		lsn, err = log.AppendCommit(cts, t.redoOps())
		if err != nil {
			// Nothing reached the log (a failed buffered write leaves the
			// on-disk prefix consistent), so rolling the in-memory claims
			// back keeps both sides agreeing the transaction never happened.
			log.GateRUnlock()
			m.abortInternal(t, false)
			return fmt.Errorf("txn: wal append: %w", err)
		}
	}

	t.mu.Lock()
	var delHeap *storage.Heap
	delN := 0
	for _, w := range t.writes {
		switch w.kind {
		case 'i':
			w.created.SetBeginTS(cts)
		case 'u':
			w.created.SetBeginTS(cts)
			w.old.SetEndTS(cts)
		case 'd':
			w.old.SetEndTS(cts)
			// Batch the dead-row accounting: one heap-counter bump per run
			// of deletes on the same heap instead of one per row.
			if w.heap != delHeap {
				if delN > 0 {
					delHeap.NoteDeleteN(delN)
				}
				delHeap, delN = w.heap, 0
			}
			delN++
		}
	}
	if delN > 0 {
		delHeap.NoteDeleteN(delN)
	}
	t.status = StatusCommitted
	t.commitTS = cts
	t.mu.Unlock()

	m.mu.Lock()
	m.statusOf[t.ID] = StatusCommitted
	m.commitOf[t.ID] = cts
	delete(m.active, t.ID)
	m.commits++
	m.mu.Unlock()

	if logged {
		log.GateRUnlock()
	}
	m.unregisterReads(t)
	if logged {
		// Acknowledge only once the record is durable. The commit is
		// already visible to other transactions — that is safe, because any
		// dependent commit's record lands later in the same sequential log:
		// an fsync covering it covers ours too.
		return log.Sync(lsn)
	}
	return nil
}

// redoOps converts the write set into WAL redo operations: the full new row
// image pinned to its physical slot, making replay an idempotent
// install/clear.
func (t *Txn) redoOps() []wal.Op {
	t.mu.Lock()
	defer t.mu.Unlock()
	ops := make([]wal.Op, len(t.writes))
	for i, w := range t.writes {
		op := wal.Op{Table: w.heap.TableID, ID: w.id}
		switch w.kind {
		case 'i':
			op.Kind = wal.OpInsert
			op.Row = w.created.Data
		case 'u':
			op.Kind = wal.OpUpdate
			op.Row = w.created.Data
		case 'd':
			op.Kind = wal.OpDelete
		}
		ops[i] = op
	}
	return ops
}

// Abort rolls back t.
func (m *Manager) Abort(t *Txn) {
	m.abortInternal(t, false)
}

func (m *Manager) abortInternal(t *Txn, ssi bool) {
	t.mu.Lock()
	if t.status != StatusActive {
		t.mu.Unlock()
		return
	}
	t.status = StatusAborted
	writes := t.writes
	t.writes = nil
	t.mu.Unlock()

	// Undo in reverse order, re-taking the claim stripe covering each
	// record so the undo (head swap + XMax clear) cannot interleave with a
	// concurrent claimer inspecting the same row. Consecutive records on
	// the same stripe are undone under a single acquisition; as with
	// claims, only one stripe is held at a time.
	var delHeap *storage.Heap
	delN := 0
	for i := len(writes) - 1; i >= 0; {
		si := stripeIndex(writes[i].heap.TableID, writes[i].id.Page)
		m.lockStripe(si)
		for i >= 0 && stripeIndex(writes[i].heap.TableID, writes[i].id.Page) == si {
			w := writes[i]
			switch w.kind {
			case 'i':
				// Mark the inserted version dead-before-birth so no snapshot
				// sees it and vacuum can reclaim the slot.
				w.created.SetXMax(t.ID)
				w.created.SetBeginTS(1)
				w.created.SetEndTS(0)
				if w.heap != delHeap {
					if delN > 0 {
						delHeap.NoteDeleteN(delN)
					}
					delHeap, delN = w.heap, 0
				}
				delN++
			case 'u':
				// Restore old head, clear claim.
				w.heap.SetHead(w.id, w.old)
				w.old.SetXMax(0)
			case 'd':
				w.old.SetXMax(0)
			}
			i--
		}
		m.unlockStripe(si)
	}
	if delN > 0 {
		delHeap.NoteDeleteN(delN)
	}

	m.mu.Lock()
	m.statusOf[t.ID] = StatusAborted
	delete(m.active, t.ID)
	m.aborts++
	if ssi {
		m.ssiAborts++
	} else {
		m.wwAborts++
	}
	m.mu.Unlock()

	m.unregisterReads(t)
}

// unregisterReads drops the txn's SIREAD entries.
//
// This is a deliberate simplification of PostgreSQL SSI, which retains
// SIREAD locks of committed transactions until all overlapping transactions
// finish; dropping them at finish trades some anomaly coverage for
// simplicity. Classic two-transaction write skew is still detected (both
// participants are active when the conflicting writes happen).
func (m *Manager) unregisterReads(t *Txn) {
	t.mu.Lock()
	reads := t.reads
	t.reads = nil
	t.mu.Unlock()
	if len(reads) == 0 {
		return
	}
	m.readersMu.Lock()
	for _, rk := range reads {
		if set, ok := m.readers[rk]; ok {
			delete(set, t)
			if len(set) == 0 {
				delete(m.readers, rk)
			}
		}
	}
	m.readersMu.Unlock()
}

// ReadPage applies snapshot visibility to one heap page's chain heads,
// appending each visible row to dst and returning it. heads[slot] must be
// the chain head at (pageID, slot) — the slice a storage.BatchCursor yields —
// and nil entries (vacuumed chains) are skipped. Per-row semantics match
// ReadHead; the batch form exists so sequential scans pay one manager call
// per page instead of one per row, with an inlined fast path for the common
// single-version committed-and-live case.
func (m *Manager) ReadPage(table int, pageID uint32, heads []*storage.Version, t *Txn, dst []rel.Row) []rel.Row {
	if t.Level == Serializable && !t.ReadOnly {
		// Serializable scans need per-row SIREAD registration and conflict
		// flagging; take the full path.
		for slot, head := range heads {
			if head == nil {
				continue
			}
			id := storage.RowID{Page: pageID, Slot: uint32(slot)}
			if row, ok := m.ReadHead(table, id, head, t); ok {
				dst = append(dst, row)
			}
		}
		return dst
	}
	start := t.StartTS
	for _, head := range heads {
		if head == nil {
			continue
		}
		if head.XMin != t.ID {
			// Fast path: creator committed within our snapshot, no deleter.
			if bts := head.BeginTS(); bts != 0 && bts <= start && head.XMax() == 0 {
				dst = append(dst, head.Data)
				continue
			}
		}
		if v, _ := m.visibleVersion(head, t); v != nil {
			dst = append(dst, v.Data)
		}
	}
	return dst
}

// ReadPageVisible is ReadPage for callers that also need row identity: it
// appends each visible row to rows and its RowID to ids (aligned), so batch
// DML can locate the versions it must claim without a second heap pass.
// Visibility semantics, the serializable slow path, and the committed-live
// fast path match ReadPage exactly.
func (m *Manager) ReadPageVisible(table int, pageID uint32, heads []*storage.Version, t *Txn, ids []storage.RowID, rows []rel.Row) ([]storage.RowID, []rel.Row) {
	if t.Level == Serializable && !t.ReadOnly {
		for slot, head := range heads {
			if head == nil {
				continue
			}
			id := storage.RowID{Page: pageID, Slot: uint32(slot)}
			if row, ok := m.ReadHead(table, id, head, t); ok {
				ids = append(ids, id)
				rows = append(rows, row)
			}
		}
		return ids, rows
	}
	start := t.StartTS
	for slot, head := range heads {
		if head == nil {
			continue
		}
		if head.XMin != t.ID {
			// Fast path: creator committed within our snapshot, no deleter.
			if bts := head.BeginTS(); bts != 0 && bts <= start && head.XMax() == 0 {
				ids = append(ids, storage.RowID{Page: pageID, Slot: uint32(slot)})
				rows = append(rows, head.Data)
				continue
			}
		}
		if v, _ := m.visibleVersion(head, t); v != nil {
			ids = append(ids, storage.RowID{Page: pageID, Slot: uint32(slot)})
			rows = append(rows, v.Data)
		}
	}
	return ids, rows
}

// ReadHead is Read for callers that already hold the chain head (scans),
// avoiding a second heap lookup. Semantics match Read.
func (m *Manager) ReadHead(table int, id storage.RowID, head *storage.Version, t *Txn) (rel.Row, bool) {
	if head == nil {
		return nil, false
	}
	v, skipped := m.visibleVersion(head, t)
	if t.Level == Serializable && !t.ReadOnly {
		m.registerRead(table, id, t)
		if skipped != nil {
			m.flagConflict(t, skipped.XMin)
		}
		if v != nil {
			if xmax := v.XMax(); xmax != 0 && xmax != t.ID {
				m.flagConflict(t, xmax)
			}
		}
	}
	if v == nil {
		return nil, false
	}
	return v.Data, true
}
