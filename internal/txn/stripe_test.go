package txn

import (
	"errors"
	"sync"
	"testing"

	"neurdb/internal/rel"
	"neurdb/internal/storage"
)

// seedPages inserts pages*RowsPerPage committed rows so ids span that many
// heap pages (and therefore multiple claim stripes).
func seedPages(t *testing.T, m *Manager, h *storage.Heap, pages int) []storage.RowID {
	t.Helper()
	return seedBatchHeap(t, m, h, pages*storage.RowsPerPage)
}

// TestSSIWriteSkewAcrossStripes is the striping regression demanded by the
// writeMu removal: the classic write-skew pair, but with the two rows on
// different heap pages so their claims go through different lock stripes.
// SSI must still abort one side — the rw-antidependency bookkeeping lives
// above the stripes.
func TestSSIWriteSkewAcrossStripes(t *testing.T) {
	m := NewManager()
	h := newHeap()
	ids := seedPages(t, m, h, 2)
	idA, idB := ids[0], ids[storage.RowsPerPage] // page 0 and page 1
	if idA.Page == idB.Page {
		t.Fatal("test rows landed on the same page")
	}
	if stripeIndex(h.TableID, idA.Page) == stripeIndex(h.TableID, idB.Page) {
		t.Skip("pages hash to the same stripe; pick different pages")
	}

	t1 := m.Begin(Serializable, false)
	t2 := m.Begin(Serializable, false)
	m.Read(h, idA, t1)
	m.Read(h, idB, t1)
	m.Read(h, idA, t2)
	m.Read(h, idB, t2)
	if err := m.Update(h, idA, rel.Row{rel.Int(-10)}, t1); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(h, idB, rel.Row{rel.Int(-10)}, t2); err != nil {
		t.Fatal(err)
	}
	err1 := m.Commit(t1)
	err2 := m.Commit(t2)
	if err1 == nil && err2 == nil {
		t.Fatal("write skew committed on both sides across stripes")
	}
	if err1 != nil && err2 != nil {
		t.Fatal("SSI aborted both sides; expected one survivor")
	}
	if err1 != nil && !errors.Is(err1, ErrSerializationFailure) {
		t.Fatalf("unexpected error: %v", err1)
	}
	if err2 != nil && !errors.Is(err2, ErrSerializationFailure) {
		t.Fatalf("unexpected error: %v", err2)
	}
}

// TestConcurrentBatchWritersDisjointPages: writers batch-updating disjoint
// page ranges must all succeed (no false conflicts across stripes), their
// commit timestamps must be unique (the atomic clock totally orders
// commits), and every write must be durable — no lost updates.
func TestConcurrentBatchWritersDisjointPages(t *testing.T) {
	m := NewManager()
	h := newHeap()
	const pages = 8
	ids := seedPages(t, m, h, pages)

	var wg sync.WaitGroup
	ctss := make([]uint64, pages)
	errs := make([]error, pages)
	for p := 0; p < pages; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			lo := p * storage.RowsPerPage
			hi := lo + storage.RowsPerPage
			news := make([]rel.Row, 0, storage.RowsPerPage)
			for i := lo; i < hi; i++ {
				news = append(news, rel.Row{rel.Int(int64(1000 + i))})
			}
			tx := m.Begin(Snapshot, false)
			if err := m.UpdateBatch(h, ids[lo:hi], news, tx); err != nil {
				errs[p] = err
				m.Abort(tx)
				return
			}
			if err := m.Commit(tx); err != nil {
				errs[p] = err
				return
			}
			ctss[p] = tx.CommitTS()
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", p, err)
		}
	}
	seen := make(map[uint64]bool)
	for p, cts := range ctss {
		if cts == 0 || seen[cts] {
			t.Fatalf("writer %d commit ts %d not unique and nonzero", p, cts)
		}
		seen[cts] = true
	}
	check := m.Begin(Snapshot, true)
	for i, id := range ids {
		row, ok := m.Read(h, id, check)
		if !ok || row[0].I != int64(1000+i) {
			t.Fatalf("row %d lost or wrong after concurrent batch commit: %v", i, row)
		}
	}
	claims, _ := m.StripeStats()
	if claims == 0 {
		t.Fatal("stripe claim counter not incremented")
	}
}

// TestConcurrentWritersSamePageConflict: overlapping writers on one page
// must still resolve first-updater-wins through the shared stripe, and the
// loser's abort must leave the winner's value intact.
func TestConcurrentWritersSamePageConflict(t *testing.T) {
	m := NewManager()
	h := newHeap()
	ids := seedBatchHeap(t, m, h, storage.RowsPerPage)

	const writers = 8
	var wg sync.WaitGroup
	var committed int64
	var mu sync.Mutex
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			news := make([]rel.Row, len(ids))
			for i := range news {
				news[i] = rel.Row{rel.Int(int64(w))}
			}
			tx := m.Begin(Snapshot, false)
			if err := m.UpdateBatch(h, ids, news, tx); err != nil {
				m.Abort(tx)
				return
			}
			if err := m.Commit(tx); err != nil {
				return
			}
			mu.Lock()
			committed++
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if committed == 0 {
		t.Fatal("no writer won the page")
	}
	// All surviving rows carry one winner's value per committed batch —
	// each full-page batch is atomic, so every row matches some winner.
	check := m.Begin(Snapshot, true)
	first, ok := m.Read(h, ids[0], check)
	if !ok {
		t.Fatal("row lost")
	}
	for _, id := range ids[1:] {
		row, ok := m.Read(h, id, check)
		if !ok || row[0].I != first[0].I {
			t.Fatalf("torn batch: row %v = %v, first = %v", id, row, first)
		}
	}
}

// TestCommitClockMonotonic: serial commits observe strictly increasing
// commit timestamps, and Begin snapshots never run ahead of the clock.
func TestCommitClockMonotonic(t *testing.T) {
	m := NewManager()
	h := newHeap()
	var last uint64
	for i := 0; i < 50; i++ {
		tx := m.Begin(Snapshot, false)
		if tx.StartTS > last {
			t.Fatalf("begin ts %d ran ahead of last commit ts %d", tx.StartTS, last)
		}
		if _, err := m.Insert(h, rel.Row{rel.Int(int64(i))}, tx); err != nil {
			t.Fatal(err)
		}
		if err := m.Commit(tx); err != nil {
			t.Fatal(err)
		}
		if tx.CommitTS() <= last {
			t.Fatalf("commit ts %d not increasing past %d", tx.CommitTS(), last)
		}
		last = tx.CommitTS()
	}
}

// TestStripeWaitCounter: forcing two goroutines through the same stripe
// long enough must eventually record contention in the waits counter. The
// claims counter is exact; waits is best-effort (TryLock race), so the test
// only asserts claims and checks waits stays <= claims.
func TestStripeCounters(t *testing.T) {
	m := NewManager()
	h := newHeap()
	ids := seedBatchHeap(t, m, h, 4)

	c0, w0 := m.StripeStats()
	tx := m.Begin(Snapshot, false)
	news := make([]rel.Row, len(ids))
	for i := range news {
		news[i] = rel.Row{rel.Int(9)}
	}
	if err := m.UpdateBatch(h, ids, news, tx); err != nil {
		t.Fatal(err)
	}
	m.Abort(tx)
	c1, w1 := m.StripeStats()
	if c1 <= c0 {
		t.Fatalf("claims did not advance: %d -> %d", c0, c1)
	}
	if w1 < w0 || w1 > c1 {
		t.Fatalf("waits %d out of range (claims %d)", w1, c1)
	}
}
