package txn

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"neurdb/internal/rel"
	"neurdb/internal/storage"
)

func newHeap() *storage.Heap { return storage.NewHeap(1, nil) }

func TestInsertVisibleAfterCommit(t *testing.T) {
	m := NewManager()
	h := newHeap()

	t1 := m.Begin(Snapshot, false)
	id, err := m.Insert(h, rel.Row{rel.Int(1)}, t1)
	if err != nil {
		t.Fatal(err)
	}
	// Own insert visible to self.
	if _, ok := m.Read(h, id, t1); !ok {
		t.Fatal("own insert invisible")
	}
	// Invisible to a concurrent snapshot.
	t2 := m.Begin(Snapshot, true)
	if _, ok := m.Read(h, id, t2); ok {
		t.Fatal("uncommitted insert visible to other txn")
	}
	if err := m.Commit(t1); err != nil {
		t.Fatal(err)
	}
	// Still invisible to t2 (snapshot taken before commit).
	if _, ok := m.Read(h, id, t2); ok {
		t.Fatal("insert visible to pre-commit snapshot")
	}
	// Visible to a new txn.
	t3 := m.Begin(Snapshot, true)
	row, ok := m.Read(h, id, t3)
	if !ok || row[0].I != 1 {
		t.Fatal("committed insert invisible to new txn")
	}
}

func TestUpdatePreservesOldSnapshot(t *testing.T) {
	m := NewManager()
	h := newHeap()

	setup := m.Begin(Snapshot, false)
	id, _ := m.Insert(h, rel.Row{rel.Int(10)}, setup)
	if err := m.Commit(setup); err != nil {
		t.Fatal(err)
	}

	reader := m.Begin(Snapshot, true) // snapshot before update
	writer := m.Begin(Snapshot, false)
	if err := m.Update(h, id, rel.Row{rel.Int(20)}, writer); err != nil {
		t.Fatal(err)
	}
	// Writer sees own new value.
	if row, ok := m.Read(h, id, writer); !ok || row[0].I != 20 {
		t.Fatal("writer does not see own update")
	}
	// Reader still sees the old value, before and after the commit.
	if row, ok := m.Read(h, id, reader); !ok || row[0].I != 10 {
		t.Fatal("reader snapshot broken before commit")
	}
	if err := m.Commit(writer); err != nil {
		t.Fatal(err)
	}
	if row, ok := m.Read(h, id, reader); !ok || row[0].I != 10 {
		t.Fatal("reader snapshot broken after commit")
	}
	after := m.Begin(Snapshot, true)
	if row, ok := m.Read(h, id, after); !ok || row[0].I != 20 {
		t.Fatal("new txn does not see update")
	}
}

func TestDeleteVisibility(t *testing.T) {
	m := NewManager()
	h := newHeap()
	setup := m.Begin(Snapshot, false)
	id, _ := m.Insert(h, rel.Row{rel.Int(1)}, setup)
	m.Commit(setup)

	before := m.Begin(Snapshot, true)
	deleter := m.Begin(Snapshot, false)
	if err := m.Delete(h, id, deleter); err != nil {
		t.Fatal(err)
	}
	// Deleter no longer sees the row.
	if _, ok := m.Read(h, id, deleter); ok {
		t.Fatal("deleter still sees deleted row")
	}
	m.Commit(deleter)
	// Pre-delete snapshot still sees it.
	if _, ok := m.Read(h, id, before); !ok {
		t.Fatal("old snapshot lost deleted row")
	}
	// New txns don't.
	after := m.Begin(Snapshot, true)
	if _, ok := m.Read(h, id, after); ok {
		t.Fatal("deleted row visible to new txn")
	}
	if h.LiveRows() != 0 {
		t.Fatalf("live rows = %d", h.LiveRows())
	}
}

func TestWriteWriteConflict(t *testing.T) {
	m := NewManager()
	h := newHeap()
	setup := m.Begin(Snapshot, false)
	id, _ := m.Insert(h, rel.Row{rel.Int(1)}, setup)
	m.Commit(setup)

	t1 := m.Begin(Snapshot, false)
	t2 := m.Begin(Snapshot, false)
	if err := m.Update(h, id, rel.Row{rel.Int(2)}, t1); err != nil {
		t.Fatal(err)
	}
	// Concurrent writer must fail (first-updater-wins, no-wait).
	if err := m.Update(h, id, rel.Row{rel.Int(3)}, t2); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("expected write conflict, got %v", err)
	}
	m.Commit(t1)
	// t2's snapshot predates t1's commit: still a conflict.
	if err := m.Update(h, id, rel.Row{rel.Int(3)}, t2); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("expected post-commit conflict, got %v", err)
	}
	m.Abort(t2)
	// A fresh txn can update.
	t3 := m.Begin(Snapshot, false)
	if err := m.Update(h, id, rel.Row{rel.Int(4)}, t3); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(t3); err != nil {
		t.Fatal(err)
	}
}

func TestAbortRollsBack(t *testing.T) {
	m := NewManager()
	h := newHeap()
	setup := m.Begin(Snapshot, false)
	id, _ := m.Insert(h, rel.Row{rel.Int(1)}, setup)
	m.Commit(setup)

	t1 := m.Begin(Snapshot, false)
	m.Update(h, id, rel.Row{rel.Int(99)}, t1)
	insID, _ := m.Insert(h, rel.Row{rel.Int(777)}, t1)
	m.Abort(t1)

	t2 := m.Begin(Snapshot, true)
	if row, ok := m.Read(h, id, t2); !ok || row[0].I != 1 {
		t.Fatal("update not rolled back")
	}
	if _, ok := m.Read(h, insID, t2); ok {
		t.Fatal("aborted insert visible")
	}
	// After abort, the row is writable again.
	t3 := m.Begin(Snapshot, false)
	if err := m.Update(h, id, rel.Row{rel.Int(2)}, t3); err != nil {
		t.Fatal(err)
	}
	m.Commit(t3)
	// Abort of delete restores writability too.
	t4 := m.Begin(Snapshot, false)
	if err := m.Delete(h, id, t4); err != nil {
		t.Fatal(err)
	}
	m.Abort(t4)
	t5 := m.Begin(Snapshot, false)
	if row, ok := m.Read(h, id, t5); !ok || row[0].I != 2 {
		t.Fatal("aborted delete lost row")
	}
	if err := m.Delete(h, id, t5); err != nil {
		t.Fatal(err)
	}
	m.Commit(t5)
}

func TestDoubleUpdateSameTxn(t *testing.T) {
	m := NewManager()
	h := newHeap()
	setup := m.Begin(Snapshot, false)
	id, _ := m.Insert(h, rel.Row{rel.Int(1)}, setup)
	m.Commit(setup)

	t1 := m.Begin(Snapshot, false)
	if err := m.Update(h, id, rel.Row{rel.Int(2)}, t1); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(h, id, rel.Row{rel.Int(3)}, t1); err != nil {
		t.Fatal(err)
	}
	if row, ok := m.Read(h, id, t1); !ok || row[0].I != 3 {
		t.Fatal("second update not visible to self")
	}
	m.Commit(t1)
	t2 := m.Begin(Snapshot, true)
	if row, ok := m.Read(h, id, t2); !ok || row[0].I != 3 {
		t.Fatal("final value wrong")
	}
}

func TestFinishedTxnErrors(t *testing.T) {
	m := NewManager()
	h := newHeap()
	t1 := m.Begin(Snapshot, false)
	m.Commit(t1)
	if _, err := m.Insert(h, rel.Row{rel.Int(1)}, t1); !errors.Is(err, ErrTxnFinished) {
		t.Fatal("insert on finished txn should fail")
	}
	if err := m.Commit(t1); !errors.Is(err, ErrTxnFinished) {
		t.Fatal("double commit should fail")
	}
	m.Abort(t1) // no-op, must not panic
	if t1.Status() != StatusCommitted {
		t.Fatal("abort after commit changed status")
	}
	if t1.CommitTS() == 0 {
		t.Fatal("commit ts missing")
	}
}

func TestSSIWriteSkewPrevented(t *testing.T) {
	// Classic write skew: t1 reads A and B, writes A; t2 reads A and B,
	// writes B. Under SI both commit (non-serializable); under SSI at least
	// one must abort.
	m := NewManager()
	h := newHeap()
	setup := m.Begin(Serializable, false)
	idA, _ := m.Insert(h, rel.Row{rel.Int(50)}, setup)
	idB, _ := m.Insert(h, rel.Row{rel.Int(50)}, setup)
	if err := m.Commit(setup); err != nil {
		t.Fatal(err)
	}

	t1 := m.Begin(Serializable, false)
	t2 := m.Begin(Serializable, false)
	m.Read(h, idA, t1)
	m.Read(h, idB, t1)
	m.Read(h, idA, t2)
	m.Read(h, idB, t2)
	if err := m.Update(h, idA, rel.Row{rel.Int(-10)}, t1); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(h, idB, rel.Row{rel.Int(-10)}, t2); err != nil {
		t.Fatal(err)
	}
	err1 := m.Commit(t1)
	err2 := m.Commit(t2)
	if err1 == nil && err2 == nil {
		t.Fatal("write skew committed on both sides under SSI")
	}
	if err1 != nil && err2 != nil {
		t.Fatal("SSI aborted both sides; expected one survivor")
	}
	_, _, ssi, _ := m.Stats()
	if ssi == 0 {
		t.Fatal("ssi abort counter not incremented")
	}
}

func TestSSIReadAfterCommittedWriteConflict(t *testing.T) {
	// Reader's snapshot skips a newer committed version: out-conflict to an
	// already-committed writer must be recorded via outToOld.
	m := NewManager()
	h := newHeap()
	setup := m.Begin(Serializable, false)
	id, _ := m.Insert(h, rel.Row{rel.Int(1)}, setup)
	other, _ := m.Insert(h, rel.Row{rel.Int(5)}, setup)
	m.Commit(setup)

	t1 := m.Begin(Serializable, false) // snapshot now
	w := m.Begin(Serializable, false)
	if err := m.Update(h, id, rel.Row{rel.Int(2)}, w); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(w); err != nil {
		t.Fatal(err)
	}
	// t1 reads the row: its snapshot excludes w's committed version.
	if row, ok := m.Read(h, id, t1); !ok || row[0].I != 1 {
		t.Fatal("t1 should read old version")
	}
	t1.mu.Lock()
	outOld := t1.outToOld
	t1.mu.Unlock()
	if !outOld {
		t.Fatal("expected permanent out-conflict after reading under stale snapshot")
	}
	// Now give t1 an in-conflict too: t3 reads a row t1 then writes.
	t3 := m.Begin(Serializable, false)
	m.Read(h, other, t3)
	if err := m.Update(h, other, rel.Row{rel.Int(6)}, t1); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(t1); !errors.Is(err, ErrSerializationFailure) {
		t.Fatalf("pivot should abort, got %v", err)
	}
	m.Abort(t3)
}

func TestSnapshotLevelAllowsWriteSkew(t *testing.T) {
	// Sanity check that Snapshot (non-serializable) permits write skew —
	// this is the anomaly SSI exists to prevent.
	m := NewManager()
	h := newHeap()
	setup := m.Begin(Snapshot, false)
	idA, _ := m.Insert(h, rel.Row{rel.Int(50)}, setup)
	idB, _ := m.Insert(h, rel.Row{rel.Int(50)}, setup)
	m.Commit(setup)

	t1 := m.Begin(Snapshot, false)
	t2 := m.Begin(Snapshot, false)
	m.Read(h, idA, t1)
	m.Read(h, idB, t1)
	m.Read(h, idA, t2)
	m.Read(h, idB, t2)
	m.Update(h, idA, rel.Row{rel.Int(-10)}, t1)
	m.Update(h, idB, rel.Row{rel.Int(-10)}, t2)
	if err := m.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(t2); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentTransfersConserveTotal(t *testing.T) {
	// Bank-transfer invariant under concurrent snapshot txns with retries:
	// the total balance is conserved.
	m := NewManager()
	h := newHeap()
	const accounts = 20
	const total = int64(accounts * 100)
	ids := make([]storage.RowID, accounts)
	setup := m.Begin(Snapshot, false)
	for i := range ids {
		ids[i], _ = m.Insert(h, rel.Row{rel.Int(100)}, setup)
	}
	m.Commit(setup)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 100; i++ {
				from, to := r.Intn(accounts), r.Intn(accounts)
				if from == to {
					continue
				}
				amt := int64(r.Intn(10))
				tx := m.Begin(Snapshot, false)
				rf, ok1 := m.Read(h, ids[from], tx)
				rt, ok2 := m.Read(h, ids[to], tx)
				if !ok1 || !ok2 {
					m.Abort(tx)
					continue
				}
				if m.Update(h, ids[from], rel.Row{rel.Int(rf[0].I - amt)}, tx) != nil {
					m.Abort(tx)
					continue
				}
				if m.Update(h, ids[to], rel.Row{rel.Int(rt[0].I + amt)}, tx) != nil {
					m.Abort(tx)
					continue
				}
				m.Commit(tx)
			}
		}(int64(g))
	}
	wg.Wait()

	check := m.Begin(Snapshot, true)
	var sum int64
	for _, id := range ids {
		row, ok := m.Read(h, id, check)
		if !ok {
			t.Fatal("account disappeared")
		}
		sum += row[0].I
	}
	if sum != total {
		t.Fatalf("total = %d, want %d", sum, total)
	}
	commits, aborts, _, _ := m.Stats()
	if commits == 0 {
		t.Fatal("no commits recorded")
	}
	t.Logf("commits=%d aborts=%d", commits, aborts)
}

func TestVacuumIntegration(t *testing.T) {
	m := NewManager()
	h := newHeap()
	setup := m.Begin(Snapshot, false)
	id, _ := m.Insert(h, rel.Row{rel.Int(1)}, setup)
	m.Commit(setup)
	for i := 0; i < 5; i++ {
		tx := m.Begin(Snapshot, false)
		if err := m.Update(h, id, rel.Row{rel.Int(int64(i))}, tx); err != nil {
			t.Fatal(err)
		}
		m.Commit(tx)
	}
	// Version chain should have 6 versions before vacuum.
	depth := 0
	for v := h.Head(id); v != nil; v = v.Next() {
		depth++
	}
	if depth != 6 {
		t.Fatalf("chain depth = %d", depth)
	}
	reclaimed := h.Vacuum(m.OldestActiveTS())
	if reclaimed != 5 {
		t.Fatalf("vacuum reclaimed %d, want 5", reclaimed)
	}
	tx := m.Begin(Snapshot, true)
	if row, ok := m.Read(h, id, tx); !ok || row[0].I != 4 {
		t.Fatal("live version lost by vacuum")
	}
}

func TestReadMissingRow(t *testing.T) {
	m := NewManager()
	h := newHeap()
	tx := m.Begin(Snapshot, true)
	if _, ok := m.Read(h, storage.RowID{Page: 9, Slot: 9}, tx); ok {
		t.Fatal("missing row should not be readable")
	}
	if err := m.Update(h, storage.RowID{Page: 9, Slot: 9}, rel.Row{}, m.Begin(Snapshot, false)); err == nil {
		t.Fatal("updating missing row should error")
	}
}

// --- batch write/read path ---

// seedBatchHeap inserts n committed rows and returns their ids.
func seedBatchHeap(t *testing.T, m *Manager, h *storage.Heap, n int) []storage.RowID {
	t.Helper()
	setup := m.Begin(Snapshot, false)
	ids := make([]storage.RowID, n)
	for i := 0; i < n; i++ {
		id, err := m.Insert(h, rel.Row{rel.Int(int64(i))}, setup)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	if err := m.Commit(setup); err != nil {
		t.Fatal(err)
	}
	return ids
}

func TestUpdateBatchCommitAndAbort(t *testing.T) {
	m := NewManager()
	h := newHeap()
	ids := seedBatchHeap(t, m, h, 300) // spans multiple pages

	// Committed batch update is visible afterwards.
	tx := m.Begin(Snapshot, false)
	news := make([]rel.Row, len(ids))
	for i := range news {
		news[i] = rel.Row{rel.Int(int64(-i))}
	}
	if err := m.UpdateBatch(h, ids, news, tx); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}
	check := m.Begin(Snapshot, true)
	if row, ok := m.Read(h, ids[299], check); !ok || row[0].I != -299 {
		t.Fatalf("batch update lost: %v", row)
	}

	// Aborted batch update rolls every claim back.
	tx2 := m.Begin(Snapshot, false)
	if err := m.UpdateBatch(h, ids, news, tx2); err != nil {
		t.Fatal(err)
	}
	m.Abort(tx2)
	tx3 := m.Begin(Snapshot, false)
	if err := m.UpdateBatch(h, ids[:10], news[:10], tx3); err != nil {
		t.Fatalf("claims not released after abort: %v", err)
	}
	m.Abort(tx3)
}

func TestUpdateBatchConflictRollsBackPartialClaims(t *testing.T) {
	m := NewManager()
	h := newHeap()
	ids := seedBatchHeap(t, m, h, 10)
	news := make([]rel.Row, len(ids))
	for i := range news {
		news[i] = rel.Row{rel.Int(100)}
	}

	// t1 claims a row in the middle of the batch; t2's batch must fail,
	// and aborting t2 must release the rows it claimed before the
	// conflict.
	t1 := m.Begin(Snapshot, false)
	if err := m.Update(h, ids[5], rel.Row{rel.Int(7)}, t1); err != nil {
		t.Fatal(err)
	}
	t2 := m.Begin(Snapshot, false)
	if err := m.UpdateBatch(h, ids, news, t2); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("want write conflict, got %v", err)
	}
	m.Abort(t2)
	if err := m.Commit(t1); err != nil {
		t.Fatal(err)
	}
	// Rows 0..4 were claimed by t2 pre-conflict; the abort must have
	// cleared them for a fresh writer.
	t3 := m.Begin(Snapshot, false)
	if err := m.UpdateBatch(h, ids[:5], news[:5], t3); err != nil {
		t.Fatalf("pre-conflict claims not rolled back: %v", err)
	}
	if err := m.Commit(t3); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteBatch(t *testing.T) {
	m := NewManager()
	h := newHeap()
	ids := seedBatchHeap(t, m, h, 200)
	tx := m.Begin(Snapshot, false)
	if err := m.DeleteBatch(h, ids[:150], tx); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if live := h.LiveRows(); live != 50 {
		t.Fatalf("live rows after batch delete = %d, want 50", live)
	}
	check := m.Begin(Snapshot, true)
	if _, ok := m.Read(h, ids[0], check); ok {
		t.Fatal("deleted row still visible")
	}
	if _, ok := m.Read(h, ids[199], check); !ok {
		t.Fatal("surviving row lost")
	}
}

func TestReadPageVisibleAlignsIDsAndRows(t *testing.T) {
	m := NewManager()
	h := newHeap()
	ids := seedBatchHeap(t, m, h, 200)

	// Delete a few rows so the page has invisible entries.
	del := m.Begin(Snapshot, false)
	if err := m.DeleteBatch(h, []storage.RowID{ids[0], ids[3], ids[150]}, del); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(del); err != nil {
		t.Fatal(err)
	}

	tx := m.Begin(Snapshot, true)
	var gotIDs []storage.RowID
	var gotRows []rel.Row
	cursor := h.NewBatchCursor()
	for {
		pageID, heads, ok := cursor.NextPage()
		if !ok {
			break
		}
		gotIDs, gotRows = m.ReadPageVisible(1, pageID, heads, tx, gotIDs, gotRows)
	}
	if len(gotIDs) != 197 || len(gotRows) != 197 {
		t.Fatalf("got %d ids, %d rows, want 197", len(gotIDs), len(gotRows))
	}
	for i, id := range gotIDs {
		// Row payload must match what a point read at that id returns.
		row, ok := m.Read(h, id, tx)
		if !ok || row[0].I != gotRows[i][0].I {
			t.Fatalf("id %v misaligned: point read %v, batch %v", id, row, gotRows[i])
		}
	}
}

func TestHeapHeadsMatchesHead(t *testing.T) {
	m := NewManager()
	h := newHeap()
	ids := seedBatchHeap(t, m, h, 300)
	// Include out-of-range ids: Heads must yield nil, same as Head.
	probe := append(append([]storage.RowID{}, ids...), storage.RowID{Page: 99, Slot: 0})
	heads := h.Heads(probe, nil)
	if len(heads) != len(probe) {
		t.Fatalf("got %d heads, want %d", len(heads), len(probe))
	}
	for i, id := range probe {
		if heads[i] != h.Head(id) {
			t.Fatalf("heads[%d] mismatch for %v", i, id)
		}
	}
}

// TestConcurrentPageReadsDuringWrites exercises the parallel-scan contract:
// many goroutines resolving page visibility through ReadPage (as morsel
// workers do) while writers concurrently insert, update, and commit. Each
// reader must observe a snapshot-consistent row count — exactly the rows
// committed before its transaction began — and the race detector must stay
// quiet across the version-stamp fast path.
func TestConcurrentPageReadsDuringWrites(t *testing.T) {
	m := NewManager()
	h := newHeap()

	const seedRows = 4 * storage.RowsPerPage
	seed := m.Begin(Snapshot, false)
	for i := 0; i < seedRows; i++ {
		if _, err := m.Insert(h, rel.Row{rel.Int(int64(i)), rel.Int(0)}, seed); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Commit(seed); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var writerErr error
	var writerMu sync.Mutex
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() { // writer: keeps committing inserts and updates
		defer writerWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			w := m.Begin(Snapshot, false)
			_, err := m.Insert(h, rel.Row{rel.Int(int64(seedRows + i)), rel.Int(1)}, w)
			if err == nil {
				err = m.Update(h, storage.RowID{Page: 0, Slot: uint32(i % storage.RowsPerPage)},
					rel.Row{rel.Int(int64(i % storage.RowsPerPage)), rel.Int(int64(i))}, w)
			}
			if err != nil && !errors.Is(err, ErrWriteConflict) {
				writerMu.Lock()
				writerErr = err
				writerMu.Unlock()
				return
			}
			if err != nil {
				m.Abort(w)
				continue
			}
			if err := m.Commit(w); err != nil {
				writerMu.Lock()
				writerErr = err
				writerMu.Unlock()
				return
			}
		}
	}()

	const readers = 4
	var readerWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			buf := make([]*storage.Version, storage.RowsPerPage)
			for iter := 0; iter < 25; iter++ {
				tx := m.Begin(Snapshot, true)
				// Row count visible to tx is fixed at Begin: committed
				// inserts all happen-before via the manager clock.
				var rows []rel.Row
				pages := h.NumPages()
				for pg := 0; pg < pages; pg++ {
					n := h.PageHeads(uint32(pg), buf)
					rows = m.ReadPage(1, uint32(pg), buf[:n], tx, rows)
				}
				first := len(rows)
				// A second full pass under the same snapshot must agree.
				rows = rows[:0]
				for pg := 0; pg < pages; pg++ {
					n := h.PageHeads(uint32(pg), buf)
					rows = m.ReadPage(1, uint32(pg), buf[:n], tx, rows)
				}
				if len(rows) != first {
					t.Errorf("snapshot drifted: first pass %d rows, second %d", first, len(rows))
				}
				if first < seedRows {
					t.Errorf("reader saw %d rows, fewer than the %d seeded", first, seedRows)
				}
				m.Abort(tx)
			}
		}()
	}
	// Readers run to completion under live write traffic, then the writer
	// is stopped.
	readerWG.Wait()
	close(stop)
	writerWG.Wait()
	writerMu.Lock()
	defer writerMu.Unlock()
	if writerErr != nil {
		t.Fatalf("writer failed: %v", writerErr)
	}
}
