// Package index provides the secondary-index substrate: an in-memory B+tree
// for ordered/range access and a hash index for equality probes. Both map
// column values to heap RowIDs; visibility is re-checked against the heap by
// the executor, so index entries may lag deletes (lazy maintenance).
package index

import (
	"sync"

	"neurdb/internal/rel"
	"neurdb/internal/storage"
)

const btreeOrder = 64 // max keys per node

// BTree is a B+tree keyed by rel.Value (ordered by rel.Compare) with RowID
// postings. Duplicate keys accumulate postings on one leaf entry.
type BTree struct {
	mu   sync.RWMutex
	root btNode
	size int // distinct keys
}

type btNode interface {
	isLeaf() bool
}

type btInternal struct {
	keys     []rel.Value // separators: child[i] holds keys < keys[i]
	children []btNode
}

func (*btInternal) isLeaf() bool { return false }

type btLeaf struct {
	keys     []rel.Value
	postings [][]storage.RowID
	next     *btLeaf
}

func (*btLeaf) isLeaf() bool { return true }

// NewBTree creates an empty tree.
func NewBTree() *BTree {
	return &BTree{root: &btLeaf{}}
}

// Size returns the number of distinct keys.
func (t *BTree) Size() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Insert adds a posting for key.
func (t *BTree) Insert(key rel.Value, id storage.RowID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	newKey, newNode := t.insert(t.root, key, id)
	if newNode != nil {
		t.root = &btInternal{
			keys:     []rel.Value{newKey},
			children: []btNode{t.root, newNode},
		}
	}
}

// insert descends to the leaf; on split returns (separatorKey, rightNode).
func (t *BTree) insert(n btNode, key rel.Value, id storage.RowID) (rel.Value, btNode) {
	switch node := n.(type) {
	case *btLeaf:
		i := lowerBound(node.keys, key)
		if i < len(node.keys) && rel.Compare(node.keys[i], key) == 0 {
			node.postings[i] = append(node.postings[i], id)
			return rel.Value{}, nil
		}
		node.keys = append(node.keys, rel.Value{})
		copy(node.keys[i+1:], node.keys[i:])
		node.keys[i] = key
		node.postings = append(node.postings, nil)
		copy(node.postings[i+1:], node.postings[i:])
		node.postings[i] = []storage.RowID{id}
		t.size++
		if len(node.keys) <= btreeOrder {
			return rel.Value{}, nil
		}
		// Split leaf.
		mid := len(node.keys) / 2
		right := &btLeaf{
			keys:     append([]rel.Value(nil), node.keys[mid:]...),
			postings: append([][]storage.RowID(nil), node.postings[mid:]...),
			next:     node.next,
		}
		node.keys = node.keys[:mid]
		node.postings = node.postings[:mid]
		node.next = right
		return right.keys[0], right
	case *btInternal:
		i := upperBound(node.keys, key)
		sep, newChild := t.insert(node.children[i], key, id)
		if newChild == nil {
			return rel.Value{}, nil
		}
		node.keys = append(node.keys, rel.Value{})
		copy(node.keys[i+1:], node.keys[i:])
		node.keys[i] = sep
		node.children = append(node.children, nil)
		copy(node.children[i+2:], node.children[i+1:])
		node.children[i+1] = newChild
		if len(node.keys) <= btreeOrder {
			return rel.Value{}, nil
		}
		// Split internal.
		mid := len(node.keys) / 2
		upKey := node.keys[mid]
		right := &btInternal{
			keys:     append([]rel.Value(nil), node.keys[mid+1:]...),
			children: append([]btNode(nil), node.children[mid+1:]...),
		}
		node.keys = node.keys[:mid]
		node.children = node.children[:mid+1]
		return upKey, right
	}
	return rel.Value{}, nil
}

// lowerBound returns the first index with keys[i] >= key.
func lowerBound(keys []rel.Value, key rel.Value) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if rel.Compare(keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBound returns the first index with keys[i] > key.
func upperBound(keys []rel.Value, key rel.Value) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if rel.Compare(keys[mid], key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Lookup returns the postings for key (nil if absent). The returned slice
// must not be mutated.
func (t *BTree) Lookup(key rel.Value) []storage.RowID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	leaf := t.findLeaf(key)
	i := lowerBound(leaf.keys, key)
	if i < len(leaf.keys) && rel.Compare(leaf.keys[i], key) == 0 {
		return leaf.postings[i]
	}
	return nil
}

// LookupBatch probes every key under a single RLock, appending postings to
// dst and per-key end offsets to offs (see catalog.Index.LookupBatch for the
// flattened layout).
func (t *BTree) LookupBatch(keys []rel.Value, dst []storage.RowID, offs []int) ([]storage.RowID, []int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, key := range keys {
		leaf := t.findLeaf(key)
		i := lowerBound(leaf.keys, key)
		if i < len(leaf.keys) && rel.Compare(leaf.keys[i], key) == 0 {
			dst = append(dst, leaf.postings[i]...)
		}
		offs = append(offs, len(dst))
	}
	return dst, offs
}

func (t *BTree) findLeaf(key rel.Value) *btLeaf {
	n := t.root
	for {
		switch node := n.(type) {
		case *btLeaf:
			return node
		case *btInternal:
			n = node.children[upperBound(node.keys, key)]
		}
	}
}

// Delete removes one posting matching (key, id). It returns true if removed.
// Leaves are not rebalanced (lazy deletion): workloads here are
// insert-mostly, and visibility is heap-checked anyway.
func (t *BTree) Delete(key rel.Value, id storage.RowID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	leaf := t.findLeaf(key)
	i := lowerBound(leaf.keys, key)
	if i >= len(leaf.keys) || rel.Compare(leaf.keys[i], key) != 0 {
		return false
	}
	ps := leaf.postings[i]
	for j, p := range ps {
		if p == id {
			leaf.postings[i] = append(ps[:j], ps[j+1:]...)
			if len(leaf.postings[i]) == 0 {
				leaf.keys = append(leaf.keys[:i], leaf.keys[i+1:]...)
				leaf.postings = append(leaf.postings[:i], leaf.postings[i+1:]...)
				t.size--
			}
			return true
		}
	}
	return false
}

// Range visits postings for keys in [lo, hi]. Nil bounds are open. The
// visitor returns false to stop.
func (t *BTree) Range(lo, hi *rel.Value, visit func(rel.Value, []storage.RowID) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var leaf *btLeaf
	if lo != nil {
		leaf = t.findLeaf(*lo)
	} else {
		n := t.root
		for {
			if l, ok := n.(*btLeaf); ok {
				leaf = l
				break
			}
			n = n.(*btInternal).children[0]
		}
	}
	for ; leaf != nil; leaf = leaf.next {
		for i, k := range leaf.keys {
			if lo != nil && rel.Compare(k, *lo) < 0 {
				continue
			}
			if hi != nil && rel.Compare(k, *hi) > 0 {
				return
			}
			if !visit(k, leaf.postings[i]) {
				return
			}
		}
	}
}

// Keys returns all keys in order (testing helper).
func (t *BTree) Keys() []rel.Value {
	var out []rel.Value
	t.Range(nil, nil, func(k rel.Value, _ []storage.RowID) bool {
		out = append(out, k)
		return true
	})
	return out
}

// HashIndex is an equality-only index on one column.
type HashIndex struct {
	mu      sync.RWMutex
	buckets map[uint64][]hashEntry
	size    int
}

type hashEntry struct {
	key rel.Value
	id  storage.RowID
}

// NewHashIndex creates an empty hash index.
func NewHashIndex() *HashIndex {
	return &HashIndex{buckets: make(map[uint64][]hashEntry)}
}

// Insert adds a posting.
func (h *HashIndex) Insert(key rel.Value, id storage.RowID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	k := key.Hash()
	h.buckets[k] = append(h.buckets[k], hashEntry{key, id})
	h.size++
}

// Lookup returns RowIDs whose key equals the probe.
func (h *HashIndex) Lookup(key rel.Value) []storage.RowID {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var out []storage.RowID
	for _, e := range h.buckets[key.Hash()] {
		if rel.Equal(e.key, key) {
			out = append(out, e.id)
		}
	}
	return out
}

// LookupBatch probes every key under a single RLock, appending matches to
// dst and per-key end offsets to offs (see catalog.Index.LookupBatch for the
// flattened layout).
func (h *HashIndex) LookupBatch(keys []rel.Value, dst []storage.RowID, offs []int) ([]storage.RowID, []int) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	for _, key := range keys {
		for _, e := range h.buckets[key.Hash()] {
			if rel.Equal(e.key, key) {
				dst = append(dst, e.id)
			}
		}
		offs = append(offs, len(dst))
	}
	return dst, offs
}

// Delete removes one posting matching (key, id); returns true if removed.
func (h *HashIndex) Delete(key rel.Value, id storage.RowID) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	k := key.Hash()
	bucket := h.buckets[k]
	for i, e := range bucket {
		if e.id == id && rel.Equal(e.key, key) {
			h.buckets[k] = append(bucket[:i], bucket[i+1:]...)
			h.size--
			return true
		}
	}
	return false
}

// Size returns the number of postings.
func (h *HashIndex) Size() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.size
}
