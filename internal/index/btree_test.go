package index

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"neurdb/internal/rel"
	"neurdb/internal/storage"
)

func rid(n int) storage.RowID {
	return storage.RowID{Page: uint32(n / 128), Slot: uint32(n % 128)}
}

func TestBTreeInsertLookup(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 1000; i++ {
		bt.Insert(rel.Int(int64(i)), rid(i))
	}
	if bt.Size() != 1000 {
		t.Fatalf("size = %d", bt.Size())
	}
	for i := 0; i < 1000; i++ {
		ps := bt.Lookup(rel.Int(int64(i)))
		if len(ps) != 1 || ps[0] != rid(i) {
			t.Fatalf("lookup %d = %v", i, ps)
		}
	}
	if bt.Lookup(rel.Int(5000)) != nil {
		t.Fatal("missing key should return nil")
	}
}

func TestBTreeDuplicateKeys(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 10; i++ {
		bt.Insert(rel.Int(7), rid(i))
	}
	if bt.Size() != 1 {
		t.Fatalf("distinct keys = %d", bt.Size())
	}
	if got := len(bt.Lookup(rel.Int(7))); got != 10 {
		t.Fatalf("postings = %d", got)
	}
}

func TestBTreeKeysSortedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bt := NewBTree()
		n := 100 + r.Intn(400)
		inserted := map[int64]bool{}
		for i := 0; i < n; i++ {
			k := r.Int63n(10_000)
			inserted[k] = true
			bt.Insert(rel.Int(k), rid(i))
		}
		keys := bt.Keys()
		if len(keys) != len(inserted) {
			return false
		}
		if !sort.SliceIsSorted(keys, func(i, j int) bool {
			return rel.Compare(keys[i], keys[j]) < 0
		}) {
			return false
		}
		for _, k := range keys {
			if !inserted[k.I] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeRange(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 500; i++ {
		bt.Insert(rel.Int(int64(i*2)), rid(i)) // even keys 0..998
	}
	lo, hi := rel.Int(100), rel.Int(110)
	var got []int64
	bt.Range(&lo, &hi, func(k rel.Value, _ []storage.RowID) bool {
		got = append(got, k.I)
		return true
	})
	want := []int64{100, 102, 104, 106, 108, 110}
	if len(got) != len(want) {
		t.Fatalf("range got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range got %v", got)
		}
	}
	// Open-ended ranges.
	var cnt int
	bt.Range(nil, nil, func(rel.Value, []storage.RowID) bool { cnt++; return true })
	if cnt != 500 {
		t.Fatalf("full range saw %d", cnt)
	}
	// Early stop.
	cnt = 0
	bt.Range(nil, nil, func(rel.Value, []storage.RowID) bool { cnt++; return cnt < 5 })
	if cnt != 5 {
		t.Fatalf("early stop saw %d", cnt)
	}
	// Lower bound in the middle, open top.
	lo2 := rel.Int(990)
	var tail []int64
	bt.Range(&lo2, nil, func(k rel.Value, _ []storage.RowID) bool {
		tail = append(tail, k.I)
		return true
	})
	if len(tail) != 5 || tail[0] != 990 {
		t.Fatalf("tail range = %v", tail)
	}
}

func TestBTreeDelete(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 100; i++ {
		bt.Insert(rel.Int(int64(i)), rid(i))
	}
	if !bt.Delete(rel.Int(50), rid(50)) {
		t.Fatal("delete existing failed")
	}
	if bt.Lookup(rel.Int(50)) != nil {
		t.Fatal("deleted key still present")
	}
	if bt.Size() != 99 {
		t.Fatalf("size after delete = %d", bt.Size())
	}
	if bt.Delete(rel.Int(50), rid(50)) {
		t.Fatal("double delete should fail")
	}
	if bt.Delete(rel.Int(5000), rid(0)) {
		t.Fatal("deleting missing key should fail")
	}
	// Deleting one of several postings keeps the key.
	bt.Insert(rel.Int(60), rid(999))
	if !bt.Delete(rel.Int(60), rid(60)) {
		t.Fatal("posting delete failed")
	}
	if ps := bt.Lookup(rel.Int(60)); len(ps) != 1 || ps[0] != rid(999) {
		t.Fatalf("postings after partial delete: %v", ps)
	}
	// Deleting a missing posting under an existing key fails.
	if bt.Delete(rel.Int(60), rid(777)) {
		t.Fatal("missing posting delete should fail")
	}
}

func TestBTreeMixedTypesOrdered(t *testing.T) {
	bt := NewBTree()
	bt.Insert(rel.Text("b"), rid(1))
	bt.Insert(rel.Int(5), rid(2))
	bt.Insert(rel.Text("a"), rid(3))
	bt.Insert(rel.Float(2.5), rid(4))
	keys := bt.Keys()
	// numeric class before text class; within class by value
	if keys[0].AsFloat() != 2.5 || keys[1].AsFloat() != 5 || keys[2].S != "a" || keys[3].S != "b" {
		t.Fatalf("mixed order wrong: %v", keys)
	}
}

func TestBTreeRandomizedAgainstMap(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	bt := NewBTree()
	ref := map[int64][]storage.RowID{}
	for op := 0; op < 5000; op++ {
		k := r.Int63n(300)
		if r.Intn(3) < 2 || len(ref[k]) == 0 {
			id := rid(op)
			bt.Insert(rel.Int(k), id)
			ref[k] = append(ref[k], id)
		} else {
			id := ref[k][0]
			if !bt.Delete(rel.Int(k), id) {
				t.Fatalf("delete of known posting failed (key %d)", k)
			}
			ref[k] = ref[k][1:]
			if len(ref[k]) == 0 {
				delete(ref, k)
			}
		}
	}
	for k, want := range ref {
		got := bt.Lookup(rel.Int(k))
		if len(got) != len(want) {
			t.Fatalf("key %d: got %d postings, want %d", k, len(got), len(want))
		}
	}
	if bt.Size() != len(ref) {
		t.Fatalf("size %d vs ref %d", bt.Size(), len(ref))
	}
}

func TestHashIndexBasics(t *testing.T) {
	h := NewHashIndex()
	for i := 0; i < 1000; i++ {
		h.Insert(rel.Int(int64(i%100)), rid(i))
	}
	if h.Size() != 1000 {
		t.Fatalf("size = %d", h.Size())
	}
	if got := len(h.Lookup(rel.Int(42))); got != 10 {
		t.Fatalf("postings for 42 = %d", got)
	}
	if h.Lookup(rel.Int(5000)) != nil {
		t.Fatal("missing key should be nil")
	}
	if !h.Delete(rel.Int(42), rid(42)) {
		t.Fatal("delete failed")
	}
	if got := len(h.Lookup(rel.Int(42))); got != 9 {
		t.Fatalf("postings after delete = %d", got)
	}
	if h.Delete(rel.Int(42), rid(42)) {
		t.Fatal("double delete should fail")
	}
	// Int/Float numeric equality holds through the hash index.
	h.Insert(rel.Float(7), rid(1))
	found := h.Lookup(rel.Int(7))
	var has bool
	for _, p := range found {
		if p == rid(1) {
			has = true
		}
	}
	if !has {
		t.Fatal("numeric-equal key lookup failed")
	}
}

func TestHashIndexTextKeys(t *testing.T) {
	h := NewHashIndex()
	h.Insert(rel.Text("alpha"), rid(1))
	h.Insert(rel.Text("beta"), rid(2))
	if got := h.Lookup(rel.Text("alpha")); len(got) != 1 || got[0] != rid(1) {
		t.Fatalf("text lookup = %v", got)
	}
}

// TestLookupBatchMatchesLookup: the batched probe must return, per key, the
// exact postings (and order) of individual Lookup calls — for both index
// kinds, including missing keys and duplicate-key postings.
func TestLookupBatchMatchesLookup(t *testing.T) {
	bt := NewBTree()
	hx := NewHashIndex()
	for i := 0; i < 500; i++ {
		key := rel.Int(int64(i % 120)) // duplicates accumulate postings
		id := storage.RowID{Page: uint32(i / 128), Slot: uint32(i % 128)}
		bt.Insert(key, id)
		hx.Insert(key, id)
	}
	keys := []rel.Value{
		rel.Int(0), rel.Int(7), rel.Int(7), // repeated probe key
		rel.Int(119), rel.Int(500), // missing key
		rel.Int(64),
	}
	check := func(name string, lookup func(rel.Value) []storage.RowID,
		batch func([]rel.Value, []storage.RowID, []int) ([]storage.RowID, []int)) {
		ids, offs := batch(keys, nil, nil)
		if len(offs) != len(keys) {
			t.Fatalf("%s: %d offsets for %d keys", name, len(offs), len(keys))
		}
		start := 0
		for k, key := range keys {
			got := ids[start:offs[k]]
			want := lookup(key)
			if len(got) != len(want) {
				t.Fatalf("%s key %v: batch %d postings, single %d", name, key, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s key %v posting %d: %v != %v", name, key, i, got[i], want[i])
				}
			}
			start = offs[k]
		}
		if start != len(ids) {
			t.Fatalf("%s: %d postings not covered by offsets", name, len(ids)-start)
		}
	}
	check("btree", bt.Lookup, bt.LookupBatch)
	check("hash", hx.Lookup, hx.LookupBatch)

	// Appending into preloaded slices must not clobber the prefix.
	pre := []storage.RowID{{Page: 9, Slot: 9}}
	ids, offs := bt.LookupBatch(keys[:1], pre, []int{len(pre)})
	if ids[0] != pre[0] || offs[0] != 1 || offs[1] != len(ids) {
		t.Fatalf("batch append clobbered prefix: ids=%v offs=%v", ids, offs)
	}
}
