package monitor

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestWindowStats(t *testing.T) {
	w := NewWindow(4)
	if w.Mean() != 0 || w.Std() != 0 || w.Len() != 0 {
		t.Fatal("empty window stats wrong")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		w.Add(v)
	}
	if w.Mean() != 2.5 || w.Len() != 4 {
		t.Fatalf("mean=%v len=%d", w.Mean(), w.Len())
	}
	// Sliding: adding 5,6 evicts 1,2 → mean of {3,4,5,6} = 4.5
	w.Add(5)
	w.Add(6)
	if w.Mean() != 4.5 {
		t.Fatalf("sliding mean = %v", w.Mean())
	}
	if math.Abs(w.Std()-math.Sqrt(1.25)) > 1e-9 {
		t.Fatalf("std = %v", w.Std())
	}
	// Degenerate size.
	w1 := NewWindow(0)
	w1.Add(7)
	if w1.Mean() != 7 {
		t.Fatal("size-clamped window broken")
	}
}

func TestPageHinkleyDetectsDownwardShift(t *testing.T) {
	// Feed a steady stream, then shift down; detector watches -x so a drop
	// in x is an increase in -x deviations.
	ph := NewPageHinkley(0.01, 0.5)
	detected := false
	for i := 0; i < 200; i++ {
		x := 1.0
		if i >= 100 {
			x = 0.5
		}
		if ph.Add(-x) {
			detected = true
			if i < 100 {
				t.Fatalf("false positive at %d", i)
			}
			break
		}
	}
	if !detected {
		t.Fatal("shift not detected")
	}
}

func TestPageHinkleyStableStreamNoFalsePositive(t *testing.T) {
	ph := NewPageHinkley(0.05, 2.0)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		if ph.Add(1 + r.NormFloat64()*0.01) {
			t.Fatalf("false positive at %d", i)
		}
	}
}

func TestTrackerDropTrigger(t *testing.T) {
	tr := NewTracker()
	var mu sync.Mutex
	var events []Event
	tr.OnEvent(func(e Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})
	tr.SetBaseline("tps", 100)
	if tr.Baseline("tps") != 100 {
		t.Fatal("baseline lost")
	}
	for i := 0; i < 8; i++ {
		tr.Observe("tps", 100)
	}
	mu.Lock()
	n := len(events)
	mu.Unlock()
	if n != 0 {
		t.Fatalf("steady state should not trigger, got %v", events)
	}
	for i := 0; i < 16; i++ {
		tr.Observe("tps", 40)
	}
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, e := range events {
		if e.Series == "tps" && e.Kind == "drop" {
			found = true
		}
	}
	if !found {
		t.Fatalf("drop not detected: %v", events)
	}
	if tr.Mean("tps") > 60 {
		t.Fatalf("mean = %v", tr.Mean("tps"))
	}
	if tr.Mean("unknown") != 0 {
		t.Fatal("unknown series mean should be 0")
	}
}

func TestTrackerSpikeTrigger(t *testing.T) {
	tr := NewTracker()
	var events []Event
	tr.OnEvent(func(e Event) { events = append(events, e) })
	tr.SetBaseline("loss", 0.2)
	for i := 0; i < 16; i++ {
		tr.Observe("loss", 0.9)
	}
	found := false
	for _, e := range events {
		if e.Kind == "spike" {
			found = true
		}
	}
	if !found {
		t.Fatalf("spike not detected: %v", events)
	}
}

// TestTrackerCounters: Count accumulates a monotonic total alongside the
// windowed view, is safe under concurrent increments, and unknown series
// total to zero.
func TestTrackerCounters(t *testing.T) {
	tr := NewTracker()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Count("txn.stripe_wait", 2)
			}
		}()
	}
	wg.Wait()
	if got := tr.Total("txn.stripe_wait"); got != 1600 {
		t.Fatalf("total = %v, want 1600", got)
	}
	// The windowed view sees per-call increments, not the running total.
	if m := tr.Mean("txn.stripe_wait"); m != 2 {
		t.Fatalf("windowed mean = %v, want 2", m)
	}
	if tr.Total("unknown") != 0 {
		t.Fatal("unknown series total should be 0")
	}
}
