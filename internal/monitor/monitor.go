// Package monitor implements the system monitor of Fig. 1: sliding-window
// metric tracking (throughput, latency, loss, abort rate), drift detection
// (Page-Hinkley and relative-change tests), and trigger callbacks that kick
// off model adaptation — fine-tuning for analytics models, two-phase
// adaptation for learned CC, and condition refresh for the learned
// optimizer.
package monitor

import (
	"math"
	"sync"
)

// Window is a fixed-size sliding window over float64 observations.
type Window struct {
	mu   sync.Mutex
	buf  []float64
	size int
	pos  int
	full bool
	sum  float64
	sum2 float64
}

// NewWindow creates a window holding up to size observations.
func NewWindow(size int) *Window {
	if size < 1 {
		size = 1
	}
	return &Window{buf: make([]float64, size), size: size}
}

// Add records an observation.
func (w *Window) Add(x float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.full {
		old := w.buf[w.pos]
		w.sum -= old
		w.sum2 -= old * old
	}
	w.buf[w.pos] = x
	w.sum += x
	w.sum2 += x * x
	w.pos++
	if w.pos == w.size {
		w.pos = 0
		w.full = true
	}
}

// Len returns the number of stored observations.
func (w *Window) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lenLocked()
}

func (w *Window) lenLocked() int {
	if w.full {
		return w.size
	}
	return w.pos
}

// Mean returns the window mean (0 when empty).
func (w *Window) Mean() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := w.lenLocked()
	if n == 0 {
		return 0
	}
	return w.sum / float64(n)
}

// Std returns the window standard deviation.
func (w *Window) Std() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := float64(w.lenLocked())
	if n < 2 {
		return 0
	}
	mean := w.sum / n
	v := w.sum2/n - mean*mean
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// PageHinkley is the Page-Hinkley sequential drift detector: it signals when
// the cumulative deviation of a stream below its running mean exceeds a
// threshold — the standard online test for loss/throughput regressions.
type PageHinkley struct {
	mu        sync.Mutex
	Delta     float64 // tolerated deviation
	Lambda    float64 // detection threshold
	n         float64
	mean      float64
	cumDev    float64
	minCumDev float64
}

// NewPageHinkley creates a detector. Typical values: delta small relative to
// signal noise, lambda ~ several deltas.
func NewPageHinkley(delta, lambda float64) *PageHinkley {
	return &PageHinkley{Delta: delta, Lambda: lambda}
}

// Add feeds an observation; it returns true when drift is detected, after
// which the detector resets.
func (p *PageHinkley) Add(x float64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.n++
	p.mean += (x - p.mean) / p.n
	p.cumDev += x - p.mean - p.Delta
	if p.cumDev < p.minCumDev {
		p.minCumDev = p.cumDev
	}
	if p.cumDev-p.minCumDev > p.Lambda {
		p.reset()
		return true
	}
	return false
}

func (p *PageHinkley) reset() {
	p.n = 0
	p.mean = 0
	p.cumDev = 0
	p.minCumDev = 0
}

// Event identifies a detected condition.
type Event struct {
	Series string
	Kind   string // "drift", "drop", "spike"
	Value  float64
}

// Tracker maintains named metric series with drift/drop detection and
// invokes registered triggers — the monitor's "notify the AI engine to
// fine-tune" pathway.
type Tracker struct {
	mu        sync.Mutex
	windows   map[string]*Window
	baselines map[string]float64
	ph        map[string]*PageHinkley
	counters  map[string]float64 // monotonic series, see Count/Total
	triggers  []func(Event)
	// DropRatio fires a "drop" event when the current window mean falls
	// below baseline*DropRatio (for throughput-like series).
	DropRatio float64
	// SpikeRatio fires a "spike" event when the mean exceeds
	// baseline*SpikeRatio (for loss/latency-like series).
	SpikeRatio float64
}

// NewTracker creates a tracker with default thresholds.
func NewTracker() *Tracker {
	return &Tracker{
		windows:    make(map[string]*Window),
		baselines:  make(map[string]float64),
		ph:         make(map[string]*PageHinkley),
		DropRatio:  0.7,
		SpikeRatio: 1.5,
	}
}

// OnEvent registers a trigger callback.
func (t *Tracker) OnEvent(f func(Event)) {
	t.mu.Lock()
	t.triggers = append(t.triggers, f)
	t.mu.Unlock()
}

// SetBaseline fixes the reference level for a series (e.g. steady-state
// throughput after warmup).
func (t *Tracker) SetBaseline(series string, v float64) {
	t.mu.Lock()
	t.baselines[series] = v
	t.mu.Unlock()
}

// Baseline returns the current baseline for a series.
func (t *Tracker) Baseline(series string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.baselines[series]
}

// Observe records a value for a series, running all detectors.
func (t *Tracker) Observe(series string, v float64) {
	t.mu.Lock()
	w, ok := t.windows[series]
	if !ok {
		w = NewWindow(16)
		t.windows[series] = w
	}
	d, ok := t.ph[series]
	if !ok {
		d = NewPageHinkley(0.005, 0.1)
		t.ph[series] = d
	}
	base := t.baselines[series]
	triggers := t.triggers
	dropRatio, spikeRatio := t.DropRatio, t.SpikeRatio
	t.mu.Unlock()

	w.Add(v)
	mean := w.Mean()
	var events []Event
	if base > 0 && w.Len() >= 4 {
		if mean < base*dropRatio {
			events = append(events, Event{Series: series, Kind: "drop", Value: mean})
		}
		if mean > base*spikeRatio {
			events = append(events, Event{Series: series, Kind: "spike", Value: mean})
		}
	}
	// Page-Hinkley on the negated signal detects downward drift for
	// throughput-like series; feed the raw value for loss-like series by
	// convention of the caller (drop vs spike separation happens above).
	if d.Add(-v) {
		events = append(events, Event{Series: series, Kind: "drift", Value: v})
	}
	for _, e := range events {
		for _, f := range triggers {
			f(e)
		}
	}
}

// Mean returns the sliding mean of a series (0 if unknown).
func (t *Tracker) Mean(series string) float64 {
	t.mu.Lock()
	w := t.windows[series]
	t.mu.Unlock()
	if w == nil {
		return 0
	}
	return w.Mean()
}

// Count adds n to a monotonic counter series and feeds the increment to the
// windowed detectors. Counter series (txn.stripe_wait, dml.parallel_pages)
// accumulate forever — Total exposes the running sum — while the windowed
// view still sees per-statement increments, so drift detection keeps
// working on the rate.
func (t *Tracker) Count(series string, n float64) {
	t.mu.Lock()
	if t.counters == nil {
		t.counters = make(map[string]float64)
	}
	t.counters[series] += n
	t.mu.Unlock()
	t.Observe(series, n)
}

// Total returns the accumulated value of a counter series (0 if unknown).
func (t *Tracker) Total(series string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counters[series]
}
