package learnedopt

import (
	"math"
	"math/rand"

	"neurdb/internal/nn"
	"neurdb/internal/plan"
)

// planFeatureDim is the pooled plan-feature width used by the Bao value
// network and the Lero comparator: mean token + root estimates + size.
const planFeatureDim = plan.NodeFeatureDim + 3

// PlanFeatures pools a plan into a fixed-width vector.
func PlanFeatures(p plan.Node) []float64 {
	toks := plan.EncodeTree(p)
	out := make([]float64, planFeatureDim)
	for _, t := range toks {
		for i, v := range t {
			out[i] += v
		}
	}
	n := float64(len(toks))
	if n > 0 {
		for i := 0; i < plan.NodeFeatureDim; i++ {
			out[i] /= n
		}
	}
	rows, cost := p.Estimates()
	out[plan.NodeFeatureDim] = math.Log1p(rows) / 20
	out[plan.NodeFeatureDim+1] = math.Log1p(cost) / 20
	out[plan.NodeFeatureDim+2] = n / 16
	return out
}

// Bao is the hint-set bandit baseline with a "stable" (frozen after
// pre-training) value network predicting log runtime from plan features.
// Critically, it sees no system-condition tokens — under drift its value
// model keeps scoring plans as if the old data distribution still held.
type Bao struct {
	value  *nn.Sequential
	frozen bool
}

// NewBao builds the value network.
func NewBao(seed int64) *Bao {
	r := rand.New(rand.NewSource(seed))
	return &Bao{
		value: nn.NewSequential(
			nn.NewLinear(planFeatureDim, 32, r),
			&nn.ReLU{},
			nn.NewLinear(32, 16, r),
			&nn.ReLU{},
			nn.NewLinear(16, 1, r),
		),
	}
}

// PredictRuntime returns the predicted log1p(runtime) for a plan.
func (b *Bao) PredictRuntime(p plan.Node) float64 {
	x := nn.FromRows([][]float64{PlanFeatures(p)})
	return b.value.Forward(x).At(0, 0)
}

// Choose picks the candidate with the lowest predicted runtime.
func (b *Bao) Choose(cands []plan.Node) int {
	best, bestV := 0, math.Inf(1)
	for i, c := range cands {
		v := b.PredictRuntime(c)
		if v < bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Train fits the value network on (plan, runtimeSeconds) observations. Once
// Freeze is called (the paper evaluates Bao's "stable model"), training
// becomes a no-op.
func (b *Bao) Train(p plan.Node, runtimeSeconds float64, opt nn.Optimizer) float64 {
	if b.frozen {
		return 0
	}
	x := nn.FromRows([][]float64{PlanFeatures(p)})
	target := nn.FromRows([][]float64{{math.Log1p(runtimeSeconds * 1000)}})
	opt.ZeroGrad(b.value.Params())
	pred := b.value.Forward(x)
	loss, grad := nn.MSELoss(pred, target)
	b.value.Backward(grad)
	opt.Step(b.value.Params())
	return loss
}

// Freeze pins the model (stable-model evaluation protocol).
func (b *Bao) Freeze() { b.frozen = true }

// Lero is the learning-to-rank baseline: a pairwise comparator over plan
// features. Like Bao it is evaluated with a stable (frozen) model and has
// no system-condition input.
type Lero struct {
	comparator *nn.Sequential
	frozen     bool
}

// NewLero builds the comparator network.
func NewLero(seed int64) *Lero {
	r := rand.New(rand.NewSource(seed))
	return &Lero{
		comparator: nn.NewSequential(
			nn.NewLinear(2*planFeatureDim, 32, r),
			&nn.ReLU{},
			nn.NewLinear(32, 1, r),
		),
	}
}

// prefer returns a logit > 0 when plan a is predicted faster than plan b.
func (l *Lero) prefer(a, b plan.Node) float64 {
	fa, fb := PlanFeatures(a), PlanFeatures(b)
	x := nn.FromRows([][]float64{append(append([]float64{}, fa...), fb...)})
	return l.comparator.Forward(x).At(0, 0)
}

// Choose runs a linear tournament with the pairwise comparator.
func (l *Lero) Choose(cands []plan.Node) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		if l.prefer(cands[i], cands[best]) > 0 {
			best = i
		}
	}
	return best
}

// TrainPair teaches the comparator that `faster` beat `slower`. Both
// orderings are trained for antisymmetry.
func (l *Lero) TrainPair(faster, slower plan.Node, opt nn.Optimizer) float64 {
	if l.frozen {
		return 0
	}
	ff, fs := PlanFeatures(faster), PlanFeatures(slower)
	x1 := nn.FromRows([][]float64{append(append([]float64{}, ff...), fs...)})
	x2 := nn.FromRows([][]float64{append(append([]float64{}, fs...), ff...)})
	y1 := nn.FromRows([][]float64{{1}})
	y2 := nn.FromRows([][]float64{{0}})
	var total float64
	for i, pair := range []struct {
		x, y *nn.Matrix
	}{{x1, y1}, {x2, y2}} {
		_ = i
		opt.ZeroGrad(l.comparator.Params())
		logits := l.comparator.Forward(pair.x)
		loss, grad := nn.BCEWithLogitsLoss(logits, pair.y)
		l.comparator.Backward(grad)
		opt.Step(l.comparator.Params())
		total += loss
	}
	return total / 2
}

// Freeze pins the model.
func (l *Lero) Freeze() { l.frozen = true }
