package learnedopt

import (
	"math/rand"
	"testing"

	"neurdb/internal/catalog"
	"neurdb/internal/nn"
	"neurdb/internal/plan"
	"neurdb/internal/rel"
	"neurdb/internal/storage"
)

// synthPlanTokens builds a fake plan token sequence whose features encode a
// hidden "cost" signal at position 7 (log rows) — the model must learn to
// pick the candidate with the lowest signal.
func synthPlanTokens(r *rand.Rand, quality float64) [][]float64 {
	n := 3 + r.Intn(4)
	toks := make([][]float64, n)
	for i := range toks {
		t := make([]float64, plan.NodeFeatureDim)
		t[r.Intn(6)] = 1 // random op one-hot
		t[7] = quality + r.Float64()*0.05
		t[8] = quality * 0.8
		t[9] = float64(i) / 8
		toks[i] = t
	}
	return toks
}

func synthCond(r *rand.Rand) *nn.Matrix {
	rows := make([][]float64, 3)
	for i := range rows {
		row := make([]float64, CondFeatureDim)
		for j := range row {
			row[j] = r.Float64() * 0.5
		}
		rows[i] = row
	}
	return nn.FromRows(rows)
}

func TestModelLearnsToPickCheapestCandidate(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	m := NewModel(16, 2, 2)
	opt := nn.NewAdam(0.005)
	gen := func() Example {
		k := 3 + r.Intn(3)
		tokens := make([][][]float64, k)
		best := r.Intn(k)
		for i := range tokens {
			q := 0.5 + r.Float64()*0.4
			if i == best {
				q = 0.05 + r.Float64()*0.1
			}
			tokens[i] = synthPlanTokens(r, q)
		}
		return Example{Tokens: tokens, Cond: synthCond(r), Best: best}
	}
	var lastLoss float64
	for i := 0; i < 400; i++ {
		lastLoss = m.TrainExample(gen(), opt)
	}
	_ = lastLoss
	// Evaluate accuracy on fresh examples.
	correct := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		ex := gen()
		if m.Choose(ex.Tokens, ex.Cond) == ex.Best {
			correct++
		}
	}
	if correct < 70 {
		t.Fatalf("model picked best candidate %d/%d times; should beat chance (~25-33)", correct, trials)
	}
}

func TestModelChooseEdgeCases(t *testing.T) {
	m := NewModel(8, 2, 3)
	if m.Choose(nil, nil) != 0 {
		t.Fatal("empty candidates should return 0")
	}
	r := rand.New(rand.NewSource(4))
	single := [][][]float64{synthPlanTokens(r, 0.5)}
	if m.Choose(single, synthCond(r)) != 0 {
		t.Fatal("single candidate should return 0")
	}
	// TrainExample on degenerate input is a no-op.
	if loss := m.TrainExample(Example{Tokens: single, Cond: synthCond(r), Best: 0}, nn.NewAdam(0.01)); loss != 0 {
		t.Fatal("single-candidate training should be skipped")
	}
}

func buildTestTable(t *testing.T, pool *storage.BufferPool) *catalog.Table {
	t.Helper()
	cat := catalog.New(pool)
	tbl, err := cat.Create("t1", rel.NewSchema(
		rel.Column{Name: "a", Typ: rel.TypeInt},
		rel.Column{Name: "b", Typ: rel.TypeFloat},
	))
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]rel.Row, 500)
	for i := range rows {
		rows[i] = rel.Row{rel.Int(int64(i)), rel.Float(float64(i) * 0.5)}
		tbl.Heap.Insert(rows[i], 1)
	}
	tbl.Stats.Rebuild(rows)
	return tbl
}

func TestBuildConditions(t *testing.T) {
	pool := storage.NewBufferPool(64)
	tbl := buildTestTable(t, pool)
	cond := BuildConditions([]*catalog.Table{tbl}, pool)
	if cond.Rows != 2 || cond.Cols != CondFeatureDim {
		t.Fatalf("cond shape %dx%d", cond.Rows, cond.Cols)
	}
	if cond.At(0, 0) != 1 {
		t.Fatal("global token marker missing")
	}
	if cond.At(1, 1) <= 0 {
		t.Fatal("table row-count feature missing")
	}
	// Conditions change when the data changes — the adaptivity signal.
	for i := 0; i < 2000; i++ {
		tbl.Stats.NoteInsert(rel.Row{rel.Int(int64(10000 + i)), rel.Float(9999)})
	}
	cond2 := BuildConditions([]*catalog.Table{tbl}, pool)
	if cond2.At(1, 1) <= cond.At(1, 1) {
		t.Fatal("condition tokens did not reflect growth")
	}
	// Nil pool is allowed.
	cond3 := BuildConditions([]*catalog.Table{tbl}, nil)
	if cond3.Rows != 2 {
		t.Fatal("nil-pool conditions broken")
	}
	// Many tables are truncated to MaxCondTokens.
	many := make([]*catalog.Table, 20)
	for i := range many {
		many[i] = tbl
	}
	cond4 := BuildConditions(many, pool)
	if cond4.Rows != MaxCondTokens {
		t.Fatalf("token cap broken: %d", cond4.Rows)
	}
}

// fakePlan builds a tiny real plan over the test table for feature tests.
func fakePlan(tbl *catalog.Table, rows, cost float64) plan.Node {
	return &plan.SeqScan{
		Base:  plan.Base{Out: tbl.Schema, EstRows: rows, EstCost: cost},
		Table: tbl,
	}
}

func TestPlanFeatures(t *testing.T) {
	tbl := buildTestTable(t, nil)
	f := PlanFeatures(fakePlan(tbl, 100, 500))
	if len(f) != planFeatureDim {
		t.Fatalf("feature dim %d", len(f))
	}
	if f[0] != 1 { // seqscan one-hot survives mean-pool of single node
		t.Fatalf("op one-hot lost: %v", f)
	}
	f2 := PlanFeatures(fakePlan(tbl, 100000, 500000))
	if f2[plan.NodeFeatureDim] <= f[plan.NodeFeatureDim] {
		t.Fatal("row estimate feature not monotone")
	}
}

func TestBaoLearnsAndFreezes(t *testing.T) {
	tbl := buildTestTable(t, nil)
	b := NewBao(5)
	opt := nn.NewAdam(0.01)
	// Teach: high-cost plans are slow, low-cost fast.
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 600; i++ {
		c := r.Float64()
		p := fakePlan(tbl, 10+c*100000, 10+c*100000)
		runtime := 0.001 + c*0.5
		b.Train(p, runtime, opt)
	}
	cheap := fakePlan(tbl, 50, 50)
	costly := fakePlan(tbl, 90000, 90000)
	if b.PredictRuntime(cheap) >= b.PredictRuntime(costly) {
		t.Fatal("Bao value network did not learn runtime ordering")
	}
	if got := b.Choose([]plan.Node{costly, cheap}); got != 1 {
		t.Fatalf("Bao chose %d", got)
	}
	b.Freeze()
	before := b.PredictRuntime(cheap)
	b.Train(cheap, 99, opt)
	if b.PredictRuntime(cheap) != before {
		t.Fatal("frozen Bao must not train")
	}
}

func TestLeroComparatorLearnsAndFreezes(t *testing.T) {
	tbl := buildTestTable(t, nil)
	l := NewLero(7)
	opt := nn.NewAdam(0.01)
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 600; i++ {
		c1, c2 := r.Float64(), r.Float64()
		p1 := fakePlan(tbl, 10+c1*100000, 10+c1*100000)
		p2 := fakePlan(tbl, 10+c2*100000, 10+c2*100000)
		if c1 < c2 {
			l.TrainPair(p1, p2, opt)
		} else {
			l.TrainPair(p2, p1, opt)
		}
	}
	cheap := fakePlan(tbl, 50, 50)
	costly := fakePlan(tbl, 90000, 90000)
	if l.prefer(cheap, costly) <= 0 {
		t.Fatal("Lero comparator did not learn preference")
	}
	if got := l.Choose([]plan.Node{costly, cheap, costly}); got != 1 {
		t.Fatalf("Lero chose %d", got)
	}
	l.Freeze()
	if l.TrainPair(cheap, costly, opt) != 0 {
		t.Fatal("frozen Lero must not train")
	}
}

func TestEncodeCandidates(t *testing.T) {
	tbl := buildTestTable(t, nil)
	cands := []plan.Node{fakePlan(tbl, 10, 10), fakePlan(tbl, 20, 20)}
	toks := EncodeCandidates(cands)
	if len(toks) != 2 || len(toks[0]) != 1 || len(toks[0][0]) != plan.NodeFeatureDim {
		t.Fatalf("token encoding wrong: %d", len(toks))
	}
}
